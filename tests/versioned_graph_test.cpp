//===- tests/versioned_graph_test.cpp - acquire/set/release tests ---------===//
//
// The version-maintenance interface of Section 6: atomic acquire/set/
// release, reader isolation from a concurrent writer, and reclamation.
//
//===----------------------------------------------------------------------===//

#include "graph/versioned_graph.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace aspen;

namespace {

std::vector<EdgePair> randomEdgeBatch(size_t K, VertexId N, uint64_t Seed) {
  return tabulate(K, [&](size_t I) {
    uint64_t H = hashAt(Seed, I);
    return EdgePair{VertexId(H % N), VertexId((H >> 32) % N)};
  });
}

} // namespace

TEST(VersionedGraph, AcquireSeesInitialVersion) {
  VersionedGraph VG(Graph::fromEdges(10, {{1, 2}, {2, 1}}));
  auto V = VG.acquire();
  EXPECT_EQ(V.graph().numEdges(), 2u);
  EXPECT_EQ(V.timestamp(), 0u);
}

TEST(VersionedGraph, SetPublishesNewVersion) {
  VersionedGraph VG(Graph::fromEdges(10, {}));
  VG.insertEdgesBatch({{1, 2}, {3, 4}});
  auto V = VG.acquire();
  EXPECT_EQ(V.graph().numEdges(), 2u);
  EXPECT_EQ(V.timestamp(), 1u);
  VG.deleteEdgesBatch({{1, 2}});
  auto V2 = VG.acquire();
  EXPECT_EQ(V2.graph().numEdges(), 1u);
  // The earlier handle still reads the older version.
  EXPECT_EQ(V.graph().numEdges(), 2u);
}

TEST(VersionedGraph, ReadersPinVersionsAcrossUpdates) {
  const VertexId N = 128;
  VersionedGraph VG(Graph::fromEdges(N, randomEdgeBatch(500, N, 1)));
  auto V0 = VG.acquire();
  uint64_t E0 = V0.graph().numEdges();
  std::vector<uint64_t> Counts;
  for (int I = 0; I < 5; ++I) {
    VG.insertEdgesBatch(randomEdgeBatch(200, N, 10 + I));
    Counts.push_back(VG.acquire().graph().numEdges());
  }
  // Each later version has at least as many edges; the pinned version is
  // still exactly as it was.
  for (size_t I = 1; I < Counts.size(); ++I)
    EXPECT_GE(Counts[I], Counts[I - 1]);
  EXPECT_EQ(V0.graph().numEdges(), E0);
}

TEST(VersionedGraph, MoveSemanticsOfVersionHandle) {
  VersionedGraph VG(Graph::fromEdges(4, {{0, 1}}));
  auto V1 = VG.acquire();
  auto V2 = std::move(V1);
  EXPECT_FALSE(V1.valid());
  EXPECT_TRUE(V2.valid());
  EXPECT_EQ(V2.graph().numEdges(), 1u);
  V2.reset();
  EXPECT_FALSE(V2.valid());
}

TEST(VersionedGraph, ConcurrentReadersAndWriter) {
  // Section 7.3's regime: one writer streams batches while readers run
  // queries on acquired snapshots. Readers must always observe a
  // consistent edge count (the graph only ever grows here, and every
  // version's count is a multiple of the batch size).
  const VertexId N = 256;
  const size_t BatchSize = 64;
  VersionedGraph VG(Graph::fromEdges(N, {}));
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    for (int B = 0; B < 40; ++B) {
      // Distinct edges per batch: vertex pairs from disjoint ranges.
      std::vector<EdgePair> Batch;
      for (size_t I = 0; I < BatchSize; ++I) {
        uint64_t Idx = B * BatchSize + I;
        Batch.push_back({VertexId(Idx % N), VertexId((Idx / N) % N)});
      }
      VG.insertEdgesBatch(Batch);
    }
    Done.store(true);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      uint64_t Last = 0;
      while (!Done.load()) {
        auto V = VG.acquire();
        uint64_t E = V.graph().numEdges();
        uint64_t E2 = V.graph().numEdges();
        if (E != E2)
          Violations.fetch_add(1); // snapshot must be stable
        if (E < Last)
          Violations.fetch_add(1); // monotone visibility
        Last = E;
        // The snapshot must be internally consistent, too.
        if (!V.graph().checkInvariants())
          Violations.fetch_add(1);
      }
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  auto Final = VG.acquire();
  EXPECT_EQ(Final.timestamp(), 40u);
}

//===----------------------------------------------------------------------===
// The extracted VersionListT core (store/version_list.h), independent of
// graphs: stamps, pinning, move semantics, and reclamation of arbitrary
// payloads.
//===----------------------------------------------------------------------===

namespace {

/// Payload that counts live instances so reclamation is observable.
struct Tracked {
  static std::atomic<int> Live;
  int Value;
  explicit Tracked(int V) : Value(V) { Live.fetch_add(1); }
  Tracked(const Tracked &O) : Value(O.Value) { Live.fetch_add(1); }
  Tracked(Tracked &&O) noexcept : Value(O.Value) { Live.fetch_add(1); }
  ~Tracked() { Live.fetch_sub(1); }
};
std::atomic<int> Tracked::Live{0};

} // namespace

TEST(VersionList, StampsAndPinning) {
  VersionListT<int> L(10);
  auto H0 = L.acquire();
  EXPECT_EQ(H0.value(), 10);
  EXPECT_EQ(H0.stamp(), 0u);
  EXPECT_EQ(L.set(20), 1u);
  EXPECT_EQ(L.set(30), 2u);
  EXPECT_EQ(L.currentStamp(), 2u);
  // The pinned handle still reads the old value.
  EXPECT_EQ(H0.value(), 10);
  auto H2 = L.acquire();
  EXPECT_EQ(H2.value(), 30);
  EXPECT_EQ(H2.stamp(), 2u);
}

TEST(VersionList, HandleMoveSemantics) {
  VersionListT<int> L(1);
  auto A = L.acquire();
  auto B = std::move(A);
  EXPECT_FALSE(A.valid());
  EXPECT_TRUE(B.valid());
  EXPECT_EQ(B.value(), 1);
  B.reset();
  EXPECT_FALSE(B.valid());
}

TEST(VersionList, ReclaimsUnpinnedVersions) {
  EXPECT_EQ(Tracked::Live.load(), 0);
  {
    VersionListT<Tracked> L(Tracked(0));
    auto Pin = L.acquire();
    for (int I = 1; I <= 50; ++I)
      L.set(Tracked(I));
    // Only the pinned initial version and the current one survive.
    EXPECT_EQ(Tracked::Live.load(), 2);
    EXPECT_EQ(Pin.value().Value, 0);
    Pin.reset();
    EXPECT_EQ(Tracked::Live.load(), 1);
  }
  EXPECT_EQ(Tracked::Live.load(), 0);
}

TEST(VersionList, ConcurrentAcquireReleaseUnderSets) {
  VersionListT<uint64_t> L(0);
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};
  std::thread Writer([&] {
    for (uint64_t I = 1; I <= 2000; ++I)
      L.set(I);
    Done.store(true);
  });
  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      uint64_t Last = 0;
      while (!Done.load()) {
        auto H = L.acquire();
        // Values are installed in order, so observations are monotone,
        // and a handle's value/stamp never change while held.
        if (H.value() < Last || H.value() != H.stamp())
          Violations.fetch_add(1);
        Last = H.value();
      }
    });
  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_EQ(L.acquire().value(), 2000u);
}

TEST(VersionedGraph, LeakFreeReclamation) {
  int64_t BaseBytes = liveCountedBytes();
  int64_t BaseNodes = totalPoolLiveBytes();
  {
    const VertexId N = 128;
    VersionedGraph VG(Graph::fromEdges(N, randomEdgeBatch(1000, N, 3)));
    for (int I = 0; I < 10; ++I) {
      auto Pin = VG.acquire(); // pin, update, release via scope exit
      VG.insertEdgesBatch(randomEdgeBatch(300, N, 100 + I));
      VG.deleteEdgesBatch(randomEdgeBatch(100, N, 200 + I));
    }
  }
  EXPECT_EQ(liveCountedBytes(), BaseBytes);
  EXPECT_EQ(totalPoolLiveBytes(), BaseNodes);
}

//===----------------------------------------------------------------------===//
// DeltaLogT edge cases: the bounded digest window behind acquireFlat()'s
// incremental refresh. Wraparound past MaxEntries, gap/clear semantics,
// and replay-after-clear recovery of the incremental path.
//===----------------------------------------------------------------------===//

TEST(DeltaLog, ReplayCoversContiguousSpansOnly) {
  DeltaLogT<int> Log;
  for (uint64_t S = 1; S <= 5; ++S)
    Log.record(S, int(S) * 10);
  std::vector<int> Got;
  EXPECT_TRUE(Log.replay(0, 5, [&](int D) { Got.push_back(D); }));
  EXPECT_EQ(Got, (std::vector<int>{10, 20, 30, 40, 50}));
  Got.clear();
  EXPECT_TRUE(Log.replay(2, 4, [&](int D) { Got.push_back(D); }));
  EXPECT_EQ(Got, (std::vector<int>{30, 40}));
  // Degenerate spans: empty span is trivially covered, reversed is not.
  EXPECT_TRUE(Log.replay(3, 3, [&](int) { FAIL(); }));
  EXPECT_FALSE(Log.replay(4, 2, [&](int) { FAIL(); }));
  // Spans beyond the recorded history are not covered.
  EXPECT_FALSE(Log.replay(0, 6, [&](int) { FAIL(); }));
}

TEST(DeltaLog, NonSuccessorRecordClearsHistory) {
  DeltaLogT<int> Log;
  Log.record(1, 10);
  Log.record(2, 20);
  Log.record(5, 50); // stamps 3 and 4 went unrecorded: history is invalid
  EXPECT_EQ(Log.size(), 1u);
  EXPECT_FALSE(Log.replay(0, 5, [&](int) { FAIL(); }));
  std::vector<int> Got;
  EXPECT_TRUE(Log.replay(4, 5, [&](int D) { Got.push_back(D); }));
  EXPECT_EQ(Got, (std::vector<int>{50}));
}

TEST(DeltaLog, BoundedWindowEvictsOldestOnWraparound) {
  DeltaLogT<int> Log; // default bound: 64 entries
  for (uint64_t S = 1; S <= 80; ++S)
    Log.record(S, int(S));
  EXPECT_EQ(Log.size(), 64u);
  // Oldest surviving stamp is 17: a consumer pinned before that rebuilds.
  EXPECT_FALSE(Log.replay(15, 80, [&](int) { FAIL(); }));
  size_t Count = 0;
  EXPECT_TRUE(Log.replay(16, 80, [&](int) { ++Count; }));
  EXPECT_EQ(Count, 64u);
  Count = 0;
  EXPECT_TRUE(Log.replay(70, 80, [&](int) { ++Count; }));
  EXPECT_EQ(Count, 10u);
}

TEST(DeltaLog, ReplayAfterClearRequiresFreshHistory) {
  DeltaLogT<int> Log;
  for (uint64_t S = 1; S <= 4; ++S)
    Log.record(S, int(S));
  Log.clear();
  EXPECT_EQ(Log.size(), 0u);
  EXPECT_FALSE(Log.replay(0, 4, [&](int) { FAIL(); }));
  // Recording resumes cleanly; only the new span is covered.
  Log.record(5, 500);
  Log.record(6, 600);
  EXPECT_FALSE(Log.replay(3, 6, [&](int) { FAIL(); }));
  std::vector<int> Got;
  EXPECT_TRUE(Log.replay(4, 6, [&](int D) { Got.push_back(D); }));
  EXPECT_EQ(Got, (std::vector<int>{500, 600}));
}

TEST(VersionedGraph, FlatRebuildsWhenDigestWindowExceeded) {
  const VertexId N = 4096;
  VersionedGraph VG(Graph::fromEdges(N, randomEdgeBatch(500, N, 21)));
  (void)VG.acquireFlat(); // initial full build
  ASSERT_EQ(VG.flatStats().Rebuilds, 1u);
  // Within the 64-epoch window and under the touched cap: refresh.
  for (int I = 0; I < 10; ++I)
    VG.insertEdgesBatch(randomEdgeBatch(8, N, 300 + I));
  (void)VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Refreshes, 1u);
  EXPECT_EQ(VG.flatStats().Rebuilds, 1u);
  // 70 further epochs without an acquire: the bounded log wraps past the
  // cached stamp, so the next acquire must take the full rebuild path.
  for (int I = 0; I < 70; ++I)
    VG.insertEdgesBatch(randomEdgeBatch(8, N, 400 + I));
  (void)VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Rebuilds, 2u);
  EXPECT_EQ(VG.flatStats().Refreshes, 1u);
}

TEST(VersionedGraph, OversizeDigestClearsThenIncrementalPathRecovers) {
  const VertexId N = 64; // touched cap = N / FlatRefreshDenominator = 8
  VersionedGraph VG(Graph::fromEdges(N, {}));
  (void)VG.acquireFlat();
  ASSERT_EQ(VG.flatStats().Rebuilds, 1u);
  // A batch touching far more than N/8 distinct vertices records no
  // digest (refreshing would cost as much as rebuilding), clearing the
  // log: the next acquire rebuilds.
  std::vector<EdgePair> Wide;
  for (VertexId U = 0; U < 40; ++U)
    Wide.push_back({U, VertexId((U + 1) % N)});
  VG.insertEdgesBatch(std::move(Wide));
  (void)VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Rebuilds, 2u);
  EXPECT_EQ(VG.flatStats().Refreshes, 0u);
  // A subsequent narrow batch restarts the digest history from the
  // rebuilt flat's stamp: incremental refresh works again.
  VG.insertEdgesBatch({{3, 5}, {3, 7}});
  (void)VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Refreshes, 1u);
  EXPECT_EQ(VG.flatStats().Rebuilds, 2u);
}

TEST(VersionedGraph, RawSetFallsBackToRebuild) {
  const VertexId N = 256;
  VersionedGraph VG(Graph::fromEdges(N, {}));
  (void)VG.acquireFlat();
  VG.insertEdgesBatch({{1, 2}});
  // set() records no digest, so the span across it is not covered.
  VG.set(Graph::fromEdges(N, {{5, 6}, {6, 5}}));
  (void)VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Rebuilds, 2u);
  EXPECT_EQ(VG.flatStats().Refreshes, 0u);
}
