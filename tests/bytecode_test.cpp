//===- tests/bytecode_test.cpp - Varint and chunk codec tests -------------===//

#include "ctree/chunk.h"
#include "encoding/byte_code.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

using namespace aspen;

TEST(Varint, RoundTripBoundaries) {
  std::vector<uint64_t> Cases = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 21) - 1,
                                 1ull << 21,
                                 (1ull << 28) - 1,
                                 1ull << 28,
                                 (1ull << 35),
                                 (1ull << 42),
                                 (1ull << 49),
                                 (1ull << 56),
                                 (1ull << 63),
                                 ~0ull};
  uint8_t Buf[16];
  for (uint64_t V : Cases) {
    uint8_t *End = encodeVarint(V, Buf);
    EXPECT_EQ(size_t(End - Buf), varintSize(V)) << V;
    uint64_t Out;
    const uint8_t *P = decodeVarint(Buf, Out);
    EXPECT_EQ(P, End) << V;
    EXPECT_EQ(Out, V);
  }
}

TEST(Varint, SizesAreMinimal) {
  EXPECT_EQ(varintSize(0), 1u);
  EXPECT_EQ(varintSize(127), 1u);
  EXPECT_EQ(varintSize(128), 2u);
  EXPECT_EQ(varintSize(16383), 2u);
  EXPECT_EQ(varintSize(16384), 3u);
  EXPECT_EQ(varintSize(~0ull), 10u);
}

TEST(Varint, SequenceRoundTrip) {
  std::vector<uint64_t> Vals;
  for (size_t I = 0; I < 10000; ++I)
    Vals.push_back(hash64(I) >> (I % 60));
  std::vector<uint8_t> Buf;
  size_t Total = 0;
  for (uint64_t V : Vals)
    Total += varintSize(V);
  Buf.resize(Total);
  uint8_t *Out = Buf.data();
  for (uint64_t V : Vals)
    Out = encodeVarint(V, Out);
  ASSERT_EQ(size_t(Out - Buf.data()), Total);
  const uint8_t *In = Buf.data();
  for (uint64_t V : Vals) {
    uint64_t Got;
    In = decodeVarint(In, Got);
    ASSERT_EQ(Got, V);
  }
}

namespace {

template <class Codec> class ChunkCodecTest : public ::testing::Test {};
using Codecs = ::testing::Types<DeltaByteCodec, RawCodec>;

} // namespace

TYPED_TEST_SUITE(ChunkCodecTest, Codecs);

TYPED_TEST(ChunkCodecTest, MakeAndIterate) {
  using Codec = TypeParam;
  std::vector<uint32_t> E = {3, 7, 8, 100, 1000000, 1000001};
  auto *C = makeChunk<Codec>(E.data(), E.size());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Count, E.size());
  EXPECT_EQ(C->First, 3u);
  EXPECT_EQ(C->Last, 1000001u);
  std::vector<uint32_t> Got;
  decodeChunk<Codec>(C, Got);
  EXPECT_EQ(Got, E);
  releaseChunk(C);
}

TYPED_TEST(ChunkCodecTest, EmptyAndSingleton) {
  using Codec = TypeParam;
  EXPECT_EQ((makeChunk<Codec, uint32_t>(nullptr, 0)), nullptr);
  uint32_t X = 42;
  auto *C = makeChunk<Codec>(&X, 1);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Count, 1u);
  EXPECT_EQ(C->Bytes, 0u);
  EXPECT_TRUE(chunkContains<Codec>(C, 42u));
  EXPECT_FALSE(chunkContains<Codec>(C, 41u));
  releaseChunk(C);
}

TYPED_TEST(ChunkCodecTest, Contains) {
  using Codec = TypeParam;
  std::vector<uint32_t> E;
  for (uint32_t I = 0; I < 500; ++I)
    E.push_back(I * 3 + 1);
  auto *C = makeChunk<Codec>(E.data(), E.size());
  for (uint32_t I = 0; I < 1600; ++I) {
    bool Expect = (I % 3 == 1) && I <= E.back();
    ASSERT_EQ((chunkContains<Codec>(C, I)), Expect) << I;
  }
  releaseChunk(C);
}

TYPED_TEST(ChunkCodecTest, IterateEarlyExit) {
  using Codec = TypeParam;
  std::vector<uint32_t> E = {1, 2, 3, 4, 5};
  auto *C = makeChunk<Codec>(E.data(), E.size());
  int Seen = 0;
  bool Finished = Codec::template iterate<uint32_t>(C, [&](uint32_t V) {
    ++Seen;
    return V < 3;
  });
  EXPECT_FALSE(Finished);
  EXPECT_EQ(Seen, 3);
  releaseChunk(C);
}

TYPED_TEST(ChunkCodecTest, UnionChunks) {
  using Codec = TypeParam;
  std::vector<uint32_t> A = {1, 5, 9, 20};
  std::vector<uint32_t> B = {2, 5, 21};
  auto *CA = makeChunk<Codec>(A.data(), A.size());
  auto *CB = makeChunk<Codec>(B.data(), B.size());
  auto *U = unionChunks<Codec>(CA, CB);
  std::vector<uint32_t> Got;
  decodeChunk<Codec>(U, Got);
  EXPECT_EQ(Got, (std::vector<uint32_t>{1, 2, 5, 9, 20, 21}));
  releaseChunk(CA);
  releaseChunk(CB);
  releaseChunk(U);
}

TYPED_TEST(ChunkCodecTest, UnionWithNull) {
  using Codec = TypeParam;
  std::vector<uint32_t> A = {4, 8};
  auto *CA = makeChunk<Codec>(A.data(), A.size());
  auto *U1 = unionChunks<Codec, uint32_t>(CA, nullptr);
  EXPECT_EQ(U1, CA) << "union with empty shares the payload";
  auto *U2 = unionChunks<Codec, uint32_t>(nullptr, CA);
  EXPECT_EQ(U2, CA);
  releaseChunk(U1);
  releaseChunk(U2);
  releaseChunk(CA);
}

TYPED_TEST(ChunkCodecTest, SplitChunkCases) {
  using Codec = TypeParam;
  std::vector<uint32_t> E = {10, 20, 30, 40};
  auto *C = makeChunk<Codec>(E.data(), E.size());

  // Below the first element: everything goes right, shared payload.
  ChunkSplit S = splitChunk<Codec>(C, 5u);
  EXPECT_EQ(S.Left, nullptr);
  EXPECT_FALSE(S.Found);
  EXPECT_EQ(S.Right, C);
  releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Right));

  // Above the last element: everything left.
  S = splitChunk<Codec>(C, 50u);
  EXPECT_EQ(S.Right, nullptr);
  EXPECT_EQ(S.Left, C);
  releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Left));

  // Key present in the middle.
  S = splitChunk<Codec>(C, 30u);
  EXPECT_TRUE(S.Found);
  std::vector<uint32_t> L, R;
  decodeChunk<Codec>(static_cast<ChunkPayload<uint32_t> *>(S.Left), L);
  decodeChunk<Codec>(static_cast<ChunkPayload<uint32_t> *>(S.Right), R);
  EXPECT_EQ(L, (std::vector<uint32_t>{10, 20}));
  EXPECT_EQ(R, (std::vector<uint32_t>{40}));
  releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Left));
  releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Right));

  // Key absent in the middle.
  S = splitChunk<Codec>(C, 25u);
  EXPECT_FALSE(S.Found);
  L.clear();
  R.clear();
  decodeChunk<Codec>(static_cast<ChunkPayload<uint32_t> *>(S.Left), L);
  decodeChunk<Codec>(static_cast<ChunkPayload<uint32_t> *>(S.Right), R);
  EXPECT_EQ(L, (std::vector<uint32_t>{10, 20}));
  EXPECT_EQ(R, (std::vector<uint32_t>{30, 40}));
  releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Left));
  releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Right));

  // Key equals the first element.
  S = splitChunk<Codec>(C, 10u);
  EXPECT_TRUE(S.Found);
  EXPECT_EQ(S.Left, nullptr);
  R.clear();
  decodeChunk<Codec>(static_cast<ChunkPayload<uint32_t> *>(S.Right), R);
  EXPECT_EQ(R, (std::vector<uint32_t>{20, 30, 40}));
  releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Right));

  releaseChunk(C);
}

TYPED_TEST(ChunkCodecTest, ChunkMinusAndIntersect) {
  using Codec = TypeParam;
  std::vector<uint32_t> E = {1, 2, 3, 4, 5, 6};
  auto *C = makeChunk<Codec>(E.data(), E.size());
  auto *M = chunkMinus<Codec>(C, {2u, 4u, 9u});
  std::vector<uint32_t> Got;
  decodeChunk<Codec>(M, Got);
  EXPECT_EQ(Got, (std::vector<uint32_t>{1, 3, 5, 6}));
  releaseChunk(M);

  auto *I = chunkIntersect<Codec>(C, {2u, 4u, 9u});
  Got.clear();
  decodeChunk<Codec>(I, Got);
  EXPECT_EQ(Got, (std::vector<uint32_t>{2, 4}));
  releaseChunk(I);
  releaseChunk(C);
}

TYPED_TEST(ChunkCodecTest, LeakFree) {
  using Codec = TypeParam;
  int64_t Base = liveCountedBytes();
  for (int Round = 0; Round < 10; ++Round) {
    std::vector<uint32_t> E;
    for (uint32_t I = 0; I < 1000; ++I)
      E.push_back(uint32_t(hash64(I + Round * 7919) % 100000));
    std::sort(E.begin(), E.end());
    E.erase(std::unique(E.begin(), E.end()), E.end());
    auto *A = makeChunk<Codec>(E.data(), E.size() / 2);
    auto *B = makeChunk<Codec>(E.data() + E.size() / 2,
                               E.size() - E.size() / 2);
    auto *U = unionChunks<Codec>(A, B);
    ChunkSplit S = splitChunk<Codec>(U, E[E.size() / 3]);
    releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Left));
    releaseChunk(static_cast<ChunkPayload<uint32_t> *>(S.Right));
    releaseChunk(U);
    releaseChunk(B);
    releaseChunk(A);
  }
  EXPECT_EQ(liveCountedBytes(), Base);
}

TEST(DeltaCompression, CompressesClusteredIds) {
  // Difference encoding should use ~1 byte per small delta, far less than
  // 4 bytes raw (the Table 2 effect).
  std::vector<uint32_t> E;
  for (uint32_t I = 0; I < 10000; ++I)
    E.push_back(1000000 + I * 3);
  auto *D = makeChunk<DeltaByteCodec>(E.data(), E.size());
  auto *R = makeChunk<RawCodec>(E.data(), E.size());
  EXPECT_LT(D->Bytes * 3u, R->Bytes) << "delta coding should save >3x here";
  releaseChunk(D);
  releaseChunk(R);
}

TEST(VarintCursor, NextPeekSkip) {
  std::vector<uint64_t> Vals;
  for (size_t I = 0; I < 1000; ++I)
    Vals.push_back(hash64(I) >> (I % 60));
  std::vector<uint8_t> Buf;
  size_t Total = 0;
  for (uint64_t V : Vals)
    Total += varintSize(V);
  Buf.resize(Total);
  uint8_t *Out = Buf.data();
  for (uint64_t V : Vals)
    Out = encodeVarint(V, Out);

  // Sequential decode via next(), with peek() agreeing at every step.
  VarintCursor Cu(Buf.data(), Vals.size());
  for (size_t I = 0; I < Vals.size(); ++I) {
    ASSERT_FALSE(Cu.done());
    ASSERT_EQ(Cu.remaining(), Vals.size() - I);
    ASSERT_EQ(Cu.peek(), Vals[I]);
    ASSERT_EQ(Cu.next(), Vals[I]);
  }
  ASSERT_TRUE(Cu.done());

  // skip(N) lands exactly where N next() calls would.
  for (size_t SkipBy : {1u, 2u, 7u, 63u, 999u}) {
    VarintCursor A(Buf.data(), Vals.size());
    VarintCursor B(Buf.data(), Vals.size());
    size_t N = SkipBy < Vals.size() ? SkipBy : Vals.size();
    A.skip(N);
    for (size_t I = 0; I < N; ++I)
      B.next();
    ASSERT_EQ(A.pos(), B.pos());
    ASSERT_EQ(A.remaining(), B.remaining());
  }
}

TEST(VarintCursor, WordAtATimeSkipBoundaries) {
  // Adversarial inputs for the 8-byte-load + popcount skip: runs of
  // 1-byte codes (8 terminators per word), runs of maximum-length codes
  // (0 terminators per word), and skips that land exactly at the end of
  // an exactly-sized buffer (no slack bytes to over-read; ASan checks).
  auto Check = [](const std::vector<uint64_t> &Vals) {
    size_t Total = 0;
    for (uint64_t V : Vals)
      Total += varintSize(V);
    std::vector<uint8_t> Buf(Total);
    uint8_t *Out = Buf.data();
    for (uint64_t V : Vals)
      Out = encodeVarint(V, Out);
    for (size_t N = 0; N <= Vals.size(); ++N) {
      VarintCursor A(Buf.data(), Vals.size());
      A.skip(N);
      ASSERT_EQ(A.remaining(), Vals.size() - N);
      if (N < Vals.size())
        ASSERT_EQ(A.peek(), Vals[N]) << "skip " << N;
      else
        ASSERT_EQ(A.pos(), Buf.data() + Buf.size());
    }
  };
  Check(std::vector<uint64_t>(41, 7));                 // all 1-byte
  Check(std::vector<uint64_t>(17, ~0ull));             // all 10-byte
  std::vector<uint64_t> Mixed;
  for (size_t I = 0; I < 100; ++I)
    Mixed.push_back(hash64(I) >> (I % 64));            // 1..10 bytes
  Check(Mixed);
}

TEST(VarintWriter, BoundedAppendMatchesFreeEncode) {
  std::vector<uint64_t> Vals = {0, 1, 127, 128, 1ull << 40, ~0ull};
  size_t Cap = 0;
  for (uint64_t V : Vals)
    Cap += varintSize(V);
  std::vector<uint8_t> A(Cap), B(Cap);
  VarintWriter W(A.data(), Cap);
  uint8_t *Out = B.data();
  for (uint64_t V : Vals) {
    W.append(V);
    Out = encodeVarint(V, Out);
  }
  EXPECT_EQ(W.bytesWritten(), Cap);
  EXPECT_EQ(std::memcmp(A.data(), B.data(), Cap), 0);
}

TYPED_TEST(ChunkCodecTest, CursorWalksChunk) {
  using Codec = TypeParam;
  std::vector<uint32_t> E = {5, 6, 900, 1000000, ~0u};
  auto *C = makeChunk<Codec>(E.data(), E.size());
  typename Codec::template Cursor<uint32_t> Cu(C);
  for (size_t I = 0; I < E.size(); ++I) {
    ASSERT_FALSE(Cu.done());
    ASSERT_EQ(Cu.remaining(), E.size() - I);
    ASSERT_EQ(Cu.value(), E[I]);
    Cu.advance();
  }
  ASSERT_TRUE(Cu.done());
  // Null chunk: immediately exhausted.
  typename Codec::template Cursor<uint32_t> Null(nullptr);
  EXPECT_TRUE(Null.done());
  releaseChunk(C);
}

TYPED_TEST(ChunkCodecTest, BuildChunkStreamingMatchesMakeChunk) {
  using Codec = TypeParam;
  std::vector<uint32_t> E;
  for (uint32_t I = 0; I < 777; ++I)
    E.push_back(I * 17 + (I % 3));
  E.erase(std::unique(E.begin(), E.end()), E.end());
  auto *Want = makeChunk<Codec>(E.data(), E.size());
  auto *Got = buildChunkStreaming<Codec, uint32_t>(E.size(),
                                                   [&](auto &&Sink) {
    for (uint32_t V : E)
      Sink(V);
  });
  ASSERT_EQ(Got->Count, Want->Count);
  ASSERT_EQ(Got->Bytes, Want->Bytes);
  ASSERT_EQ(Got->First, Want->First);
  ASSERT_EQ(Got->Last, Want->Last);
  EXPECT_EQ(std::memcmp(Got->data(), Want->data(), Got->Bytes), 0);
  releaseChunk(Want);
  releaseChunk(Got);
  EXPECT_EQ((buildChunkStreaming<Codec, uint32_t>(0, [](auto &&) {})),
            nullptr);
  EXPECT_EQ((buildChunkStreaming<Codec, uint32_t>(16, [](auto &&) {})),
            nullptr);
}

//===----------------------------------------------------------------------===
// Block decoding (encoding/varint_block.h): the SSSE3/SWAR kernels, the
// BlockVarintCursor, and the codec BlockCursors must agree exactly with
// the scalar decoder on values, end offsets, and stream positions.
//===----------------------------------------------------------------------===

namespace {

/// Encode \p Vals and return (buffer, per-value end offsets).
std::pair<std::vector<uint8_t>, std::vector<uint32_t>>
encodeAll(const std::vector<uint64_t> &Vals) {
  std::vector<uint8_t> Buf;
  std::vector<uint32_t> Ends;
  size_t Total = 0;
  for (uint64_t V : Vals)
    Total += varintSize(V);
  Buf.resize(Total);
  uint8_t *Out = Buf.data();
  for (uint64_t V : Vals) {
    Out = encodeVarint(V, Out);
    Ends.push_back(uint32_t(Out - Buf.data()));
  }
  return {std::move(Buf), std::move(Ends)};
}

std::vector<uint64_t> blockTestStream(int Mode, size_t N) {
  std::vector<uint64_t> Vals;
  for (size_t I = 0; I < N; ++I) {
    switch (Mode) {
    case 0: // all 1-byte
      Vals.push_back(hash64(I) % 128);
      break;
    case 1: // all 2-byte
      Vals.push_back(128 + hash64(I) % ((1u << 14) - 128));
      break;
    case 2: // mixed 1..5 byte
      Vals.push_back(hash64(I) >> (34 + I % 30));
      break;
    case 3: // mixed widths incl. 9-10 byte codes
      Vals.push_back(hash64(I) >> (I % 64));
      break;
    default: // word-boundary adversarial: 8 one-byte then one wide
      Vals.push_back(I % 9 == 8 ? (uint64_t(1) << 60) : I % 100);
      break;
    }
  }
  return Vals;
}

} // namespace

TEST(VarintBlockDecode, KernelsMatchScalarDecoder) {
  for (int Mode = 0; Mode <= 4; ++Mode) {
    for (size_t N : {1u, 7u, 8u, 9u, 31u, 32u, 33u, 400u}) {
      auto Vals = blockTestStream(Mode, N);
      auto [Buf, WantEnds] = encodeAll(Vals);
      for (size_t Want : {size_t(1), size_t(5), N}) {
        if (Want > N)
          continue;
        // Dispatched tier.
        {
          std::vector<uint64_t> Got(Want + VarintBlockSlack);
          std::vector<uint32_t> Ends(Want + VarintBlockSlack);
          const uint8_t *In = Buf.data();
          size_t GotN = decodeVarintBlock(In, N, Want, Got.data(),
                                          Ends.data(), 0);
          ASSERT_GE(GotN, Want);
          ASSERT_LE(GotN, Want + VarintBlockSlack);
          ASSERT_LE(GotN, N);
          for (size_t I = 0; I < GotN; ++I) {
            ASSERT_EQ(Got[I], Vals[I]) << "mode " << Mode << " i " << I;
            ASSERT_EQ(Ends[I], WantEnds[I]) << "mode " << Mode;
          }
          ASSERT_EQ(In, Buf.data() + WantEnds[GotN - 1]);
        }
        // Portable SWAR tier explicitly (differential vs dispatch).
        {
          std::vector<uint64_t> Got(Want + VarintBlockSlack);
          std::vector<uint32_t> Ends(Want + VarintBlockSlack);
          const uint8_t *In = Buf.data();
          size_t GotN = decodeVarintBlockSWAR(In, N, Want, Got.data(),
                                              Ends.data(), 0);
          ASSERT_GE(GotN, Want);
          for (size_t I = 0; I < GotN; ++I) {
            ASSERT_EQ(Got[I], Vals[I]);
            ASSERT_EQ(Ends[I], WantEnds[I]);
          }
        }
      }
    }
  }
}

TEST(VarintBlockDecode, Narrow32OutputMatches) {
  // The uint32_t-output kernel variant (used by 32-bit-key chunks) must
  // agree with the wide variant when every value fits 32 bits.
  std::vector<uint64_t> Vals;
  for (size_t I = 0; I < 300; ++I)
    Vals.push_back(hash64(I) >> (32 + I % 32));
  auto [Buf, WantEnds] = encodeAll(Vals);
  const uint8_t *In = Buf.data();
  std::vector<uint32_t> Got(Vals.size() + VarintBlockSlack);
  std::vector<uint32_t> Ends(Vals.size() + VarintBlockSlack);
  size_t N = 0;
  uint32_t Base = 0;
  while (N < Vals.size()) {
    size_t Want = std::min<size_t>(32, Vals.size() - N);
    size_t GotN = decodeVarintBlock(In, Vals.size() - N, Want,
                                    Got.data() + N, Ends.data() + N, Base);
    N += GotN;
    Base = Ends[N - 1];
  }
  ASSERT_EQ(N, Vals.size());
  for (size_t I = 0; I < Vals.size(); ++I) {
    ASSERT_EQ(Got[I], uint32_t(Vals[I]));
    ASSERT_EQ(Ends[I], WantEnds[I]);
  }
}

TEST(BlockVarintCursor, MatchesVarintCursor) {
  for (int Mode = 0; Mode <= 4; ++Mode) {
    auto Vals = blockTestStream(Mode, 500);
    auto [Buf, WantEnds] = encodeAll(Vals);
    BlockVarintCursor B(Buf.data(), Vals.size());
    VarintCursor S(Buf.data(), Vals.size());
    for (size_t I = 0; I < Vals.size(); ++I) {
      ASSERT_FALSE(B.done());
      ASSERT_EQ(B.remaining(), Vals.size() - I);
      // Buffered head: peek-then-next is one decode and agrees with the
      // scalar cursor.
      ASSERT_EQ(B.peek(), S.peek());
      ASSERT_EQ(B.next(), S.next());
      ASSERT_EQ(B.consumedBytes(), WantEnds[I]);
    }
    ASSERT_TRUE(B.done());
  }
}

TEST(VarintCursor, AdvancePeekedCostsOneDecode) {
  auto Vals = blockTestStream(3, 200);
  auto [Buf, Ends] = encodeAll(Vals);
  VarintCursor Cu(Buf.data(), Vals.size());
  for (size_t I = 0; I < Vals.size(); ++I) {
    unsigned Width = 0;
    ASSERT_EQ(Cu.peek(Width), Vals[I]);
    ASSERT_EQ(Width, varintSize(Vals[I]));
    Cu.advancePeeked(Width);
    ASSERT_EQ(Cu.pos(), Buf.data() + Ends[I]);
  }
  ASSERT_TRUE(Cu.done());
}

TYPED_TEST(ChunkCodecTest, BlockCursorMatchesCursor) {
  using Codec = TypeParam;
  for (uint64_t Range : {300u, 40000u, ~0u}) {
    std::vector<uint32_t> E;
    for (size_t I = 0; I < 700; ++I)
      E.push_back(uint32_t(hashAt(Range, I) % Range));
    std::sort(E.begin(), E.end());
    E.erase(std::unique(E.begin(), E.end()), E.end());
    auto *C = makeChunk<Codec>(E.data(), E.size());
    // Element-at-a-time equality, including byte offsets.
    typename Codec::template Cursor<uint32_t> Sc(C);
    typename Codec::template BlockCursor<uint32_t> Bc(C);
    for (size_t I = 0; I < E.size(); ++I) {
      ASSERT_FALSE(Bc.done());
      ASSERT_EQ(Bc.value(), Sc.value());
      ASSERT_EQ(Bc.remaining(), Sc.remaining());
      ASSERT_EQ(Bc.byteOffset(), Sc.byteOffset());
      Bc.advance();
      Sc.advance();
    }
    ASSERT_TRUE(Bc.done());
    // Bulk iterate sees the same sequence.
    std::vector<uint32_t> Got;
    Codec::template iterate<uint32_t>(C, [&](uint32_t V) {
      Got.push_back(V);
      return true;
    });
    EXPECT_EQ(Got, E);
    // Early exit stops exactly where asked.
    size_t Seen = 0;
    Codec::template iterate<uint32_t>(C, [&](uint32_t) {
      return ++Seen < 10;
    });
    EXPECT_EQ(Seen, std::min<size_t>(10, E.size()));
    releaseChunk(C);
  }
}
