//===- tests/algorithms_test.cpp - Graph algorithm tests ------------------===//
//
// The paper's five algorithms (BFS, BC, MIS, 2-hop, Local-Cluster) plus
// the extension algorithms, cross-checked against simple sequential
// reference implementations on random and structured graphs, over both
// Aspen views and flat snapshots.
//
//===----------------------------------------------------------------------===//

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/cc.h"
#include "algorithms/kcore.h"
#include "algorithms/local_cluster.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/two_hop.h"
#include "gen/generators.h"
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

using namespace aspen;

namespace {

using Adj = std::vector<std::vector<VertexId>>;

Adj adjFromEdges(VertexId N, const std::vector<EdgePair> &Edges) {
  Adj A(N);
  for (const EdgePair &E : Edges)
    A[E.first].push_back(E.second);
  for (auto &Nbrs : A) {
    std::sort(Nbrs.begin(), Nbrs.end());
    Nbrs.erase(std::unique(Nbrs.begin(), Nbrs.end()), Nbrs.end());
  }
  return A;
}

std::vector<uint32_t> refBfs(const Adj &A, VertexId Src) {
  std::vector<uint32_t> Dist(A.size(), ~0u);
  std::deque<VertexId> Q = {Src};
  Dist[Src] = 0;
  while (!Q.empty()) {
    VertexId V = Q.front();
    Q.pop_front();
    for (VertexId U : A[V])
      if (Dist[U] == ~0u) {
        Dist[U] = Dist[V] + 1;
        Q.push_back(U);
      }
  }
  return Dist;
}

std::vector<double> refBrandes(const Adj &A, VertexId Src) {
  size_t N = A.size();
  std::vector<double> Sigma(N, 0.0), Delta(N, 0.0);
  std::vector<int64_t> Dist(N, -1);
  std::vector<VertexId> Order;
  Sigma[Src] = 1.0;
  Dist[Src] = 0;
  std::deque<VertexId> Q = {Src};
  while (!Q.empty()) {
    VertexId V = Q.front();
    Q.pop_front();
    Order.push_back(V);
    for (VertexId U : A[V]) {
      if (Dist[U] < 0) {
        Dist[U] = Dist[V] + 1;
        Q.push_back(U);
      }
      if (Dist[U] == Dist[V] + 1)
        Sigma[U] += Sigma[V];
    }
  }
  for (size_t I = Order.size(); I-- > 0;) {
    VertexId W = Order[I];
    for (VertexId U : A[W])
      if (Dist[U] == Dist[W] - 1)
        Delta[U] += Sigma[U] / Sigma[W] * (1.0 + Delta[W]);
  }
  Delta[Src] = 0.0;
  return Delta;
}

bool isValidMis(const Adj &A, const std::vector<uint8_t> &In) {
  // Independence.
  for (VertexId V = 0; V < A.size(); ++V)
    if (In[V])
      for (VertexId U : A[V])
        if (U != V && In[U])
          return false;
  // Maximality: every non-member has a member neighbor.
  for (VertexId V = 0; V < A.size(); ++V) {
    if (In[V])
      continue;
    bool HasMemberNeighbor = false;
    for (VertexId U : A[V])
      if (U != V && In[U]) {
        HasMemberNeighbor = true;
        break;
      }
    if (!HasMemberNeighbor)
      return false;
  }
  return true;
}

struct TestGraph {
  VertexId N;
  std::vector<EdgePair> Edges;
  Graph G;
  Adj A;

  TestGraph(VertexId N, std::vector<EdgePair> E)
      : N(N), Edges(std::move(E)), G(Graph::fromEdges(N, Edges)),
        A(adjFromEdges(N, Edges)) {}
};

TestGraph rmatTestGraph(int LogN, uint64_t Factor, uint64_t Seed) {
  return TestGraph(VertexId(1) << LogN, rmatGraphEdges(LogN, Factor, Seed));
}

} // namespace

//===----------------------------------------------------------------------===
// BFS.
//===----------------------------------------------------------------------===

class BfsParamTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(BfsParamTest, DistancesMatchReferenceOnRmat) {
  auto [LogN, Seed] = GetParam();
  TestGraph T = rmatTestGraph(LogN, 6, Seed);
  TreeGraphView View(T.G);
  auto Ref = refBfs(T.A, 0);
  EXPECT_EQ(bfsDistances(View, 0), Ref);
  // Parents must be consistent: Dist[parent[v]] + 1 == Dist[v].
  auto Parents = bfs(View, 0);
  for (VertexId V = 0; V < T.N; ++V) {
    if (Ref[V] == ~0u) {
      EXPECT_EQ(Parents[V], NoVertex);
    } else if (V != 0) {
      ASSERT_NE(Parents[V], NoVertex);
      EXPECT_EQ(Ref[Parents[V]] + 1, Ref[V]) << "vertex " << V;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BfsParamTest,
                         ::testing::Combine(::testing::Values(6, 8, 10),
                                            ::testing::Values(1, 2, 3)));

TEST(Bfs, PathGraphHasLinearDistances) {
  const VertexId N = 500;
  Graph G = Graph::fromEdges(N, pathGraph(N));
  TreeGraphView View(G);
  auto Dist = bfsDistances(View, 0);
  for (VertexId V = 0; V < N; ++V)
    ASSERT_EQ(Dist[V], V);
}

TEST(Bfs, DisconnectedComponentUnreached) {
  Graph G = Graph::fromEdges(6, {{0, 1}, {1, 0}, {3, 4}, {4, 3}});
  TreeGraphView View(G);
  auto Dist = bfsDistances(View, 0);
  EXPECT_EQ(Dist[1], 1u);
  EXPECT_EQ(Dist[3], ~0u);
  EXPECT_EQ(Dist[4], ~0u);
  EXPECT_EQ(Dist[5], ~0u);
}

TEST(Bfs, FlatSnapshotMatchesTreeView) {
  TestGraph T = rmatTestGraph(9, 8, 5);
  FlatSnapshot FS(T.G);
  TreeGraphView TV(T.G);
  FlatGraphView FV(FS);
  EXPECT_EQ(bfsDistances(TV, 0), bfsDistances(FV, 0));
}

TEST(Bfs, NoDenseMatchesDefault) {
  TestGraph T = rmatTestGraph(9, 8, 6);
  TreeGraphView View(T.G);
  EdgeMapOptions NoDense;
  NoDense.NoDense = true;
  EXPECT_EQ(bfsDistances(View, 0), bfsDistances(View, 0, NoDense));
}

//===----------------------------------------------------------------------===
// BC.
//===----------------------------------------------------------------------===

class BcParamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BcParamTest, MatchesBrandesOnRmat) {
  TestGraph T = rmatTestGraph(8, 6, GetParam());
  TreeGraphView View(T.G);
  auto Got = bc(View, 0);
  auto Ref = refBrandes(T.A, 0);
  ASSERT_EQ(Got.size(), Ref.size());
  for (size_t I = 0; I < Got.size(); ++I)
    ASSERT_NEAR(Got[I], Ref[I], 1e-6 * (1.0 + std::fabs(Ref[I])))
        << "vertex " << I;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BcParamTest, ::testing::Values(1, 2, 3, 4));

TEST(Bc, StarCenterDependency) {
  const VertexId N = 50;
  Graph G = Graph::fromEdges(N, starGraph(N));
  TreeGraphView View(G);
  auto Scores = bc(View, 1); // a leaf
  // All shortest paths from leaf 1 to other leaves pass through center 0:
  // dependency of 0 is (N-2) (one per other leaf).
  EXPECT_NEAR(Scores[0], double(N - 2), 1e-9);
  EXPECT_NEAR(Scores[2], 0.0, 1e-9);
}

TEST(Bc, FlatViewMatchesTreeView) {
  TestGraph T = rmatTestGraph(8, 8, 7);
  FlatSnapshot FS(T.G);
  TreeGraphView TV(T.G);
  FlatGraphView FV(FS);
  auto A = bc(TV, 3), B = bc(FV, 3);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_NEAR(A[I], B[I], 1e-9);
}

//===----------------------------------------------------------------------===
// MIS.
//===----------------------------------------------------------------------===

class MisParamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MisParamTest, ValidOnRmat) {
  TestGraph T = rmatTestGraph(9, 6, GetParam());
  TreeGraphView View(T.G);
  auto In = mis(View, GetParam());
  EXPECT_TRUE(isValidMis(T.A, In));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisParamTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Mis, CliqueHasExactlyOne) {
  Graph G = Graph::fromEdges(20, cliqueGraph(20));
  TreeGraphView View(G);
  auto In = mis(View);
  int Count = 0;
  for (uint8_t B : In)
    Count += B;
  EXPECT_EQ(Count, 1);
}

TEST(Mis, EdgelessGraphAllIn) {
  Graph G = Graph::fromEdges(10, {});
  TreeGraphView View(G);
  auto In = mis(View);
  for (uint8_t B : In)
    EXPECT_EQ(B, 1);
}

//===----------------------------------------------------------------------===
// 2-hop and Local-Cluster (local algorithms).
//===----------------------------------------------------------------------===

TEST(TwoHop, MatchesReference) {
  TestGraph T = rmatTestGraph(8, 6, 11);
  TreeGraphView View(T.G);
  for (VertexId Src = 0; Src < 40; Src += 7) {
    std::set<VertexId> Ref = {Src};
    for (VertexId U : T.A[Src]) {
      Ref.insert(U);
      for (VertexId W : T.A[U])
        Ref.insert(W);
    }
    EXPECT_EQ(twoHop(View, Src),
              std::vector<VertexId>(Ref.begin(), Ref.end()))
        << "source " << Src;
  }
}

TEST(TwoHop, IsolatedVertex) {
  Graph G = Graph::fromEdges(5, {{1, 2}, {2, 1}});
  TreeGraphView View(G);
  EXPECT_EQ(twoHop(View, 0), (std::vector<VertexId>{0}));
}

TEST(LocalCluster, FindsPlantedCommunity) {
  // Two 30-cliques joined by a single edge: the sweep from inside one
  // clique should cut at (or very near) the bridge.
  std::vector<EdgePair> E;
  auto AddClique = [&](VertexId Base, VertexId Size) {
    for (VertexId I = 0; I < Size; ++I)
      for (VertexId J = 0; J < Size; ++J)
        if (I != J)
          E.push_back({Base + I, Base + J});
  };
  AddClique(0, 30);
  AddClique(30, 30);
  E.push_back({0, 30});
  E.push_back({30, 0});
  Graph G = Graph::fromEdges(60, E);
  TreeGraphView View(G);
  auto R = localCluster(View, 5, 1e-7, 15);
  EXPECT_LT(R.Conductance, 0.05);
  // The cluster should be (nearly) the first clique.
  size_t InFirst = 0;
  for (VertexId V : R.Cluster)
    InFirst += V < 30 ? 1 : 0;
  EXPECT_GE(InFirst * 10, R.Cluster.size() * 9);
}

TEST(LocalCluster, SeedAlwaysCovered) {
  TestGraph T = rmatTestGraph(8, 6, 13);
  TreeGraphView View(T.G);
  auto R = localCluster(View, 1);
  EXPECT_FALSE(R.Cluster.empty());
}

//===----------------------------------------------------------------------===
// Extensions: CC, PageRank, k-core.
//===----------------------------------------------------------------------===

TEST(ConnectedComponents, MatchesReferenceLabels) {
  // Three components: a path, a clique, an isolated vertex.
  std::vector<EdgePair> E = pathGraph(5); // 0..4
  auto C = cliqueGraph(4);                // relabel to 10..13
  for (auto &P : C)
    E.push_back({P.first + 10, P.second + 10});
  Graph G = Graph::fromEdges(20, E);
  TreeGraphView View(G);
  auto Labels = connectedComponents(View);
  for (VertexId V = 0; V <= 4; ++V)
    EXPECT_EQ(Labels[V], 0u);
  for (VertexId V = 10; V <= 13; ++V)
    EXPECT_EQ(Labels[V], 10u);
  EXPECT_EQ(Labels[7], 7u);
}

TEST(ConnectedComponents, RmatSingleGiantComponent) {
  TestGraph T = rmatTestGraph(9, 8, 17);
  TreeGraphView View(T.G);
  auto Labels = connectedComponents(View);
  auto Dist = refBfs(T.A, 0);
  for (VertexId V = 0; V < T.N; ++V) {
    if (Dist[V] != ~0u) {
      ASSERT_EQ(Labels[V], Labels[0]);
    }
  }
}

TEST(PageRank, SumsToOneOnConnected) {
  Graph G = Graph::fromEdges(64, cliqueGraph(64));
  TreeGraphView View(G);
  auto P = pageRank(View, 30);
  double Sum = 0.0;
  for (double X : P)
    Sum += X;
  EXPECT_NEAR(Sum, 1.0, 1e-6);
  // Symmetric graph: uniform scores.
  for (double X : P)
    EXPECT_NEAR(X, 1.0 / 64, 1e-9);
}

TEST(PageRank, StarConcentratesOnCenter) {
  Graph G = Graph::fromEdges(50, starGraph(50));
  TreeGraphView View(G);
  auto P = pageRank(View, 40);
  for (VertexId V = 1; V < 50; ++V)
    EXPECT_GT(P[0], P[V]);
}

TEST(KCore, CliquePlusPath) {
  // A 5-clique (core 4) with a path tail (core 1).
  std::vector<EdgePair> E = cliqueGraph(5);
  E.push_back({4, 5});
  E.push_back({5, 4});
  E.push_back({5, 6});
  E.push_back({6, 5});
  Graph G = Graph::fromEdges(7, E);
  TreeGraphView View(G);
  auto Core = kCore(View);
  for (VertexId V = 0; V < 5; ++V)
    EXPECT_EQ(Core[V], 4u) << "clique vertex " << V;
  EXPECT_EQ(Core[5], 1u);
  EXPECT_EQ(Core[6], 1u);
}

TEST(KCore, DegenerateGraphs) {
  Graph Empty = Graph::fromEdges(4, {});
  TreeGraphView EV(Empty);
  auto Core = kCore(EV);
  for (uint32_t C : Core)
    EXPECT_EQ(C, 0u);
}

//===----------------------------------------------------------------------===
// Algorithms over freshly-updated snapshots (streaming correctness).
//===----------------------------------------------------------------------===

TEST(StreamingAlgorithms, BfsAfterBatchUpdatesMatchesRebuild) {
  const VertexId N = 256;
  auto Initial = rmatGraphEdges(8, 4, 21);
  Graph G = Graph::fromEdges(N, Initial);
  std::vector<EdgePair> All = Initial;
  for (int Round = 0; Round < 4; ++Round) {
    auto Raw = uniformRandomEdges(N, 300, 500 + Round);
    auto Batch = dedupEdges(symmetrize(Raw));
    G = G.insertEdges(Batch);
    All.insert(All.end(), Batch.begin(), Batch.end());
  }
  Graph Fresh = Graph::fromEdges(N, All);
  TreeGraphView VG(G), VF(Fresh);
  EXPECT_EQ(bfsDistances(VG, 0), bfsDistances(VF, 0));
  EXPECT_EQ(G.numEdges(), Fresh.numEdges());
}
