//===- tests/pool_test.cpp - Pool allocator tests -------------------------===//

#include "memory/pool_allocator.h"
#include "memory/algo_context.h"
#include "parallel/scheduler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

using namespace aspen;

namespace {
struct Blob40 {
  char Data[40];
};
struct Blob64 {
  char Data[64];
};
} // namespace

TEST(FixedPool, AllocFreeRoundTrip) {
  FixedPool P(32);
  void *A = P.alloc();
  void *B = P.alloc();
  EXPECT_NE(A, nullptr);
  EXPECT_NE(B, nullptr);
  EXPECT_NE(A, B);
  EXPECT_EQ(P.liveCount(), 2);
  P.free(A);
  P.free(B);
  EXPECT_EQ(P.liveCount(), 0);
}

TEST(FixedPool, ReusesFreedBlocks) {
  FixedPool P(48);
  void *A = P.alloc();
  P.free(A);
  void *B = P.alloc();
  EXPECT_EQ(A, B) << "LIFO local cache should reuse the freed block";
  P.free(B);
}

TEST(FixedPool, DistinctAddresses) {
  FixedPool P(24);
  std::set<void *> Seen;
  std::vector<void *> Blocks;
  for (int I = 0; I < 10000; ++I) {
    void *B = P.alloc();
    ASSERT_TRUE(Seen.insert(B).second) << "duplicate allocation";
    Blocks.push_back(B);
  }
  EXPECT_EQ(P.liveCount(), 10000);
  for (void *B : Blocks)
    P.free(B);
  EXPECT_EQ(P.liveCount(), 0);
}

TEST(FixedPool, BlocksAreWritable) {
  FixedPool P(sizeof(Blob64));
  std::vector<void *> Blocks;
  for (int I = 0; I < 1000; ++I) {
    void *B = P.alloc();
    std::memset(B, I & 0xff, sizeof(Blob64));
    Blocks.push_back(B);
  }
  for (int I = 0; I < 1000; ++I) {
    auto *C = static_cast<unsigned char *>(Blocks[I]);
    for (size_t J = 0; J < sizeof(Blob64); ++J)
      ASSERT_EQ(C[J], I & 0xff);
  }
  for (void *B : Blocks)
    P.free(B);
}

TEST(FixedPool, ConcurrentAllocFree) {
  FixedPool P(40);
  const size_t PerTask = 2000;
  parallelFor(0, 64, [&](size_t) {
    std::vector<void *> Mine;
    for (size_t I = 0; I < PerTask; ++I)
      Mine.push_back(P.alloc());
    for (void *B : Mine)
      P.free(B);
  }, 1);
  EXPECT_EQ(P.liveCount(), 0);
}

TEST(FixedPool, SpillAndRefillAcrossContexts) {
  // Allocate in parallel, free everything from this thread: blocks migrate
  // through the global segment list without corruption.
  FixedPool P(16);
  std::vector<void *> All(32 * 1024);
  parallelFor(0, All.size(), [&](size_t I) { All[I] = P.alloc(); }, 64);
  std::set<void *> Seen(All.begin(), All.end());
  EXPECT_EQ(Seen.size(), All.size());
  for (void *B : All)
    P.free(B);
  EXPECT_EQ(P.liveCount(), 0);
  // Reallocate; everything should still work.
  void *X = P.alloc();
  EXPECT_NE(X, nullptr);
  P.free(X);
}

TEST(NodePool, TypedPoolsAreIndependent) {
  int64_t Base40 = NodePool<Blob40>::liveCount();
  int64_t Base64 = NodePool<Blob64>::liveCount();
  void *A = NodePool<Blob40>::allocRaw();
  EXPECT_EQ(NodePool<Blob40>::liveCount(), Base40 + 1);
  EXPECT_EQ(NodePool<Blob64>::liveCount(), Base64);
  NodePool<Blob40>::freeRaw(A);
  EXPECT_EQ(NodePool<Blob40>::liveCount(), Base40);
}

TEST(CountedAlloc, TracksBytes) {
  int64_t Base = liveCountedBytes();
  void *A = countedAlloc(1000);
  EXPECT_EQ(liveCountedBytes(), Base + 1000);
  void *B = countedAlloc(24);
  EXPECT_EQ(liveCountedBytes(), Base + 1024);
  countedFree(A, 1000);
  countedFree(B, 24);
  EXPECT_EQ(liveCountedBytes(), Base);
}

TEST(CountedAlloc, CountsEvents) {
  uint64_t Base = countedAllocEvents();
  void *A = countedAlloc(64);
  void *B = countedAlloc(64);
  EXPECT_EQ(countedAllocEvents(), Base + 2);
  countedFree(A, 64);
  countedFree(B, 64);
  // Events are cumulative: frees do not decrement.
  EXPECT_EQ(countedAllocEvents(), Base + 2);
}

TEST(Scratch, ReusesBlocksAcrossAcquires) {
  // Warm the cache, then repeated acquire/release cycles must not touch
  // the OS allocator again.
  size_t Cap1 = 0;
  void *P = scratchAcquire(1000, Cap1);
  EXPECT_GE(Cap1, 1000u);
  scratchRelease(P, Cap1);
  uint64_t Warm = scratchAllocEvents();
  for (int I = 0; I < 100; ++I) {
    size_t Cap = 0;
    void *Q = scratchAcquire(1000, Cap);
    EXPECT_GE(Cap, 1000u);
    // The block must be usable end to end.
    std::memset(Q, 0xab, Cap);
    scratchRelease(Q, Cap);
  }
  EXPECT_EQ(scratchAllocEvents(), Warm);
}

TEST(Scratch, NestedBorrowsGetDistinctBlocks) {
  size_t CapA = 0, CapB = 0;
  void *A = scratchAcquire(512, CapA);
  void *B = scratchAcquire(512, CapB);
  EXPECT_NE(A, B);
  std::memset(A, 1, CapA);
  std::memset(B, 2, CapB);
  EXPECT_EQ(static_cast<unsigned char *>(A)[0], 1);
  EXPECT_EQ(static_cast<unsigned char *>(B)[0], 2);
  scratchRelease(B, CapB);
  scratchRelease(A, CapA);
}

TEST(Scratch, TypedArrayRoundTrip) {
  // The size-only CtxArray constructor is the former ScratchArray path:
  // a context-less borrow from the per-worker scratch cache.
  CtxArray<uint32_t> A(333);
  ASSERT_EQ(A.size(), 333u);
  for (size_t I = 0; I < A.size(); ++I)
    A[I] = uint32_t(I * 3);
  for (size_t I = 0; I < A.size(); ++I)
    ASSERT_EQ(A[I], uint32_t(I * 3));
}
