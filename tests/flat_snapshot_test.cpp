//===- tests/flat_snapshot_test.cpp - Incremental flat snapshots ----------===//
//
// Differential coverage for the paged-CoW flat snapshot (DESIGN.md
// Section 4): the write-once full build, epoch-to-epoch refresh against
// from-scratch rebuilds across churned epochs (inserts + deletes +
// vertex-universe growth) on both the versioned and the sharded store,
// the refresh-vs-rebuild policy (threshold, raw set() gaps, cache hits),
// page sharing, and graph-view trait coverage of the flat views.
//
//===----------------------------------------------------------------------===//

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/cc.h"
#include "algorithms/kcore.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/triangle_count.h"
#include "gen/generators.h"
#include "graph/versioned_graph.h"
#include "ligra/edge_map.h"
#include "store/sharded_graph.h"

#include <gtest/gtest.h>

#include <vector>

using namespace aspen;

namespace {

using ES = CTreeSet<VertexId, DeltaByteCodec>;

std::vector<EdgePair> randomBatch(VertexId N, size_t K, uint64_t Seed) {
  return dedupEdges(symmetrize(uniformRandomEdges(N, K, Seed)));
}

/// Pin the canonical (sequential) schedule for bit-exactness assertions
/// on float-accumulating algorithms.
struct SequentialScope {
  SequentialScope() { setSequentialMode(true); }
  ~SequentialScope() { setSequentialMode(false); }
};

/// Adjacency of \p U through a view's cursor surface.
template <class View>
std::vector<VertexId> adjacency(const View &V, VertexId U) {
  std::vector<VertexId> Out;
  for (auto C = V.neighborCursor(U); !C.done(); C.advance())
    Out.push_back(C.value());
  return Out;
}

/// The flat snapshot must agree with its source snapshot slot by slot.
void expectFlatMatchesTree(const FlatSnapshot &FS, const Graph &G) {
  ASSERT_EQ(FS.numVertices(), G.vertexUniverse());
  EXPECT_EQ(FS.numEdges(), G.numEdges());
  for (VertexId V = 0; V < FS.numVertices(); ++V) {
    ASSERT_EQ(FS.degree(V), G.degree(V)) << "vertex " << V;
    ASSERT_EQ(FS.edges(V).toVector(), G.findVertex(V).toVector())
        << "vertex " << V;
  }
}

// Trait coverage: both flat views (and the tree views they substitute
// for) satisfy the graph-view concept and the streaming-cursor surface.
static_assert(IsGraphViewV<TreeGraphView<ES>>, "");
static_assert(IsGraphViewV<FlatGraphView<ES>>, "");
static_assert(IsGraphViewV<ShardedGraphView>, "");
static_assert(IsGraphViewV<ShardedFlatView>, "");
static_assert(HasNeighborCursorV<TreeGraphView<ES>>, "");
static_assert(HasNeighborCursorV<FlatGraphView<ES>>, "");
static_assert(HasNeighborCursorV<ShardedGraphView>, "");
static_assert(HasNeighborCursorV<ShardedFlatView>, "");

} // namespace

//===----------------------------------------------------------------------===
// Paged write-once build.
//===----------------------------------------------------------------------===

TEST(FlatPaged, BuildMatchesTreeAccessWithHoles) {
  // Sparse sources: the universe is full of holes, every one of which
  // must come out as an empty slot of the write-once build.
  Graph G = Graph().insertEdges(
      {{5, 1}, {5, 9}, {100, 2}, {1000, 3}, {2500, 4}, {2500, 5}});
  FlatSnapshot FS(G);
  ASSERT_EQ(FS.numVertices(), 2501u);
  expectFlatMatchesTree(FS, G);
  EXPECT_EQ(FS.degree(6), 0u);
  EXPECT_TRUE(FS.edges(6).toVector().empty());
}

TEST(FlatPaged, BuildMatchesOnDenseGraph) {
  const VertexId N = 3000; // non-page-aligned universe
  Graph G = Graph::fromEdges(N, randomBatch(N, 20000, 71));
  FlatSnapshot FS(G);
  expectFlatMatchesTree(FS, G);
}

TEST(FlatPaged, CopySharesPages) {
  const VertexId N = 5000;
  Graph G = Graph::fromEdges(N, randomBatch(N, 10000, 72));
  FlatSnapshot A(G);
  FlatSnapshot B(A);
  EXPECT_EQ(A.sharedPages(), A.numPages());
  EXPECT_EQ(B.numPages(), A.numPages());
  expectFlatMatchesTree(B, G);
}

TEST(FlatPaged, MemoryBytesAccountsPageMetadata) {
  const VertexId N = 4096;
  Graph G = Graph::fromEdges(N, randomBatch(N, 8000, 73));
  FlatSnapshot FS(G);
  // Table 2 honesty: the footprint must cover the slot payload of every
  // page plus the per-page refcount header and the page table, i.e. be
  // strictly larger than the bare slot arrays.
  size_t SlotBytes =
      FS.numPages() * FlatSnapshot::PageSlots *
      (sizeof(FlatSnapshot::SetView) + sizeof(uint32_t));
  EXPECT_GT(FS.memoryBytes(), SlotBytes);
  EXPECT_LT(FS.memoryBytes(), SlotBytes + FS.numPages() * 64 +
                                  (FS.numPages() + 1) * sizeof(void *) * 2);
}

//===----------------------------------------------------------------------===
// refresh() against from-scratch rebuilds.
//===----------------------------------------------------------------------===

TEST(FlatRefresh, MatchesRebuildAcrossChurnedEpochs) {
  const VertexId N = 2048;
  VersionedGraph VG(Graph::fromEdges(N, randomBatch(N, 8000, 80)));

  auto First = VG.acquireFlat(); // cold: full rebuild
  EXPECT_EQ(VG.flatStats().Rebuilds, 1u);

  for (int E = 0; E < 24; ++E) {
    if (E % 3 == 2) {
      // Every third epoch deletes a slice of an earlier insert batch.
      VG.deleteEdgesBatch(randomBatch(N, 60, 81 + uint64_t(E) - 2));
    } else {
      auto Batch = randomBatch(N, 60, 81 + uint64_t(E));
      // Universe growth: a source beyond every previous id.
      VertexId Grown = N + VertexId(E) * 7 + 1;
      Batch.push_back({Grown, VertexId(E)});
      Batch.push_back({VertexId(E), Grown});
      VG.insertEdgesBatch(std::move(Batch));
    }
    auto FS = VG.acquireFlat();
    auto V = VG.acquire();
    expectFlatMatchesTree(*FS, V.graph());

    // Algorithm results must be bit-identical between the flat and the
    // tree view of the same version.
    TreeGraphView<ES> TV(V.graph());
    FlatGraphView<ES> FV(*FS);
    EXPECT_EQ(bfsDistances(TV, 0), bfsDistances(FV, 0));
    EXPECT_EQ(connectedComponents(TV), connectedComponents(FV));
  }
  auto Stats = VG.flatStats();
  EXPECT_EQ(Stats.Rebuilds, 1u) << "churn epochs must refresh, not rebuild";
  EXPECT_EQ(Stats.Refreshes, 24u);
}

TEST(FlatRefresh, MultiEpochReplayAndCacheHits) {
  const VertexId N = 4096;
  VersionedGraph VG(Graph::fromEdges(N, randomBatch(N, 8000, 90)));
  auto A = VG.acquireFlat();
  // Several epochs between acquireFlat calls: one refresh replays them all.
  for (int E = 0; E < 5; ++E)
    VG.insertEdgesBatch(randomBatch(N, 20, 91 + uint64_t(E)));
  auto B = VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Refreshes, 1u);
  auto C = VG.acquireFlat(); // unchanged epoch: cached object
  EXPECT_EQ(B.get(), C.get());
  EXPECT_GE(VG.flatStats().Hits, 1u);
  expectFlatMatchesTree(*B, VG.acquire().graph());
  // The superseded flat snapshot A still answers for its own version.
  EXPECT_EQ(A->numVertices(), N);
}

TEST(FlatRefresh, LargeBatchFallsBackToRebuild) {
  const VertexId N = 1 << 14;
  VersionedGraph VG(Graph::fromEdges(N, randomBatch(N, 30000, 95)));
  (void)VG.acquireFlat();
  // Touches well over universe/8 distinct sources: rebuild path.
  VG.insertEdgesBatch(randomBatch(N, 30000, 96));
  auto FS = VG.acquireFlat();
  auto Stats = VG.flatStats();
  EXPECT_EQ(Stats.Rebuilds, 2u);
  EXPECT_EQ(Stats.Refreshes, 0u);
  expectFlatMatchesTree(*FS, VG.acquire().graph());
}

TEST(FlatRefresh, RawSetForcesRebuildThenRecovers) {
  const VertexId N = 1024;
  VersionedGraph VG(Graph::fromEdges(N, randomBatch(N, 4000, 97)));
  (void)VG.acquireFlat();
  // A raw set() records no digest: the replay span is uncovered.
  VG.set(VG.acquire().graph().insertEdges(randomBatch(N, 50, 98)));
  auto FS = VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Rebuilds, 2u);
  expectFlatMatchesTree(*FS, VG.acquire().graph());
  // Digest recording resumes: the next batch refreshes again.
  VG.insertEdgesBatch(randomBatch(N, 50, 99));
  (void)VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Refreshes, 1u);
}

TEST(FlatRefresh, SharesUntouchedPagesWithPredecessor) {
  const VertexId N = 1 << 15; // 32 pages
  VersionedGraph VG(Graph::fromEdges(N, randomBatch(N, 60000, 100)));
  auto A = VG.acquireFlat();
  // One batch confined to a narrow id range: most pages must be shared.
  std::vector<EdgePair> Batch;
  for (VertexId V = 100; V < 140; ++V)
    Batch.push_back({V, (V * 7) % N});
  VG.insertEdgesBatch(symmetrize(Batch));
  auto B = VG.acquireFlat();
  EXPECT_EQ(VG.flatStats().Refreshes, 1u);
  ASSERT_EQ(B->numPages(), A->numPages());
  // The touched sources span a handful of pages; everything else is
  // co-owned with A.
  EXPECT_GE(B->sharedPages(), B->numPages() - 4);
  expectFlatMatchesTree(*B, VG.acquire().graph());
}

//===----------------------------------------------------------------------===
// Sharded store: composed flat epochs.
//===----------------------------------------------------------------------===

TEST(ShardedFlat, MatchesTreeViewAcrossChurnedEpochs) {
  const VertexId N = 2048;
  ShardedGraphStore Store(4, N, randomBatch(N, 8000, 110));
  (void)Store.acquireFlat();
  EXPECT_EQ(Store.flatStats().Rebuilds, 1u);

  for (int E = 0; E < 24; ++E) {
    if (E % 3 == 2) {
      Store.deleteBatch(randomBatch(N, 60, 111 + uint64_t(E) - 2));
    } else {
      auto Batch = randomBatch(N, 60, 111 + uint64_t(E));
      VertexId Grown = N + VertexId(E) * 5 + 1;
      Batch.push_back({Grown, VertexId(E)});
      Batch.push_back({VertexId(E), Grown});
      Store.insertBatch(Batch);
    }
    auto FE = Store.acquireFlat();
    auto R = Store.acquire();
    ASSERT_EQ(FE->BatchSeq, R.batchSeq());
    auto TV = R.view();
    auto FV = FE->view();
    ASSERT_EQ(FV.numVertices(), TV.numVertices());
    ASSERT_EQ(FV.numEdges(), TV.numEdges());
    for (VertexId V = 0; V < TV.numVertices(); ++V) {
      ASSERT_EQ(FV.degree(V), TV.degree(V)) << "vertex " << V;
      ASSERT_EQ(adjacency(FV, V), adjacency(TV, V)) << "vertex " << V;
    }
    EXPECT_EQ(bfsDistances(TV, 0), bfsDistances(FV, 0));
    EXPECT_EQ(connectedComponents(TV), connectedComponents(FV));
  }
  auto Stats = Store.flatStats();
  EXPECT_EQ(Stats.Rebuilds, 1u);
  EXPECT_EQ(Stats.Refreshes, 24u);
}

TEST(ShardedFlat, AllAlgorithmsMatchTreeViewExactly) {
  const VertexId N = 1 << 12;
  auto Edges = randomBatch(N, 16000, 112);
  ShardedGraphStore Store(4, N, Edges);
  (void)Store.acquireFlat();
  Store.insertBatch(randomBatch(N, 120, 113));
  auto FE = Store.acquireFlat();
  EXPECT_EQ(Store.flatStats().Refreshes, 1u);
  auto R = Store.acquire();
  auto TV = R.view();
  auto FV = FE->view();

  SequentialScope Seq;
  EXPECT_EQ(bfs(TV, 3), bfs(FV, 3));
  EXPECT_EQ(bfsDistances(TV, 3), bfsDistances(FV, 3));
  EXPECT_EQ(connectedComponents(TV), connectedComponents(FV));
  EXPECT_EQ(kCore(TV), kCore(FV));
  EXPECT_EQ(pageRank(TV), pageRank(FV));
  EXPECT_EQ(triangleCount(TV), triangleCount(FV));
  EXPECT_EQ(mis(TV), mis(FV));
  EXPECT_EQ(bc(TV, 5), bc(FV, 5));
}

TEST(ShardedFlat, UntouchedShardsShareWholesale) {
  const VertexId N = 1 << 12;
  ShardedGraphStore Store(4, N, randomBatch(N, 16000, 114));
  auto A = Store.acquireFlat();
  // A batch whose endpoints all live in shard 0 (ids ≡ 0 mod 4).
  std::vector<EdgePair> Batch;
  for (VertexId V = 0; V < 160; V += 4)
    Batch.push_back({V, (V + 64) % N});
  Store.insertBatch(symmetrize(Batch));
  auto B = Store.acquireFlat();
  EXPECT_EQ(Store.flatStats().Refreshes, 1u);
  // Shards 1..3 are untouched: their flats share every page with A's
  // (wholesale copies); shard 0 shares all but the repaired pages.
  for (size_t Sh = 1; Sh < 4; ++Sh)
    EXPECT_EQ(B->Flats[Sh].sharedPages(), B->Flats[Sh].numPages())
        << "shard " << Sh;
  EXPECT_GE(B->Flats[0].sharedPages() + 2, B->Flats[0].numPages());
}

TEST(ShardedFlat, SingleShardStoreMatchesVersionedFlat) {
  const VertexId N = 1500;
  auto Edges = randomBatch(N, 6000, 115);
  ShardedGraphStore Store(1, N, Edges);
  VersionedGraph VG(Graph::fromEdges(N, Edges));
  auto Batch = randomBatch(N, 80, 116);
  Store.insertBatch(Batch);
  VG.insertEdgesBatch(Batch);
  auto FE = Store.acquireFlat();
  auto FS = VG.acquireFlat();
  auto FV = FE->view();
  ASSERT_EQ(FV.numVertices(), FS->numVertices());
  ASSERT_EQ(FV.numEdges(), FS->numEdges());
  for (VertexId V = 0; V < FV.numVertices(); ++V) {
    ASSERT_EQ(FV.degree(V), FS->degree(V));
    ASSERT_EQ(adjacency(FV, V), FS->edges(V).toVector());
  }
}
