//===- tests/chunk_runcopy_test.cpp - Run-copy merge differentials --------===//
//
// The run-copy set operations (unionChunks / unionChunkSpan / chunkMinus /
// chunkMinusChunk / chunkIntersect) move encoded byte runs instead of
// re-encoding elements; their contract is that the produced payloads are
// BYTE-IDENTICAL to the element-at-a-time streaming merges (the
// *Streaming references). This suite pits the two against each other -
// and against std::set_* semantics - on adversarial overlap patterns:
// fully interleaved elements (run length 1, exercising the adaptive
// fallback), long disjoint runs, duplicate-heavy inputs, max-width
// 10-byte varints (64-bit keys), and run switches landing exactly on
// 8/16-byte word boundaries of the encoded stream.
//
//===----------------------------------------------------------------------===//

#include "ctree/chunk.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

using namespace aspen;

namespace {

template <class K> std::vector<K> decoded(const ChunkPayload<K> *C) {
  std::vector<K> Out;
  decodeChunk<DeltaByteCodec>(C, Out);
  return Out;
}

/// Assert X and Y are byte-identical payloads (both may be null).
template <class K>
void expectSamePayload(const ChunkPayload<K> *X, const ChunkPayload<K> *Y,
                       const char *What) {
  if (!X || !Y) {
    EXPECT_EQ(X == nullptr, Y == nullptr) << What;
    return;
  }
  EXPECT_EQ(X->Count, Y->Count) << What;
  EXPECT_EQ(X->First, Y->First) << What;
  EXPECT_EQ(X->Last, Y->Last) << What;
  ASSERT_EQ(X->Bytes, Y->Bytes) << What;
  EXPECT_EQ(std::memcmp(X->data(), Y->data(), X->Bytes), 0)
      << What << ": payload bytes differ";
}

/// Run every run-copy op against its streaming reference and the std::
/// oracle on (A, B); elements must be sorted unique.
template <class Codec, class K>
void checkAll(const std::vector<K> &EA, const std::vector<K> &EB) {
  ChunkPayload<K> *A = makeChunk<Codec>(EA.data(), EA.size());
  ChunkPayload<K> *B = makeChunk<Codec>(EB.data(), EB.size());

  // Oracles.
  std::vector<K> WantUnion, WantMinus, WantIntersect;
  std::set_union(EA.begin(), EA.end(), EB.begin(), EB.end(),
                 std::back_inserter(WantUnion));
  std::set_difference(EA.begin(), EA.end(), EB.begin(), EB.end(),
                      std::back_inserter(WantMinus));
  std::set_intersection(EA.begin(), EA.end(), EB.begin(), EB.end(),
                        std::back_inserter(WantIntersect));

  auto Vec = [](const ChunkPayload<K> *C) {
    std::vector<K> Out;
    decodeChunk<Codec>(C, Out);
    return Out;
  };

  {
    ChunkPayload<K> *X = unionChunks<Codec>(A, B);
    ChunkPayload<K> *Y = unionChunksStreaming<Codec>(A, B);
    expectSamePayload(X, Y, "unionChunks");
    EXPECT_EQ(Vec(X), WantUnion);
    releaseChunk(X);
    releaseChunk(Y);
  }
  {
    ChunkPayload<K> *X = unionChunkSpan<Codec>(A, EB.data(), EB.size());
    ChunkPayload<K> *Y =
        unionChunkSpanStreaming<Codec>(A, EB.data(), EB.size());
    expectSamePayload(X, Y, "unionChunkSpan");
    EXPECT_EQ(Vec(X), WantUnion);
    releaseChunk(X);
    releaseChunk(Y);
  }
  {
    ChunkPayload<K> *X = chunkMinus<Codec>(A, EB.data(), EB.size());
    ChunkPayload<K> *Y =
        chunkMinusStreaming<Codec>(A, EB.data(), EB.size());
    // chunkMinus's no-overlap early-out returns A itself (retained), and
    // the streaming reference always rebuilds; both must decode alike
    // and, when both are fresh payloads, be byte-identical.
    if (X != A)
      expectSamePayload(X, Y, "chunkMinus");
    EXPECT_EQ(Vec(X), WantMinus);
    releaseChunk(X);
    releaseChunk(Y);
  }
  {
    ChunkPayload<K> *X = chunkMinusChunk<Codec>(A, B);
    ChunkPayload<K> *Y = chunkMinusChunkStreaming<Codec>(A, B);
    if (X != A)
      expectSamePayload(X, Y, "chunkMinusChunk");
    EXPECT_EQ(Vec(X), WantMinus);
    releaseChunk(X);
    releaseChunk(Y);
  }
  {
    ChunkPayload<K> *X = chunkIntersect<Codec>(A, EB.data(), EB.size());
    ChunkPayload<K> *Y =
        chunkIntersectStreaming<Codec>(A, EB.data(), EB.size());
    expectSamePayload(X, Y, "chunkIntersect");
    EXPECT_EQ(Vec(X), WantIntersect);
    releaseChunk(X);
    releaseChunk(Y);
  }

  releaseChunk(A);
  releaseChunk(B);
}

std::vector<uint32_t> sortedUnique(std::vector<uint32_t> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

TEST(RunCopyDifferential, RandomOverlapDensities) {
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    for (uint64_t Range : {256u, 4096u, 1u << 20}) {
      std::vector<uint32_t> EA, EB;
      size_t N = 64 + size_t(hashAt(Seed, 0) % 400);
      for (size_t I = 0; I < N; ++I) {
        EA.push_back(uint32_t(hashAt(Seed * 2 + 1, I) % Range));
        EB.push_back(uint32_t(hashAt(Seed * 2 + 2, I) % Range));
      }
      checkAll<DeltaByteCodec, uint32_t>(sortedUnique(EA),
                                         sortedUnique(EB));
      checkAll<RawCodec, uint32_t>(sortedUnique(EA), sortedUnique(EB));
    }
  }
}

TEST(RunCopyDifferential, FullyInterleaved) {
  // Strict alternation: run length 1 everywhere; with > 128 outputs this
  // also drives the adaptive probe into its streaming fallback.
  std::vector<uint32_t> EA, EB;
  for (uint32_t I = 0; I < 600; ++I) {
    EA.push_back(2 * I);
    EB.push_back(2 * I + 1);
  }
  checkAll<DeltaByteCodec, uint32_t>(EA, EB);
  checkAll<RawCodec, uint32_t>(EA, EB);
}

TEST(RunCopyDifferential, LongDisjointRuns) {
  for (uint32_t RunLen : {8u, 16u, 64u, 300u}) {
    std::vector<uint32_t> EA, EB;
    uint32_t V = 1;
    for (uint32_t Block = 0; Block < 8; ++Block) {
      auto &Side = (Block % 2 == 0) ? EA : EB;
      for (uint32_t I = 0; I < RunLen; ++I) {
        V += 1 + uint32_t(hashAt(RunLen, V) % 900);
        Side.push_back(V);
      }
    }
    checkAll<DeltaByteCodec, uint32_t>(EA, EB);
    checkAll<RawCodec, uint32_t>(EA, EB);
  }
}

TEST(RunCopyDifferential, DuplicateHeavy) {
  // B shares most of A (dups collapse in union, annihilate in minus, and
  // produce long match runs in intersect).
  std::vector<uint32_t> EA, EB;
  uint32_t V = 0;
  for (uint32_t I = 0; I < 500; ++I) {
    V += 1 + uint32_t(hashAt(3, I) % 50);
    EA.push_back(V);
    if (I % 5 != 0)
      EB.push_back(V);
    if (I % 7 == 0)
      EB.push_back(V + 1);
  }
  checkAll<DeltaByteCodec, uint32_t>(EA, sortedUnique(EB));
  checkAll<RawCodec, uint32_t>(EA, sortedUnique(EB));
}

TEST(RunCopyDifferential, MaxWidthVarints64) {
  // 64-bit keys with gaps spanning every code width up to the full
  // 10-byte varint.
  std::vector<uint64_t> EA, EB;
  uint64_t V = 0;
  for (int I = 0; I < 120; ++I) {
    uint64_t Gap = (I % 11 == 10)
                       ? (uint64_t(1) << 62) + hashAt(5, I) % 1000
                       : (uint64_t(1) << (6 * (I % 10))) +
                             hashAt(6, I) % 63;
    if (V > ~Gap) // avoid wraparound
      break;
    V += Gap;
    if (I % 3 != 2)
      EA.push_back(V);
    if (I % 3 != 1)
      EB.push_back(V + (I % 2));
  }
  EA = [&] {
    std::sort(EA.begin(), EA.end());
    EA.erase(std::unique(EA.begin(), EA.end()), EA.end());
    return EA;
  }();
  EB = [&] {
    std::sort(EB.begin(), EB.end());
    EB.erase(std::unique(EB.begin(), EB.end()), EB.end());
    return EB;
  }();
  ASSERT_GT(EA.size(), 20u);
  checkAll<DeltaByteCodec, uint64_t>(EA, EB);
  checkAll<RawCodec, uint64_t>(EA, EB);
}

TEST(RunCopyDifferential, WordBoundaryRunSwitches) {
  // 1-byte gaps so that runs of exactly 8 and 16 elements place the
  // switch points precisely at 8/16-byte boundaries of the encoded
  // stream (the word/window sizes of the SWAR and SSSE3 decoders).
  for (uint32_t RunLen : {7u, 8u, 9u, 15u, 16u, 17u}) {
    std::vector<uint32_t> EA, EB;
    uint32_t V = 1;
    for (uint32_t Block = 0; Block < 12; ++Block) {
      auto &Side = (Block % 2 == 0) ? EA : EB;
      for (uint32_t I = 0; I < RunLen; ++I)
        Side.push_back(V += 1 + (Block + I) % 3); // gaps 1..3, 1 byte
    }
    checkAll<DeltaByteCodec, uint32_t>(EA, EB);
  }
}

TEST(RunCopyDifferential, EdgeShapes) {
  std::vector<uint32_t> Single{42};
  std::vector<uint32_t> Pair{7, 1u << 30};
  std::vector<uint32_t> Dense;
  for (uint32_t I = 0; I < 200; ++I)
    Dense.push_back(I);
  checkAll<DeltaByteCodec, uint32_t>(Single, Dense);
  checkAll<DeltaByteCodec, uint32_t>(Dense, Single);
  checkAll<DeltaByteCodec, uint32_t>(Pair, Dense);
  checkAll<DeltaByteCodec, uint32_t>(Dense, Dense); // identical inputs
  checkAll<RawCodec, uint32_t>(Dense, Dense);
}

TEST(RunCopyDifferential, DisjointByteConcatMatchesStreaming) {
  // The byte-concatenation fast path (fully disjoint ranges) must also
  // be byte-identical to the streaming merge.
  std::vector<uint32_t> EA, EB;
  uint32_t V = 1;
  for (int I = 0; I < 300; ++I)
    EA.push_back(V += 1 + uint32_t(hashAt(8, I) % 600));
  for (int I = 0; I < 300; ++I)
    EB.push_back(V += 1 + uint32_t(hashAt(9, I) % 600));
  checkAll<DeltaByteCodec, uint32_t>(EA, EB);
  checkAll<DeltaByteCodec, uint32_t>(EB, EA); // swapped argument order
  checkAll<RawCodec, uint32_t>(EA, EB);
}

} // namespace
