//===- tests/pam_test.cpp - Purely-functional tree tests ------------------===//

#include "pam/tree.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

using namespace aspen;

namespace {

/// Simple integer-set entry (no value, no augmentation).
struct SetEntry {
  using KeyT = uint32_t;
  using ValT = Empty;
  using AugT = Empty;
  static bool less(uint32_t A, uint32_t B) { return A < B; }
  static AugT augOfEntry(const KeyT &, const ValT &) { return {}; }
  static AugT augIdentity() { return {}; }
  static AugT augCombine(AugT, AugT) { return {}; }
};

/// Key-value entry with a sum augmentation over values.
struct MapEntry {
  using KeyT = uint32_t;
  using ValT = int64_t;
  using AugT = int64_t;
  static bool less(uint32_t A, uint32_t B) { return A < B; }
  static AugT augOfEntry(const KeyT &, const ValT &V) { return V; }
  static AugT augIdentity() { return 0; }
  static AugT augCombine(AugT A, AugT B) { return A + B; }
};

using S = Tree<SetEntry>;
using M = Tree<MapEntry>;

std::vector<std::pair<uint32_t, Empty>> keysToEntries(
    const std::vector<uint32_t> &Keys) {
  std::vector<std::pair<uint32_t, Empty>> Out;
  Out.reserve(Keys.size());
  for (uint32_t K : Keys)
    Out.push_back({K, Empty{}});
  return Out;
}

std::vector<uint32_t> sortedUnique(std::vector<uint32_t> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

std::vector<uint32_t> randomKeys(size_t N, uint64_t Seed, uint32_t Range) {
  std::vector<uint32_t> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = uint32_t(hashAt(Seed, I) % Range);
  return Out;
}

std::vector<uint32_t> treeKeys(const S::Node *T) {
  std::vector<uint32_t> Out;
  S::forEachSeq(T, [&](uint32_t K, Empty) { Out.push_back(K); });
  return Out;
}

int64_t livePamNodes() {
  return NodePool<PamNode<SetEntry>>::liveCount() +
         NodePool<PamNode<MapEntry>>::liveCount();
}

} // namespace

TEST(PamNodeLayout, SetNodeIs32Bytes) {
  // The paper reports 32 bytes per uncompressed (edge) tree node.
  EXPECT_LE(sizeof(PamNode<SetEntry>), 32u);
}

TEST(PamBasic, EmptyTree) {
  EXPECT_EQ(S::size(nullptr), 0u);
  EXPECT_TRUE(S::validate(nullptr));
  EXPECT_EQ(S::findNode(nullptr, 5u), nullptr);
  S::release(nullptr); // no-op
}

TEST(PamBasic, SingletonAndFind) {
  auto *T = S::singleton(42u, Empty{});
  EXPECT_EQ(S::size(T), 1u);
  EXPECT_NE(S::findNode(T, 42u), nullptr);
  EXPECT_EQ(S::findNode(T, 41u), nullptr);
  S::release(T);
}

TEST(PamBasic, InsertAscending) {
  int64_t Base = livePamNodes();
  S::Node *T = nullptr;
  for (uint32_t I = 0; I < 2000; ++I)
    T = S::insert(T, I, Empty{});
  EXPECT_EQ(S::size(T), 2000u);
  EXPECT_TRUE(S::validate(T)) << "balance must hold under sorted inserts";
  for (uint32_t I = 0; I < 2000; ++I)
    ASSERT_NE(S::findNode(T, I), nullptr);
  S::release(T);
  EXPECT_EQ(livePamNodes(), Base);
}

TEST(PamBasic, InsertDescending) {
  S::Node *T = nullptr;
  for (uint32_t I = 2000; I > 0; --I)
    T = S::insert(T, I, Empty{});
  EXPECT_EQ(S::size(T), 2000u);
  EXPECT_TRUE(S::validate(T));
  S::release(T);
}

TEST(PamBasic, InsertRandomMatchesStdSet) {
  auto Keys = randomKeys(5000, 1, 100000);
  S::Node *T = nullptr;
  std::set<uint32_t> Ref;
  for (uint32_t K : Keys) {
    T = S::insert(T, K, Empty{});
    Ref.insert(K);
  }
  EXPECT_EQ(S::size(T), Ref.size());
  EXPECT_TRUE(S::validate(T));
  EXPECT_EQ(treeKeys(T), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  S::release(T);
}

TEST(PamBasic, RemoveMatchesStdSet) {
  auto Keys = sortedUnique(randomKeys(3000, 2, 10000));
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  std::set<uint32_t> Ref(Keys.begin(), Keys.end());
  for (size_t I = 0; I < Keys.size(); I += 2) {
    T = S::remove(T, Keys[I]);
    Ref.erase(Keys[I]);
  }
  // Also remove keys that are absent.
  T = S::remove(T, 999999u);
  EXPECT_EQ(S::size(T), Ref.size());
  EXPECT_TRUE(S::validate(T));
  EXPECT_EQ(treeKeys(T), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  S::release(T);
}

TEST(PamBasic, BuildSortedIsBalancedAndOrdered) {
  auto Keys = sortedUnique(randomKeys(100000, 3, 1u << 30));
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  EXPECT_EQ(S::size(T), Keys.size());
  EXPECT_TRUE(S::validate(T));
  EXPECT_EQ(treeKeys(T), Keys);
  S::release(T);
}

TEST(PamBasic, FindLEAndGE) {
  std::vector<uint32_t> Keys = {10, 20, 30, 40};
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  EXPECT_EQ(S::findLE(T, 5u), nullptr);
  EXPECT_EQ(S::findLE(T, 10u)->Key, 10u);
  EXPECT_EQ(S::findLE(T, 25u)->Key, 20u);
  EXPECT_EQ(S::findLE(T, 100u)->Key, 40u);
  EXPECT_EQ(S::findGE(T, 100u), nullptr);
  EXPECT_EQ(S::findGE(T, 5u)->Key, 10u);
  EXPECT_EQ(S::findGE(T, 21u)->Key, 30u);
  EXPECT_EQ(S::first(T)->Key, 10u);
  EXPECT_EQ(S::last(T)->Key, 40u);
  S::release(T);
}

TEST(PamBasic, SelectAndRank) {
  auto Keys = sortedUnique(randomKeys(5000, 4, 1u << 20));
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  for (size_t I = 0; I < Keys.size(); I += 97)
    EXPECT_EQ(S::select(T, uint32_t(I))->Key, Keys[I]);
  for (size_t I = 0; I < Keys.size(); I += 131) {
    EXPECT_EQ(S::rank(T, Keys[I]), I);
    EXPECT_EQ(S::rank(T, Keys[I] + 1),
              std::upper_bound(Keys.begin(), Keys.end(), Keys[I]) -
                  Keys.begin());
  }
  S::release(T);
}

TEST(PamSplitJoin, SplitBasic) {
  auto Keys = sortedUnique(randomKeys(10000, 5, 1u << 20));
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  uint32_t Pivot = Keys[Keys.size() / 2];
  auto Sp = S::split(T, Pivot);
  EXPECT_TRUE(Sp.Found);
  EXPECT_TRUE(S::validate(Sp.Left));
  EXPECT_TRUE(S::validate(Sp.Right));
  auto L = treeKeys(Sp.Left), R = treeKeys(Sp.Right);
  for (uint32_t K : L)
    ASSERT_LT(K, Pivot);
  for (uint32_t K : R)
    ASSERT_GT(K, Pivot);
  EXPECT_EQ(L.size() + R.size() + 1, Keys.size());
  S::release(Sp.Left);
  S::release(Sp.Right);
}

TEST(PamSplitJoin, SplitAbsentKey) {
  std::vector<uint32_t> Keys = {2, 4, 6, 8, 10};
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  auto Sp = S::split(T, 5u);
  EXPECT_FALSE(Sp.Found);
  EXPECT_EQ(treeKeys(Sp.Left), (std::vector<uint32_t>{2, 4}));
  EXPECT_EQ(treeKeys(Sp.Right), (std::vector<uint32_t>{6, 8, 10}));
  S::release(Sp.Left);
  S::release(Sp.Right);
}

TEST(PamSplitJoin, Join2Concatenates) {
  auto A = sortedUnique(randomKeys(1000, 6, 1000));
  std::vector<uint32_t> B;
  for (uint32_t K : sortedUnique(randomKeys(5000, 7, 100000)))
    if (K > 2000)
      B.push_back(K);
  S::Node *TA = S::buildSorted(keysToEntries(A).data(), A.size());
  S::Node *TB = S::buildSorted(keysToEntries(B).data(), B.size());
  S::Node *T = S::join2(TA, TB);
  EXPECT_TRUE(S::validate(T));
  auto All = A;
  All.insert(All.end(), B.begin(), B.end());
  EXPECT_EQ(treeKeys(T), All);
  S::release(T);
}

TEST(PamSetOps, UnionMatchesStdSet) {
  for (uint64_t Seed = 10; Seed < 16; ++Seed) {
    auto A = sortedUnique(randomKeys(4000, Seed, 20000));
    auto B = sortedUnique(randomKeys(4000, Seed + 100, 20000));
    S::Node *TA = S::buildSorted(keysToEntries(A).data(), A.size());
    S::Node *TB = S::buildSorted(keysToEntries(B).data(), B.size());
    S::Node *U = S::unionWith(TA, TB, [](Empty, Empty) { return Empty{}; });
    std::set<uint32_t> Ref(A.begin(), A.end());
    Ref.insert(B.begin(), B.end());
    EXPECT_TRUE(S::validate(U));
    EXPECT_EQ(treeKeys(U), std::vector<uint32_t>(Ref.begin(), Ref.end()));
    S::release(U);
  }
}

TEST(PamSetOps, IntersectMatchesStdSet) {
  auto A = sortedUnique(randomKeys(6000, 20, 10000));
  auto B = sortedUnique(randomKeys(6000, 21, 10000));
  S::Node *TA = S::buildSorted(keysToEntries(A).data(), A.size());
  S::Node *TB = S::buildSorted(keysToEntries(B).data(), B.size());
  S::Node *I = S::intersectWith(TA, TB, [](Empty, Empty) { return Empty{}; });
  std::vector<uint32_t> Ref;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Ref));
  EXPECT_TRUE(S::validate(I));
  EXPECT_EQ(treeKeys(I), Ref);
  S::release(I);
}

TEST(PamSetOps, DifferenceMatchesStdSet) {
  auto A = sortedUnique(randomKeys(6000, 30, 10000));
  auto B = sortedUnique(randomKeys(6000, 31, 10000));
  S::Node *TA = S::buildSorted(keysToEntries(A).data(), A.size());
  S::Node *TB = S::buildSorted(keysToEntries(B).data(), B.size());
  S::Node *D = S::difference(TA, TB);
  std::vector<uint32_t> Ref;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(Ref));
  EXPECT_TRUE(S::validate(D));
  EXPECT_EQ(treeKeys(D), Ref);
  S::release(D);
}

TEST(PamSetOps, UnionWithEmpty) {
  auto A = sortedUnique(randomKeys(100, 40, 1000));
  S::Node *TA = S::buildSorted(keysToEntries(A).data(), A.size());
  S::Node *U = S::unionWith(TA, nullptr, [](Empty, Empty) { return Empty{}; });
  EXPECT_EQ(treeKeys(U), A);
  U = S::unionWith(nullptr, U, [](Empty, Empty) { return Empty{}; });
  EXPECT_EQ(treeKeys(U), A);
  S::release(U);
}

TEST(PamSetOps, MultiInsertCombines) {
  std::vector<std::pair<uint32_t, int64_t>> Init = {{1, 10}, {3, 30}, {5, 50}};
  M::Node *T = M::buildSorted(Init.data(), Init.size());
  std::vector<std::pair<uint32_t, int64_t>> Batch = {{2, 20}, {3, 300}};
  T = M::multiInsert(T, Batch.data(), Batch.size(),
                     [](int64_t Old, int64_t New) { return Old + New; });
  std::map<uint32_t, int64_t> Ref = {{1, 10}, {2, 20}, {3, 330}, {5, 50}};
  std::map<uint32_t, int64_t> Got;
  M::forEachSeq(T, [&](uint32_t K, int64_t V) { Got[K] = V; });
  EXPECT_EQ(Got, Ref);
  // Augmentation = sum of all values.
  EXPECT_EQ(M::aug(T), 10 + 20 + 330 + 50);
  M::release(T);
}

TEST(PamSetOps, UpdateExistingIgnoresUnknownKeys) {
  std::vector<std::pair<uint32_t, int64_t>> Init = {{1, 10}, {3, 30}};
  M::Node *T = M::buildSorted(Init.data(), Init.size());
  std::vector<std::pair<uint32_t, int64_t>> Batch = {{2, 999}, {3, 5}};
  M::Node *B = M::buildSorted(Batch.data(), Batch.size());
  T = M::updateExisting(T, B, [](int64_t Old, int64_t New) {
    return Old - New;
  });
  std::map<uint32_t, int64_t> Got;
  M::forEachSeq(T, [&](uint32_t K, int64_t V) { Got[K] = V; });
  // Key 2 must NOT be inserted; key 3 updated.
  EXPECT_EQ(Got, (std::map<uint32_t, int64_t>{{1, 10}, {3, 25}}));
  M::release(T);
}

TEST(PamAug, SumAugTracksValues) {
  M::Node *T = nullptr;
  int64_t Sum = 0;
  for (uint32_t I = 0; I < 1000; ++I) {
    int64_t V = int64_t(hash64(I) % 1000);
    T = M::insert(T, I, V);
    Sum += V;
  }
  EXPECT_EQ(M::aug(T), Sum);
  // Removal updates the augmented sum.
  const M::Node *N = M::findNode(T, 500u);
  int64_t V500 = N->Val;
  T = M::remove(T, 500u);
  EXPECT_EQ(M::aug(T), Sum - V500);
  M::release(T);
}

TEST(PamAug, RangeSumMatchesReference) {
  // Random key-value pairs; augRange must equal the brute-force sum over
  // the key interval.
  std::map<uint32_t, int64_t> Ref;
  M::Node *T = nullptr;
  for (uint32_t I = 0; I < 3000; ++I) {
    uint32_t K = uint32_t(hashAt(200, I) % 50000);
    int64_t V = int64_t(hashAt(201, I) % 1000);
    T = M::insert(T, K, V);
    Ref[K] = V;
  }
  for (int Case = 0; Case < 50; ++Case) {
    uint32_t A = uint32_t(hashAt(202, Case) % 50000);
    uint32_t B = uint32_t(hashAt(203, Case) % 50000);
    uint32_t Lo = std::min(A, B), Hi = std::max(A, B);
    int64_t Expect = 0;
    for (auto It = Ref.lower_bound(Lo);
         It != Ref.end() && It->first <= Hi; ++It)
      Expect += It->second;
    ASSERT_EQ(M::augRange(T, Lo, Hi), Expect)
        << "range [" << Lo << "," << Hi << "]";
  }
  M::release(T);
}

TEST(PamAug, RangeSumBoundaries) {
  std::vector<std::pair<uint32_t, int64_t>> E = {
      {10, 1}, {20, 2}, {30, 4}, {40, 8}};
  M::Node *T = M::buildSorted(E.data(), E.size());
  EXPECT_EQ(M::augRange(T, 10u, 40u), 15);
  EXPECT_EQ(M::augRange(T, 10u, 10u), 1);
  EXPECT_EQ(M::augRange(T, 11u, 29u), 2);
  EXPECT_EQ(M::augRange(T, 41u, 100u), 0);
  EXPECT_EQ(M::augRange(T, 0u, 9u), 0);
  EXPECT_EQ(M::augFrom(T, 25u), 12);
  EXPECT_EQ(M::augTo(T, 25u), 3);
  EXPECT_EQ(M::augRange(nullptr, 0u, 100u), 0);
  M::release(T);
}

TEST(PamPersistence, SnapshotsAreImmutable) {
  auto Keys = sortedUnique(randomKeys(10000, 50, 1u << 20));
  S::Node *V1 = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  auto Before = treeKeys(V1);
  // Snapshot: retain, then apply destructive updates to a new version.
  S::retain(V1);
  S::Node *V2 = V1;
  for (uint32_t I = 0; I < 500; ++I)
    V2 = S::insert(V2, uint32_t(3000000 + I), Empty{});
  for (size_t I = 0; I < Keys.size(); I += 3)
    V2 = S::remove(V2, Keys[I]);
  // The old version still reads exactly as before.
  EXPECT_EQ(treeKeys(V1), Before);
  EXPECT_TRUE(S::validate(V1));
  EXPECT_TRUE(S::validate(V2));
  S::release(V2);
  EXPECT_EQ(treeKeys(V1), Before) << "releasing v2 must not damage v1";
  S::release(V1);
}

TEST(PamPersistence, ManySnapshots) {
  std::vector<S::Node *> Versions;
  S::Node *Cur = nullptr;
  for (uint32_t I = 0; I < 200; ++I) {
    Cur = S::insert(Cur, I, Empty{});
    S::retain(Cur);
    Versions.push_back(Cur);
  }
  for (size_t V = 0; V < Versions.size(); ++V)
    ASSERT_EQ(S::size(Versions[V]), V + 1);
  for (S::Node *V : Versions)
    S::release(V);
  S::release(Cur);
}

TEST(PamPersistence, LeakFreeUnderSetOps) {
  int64_t Base = livePamNodes();
  {
    auto A = sortedUnique(randomKeys(5000, 60, 30000));
    auto B = sortedUnique(randomKeys(5000, 61, 30000));
    S::Node *TA = S::buildSorted(keysToEntries(A).data(), A.size());
    S::Node *TB = S::buildSorted(keysToEntries(B).data(), B.size());
    S::retain(TA); // keep a snapshot of A across the union
    S::Node *U = S::unionWith(TA, TB, [](Empty, Empty) { return Empty{}; });
    EXPECT_EQ(treeKeys(TA), A) << "input snapshot unchanged";
    S::Node *D = S::difference(U, TA); // consumes U and TA
    std::vector<uint32_t> Ref;
    std::set_difference(B.begin(), B.end(), A.begin(), A.end(),
                        std::back_inserter(Ref));
    EXPECT_EQ(treeKeys(D), Ref);
    S::release(D);
  }
  EXPECT_EQ(livePamNodes(), Base) << "all nodes must be reclaimed";
}

TEST(PamFilter, KeepsMatchingEntries) {
  auto Keys = sortedUnique(randomKeys(5000, 70, 100000));
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  T = S::filter(T, [](uint32_t K, Empty) { return K % 2 == 0; });
  std::vector<uint32_t> Ref;
  for (uint32_t K : Keys)
    if (K % 2 == 0)
      Ref.push_back(K);
  EXPECT_TRUE(S::validate(T));
  EXPECT_EQ(treeKeys(T), Ref);
  S::release(T);
}

TEST(PamTraversal, IndexedMatchesOrder) {
  auto Keys = sortedUnique(randomKeys(20000, 80, 1u << 22));
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  std::vector<uint32_t> ByIndex(Keys.size(), 0);
  S::forEachIndexed(T, 0, [&](size_t I, uint32_t K, Empty) {
    ByIndex[I] = K;
  });
  EXPECT_EQ(ByIndex, Keys);
  S::release(T);
}

TEST(PamTraversal, IterCondStopsEarly) {
  std::vector<uint32_t> Keys = {1, 2, 3, 4, 5, 6, 7, 8};
  S::Node *T = S::buildSorted(keysToEntries(Keys).data(), Keys.size());
  std::vector<uint32_t> Seen;
  bool Finished = S::iterCond(T, [&](uint32_t K, Empty) {
    Seen.push_back(K);
    return K < 5;
  });
  EXPECT_FALSE(Finished);
  EXPECT_EQ(Seen, (std::vector<uint32_t>{1, 2, 3, 4, 5}));
  S::release(T);
}

TEST(PamHandle, RAIIRetainsAndReleases) {
  int64_t Base = livePamNodes();
  {
    auto Keys = sortedUnique(randomKeys(1000, 90, 10000));
    TreeHandle<SetEntry> H(
        S::buildSorted(keysToEntries(Keys).data(), Keys.size()));
    TreeHandle<SetEntry> Copy = H;
    EXPECT_EQ(Copy.size(), H.size());
    TreeHandle<SetEntry> Moved = std::move(Copy);
    EXPECT_EQ(Moved.size(), Keys.size());
  }
  EXPECT_EQ(livePamNodes(), Base);
}

//===----------------------------------------------------------------------===
// Property sweep: randomized operation sequences cross-checked against
// std::set, with balance/size validation after every phase.
//===----------------------------------------------------------------------===

class PamRandomOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PamRandomOps, MixedBatchOpsMatchReference) {
  uint64_t Seed = GetParam();
  int64_t Base = livePamNodes();
  {
    std::set<uint32_t> Ref;
    S::Node *T = nullptr;
    for (int Round = 0; Round < 12; ++Round) {
      uint64_t Op = hashAt(Seed, 1000 + Round) % 3;
      auto Batch = sortedUnique(
          randomKeys(1 + hashAt(Seed, Round) % 2000, Seed * 31 + Round,
                     8000));
      S::Node *TB = S::buildSorted(keysToEntries(Batch).data(), Batch.size());
      if (Op == 0) {
        T = S::unionWith(T, TB, [](Empty, Empty) { return Empty{}; });
        Ref.insert(Batch.begin(), Batch.end());
      } else if (Op == 1) {
        T = S::difference(T, TB);
        for (uint32_t K : Batch)
          Ref.erase(K);
      } else {
        T = S::intersectWith(T, TB, [](Empty, Empty) { return Empty{}; });
        std::set<uint32_t> NewRef;
        for (uint32_t K : Batch)
          if (Ref.count(K))
            NewRef.insert(K);
        Ref = std::move(NewRef);
      }
      ASSERT_TRUE(S::validate(T)) << "round " << Round;
      ASSERT_EQ(S::size(T), Ref.size()) << "round " << Round;
      ASSERT_EQ(treeKeys(T),
                std::vector<uint32_t>(Ref.begin(), Ref.end()));
    }
    S::release(T);
  }
  EXPECT_EQ(livePamNodes(), Base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PamRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
