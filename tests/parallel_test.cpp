//===- tests/parallel_test.cpp - Scheduler and primitive tests ------------===//

#include "parallel/primitives.h"
#include "parallel/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <thread>

using namespace aspen;

TEST(Scheduler, WorkersPositive) {
  EXPECT_GE(numWorkers(), 1);
  EXPECT_GE(workerId(), 0);
  EXPECT_LT(workerId(), maxContexts());
}

TEST(Scheduler, ParallelDoRunsBoth) {
  std::atomic<int> Count{0};
  parallelDo([&] { Count.fetch_add(1); }, [&] { Count.fetch_add(2); });
  EXPECT_EQ(Count.load(), 3);
}

TEST(Scheduler, ParallelDoNested) {
  std::atomic<int> Count{0};
  parallelDo(
      [&] {
        parallelDo([&] { Count.fetch_add(1); }, [&] { Count.fetch_add(1); });
      },
      [&] {
        parallelDo([&] { Count.fetch_add(1); }, [&] { Count.fetch_add(1); });
      });
  EXPECT_EQ(Count.load(), 4);
}

TEST(Scheduler, ParallelForCoversRange) {
  const size_t N = 100000;
  std::vector<std::atomic<int>> Hits(N);
  parallelFor(0, N, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(Scheduler, ParallelForEmptyAndSingle) {
  std::atomic<int> Count{0};
  parallelFor(10, 10, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 0);
  parallelFor(10, 11, [&](size_t I) { Count.fetch_add(int(I)); });
  EXPECT_EQ(Count.load(), 10);
}

TEST(Scheduler, NestedParallelForDeep) {
  std::atomic<int64_t> Total{0};
  parallelFor(0, 64, [&](size_t I) {
    parallelFor(0, 64, [&](size_t J) { Total.fetch_add(int64_t(I + J)); },
                4);
  }, 1);
  // sum_{i,j} (i+j) = 64*sum(i) + 64*sum(j) = 2*64*(63*64/2)
  EXPECT_EQ(Total.load(), 2 * 64 * (63 * 64 / 2));
}

TEST(Scheduler, MultipleApplicationThreads) {
  // Multiple OS threads issuing parallel work concurrently (the Section 7.3
  // concurrent updates+queries pattern).
  std::atomic<int64_t> Total{0};
  auto Work = [&] {
    for (int R = 0; R < 10; ++R) {
      int64_t Local = reduceSum(10000, [](size_t I) { return int64_t(I); });
      Total.fetch_add(Local);
    }
  };
  std::thread T1(Work), T2(Work), T3(Work);
  Work();
  T1.join();
  T2.join();
  T3.join();
  int64_t Expect = 4 * 10 * (9999LL * 10000 / 2);
  EXPECT_EQ(Total.load(), Expect);
}

TEST(Primitives, Tabulate) {
  auto V = tabulate(1000, [](size_t I) { return I * I; });
  ASSERT_EQ(V.size(), 1000u);
  for (size_t I = 0; I < V.size(); ++I)
    ASSERT_EQ(V[I], I * I);
}

TEST(Primitives, ReduceSumMatchesSequential) {
  const size_t N = 1 << 20;
  int64_t Par = reduceSum(N, [](size_t I) { return int64_t(I % 97); });
  int64_t Seq = 0;
  for (size_t I = 0; I < N; ++I)
    Seq += int64_t(I % 97);
  EXPECT_EQ(Par, Seq);
}

TEST(Primitives, ReduceMax) {
  auto V = tabulate(100000, [](size_t I) {
    return int((I * 2654435761u) % 1000003);
  });
  int Par = reduceMax(V.size(), [&](size_t I) { return V[I]; }, -1);
  int Seq = *std::max_element(V.begin(), V.end());
  EXPECT_EQ(Par, Seq);
}

TEST(Primitives, ReduceEmpty) {
  EXPECT_EQ(reduceSum(0, [](size_t) { return 1; }), 0);
  EXPECT_EQ(reduceMax(0, [](size_t) { return 7; }, -5), -5);
}

TEST(Primitives, ScanExclusive) {
  for (size_t N : {size_t(0), size_t(1), size_t(7), size_t(4097),
                   size_t(1 << 18)}) {
    std::vector<int64_t> Data(N);
    for (size_t I = 0; I < N; ++I)
      Data[I] = int64_t(I % 13) - 3;
    std::vector<int64_t> Ref(N);
    int64_t Acc = 0;
    for (size_t I = 0; I < N; ++I) {
      Ref[I] = Acc;
      Acc += Data[I];
    }
    int64_t Total = scanExclusive(Data);
    EXPECT_EQ(Total, Acc) << "N=" << N;
    EXPECT_EQ(Data, Ref) << "N=" << N;
  }
}

TEST(Primitives, FilterPreservesOrder) {
  const size_t N = 200000;
  auto In = tabulate(N, [](size_t I) { return int(hash64(I) % 1000); });
  auto Out = filter(In, [](int X) { return X % 3 == 0; });
  std::vector<int> Ref;
  for (int X : In)
    if (X % 3 == 0)
      Ref.push_back(X);
  EXPECT_EQ(Out, Ref);
}

TEST(Primitives, FilterAllAndNone) {
  auto In = tabulate(1000, [](size_t I) { return int(I); });
  EXPECT_EQ(filter(In, [](int) { return true; }).size(), 1000u);
  EXPECT_EQ(filter(In, [](int) { return false; }).size(), 0u);
}

TEST(Primitives, ParallelSortMatchesStdSort) {
  for (size_t N : {size_t(0), size_t(1), size_t(100), size_t(100000),
                   size_t(1 << 20)}) {
    auto V = tabulate(N, [](size_t I) { return uint32_t(hash64(I)); });
    auto Ref = V;
    parallelSort(V);
    std::sort(Ref.begin(), Ref.end());
    EXPECT_EQ(V, Ref) << "N=" << N;
  }
}

TEST(Primitives, ParallelSortStable) {
  // Sort pairs by first only; equal keys must preserve input order.
  const size_t N = 300000;
  auto V = tabulate(N, [](size_t I) {
    return std::make_pair(uint32_t(hash64(I) % 50), uint32_t(I));
  });
  auto Ref = V;
  parallelSort(V, [](const auto &A, const auto &B) {
    return A.first < B.first;
  });
  std::stable_sort(Ref.begin(), Ref.end(), [](const auto &A, const auto &B) {
    return A.first < B.first;
  });
  EXPECT_EQ(V, Ref);
}

TEST(Primitives, RandomPermutationIsPermutation) {
  auto P = randomPermutation(10000, 42);
  std::vector<bool> Seen(10000, false);
  for (size_t X : P) {
    ASSERT_LT(X, 10000u);
    ASSERT_FALSE(Seen[X]);
    Seen[X] = true;
  }
  auto P2 = randomPermutation(10000, 43);
  EXPECT_NE(P, P2);
  auto P3 = randomPermutation(10000, 42);
  EXPECT_EQ(P, P3) << "same seed must be deterministic";
}
