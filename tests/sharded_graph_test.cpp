//===- tests/sharded_graph_test.cpp - Sharded store consistency -----------===//
//
// The sharded versioned store (store/sharded_graph.h): hash-partition
// correctness, batch-ingest equivalence with the single store, epoch
// atomicity under concurrent writers and readers (no torn cross-shard
// cuts), exact reclamation, and the differential guarantee that every
// algorithm over a ShardedGraphView matches the single-store result
// exactly.
//
//===----------------------------------------------------------------------===//

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/cc.h"
#include "algorithms/kcore.h"
#include "algorithms/local_cluster.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/triangle_count.h"
#include "algorithms/two_hop.h"
#include "gen/generators.h"
#include "graph/versioned_graph.h"
#include "store/sharded_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace aspen;

namespace {

using ES = CTreeSet<VertexId, DeltaByteCodec>;

std::vector<EdgePair> randomBatch(VertexId N, size_t K, uint64_t Seed) {
  return dedupEdges(symmetrize(uniformRandomEdges(N, K, Seed)));
}

/// Adjacency of \p V through the view's cursor surface.
template <class View>
std::vector<VertexId> adjacency(const View &V, VertexId U) {
  std::vector<VertexId> Out;
  for (auto C = V.neighborCursor(U); !C.done(); C.advance())
    Out.push_back(C.value());
  return Out;
}

} // namespace

TEST(ShardedGraph, BuildMatchesSingleStore) {
  const VertexId N = 1 << 10;
  auto Edges = randomBatch(N, 6000, 1);
  Graph Single = Graph::fromEdges(N, Edges);
  for (size_t Shards : {1u, 2u, 4u, 8u}) {
    ShardedGraphStore Store(Shards, N, Edges);
    EXPECT_EQ(Store.numShards(), Shards);
    auto R = Store.acquire();
    EXPECT_EQ(R.numEdges(), Single.numEdges());
    auto V = R.view();
    EXPECT_EQ(V.numVertices(), Single.vertexUniverse());
    uint64_t ShardSum = 0;
    for (size_t S = 0; S < Shards; ++S)
      ShardSum += R.shard(S).numEdges();
    EXPECT_EQ(ShardSum, Single.numEdges());
    for (VertexId U = 0; U < N; ++U) {
      ASSERT_EQ(V.degree(U), Single.degree(U)) << "vertex " << U;
      ASSERT_EQ(adjacency(V, U), Single.findVertex(U).toVector());
    }
  }
}

TEST(ShardedGraph, ShardsPartitionVertices) {
  const VertexId N = 512;
  auto Edges = randomBatch(N, 3000, 2);
  ShardedGraphStore Store(4, N, Edges);
  auto R = Store.acquire();
  // Every vertex is materialized in exactly its owning shard.
  std::vector<int> Seen(N, 0);
  for (size_t S = 0; S < Store.numShards(); ++S)
    R.shard(S).forEachVertex([&](VertexId V, const ES &) {
      EXPECT_EQ(Store.shardOf(V), S);
      ++Seen[V];
    });
  for (VertexId V = 0; V < N; ++V)
    EXPECT_EQ(Seen[V], 1) << "vertex " << V;
}

TEST(ShardedGraph, InsertDeleteBatchEquivalence) {
  const VertexId N = 1 << 10;
  auto Base = randomBatch(N, 4000, 3);
  Graph Single = Graph::fromEdges(N, Base);
  ShardedGraphStore Store(4, N, Base);

  auto B1 = randomBatch(N, 1500, 40);
  auto B2 = randomBatch(N, 800, 41);
  Single = Single.insertEdges(B1);
  Store.insertBatch(B1);
  Single = Single.deleteEdges(B2);
  Store.deleteBatch(B2);
  Single = Single.insertEdges(B2);
  Store.insertBatch(B2);

  auto R = Store.acquire();
  EXPECT_EQ(R.batchSeq(), 3u);
  EXPECT_EQ(R.numEdges(), Single.numEdges());
  auto V = R.view();
  for (VertexId U = 0; U < N; ++U)
    ASSERT_EQ(adjacency(V, U), Single.findVertex(U).toVector())
        << "vertex " << U;
  for (size_t S = 0; S < Store.numShards(); ++S)
    EXPECT_TRUE(R.shard(S).checkInvariants());
}

TEST(ShardedGraph, EmptyAndSubsetBatches) {
  const VertexId N = 256;
  ShardedGraphStore Store(4, N);
  EXPECT_EQ(Store.acquire().numEdges(), 0u);
  // Empty batch still advances the epoch atomically.
  EXPECT_EQ(Store.insertBatch(nullptr, 0), 1u);
  // A batch touching a single shard (sources all congruent mod 4).
  std::vector<EdgePair> OneShard;
  for (VertexId I = 0; I < 40; ++I)
    OneShard.push_back({VertexId(4 * I), VertexId(I + 1)});
  EXPECT_EQ(Store.insertBatch(OneShard), 2u);
  auto R = Store.acquire();
  EXPECT_EQ(R.numEdges(), OneShard.size());
  EXPECT_EQ(R.shard(0).numEdges(), OneShard.size());
  EXPECT_EQ(R.shard(1).numEdges(), 0u);
}

TEST(ShardedGraph, PinnedEpochSurvivesUpdates) {
  const VertexId N = 512;
  ShardedGraphStore Store(4, N, randomBatch(N, 3000, 5));
  auto Old = Store.acquire();
  uint64_t OldEdges = Old.numEdges();
  auto OldAdj = adjacency(Old.view(), 7);
  for (int I = 0; I < 20; ++I)
    Store.insertBatch(randomBatch(N, 500, 100 + I));
  EXPECT_EQ(Old.numEdges(), OldEdges);
  EXPECT_EQ(adjacency(Old.view(), 7), OldAdj);
  auto Fresh = Store.acquire();
  EXPECT_GE(Fresh.numEdges(), OldEdges);
  EXPECT_EQ(Fresh.batchSeq(), 20u);
}

TEST(ShardedGraph, LeakFreeReclamation) {
  int64_t BaseBytes = liveCountedBytes();
  int64_t BaseNodes = totalPoolLiveBytes();
  {
    const VertexId N = 256;
    ShardedGraphStore Store(4, N, randomBatch(N, 2000, 6));
    for (int I = 0; I < 10; ++I) {
      auto Pin = Store.acquire(); // pin, update, release via scope exit
      Store.insertBatch(randomBatch(N, 300, 200 + I));
      Store.deleteBatch(randomBatch(N, 100, 300 + I));
    }
  }
  EXPECT_EQ(liveCountedBytes(), BaseBytes);
  EXPECT_EQ(totalPoolLiveBytes(), BaseNodes);
}

//===----------------------------------------------------------------------===
// Epoch atomicity: concurrent writers and readers, no torn cross-shard
// cuts. Batches are built so that the aggregate edge count identifies an
// exact set of whole batches; a reader observing anything else saw a torn
// epoch.
//===----------------------------------------------------------------------===

TEST(ShardedGraph, ConcurrentWritersNoTornEpochs) {
  const VertexId N = 1024;
  const size_t BatchSize = 128; // distinct edges per batch, all shards
  const int BatchesPerWriter = 20;
  const int Writers = 3;
  ShardedGraphStore Store(4, N);
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  // Writer W's batch B holds edges with globally unique ids, so every
  // published epoch's edge count must be a multiple of BatchSize, and the
  // per-shard counts must sum to it (consistent cut).
  auto MakeBatch = [&](int W, int B) {
    std::vector<EdgePair> Out;
    for (size_t J = 0; J < BatchSize; ++J) {
      uint64_t Id =
          (uint64_t(W) * BatchesPerWriter + uint64_t(B)) * BatchSize + J;
      Out.push_back({VertexId(Id % N), VertexId((Id / N) % N)});
    }
    return Out;
  };

  std::vector<std::thread> Ws;
  for (int W = 0; W < Writers; ++W)
    Ws.emplace_back([&, W] {
      for (int B = 0; B < BatchesPerWriter; ++B)
        Store.insertBatch(MakeBatch(W, B));
    });

  std::vector<std::thread> Rs;
  for (int R = 0; R < 3; ++R)
    Rs.emplace_back([&] {
      uint64_t LastSeq = 0;
      while (!Done.load()) {
        auto E = Store.acquire();
        uint64_t Edges = E.numEdges();
        if (Edges % BatchSize != 0)
          Violations.fetch_add(1); // torn epoch
        uint64_t ShardSum = 0;
        for (size_t S = 0; S < E.numShards(); ++S)
          ShardSum += E.shard(S).numEdges();
        if (ShardSum != Edges)
          Violations.fetch_add(1); // aggregate disagrees with the cut
        if (E.batchSeq() < LastSeq)
          Violations.fetch_add(1); // epochs must be monotone
        LastSeq = E.batchSeq();
      }
    });

  for (auto &T : Ws)
    T.join();
  Done.store(true);
  for (auto &T : Rs)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  auto Final = Store.acquire();
  EXPECT_EQ(Final.batchSeq(), uint64_t(Writers) * BatchesPerWriter);
  EXPECT_EQ(Final.numEdges(),
            uint64_t(Writers) * BatchesPerWriter * BatchSize);
}

TEST(ShardedGraph, DisjointShardWritersCommitIndependently) {
  // Writers whose batches touch disjoint shards: both streams must land
  // completely, and every epoch is still a consistent cut.
  const VertexId N = 1024;
  ShardedGraphStore Store(4, N);
  const int PerWriter = 25;
  auto ShardBatch = [&](size_t Sh, int B) {
    // Sources congruent to Sh mod 4 only.
    std::vector<EdgePair> Out;
    for (VertexId J = 0; J < 32; ++J)
      Out.push_back({VertexId((uint64_t(B) * 32 + J) * 4 + Sh) % N,
                     VertexId(J + 1)});
    return dedupEdges(Out);
  };
  std::thread W0([&] {
    for (int B = 0; B < PerWriter; ++B)
      Store.insertBatch(ShardBatch(0, B));
  });
  std::thread W1([&] {
    for (int B = 0; B < PerWriter; ++B)
      Store.insertBatch(ShardBatch(2, B));
  });
  W0.join();
  W1.join();
  auto R = Store.acquire();
  EXPECT_EQ(R.batchSeq(), uint64_t(2 * PerWriter));
  EXPECT_EQ(R.shard(1).numEdges(), 0u);
  EXPECT_EQ(R.shard(3).numEdges(), 0u);
  uint64_t Sum = 0;
  for (size_t S = 0; S < 4; ++S)
    Sum += R.shard(S).numEdges();
  EXPECT_EQ(Sum, R.numEdges());
}

//===----------------------------------------------------------------------===
// Differential: every algorithm over a sharded view matches the
// single-store result exactly (same process, same worker count, so even
// floating-point accumulation orders agree).
//===----------------------------------------------------------------------===

namespace {

/// Pin the canonical (sequential) schedule for bit-exactness assertions:
/// float accumulations through CAS loops are order-nondeterministic under
/// real parallelism on BOTH views, so exact equality is only meaningful
/// on the canonical schedule.
struct SequentialScope {
  SequentialScope() { setSequentialMode(true); }
  ~SequentialScope() { setSequentialMode(false); }
};

} // namespace

TEST(ShardedGraph, AllAlgorithmsMatchSingleStoreExactly) {
  const VertexId N = 1 << 10;
  auto Edges = randomBatch(N, 8000, 7);
  Graph Single = Graph::fromEdges(N, Edges);
  ShardedGraphStore Store(4, N, Edges);
  auto R = Store.acquire();
  TreeGraphView<ES> SV(Single);
  auto DV = R.view();

  SequentialScope Seq;
  EXPECT_EQ(bfs(SV, 3), bfs(DV, 3));
  EXPECT_EQ(bfsDistances(SV, 3), bfsDistances(DV, 3));
  EXPECT_EQ(connectedComponents(SV), connectedComponents(DV));
  EXPECT_EQ(kCore(SV), kCore(DV));
  EXPECT_EQ(pageRank(SV), pageRank(DV));
  EXPECT_EQ(triangleCount(SV), triangleCount(DV));
  EXPECT_EQ(mis(SV), mis(DV));
  EXPECT_EQ(bc(SV, 5), bc(DV, 5));
  EXPECT_EQ(twoHop(SV, 11), twoHop(DV, 11));
  {
    auto LS = localCluster(SV, 17);
    auto LD = localCluster(DV, 17);
    EXPECT_EQ(LS.Cluster, LD.Cluster);
    EXPECT_EQ(LS.Conductance, LD.Conductance);
  }
}

TEST(ShardedGraph, IntegerAlgorithmsMatchUnderParallelism) {
  // Deterministic-result algorithms must agree on the real parallel
  // schedule too (schedule-dependent float orders excluded above).
  const VertexId N = 1 << 10;
  auto Edges = randomBatch(N, 8000, 8);
  Graph Single = Graph::fromEdges(N, Edges);
  ShardedGraphStore Store(4, N, Edges);
  auto R = Store.acquire();
  TreeGraphView<ES> SV(Single);
  auto DV = R.view();

  EXPECT_EQ(bfsDistances(SV, 3), bfsDistances(DV, 3));
  EXPECT_EQ(connectedComponents(SV), connectedComponents(DV));
  EXPECT_EQ(kCore(SV), kCore(DV));
  EXPECT_EQ(triangleCount(SV), triangleCount(DV));
  EXPECT_EQ(mis(SV), mis(DV));
  EXPECT_EQ(twoHop(SV, 11), twoHop(DV, 11));
  // BFS parents can differ under parallel CAS races; reachability must
  // not.
  auto PS = bfs(SV, 3);
  auto PD = bfs(DV, 3);
  ASSERT_EQ(PS.size(), PD.size());
  for (size_t I = 0; I < PS.size(); ++I)
    EXPECT_EQ(PS[I] == NoVertex, PD[I] == NoVertex) << "vertex " << I;
}

TEST(ShardedGraph, AlgorithmsMatchAfterConcurrentIngest) {
  // Stream batches in from a writer thread; a reader repeatedly pins an
  // epoch and checks one cheap differential against a single store built
  // from the same prefix (identified by the epoch's batch sequence).
  const VertexId N = 512;
  const int Batches = 12;
  std::vector<std::vector<EdgePair>> Stream;
  for (int B = 0; B < Batches; ++B)
    Stream.push_back(randomBatch(N, 400, 500 + B));

  ShardedGraphStore Store(4, N);
  std::thread Writer([&] {
    for (auto &B : Stream)
      Store.insertBatch(B);
  });

  std::atomic<uint64_t> Violations{0};
  std::thread Reader([&] {
    for (int I = 0; I < 40; ++I) {
      auto E = Store.acquire();
      uint64_t Seq = E.batchSeq();
      Graph Prefix = Graph::fromEdges(N, {});
      for (uint64_t B = 0; B < Seq; ++B)
        Prefix = Prefix.insertEdges(Stream[size_t(B)]);
      TreeGraphView<ES> PV(Prefix);
      if (connectedComponents(PV) != connectedComponents(E.view()))
        Violations.fetch_add(1);
      if (Prefix.numEdges() != E.numEdges())
        Violations.fetch_add(1);
    }
  });
  Writer.join();
  Reader.join();
  EXPECT_EQ(Violations.load(), 0u);
}
