//===- tests/baselines_test.cpp - Comparand system tests ------------------===//
//
// The CSR (GAP/Ligra+-like), Stinger-like, LLAMA-like, and Galois-like
// baselines: adjacency correctness against a reference model, update
// semantics, and algorithm agreement with the Aspen implementations.
//
//===----------------------------------------------------------------------===//

#include "algorithms/bfs.h"
#include "algorithms/mis.h"
#include "baselines/csr.h"
#include "baselines/llama_like.h"
#include "baselines/stinger_like.h"
#include "baselines/worklist.h"
#include "gen/generators.h"
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace aspen;

namespace {

using RefModel = std::map<VertexId, std::set<VertexId>>;

RefModel refFromEdges(const std::vector<EdgePair> &Edges) {
  RefModel M;
  for (const EdgePair &E : Edges)
    M[E.first].insert(E.second);
  return M;
}

template <class G>
std::vector<VertexId> neighborsOf(const G &Graph, VertexId V) {
  std::vector<VertexId> Out;
  Graph.mapNeighbors(V, [&](VertexId U) { Out.push_back(U); });
  std::sort(Out.begin(), Out.end());
  return Out;
}

template <class G>
void expectMatchesRef(const G &Graph, const RefModel &M, VertexId N) {
  for (VertexId V = 0; V < N; ++V) {
    auto It = M.find(V);
    std::vector<VertexId> Ref =
        It == M.end() ? std::vector<VertexId>{}
                      : std::vector<VertexId>(It->second.begin(),
                                              It->second.end());
    ASSERT_EQ(neighborsOf(Graph, V), Ref) << "vertex " << V;
    ASSERT_EQ(Graph.degree(V), Ref.size()) << "vertex " << V;
  }
}

} // namespace

//===----------------------------------------------------------------------===
// CSR baselines.
//===----------------------------------------------------------------------===

TEST(Csr, MatchesReference) {
  auto Edges = rmatGraphEdges(9, 6, 1);
  const VertexId N = 1 << 9;
  CsrGraph G = CsrGraph::fromEdges(N, Edges);
  expectMatchesRef(G, refFromEdges(Edges), N);
  EXPECT_EQ(G.numEdges(), refFromEdges(Edges).size() ? G.numEdges() : 0u);
}

TEST(CompressedCsr, MatchesUncompressed) {
  auto Edges = rmatGraphEdges(9, 6, 2);
  const VertexId N = 1 << 9;
  CsrGraph A = CsrGraph::fromEdges(N, Edges);
  CompressedCsrGraph B = CompressedCsrGraph::fromEdges(N, Edges);
  EXPECT_EQ(A.numEdges(), B.numEdges());
  for (VertexId V = 0; V < N; ++V) {
    ASSERT_EQ(A.degree(V), B.degree(V));
    ASSERT_EQ(neighborsOf(A, V), neighborsOf(B, V));
  }
  // Compression must actually shrink the edge data (Table 9's L+ column).
  EXPECT_LT(B.memoryBytes(), A.memoryBytes());
}

TEST(CompressedCsr, IterCondStops) {
  CompressedCsrGraph G =
      CompressedCsrGraph::fromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  int Seen = 0;
  bool Finished = G.iterNeighborsCond(0, [&](VertexId) {
    ++Seen;
    return Seen < 2;
  });
  EXPECT_FALSE(Finished);
  EXPECT_EQ(Seen, 2);
}

TEST(Csr, BfsMatchesAspen) {
  auto Edges = rmatGraphEdges(9, 8, 3);
  const VertexId N = 1 << 9;
  CsrGraph C = CsrGraph::fromEdges(N, Edges);
  CompressedCsrGraph CC = CompressedCsrGraph::fromEdges(N, Edges);
  Graph G = Graph::fromEdges(N, Edges);
  TreeGraphView TV(G);
  auto RefDist = bfsDistances(TV, 0);
  EXPECT_EQ(bfsDistances(C, 0), RefDist);
  EXPECT_EQ(bfsDistances(CC, 0), RefDist);
}

//===----------------------------------------------------------------------===
// Stinger-like baseline.
//===----------------------------------------------------------------------===

TEST(Stinger, InsertAndQuery) {
  StingerGraph G(10);
  EXPECT_TRUE(G.insertEdge(1, 2));
  EXPECT_FALSE(G.insertEdge(1, 2)) << "duplicate rejected";
  EXPECT_TRUE(G.insertEdge(1, 3));
  EXPECT_EQ(G.degree(1), 2u);
  EXPECT_EQ(neighborsOf(G, 1), (std::vector<VertexId>{2, 3}));
}

TEST(Stinger, DeleteEdge) {
  StingerGraph G(10);
  G.insertEdge(1, 2);
  G.insertEdge(1, 3);
  EXPECT_TRUE(G.deleteEdge(1, 2));
  EXPECT_FALSE(G.deleteEdge(1, 2));
  EXPECT_EQ(G.degree(1), 1u);
  EXPECT_EQ(neighborsOf(G, 1), (std::vector<VertexId>{3}));
}

TEST(Stinger, ManyBlocksPerVertex) {
  StingerGraph G(4);
  std::set<VertexId> Ref;
  for (VertexId V = 0; V < 200; V += 2) {
    G.insertEdge(0, V + 1);
    Ref.insert(V + 1);
  }
  EXPECT_EQ(G.degree(0), Ref.size());
  EXPECT_EQ(neighborsOf(G, 0),
            std::vector<VertexId>(Ref.begin(), Ref.end()));
}

TEST(Stinger, ParallelBatchInsertMatchesReference) {
  const VertexId N = 256;
  auto Edges = dedupEdges(uniformRandomEdges(N, 5000, 7));
  StingerGraph G(N);
  G.batchInsert(Edges);
  expectMatchesRef(G, refFromEdges(Edges), N);
}

TEST(Stinger, BatchDeleteMatchesReference) {
  const VertexId N = 128;
  auto Edges = dedupEdges(uniformRandomEdges(N, 3000, 8));
  StingerGraph G(N);
  G.batchInsert(Edges);
  std::vector<EdgePair> ToDelete(Edges.begin(),
                                 Edges.begin() + Edges.size() / 2);
  G.batchDelete(ToDelete);
  RefModel M = refFromEdges(Edges);
  for (const EdgePair &E : ToDelete)
    M[E.first].erase(E.second);
  expectMatchesRef(G, M, N);
}

TEST(Stinger, BfsMatchesAspen) {
  auto Edges = rmatGraphEdges(8, 6, 9);
  const VertexId N = 1 << 8;
  StingerGraph S(N);
  S.batchInsert(Edges);
  Graph G = Graph::fromEdges(N, Edges);
  TreeGraphView TV(G);
  EdgeMapOptions NoDense;
  NoDense.NoDense = true; // Stinger comparisons run without dir-opt
  EXPECT_EQ(bfsDistances(S, 0, NoDense), bfsDistances(TV, 0, NoDense));
}

//===----------------------------------------------------------------------===
// LLAMA-like baseline.
//===----------------------------------------------------------------------===

TEST(Llama, SingleBatch) {
  LlamaGraph G(8);
  G.ingestBatch({{0, 1}, {0, 2}, {3, 4}});
  EXPECT_EQ(G.numSnapshots(), 2u);
  EXPECT_EQ(G.degree(0), 2u);
  EXPECT_EQ(neighborsOf(G, 0), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(G.numEdges(), 3u);
}

TEST(Llama, FragmentsChainAcrossSnapshots) {
  LlamaGraph G(8);
  G.ingestBatch({{0, 1}});
  G.ingestBatch({{0, 2}});
  G.ingestBatch({{0, 3}});
  EXPECT_EQ(G.degree(0), 3u);
  EXPECT_EQ(neighborsOf(G, 0), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(G.numSnapshots(), 4u);
}

TEST(Llama, DeletionTombstones) {
  LlamaGraph G(8);
  G.ingestBatch({{0, 1}, {0, 2}, {0, 3}});
  G.ingestBatch({}, {{0, 2}});
  EXPECT_EQ(G.degree(0), 2u);
  EXPECT_EQ(neighborsOf(G, 0), (std::vector<VertexId>{1, 3}));
  // Re-insertion after deletion is visible again.
  G.ingestBatch({{0, 2}});
  EXPECT_EQ(neighborsOf(G, 0), (std::vector<VertexId>{1, 2, 3}));
}

TEST(Llama, MemoryGrowsWithSnapshots) {
  LlamaGraph G(1024);
  G.ingestBatch({{0, 1}});
  size_t After1 = G.memoryBytes();
  for (int I = 0; I < 5; ++I)
    G.ingestBatch({{VertexId(I + 1), 0}});
  // Each snapshot pays the O(n) vertex table (the paper's critique).
  EXPECT_GT(G.memoryBytes(), After1 + 5 * 1024 * sizeof(int32_t) / 2);
}

TEST(Llama, BfsMatchesAspen) {
  auto Edges = rmatGraphEdges(8, 6, 10);
  const VertexId N = 1 << 8;
  LlamaGraph L(N);
  // Ingest in several batches to create real fragment chains.
  size_t Step = Edges.size() / 4 + 1;
  for (size_t I = 0; I < Edges.size(); I += Step)
    L.ingestBatch(std::vector<EdgePair>(
        Edges.begin() + I,
        Edges.begin() + std::min(Edges.size(), I + Step)));
  Graph G = Graph::fromEdges(N, Edges);
  TreeGraphView TV(G);
  EdgeMapOptions NoDense;
  NoDense.NoDense = true;
  EXPECT_EQ(bfsDistances(L, 0, NoDense), bfsDistances(TV, 0, NoDense));
}

//===----------------------------------------------------------------------===
// Galois-like worklist baseline.
//===----------------------------------------------------------------------===

TEST(Worklist, AsyncBfsMatchesSynchronous) {
  auto Edges = rmatGraphEdges(9, 8, 11);
  const VertexId N = 1 << 9;
  CsrGraph C = CsrGraph::fromEdges(N, Edges);
  auto Sync = bfsDistances(C, 0);
  auto Async = asyncBfs(C, 0);
  EXPECT_EQ(Async, Sync);
}

TEST(Worklist, AsyncBfsOnPath) {
  const VertexId N = 300;
  CsrGraph C = CsrGraph::fromEdges(N, pathGraph(N));
  auto Dist = asyncBfs(C, 0);
  for (VertexId V = 0; V < N; ++V)
    ASSERT_EQ(Dist[V], V);
}

TEST(Worklist, SpeculativeMisIsValid) {
  auto Edges = rmatGraphEdges(9, 6, 12);
  const VertexId N = 1 << 9;
  CsrGraph C = CsrGraph::fromEdges(N, Edges);
  auto In = speculativeMis(C);
  // Validate with a reference adjacency structure.
  std::map<VertexId, std::set<VertexId>> M;
  for (const EdgePair &E : Edges)
    M[E.first].insert(E.second);
  for (VertexId V = 0; V < N; ++V) {
    if (In[V]) {
      for (VertexId U : M[V])
        ASSERT_FALSE(U != V && In[U]) << "edge (" << V << "," << U
                                      << ") inside the set";
      continue;
    }
    // Not in the set: maximality requires an in-set neighbor.
    bool HasIn = false;
    for (VertexId U : M[V])
      if (U != V && In[U])
        HasIn = true;
    ASSERT_TRUE(HasIn) << "vertex " << V << " not maximal";
  }
}
