//===- tests/graph_io_test.cpp - Malformed-input graph IO tests -----------===//
//
// Hardening tests for gen/graph_io: every malformed fixture must be
// rejected with a clear error message and must never crash, over-allocate,
// or silently return garbage. Round-trip coverage for the checksummed
// ASPNEDG1 binary format and the legacy headerless format rides along.
//
//===----------------------------------------------------------------------===//

#include "gen/generators.h"
#include "gen/graph_io.h"
#include "util/crc.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace aspen;

namespace {

/// A self-cleaning fixture file under the test temp dir.
class FixtureFile {
public:
  explicit FixtureFile(const std::string &Name)
      : Path(testing::TempDir() + "/" + Name) {}
  ~FixtureFile() { std::remove(Path.c_str()); }

  void writeText(const std::string &Text) const {
    std::ofstream F(Path);
    F << Text;
  }

  void writeBytes(const std::vector<char> &Bytes) const {
    std::ofstream F(Path, std::ios::binary);
    F.write(Bytes.data(), std::streamsize(Bytes.size()));
  }

  std::vector<char> readBytes() const {
    std::ifstream F(Path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(F),
                             std::istreambuf_iterator<char>());
  }

  /// Truncate the on-disk file to \p Bytes bytes.
  void truncateTo(size_t Bytes) const {
    std::vector<char> All = readBytes();
    All.resize(Bytes);
    writeBytes(All);
  }

  /// XOR one byte at \p Off (simulated media corruption).
  void flipByte(size_t Off) const {
    std::vector<char> All = readBytes();
    ASSERT_LT(Off, All.size());
    All[Off] = char(All[Off] ^ 0x40);
    writeBytes(All);
  }

  const std::string Path;
};

void appendU64(std::vector<char> &Out, uint64_t V) {
  char Buf[8];
  std::memcpy(Buf, &V, 8);
  Out.insert(Out.end(), Buf, Buf + 8);
}

/// A legacy headerless binary file: u64 n, u64 m, packed u32 pairs.
std::vector<char> legacyBinary(uint64_t N, const std::vector<EdgePair> &E) {
  std::vector<char> Out;
  appendU64(Out, N);
  appendU64(Out, E.size());
  const char *P = reinterpret_cast<const char *>(E.data());
  Out.insert(Out.end(), P, P + E.size() * sizeof(EdgePair));
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// AdjacencyGraph (text) fixtures.
//===----------------------------------------------------------------------===//

TEST(GraphIOHardening, AdjTruncatedOffsetArray) {
  FixtureFile F("adj_trunc_off.adj");
  F.writeText("AdjacencyGraph\n4\n2\n0 1\n"); // promises 4 offsets, gives 2
  EdgeList Out;
  std::string Err;
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("truncated offset array"), std::string::npos) << Err;
}

TEST(GraphIOHardening, AdjTruncatedEdgeArray) {
  FixtureFile F("adj_trunc_edge.adj");
  F.writeText("AdjacencyGraph\n2\n3\n0 1\n1\n"); // promises 3 targets, gives 1
  EdgeList Out;
  std::string Err;
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("truncated edge array"), std::string::npos) << Err;
}

TEST(GraphIOHardening, AdjAbsurdCountsRejectedBeforeAllocation) {
  FixtureFile F("adj_absurd.adj");
  // A tiny file claiming ~10^18 vertices: must be rejected by the
  // size-vs-count cross-check, not by attempting an exabyte allocation.
  F.writeText("AdjacencyGraph\n999999999999999999\n5\n0\n");
  EdgeList Out;
  std::string Err;
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("exceeds the 32-bit vertex-id space"),
            std::string::npos)
      << Err;

  // Same with a count that fits in 32 bits but not in the file.
  F.writeText("AdjacencyGraph\n1000000000\n5\n0\n");
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("but the file is only"), std::string::npos) << Err;
}

TEST(GraphIOHardening, AdjNonMonotonicOffsets) {
  FixtureFile F("adj_nonmono.adj");
  F.writeText("AdjacencyGraph\n3\n3\n0 2 1\n0 1 2\n");
  EdgeList Out;
  std::string Err;
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("not monotonically"), std::string::npos) << Err;
}

TEST(GraphIOHardening, AdjOffsetBeyondEdgeCount) {
  FixtureFile F("adj_offrange.adj");
  F.writeText("AdjacencyGraph\n3\n2\n0 1 7\n0 1\n");
  EdgeList Out;
  std::string Err;
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("exceeds edge count"), std::string::npos) << Err;
}

TEST(GraphIOHardening, AdjFirstOffsetMustBeZero) {
  FixtureFile F("adj_first.adj");
  F.writeText("AdjacencyGraph\n2\n2\n1 2\n0 1\n");
  EdgeList Out;
  std::string Err;
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("first offset must be 0"), std::string::npos) << Err;
}

TEST(GraphIOHardening, AdjTargetOutOfRange) {
  FixtureFile F("adj_target.adj");
  F.writeText("AdjacencyGraph\n3\n2\n0 1 2\n1 9\n");
  EdgeList Out;
  std::string Err;
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
}

TEST(GraphIOHardening, AdjEdgesWithZeroVertices) {
  FixtureFile F("adj_zero.adj");
  F.writeText("AdjacencyGraph\n0\n2\n1 2\n");
  EdgeList Out;
  std::string Err;
  EXPECT_FALSE(readAdjacencyGraph(F.Path, Out, &Err));
  EXPECT_NE(Err.find("zero vertices"), std::string::npos) << Err;
}

TEST(GraphIOHardening, AdjValidFileStillParses) {
  FixtureFile F("adj_ok.adj");
  F.writeText("AdjacencyGraph\n3\n4\n0 2 3\n1 2 0 1\n");
  EdgeList Out;
  std::string Err;
  ASSERT_TRUE(readAdjacencyGraph(F.Path, Out, &Err)) << Err;
  EXPECT_EQ(Out.NumVertices, 3u);
  std::vector<EdgePair> Want = {{0, 1}, {0, 2}, {1, 0}, {2, 1}};
  EXPECT_EQ(Out.Edges, Want);
}

//===----------------------------------------------------------------------===//
// Binary edge-list fixtures.
//===----------------------------------------------------------------------===//

TEST(GraphIOHardening, BinaryChecksummedRoundTrip) {
  FixtureFile F("bin_round.bin");
  auto Edges = dedupEdges(uniformRandomEdges(500, 4000, 11));
  ASSERT_TRUE(writeBinaryEdges(F.Path, 500, Edges));
  // The writer emits the checksummed format: magic first.
  auto Bytes = F.readBytes();
  ASSERT_GE(Bytes.size(), 8u);
  uint64_t Magic = 0;
  std::memcpy(&Magic, Bytes.data(), 8);
  EXPECT_EQ(Magic, BinaryEdgesMagic);
  EdgeList In;
  std::string Err;
  ASSERT_TRUE(readBinaryEdges(F.Path, In, &Err)) << Err;
  EXPECT_EQ(In.NumVertices, 500u);
  EXPECT_EQ(In.Edges, Edges);
}

TEST(GraphIOHardening, BinaryLegacyFormatStillReads) {
  FixtureFile F("bin_legacy.bin");
  std::vector<EdgePair> Edges = {{0, 1}, {1, 2}, {2, 0}};
  F.writeBytes(legacyBinary(3, Edges));
  EdgeList In;
  std::string Err;
  ASSERT_TRUE(readBinaryEdges(F.Path, In, &Err)) << Err;
  EXPECT_EQ(In.NumVertices, 3u);
  EXPECT_EQ(In.Edges, Edges);
}

TEST(GraphIOHardening, BinaryTruncatedPayload) {
  FixtureFile F("bin_trunc.bin");
  auto Edges = dedupEdges(uniformRandomEdges(100, 200, 12));
  ASSERT_TRUE(writeBinaryEdges(F.Path, 100, Edges));
  size_t Full = F.readBytes().size();
  F.truncateTo(Full - 5);
  EdgeList In;
  std::string Err;
  EXPECT_FALSE(readBinaryEdges(F.Path, In, &Err));
  EXPECT_NE(Err.find("does not match payload size"), std::string::npos)
      << Err;
}

TEST(GraphIOHardening, BinaryTinyFileRejected) {
  FixtureFile F("bin_tiny.bin");
  F.writeBytes({'A', 'S', 'P'});
  EdgeList In;
  std::string Err;
  EXPECT_FALSE(readBinaryEdges(F.Path, In, &Err));
  EXPECT_NE(Err.find("too small"), std::string::npos) << Err;
}

TEST(GraphIOHardening, BinaryAbsurdEdgeCountRejectedBeforeAllocation) {
  FixtureFile F("bin_absurd.bin");
  // Legacy header promising 2^56 edges in a 24-byte file: the size
  // cross-check must fire before Edges.resize() is attempted.
  std::vector<char> Bytes;
  appendU64(Bytes, 10);                    // n
  appendU64(Bytes, uint64_t(1) << 56);     // m (absurd)
  appendU64(Bytes, 0);                     // 8 bytes of "payload"
  F.writeBytes(Bytes);
  EdgeList In;
  std::string Err;
  EXPECT_FALSE(readBinaryEdges(F.Path, In, &Err));
  EXPECT_NE(Err.find("does not match payload size"), std::string::npos)
      << Err;
}

TEST(GraphIOHardening, BinaryPayloadBitFlipCaughtByChecksum) {
  FixtureFile F("bin_flip.bin");
  auto Edges = dedupEdges(uniformRandomEdges(64, 300, 13));
  ASSERT_TRUE(writeBinaryEdges(F.Path, 64, Edges));
  F.flipByte(32 + 10); // a payload byte past the 32-byte header
  EdgeList In;
  std::string Err;
  EXPECT_FALSE(readBinaryEdges(F.Path, In, &Err));
  EXPECT_NE(Err.find("checksum mismatch"), std::string::npos) << Err;
}

TEST(GraphIOHardening, BinaryHeaderBitFlipCaught) {
  FixtureFile F("bin_hflip.bin");
  auto Edges = dedupEdges(uniformRandomEdges(64, 300, 14));
  ASSERT_TRUE(writeBinaryEdges(F.Path, 64, Edges));
  // Flip a byte of n in the header: either the stored CRC no longer
  // matches or a derived bound fails -- silence is the only wrong answer.
  F.flipByte(8);
  EdgeList In;
  std::string Err;
  EXPECT_FALSE(readBinaryEdges(F.Path, In, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(GraphIOHardening, BinaryOutOfRangeEndpointRejected) {
  FixtureFile F("bin_range.bin");
  std::vector<EdgePair> Edges = {{0, 1}, {1, 9}}; // 9 >= n=3
  F.writeBytes(legacyBinary(3, Edges));
  EdgeList In;
  std::string Err;
  EXPECT_FALSE(readBinaryEdges(F.Path, In, &Err));
  EXPECT_NE(Err.find("out of range"), std::string::npos) << Err;
}

TEST(GraphIOHardening, BinaryOversizedVertexCountRejected) {
  FixtureFile F("bin_bign.bin");
  F.writeBytes(legacyBinary(uint64_t(1) << 40, {}));
  EdgeList In;
  std::string Err;
  EXPECT_FALSE(readBinaryEdges(F.Path, In, &Err));
  EXPECT_NE(Err.find("exceeds the 32-bit vertex-id space"),
            std::string::npos)
      << Err;
}

TEST(GraphIOHardening, BinaryEmptyEdgeListRoundTrips) {
  FixtureFile F("bin_empty.bin");
  ASSERT_TRUE(writeBinaryEdges(F.Path, 16, {}));
  EdgeList In;
  std::string Err;
  ASSERT_TRUE(readBinaryEdges(F.Path, In, &Err)) << Err;
  EXPECT_EQ(In.NumVertices, 16u);
  EXPECT_TRUE(In.Edges.empty());
}
