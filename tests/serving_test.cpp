//===- tests/serving_test.cpp - Serving layer: coalescing + admission -----===//
//
// The multi-tenant serving subsystem (src/serve/, DESIGN.md Section 8):
//
//  - Coalesced/pipelined ingest is BYTE-IDENTICAL to one-at-a-time
//    serialized ingest (chunk-level: checkpoint serialization memcmp),
//    including through the concurrent IngestFrontT and across a durable
//    close/reopen with per-batch WAL records inside coalesced installs.
//  - AdmissionQueueT: queue-full rejection, FIFO within a class,
//    weighted-fair scheduling under saturation, work conservation.
//  - SessionPool: lease/return, exhaustion, warm reuse.
//  - SnapshotServerT: queries under concurrent ingest see consistent
//    epochs, overload sheds instead of stalling, epoch lag is tracked.
//  - acquireFlat() lock-free fast path: repeated hits on an unchanged
//    epoch are counted and all readers see the same flat.
//
//===----------------------------------------------------------------------===//

#include "gen/generators.h"
#include "serve/server.h"
#include "store/checkpoint.h"
#include "store/sharded_graph.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <dirent.h>
#include <future>
#include <thread>
#include <unistd.h>

using namespace aspen;

namespace {

std::vector<EdgePair> randomBatch(VertexId N, size_t K, uint64_t Seed) {
  return dedupEdges(symmetrize(uniformRandomEdges(N, K, Seed)));
}

/// A batch whose sources all hash to shard 0 of an S-shard store — the
/// hot-shard writer stream the coalescing front exists for.
std::vector<EdgePair> oneShardBatch(VertexId N, size_t Shards, size_t K,
                                    uint64_t Seed) {
  std::vector<EdgePair> Out;
  uint64_t X = Seed * 0x9E3779B97F4A7C15ull + 1;
  auto Next = [&X] {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    return X;
  };
  Out.reserve(K);
  for (size_t I = 0; I < K; ++I) {
    VertexId Src = VertexId((Next() % (N / Shards)) * Shards); // shard 0
    VertexId Dst = VertexId(Next() % N);
    Out.push_back({Src, Dst});
  }
  return dedupEdges(std::move(Out));
}

/// Chunk-level bytes of every shard (checkpoint serialization is
/// chunk-verbatim for C-tree sets).
template <class Store>
std::vector<std::vector<uint8_t>> storeBytes(Store &S) {
  auto R = S.acquire();
  std::vector<std::vector<uint8_t>> Out(R.numShards());
  for (size_t Sh = 0; Sh < R.numShards(); ++Sh)
    serializeSnapshot(R.shard(Sh), Out[Sh]);
  return Out;
}

struct TempDir {
  std::string P;
  TempDir() {
    char Buf[] = "/tmp/aspen-serve-XXXXXX";
    const char *R = ::mkdtemp(Buf);
    EXPECT_NE(R, nullptr);
    P = Buf;
  }
  ~TempDir() {
    if (DIR *D = ::opendir(P.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        std::string N = E->d_name;
        if (N != "." && N != "..")
          (void)::unlink((P + "/" + N).c_str());
      }
      ::closedir(D);
      (void)::rmdir(P.c_str());
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===
// Coalescing byte identity.
//===----------------------------------------------------------------------===

TEST(ServeCoalesce, ApplySpansMatchesOneAtATime) {
  const VertexId N = 1 << 10;
  const size_t Shards = 4;
  // A mixed schedule: runs of inserts and deletes. Coalescing may only
  // merge same-kind runs, so the grouped store splits each run into
  // spans of up to 3 batches.
  std::vector<std::pair<bool, std::vector<EdgePair>>> Sched;
  for (int I = 0; I < 5; ++I)
    Sched.push_back({true, randomBatch(N, 700, 100 + I)});
  Sched.push_back({false, Sched[1].second}); // delete a prior batch
  Sched.push_back({false, randomBatch(N, 400, 200)}); // partly absent
  for (int I = 0; I < 4; ++I)
    Sched.push_back({true, randomBatch(N, 500, 300 + I)});
  Sched.push_back({false, randomBatch(N, 300, 400)});

  ShardedGraphStore Serial(Shards, N), Grouped(Shards, N);
  Serial.setPipelinedIngest(false); // group/sort under the shard locks
  for (auto &B : Sched)
    B.first ? Serial.insertBatch(B.second) : Serial.deleteBatch(B.second);

  for (size_t I = 0; I < Sched.size();) {
    size_t J = I;
    while (J < Sched.size() && Sched[J].first == Sched[I].first &&
           J - I < 3)
      ++J;
    std::vector<EdgeSpan> Spans;
    for (size_t K = I; K < J; ++K)
      Spans.push_back({Sched[K].second.data(), Sched[K].second.size()});
    Grouped.applySpans(Spans.data(), Spans.size(), Sched[I].first);
    I = J;
  }

  EXPECT_EQ(Serial.batchSeq(), Sched.size());
  EXPECT_EQ(Grouped.batchSeq(), Sched.size());
  auto A = storeBytes(Serial), B = storeBytes(Grouped);
  ASSERT_EQ(A.size(), B.size());
  for (size_t Sh = 0; Sh < A.size(); ++Sh) {
    ASSERT_EQ(A[Sh].size(), B[Sh].size()) << "shard " << Sh;
    EXPECT_EQ(std::memcmp(A[Sh].data(), B[Sh].data(), A[Sh].size()), 0)
        << "shard " << Sh;
  }
}

TEST(ServeCoalesce, PrepareCommitSplitMatchesDirectApply) {
  const VertexId N = 1 << 9;
  ShardedGraphStore A(4, N), B(4, N);
  auto B1 = oneShardBatch(N, 4, 400, 1);
  auto B2 = oneShardBatch(N, 4, 400, 2);
  auto B3 = oneShardBatch(N, 4, 300, 3);
  A.insertBatch(B1);
  A.insertBatch(B2);
  A.insertBatch(B3);

  // Pipelined split: prepare the second group while nothing holds the
  // locks, then commit both in order.
  std::vector<EdgeSpan> G1{{B1.data(), B1.size()}, {B2.data(), B2.size()}};
  auto P1 = B.prepareSpans(G1.data(), G1.size(), true);
  std::vector<EdgeSpan> G2{{B3.data(), B3.size()}};
  auto P2 = B.prepareSpans(G2.data(), G2.size(), true);
  EXPECT_EQ(B.commitPrepared(std::move(P1)), 2u);
  EXPECT_EQ(B.commitPrepared(std::move(P2)), 3u);

  auto BA = storeBytes(A), BB = storeBytes(B);
  for (size_t Sh = 0; Sh < BA.size(); ++Sh)
    EXPECT_EQ(BA[Sh], BB[Sh]) << "shard " << Sh;
}

TEST(ServeCoalesce, IngestFrontConcurrentInsertIdentity) {
  const VertexId N = 1 << 10;
  const size_t Shards = 4, Writers = 4, PerWriter = 12;
  // Insert-only workload: set union is order-independent, so the final
  // state must match a sequential reference regardless of interleaving.
  std::vector<std::vector<EdgePair>> Batches;
  for (size_t W = 0; W < Writers; ++W)
    for (size_t I = 0; I < PerWriter; ++I)
      Batches.push_back(oneShardBatch(N, Shards, 300, 7 * W + 100 * I + 1));

  ShardedGraphStore Ref(Shards, N);
  for (auto &B : Batches)
    Ref.insertBatch(B);

  ShardedGraphStore S(Shards, N);
  IngestFrontT<ShardedGraphStore> Front(S, /*MaxCoalesce=*/8);
  std::vector<std::thread> Ts;
  for (size_t W = 0; W < Writers; ++W)
    Ts.emplace_back([&, W] {
      for (size_t I = 0; I < PerWriter; ++I) {
        uint64_t Seq = Front.insertBatch(Batches[W * PerWriter + I]);
        EXPECT_GE(Seq, 1u);
        EXPECT_LE(Seq, Batches.size());
      }
    });
  for (auto &T : Ts)
    T.join();

  EXPECT_EQ(S.batchSeq(), Batches.size());
  auto St = Front.stats();
  EXPECT_EQ(St.Submitted, Batches.size());
  EXPECT_LE(St.Installs, St.Submitted);
  EXPECT_GE(St.MaxGroup, 1u);

  auto A = storeBytes(Ref), B = storeBytes(S);
  for (size_t Sh = 0; Sh < A.size(); ++Sh)
    EXPECT_EQ(A[Sh], B[Sh]) << "shard " << Sh;
}

TEST(ServeCoalesce, IngestFrontMixedKindsKeepFIFO) {
  const VertexId N = 512;
  ShardedGraphStore S(2, N), Ref(2, N);
  IngestFrontT<ShardedGraphStore> Front(S);
  auto B1 = randomBatch(N, 800, 1);
  auto B2 = randomBatch(N, 500, 2);
  EXPECT_EQ(Front.insertBatch(B1), 1u);
  EXPECT_EQ(Front.insertBatch(B2), 2u);
  EXPECT_EQ(Front.deleteBatch(B1), 3u);
  EXPECT_EQ(Front.insertBatch(B1), 4u);
  Ref.insertBatch(B1);
  Ref.insertBatch(B2);
  Ref.deleteBatch(B1);
  Ref.insertBatch(B1);
  auto A = storeBytes(Ref), B = storeBytes(S);
  for (size_t Sh = 0; Sh < A.size(); ++Sh)
    EXPECT_EQ(A[Sh], B[Sh]) << "shard " << Sh;
}

TEST(ServeCoalesce, DurableCoalescedInstallReplays) {
  const VertexId N = 512;
  TempDir D;
  DurabilityOptions O;
  O.Dir = D.P;
  O.FsyncOnCommit = false;
  auto B1 = randomBatch(N, 600, 11);
  auto B2 = randomBatch(N, 400, 12);
  auto B3 = randomBatch(N, 300, 13);
  std::vector<std::vector<uint8_t>> Before;
  {
    ShardedGraphStore S(O, 4, N);
    // One coalesced install of three batches: three WAL records, one
    // epoch, BatchSeq 3.
    std::vector<EdgeSpan> G{{B1.data(), B1.size()},
                            {B2.data(), B2.size()},
                            {B3.data(), B3.size()}};
    EXPECT_EQ(S.applySpans(G.data(), G.size(), true), 3u);
    EXPECT_EQ(S.batchSeq(), 3u);
    Before = storeBytes(S);
  }
  {
    // Recovery replays the WAL batch-per-epoch; the acknowledged state
    // must come back byte-identical with the same sequence number.
    ShardedGraphStore S(O, 4, N);
    EXPECT_EQ(S.batchSeq(), 3u);
    auto After = storeBytes(S);
    ASSERT_EQ(Before.size(), After.size());
    for (size_t Sh = 0; Sh < Before.size(); ++Sh)
      EXPECT_EQ(Before[Sh], After[Sh]) << "shard " << Sh;
  }
}

//===----------------------------------------------------------------------===
// Admission control.
//===----------------------------------------------------------------------===

TEST(ServeAdmission, RejectsWhenFull) {
  AdmissionQueueT<int> Q({/*ReadCap=*/2, /*WriteCap=*/1, 4});
  EXPECT_TRUE(Q.tryPush(RequestClass::Read, 1));
  EXPECT_TRUE(Q.tryPush(RequestClass::Read, 2));
  EXPECT_FALSE(Q.tryPush(RequestClass::Read, 3)); // shed
  EXPECT_TRUE(Q.tryPush(RequestClass::Write, 10));
  EXPECT_FALSE(Q.tryPush(RequestClass::Write, 11)); // shed
  auto St = Q.stats();
  EXPECT_EQ(St.AdmittedReads, 2u);
  EXPECT_EQ(St.ShedReads, 1u);
  EXPECT_EQ(St.AdmittedWrites, 1u);
  EXPECT_EQ(St.ShedWrites, 1u);
  // Admitted work drains FIFO within its class even after stop().
  Q.stop();
  EXPECT_FALSE(Q.tryPush(RequestClass::Read, 4));
  std::vector<int> Reads;
  int Writes = 0;
  while (auto R = Q.pop())
    (R->first == RequestClass::Read ? (void)Reads.push_back(R->second)
                                    : (void)++Writes);
  EXPECT_EQ(Reads, (std::vector<int>{1, 2}));
  EXPECT_EQ(Writes, 1);
}

TEST(ServeAdmission, WeightedFairUnderSaturation) {
  const unsigned RPW = 4;
  AdmissionQueueT<int> Q({/*ReadCap=*/256, /*WriteCap=*/64, RPW});
  for (int I = 0; I < 64; ++I)
    ASSERT_TRUE(Q.tryPush(RequestClass::Read, I));
  for (int I = 0; I < 8; ++I)
    ASSERT_TRUE(Q.tryPush(RequestClass::Write, 1000 + I));
  // With both classes saturated, the pop pattern is RPW reads : 1 write
  // — a query flood cannot starve ingest.
  for (int Round = 0; Round < 8; ++Round) {
    for (unsigned I = 0; I < RPW; ++I) {
      auto R = Q.pop();
      ASSERT_TRUE(R.has_value());
      EXPECT_EQ(R->first, RequestClass::Read) << "round " << Round;
    }
    auto W = Q.pop();
    ASSERT_TRUE(W.has_value());
    EXPECT_EQ(W->first, RequestClass::Write) << "round " << Round;
    EXPECT_EQ(W->second, 1000 + Round); // writes drain FIFO
  }
}

TEST(ServeAdmission, WorkConservingWhenOneClassIdle) {
  AdmissionQueueT<int> Q({16, 16, 4});
  // Writes only: served back-to-back, no read credit throttling.
  for (int I = 0; I < 6; ++I)
    ASSERT_TRUE(Q.tryPush(RequestClass::Write, I));
  for (int I = 0; I < 6; ++I) {
    auto R = Q.pop();
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(R->first, RequestClass::Write);
    EXPECT_EQ(R->second, I);
  }
  // Reads only: credit is not charged while no write waits, so a later
  // write doesn't inherit a stale exhausted credit.
  for (int I = 0; I < 16; ++I)
    ASSERT_TRUE(Q.tryPush(RequestClass::Read, I));
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Q.pop()->first, RequestClass::Read);
}

//===----------------------------------------------------------------------===
// Session pool.
//===----------------------------------------------------------------------===

TEST(ServeSession, LeaseExhaustReturnReuse) {
  SessionPool Pool(2, /*RetainBytes=*/1 << 20);
  EXPECT_EQ(Pool.capacity(), 2u);
  EXPECT_EQ(Pool.available(), 2u);
  AlgoContext *First;
  {
    auto L1 = Pool.lease();
    First = &L1.ctx();
    auto L2 = Pool.tryLease();
    EXPECT_TRUE(bool(L2));
    EXPECT_EQ(Pool.available(), 0u);
    auto L3 = Pool.tryLease();
    EXPECT_FALSE(bool(L3)); // exhausted: non-blocking lease fails
  }
  EXPECT_EQ(Pool.available(), 2u);
  // LIFO reuse: the most recently returned (warmest) context first.
  auto L = Pool.lease();
  EXPECT_EQ(&L.ctx(), First);
}

TEST(ServeSession, WarmContextIsAllocationFree) {
  SessionPool Pool(1);
  const size_t N = 1 << 16;
  auto Run = [&] {
    auto L = Pool.lease();
    CtxArray<uint64_t> A(&L.ctx(), N);
    for (size_t I = 0; I < N; ++I)
      A[I] = I;
    return L->missCount();
  };
  Run(); // cold: populates the context cache
  uint64_t MissesAfterWarm = Run();
  EXPECT_EQ(Run(), MissesAfterWarm); // steady state: no new misses
}

//===----------------------------------------------------------------------===
// Server end-to-end.
//===----------------------------------------------------------------------===

TEST(ServeServer, QueriesUnderConcurrentIngest) {
  const VertexId N = 1 << 10;
  HybridShardedGraphStore Store(4, N, randomBatch(N, 4000, 5));
  SnapshotServer::Options O;
  O.Workers = 4;
  O.ReadQueueCap = 4096;
  O.WriteQueueCap = 256;
  SnapshotServer Server(Store, O);

  std::atomic<uint64_t> Inconsistent{0};
  size_t Queries = 200, Writes = 40;
  for (size_t I = 0; I < Writes; ++I) {
    ASSERT_TRUE(Server.submitInsert(randomBatch(N, 200, 1000 + I)));
    for (size_t Q = 0; Q < Queries / Writes; ++Q)
      ASSERT_TRUE(Server.submitQuery([&](auto &QC) {
        // Epoch consistency: the pinned tree epoch and the pinned flat
        // epoch each sum degrees to their own epoch's edge count.
        auto &R = QC.snapshot();
        auto V = R.view();
        uint64_t Sum = 0;
        for (VertexId U = 0; U < N; ++U)
          Sum += V.degree(U);
        if (Sum != R.numEdges())
          Inconsistent.fetch_add(1);
        auto F = QC.flat();
        auto FV = F->view();
        uint64_t FSum = 0;
        for (VertexId U = 0; U < N; ++U)
          FSum += FV.degree(U);
        if (FSum != F->NumEdges)
          Inconsistent.fetch_add(1);
      }));
  }
  Server.drain();
  auto St = Server.stats();
  EXPECT_EQ(Inconsistent.load(), 0u);
  EXPECT_EQ(St.QueriesDone, Queries);
  EXPECT_EQ(St.WritesDone, Writes);
  EXPECT_EQ(St.QueryErrors, 0u);
  EXPECT_EQ(St.WriteErrors, 0u);
  EXPECT_EQ(St.Front.Submitted, Writes);
  EXPECT_EQ(Store.batchSeq(), Writes);
  Server.stop();
}

TEST(ServeServer, OverloadShedsInsteadOfStalling) {
  const VertexId N = 256;
  HybridShardedGraphStore Store(2, N);
  SnapshotServer::Options O;
  O.Workers = 1;
  O.ReadQueueCap = 2;
  O.WriteQueueCap = 1;
  SnapshotServer Server(Store, O);

  // Saturate the single worker with slow queries; the bounded queue
  // must shed the excess synchronously (no blocking, no collapse).
  std::atomic<int> Running{0};
  size_t Accepted = 0, Shed = 0;
  for (int I = 0; I < 64; ++I) {
    bool Ok = Server.submitQuery([&](auto &) {
      ++Running;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    Ok ? ++Accepted : ++Shed;
  }
  EXPECT_GT(Shed, 0u);
  Server.drain();
  auto St = Server.stats();
  EXPECT_EQ(St.QueriesDone, Accepted);
  EXPECT_EQ(St.Admission.ShedReads, Shed);
  EXPECT_EQ(size_t(Running.load()), Accepted);
  Server.stop();
}

TEST(ServeServer, WriterThrottlesOnReaderLag) {
  const VertexId N = 256;
  HybridShardedGraphStore Store(2, N);
  SnapshotServer::Options O;
  O.Workers = 1;
  O.ReadsPerWrite = 1; // strict alternation once both classes queue
  O.MaxReaderLag = 1;
  O.ThrottleMaxWaitMs = 1; // the lone worker is also the only reader
                           // drain, so the bound is what keeps it live
  SnapshotServer Server(Store, O);

  // Gate the lone worker so everything below queues before any pop;
  // every read is admitted at batch sequence 0.
  std::promise<void> Gate;
  std::shared_future<void> Open(Gate.get_future());
  ASSERT_TRUE(Server.submitQuery([Open](auto &) { Open.wait(); }));
  const size_t Each = 6;
  for (size_t I = 0; I < Each; ++I) {
    ASSERT_TRUE(Server.submitQuery([](auto &QC) { QC.snapshot(); }));
    ASSERT_TRUE(Server.submitInsert(randomBatch(N, 16, 100 + I)));
  }
  Gate.set_value();
  Server.drain();
  auto St = Server.stats();
  EXPECT_EQ(St.QueriesDone, Each + 1);
  EXPECT_EQ(St.WritesDone, Each);
  // With alternating pops the third write finds the oldest still-queued
  // read already two batches behind the store — beyond MaxReaderLag, so
  // the writer path must have throttled at least once (and, because the
  // wait is bounded, still completed everything).
  EXPECT_GE(St.WriteThrottleWaits, 1u);
  EXPECT_EQ(St.QueryErrors, 0u);
  EXPECT_EQ(St.WriteErrors, 0u);
  EXPECT_EQ(Store.batchSeq(), Each);
  Server.stop();
}

//===----------------------------------------------------------------------===
// Lock-free flat fast path.
//===----------------------------------------------------------------------===

TEST(ServeFlat, FastPathHitsOnUnchangedEpoch) {
  const VertexId N = 1 << 10;
  ShardedGraphStore Store(4, N, randomBatch(N, 3000, 9));
  auto F0 = Store.acquireFlat(); // cold: rebuild
  const size_t Threads = 4, Iters = 50;
  std::atomic<uint64_t> Mismatches{0};
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (size_t I = 0; I < Iters; ++I) {
        auto F = Store.acquireFlat();
        if (F.get() != F0.get()) // unchanged epoch: same cached object
          Mismatches.fetch_add(1);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
  auto St = Store.flatStats();
  EXPECT_EQ(St.Rebuilds, 1u);
  EXPECT_EQ(St.Refreshes, 0u);
  EXPECT_EQ(St.Hits, Threads * Iters);
  // After a batch, the next acquire refreshes and later hits resume.
  Store.insertBatch(randomBatch(N, 100, 10));
  auto F1 = Store.acquireFlat();
  EXPECT_NE(F1.get(), F0.get());
  EXPECT_EQ(Store.acquireFlat().get(), F1.get());
  St = Store.flatStats();
  EXPECT_EQ(St.Refreshes + St.Rebuilds, 2u);
  EXPECT_EQ(St.Hits, Threads * Iters + 1);
}

TEST(ServeFlat, VersionedStoreFastPathHits) {
  const VertexId N = 512;
  VersionedGraph VG(Graph::fromEdges(N, randomBatch(N, 2000, 3)));
  auto F0 = VG.acquireFlat();
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(VG.acquireFlat().get(), F0.get());
  auto St = VG.flatStats();
  EXPECT_EQ(St.Rebuilds, 1u);
  EXPECT_EQ(St.Hits, 10u);
  VG.insertEdgesBatch(randomBatch(N, 20, 4)); // < N/8 touched: refresh
  auto F1 = VG.acquireFlat();
  EXPECT_NE(F1.get(), F0.get());
  St = VG.flatStats();
  EXPECT_EQ(St.Refreshes, 1u);
}
