//===- tests/ligra_test.cpp - vertexSubset and edgeMap tests --------------===//

#include "ligra/edge_map.h"
#include "gen/generators.h"
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <set>

using namespace aspen;

namespace {

/// Functor that marks reached vertices once (BFS-round semantics).
struct MarkF {
  std::atomic<uint8_t> *Seen;
  bool updateAtomic(VertexId, VertexId V) const {
    uint8_t Expect = 0;
    return Seen[V].compare_exchange_strong(Expect, 1,
                                           std::memory_order_relaxed);
  }
  bool update(VertexId, VertexId V) const {
    if (Seen[V].load(std::memory_order_relaxed))
      return false;
    Seen[V].store(1, std::memory_order_relaxed);
    return true;
  }
  bool cond(VertexId V) const {
    return !Seen[V].load(std::memory_order_relaxed);
  }
};

std::vector<VertexId> refNeighborhood(const std::vector<EdgePair> &Edges,
                                      const std::vector<VertexId> &Frontier,
                                      const std::set<VertexId> &Excluded) {
  std::set<VertexId> F(Frontier.begin(), Frontier.end());
  std::set<VertexId> Out;
  for (const EdgePair &E : Edges)
    if (F.count(E.first) && !Excluded.count(E.second))
      Out.insert(E.second);
  return {Out.begin(), Out.end()};
}

} // namespace

TEST(VertexSubsetTest, SparseDenseRoundTrip) {
  VertexSubset S(100, std::vector<VertexId>{3, 50, 99});
  EXPECT_EQ(S.size(), 3u);
  EXPECT_FALSE(S.isDense());
  S.toDense();
  EXPECT_TRUE(S.isDense());
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.contains(50));
  EXPECT_FALSE(S.contains(51));
  S.toSparse();
  EXPECT_EQ(S.toVector(), (std::vector<VertexId>{3, 50, 99}));
}

TEST(VertexSubsetTest, EmptyAndSingleton) {
  VertexSubset E(10);
  EXPECT_TRUE(E.empty());
  VertexSubset S(10, VertexId(7));
  EXPECT_EQ(S.size(), 1u);
  EXPECT_EQ(S.toVector(), (std::vector<VertexId>{7}));
}

TEST(VertexSubsetTest, ForEachVisitsAll) {
  VertexSubset S(1000, std::vector<VertexId>{1, 10, 100, 999});
  std::atomic<uint64_t> Sum{0};
  S.forEach([&](VertexId V) { Sum.fetch_add(V); });
  EXPECT_EQ(Sum.load(), 1u + 10 + 100 + 999);
  S.toDense();
  Sum.store(0);
  S.forEach([&](VertexId V) { Sum.fetch_add(V); });
  EXPECT_EQ(Sum.load(), 1u + 10 + 100 + 999);
}

TEST(VertexFilterTest, KeepsSatisfying) {
  VertexSubset S(100, std::vector<VertexId>{1, 2, 3, 4, 5, 6});
  VertexSubset Even = vertexFilter(S, [](VertexId V) { return V % 2 == 0; });
  EXPECT_EQ(Even.toVector(), (std::vector<VertexId>{2, 4, 6}));
}

TEST(VertexFilterTest, DenseInputFiltersWithoutSparseCopy) {
  VertexSubset S(100, std::vector<VertexId>{10, 20, 30, 41});
  S.toDense();
  VertexSubset Even = vertexFilter(S, [](VertexId V) { return V % 2 == 0; });
  EXPECT_EQ(Even.toVector(), (std::vector<VertexId>{10, 20, 30}));
}

TEST(VertexSubsetTest, ContextBackedRoundTrip) {
  AlgoContext Ctx;
  {
    VertexSubset S(1000, std::vector<VertexId>{5, 17, 900}, &Ctx);
    EXPECT_EQ(S.context(), &Ctx);
    S.toDense();
    EXPECT_TRUE(S.contains(17));
    S.toSparse();
    EXPECT_EQ(S.toVector(), (std::vector<VertexId>{5, 17, 900}));
    VertexSubset Copy = S;
    EXPECT_EQ(Copy.toVector(), S.toVector());
  } // destruction returns the buffers to the context
  EXPECT_GT(Ctx.cachedBlocks(), 0);
  uint64_t Miss0 = Ctx.missCount();
  VertexSubset T(1000, std::vector<VertexId>{1, 2, 3}, &Ctx);
  T.toDense();
  EXPECT_EQ(Ctx.missCount(), Miss0) << "buffers should be reused";
}

class EdgeMapTest : public ::testing::Test {
protected:
  void SetUp() override {
    Edges = rmatGraphEdges(9, 6, 123);
    N = 1 << 9;
    G = Graph::fromEdges(N, Edges);
  }

  /// One edgeMap round from Frontier with fresh marks on frontier itself.
  template <class GView>
  std::vector<VertexId> oneRound(const GView &View,
                                 std::vector<VertexId> Frontier,
                                 EdgeMapOptions Options) {
    std::vector<std::atomic<uint8_t>> Seen(N);
    parallelFor(0, N, [&](size_t I) { Seen[I].store(0); });
    for (VertexId V : Frontier)
      Seen[V].store(1);
    VertexSubset U(N, Frontier);
    VertexSubset Next = edgeMap(View, U, MarkF{Seen.data()}, Options);
    return Next.toVector();
  }

  VertexId N = 0;
  std::vector<EdgePair> Edges;
  Graph G;
};

TEST_F(EdgeMapTest, SparseMatchesReference) {
  TreeGraphView View(G);
  std::vector<VertexId> Frontier = {1, 2, 3};
  EdgeMapOptions Sparse;
  Sparse.NoDense = true;
  auto Got = oneRound(View, Frontier, Sparse);
  auto Ref = refNeighborhood(Edges, Frontier, {1, 2, 3});
  EXPECT_EQ(Got, Ref);
}

TEST_F(EdgeMapTest, DenseMatchesSparse) {
  TreeGraphView View(G);
  std::vector<VertexId> Frontier;
  for (VertexId V = 0; V < N; V += 2)
    Frontier.push_back(V);
  EdgeMapOptions SparseOnly;
  SparseOnly.NoDense = true;
  EdgeMapOptions DenseBias;
  DenseBias.ThresholdDenominator = 1u << 30; // force dense
  auto A = oneRound(View, Frontier, SparseOnly);
  auto B = oneRound(View, Frontier, DenseBias);
  EXPECT_EQ(A, B);
}

TEST_F(EdgeMapTest, FlatSnapshotAgreesWithTreeView) {
  FlatSnapshot FS(G);
  FlatGraphView FV(FS);
  TreeGraphView TV(G);
  std::vector<VertexId> Frontier = {0, 7, 12, 100, 200};
  EdgeMapOptions Opt;
  EXPECT_EQ(oneRound(FV, Frontier, Opt), oneRound(TV, Frontier, Opt));
}

TEST_F(EdgeMapTest, ContextPropagatesAndMatchesContextFree) {
  TreeGraphView View(G);
  AlgoContext Ctx;
  std::vector<VertexId> Frontier = {1, 2, 3, 7};
  std::vector<std::atomic<uint8_t>> Seen(N);

  auto RunWith = [&](AlgoContext *C) {
    parallelFor(0, N, [&](size_t I) { Seen[I].store(0); });
    for (VertexId V : Frontier)
      Seen[V].store(1);
    VertexSubset U(N, Frontier, C);
    VertexSubset Next = edgeMap(View, U, MarkF{Seen.data()});
    EXPECT_EQ(Next.context(), C);
    return Next.toVector();
  };
  EXPECT_EQ(RunWith(&Ctx), RunWith(nullptr));
}

TEST_F(EdgeMapTest, EmptyFrontier) {
  TreeGraphView View(G);
  VertexSubset U(N);
  VertexSubset Next = edgeMap(View, U, MarkF{nullptr});
  EXPECT_TRUE(Next.empty());
}

TEST_F(EdgeMapTest, EdgeMapNoOutputTouchesAllEdges) {
  TreeGraphView View(G);
  std::vector<VertexId> All;
  for (VertexId V = 0; V < N; ++V)
    All.push_back(V);
  VertexSubset U(N, All);
  std::atomic<uint64_t> Count{0};
  edgeMapNoOutput(View, U, [&](VertexId, VertexId) {
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), G.numEdges());
}
