//===- tests/ctree_property_test.cpp - C-tree property/edge-case tests ----===//
//
// Beyond ctree_test.cpp: extreme chunk parameters (everything-a-head,
// nothing-a-head), 64-bit keys, adversarial key patterns, long snapshot
// chains, idempotence/algebraic laws of the set operations, and memory
// accounting.
//
//===----------------------------------------------------------------------===//

#include "ctree/ctree.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace aspen;

namespace {

using CT = CTreeSet<uint32_t, DeltaByteCodec>;
using CT64 = CTreeSet<uint64_t, DeltaByteCodec>;

std::vector<uint32_t> sortedUnique(std::vector<uint32_t> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

std::vector<uint32_t> randomKeys(size_t N, uint64_t Seed, uint32_t Range) {
  std::vector<uint32_t> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = uint32_t(hashAt(Seed, I) % Range);
  return Out;
}

} // namespace

TEST(CTreeExtreme, ChunkSizeOneEveryElementIsHead) {
  // b = 1 => mask 0 => hash & 0 == 0 always: every element is a head;
  // tails and prefix are empty and the structure degenerates to a plain
  // tree. All operations must still work.
  CT::BuildParams P{0};
  auto E = sortedUnique(randomKeys(2000, 1, 100000));
  CT T = CT::buildSorted(E.data(), E.size(), P);
  EXPECT_EQ(T.numHeads(), E.size());
  EXPECT_EQ(T.size(), E.size());
  EXPECT_TRUE(T.checkInvariants(P));
  EXPECT_EQ(T.toVector(), E);
  CT U = CT::setUnion(T, T.multiInsert({999999u}, P));
  EXPECT_EQ(U.size(), E.size() + 1);
  EXPECT_TRUE(U.checkInvariants(P));
}

TEST(CTreeExtreme, HugeChunkSizeMostlyPrefix) {
  // b = 2^20 on a small set: with high probability no element is a head
  // and the entire structure is one prefix chunk.
  CT::BuildParams P{(uint64_t(1) << 20) - 1};
  auto E = sortedUnique(randomKeys(500, 2, 1u << 20));
  CT T = CT::buildSorted(E.data(), E.size(), P);
  EXPECT_TRUE(T.checkInvariants(P));
  EXPECT_EQ(T.toVector(), E);
  // Set algebra must still work through the base cases.
  auto B = sortedUnique(randomKeys(500, 3, 1u << 20));
  CT TB = CT::buildSorted(B.data(), B.size(), P);
  std::set<uint32_t> Ref(E.begin(), E.end());
  Ref.insert(B.begin(), B.end());
  CT U = CT::setUnion(T, TB);
  EXPECT_EQ(U.toVector(), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  ASSERT_TRUE(U.checkInvariants(P));
  CT D = CT::setDifference(U, TB);
  std::vector<uint32_t> RefD;
  std::set_difference(E.begin(), E.end(), B.begin(), B.end(),
                      std::back_inserter(RefD));
  EXPECT_EQ(D.toVector(), RefD);
}

TEST(CTreeExtreme, DenseConsecutiveKeys) {
  // Consecutive integers: delta coding uses exactly one byte per element
  // after the first of each chunk.
  std::vector<uint32_t> E(100000);
  for (uint32_t I = 0; I < E.size(); ++I)
    E[I] = I + 1000000;
  CT T = CT::buildSorted(E.data(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.size(), E.size());
  // ~1 byte per non-head element + node overhead for heads.
  double BytesPerElt = double(T.memoryBytes()) / double(E.size());
  EXPECT_LT(BytesPerElt, 3.0);
}

TEST(CTreeExtreme, WideSpreadKeys) {
  // Keys spread over the whole 32-bit range: deltas need up to 5 bytes.
  auto E = sortedUnique(randomKeys(50000, 4, ~0u));
  CT T = CT::buildSorted(E.data(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), E);
}

TEST(CTreeExtreme, SixtyFourBitKeys) {
  std::vector<uint64_t> E;
  for (size_t I = 0; I < 10000; ++I)
    E.push_back(hashAt(5, I)); // full 64-bit range
  std::sort(E.begin(), E.end());
  E.erase(std::unique(E.begin(), E.end()), E.end());
  CT64 T = CT64::buildSorted(E.data(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), E);
  for (size_t I = 0; I < E.size(); I += 97)
    EXPECT_TRUE(T.contains(E[I]));
  EXPECT_FALSE(T.contains(E.back() + 1));
  // Batch ops on 64-bit keys.
  CT64 T2 = T.multiDelete(std::vector<uint64_t>(E.begin(),
                                                E.begin() + E.size() / 2));
  EXPECT_EQ(T2.size(), E.size() - E.size() / 2);
  EXPECT_TRUE(T2.checkInvariants());
}

TEST(CTreeAlgebra, UnionCommutesAndAssociates) {
  auto A = sortedUnique(randomKeys(2000, 10, 20000));
  auto B = sortedUnique(randomKeys(2000, 11, 20000));
  auto C = sortedUnique(randomKeys(2000, 12, 20000));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT TB = CT::buildSorted(B.data(), B.size());
  CT TC = CT::buildSorted(C.data(), C.size());
  EXPECT_EQ(CT::setUnion(TA, TB).toVector(),
            CT::setUnion(TB, TA).toVector());
  EXPECT_EQ(CT::setUnion(CT::setUnion(TA, TB), TC).toVector(),
            CT::setUnion(TA, CT::setUnion(TB, TC)).toVector());
}

TEST(CTreeAlgebra, DeMorganStyleIdentities) {
  auto A = sortedUnique(randomKeys(3000, 13, 15000));
  auto B = sortedUnique(randomKeys(3000, 14, 15000));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT TB = CT::buildSorted(B.data(), B.size());
  // A = (A \ B) ∪ (A ∩ B)
  CT Lhs = CT::setUnion(CT::setDifference(TA, TB),
                        CT::setIntersect(TA, TB));
  EXPECT_EQ(Lhs.toVector(), A);
  // (A ∪ B) \ B == A \ B
  EXPECT_EQ(CT::setDifference(CT::setUnion(TA, TB), TB).toVector(),
            CT::setDifference(TA, TB).toVector());
  // |A| + |B| == |A ∪ B| + |A ∩ B|
  EXPECT_EQ(TA.size() + TB.size(),
            CT::setUnion(TA, TB).size() + CT::setIntersect(TA, TB).size());
}

TEST(CTreeAlgebra, UnionIdempotent) {
  auto A = sortedUnique(randomKeys(2000, 15, 50000));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT U = TA;
  for (int I = 0; I < 4; ++I) {
    U = CT::setUnion(U, TA);
    ASSERT_EQ(U.toVector(), A);
    ASSERT_TRUE(U.checkInvariants());
  }
}

TEST(CTreeSnapshots, LongVersionChain) {
  // 100 versions, each inserting a small batch; every version must stay
  // exactly as it was when created.
  std::vector<CT> Versions;
  std::vector<size_t> Sizes;
  CT Cur;
  std::set<uint32_t> Ref;
  for (int I = 0; I < 100; ++I) {
    auto Batch = randomKeys(50, 100 + I, 100000);
    Cur = Cur.multiInsert(Batch);
    Ref.insert(Batch.begin(), Batch.end());
    Versions.push_back(Cur);
    Sizes.push_back(Ref.size());
  }
  for (size_t I = 0; I < Versions.size(); ++I)
    ASSERT_EQ(Versions[I].size(), Sizes[I]) << "version " << I;
  EXPECT_EQ(Versions.back().toVector(),
            std::vector<uint32_t>(Ref.begin(), Ref.end()));
  // Dropping interior versions must not perturb the others.
  for (size_t I = 0; I < Versions.size(); I += 2)
    Versions[I] = CT();
  for (size_t I = 1; I < Versions.size(); I += 2)
    ASSERT_EQ(Versions[I].size(), Sizes[I]);
}

TEST(CTreeSnapshots, StructuralSharingKeepsMemoryLinear) {
  // Memory for k versions with small diffs must be far below k copies.
  auto E = sortedUnique(randomKeys(50000, 20, 1u << 22));
  CT Base = CT::buildSorted(E.data(), E.size());
  size_t OneCopy = Base.memoryBytes();
  int64_t Before = liveCountedBytes() + totalPoolLiveBytes();
  std::vector<CT> Versions;
  CT Cur = Base;
  for (int I = 0; I < 20; ++I) {
    Cur = Cur.insert(uint32_t(5000000 + I));
    Versions.push_back(Cur);
  }
  int64_t After = liveCountedBytes() + totalPoolLiveBytes();
  // 20 versions cost far less than 20 full copies.
  EXPECT_LT(After - Before, int64_t(4 * OneCopy));
}

TEST(CTreeBoundary, EmptyOperandCombinations) {
  auto A = sortedUnique(randomKeys(100, 30, 1000));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT Empty;
  EXPECT_EQ(CT::setUnion(TA, Empty).toVector(), A);
  EXPECT_EQ(CT::setUnion(Empty, TA).toVector(), A);
  EXPECT_TRUE(CT::setUnion(Empty, Empty).empty());
  EXPECT_EQ(CT::setDifference(TA, Empty).toVector(), A);
  EXPECT_TRUE(CT::setDifference(Empty, TA).empty());
  EXPECT_TRUE(CT::setIntersect(TA, Empty).empty());
  EXPECT_TRUE(CT::setIntersect(Empty, TA).empty());
}

TEST(CTreeBoundary, SingletonsAndExtremeValues) {
  CT T = CT::fromUnsorted({0u});
  EXPECT_TRUE(T.contains(0u));
  T = T.insert(~0u); // max key
  EXPECT_TRUE(T.contains(~0u));
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), (std::vector<uint32_t>{0u, ~0u}));
  T = T.remove(0u);
  T = T.remove(~0u);
  EXPECT_TRUE(T.empty());
}

TEST(CTreeBoundary, InterleavedRangesStressSplitPaths) {
  // A = evens, B = odds: every chunk boundary interleaves; union must be
  // all values, intersect empty, difference the original.
  std::vector<uint32_t> A, B;
  for (uint32_t I = 0; I < 20000; ++I)
    (I % 2 ? B : A).push_back(I);
  CT TA = CT::buildSorted(A.data(), A.size());
  CT TB = CT::buildSorted(B.data(), B.size());
  CT U = CT::setUnion(TA, TB);
  EXPECT_EQ(U.size(), 20000u);
  ASSERT_TRUE(U.checkInvariants());
  EXPECT_TRUE(CT::setIntersect(TA, TB).empty());
  EXPECT_EQ(CT::setDifference(U, TB).toVector(), A);
}

class CTreeRandomizedLifecycle : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CTreeRandomizedLifecycle, ChurnWithSnapshotsIsLeakFree) {
  uint64_t Seed = GetParam();
  int64_t BaseNodes = totalPoolLiveBytes();
  int64_t BaseBytes = liveCountedBytes();
  {
    std::vector<CT> Pinned;
    CT Cur;
    std::set<uint32_t> Ref;
    for (int Round = 0; Round < 30; ++Round) {
      uint64_t Op = hashAt(Seed, Round) % 4;
      auto Batch = randomKeys(1 + hashAt(Seed, Round * 7) % 500,
                              Seed * 13 + Round, 5000);
      if (Op == 0 || Op == 1) {
        Cur = Cur.multiInsert(Batch);
        Ref.insert(Batch.begin(), Batch.end());
      } else if (Op == 2) {
        Cur = Cur.multiDelete(Batch);
        for (uint32_t K : Batch)
          Ref.erase(K);
      } else {
        Pinned.push_back(Cur); // pin a snapshot
        if (Pinned.size() > 5)
          Pinned.erase(Pinned.begin()); // unpin the oldest
      }
      ASSERT_EQ(Cur.size(), Ref.size()) << "round " << Round;
      ASSERT_TRUE(Cur.checkInvariants()) << "round " << Round;
    }
    EXPECT_EQ(Cur.toVector(), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  }
  EXPECT_EQ(totalPoolLiveBytes(), BaseNodes);
  EXPECT_EQ(liveCountedBytes(), BaseBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CTreeRandomizedLifecycle,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

//===----------------------------------------------------------------------===
// Differential tests: every cursor-based chunk operation against a naive
// decode-to-vector reference, across both codecs and adversarial inputs
// (singleton chunks, max-delta gaps, duplicate-heavy batches).
//===----------------------------------------------------------------------===

namespace {

template <class Codec> class ChunkDifferential : public ::testing::Test {};
using BothCodecs = ::testing::Types<DeltaByteCodec, RawCodec>;

using P32 = ChunkPayload<uint32_t>;

template <class Codec>
std::vector<uint32_t> decoded(const P32 *C) {
  std::vector<uint32_t> Out;
  decodeChunk<Codec>(C, Out);
  return Out;
}

/// Check the payload header agrees with its contents.
template <class Codec> void checkHeader(const P32 *C) {
  if (!C)
    return;
  auto E = decoded<Codec>(C);
  ASSERT_EQ(E.size(), C->Count);
  ASSERT_EQ(E.front(), C->First);
  ASSERT_EQ(E.back(), C->Last);
  ASSERT_TRUE(std::is_sorted(E.begin(), E.end()));
  ASSERT_EQ(std::adjacent_find(E.begin(), E.end()), E.end());
}

// Naive references: decode everything, use <algorithm>, re-encode.
template <class Codec> P32 *refUnion(const P32 *A, const P32 *B) {
  auto EA = decoded<Codec>(A), EB = decoded<Codec>(B);
  std::vector<uint32_t> Out;
  std::set_union(EA.begin(), EA.end(), EB.begin(), EB.end(),
                 std::back_inserter(Out));
  return makeChunk<Codec>(Out.data(), Out.size());
}

template <class Codec>
P32 *refMinus(const P32 *A, const std::vector<uint32_t> &Sub) {
  auto EA = decoded<Codec>(A);
  std::vector<uint32_t> Out;
  std::set_difference(EA.begin(), EA.end(), Sub.begin(), Sub.end(),
                      std::back_inserter(Out));
  return makeChunk<Codec>(Out.data(), Out.size());
}

template <class Codec>
P32 *refIntersect(const P32 *A, const std::vector<uint32_t> &Keep) {
  auto EA = decoded<Codec>(A);
  std::vector<uint32_t> Out;
  std::set_intersection(EA.begin(), EA.end(), Keep.begin(), Keep.end(),
                        std::back_inserter(Out));
  return makeChunk<Codec>(Out.data(), Out.size());
}

/// Adversarial element-set families, indexed by Case.
std::vector<uint32_t> adversarialSet(size_t Case, uint64_t Seed) {
  switch (Case % 7) {
  case 0: // empty
    return {};
  case 1: // singleton
    return {uint32_t(hashAt(Seed, 0))};
  case 2: { // consecutive run (minimal deltas)
    uint32_t Base = uint32_t(hashAt(Seed, 1) % 1000000);
    std::vector<uint32_t> E(200);
    for (size_t I = 0; I < E.size(); ++I)
      E[I] = Base + uint32_t(I);
    return E;
  }
  case 3: { // max-delta gaps across the full 32-bit range
    std::vector<uint32_t> E = {0u, 1u, (1u << 15), (1u << 30),
                               ~0u - 1, ~0u};
    return E;
  }
  case 4: // duplicate-heavy small universe
    return sortedUnique(randomKeys(300, Seed, 64));
  case 5: // dense random
    return sortedUnique(randomKeys(400, Seed, 2000));
  default: // sparse random
    return sortedUnique(randomKeys(250, Seed, ~0u));
  }
}

} // namespace

TYPED_TEST_SUITE(ChunkDifferential, BothCodecs);

TYPED_TEST(ChunkDifferential, UnionMatchesReference) {
  using Codec = TypeParam;
  int64_t Base = liveCountedBytes();
  for (size_t CA = 0; CA < 7; ++CA) {
    for (size_t CB = 0; CB < 7; ++CB) {
      auto A = adversarialSet(CA, 40 + CA);
      auto B = adversarialSet(CB, 50 + CB);
      P32 *PA = makeChunk<Codec>(A.data(), A.size());
      P32 *PB = makeChunk<Codec>(B.data(), B.size());
      P32 *Got = unionChunks<Codec>(PA, PB);
      P32 *Want = refUnion<Codec>(PA, PB);
      checkHeader<Codec>(Got);
      ASSERT_EQ(decoded<Codec>(Got), decoded<Codec>(Want))
          << "case " << CA << "," << CB;
      releaseChunk(Got);
      releaseChunk(Want);
      // Span variant against the same reference.
      P32 *GotSpan = unionChunkSpan<Codec>(PA, B.data(), B.size());
      P32 *WantSpan = refUnion<Codec>(PA, PB);
      ASSERT_EQ(decoded<Codec>(GotSpan), decoded<Codec>(WantSpan));
      releaseChunk(GotSpan);
      releaseChunk(WantSpan);
      releaseChunk(PA);
      releaseChunk(PB);
    }
  }
  EXPECT_EQ(liveCountedBytes(), Base);
}

TYPED_TEST(ChunkDifferential, MinusAndIntersectMatchReference) {
  using Codec = TypeParam;
  int64_t Base = liveCountedBytes();
  for (size_t CA = 0; CA < 7; ++CA) {
    for (size_t CB = 0; CB < 7; ++CB) {
      auto A = adversarialSet(CA, 60 + CA);
      auto B = adversarialSet(CB, 70 + CB);
      P32 *PA = makeChunk<Codec>(A.data(), A.size());
      P32 *PB = makeChunk<Codec>(B.data(), B.size());
      P32 *GotM = chunkMinus<Codec>(PA, B.data(), B.size());
      P32 *WantM = refMinus<Codec>(PA, B);
      checkHeader<Codec>(GotM);
      ASSERT_EQ(decoded<Codec>(GotM), decoded<Codec>(WantM));
      releaseChunk(GotM);
      releaseChunk(WantM);
      P32 *GotMC = chunkMinusChunk<Codec>(PA, PB);
      P32 *WantMC = refMinus<Codec>(PA, B);
      ASSERT_EQ(decoded<Codec>(GotMC), decoded<Codec>(WantMC));
      releaseChunk(GotMC);
      releaseChunk(WantMC);
      P32 *GotI = chunkIntersect<Codec>(PA, B.data(), B.size());
      P32 *WantI = refIntersect<Codec>(PA, B);
      checkHeader<Codec>(GotI);
      ASSERT_EQ(decoded<Codec>(GotI), decoded<Codec>(WantI));
      releaseChunk(GotI);
      releaseChunk(WantI);
      releaseChunk(PA);
      releaseChunk(PB);
    }
  }
  EXPECT_EQ(liveCountedBytes(), Base);
}

TYPED_TEST(ChunkDifferential, SplitAndContainsMatchReference) {
  using Codec = TypeParam;
  int64_t Base = liveCountedBytes();
  for (size_t CA = 1; CA < 7; ++CA) { // skip the empty family
    auto A = adversarialSet(CA, 80 + CA);
    if (A.empty())
      continue;
    P32 *PA = makeChunk<Codec>(A.data(), A.size());
    // Candidate keys: every element, its neighbors, and the extremes.
    std::vector<uint32_t> Keys;
    for (uint32_t V : A) {
      Keys.push_back(V);
      if (V > 0)
        Keys.push_back(V - 1);
      if (V < ~0u)
        Keys.push_back(V + 1);
    }
    Keys.push_back(0);
    Keys.push_back(~0u);
    for (uint32_t Key : Keys) {
      bool WantIn = std::binary_search(A.begin(), A.end(), Key);
      ASSERT_EQ((chunkContains<Codec>(PA, Key)), WantIn) << Key;
      ChunkSplit S = splitChunk<Codec>(PA, Key);
      auto *SL = static_cast<P32 *>(S.Left);
      auto *SR = static_cast<P32 *>(S.Right);
      checkHeader<Codec>(SL);
      checkHeader<Codec>(SR);
      ASSERT_EQ(S.Found, WantIn) << Key;
      std::vector<uint32_t> WantL(A.begin(),
                                  std::lower_bound(A.begin(), A.end(), Key));
      std::vector<uint32_t> WantR(std::upper_bound(A.begin(), A.end(), Key),
                                  A.end());
      ASSERT_EQ(decoded<Codec>(SL), WantL) << Key;
      ASSERT_EQ(decoded<Codec>(SR), WantR) << Key;
      releaseChunk(SL);
      releaseChunk(SR);
    }
    releaseChunk(PA);
  }
  EXPECT_EQ(liveCountedBytes(), Base);
}

TYPED_TEST(ChunkDifferential, CursorSeekAgainstLinearScan) {
  using Codec = TypeParam;
  for (size_t CA = 1; CA < 7; ++CA) {
    auto A = adversarialSet(CA, 90 + CA);
    if (A.empty())
      continue;
    P32 *PA = makeChunk<Codec>(A.data(), A.size());
    for (size_t Probe = 0; Probe < 40; ++Probe) {
      uint32_t Key = uint32_t(hashAt(91, CA * 100 + Probe));
      typename Codec::template Cursor<uint32_t> Cu(PA);
      Cu.seekLowerBound(Key);
      auto It = std::lower_bound(A.begin(), A.end(), Key);
      if (It == A.end()) {
        ASSERT_TRUE(Cu.done());
      } else {
        ASSERT_FALSE(Cu.done());
        ASSERT_EQ(Cu.value(), *It);
        ASSERT_EQ(Cu.remaining(), uint32_t(A.end() - It));
      }
    }
    releaseChunk(PA);
  }
}

TYPED_TEST(ChunkDifferential, CTreeBatchOpsAgainstStdSet) {
  // End-to-end: duplicate-heavy batches through multiInsert/multiDelete
  // (the unionBC/diffBC scratch paths) against a std::set reference, at a
  // chunk size small enough to exercise head routing constantly.
  using Codec = TypeParam;
  typename CTreeSet<uint32_t, Codec>::BuildParams P{7};
  CTreeSet<uint32_t, Codec> Cur;
  std::set<uint32_t> Ref;
  for (int Round = 0; Round < 40; ++Round) {
    // Duplicate-heavy: draw from a small universe so batches collide with
    // themselves and with the tree.
    auto Batch = randomKeys(200, 1000 + Round, 900);
    if (Round % 3 != 2) {
      Cur = Cur.multiInsert(Batch, P);
      Ref.insert(Batch.begin(), Batch.end());
    } else {
      Cur = Cur.multiDelete(Batch, P);
      for (uint32_t V : Batch)
        Ref.erase(V);
    }
    ASSERT_EQ(Cur.size(), Ref.size()) << "round " << Round;
    ASSERT_TRUE(Cur.checkInvariants(P)) << "round " << Round;
  }
  EXPECT_EQ(Cur.toVector(),
            std::vector<uint32_t>(Ref.begin(), Ref.end()));
}
