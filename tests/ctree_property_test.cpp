//===- tests/ctree_property_test.cpp - C-tree property/edge-case tests ----===//
//
// Beyond ctree_test.cpp: extreme chunk parameters (everything-a-head,
// nothing-a-head), 64-bit keys, adversarial key patterns, long snapshot
// chains, idempotence/algebraic laws of the set operations, and memory
// accounting.
//
//===----------------------------------------------------------------------===//

#include "ctree/ctree.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>

using namespace aspen;

namespace {

using CT = CTreeSet<uint32_t, DeltaByteCodec>;
using CT64 = CTreeSet<uint64_t, DeltaByteCodec>;

std::vector<uint32_t> sortedUnique(std::vector<uint32_t> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

std::vector<uint32_t> randomKeys(size_t N, uint64_t Seed, uint32_t Range) {
  std::vector<uint32_t> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = uint32_t(hashAt(Seed, I) % Range);
  return Out;
}

} // namespace

TEST(CTreeExtreme, ChunkSizeOneEveryElementIsHead) {
  // b = 1 => mask 0 => hash & 0 == 0 always: every element is a head;
  // tails and prefix are empty and the structure degenerates to a plain
  // tree. All operations must still work.
  ChunkSizeGuard G(1);
  auto E = sortedUnique(randomKeys(2000, 1, 100000));
  CT T = CT::buildSorted(E.data(), E.size());
  EXPECT_EQ(T.numHeads(), E.size());
  EXPECT_EQ(T.size(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), E);
  CT U = CT::setUnion(T, T.multiInsert({999999u}));
  EXPECT_EQ(U.size(), E.size() + 1);
  EXPECT_TRUE(U.checkInvariants());
}

TEST(CTreeExtreme, HugeChunkSizeMostlyPrefix) {
  // b = 2^20 on a small set: with high probability no element is a head
  // and the entire structure is one prefix chunk.
  ChunkSizeGuard G(1 << 20);
  auto E = sortedUnique(randomKeys(500, 2, 1u << 20));
  CT T = CT::buildSorted(E.data(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), E);
  // Set algebra must still work through the base cases.
  auto B = sortedUnique(randomKeys(500, 3, 1u << 20));
  CT TB = CT::buildSorted(B.data(), B.size());
  std::set<uint32_t> Ref(E.begin(), E.end());
  Ref.insert(B.begin(), B.end());
  CT U = CT::setUnion(T, TB);
  EXPECT_EQ(U.toVector(), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  ASSERT_TRUE(U.checkInvariants());
  CT D = CT::setDifference(U, TB);
  std::vector<uint32_t> RefD;
  std::set_difference(E.begin(), E.end(), B.begin(), B.end(),
                      std::back_inserter(RefD));
  EXPECT_EQ(D.toVector(), RefD);
}

TEST(CTreeExtreme, DenseConsecutiveKeys) {
  // Consecutive integers: delta coding uses exactly one byte per element
  // after the first of each chunk.
  std::vector<uint32_t> E(100000);
  for (uint32_t I = 0; I < E.size(); ++I)
    E[I] = I + 1000000;
  CT T = CT::buildSorted(E.data(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.size(), E.size());
  // ~1 byte per non-head element + node overhead for heads.
  double BytesPerElt = double(T.memoryBytes()) / double(E.size());
  EXPECT_LT(BytesPerElt, 3.0);
}

TEST(CTreeExtreme, WideSpreadKeys) {
  // Keys spread over the whole 32-bit range: deltas need up to 5 bytes.
  auto E = sortedUnique(randomKeys(50000, 4, ~0u));
  CT T = CT::buildSorted(E.data(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), E);
}

TEST(CTreeExtreme, SixtyFourBitKeys) {
  std::vector<uint64_t> E;
  for (size_t I = 0; I < 10000; ++I)
    E.push_back(hashAt(5, I)); // full 64-bit range
  std::sort(E.begin(), E.end());
  E.erase(std::unique(E.begin(), E.end()), E.end());
  CT64 T = CT64::buildSorted(E.data(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), E);
  for (size_t I = 0; I < E.size(); I += 97)
    EXPECT_TRUE(T.contains(E[I]));
  EXPECT_FALSE(T.contains(E.back() + 1));
  // Batch ops on 64-bit keys.
  CT64 T2 = T.multiDelete(std::vector<uint64_t>(E.begin(),
                                                E.begin() + E.size() / 2));
  EXPECT_EQ(T2.size(), E.size() - E.size() / 2);
  EXPECT_TRUE(T2.checkInvariants());
}

TEST(CTreeAlgebra, UnionCommutesAndAssociates) {
  auto A = sortedUnique(randomKeys(2000, 10, 20000));
  auto B = sortedUnique(randomKeys(2000, 11, 20000));
  auto C = sortedUnique(randomKeys(2000, 12, 20000));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT TB = CT::buildSorted(B.data(), B.size());
  CT TC = CT::buildSorted(C.data(), C.size());
  EXPECT_EQ(CT::setUnion(TA, TB).toVector(),
            CT::setUnion(TB, TA).toVector());
  EXPECT_EQ(CT::setUnion(CT::setUnion(TA, TB), TC).toVector(),
            CT::setUnion(TA, CT::setUnion(TB, TC)).toVector());
}

TEST(CTreeAlgebra, DeMorganStyleIdentities) {
  auto A = sortedUnique(randomKeys(3000, 13, 15000));
  auto B = sortedUnique(randomKeys(3000, 14, 15000));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT TB = CT::buildSorted(B.data(), B.size());
  // A = (A \ B) ∪ (A ∩ B)
  CT Lhs = CT::setUnion(CT::setDifference(TA, TB),
                        CT::setIntersect(TA, TB));
  EXPECT_EQ(Lhs.toVector(), A);
  // (A ∪ B) \ B == A \ B
  EXPECT_EQ(CT::setDifference(CT::setUnion(TA, TB), TB).toVector(),
            CT::setDifference(TA, TB).toVector());
  // |A| + |B| == |A ∪ B| + |A ∩ B|
  EXPECT_EQ(TA.size() + TB.size(),
            CT::setUnion(TA, TB).size() + CT::setIntersect(TA, TB).size());
}

TEST(CTreeAlgebra, UnionIdempotent) {
  auto A = sortedUnique(randomKeys(2000, 15, 50000));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT U = TA;
  for (int I = 0; I < 4; ++I) {
    U = CT::setUnion(U, TA);
    ASSERT_EQ(U.toVector(), A);
    ASSERT_TRUE(U.checkInvariants());
  }
}

TEST(CTreeSnapshots, LongVersionChain) {
  // 100 versions, each inserting a small batch; every version must stay
  // exactly as it was when created.
  std::vector<CT> Versions;
  std::vector<size_t> Sizes;
  CT Cur;
  std::set<uint32_t> Ref;
  for (int I = 0; I < 100; ++I) {
    auto Batch = randomKeys(50, 100 + I, 100000);
    Cur = Cur.multiInsert(Batch);
    Ref.insert(Batch.begin(), Batch.end());
    Versions.push_back(Cur);
    Sizes.push_back(Ref.size());
  }
  for (size_t I = 0; I < Versions.size(); ++I)
    ASSERT_EQ(Versions[I].size(), Sizes[I]) << "version " << I;
  EXPECT_EQ(Versions.back().toVector(),
            std::vector<uint32_t>(Ref.begin(), Ref.end()));
  // Dropping interior versions must not perturb the others.
  for (size_t I = 0; I < Versions.size(); I += 2)
    Versions[I] = CT();
  for (size_t I = 1; I < Versions.size(); I += 2)
    ASSERT_EQ(Versions[I].size(), Sizes[I]);
}

TEST(CTreeSnapshots, StructuralSharingKeepsMemoryLinear) {
  // Memory for k versions with small diffs must be far below k copies.
  auto E = sortedUnique(randomKeys(50000, 20, 1u << 22));
  CT Base = CT::buildSorted(E.data(), E.size());
  size_t OneCopy = Base.memoryBytes();
  int64_t Before = liveCountedBytes() + totalPoolLiveBytes();
  std::vector<CT> Versions;
  CT Cur = Base;
  for (int I = 0; I < 20; ++I) {
    Cur = Cur.insert(uint32_t(5000000 + I));
    Versions.push_back(Cur);
  }
  int64_t After = liveCountedBytes() + totalPoolLiveBytes();
  // 20 versions cost far less than 20 full copies.
  EXPECT_LT(After - Before, int64_t(4 * OneCopy));
}

TEST(CTreeBoundary, EmptyOperandCombinations) {
  auto A = sortedUnique(randomKeys(100, 30, 1000));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT Empty;
  EXPECT_EQ(CT::setUnion(TA, Empty).toVector(), A);
  EXPECT_EQ(CT::setUnion(Empty, TA).toVector(), A);
  EXPECT_TRUE(CT::setUnion(Empty, Empty).empty());
  EXPECT_EQ(CT::setDifference(TA, Empty).toVector(), A);
  EXPECT_TRUE(CT::setDifference(Empty, TA).empty());
  EXPECT_TRUE(CT::setIntersect(TA, Empty).empty());
  EXPECT_TRUE(CT::setIntersect(Empty, TA).empty());
}

TEST(CTreeBoundary, SingletonsAndExtremeValues) {
  CT T = CT::fromUnsorted({0u});
  EXPECT_TRUE(T.contains(0u));
  T = T.insert(~0u); // max key
  EXPECT_TRUE(T.contains(~0u));
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), (std::vector<uint32_t>{0u, ~0u}));
  T = T.remove(0u);
  T = T.remove(~0u);
  EXPECT_TRUE(T.empty());
}

TEST(CTreeBoundary, InterleavedRangesStressSplitPaths) {
  // A = evens, B = odds: every chunk boundary interleaves; union must be
  // all values, intersect empty, difference the original.
  std::vector<uint32_t> A, B;
  for (uint32_t I = 0; I < 20000; ++I)
    (I % 2 ? B : A).push_back(I);
  CT TA = CT::buildSorted(A.data(), A.size());
  CT TB = CT::buildSorted(B.data(), B.size());
  CT U = CT::setUnion(TA, TB);
  EXPECT_EQ(U.size(), 20000u);
  ASSERT_TRUE(U.checkInvariants());
  EXPECT_TRUE(CT::setIntersect(TA, TB).empty());
  EXPECT_EQ(CT::setDifference(U, TB).toVector(), A);
}

class CTreeRandomizedLifecycle : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CTreeRandomizedLifecycle, ChurnWithSnapshotsIsLeakFree) {
  uint64_t Seed = GetParam();
  int64_t BaseNodes = totalPoolLiveBytes();
  int64_t BaseBytes = liveCountedBytes();
  {
    std::vector<CT> Pinned;
    CT Cur;
    std::set<uint32_t> Ref;
    for (int Round = 0; Round < 30; ++Round) {
      uint64_t Op = hashAt(Seed, Round) % 4;
      auto Batch = randomKeys(1 + hashAt(Seed, Round * 7) % 500,
                              Seed * 13 + Round, 5000);
      if (Op == 0 || Op == 1) {
        Cur = Cur.multiInsert(Batch);
        Ref.insert(Batch.begin(), Batch.end());
      } else if (Op == 2) {
        Cur = Cur.multiDelete(Batch);
        for (uint32_t K : Batch)
          Ref.erase(K);
      } else {
        Pinned.push_back(Cur); // pin a snapshot
        if (Pinned.size() > 5)
          Pinned.erase(Pinned.begin()); // unpin the oldest
      }
      ASSERT_EQ(Cur.size(), Ref.size()) << "round " << Round;
      ASSERT_TRUE(Cur.checkInvariants()) << "round " << Round;
    }
    EXPECT_EQ(Cur.toVector(), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  }
  EXPECT_EQ(totalPoolLiveBytes(), BaseNodes);
  EXPECT_EQ(liveCountedBytes(), BaseBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CTreeRandomizedLifecycle,
                         ::testing::Values(21, 22, 23, 24, 25, 26));
