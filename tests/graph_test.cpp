//===- tests/graph_test.cpp - Aspen graph snapshot tests ------------------===//
//
// The tree-of-trees graph (Section 5): construction, batch updates
// cross-checked against a reference adjacency model, snapshot isolation,
// flat snapshots, and memory/leak accounting - parameterized over the
// three edge-set representations of Table 2.
//
//===----------------------------------------------------------------------===//

#include "graph/graph.h"
#include "gen/generators.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace aspen;

namespace {

using RefModel = std::map<VertexId, std::set<VertexId>>;

RefModel refFromEdges(const std::vector<EdgePair> &Edges) {
  RefModel M;
  for (const EdgePair &E : Edges)
    M[E.first].insert(E.second);
  return M;
}

template <class G> bool graphMatchesRef(const G &Graph, const RefModel &M) {
  for (const auto &[V, Nbrs] : M) {
    auto Got = Graph.findVertex(V).toVector();
    if (Got != std::vector<VertexId>(Nbrs.begin(), Nbrs.end()))
      return false;
  }
  return true;
}

uint64_t refEdgeCount(const RefModel &M) {
  uint64_t C = 0;
  for (const auto &KV : M)
    C += KV.second.size();
  return C;
}

std::vector<EdgePair> randomEdgeBatch(size_t K, VertexId N, uint64_t Seed) {
  return tabulate(K, [&](size_t I) {
    uint64_t H = hashAt(Seed, I);
    return EdgePair{VertexId(H % N), VertexId((H >> 32) % N)};
  });
}

template <class GraphT> class GraphRepTest : public ::testing::Test {};
using GraphReps = ::testing::Types<Graph, GraphNoDE, GraphUncompressed>;

} // namespace

TYPED_TEST_SUITE(GraphRepTest, GraphReps);

TYPED_TEST(GraphRepTest, EmptyGraph) {
  TypeParam G = TypeParam::fromEdges(0, {});
  EXPECT_EQ(G.numVertices(), 0u);
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_EQ(G.vertexUniverse(), 0u);
}

TYPED_TEST(GraphRepTest, VerticesWithoutEdges) {
  TypeParam G = TypeParam::fromEdges(100, {});
  EXPECT_EQ(G.numVertices(), 100u);
  EXPECT_EQ(G.numEdges(), 0u);
  EXPECT_TRUE(G.hasVertex(0));
  EXPECT_TRUE(G.hasVertex(99));
  EXPECT_FALSE(G.hasVertex(100));
  EXPECT_EQ(G.degree(5), 0u);
}

TYPED_TEST(GraphRepTest, BuildMatchesReference) {
  auto Edges = rmatGraphEdges(10, 4, 7);
  TypeParam G = TypeParam::fromEdges(1 << 10, Edges);
  RefModel M = refFromEdges(Edges);
  EXPECT_EQ(G.numEdges(), refEdgeCount(M));
  EXPECT_TRUE(graphMatchesRef(G, M));
  EXPECT_TRUE(G.checkInvariants());
}

TYPED_TEST(GraphRepTest, DegreesMatchReference) {
  auto Edges = rmatGraphEdges(9, 8, 11);
  TypeParam G = TypeParam::fromEdges(1 << 9, Edges);
  RefModel M = refFromEdges(Edges);
  for (VertexId V = 0; V < (1 << 9); ++V) {
    auto It = M.find(V);
    uint64_t Expect = It == M.end() ? 0 : It->second.size();
    ASSERT_EQ(G.degree(V), Expect) << "vertex " << V;
  }
}

TYPED_TEST(GraphRepTest, InsertEdgesBatch) {
  const VertexId N = 512;
  TypeParam G = TypeParam::fromEdges(N, {});
  RefModel M;
  for (int Round = 0; Round < 8; ++Round) {
    auto Batch = randomEdgeBatch(500 + Round * 100, N, 100 + Round);
    G = G.insertEdges(Batch);
    for (const EdgePair &E : Batch)
      M[E.first].insert(E.second);
    ASSERT_EQ(G.numEdges(), refEdgeCount(M)) << "round " << Round;
    ASSERT_TRUE(graphMatchesRef(G, M)) << "round " << Round;
    ASSERT_TRUE(G.checkInvariants()) << "round " << Round;
  }
}

TYPED_TEST(GraphRepTest, DeleteEdgesBatch) {
  const VertexId N = 512;
  auto Edges = randomEdgeBatch(4000, N, 33);
  TypeParam G = TypeParam::fromEdges(N, Edges);
  RefModel M = refFromEdges(Edges);
  for (int Round = 0; Round < 6; ++Round) {
    // Delete a mix of present and absent edges.
    std::vector<EdgePair> Batch;
    for (size_t I = Round; I < Edges.size(); I += 5)
      Batch.push_back(Edges[I]);
    auto Absent = randomEdgeBatch(200, N, 5000 + Round);
    Batch.insert(Batch.end(), Absent.begin(), Absent.end());
    G = G.deleteEdges(Batch);
    for (const EdgePair &E : Batch) {
      auto It = M.find(E.first);
      if (It != M.end())
        It->second.erase(E.second);
    }
    ASSERT_EQ(G.numEdges(), refEdgeCount(M)) << "round " << Round;
    ASSERT_TRUE(graphMatchesRef(G, M)) << "round " << Round;
    ASSERT_TRUE(G.checkInvariants()) << "round " << Round;
  }
  // Vertices survive even with empty edge sets.
  EXPECT_EQ(G.numVertices(), N);
}

TYPED_TEST(GraphRepTest, SpanBatchPathsMatchVectorPaths) {
  // insertEdgesSpan/deleteEdgesSpan (in-place sort, scratch grouping —
  // the versioned store's writer route) must produce graphs identical
  // to the vector paths, including duplicate and absent edges.
  const VertexId N = 512;
  auto Base = randomEdgeBatch(3000, N, 77);
  TypeParam G1 = TypeParam::fromEdges(N, Base);
  TypeParam G2 = TypeParam::fromEdges(N, Base);
  for (int Round = 0; Round < 5; ++Round) {
    auto Ins = randomEdgeBatch(600, N, 900 + Round);
    Ins.insert(Ins.end(), Ins.begin(), Ins.begin() + 50); // duplicates
    auto Del = randomEdgeBatch(300, N, 950 + Round);      // mostly absent
    G1 = G1.insertEdges(Ins).deleteEdges(Del);
    auto InsCopy = Ins;
    auto DelCopy = Del;
    G2 = G2.insertEdgesSpan(InsCopy.data(), InsCopy.size())
             .deleteEdgesSpan(DelCopy.data(), DelCopy.size());
    ASSERT_EQ(G1.numEdges(), G2.numEdges()) << "round " << Round;
    ASSERT_TRUE(G2.checkInvariants()) << "round " << Round;
    for (VertexId V = 0; V < N; ++V)
      ASSERT_EQ(G1.findVertex(V).toVector(), G2.findVertex(V).toVector())
          << "vertex " << V << " round " << Round;
  }
}

TYPED_TEST(GraphRepTest, MixedInsertDeleteMatchesReference) {
  const VertexId N = 300;
  TypeParam G = TypeParam::fromEdges(N, {});
  RefModel M;
  for (int Round = 0; Round < 12; ++Round) {
    auto Batch = randomEdgeBatch(400, N, 700 + Round);
    if (Round % 3 == 2) {
      G = G.deleteEdges(Batch);
      for (const EdgePair &E : Batch) {
        auto It = M.find(E.first);
        if (It != M.end())
          It->second.erase(E.second);
      }
    } else {
      G = G.insertEdges(Batch);
      for (const EdgePair &E : Batch)
        M[E.first].insert(E.second);
    }
    ASSERT_EQ(G.numEdges(), refEdgeCount(M)) << "round " << Round;
    ASSERT_TRUE(graphMatchesRef(G, M)) << "round " << Round;
  }
}

TYPED_TEST(GraphRepTest, SnapshotIsolation) {
  const VertexId N = 256;
  auto Edges = randomEdgeBatch(2000, N, 44);
  TypeParam V1 = TypeParam::fromEdges(N, Edges);
  RefModel M1 = refFromEdges(Edges);
  uint64_t EdgesBefore = V1.numEdges();

  TypeParam Snapshot = V1; // O(1) acquire
  auto Batch = randomEdgeBatch(1000, N, 45);
  TypeParam V2 = V1.insertEdges(Batch);
  TypeParam V3 = V2.deleteEdges(Edges);

  // The old snapshot is untouched by updates on newer versions.
  EXPECT_EQ(Snapshot.numEdges(), EdgesBefore);
  EXPECT_TRUE(graphMatchesRef(Snapshot, M1));
  EXPECT_TRUE(V3.checkInvariants());
}

TYPED_TEST(GraphRepTest, InsertDeleteVertices) {
  TypeParam G = TypeParam::fromEdges(10, {});
  G = G.insertVertices({20, 25, 30});
  EXPECT_EQ(G.numVertices(), 13u);
  EXPECT_TRUE(G.hasVertex(25));
  EXPECT_EQ(G.vertexUniverse(), 31u);
  // Inserting existing vertices keeps their edges.
  G = G.insertEdges({{20, 25}, {20, 30}});
  G = G.insertVertices({20});
  EXPECT_EQ(G.degree(20), 2u);
  G = G.deleteVertices({20, 7});
  EXPECT_EQ(G.numVertices(), 11u);
  EXPECT_FALSE(G.hasVertex(20));
  EXPECT_FALSE(G.hasVertex(7));
}

TYPED_TEST(GraphRepTest, RemoveIsolatedVertices) {
  TypeParam G = TypeParam::fromEdges(10, {{1, 2}, {2, 1}, {3, 1}});
  G = G.removeIsolatedVertices();
  EXPECT_EQ(G.numVertices(), 3u);
  EXPECT_TRUE(G.hasVertex(1));
  EXPECT_TRUE(G.hasVertex(2));
  EXPECT_TRUE(G.hasVertex(3));
  EXPECT_FALSE(G.hasVertex(0));
}

TYPED_TEST(GraphRepTest, LeakFreeAcrossUpdates) {
  int64_t BaseBytes = liveCountedBytes();
  int64_t BaseNodes = totalPoolLiveBytes();
  {
    const VertexId N = 256;
    TypeParam G = TypeParam::fromEdges(N, randomEdgeBatch(3000, N, 55));
    for (int Round = 0; Round < 6; ++Round) {
      auto Batch = randomEdgeBatch(800, N, 900 + Round);
      TypeParam Snapshot = G;
      G = G.insertEdges(Batch);
      G = G.deleteEdges(Batch);
    }
  }
  EXPECT_EQ(liveCountedBytes(), BaseBytes) << "leaked chunk bytes";
  EXPECT_EQ(totalPoolLiveBytes(), BaseNodes) << "leaked tree nodes";
}

TEST(GraphMemory, CompressedSmallerThanUncompressed) {
  // Table 2's ordering: DE < No-DE < uncompressed trees.
  auto Edges = rmatGraphEdges(12, 8, 66);
  Graph GD = Graph::fromEdges(1 << 12, Edges);
  GraphNoDE GN = GraphNoDE::fromEdges(1 << 12, Edges);
  GraphUncompressed GU = GraphUncompressed::fromEdges(1 << 12, Edges);
  EXPECT_LT(GD.memoryBytes(), GN.memoryBytes());
  EXPECT_LT(GN.memoryBytes(), GU.memoryBytes());
}

TEST(FlatSnapshotTest, MatchesTreeAccess) {
  auto Edges = rmatGraphEdges(10, 6, 77);
  Graph G = Graph::fromEdges(1 << 10, Edges);
  FlatSnapshot FS(G);
  EXPECT_EQ(FS.numVertices(), G.vertexUniverse());
  EXPECT_EQ(FS.numEdges(), G.numEdges());
  for (VertexId V = 0; V < FS.numVertices(); V += 3) {
    ASSERT_EQ(FS.degree(V), G.degree(V));
    ASSERT_EQ(FS.edges(V).toVector(), G.findVertex(V).toVector());
  }
}

TEST(FlatSnapshotTest, SurvivesSourceGraphDestruction) {
  auto Edges = rmatGraphEdges(9, 4, 88);
  FlatSnapshot FS;
  RefModel M = refFromEdges(Edges);
  {
    Graph G = Graph::fromEdges(1 << 9, Edges);
    FS = FlatSnapshot(G);
  } // G destroyed; FS's per-slot references keep trees alive.
  for (const auto &[V, Nbrs] : M)
    ASSERT_EQ(FS.edges(V).toVector(),
              std::vector<VertexId>(Nbrs.begin(), Nbrs.end()));
}

TEST(GraphViews, TreeAndFlatViewsAgree) {
  auto Edges = rmatGraphEdges(9, 6, 99);
  Graph G = Graph::fromEdges(1 << 9, Edges);
  FlatSnapshot FS(G);
  TreeGraphView TV(G);
  FlatGraphView FV(FS);
  EXPECT_EQ(TV.numVertices(), FV.numVertices());
  EXPECT_EQ(TV.numEdges(), FV.numEdges());
  for (VertexId V = 0; V < TV.numVertices(); V += 5) {
    ASSERT_EQ(TV.degree(V), FV.degree(V));
    std::vector<VertexId> A, B;
    TV.mapNeighbors(V, [&](VertexId U) { A.push_back(U); });
    FV.mapNeighbors(V, [&](VertexId U) { B.push_back(U); });
    ASSERT_EQ(A, B);
  }
}

TEST(GraphViews, IndexedMapHasCorrectIndices) {
  auto Edges = rmatGraphEdges(8, 8, 111);
  Graph G = Graph::fromEdges(1 << 8, Edges);
  TreeGraphView TV(G);
  for (VertexId V = 0; V < 1 << 8; V += 7) {
    std::vector<VertexId> Slots(G.degree(V), NoVertex);
    TV.mapNeighborsIndexed(V, [&](size_t I, VertexId U) {
      ASSERT_LT(I, Slots.size());
      Slots[I] = U;
    });
    ASSERT_EQ(Slots, G.findVertex(V).toVector());
  }
}

TEST(GraphBuild, DuplicateEdgesInBatchCombine) {
  Graph G = Graph::fromEdges(4, {{1, 2}, {1, 2}, {1, 3}, {1, 2}});
  EXPECT_EQ(G.degree(1), 2u);
  G = G.insertEdges({{2, 3}, {2, 3}, {2, 3}});
  EXPECT_EQ(G.degree(2), 1u);
  EXPECT_EQ(G.numEdges(), 3u);
}

TEST(GraphBuild, AutoCreatesSourcesOnInsert) {
  Graph G = Graph::fromEdges(4, {});
  G = G.insertEdges({{10, 1}});
  EXPECT_TRUE(G.hasVertex(10));
  EXPECT_EQ(G.degree(10), 1u);
  // Deleting edges of an unknown vertex is a no-op (no vertex creation).
  G = G.deleteEdges({{77, 1}});
  EXPECT_FALSE(G.hasVertex(77));
}

TYPED_TEST(GraphRepTest, NeighborCursorMatchesTraversal) {
  // The cursor surface (edgesView / neighborCursor) must agree with the
  // recursive traversals on every vertex, through both graph views.
  using GraphT = TypeParam;
  auto Edges = randomEdgeBatch(4000, 200, 77);
  RefModel M = refFromEdges(Edges);
  GraphT G = GraphT::fromEdges(200, Edges);
  TreeGraphView<typename GraphT::VertexEntry::ValT> TV(G);
  for (VertexId V = 0; V < 200; ++V) {
    std::vector<VertexId> Want;
    TV.mapNeighbors(V, [&](VertexId U) { Want.push_back(U); });
    std::vector<VertexId> Got;
    for (auto Cu = TV.neighborCursor(V); !Cu.done(); Cu.advance())
      Got.push_back(Cu.value());
    ASSERT_EQ(Got, Want) << "vertex " << V;
    // The snapshot-level cursor shortcut agrees with the view's.
    std::vector<VertexId> Direct;
    for (auto Cu = G.neighborCursor(V); !Cu.done(); Cu.advance())
      Direct.push_back(Cu.value());
    ASSERT_EQ(Direct, Want) << "vertex " << V;
    const auto &Ref = M.count(V) ? M[V] : std::set<VertexId>{};
    ASSERT_EQ(Got, std::vector<VertexId>(Ref.begin(), Ref.end()));
  }
}

TEST(FlatSnapshotCursor, MatchesTreeCursor) {
  auto Edges = randomEdgeBatch(5000, 128, 78);
  Graph G = Graph::fromEdges(128, Edges);
  FlatSnapshot FS(G);
  FlatGraphView<CTreeSet<VertexId, DeltaByteCodec>> FV(FS);
  TreeGraphView<CTreeSet<VertexId, DeltaByteCodec>> TV(G);
  for (VertexId V = 0; V < 128; ++V) {
    std::vector<VertexId> A, B;
    for (auto Cu = FV.neighborCursor(V); !Cu.done(); Cu.advance())
      A.push_back(Cu.value());
    for (auto Cu = TV.neighborCursor(V); !Cu.done(); Cu.advance())
      B.push_back(Cu.value());
    ASSERT_EQ(A, B) << "vertex " << V;
  }
}
