//===- tests/weighted_test.cpp - Weighted graph extension tests -----------===//
//
// The weighted-graph extension (the paper's stated future work), SSSP over
// it, and triangle counting, cross-checked against reference
// implementations.
//
//===----------------------------------------------------------------------===//

#include "algorithms/sssp.h"
#include "algorithms/triangle_count.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/weighted_graph.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <queue>

using namespace aspen;

namespace {

using WEdge = WeightedEdge<double>;

std::vector<WEdge> symmetricWeighted(const std::vector<EdgePair> &E,
                                     uint64_t Seed) {
  std::vector<WEdge> Out;
  for (const EdgePair &P : E) {
    // Symmetric weights determined by the unordered pair.
    uint64_t A = std::min(P.first, P.second);
    uint64_t B = std::max(P.first, P.second);
    double W = 1.0 + double(hashAt(Seed, (A << 32) | B) % 100);
    Out.push_back({P.first, P.second, W});
  }
  return Out;
}

std::vector<double> refDijkstra(VertexId N, const std::vector<WEdge> &E,
                                VertexId Src) {
  std::vector<std::vector<std::pair<VertexId, double>>> Adj(N);
  for (const WEdge &W : E)
    Adj[W.Src].push_back({W.Dst, W.Weight});
  std::vector<double> Dist(N, std::numeric_limits<double>::max());
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> Q;
  Dist[Src] = 0;
  Q.push({0, Src});
  while (!Q.empty()) {
    auto [D, V] = Q.top();
    Q.pop();
    if (D > Dist[V])
      continue;
    for (auto [U, W] : Adj[V])
      if (D + W < Dist[U]) {
        Dist[U] = D + W;
        Q.push({Dist[U], U});
      }
  }
  return Dist;
}

uint64_t bruteTriangles(VertexId N, const std::vector<EdgePair> &E) {
  std::vector<std::set<VertexId>> Adj(N);
  for (const EdgePair &P : E)
    Adj[P.first].insert(P.second);
  uint64_t Count = 0;
  for (VertexId U = 0; U < N; ++U)
    for (VertexId V : Adj[U])
      if (V > U)
        for (VertexId W : Adj[V])
          if (W > V && Adj[U].count(W))
            ++Count;
  return Count;
}

} // namespace

TEST(WeightedEdgeSet, BuildAndLookup) {
  std::vector<std::pair<VertexId, double>> E = {{1, 0.5}, {4, 2.0},
                                                {9, 1.25}};
  auto S = WeightedEdgeSet<double>::buildSorted(E.data(), E.size());
  EXPECT_EQ(S.size(), 3u);
  EXPECT_EQ(S.weightOf(4), 2.0);
  EXPECT_EQ(S.weightOf(5), std::nullopt);
  EXPECT_DOUBLE_EQ(S.totalWeight(), 3.75);
  EXPECT_EQ(S.toVector(), E);
}

TEST(WeightedEdgeSet, MergeCombinesWeights) {
  std::vector<std::pair<VertexId, double>> A = {{1, 1.0}, {2, 2.0}};
  std::vector<std::pair<VertexId, double>> B = {{2, 5.0}, {3, 3.0}};
  auto SA = WeightedEdgeSet<double>::buildSorted(A.data(), A.size());
  auto SB = WeightedEdgeSet<double>::buildSorted(B.data(), B.size());
  auto Sum = WeightedEdgeSet<double>::merge(
      SA, SB, [](double X, double Y) { return X + Y; });
  EXPECT_EQ(Sum.weightOf(2), 7.0);
  EXPECT_EQ(Sum.weightOf(1), 1.0);
  EXPECT_EQ(Sum.weightOf(3), 3.0);
  EXPECT_DOUBLE_EQ(Sum.totalWeight(), 11.0);
}

TEST(WeightedGraph, BuildAndQueries) {
  std::vector<WEdge> E = {{0, 1, 2.5}, {1, 0, 2.5}, {1, 2, 1.0}};
  WeightedGraph G = WeightedGraph::fromEdges(4, E);
  EXPECT_EQ(G.numVertices(), 4u);
  EXPECT_EQ(G.numEdges(), 3u);
  EXPECT_EQ(G.degree(1), 2u);
  EXPECT_EQ(G.edgeWeight(0, 1), 2.5);
  EXPECT_EQ(G.edgeWeight(2, 1), std::nullopt);
}

TEST(WeightedGraph, InsertUpdatesWeights) {
  WeightedGraph G = WeightedGraph::fromEdges(4, {{0, 1, 1.0}});
  // Default combine: new weight replaces old (weight update).
  WeightedGraph G2 = G.insertEdges({{0, 1, 9.0}, {0, 2, 3.0}});
  EXPECT_EQ(G2.edgeWeight(0, 1), 9.0);
  EXPECT_EQ(G2.edgeWeight(0, 2), 3.0);
  EXPECT_EQ(G.edgeWeight(0, 1), 1.0) << "old snapshot unchanged";
  // Additive combine (e.g. multigraph-style accumulation).
  WeightedGraph G3 =
      G2.insertEdges({{0, 1, 1.0}}, [](double A, double B) { return A + B; });
  EXPECT_EQ(G3.edgeWeight(0, 1), 10.0);
}

TEST(WeightedGraph, DeleteEdges) {
  WeightedGraph G =
      WeightedGraph::fromEdges(4, {{0, 1, 1.0}, {0, 2, 2.0}, {1, 2, 3.0}});
  WeightedGraph G2 = G.deleteEdges({{0, 1}, {3, 0}});
  EXPECT_EQ(G2.numEdges(), 2u);
  EXPECT_EQ(G2.edgeWeight(0, 1), std::nullopt);
  EXPECT_EQ(G2.edgeWeight(0, 2), 2.0);
}

TEST(WeightedGraph, DuplicateBatchKeepsLast) {
  WeightedGraph G =
      WeightedGraph::fromEdges(4, {{0, 1, 1.0}, {0, 1, 7.0}});
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_EQ(G.edgeWeight(0, 1), 7.0);
}

TEST(Sssp, MatchesDijkstraOnRmat) {
  for (uint64_t Seed : {1, 2, 3}) {
    auto Raw = rmatGraphEdges(8, 6, Seed);
    const VertexId N = 1 << 8;
    auto E = symmetricWeighted(Raw, Seed);
    WeightedGraph G = WeightedGraph::fromEdges(N, E);
    auto Got = sssp(G, VertexId(0));
    auto Ref = refDijkstra(N, E, 0);
    EXPECT_FALSE(Got.NegativeCycle);
    for (VertexId V = 0; V < N; ++V)
      ASSERT_DOUBLE_EQ(Got.Dist[V], Ref[V]) << "vertex " << V;
  }
}

TEST(Sssp, PathWeights) {
  std::vector<WEdge> E;
  for (VertexId I = 0; I + 1 < 50; ++I) {
    E.push_back({I, I + 1, double(I + 1)});
    E.push_back({I + 1, I, double(I + 1)});
  }
  WeightedGraph G = WeightedGraph::fromEdges(50, E);
  auto R = sssp(G, VertexId(0));
  double Acc = 0;
  for (VertexId V = 0; V < 50; ++V) {
    EXPECT_DOUBLE_EQ(R.Dist[V], Acc);
    Acc += double(V + 1);
  }
}

TEST(Sssp, UnreachableIsInfinity) {
  WeightedGraph G = WeightedGraph::fromEdges(4, {{0, 1, 1.0}});
  auto R = sssp(G, VertexId(0));
  EXPECT_EQ(R.Dist[3], SsspResult<double>::infinity());
}

TEST(Sssp, NegativeEdgesNoCycle) {
  // 0 -> 1 (5), 0 -> 2 (2), 2 -> 1 (-4): shortest 0->1 is -2.
  WeightedGraph G = WeightedGraph::fromEdges(
      3, {{0, 1, 5.0}, {0, 2, 2.0}, {2, 1, -4.0}});
  auto R = sssp(G, VertexId(0));
  EXPECT_FALSE(R.NegativeCycle);
  EXPECT_DOUBLE_EQ(R.Dist[1], -2.0);
}

TEST(Sssp, DetectsNegativeCycle) {
  WeightedGraph G = WeightedGraph::fromEdges(
      3, {{0, 1, 1.0}, {1, 2, -3.0}, {2, 1, 1.0}});
  auto R = sssp(G, VertexId(0));
  EXPECT_TRUE(R.NegativeCycle);
}

TEST(Triangles, StructuredGraphs) {
  // Clique K6: C(6,3) = 20 triangles.
  Graph K = Graph::fromEdges(6, cliqueGraph(6));
  TreeGraphView KV(K);
  EXPECT_EQ(triangleCount(KV), 20u);
  // Path: none.
  Graph P = Graph::fromEdges(10, pathGraph(10));
  TreeGraphView PV(P);
  EXPECT_EQ(triangleCount(PV), 0u);
  // Grid: none (no odd cycles).
  Graph Gr = Graph::fromEdges(12, gridGraph(3, 4));
  TreeGraphView GV(Gr);
  EXPECT_EQ(triangleCount(GV), 0u);
}

TEST(Triangles, MatchesBruteForceOnRmat) {
  for (uint64_t Seed : {5, 6}) {
    auto E = rmatGraphEdges(7, 6, Seed);
    const VertexId N = 1 << 7;
    Graph G = Graph::fromEdges(N, E);
    TreeGraphView V(G);
    EXPECT_EQ(triangleCount(V), bruteTriangles(N, E)) << "seed " << Seed;
  }
}

TEST(Triangles, StableUnderUpdates) {
  // Inserting then deleting a batch leaves the triangle count unchanged.
  auto E = rmatGraphEdges(7, 4, 9);
  const VertexId N = 1 << 7;
  Graph G = Graph::fromEdges(N, E);
  TreeGraphView V0(G);
  uint64_t Before = triangleCount(V0);
  auto Batch = dedupEdges(symmetrize(uniformRandomEdges(N, 200, 10)));
  Graph G2 = G.insertEdges(Batch).deleteEdges(Batch);
  // Deleting can remove edges that were already in E; rebuild check:
  // compare against a fresh graph with the same logical edge set.
  std::set<EdgePair> Ref(E.begin(), E.end());
  for (const EdgePair &P : Batch)
    Ref.erase(P);
  Graph Fresh =
      Graph::fromEdges(N, std::vector<EdgePair>(Ref.begin(), Ref.end()));
  TreeGraphView V2(G2), VF(Fresh);
  EXPECT_EQ(triangleCount(V2), triangleCount(VF));
  EXPECT_EQ(triangleCount(V0), Before) << "old snapshot unchanged";
}

TEST(WeightedGraph, LeakFree) {
  int64_t Base = totalPoolLiveBytes();
  {
    auto Raw = rmatGraphEdges(8, 4, 11);
    auto E = symmetricWeighted(Raw, 11);
    WeightedGraph G = WeightedGraph::fromEdges(1 << 8, E);
    for (int I = 0; I < 4; ++I) {
      WeightedGraph Snap = G;
      G = G.insertEdges({{VertexId(I), VertexId(I + 1), 1.5}});
      G = G.deleteEdges({{VertexId(I), VertexId(I + 1)}});
    }
  }
  EXPECT_EQ(totalPoolLiveBytes(), Base);
}

TEST(WeightedGraph, NeighborCursorStreamsPairs) {
  std::vector<WeightedEdge<double>> Edges = {
      {0, 1, 1.5}, {0, 2, 2.5}, {0, 9, 0.25}, {3, 0, 4.0}};
  WeightedGraph G = WeightedGraph::fromEdges(10, Edges);
  std::vector<std::pair<VertexId, double>> Got;
  for (auto Cu = G.neighborCursor(0); !Cu.done(); Cu.advance())
    Got.emplace_back(Cu.neighbor(), Cu.weight());
  std::vector<std::pair<VertexId, double>> Want = {
      {1, 1.5}, {2, 2.5}, {9, 0.25}};
  EXPECT_EQ(Got, Want);
  // Cursor agrees with iterNeighborsW.
  std::vector<std::pair<VertexId, double>> Iter;
  G.iterNeighborsW(0, [&](VertexId V, double W) {
    Iter.emplace_back(V, W);
    return true;
  });
  EXPECT_EQ(Iter, Want);
  // Absent vertex: empty cursor.
  EXPECT_TRUE(G.neighborCursor(42).done());
}
