//===- tests/gen_test.cpp - Generator and graph IO tests ------------------===//

#include "gen/generators.h"
#include "gen/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

using namespace aspen;

TEST(RMat, DeterministicInSeedAndIndex) {
  RMatGenerator G(10, 42);
  EXPECT_EQ(G.edge(0), G.edge(0));
  EXPECT_EQ(G.edge(123), G.edge(123));
  RMatGenerator G2(10, 43);
  // Different seed should change the stream somewhere early.
  bool Differs = false;
  for (uint64_t I = 0; I < 32 && !Differs; ++I)
    Differs = G.edge(I) != G2.edge(I);
  EXPECT_TRUE(Differs);
}

TEST(RMat, EndpointsInRange) {
  RMatGenerator G(8, 7);
  for (uint64_t I = 0; I < 10000; ++I) {
    auto [U, V] = G.edge(I);
    ASSERT_LT(U, 256u);
    ASSERT_LT(V, 256u);
  }
}

TEST(RMat, SkewedDegreeDistribution) {
  // rMAT with a=0.5 concentrates edges on low-id vertices: the max degree
  // should far exceed the average (the power-law-ish shape that drives the
  // paper's compression results).
  RMatGenerator G(12, 99);
  auto E = G.edges(0, 8 << 12);
  std::vector<uint32_t> Deg(1 << 12, 0);
  for (auto [U, V] : E)
    ++Deg[U];
  uint32_t Max = *std::max_element(Deg.begin(), Deg.end());
  double Avg = double(E.size()) / double(Deg.size());
  // At this scale the expected max/avg ratio is ~8 (P(src bit 0) = 0.6 per
  // level gives deg(0) ~ m * 0.6^12); require clear skew.
  EXPECT_GT(double(Max), 5.0 * Avg);
  // Many vertices should sit below half the average degree, too.
  size_t Low = 0;
  for (uint32_t D : Deg)
    Low += (double(D) <= Avg / 2.0) ? 1 : 0;
  EXPECT_GT(Low * 4, Deg.size());
}

TEST(RMat, ParallelGenerationMatchesSequential) {
  RMatGenerator G(10, 5);
  auto Par = G.edges(100, 1000);
  for (size_t I = 0; I < Par.size(); ++I)
    ASSERT_EQ(Par[I], G.edge(100 + I));
}

TEST(Generators, SymmetrizeContainsBothDirections) {
  std::vector<EdgePair> E = {{1, 2}, {3, 4}};
  auto S = symmetrize(E);
  std::set<EdgePair> Set(S.begin(), S.end());
  EXPECT_TRUE(Set.count({2, 1}));
  EXPECT_TRUE(Set.count({4, 3}));
  EXPECT_EQ(S.size(), 4u);
}

TEST(Generators, DedupRemovesDuplicatesAndLoops) {
  std::vector<EdgePair> E = {{1, 2}, {1, 2}, {2, 2}, {0, 1}};
  auto D = dedupEdges(E);
  EXPECT_EQ(D, (std::vector<EdgePair>{{0, 1}, {1, 2}}));
}

TEST(Generators, StructuredGraphSizes) {
  EXPECT_EQ(pathGraph(10).size(), 18u);
  EXPECT_EQ(starGraph(10).size(), 18u);
  EXPECT_EQ(cliqueGraph(5).size(), 20u);
  EXPECT_EQ(gridGraph(3, 4).size(), 2u * (3 * 3 + 2 * 4));
}

TEST(Generators, UniformEdgesInRange) {
  auto E = uniformRandomEdges(100, 5000, 3);
  for (auto [U, V] : E) {
    ASSERT_LT(U, 100u);
    ASSERT_LT(V, 100u);
  }
}

TEST(GraphIO, AdjacencyRoundTrip) {
  std::string Path = testing::TempDir() + "/aspen_io_test.adj";
  auto Edges = dedupEdges(symmetrize(uniformRandomEdges(64, 500, 9)));
  ASSERT_TRUE(writeAdjacencyGraph(Path, 64, Edges));
  EdgeList In;
  ASSERT_TRUE(readAdjacencyGraph(Path, In));
  EXPECT_EQ(In.NumVertices, 64u);
  auto Sorted = Edges;
  std::sort(Sorted.begin(), Sorted.end());
  auto Got = In.Edges;
  std::sort(Got.begin(), Got.end());
  EXPECT_EQ(Got, Sorted);
  std::remove(Path.c_str());
}

TEST(GraphIO, BinaryRoundTrip) {
  std::string Path = testing::TempDir() + "/aspen_io_test.bin";
  auto Edges = dedupEdges(uniformRandomEdges(1000, 20000, 10));
  ASSERT_TRUE(writeBinaryEdges(Path, 1000, Edges));
  EdgeList In;
  ASSERT_TRUE(readBinaryEdges(Path, In));
  EXPECT_EQ(In.NumVertices, 1000u);
  EXPECT_EQ(In.Edges, Edges);
  std::remove(Path.c_str());
}

TEST(GraphIO, RejectsMissingOrMalformed) {
  EdgeList Out;
  EXPECT_FALSE(readAdjacencyGraph("/nonexistent/file.adj", Out));
  std::string Path = testing::TempDir() + "/aspen_io_bad.adj";
  FILE *F = fopen(Path.c_str(), "w");
  fputs("NotAGraph\n1 2 3\n", F);
  fclose(F);
  EXPECT_FALSE(readAdjacencyGraph(Path, Out));
  std::remove(Path.c_str());
}
