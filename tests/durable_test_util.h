//===- tests/durable_test_util.h - Shared durability-test helpers ---------===//
//
// The helpers the fault-injection suites share (durability_test.cpp,
// replication_test.cpp): scratch directories, byte-level corruption,
// chunk-exact store comparison, and deterministic batch schedules.
//
// Byte-identity here means identity of the *physical* representation —
// chunk Count/Bytes/First/Last and a memcmp of the encoded payloads —
// not just equal edge sets. Chunk-boundary determinism (DESIGN.md
// Section 2) makes that the right bar for recovery and replication: a
// follower or recovered store that applied the same batches must land on
// the same bytes.
//
// Set ASPEN_KEEP_FAILED_DIRS=1 to keep a test's scratch directory when
// the test fails (the chaos CI job does, and uploads /tmp/aspen-* as the
// failure artifact).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_TESTS_DURABLE_TEST_UTIL_H
#define ASPEN_TESTS_DURABLE_TEST_UTIL_H

#include "graph/graph.h"
#include "store/durability.h"
#include "store/sharded_graph.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <utility>
#include <vector>

namespace aspen {
namespace dtest {

struct TempDir {
  std::string P;
  TempDir() {
    char Buf[] = "/tmp/aspen-dur-XXXXXX";
    const char *R = ::mkdtemp(Buf);
    EXPECT_NE(R, nullptr);
    P = Buf;
  }
  ~TempDir() {
    const char *Keep = std::getenv("ASPEN_KEEP_FAILED_DIRS");
    if (Keep && *Keep && *Keep != '0' &&
        ::testing::Test::HasFailure())
      return; // leave the evidence for the CI artifact upload
    if (DIR *D = ::opendir(P.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        std::string N = E->d_name;
        if (N != "." && N != "..")
          (void)::unlink((P + "/" + N).c_str());
      }
      ::closedir(D);
      (void)::rmdir(P.c_str());
    }
  }
  const std::string &path() const { return P; }
};

inline size_t countFilesWithPrefix(const std::string &Dir,
                                   const char *Prefix) {
  size_t N = 0;
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (struct dirent *E = ::readdir(D))
      if (std::strncmp(E->d_name, Prefix, std::strlen(Prefix)) == 0)
        ++N;
    ::closedir(D);
  }
  return N;
}

inline void flipByteAt(const std::string &Path, off_t Off) {
  int Fd = ::open(Path.c_str(), O_RDWR);
  ASSERT_GE(Fd, 0);
  uint8_t B = 0;
  ASSERT_EQ(::pread(Fd, &B, 1, Off), 1);
  B ^= 0x40;
  ASSERT_EQ(::pwrite(Fd, &B, 1, Off), 1);
  ::close(Fd);
}

inline off_t fileSize(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? St.st_size : -1;
}

//===----------------------------------------------------------------------===
// Byte-identity (the parallel_merge_test idiom).
//===----------------------------------------------------------------------===

using DtCTS = CTreeSet<VertexId, DeltaByteCodec>;
using DtP64 = ChunkPayload<VertexId>;

inline bool chunksIdentical(const DtP64 *A, const DtP64 *B) {
  if (!A || !B)
    return A == B;
  return A->Count == B->Count && A->Bytes == B->Bytes &&
         A->First == B->First && A->Last == B->Last &&
         std::memcmp(A->data(), B->data(), A->Bytes) == 0;
}

inline bool setsIdentical(const DtCTS &A, const DtCTS &B) {
  if (!chunksIdentical(A.prefix(), B.prefix()))
    return false;
  std::vector<std::pair<VertexId, const DtP64 *>> EA, EB;
  DtCTS::T::forEachSeq(
      A.root(), [&](const VertexId &H, const ChunkRef<VertexId> &Tl) {
        EA.emplace_back(H, Tl.get());
      });
  DtCTS::T::forEachSeq(
      B.root(), [&](const VertexId &H, const ChunkRef<VertexId> &Tl) {
        EB.emplace_back(H, Tl.get());
      });
  if (EA.size() != EB.size())
    return false;
  for (size_t I = 0; I < EA.size(); ++I)
    if (EA[I].first != EB[I].first ||
        !chunksIdentical(EA[I].second, EB[I].second))
      return false;
  return true;
}

inline bool graphsIdentical(const Graph &A, const Graph &B) {
  std::vector<std::pair<VertexId, const DtCTS *>> VA, VB;
  Graph::VT::forEachSeq(A.root(), [&](const VertexId &V, const DtCTS &S) {
    VA.emplace_back(V, &S);
  });
  Graph::VT::forEachSeq(B.root(), [&](const VertexId &V, const DtCTS &S) {
    VB.emplace_back(V, &S);
  });
  if (VA.size() != VB.size())
    return false;
  for (size_t I = 0; I < VA.size(); ++I)
    if (VA[I].first != VB[I].first ||
        !setsIdentical(*VA[I].second, *VB[I].second))
      return false;
  return true;
}

inline bool shardedIdentical(ShardedGraphStore &A, ShardedGraphStore &B) {
  auto Ea = A.acquire(), Eb = B.acquire();
  if (Ea.numShards() != Eb.numShards() || Ea.numEdges() != Eb.numEdges())
    return false;
  for (size_t S = 0; S < Ea.numShards(); ++S)
    if (!graphsIdentical(Ea.shard(S), Eb.shard(S)))
      return false;
  return true;
}

//===----------------------------------------------------------------------===
// Deterministic batch schedules.
//===----------------------------------------------------------------------===

/// One deterministic ingest schedule: insert batches with every third a
/// delete drawn from the previous batch's distribution (so deletes hit
/// real edges).
using BatchList = std::vector<std::pair<bool, std::vector<EdgePair>>>;

inline BatchList makeBatches(size_t NumBatches, size_t BatchSize,
                             VertexId Universe, uint64_t Seed) {
  BatchList Out;
  for (size_t B = 0; B < NumBatches; ++B) {
    bool Insert = (B % 3) != 2;
    uint64_t S = Seed + (Insert ? B : B - 1);
    std::vector<EdgePair> E(BatchSize);
    for (size_t I = 0; I < BatchSize; ++I) {
      uint64_t H = hashAt(S, I);
      E[I] = {VertexId(H % Universe), VertexId((H >> 20) % Universe)};
    }
    Out.emplace_back(Insert, std::move(E));
  }
  return Out;
}

inline DurabilityOptions optsFor(const std::string &Dir,
                                 uint64_t Every = 0) {
  DurabilityOptions O;
  O.Dir = Dir;
  O.CheckpointEveryBatches = Every;
  return O;
}

} // namespace dtest
} // namespace aspen

#endif // ASPEN_TESTS_DURABLE_TEST_UTIL_H
