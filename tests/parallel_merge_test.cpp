//===- tests/parallel_merge_test.cpp - Parallel merge byte-identity -------===//
//
// Differential tests for the within-shard parallel ingest paths: the
// parallel group-routing in unionBC/diffBC, the work-weighted fork
// decisions in pam/tree.h, and the parallel per-group builds in the
// sharded store's mergeShard must all produce results *byte-identical*
// to the sequential reference — same tree shapes, same chunk payload
// headers, same encoded bytes. Each test runs the same operation twice,
// once under the normal scheduler and once under setSequentialMode (the
// sequential head-walk loop and inline forks), on the batch shapes that
// stress the parallel machinery: single-hot-vertex skew, zipf skew,
// interleaved territories, and delete-heavy batches.
//
// On a single-worker pool the parallel gates never open and both runs
// take the sequential path (the comparison is then trivially true); the
// multi-core CI runners provide the real coverage. BatchParCutoff is
// lowered so even these test-sized batches route through the parallel
// grouping when workers are available.
//
//===----------------------------------------------------------------------===//

#include "ctree/ctree.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "store/sharded_graph.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace aspen;

namespace {

using CTS = CTreeSet<VertexId, DeltaByteCodec>;
using P64 = ChunkPayload<VertexId>;

/// Lower the parallel-routing cutoff for the duration of a test so
/// test-sized batches exercise the probe/group path.
struct BatchCutoffGuard {
  size_t Saved;
  explicit BatchCutoffGuard(size_t Cutoff) : Saved(CTS::BatchParCutoff) {
    CTS::BatchParCutoff = Cutoff;
  }
  ~BatchCutoffGuard() { CTS::BatchParCutoff = Saved; }
};

/// Run \p Fn with the scheduler forced sequential, restoring after.
template <class F> auto runSequential(const F &Fn) {
  setSequentialMode(true);
  auto R = Fn();
  setSequentialMode(false);
  return R;
}

bool chunksIdentical(const P64 *A, const P64 *B) {
  if (!A || !B)
    return A == B;
  return A->Count == B->Count && A->Bytes == B->Bytes &&
         A->First == B->First && A->Last == B->Last &&
         std::memcmp(A->data(), B->data(), A->Bytes) == 0;
}

/// Byte-level equality of two C-trees: identical prefix payloads and, in
/// order, identical (head, tail payload) entries. Chunk payloads carry
/// their encoded bytes, so memcmp equality here means the two trees
/// serialize identically.
bool setsIdentical(const CTS &A, const CTS &B) {
  if (!chunksIdentical(A.prefix(), B.prefix()))
    return false;
  std::vector<std::pair<VertexId, const P64 *>> EA, EB;
  CTS::T::forEachSeq(A.root(), [&](const VertexId &H,
                                   const ChunkRef<VertexId> &Tl) {
    EA.emplace_back(H, Tl.get());
  });
  CTS::T::forEachSeq(B.root(), [&](const VertexId &H,
                                   const ChunkRef<VertexId> &Tl) {
    EB.emplace_back(H, Tl.get());
  });
  if (EA.size() != EB.size())
    return false;
  for (size_t I = 0; I < EA.size(); ++I)
    if (EA[I].first != EB[I].first ||
        !chunksIdentical(EA[I].second, EB[I].second))
      return false;
  return true;
}

/// Byte-level equality of two graph snapshots: same vertex sequence with
/// byte-identical edge sets.
bool graphsIdentical(const Graph &A, const Graph &B) {
  std::vector<std::pair<VertexId, const CTS *>> VA, VB;
  Graph::VT::forEachSeq(A.root(), [&](const VertexId &V, const CTS &S) {
    VA.emplace_back(V, &S);
  });
  Graph::VT::forEachSeq(B.root(), [&](const VertexId &V, const CTS &S) {
    VB.emplace_back(V, &S);
  });
  if (VA.size() != VB.size())
    return false;
  for (size_t I = 0; I < VA.size(); ++I)
    if (VA[I].first != VB[I].first ||
        !setsIdentical(*VA[I].second, *VB[I].second))
      return false;
  return true;
}

std::vector<VertexId> sortedUnique(std::vector<VertexId> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

/// Zipf-ish values: heavy mass on small values, long tail up to Range.
std::vector<VertexId> zipfValues(size_t N, VertexId Range, uint64_t Seed) {
  std::vector<VertexId> V(N);
  for (size_t I = 0; I < N; ++I) {
    uint64_t H = hashAt(Seed, I);
    // Inverse-rank skew: value ~ Range / (1 + rank), rank uniform.
    V[I] = VertexId(Range / (1 + H % 1024)) + VertexId(H % 7);
  }
  return sortedUnique(std::move(V));
}

//===----------------------------------------------------------------------===
// C-tree level: unionBC/diffBC group routing.
//===----------------------------------------------------------------------===

class CTreeDifferential : public ::testing::Test {
protected:
  CTS buildBase() {
    std::vector<VertexId> E(200000);
    for (size_t I = 0; I < E.size(); ++I)
      E[I] = VertexId(hashAt(11, I) % 1000000);
    return CTS::fromUnsorted(std::move(E));
  }
};

TEST_F(CTreeDifferential, UnionSkewedBatch) {
  BatchCutoffGuard G(64);
  CTS Base = buildBase();
  // All batch elements inside one narrow window: few head territories,
  // large groups — the worst case for the sequential head walk.
  std::vector<VertexId> Hot(50000);
  for (size_t I = 0; I < Hot.size(); ++I)
    Hot[I] = VertexId(500000 + hashAt(13, I) % 4096);
  CTS Batch = CTS::fromUnsorted(sortedUnique(std::move(Hot)));

  CTS Par = CTS::setUnion(Base, Batch);
  CTS Seq = runSequential([&] { return CTS::setUnion(Base, Batch); });
  EXPECT_TRUE(Par.checkInvariants());
  EXPECT_TRUE(setsIdentical(Par, Seq));
}

TEST_F(CTreeDifferential, UnionZipfBatch) {
  BatchCutoffGuard G(64);
  CTS Base = buildBase();
  CTS Batch = CTS::fromUnsorted(zipfValues(60000, 1000000, 17));

  CTS Par = CTS::setUnion(Base, Batch);
  CTS Seq = runSequential([&] { return CTS::setUnion(Base, Batch); });
  EXPECT_TRUE(Par.checkInvariants());
  EXPECT_TRUE(setsIdentical(Par, Seq));
}

TEST_F(CTreeDifferential, UnionInterleavedBatch) {
  BatchCutoffGuard G(64);
  CTS Base = buildBase();
  // Every 3rd value over the whole range: touches nearly every head.
  std::vector<VertexId> E;
  for (VertexId V = 1; V < 300000; V += 3)
    E.push_back(V);
  CTS Batch = CTS::fromUnsorted(std::move(E));

  CTS Par = CTS::setUnion(Base, Batch);
  CTS Seq = runSequential([&] { return CTS::setUnion(Base, Batch); });
  EXPECT_TRUE(Par.checkInvariants());
  EXPECT_TRUE(setsIdentical(Par, Seq));
}

TEST_F(CTreeDifferential, DifferenceDeleteHeavy) {
  BatchCutoffGuard G(64);
  CTS Base = buildBase();
  // Subtrahend drawn mostly from elements actually present.
  std::vector<VertexId> Sub;
  Base.forEachSeq([&](VertexId V) {
    if (hash64(V) % 10 < 6)
      Sub.push_back(V);
  });
  CTS Del = CTS::fromUnsorted(std::move(Sub));

  CTS Par = CTS::setDifference(Base, Del);
  CTS Seq = runSequential([&] { return CTS::setDifference(Base, Del); });
  EXPECT_TRUE(Par.checkInvariants());
  EXPECT_TRUE(setsIdentical(Par, Seq));
}

//===----------------------------------------------------------------------===
// Graph level: single-hot-vertex batches through insertEdges/deleteEdges
// exercise the work-weighted pam forks (tiny vertex trees, huge edge
// sets) on top of the C-tree group routing.
//===----------------------------------------------------------------------===

TEST(GraphDifferential, SingleHotVertexInsert) {
  BatchCutoffGuard G(64);
  auto In = rmatGraphEdges(18, 4, 5);
  Graph Base = Graph::fromEdges(VertexId(1) << 18, In);

  const VertexId Hot = 7;
  std::vector<EdgePair> Batch(100000);
  for (size_t I = 0; I < Batch.size(); ++I)
    Batch[I] = {Hot, VertexId(hashAt(23, I) % (VertexId(1) << 20))};

  Graph Par = Base.insertEdges(Batch);
  Graph Seq = runSequential([&] { return Base.insertEdges(Batch); });
  EXPECT_TRUE(Par.checkInvariants());
  EXPECT_TRUE(graphsIdentical(Par, Seq));
}

TEST(GraphDifferential, SingleHotVertexDelete) {
  BatchCutoffGuard G(64);
  const VertexId Hot = 3;
  std::vector<EdgePair> Build(120000);
  for (size_t I = 0; I < Build.size(); ++I)
    Build[I] = {Hot, VertexId(hashAt(29, I) % (VertexId(1) << 20))};
  Graph Base = Graph::fromEdges(VertexId(1) << 20, Build);

  // Delete-heavy: remove ~2/3 of the hot vertex's edges.
  std::vector<EdgePair> Del;
  for (size_t I = 0; I < Build.size(); ++I)
    if (I % 3 != 0)
      Del.push_back(Build[I]);

  Graph Par = Base.deleteEdges(Del);
  Graph Seq = runSequential([&] { return Base.deleteEdges(Del); });
  EXPECT_TRUE(Par.checkInvariants());
  EXPECT_TRUE(graphsIdentical(Par, Seq));
}

TEST(GraphDifferential, FewHeavyVerticesWorkWeightedForks) {
  BatchCutoffGuard G(64);
  // 8 vertices, ~40k edges each: node counts stay far below SeqCutoff,
  // so only the work-weighted Par decisions can fork these merges.
  std::vector<EdgePair> Build;
  for (VertexId V = 0; V < 8; ++V)
    for (size_t I = 0; I < 40000; ++I)
      Build.push_back({V, VertexId(hashAt(31 + V, I) % (VertexId(1) << 19))});
  Graph Base = Graph::fromEdges(8, Build);

  std::vector<EdgePair> Batch;
  for (VertexId V = 0; V < 8; ++V)
    for (size_t I = 0; I < 30000; ++I)
      Batch.push_back(
          {V, VertexId(hashAt(101 + V, I) % (VertexId(1) << 19))});

  Graph Par = Base.insertEdges(Batch);
  Graph Seq = runSequential([&] { return Base.insertEdges(Batch); });
  EXPECT_TRUE(Par.checkInvariants());
  EXPECT_TRUE(graphsIdentical(Par, Seq));

  Graph DPar = Par.deleteEdges(Build);
  Graph DSeq = runSequential([&] { return Par.deleteEdges(Build); });
  EXPECT_TRUE(DPar.checkInvariants());
  EXPECT_TRUE(graphsIdentical(DPar, DSeq));
}

//===----------------------------------------------------------------------===
// Sharded store: one shard forces the whole batch through a single
// mergeShard call — its parallel per-group builds and the grouped merge
// below them must match the sequential store state byte for byte.
//===----------------------------------------------------------------------===

TEST(ShardedDifferential, OneShardSkewedBatch) {
  BatchCutoffGuard G(64);
  const VertexId N = VertexId(1) << 16;
  auto Build = dedupEdges(symmetrize(rmatGraphEdges(14, 4, 9)));

  const VertexId Hot = 42;
  std::vector<EdgePair> Batch(80000);
  for (size_t I = 0; I < Batch.size(); ++I)
    Batch[I] = {Hot, VertexId(hashAt(43, I) % N)};

  ShardedGraphStore Par(1, N, Build);
  Par.insertBatch(Batch);
  ShardedGraphStore Seq(1, N, Build);
  runSequential([&] { return Seq.insertBatch(Batch); });

  auto RP = Par.acquire();
  auto RS = Seq.acquire();
  ASSERT_EQ(RP.numShards(), RS.numShards());
  EXPECT_TRUE(graphsIdentical(RP.shard(0), RS.shard(0)));

  Par.deleteBatch(Batch);
  runSequential([&] { return Seq.deleteBatch(Batch); });
  auto DP = Par.acquire();
  auto DS = Seq.acquire();
  EXPECT_TRUE(graphsIdentical(DP.shard(0), DS.shard(0)));
}

} // namespace
