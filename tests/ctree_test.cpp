//===- tests/ctree_test.cpp - C-tree tests --------------------------------===//
//
// Correctness of the paper's core data structure: construction invariants
// (heads chosen by hash, prefix/tail placement, count augmentation),
// queries, and the batch set algebra cross-checked against std::set,
// parameterized over chunk sizes and codecs.
//
//===----------------------------------------------------------------------===//

#include "ctree/ctree.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace aspen;

namespace {

using CT = CTreeSet<uint32_t, DeltaByteCodec>;
using CTRaw = CTreeSet<uint32_t, RawCodec>;

std::vector<uint32_t> sortedUnique(std::vector<uint32_t> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

std::vector<uint32_t> randomKeys(size_t N, uint64_t Seed, uint32_t Range) {
  std::vector<uint32_t> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = uint32_t(hashAt(Seed, I) % Range);
  return Out;
}

int64_t liveNodes() { return NodePool<CT::Node>::liveCount(); }

} // namespace

TEST(CTreeLayout, CompressedEdgeNodeIs48Bytes) {
  // The paper reports 48 bytes per compressed edge-tree node.
  EXPECT_LE(sizeof(CT::Node), 48u);
}

TEST(CTreeBasic, EmptyTree) {
  CT T;
  EXPECT_TRUE(T.empty());
  EXPECT_EQ(T.size(), 0u);
  EXPECT_FALSE(T.contains(0));
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), std::vector<uint32_t>{});
}

TEST(CTreeBasic, BuildSmall) {
  std::vector<uint32_t> E = {1, 5, 9, 100, 1000};
  CT T = CT::buildSorted(E.data(), E.size());
  EXPECT_EQ(T.size(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), E);
  for (uint32_t X : E)
    EXPECT_TRUE(T.contains(X));
  EXPECT_FALSE(T.contains(2));
  EXPECT_FALSE(T.contains(0));
  EXPECT_FALSE(T.contains(2000));
}

TEST(CTreeBasic, BuildLargeDense) {
  auto E = sortedUnique(randomKeys(50000, 1, 1u << 20));
  CT T = CT::buildSorted(E.data(), E.size());
  EXPECT_EQ(T.size(), E.size());
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.toVector(), E);
}

TEST(CTreeBasic, ExpectedChunkStatistics) {
  // With n elements and chunk parameter b, expect ~n/b heads (Lemma 3.1).
  CT::BuildParams P{63};
  auto E = sortedUnique(randomKeys(200000, 2, 1u << 24));
  CT T = CT::buildSorted(E.data(), E.size(), P);
  double ExpectHeads = double(E.size()) / 64.0;
  EXPECT_GT(double(T.numHeads()), 0.5 * ExpectHeads);
  EXPECT_LT(double(T.numHeads()), 2.0 * ExpectHeads);
}

TEST(CTreeBasic, ContainsExhaustive) {
  auto E = sortedUnique(randomKeys(3000, 3, 20000));
  CT T = CT::buildSorted(E.data(), E.size());
  std::set<uint32_t> Ref(E.begin(), E.end());
  for (uint32_t X = 0; X < 20000; X += 7)
    ASSERT_EQ(T.contains(X), Ref.count(X) > 0) << X;
}

TEST(CTreeBasic, CopySemantics) {
  int64_t Base = liveNodes();
  {
    auto E = sortedUnique(randomKeys(10000, 4, 1u << 20));
    CT A = CT::buildSorted(E.data(), E.size());
    CT B = A; // O(1) snapshot
    EXPECT_EQ(B.size(), A.size());
    CT C;
    C = B;
    EXPECT_EQ(C.toVector(), E);
    CT D = std::move(B);
    EXPECT_EQ(D.size(), E.size());
  }
  EXPECT_EQ(liveNodes(), Base);
}

TEST(CTreeBasic, FromUnsortedDeduplicates) {
  std::vector<uint32_t> E = {5, 1, 5, 3, 1, 9, 3};
  CT T = CT::fromUnsorted(E);
  EXPECT_EQ(T.toVector(), (std::vector<uint32_t>{1, 3, 5, 9}));
}

TEST(CTreeTraversal, IndexedMatchesOrder) {
  auto E = sortedUnique(randomKeys(30000, 5, 1u << 22));
  CT T = CT::buildSorted(E.data(), E.size());
  std::vector<uint32_t> ByIndex(E.size(), ~0u);
  T.forEachIndexed([&](size_t I, uint32_t V) { ByIndex[I] = V; });
  EXPECT_EQ(ByIndex, E);
}

TEST(CTreeTraversal, ParallelCoversAll) {
  auto E = sortedUnique(randomKeys(30000, 6, 1u << 22));
  CT T = CT::buildSorted(E.data(), E.size());
  std::atomic<uint64_t> Sum{0}, Count{0};
  T.forEachPar([&](uint32_t V) {
    Sum.fetch_add(V, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
  });
  uint64_t RefSum = 0;
  for (uint32_t V : E)
    RefSum += V;
  EXPECT_EQ(Count.load(), E.size());
  EXPECT_EQ(Sum.load(), RefSum);
}

TEST(CTreeTraversal, IterCondEarlyExit) {
  auto E = sortedUnique(randomKeys(5000, 7, 1u << 20));
  CT T = CT::buildSorted(E.data(), E.size());
  size_t Stop = E.size() / 3;
  std::vector<uint32_t> Seen;
  bool Finished = T.iterCond([&](uint32_t V) {
    Seen.push_back(V);
    return Seen.size() < Stop;
  });
  EXPECT_FALSE(Finished);
  EXPECT_EQ(Seen.size(), Stop);
  EXPECT_TRUE(std::equal(Seen.begin(), Seen.end(), E.begin()));
}

TEST(CTreeMemory, DeltaSmallerThanRawOnClusteredKeys) {
  // Clustered ids compress well under difference encoding (Table 2).
  std::vector<uint32_t> E;
  for (uint32_t I = 0; I < 100000; ++I)
    E.push_back(I * 2);
  CT D = CT::buildSorted(E.data(), E.size());
  CTRaw R = CTRaw::buildSorted(E.data(), E.size());
  EXPECT_LT(D.memoryBytes() * 2, R.memoryBytes());
}

TEST(CTreeMemory, FewerNodesThanElements) {
  CT::BuildParams P{127};
  auto E = sortedUnique(randomKeys(100000, 8, 1u << 24));
  CT T = CT::buildSorted(E.data(), E.size(), P);
  // ~n/b tree nodes versus n nodes for the uncompressed tree.
  EXPECT_LT(T.numHeads() * 20, E.size());
}

//===----------------------------------------------------------------------===
// Set algebra, parameterized over (chunk size, seed).
//===----------------------------------------------------------------------===

class CTreeSetOps
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {
protected:
  void SetUp() override {
    // Chunk size b -> head mask b-1 (expected chunk length == b), now a
    // per-tree construction parameter rather than process-global state.
    P.HeadMask = std::get<0>(GetParam()) - 1;
    Seed = std::get<1>(GetParam());
  }
  CT::BuildParams P;
  uint64_t Seed = 0;
};

TEST_P(CTreeSetOps, UnionMatchesReference) {
  auto A = sortedUnique(randomKeys(4000, Seed, 30000));
  auto B = sortedUnique(randomKeys(4000, Seed + 100, 30000));
  CT TA = CT::buildSorted(A.data(), A.size(), P);
  CT TB = CT::buildSorted(B.data(), B.size(), P);
  CT U = CT::setUnion(TA, TB);
  std::set<uint32_t> Ref(A.begin(), A.end());
  Ref.insert(B.begin(), B.end());
  ASSERT_TRUE(U.checkInvariants(P));
  EXPECT_EQ(U.toVector(), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  // Inputs survive (value semantics).
  EXPECT_EQ(TA.toVector(), A);
  EXPECT_EQ(TB.toVector(), B);
}

TEST_P(CTreeSetOps, DifferenceMatchesReference) {
  auto A = sortedUnique(randomKeys(5000, Seed + 1, 20000));
  auto B = sortedUnique(randomKeys(5000, Seed + 101, 20000));
  CT TA = CT::buildSorted(A.data(), A.size(), P);
  CT TB = CT::buildSorted(B.data(), B.size(), P);
  CT D = CT::setDifference(TA, TB);
  std::vector<uint32_t> Ref;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(Ref));
  ASSERT_TRUE(D.checkInvariants(P));
  EXPECT_EQ(D.toVector(), Ref);
}

TEST_P(CTreeSetOps, IntersectMatchesReference) {
  auto A = sortedUnique(randomKeys(5000, Seed + 2, 20000));
  auto B = sortedUnique(randomKeys(5000, Seed + 102, 20000));
  CT TA = CT::buildSorted(A.data(), A.size(), P);
  CT TB = CT::buildSorted(B.data(), B.size(), P);
  CT I = CT::setIntersect(TA, TB);
  std::vector<uint32_t> Ref;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::back_inserter(Ref));
  ASSERT_TRUE(I.checkInvariants(P));
  EXPECT_EQ(I.toVector(), Ref);
}

TEST_P(CTreeSetOps, MultiInsertDeleteSequence) {
  int64_t Base = liveNodes();
  int64_t BaseBytes = liveCountedBytes();
  {
    std::set<uint32_t> Ref;
    CT T;
    for (int Round = 0; Round < 10; ++Round) {
      auto Batch =
          randomKeys(1 + hashAt(Seed, Round) % 3000, Seed * 7 + Round, 15000);
      if (Round % 3 != 2) {
        T = T.multiInsert(Batch, P);
        Ref.insert(Batch.begin(), Batch.end());
      } else {
        T = T.multiDelete(Batch, P);
        for (uint32_t K : Batch)
          Ref.erase(K);
      }
      ASSERT_TRUE(T.checkInvariants(P)) << "round " << Round;
      ASSERT_EQ(T.size(), Ref.size()) << "round " << Round;
      ASSERT_EQ(T.toVector(),
                std::vector<uint32_t>(Ref.begin(), Ref.end()))
          << "round " << Round;
    }
  }
  EXPECT_EQ(liveNodes(), Base) << "leaked tree nodes";
  EXPECT_EQ(liveCountedBytes(), BaseBytes) << "leaked chunk bytes";
}

TEST_P(CTreeSetOps, SnapshotSurvivesUpdates) {
  auto A = sortedUnique(randomKeys(8000, Seed + 3, 40000));
  CT V1 = CT::buildSorted(A.data(), A.size(), P);
  CT Snapshot = V1; // O(1)
  auto Batch = randomKeys(4000, Seed + 200, 40000);
  CT V2 = V1.multiInsert(Batch, P);
  CT V3 = V2.multiDelete(std::vector<uint32_t>(A.begin(), A.begin() + 100), P);
  EXPECT_EQ(Snapshot.toVector(), A) << "old snapshot must be unchanged";
  EXPECT_TRUE(V3.checkInvariants(P));
}

TEST_P(CTreeSetOps, UnionDisjointRanges) {
  // Non-overlapping key ranges exercise the join2/prefix-stitching paths.
  std::vector<uint32_t> A, B;
  for (uint32_t I = 0; I < 3000; ++I)
    A.push_back(I);
  for (uint32_t I = 10000; I < 13000; ++I)
    B.push_back(I);
  CT TA = CT::buildSorted(A.data(), A.size(), P);
  CT TB = CT::buildSorted(B.data(), B.size(), P);
  CT U1 = CT::setUnion(TA, TB);
  CT U2 = CT::setUnion(TB, TA);
  auto All = A;
  All.insert(All.end(), B.begin(), B.end());
  EXPECT_EQ(U1.toVector(), All);
  EXPECT_EQ(U2.toVector(), All);
  ASSERT_TRUE(U1.checkInvariants(P));
  ASSERT_TRUE(U2.checkInvariants(P));
  // Difference that removes the entire low range.
  CT D = CT::setDifference(U1, TA);
  EXPECT_EQ(D.toVector(), B);
  ASSERT_TRUE(D.checkInvariants(P));
}

TEST_P(CTreeSetOps, SelfOperations) {
  auto A = sortedUnique(randomKeys(3000, Seed + 4, 20000));
  CT TA = CT::buildSorted(A.data(), A.size(), P);
  CT U = CT::setUnion(TA, TA);
  EXPECT_EQ(U.toVector(), A);
  CT I = CT::setIntersect(TA, TA);
  EXPECT_EQ(I.toVector(), A);
  CT D = CT::setDifference(TA, TA);
  EXPECT_TRUE(D.empty());
}

TEST_P(CTreeSetOps, SingleElementOps) {
  CT T;
  std::set<uint32_t> Ref;
  for (int I = 0; I < 200; ++I) {
    uint32_t K = uint32_t(hashAt(Seed + 5, I) % 500);
    if (I % 4 == 3) {
      T = T.remove(K, P);
      Ref.erase(K);
    } else {
      T = T.insert(K, P);
      Ref.insert(K);
    }
    ASSERT_EQ(T.size(), Ref.size());
  }
  EXPECT_EQ(T.toVector(), std::vector<uint32_t>(Ref.begin(), Ref.end()));
  EXPECT_TRUE(T.checkInvariants(P));
}

INSTANTIATE_TEST_SUITE_P(
    ChunkSizesAndSeeds, CTreeSetOps,
    ::testing::Combine(::testing::Values(2, 8, 32, 128, 512),
                       ::testing::Values(1, 2, 3)));

//===----------------------------------------------------------------------===
// Raw-codec instantiation sanity (the "No DE" configuration).
//===----------------------------------------------------------------------===

TEST(CTreeRawCodec, SetOpsMatchReference) {
  auto A = sortedUnique(randomKeys(4000, 900, 30000));
  auto B = sortedUnique(randomKeys(4000, 901, 30000));
  CTRaw TA = CTRaw::buildSorted(A.data(), A.size());
  CTRaw TB = CTRaw::buildSorted(B.data(), B.size());
  CTRaw U = CTRaw::setUnion(TA, TB);
  std::set<uint32_t> Ref(A.begin(), A.end());
  Ref.insert(B.begin(), B.end());
  ASSERT_TRUE(U.checkInvariants());
  EXPECT_EQ(U.toVector(), std::vector<uint32_t>(Ref.begin(), Ref.end()));
}

TEST(CTreeStress, LargeUnionThroughput) {
  // Moderate-size sanity run of the batch-update path used by the graph.
  auto A = sortedUnique(randomKeys(200000, 910, 1u << 24));
  auto B = sortedUnique(randomKeys(200000, 911, 1u << 24));
  CT TA = CT::buildSorted(A.data(), A.size());
  CT TB = CT::buildSorted(B.data(), B.size());
  CT U = CT::setUnion(std::move(TA), std::move(TB));
  std::vector<uint32_t> Ref;
  std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                 std::back_inserter(Ref));
  EXPECT_EQ(U.size(), Ref.size());
  EXPECT_EQ(U.toVector(), Ref);
}
