//===- tests/hybrid_set_test.cpp - Degree-adaptive hybrid edge sets -------===//
//
// The hybrid representation (graph/hybrid_set.h): degree-class boundaries
// and migration across them, membership against std::set in every class,
// sidecar refcount sharing across functional versions, the reserved-
// sentinel fallback, differential equality of all ten algorithms on
// hybrid vs pure-chunked views, and threshold-crossing churn through the
// versioned and sharded stores (including the flat refresh path).
//
//===----------------------------------------------------------------------===//

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/cc.h"
#include "algorithms/kcore.h"
#include "algorithms/local_cluster.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/triangle_count.h"
#include "algorithms/two_hop.h"
#include "gen/generators.h"
#include "graph/versioned_graph.h"
#include "store/sharded_graph.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace aspen;

namespace {

using HS = HybridEdgeSetT<uint32_t, DeltaByteCodec>;
using CS = CTreeSet<uint32_t, DeltaByteCodec>;

/// Small thresholds so modest test sets exercise all three classes.
HybridParams testParams() {
  HybridParams P;
  P.LogB = 4; // b = 16
  P.InlineMax = 8;
  P.HotMin = 64;
  return P;
}

std::vector<uint32_t> sortedUnique(std::vector<uint32_t> V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

std::vector<uint32_t> randomKeys(size_t N, uint64_t Seed, uint32_t Range) {
  std::vector<uint32_t> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = uint32_t(hashAt(Seed, I) % Range);
  return Out;
}

std::vector<EdgePair> randomBatch(VertexId N, size_t K, uint64_t Seed) {
  return dedupEdges(symmetrize(uniformRandomEdges(N, K, Seed)));
}

/// Pin the canonical (sequential) schedule for bit-exactness assertions
/// on float-accumulating algorithms (see sharded_graph_test.cpp).
struct SequentialScope {
  SequentialScope() { setSequentialMode(true); }
  ~SequentialScope() { setSequentialMode(false); }
};

} // namespace

//===----------------------------------------------------------------------===
// Degree classes and membership.
//===----------------------------------------------------------------------===

TEST(HybridSet, ClassBoundaries) {
  HybridParams P = testParams();
  // Exactly InlineMax elements: inline. One more: chunked. HotMin: hot.
  for (size_t N : {size_t(0), size_t(1), size_t(8), size_t(9), size_t(63),
                   size_t(64), size_t(200)}) {
    std::vector<uint32_t> E(N);
    for (size_t I = 0; I < N; ++I)
      E[I] = uint32_t(3 * I + 1);
    HS S = HS::buildSorted(E.data(), E.size(), P);
    ASSERT_EQ(S.size(), N);
    ASSERT_TRUE(S.checkInvariants(P)) << "N=" << N;
    HybridClass Expect = N <= P.InlineMax ? HybridClass::Inline
                         : N >= P.HotMin  ? HybridClass::Hot
                                          : HybridClass::Chunked;
    EXPECT_EQ(int(S.degreeClass()), int(Expect)) << "N=" << N;
    EXPECT_EQ(S.sidecar() != nullptr, Expect == HybridClass::Hot);
    EXPECT_EQ(S.hasFastProbe(), Expect == HybridClass::Hot);
    EXPECT_EQ(S.toVector(), E);
  }
}

TEST(HybridSet, ContainsMatchesReferenceInEveryClass) {
  HybridParams P = testParams();
  for (size_t N : {size_t(5), size_t(40), size_t(500)}) {
    auto E = sortedUnique(randomKeys(N, 17 + N, uint32_t(N * 8)));
    HS S = HS::buildSorted(E.data(), E.size(), P);
    std::set<uint32_t> Ref(E.begin(), E.end());
    for (uint32_t X = 0; X < uint32_t(N * 8); ++X)
      ASSERT_EQ(S.contains(X), Ref.count(X) > 0)
          << "N=" << N << " X=" << X;
  }
}

TEST(HybridSet, CursorAndTraversalAgreeAcrossClasses) {
  HybridParams P = testParams();
  for (size_t N : {size_t(3), size_t(30), size_t(300)}) {
    auto E = sortedUnique(randomKeys(N, 29 + N, uint32_t(N * 16)));
    HS S = HS::buildSorted(E.data(), E.size(), P);
    std::vector<uint32_t> ByCursor;
    for (auto C = S.cursor(); !C.done(); C.advance())
      ByCursor.push_back(C.value());
    EXPECT_EQ(ByCursor, E);
    std::vector<uint32_t> ByIndexed(E.size(), ~0u);
    S.forEachIndexed([&](size_t I, uint32_t V) { ByIndexed[I] = V; });
    EXPECT_EQ(ByIndexed, E);
    size_t Stop = E.size() / 2 + 1;
    std::vector<uint32_t> Seen;
    S.iterCond([&](uint32_t V) {
      Seen.push_back(V);
      return Seen.size() < Stop;
    });
    EXPECT_EQ(Seen.size(), std::min(Stop, E.size()));
  }
}

TEST(HybridSet, ViewOutlivesInlineSource) {
  // Inline views copy elements by value: reassigning the source set must
  // not invalidate a previously taken view (the flat-snapshot pages rely
  // on this under the page-sharing refresh).
  HybridParams P = testParams();
  std::vector<uint32_t> E = {2, 4, 6, 8};
  HS S = HS::buildSorted(E.data(), E.size(), P);
  HS::View V = S.view();
  S = HS(); // drop the source
  EXPECT_EQ(V.size(), 4u);
  EXPECT_TRUE(V.contains(6));
  EXPECT_FALSE(V.contains(5));
  EXPECT_EQ(V.toVector(), E);
}

//===----------------------------------------------------------------------===
// Class migration through the set algebra, with leak accounting.
//===----------------------------------------------------------------------===

TEST(HybridSet, ChurnAcrossAllThresholds) {
  HybridParams P = testParams();
  int64_t BaseBytes = liveCountedBytes();
  int64_t BaseNodes = NodePool<HS::Node>::liveCount();
  {
    HS S;
    std::set<uint32_t> Ref;
    auto CheckAll = [&](int Round) {
      ASSERT_EQ(S.size(), Ref.size()) << "round " << Round;
      ASSERT_TRUE(S.checkInvariants(P)) << "round " << Round;
      ASSERT_EQ(S.toVector(),
                std::vector<uint32_t>(Ref.begin(), Ref.end()))
          << "round " << Round;
    };
    for (int Round = 0; Round < 30; ++Round) {
      size_t K = 1 + size_t(hashAt(5, Round) % 40);
      auto Batch = randomKeys(K, 100 + Round, 600);
      if (Round % 4 == 3) {
        S = S.multiDelete(Batch, P);
        for (uint32_t V : Batch)
          Ref.erase(V);
      } else {
        S = S.multiInsert(Batch, P);
        Ref.insert(Batch.begin(), Batch.end());
      }
      CheckAll(Round);
    }
    // Force the full arc: grow far past HotMin, then shrink to inline,
    // then to empty.
    std::vector<uint32_t> Big(300);
    for (size_t I = 0; I < Big.size(); ++I)
      Big[I] = uint32_t(1000 + I);
    S = S.multiInsert(Big, P);
    Ref.insert(Big.begin(), Big.end());
    EXPECT_EQ(int(S.degreeClass()), int(HybridClass::Hot));
    CheckAll(100);

    std::vector<uint32_t> All(Ref.begin(), Ref.end());
    std::vector<uint32_t> Keep(All.begin(), All.begin() + 5);
    std::vector<uint32_t> Del(All.begin() + 5, All.end());
    S = S.multiDelete(Del, P);
    for (uint32_t V : Del)
      Ref.erase(V);
    EXPECT_EQ(int(S.degreeClass()), int(HybridClass::Inline));
    CheckAll(101);

    S = S.multiDelete(Keep, P);
    EXPECT_TRUE(S.empty());
  }
  EXPECT_EQ(liveCountedBytes(), BaseBytes) << "leaked chunks or sidecars";
  EXPECT_EQ(NodePool<HS::Node>::liveCount(), BaseNodes)
      << "leaked tree nodes";
}

TEST(HybridSet, SetAlgebraMatchesReference) {
  HybridParams P = testParams();
  // Mixed classes on both sides: inline x chunked, chunked x hot, ...
  const size_t Sizes[] = {4, 30, 120};
  for (size_t NA : Sizes) {
    for (size_t NB : Sizes) {
      auto A = sortedUnique(randomKeys(NA, NA * 31, 400));
      auto B = sortedUnique(randomKeys(NB, NB * 37 + 1, 400));
      HS TA = HS::buildSorted(A.data(), A.size(), P);
      HS TB = HS::buildSorted(B.data(), B.size(), P);

      std::vector<uint32_t> RefU, RefD, RefI;
      std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                     std::back_inserter(RefU));
      std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                          std::back_inserter(RefD));
      std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                            std::back_inserter(RefI));

      HS U = HS::setUnion(TA, TB);
      HS D = HS::setDifference(TA, TB);
      HS I = HS::setIntersect(TA, TB);
      ASSERT_TRUE(U.checkInvariants(P)) << NA << "x" << NB;
      ASSERT_TRUE(D.checkInvariants(P)) << NA << "x" << NB;
      ASSERT_TRUE(I.checkInvariants(P)) << NA << "x" << NB;
      EXPECT_EQ(U.toVector(), RefU) << NA << "x" << NB;
      EXPECT_EQ(D.toVector(), RefD) << NA << "x" << NB;
      EXPECT_EQ(I.toVector(), RefI) << NA << "x" << NB;
      // Inputs survive (value semantics).
      EXPECT_EQ(TA.toVector(), A);
      EXPECT_EQ(TB.toVector(), B);
    }
  }
}

TEST(HybridSet, SentinelElementFallsBackToChunkScan) {
  // The sidecar reserves ~0 as the empty-slot marker; a hot set that
  // actually contains it must decline the sidecar and stay correct
  // through chunk scans.
  HybridParams P = testParams();
  std::vector<uint32_t> E(100);
  for (size_t I = 0; I + 1 < E.size(); ++I)
    E[I] = uint32_t(5 * I);
  E.back() = ~0u;
  std::sort(E.begin(), E.end());
  HS S = HS::buildSorted(E.data(), E.size(), P);
  // degreeClass() reports the representation: with the sidecar declined,
  // a hot-degree set stays in the chunked class.
  ASSERT_GE(S.size(), size_t(P.HotMin));
  EXPECT_EQ(int(S.degreeClass()), int(HybridClass::Chunked));
  EXPECT_EQ(S.sidecar(), nullptr);
  EXPECT_FALSE(S.hasFastProbe());
  EXPECT_TRUE(S.checkInvariants(P));
  EXPECT_TRUE(S.contains(~0u));
  EXPECT_TRUE(S.contains(0));
  EXPECT_FALSE(S.contains(7));
  // Removing the sentinel restores the sidecar on the next migration.
  HS S2 = S.multiDelete({~0u}, P);
  EXPECT_NE(S2.sidecar(), nullptr);
  EXPECT_TRUE(S2.checkInvariants(P));
}

TEST(HybridSet, SidecarSharedAcrossVersions) {
  HybridParams P = testParams();
  auto E = sortedUnique(randomKeys(200, 77, 4000));
  HS V1 = HS::buildSorted(E.data(), E.size(), P);
  ASSERT_NE(V1.sidecar(), nullptr);
  // A copy shares the sidecar (refcount bump, no rebuild).
  HS V2 = V1;
  EXPECT_EQ(V1.sidecar(), V2.sidecar());
  // An update rebuilds it functionally; the old version keeps the old one.
  HS V3 = V1.multiInsert(randomKeys(50, 78, 8000), P);
  EXPECT_NE(V3.sidecar(), nullptr);
  EXPECT_NE(V3.sidecar(), V1.sidecar());
  EXPECT_EQ(V1.sidecar(), V2.sidecar());
  EXPECT_TRUE(V1.checkInvariants(P));
  EXPECT_TRUE(V3.checkInvariants(P));
}

//===----------------------------------------------------------------------===
// Graph-level: sidecar sharing through functional snapshots, and the
// containsEdge probe surface.
//===----------------------------------------------------------------------===

namespace {

HybridGraph hybridGraph(VertexId N, const std::vector<EdgePair> &Edges,
                        HybridParams P) {
  return HybridGraph::fromEdges(N, Edges, P);
}

} // namespace

TEST(HybridGraph, UntouchedHotVertexSharesSidecarAcrossSnapshots) {
  HybridParams P = testParams();
  const VertexId N = 256;
  // Vertex 0 is hot: edges to every odd vertex id and beyond HotMin.
  std::vector<EdgePair> Edges;
  for (VertexId V = 1; V < 200; ++V) {
    Edges.push_back({0, V});
    Edges.push_back({V, 0});
  }
  HybridGraph G1 = hybridGraph(N, Edges, P);
  const EdgeSidecar<VertexId> *S1 = G1.findVertex(0).sidecar();
  ASSERT_NE(S1, nullptr);

  // A batch that does not touch vertex 0: the new snapshot must share
  // the exact sidecar object (and the old snapshot stays intact).
  HybridGraph G2 = G1.insertEdges({{201, 202}, {202, 201}});
  EXPECT_EQ(G2.findVertex(0).sidecar(), S1);

  // A batch that grows vertex 0 rebuilds its sidecar functionally.
  HybridGraph G3 = G2.insertEdges({{0, 240}, {240, 0}});
  const EdgeSidecar<VertexId> *S3 = G3.findVertex(0).sidecar();
  ASSERT_NE(S3, nullptr);
  EXPECT_NE(S3, S1);
  EXPECT_EQ(G2.findVertex(0).sidecar(), S1);
  EXPECT_TRUE(G3.checkInvariants());
}

TEST(HybridGraph, ContainsEdgeProbeSurface) {
  HybridParams P = testParams();
  const VertexId N = 512;
  auto Edges = randomBatch(N, 6000, 11);
  HybridGraph G = hybridGraph(N, Edges, P);
  Graph GC = Graph::fromEdges(N, Edges);

  TreeGraphView<HybridEdgeSet> HV(G);
  FlatSnapshotT<HybridEdgeSet> FS(G);
  FlatGraphView<HybridEdgeSet> FV(FS);
  static_assert(HasContainsEdgeV<TreeGraphView<HybridEdgeSet>>);
  static_assert(HasContainsEdgeV<FlatGraphView<HybridEdgeSet>>);
  static_assert(HasContainsEdgeV<TreeGraphView<CS>>);

  for (VertexId U = 0; U < N; U += 3) {
    auto Adj = GC.findVertex(U).toVector();
    std::set<VertexId> Ref(Adj.begin(), Adj.end());
    for (VertexId X = 0; X < N; X += 7) {
      ASSERT_EQ(G.containsEdge(U, X), Ref.count(X) > 0)
          << U << "->" << X;
      ASSERT_EQ(HV.containsEdge(U, X), Ref.count(X) > 0);
      ASSERT_EQ(FV.containsEdge(U, X), Ref.count(X) > 0);
    }
    ASSERT_EQ(G.hasFastProbe(U), G.degree(U) >= P.HotMin);
  }
}

TEST(HybridGraph, IsWithinTwoHopsMatchesMaterializedTwoHop) {
  HybridParams P = testParams();
  const VertexId N = 200;
  auto Edges = randomBatch(N, 900, 13);
  HybridGraph G = hybridGraph(N, Edges, P);
  Graph GC = Graph::fromEdges(N, Edges);
  TreeGraphView<HybridEdgeSet> HV(G);
  TreeGraphView<CS> CV(GC);
  for (VertexId Src : {VertexId(0), VertexId(7), VertexId(100)}) {
    auto Hops = twoHop(CV, Src);
    std::set<VertexId> Ref(Hops.begin(), Hops.end());
    for (VertexId T = 0; T < N; ++T) {
      ASSERT_EQ(isWithinTwoHops(HV, Src, T), Ref.count(T) > 0)
          << Src << "~" << T;
      ASSERT_EQ(isWithinTwoHops(CV, Src, T), Ref.count(T) > 0)
          << Src << "~" << T;
    }
  }
}

//===----------------------------------------------------------------------===
// Differential: all ten algorithms bit-identical on hybrid vs chunked.
//===----------------------------------------------------------------------===

namespace {

/// Both views over the same logical graph: hybrid (with hot vertices
/// under the test thresholds) and the default pure-chunked representation.
struct DiffPair {
  Graph Chunked;
  HybridGraph Hybrid;
  DiffPair(VertexId N, const std::vector<EdgePair> &Edges)
      : Chunked(Graph::fromEdges(N, Edges)),
        Hybrid(HybridGraph::fromEdges(N, Edges, testParams())) {}
};

} // namespace

TEST(HybridDifferential, AllAlgorithmsMatchChunkedExactly) {
  const VertexId N = 1 << 10;
  DiffPair G(N, randomBatch(N, 8000, 21));
  TreeGraphView<CS> SV(G.Chunked);
  TreeGraphView<HybridEdgeSet> DV(G.Hybrid);

  SequentialScope Seq;
  EXPECT_EQ(bfs(SV, 3), bfs(DV, 3));
  EXPECT_EQ(bfsDistances(SV, 3), bfsDistances(DV, 3));
  EXPECT_EQ(connectedComponents(SV), connectedComponents(DV));
  EXPECT_EQ(kCore(SV), kCore(DV));
  EXPECT_EQ(pageRank(SV), pageRank(DV));
  EXPECT_EQ(triangleCount(SV), triangleCount(DV));
  EXPECT_EQ(mis(SV), mis(DV));
  EXPECT_EQ(bc(SV, 5), bc(DV, 5));
  EXPECT_EQ(twoHop(SV, 11), twoHop(DV, 11));
  {
    auto LS = localCluster(SV, 17);
    auto LD = localCluster(DV, 17);
    EXPECT_EQ(LS.Cluster, LD.Cluster);
    EXPECT_EQ(LS.Conductance, LD.Conductance);
  }
}

TEST(HybridDifferential, AllAlgorithmsMatchOnFlatViews) {
  const VertexId N = 1 << 10;
  DiffPair G(N, randomBatch(N, 8000, 22));
  FlatSnapshot FSC(G.Chunked);
  FlatGraphView<CS> SV(FSC);
  FlatSnapshotT<HybridEdgeSet> FSH(G.Hybrid);
  FlatGraphView<HybridEdgeSet> DV(FSH);

  SequentialScope Seq;
  EXPECT_EQ(bfs(SV, 3), bfs(DV, 3));
  EXPECT_EQ(bfsDistances(SV, 3), bfsDistances(DV, 3));
  EXPECT_EQ(connectedComponents(SV), connectedComponents(DV));
  EXPECT_EQ(kCore(SV), kCore(DV));
  EXPECT_EQ(pageRank(SV), pageRank(DV));
  EXPECT_EQ(triangleCount(SV), triangleCount(DV));
  EXPECT_EQ(mis(SV), mis(DV));
  EXPECT_EQ(bc(SV, 5), bc(DV, 5));
  EXPECT_EQ(twoHop(SV, 11), twoHop(DV, 11));
  {
    auto LS = localCluster(SV, 17);
    auto LD = localCluster(DV, 17);
    EXPECT_EQ(LS.Cluster, LD.Cluster);
    EXPECT_EQ(LS.Conductance, LD.Conductance);
  }
}

TEST(HybridDifferential, IntegerAlgorithmsMatchUnderParallelism) {
  const VertexId N = 1 << 10;
  DiffPair G(N, randomBatch(N, 8000, 23));
  TreeGraphView<CS> SV(G.Chunked);
  TreeGraphView<HybridEdgeSet> DV(G.Hybrid);

  EXPECT_EQ(bfsDistances(SV, 3), bfsDistances(DV, 3));
  EXPECT_EQ(connectedComponents(SV), connectedComponents(DV));
  EXPECT_EQ(kCore(SV), kCore(DV));
  EXPECT_EQ(triangleCount(SV), triangleCount(DV));
  EXPECT_EQ(mis(SV), mis(DV));
  EXPECT_EQ(twoHop(SV, 11), twoHop(DV, 11));
}

//===----------------------------------------------------------------------===
// Threshold-crossing churn through the stores: one designated vertex is
// driven past HotMin and back below InlineMax while the store replays the
// same batches into a pure-chunked reference; every epoch must agree,
// including through acquireFlat()'s refresh path.
//===----------------------------------------------------------------------===

namespace {

/// Batches driving vertex \p Hub across both thresholds and back.
std::vector<std::pair<bool, std::vector<EdgePair>>>
churnSchedule(VertexId N, VertexId Hub) {
  std::vector<std::pair<bool, std::vector<EdgePair>>> Out;
  auto HubBatch = [&](VertexId Lo, VertexId Hi) {
    std::vector<EdgePair> B;
    for (VertexId V = Lo; V < Hi; ++V) {
      if (V == Hub)
        continue;
      B.push_back({Hub, V});
      B.push_back({V, Hub});
    }
    return B;
  };
  // Grow the hub past HotMin (64 under testParams) in two steps, with
  // unrelated noise batches interleaved, then delete back below
  // InlineMax, then a final regrow to mid (chunked) degree.
  Out.push_back({true, HubBatch(1, 40)});
  Out.push_back({true, randomBatch(N, 300, 91)});
  Out.push_back({true, HubBatch(40, 120)});
  Out.push_back({true, randomBatch(N, 300, 92)});
  Out.push_back({false, HubBatch(4, 120)});
  Out.push_back({false, randomBatch(N, 200, 92)});
  Out.push_back({true, HubBatch(150, 170)});
  return Out;
}

} // namespace

TEST(HybridStores, VersionedChurnAcrossThresholds) {
  HybridParams P = testParams();
  const VertexId N = 256, Hub = 0;
  VersionedHybridGraph Store(HybridGraph::fromEdges(N, {}, P));
  Graph Ref = Graph::fromEdges(N, {});

  for (auto &[IsInsert, Batch] : churnSchedule(N, Hub)) {
    if (IsInsert) {
      Store.insertEdgesBatch(Batch);
      Ref = Ref.insertEdges(Batch);
    } else {
      Store.deleteEdgesBatch(Batch);
      Ref = Ref.deleteEdges(Batch);
    }
    auto V = Store.acquire();
    const HybridGraph &G = V.graph();
    ASSERT_TRUE(G.checkInvariants());
    ASSERT_EQ(G.numEdges(), Ref.numEdges());
    for (VertexId U = 0; U < N; ++U)
      ASSERT_EQ(G.findVertex(U).toVector(), Ref.findVertex(U).toVector())
          << "vertex " << U;
    // Hot-class bookkeeping on the hub follows its current degree.
    HybridEdgeSet HubSet = G.findVertex(Hub);
    EXPECT_EQ(HubSet.hasFastProbe(), HubSet.size() >= P.HotMin);
    // The flat path must agree epoch to epoch (refresh or rebuild).
    auto Flat = Store.acquireFlat();
    ASSERT_EQ(Flat->numEdges(), Ref.numEdges());
    FlatGraphView<HybridEdgeSet> FV(*Flat);
    for (VertexId U = 0; U < N; ++U) {
      std::vector<VertexId> Adj;
      FV.mapNeighbors(U, [&](VertexId X) { Adj.push_back(X); });
      ASSERT_EQ(Adj, Ref.findVertex(U).toVector()) << "flat vertex " << U;
    }
  }
  // The incremental refresh path must actually have been exercised.
  EXPECT_GT(Store.flatStats().Refreshes, 0u);
}

TEST(HybridStores, ShardedChurnAcrossThresholds) {
  HybridParams P = testParams();
  const VertexId N = 256, Hub = 0;
  HybridShardedGraphStore Store(4, N, {}, P);
  EXPECT_EQ(Store.buildParams().HotMin, P.HotMin);
  Graph Ref = Graph::fromEdges(N, {});

  for (auto &[IsInsert, Batch] : churnSchedule(N, Hub)) {
    if (IsInsert) {
      Store.insertBatch(Batch);
      Ref = Ref.insertEdges(Batch);
    } else {
      Store.deleteBatch(Batch);
      Ref = Ref.deleteEdges(Batch);
    }
    auto E = Store.acquire();
    ASSERT_EQ(E.numEdges(), Ref.numEdges());
    auto V = E.view();
    for (VertexId U = 0; U < N; ++U) {
      std::vector<VertexId> Adj;
      for (auto C = V.neighborCursor(U); !C.done(); C.advance())
        Adj.push_back(C.value());
      ASSERT_EQ(Adj, Ref.findVertex(U).toVector()) << "vertex " << U;
      ASSERT_EQ(V.containsEdge(U, Hub),
                Ref.edgesView(U).contains(Hub));
    }
    EXPECT_EQ(V.hasFastProbe(Hub), V.degree(Hub) >= P.HotMin);
    // Flat epoch agreement (composed hot-flat view).
    auto FE = Store.acquireFlat();
    auto FV = FE->view();
    ASSERT_EQ(FV.numEdges(), Ref.numEdges());
    for (VertexId U = 0; U < N; ++U) {
      std::vector<VertexId> Adj;
      FV.mapNeighbors(U, [&](VertexId X) { Adj.push_back(X); });
      ASSERT_EQ(Adj, Ref.findVertex(U).toVector()) << "flat vertex " << U;
      ASSERT_EQ(FV.containsEdge(U, Hub),
                Ref.edgesView(U).contains(Hub));
    }
  }
}

TEST(HybridStores, NoLeaksThroughVersionChains) {
  int64_t BaseBytes = liveCountedBytes();
  {
    HybridParams P = testParams();
    const VertexId N = 128;
    VersionedHybridGraph Store(HybridGraph::fromEdges(N, {}, P));
    for (int B = 0; B < 8; ++B) {
      Store.insertEdgesBatch(randomBatch(N, 400, 700 + B));
      auto V = Store.acquire();
      ASSERT_TRUE(V.graph().checkInvariants());
      (void)Store.acquireFlat();
    }
    for (int B = 0; B < 4; ++B)
      Store.deleteEdgesBatch(randomBatch(N, 300, 700 + B));
  }
  EXPECT_EQ(liveCountedBytes(), BaseBytes)
      << "leaked chunks or sidecars through the version chain";
}
