//===- tests/concurrency_test.cpp - Concurrent readers/writer fuzzing -----===//
//
// Stress tests for the paper's core concurrency claims (Section 6): any
// number of readers on acquired versions run concurrently with a single
// writer; no reader is ever blocked, torn, or sees a partially-applied
// batch; memory is reclaimed exactly.
//
//===----------------------------------------------------------------------===//

#include "algorithms/bfs.h"
#include "gen/generators.h"
#include "graph/versioned_graph.h"
#include "serve/server.h"
#include "store/sharded_graph.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace aspen;

namespace {

/// Batches constructed so that every version's edge count identifies the
/// exact prefix of batches applied: batch i consists of edges with a
/// disjoint id range, so numEdges is a strict witness of atomicity.
std::vector<EdgePair> disjointBatch(int I, size_t Size, VertexId N) {
  std::vector<EdgePair> Out;
  for (size_t J = 0; J < Size; ++J) {
    uint64_t Id = uint64_t(I) * Size + J;
    Out.push_back({VertexId(Id % N), VertexId((Id / N) % N)});
  }
  return Out;
}

} // namespace

TEST(Concurrency, ReadersSeeOnlyWholeBatches) {
  const VertexId N = 512;
  const size_t BatchSize = 128;
  const int NumBatches = 60;
  VersionedGraph VG(Graph::fromEdges(N, {}));
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    for (int B = 0; B < NumBatches; ++B)
      VG.insertEdgesBatch(disjointBatch(B, BatchSize, N));
    Done.store(true);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 4; ++R)
    Readers.emplace_back([&] {
      while (!Done.load()) {
        auto V = VG.acquire();
        uint64_t E = V.graph().numEdges();
        // Every batch is disjoint, so the count must be an exact multiple
        // of the batch size (no partially-visible batch).
        if (E % BatchSize != 0)
          Violations.fetch_add(1);
        // The version is immutable: re-reading gives the same count.
        if (V.graph().numEdges() != E)
          Violations.fetch_add(1);
      }
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_EQ(VG.acquire().graph().numEdges(),
            uint64_t(NumBatches) * BatchSize);
}

TEST(Concurrency, MixedInsertDeleteWithReaderValidation) {
  const VertexId N = 256;
  auto Fixed = dedupEdges(symmetrize(uniformRandomEdges(N, 2000, 1)));
  VersionedGraph VG(Graph::fromEdges(N, Fixed));
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  // The writer repeatedly inserts and deletes the same churn batch; the
  // fixed edge set is never touched, so every version contains it.
  auto Churn = dedupEdges(symmetrize(uniformRandomEdges(N, 300, 999)));
  std::vector<EdgePair> ChurnOnly;
  {
    std::set<EdgePair> FixedSet(Fixed.begin(), Fixed.end());
    for (const EdgePair &E : Churn)
      if (!FixedSet.count(E))
        ChurnOnly.push_back(E);
  }

  std::thread Writer([&] {
    for (int I = 0; I < 25; ++I) {
      VG.insertEdgesBatch(ChurnOnly);
      VG.deleteEdgesBatch(ChurnOnly);
    }
    Done.store(true);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&](){
      uint64_t FixedCount = Fixed.size();
      while (!Done.load()) {
        auto V = VG.acquire();
        uint64_t E = V.graph().numEdges();
        // Either all churn edges are present or none are.
        if (E != FixedCount && E != FixedCount + ChurnOnly.size())
          Violations.fetch_add(1);
        if (!V.graph().checkInvariants())
          Violations.fetch_add(1);
      }
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_EQ(VG.acquire().graph().numEdges(), Fixed.size());
}

TEST(Concurrency, FlatSnapshotsDuringUpdates) {
  const VertexId N = 256;
  auto Fixed = dedupEdges(symmetrize(uniformRandomEdges(N, 3000, 2)));
  VersionedGraph VG(Graph::fromEdges(N, Fixed));
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    RMatGenerator Stream(8, 777);
    for (int B = 0; B < 30; ++B)
      VG.insertEdgesBatch(Stream.edges(uint64_t(B) * 100, 100));
    Done.store(true);
  });

  std::thread Reader([&] {
    while (!Done.load()) {
      auto V = VG.acquire();
      FlatSnapshot FS(V.graph());
      // The flat snapshot must agree with the tree view of its version.
      if (FS.numEdges() != V.graph().numEdges())
        Violations.fetch_add(1);
      for (VertexId X = 0; X < N; X += 37)
        if (FS.degree(X) != V.graph().degree(X))
          Violations.fetch_add(1);
      // And it must support queries while newer versions appear.
      FlatGraphView FV(FS);
      bfs(FV, 0);
    }
  });

  Writer.join();
  Reader.join();
  EXPECT_EQ(Violations.load(), 0u);
}

TEST(Concurrency, QueriesOutliveReleasedVersions) {
  const VertexId N = 128;
  VersionedGraph VG(
      Graph::fromEdges(N, dedupEdges(symmetrize(uniformRandomEdges(
                              N, 1000, 3)))));
  // Acquire a version, let the writer race far ahead, then verify the old
  // version still answers correctly after many newer versions were
  // created and collected.
  auto Old = VG.acquire();
  uint64_t OldEdges = Old.graph().numEdges();
  auto OldAdj = Old.graph().findVertex(5).toVector();
  for (int I = 0; I < 50; ++I)
    VG.insertEdgesBatch(disjointBatch(I, 64, N));
  EXPECT_EQ(Old.graph().numEdges(), OldEdges);
  EXPECT_EQ(Old.graph().findVertex(5).toVector(), OldAdj);
  EXPECT_TRUE(Old.graph().checkInvariants());
}

TEST(Concurrency, ManyConcurrentLocalQueriesOnePerVersion) {
  // Many threads each pin their own version and run local queries while
  // the writer streams; versions differ but each must be self-consistent.
  const VertexId N = 512;
  VersionedGraph VG(
      Graph::fromEdges(N, dedupEdges(symmetrize(uniformRandomEdges(
                              N, 4000, 4)))));
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    for (int B = 0; B < 30; ++B)
      VG.insertEdgesBatch(disjointBatch(B, 50, N));
    Done.store(true);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 4; ++R)
    Readers.emplace_back([&, R] {
      uint64_t Q = 0;
      while (!Done.load()) {
        auto V = VG.acquire();
        // Sum of degrees must equal numEdges on any single version.
        uint64_t DegSum = 0;
        for (VertexId X = 0; X < N; ++X)
          DegSum += V.graph().degree(X);
        if (DegSum != V.graph().numEdges())
          Violations.fetch_add(1);
        ++Q;
      }
      (void)Q;
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
}

TEST(Concurrency, ShardedChurnReadersSeeAllOrNone) {
  // Sharded counterpart of MixedInsertDeleteWithReaderValidation: the
  // writer cycles a churn batch in and out of a 4-shard store while
  // readers assert that every acquired epoch contains either all churn
  // edges or none (batch atomicity across shards).
  const VertexId N = 256;
  auto Fixed = dedupEdges(symmetrize(uniformRandomEdges(N, 2000, 11)));
  ShardedGraphStore Store(4, N, Fixed);
  uint64_t FixedCount = Store.acquire().numEdges();
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  auto Churn = dedupEdges(symmetrize(uniformRandomEdges(N, 300, 888)));
  std::vector<EdgePair> ChurnOnly;
  {
    std::set<EdgePair> FixedSet(Fixed.begin(), Fixed.end());
    for (const EdgePair &E : Churn)
      if (!FixedSet.count(E))
        ChurnOnly.push_back(E);
  }

  std::thread Writer([&] {
    for (int I = 0; I < 25; ++I) {
      Store.insertBatch(ChurnOnly);
      Store.deleteBatch(ChurnOnly);
    }
    Done.store(true);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      while (!Done.load()) {
        auto E = Store.acquire();
        uint64_t Edges = E.numEdges();
        if (Edges != FixedCount && Edges != FixedCount + ChurnOnly.size())
          Violations.fetch_add(1);
        uint64_t ShardSum = 0;
        for (size_t S = 0; S < E.numShards(); ++S) {
          if (!E.shard(S).checkInvariants())
            Violations.fetch_add(1);
          ShardSum += E.shard(S).numEdges();
        }
        if (ShardSum != Edges)
          Violations.fetch_add(1);
      }
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_EQ(Store.acquire().numEdges(), FixedCount);
}

TEST(Concurrency, ShardedQueriesRunOnPinnedEpochs) {
  // Readers run BFS over pinned sharded epochs while writers stream; the
  // composed view must stay self-consistent for the lifetime of the pin.
  const VertexId N = 512;
  ShardedGraphStore Store(
      4, N, dedupEdges(symmetrize(uniformRandomEdges(N, 4000, 12))));
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    RMatGenerator Stream(9, 555);
    for (int B = 0; B < 30; ++B)
      Store.insertBatch(Stream.edges(uint64_t(B) * 100, 100));
    Done.store(true);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 2; ++R)
    Readers.emplace_back([&] {
      while (!Done.load()) {
        auto E = Store.acquire();
        auto V = E.view();
        uint64_t DegSum = 0;
        for (VertexId X = 0; X < V.numVertices(); ++X)
          DegSum += V.degree(X);
        if (DegSum != E.numEdges())
          Violations.fetch_add(1);
        bfs(V, 0);
      }
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
}

TEST(Concurrency, HotFlatReadersDuringIngest) {
  // Readers loop acquireFlat() — the store-maintained hot flat snapshot,
  // refreshed incrementally from the writer's digests — while the writer
  // streams disjoint batches. Every returned flat must be a consistent
  // whole-batch cut: edge count a multiple of the batch size and equal
  // to the sum of its slot degrees.
  // Universe big enough that each batch's touched set sits under the
  // refresh threshold: readers race against the incremental path, not
  // just full rebuilds.
  const VertexId N = 4096;
  const size_t BatchSize = 128;
  const int NumBatches = 40;
  VersionedGraph VG(Graph::fromEdges(N, {}));
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  std::thread Writer([&] {
    for (int B = 0; B < NumBatches; ++B)
      VG.insertEdgesBatch(disjointBatch(B, BatchSize, N));
    Done.store(true);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      while (!Done.load()) {
        auto FS = VG.acquireFlat();
        uint64_t E = FS->numEdges();
        if (E % BatchSize != 0)
          Violations.fetch_add(1);
        uint64_t DegSum = 0;
        for (VertexId V = 0; V < FS->numVertices(); ++V)
          DegSum += FS->degree(V);
        if (DegSum != E)
          Violations.fetch_add(1);
        FlatGraphView FV(*FS);
        bfs(FV, 0);
      }
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  auto Last = VG.acquireFlat();
  EXPECT_EQ(Last->numEdges(), uint64_t(NumBatches) * BatchSize);
  auto Stats = VG.flatStats();
  EXPECT_GE(Stats.Refreshes + Stats.Rebuilds, 1u);
}

TEST(Concurrency, ShardedHotFlatChurnSeesAllOrNone) {
  // Sharded counterpart: churn a batch in and out of a 4-shard store
  // while readers acquire hot flat epochs. Batch atomicity must survive
  // the flat rendering: every flat epoch contains all churn edges or
  // none, and its composed view's degrees sum to its edge count.
  const VertexId N = 256;
  auto Fixed = dedupEdges(symmetrize(uniformRandomEdges(N, 2000, 21)));
  ShardedGraphStore Store(4, N, Fixed);
  uint64_t FixedCount = Store.acquire().numEdges();
  std::atomic<bool> Done{false};
  std::atomic<uint64_t> Violations{0};

  auto Churn = dedupEdges(symmetrize(uniformRandomEdges(N, 300, 22)));
  std::vector<EdgePair> ChurnOnly;
  {
    std::set<EdgePair> FixedSet(Fixed.begin(), Fixed.end());
    for (const EdgePair &E : Churn)
      if (!FixedSet.count(E))
        ChurnOnly.push_back(E);
  }

  std::thread Writer([&] {
    for (int I = 0; I < 20; ++I) {
      Store.insertBatch(ChurnOnly);
      Store.deleteBatch(ChurnOnly);
    }
    Done.store(true);
  });

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&] {
      while (!Done.load()) {
        auto FE = Store.acquireFlat();
        uint64_t E = FE->NumEdges;
        if (E != FixedCount && E != FixedCount + ChurnOnly.size())
          Violations.fetch_add(1);
        auto V = FE->view();
        uint64_t DegSum = 0;
        for (VertexId X = 0; X < V.numVertices(); ++X)
          DegSum += V.degree(X);
        if (DegSum != E)
          Violations.fetch_add(1);
        bfs(V, 0);
      }
    });

  Writer.join();
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_EQ(Store.acquireFlat()->NumEdges, FixedCount);
}

TEST(Concurrency, ParallelSetOpsOnSharedInputs) {
  // Two application threads run set operations against the SAME shared
  // tree concurrently; shared subtrees are read-only so both must get
  // correct results.
  auto Keys = tabulate(20000, [](size_t I) {
    return uint32_t(hashAt(50, I) % 100000);
  });
  using CT = CTreeSet<uint32_t, DeltaByteCodec>;
  CT Shared = CT::fromUnsorted(Keys);
  std::vector<uint32_t> SortedKeys = Shared.toVector();

  std::atomic<uint64_t> Violations{0};
  auto Work = [&](uint64_t Seed) {
    for (int I = 0; I < 10; ++I) {
      auto Batch = tabulate(2000, [&](size_t J) {
        return uint32_t(hashAt(Seed + I, J) % 100000);
      });
      CT Mine = Shared.multiInsert(Batch);
      std::set<uint32_t> Ref(SortedKeys.begin(), SortedKeys.end());
      Ref.insert(Batch.begin(), Batch.end());
      if (Mine.size() != Ref.size())
        Violations.fetch_add(1);
      if (!Mine.checkInvariants())
        Violations.fetch_add(1);
    }
  };
  std::thread T1(Work, 60), T2(Work, 61), T3(Work, 62);
  T1.join();
  T2.join();
  T3.join();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_EQ(Shared.toVector(), SortedKeys) << "shared input unchanged";
}

namespace {

/// Deep unbalanced fork tree with tiny leaves: maximizes push/pop/steal
/// traffic on the Chase-Lev deques (every leaf is an independently
/// stealable job and the owner races thieves for the bottom entry).
uint64_t forkSum(uint64_t Lo, uint64_t Hi) {
  if (Hi - Lo <= 4) {
    uint64_t S = 0;
    for (uint64_t I = Lo; I < Hi; ++I)
      S += hash64(I) & 0xff;
    return S;
  }
  uint64_t Mid = Lo + (Hi - Lo) / 3 + 1; // unbalanced: steal-heavy
  uint64_t A = 0, B = 0;
  parallelDo([&] { A = forkSum(Lo, Mid); }, [&] { B = forkSum(Mid, Hi); });
  return A + B;
}

} // namespace

TEST(Concurrency, ChaseLevDequeStress) {
  // Many application threads hammer the scheduler with nested fork-join
  // work at steal-heavy grain sizes, each checking its deterministic
  // sum. Run under TSan in CI, this exercises every deque transition:
  // owner push/pop, popIfLocal rescinding, thief CAS races on the last
  // element, and cross-thread Job publication.
  const uint64_t N = 20000;
  uint64_t Expected = 0;
  for (uint64_t I = 0; I < N; ++I)
    Expected += hash64(I) & 0xff;

  std::atomic<uint64_t> Violations{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 6; ++T)
    Threads.emplace_back([&] {
      for (int Round = 0; Round < 8; ++Round)
        if (forkSum(0, N) != Expected)
          Violations.fetch_add(1);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
}

TEST(Concurrency, ChaseLevNestedParallelFor) {
  // Nested parallelFors with grain 1 from several registered threads:
  // band tasks of the inner loops interleave with outer-loop stealing,
  // so deques hold jobs from multiple nesting levels at once.
  std::atomic<uint64_t> Violations{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int Round = 0; Round < 4; ++Round) {
        std::atomic<uint64_t> Sum{0};
        parallelFor(
            0, 64,
            [&](size_t I) {
              std::atomic<uint64_t> Local{0};
              parallelFor(
                  0, 64,
                  [&](size_t J) {
                    Local.fetch_add(hash64(I * 64 + J) & 7);
                  },
                  1);
              Sum.fetch_add(Local.load() + I);
            },
            1);
        uint64_t Expected = 0;
        for (size_t I = 0; I < 64; ++I) {
          Expected += I;
          for (size_t J = 0; J < 64; ++J)
            Expected += hash64(I * 64 + J) & 7;
        }
        if (Sum.load() != Expected)
          Violations.fetch_add(1);
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Violations.load(), 0u);
}

TEST(Concurrency, ServingSessionsVersusIngestStress) {
  // The full serving stack under TSan: external tenants flood the
  // admission queue with queries (leased sessions, pinned tree + flat
  // epochs, lock-free acquireFlat fast path) while others stream write
  // batches through the coalescing ingest front. Every pinned epoch must
  // stay self-consistent; shedding is the only allowed failure mode.
  const VertexId N = 1 << 10;
  auto Fixed = dedupEdges(symmetrize(uniformRandomEdges(N, 3000, 17)));
  HybridShardedGraphStore Store(4, N, Fixed);
  SnapshotServer::Options O;
  O.Workers = 3;
  O.ReadQueueCap = 256;
  O.WriteQueueCap = 32;
  O.ReadsPerWrite = 4;
  SnapshotServer Server(Store, O);

  std::atomic<uint64_t> Violations{0};
  const size_t Tenants = 3, WriterThreads = 2;
  const size_t QueriesPer = 40, WritesPer = 12;
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < Tenants; ++T)
    Ts.emplace_back([&, T] {
      for (size_t I = 0; I < QueriesPer; ++I) {
        while (!Server.submitQuery([&](auto &QC) {
          // Tree pin and flat pin are separate epochs, but each must be
          // internally consistent (degree sum == its own edge count).
          auto &R = QC.snapshot();
          auto V = R.view();
          uint64_t Sum = 0;
          for (VertexId U = 0; U < N; ++U)
            Sum += V.degree(U);
          if (Sum != R.numEdges())
            Violations.fetch_add(1);
          auto F = QC.flat();
          if (F->view().numEdges() != F->NumEdges)
            Violations.fetch_add(1);
        }))
          std::this_thread::yield(); // shed: retry (bounded queue)
      }
    });
  for (size_t W = 0; W < WriterThreads; ++W)
    Ts.emplace_back([&, W] {
      for (size_t I = 0; I < WritesPer; ++I) {
        auto B = dedupEdges(symmetrize(
            uniformRandomEdges(N, 150, 9000 + W * WritesPer + I)));
        while (!(I % 2 ? Server.submitDelete(B) : Server.submitInsert(B)))
          std::this_thread::yield();
      }
    });
  for (auto &T : Ts)
    T.join();
  Server.drain();
  Server.stop();

  auto St = Server.stats();
  EXPECT_EQ(Violations.load(), 0u);
  EXPECT_EQ(St.QueriesDone, Tenants * QueriesPer);
  EXPECT_EQ(St.WritesDone, WriterThreads * WritesPer);
  EXPECT_EQ(St.QueryErrors, 0u);
  EXPECT_EQ(St.WriteErrors, 0u);
  EXPECT_EQ(Store.batchSeq(), uint64_t(WriterThreads * WritesPer));
}
