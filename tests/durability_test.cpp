//===- tests/durability_test.cpp - Fault-injected crash recovery ----------===//
//
// The durability subsystem's differential suite (DESIGN.md Section 7).
// Structure:
//
//   * Unit tests for the primitives: CRC32C vectors, failpoint
//     mechanics, WAL append/scan/torn-tail/poisoning, checkpoint
//     round-trip and corruption fallback.
//   * The randomized kill-point matrix: for every fault schedule
//     (crash before/inside/after WAL append, mid-checkpoint,
//     mid-truncate; torn writes; fsync failures; bit flips), ingest
//     until the injected fault fires, "crash" (destroy the store),
//     recover from the directory, and assert the recovered store is
//     *byte-identical* — chunk Count/Bytes/memcmp, as in
//     parallel_merge_test.cpp — to an uncrashed in-memory reference
//     that applied exactly the recovered prefix of batches. Run on
//     both the versioned and the sharded store.
//   * A concurrent ingest + background checkpoint test (TSan coverage)
//     asserting reopen reproduces the exact final state.
//
// Crash simulation is exception-based over unbuffered fd I/O: bytes
// written before a SimulatedCrash stay in the files exactly as a kill
// -9 after a partial write would leave them (util/failpoint.h).
//
//===----------------------------------------------------------------------===//

#include "durable_test_util.h"

#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/versioned_graph.h"
#include "store/checkpoint.h"
#include "store/durability.h"
#include "store/sharded_graph.h"
#include "store/wal.h"
#include "util/crc.h"
#include "util/failpoint.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace aspen;
using namespace aspen::dtest;

namespace {

using CTS = CTreeSet<VertexId, DeltaByteCodec>;
using P64 = ChunkPayload<VertexId>;

// The chunk-verbatim checkpoint path must be selected exactly for
// C-tree storage; everything else serializes elements.
static_assert(HasChunkStorageV<CTS>, "CTreeSet serializes chunk-verbatim");
static_assert(!HasChunkStorageV<UncompressedSet<VertexId>>,
              "UncompressedSet takes the element fallback");
static_assert(!HasChunkStorageV<HybridEdgeSet>,
              "HybridEdgeSet takes the element fallback");

// Shared helpers (TempDir, flipByteAt, the *Identical byte-comparison
// family, makeBatches, optsFor) live in durable_test_util.h — the
// replication suite uses the same bar for follower identity.

//===----------------------------------------------------------------------===
// CRC32C.
//===----------------------------------------------------------------------===

TEST(Crc32c, CheckValue) {
  // The canonical CRC32C check value of "123456789".
  const char *S = "123456789";
  EXPECT_EQ(crc32c(S, 9), 0xE3069283u);
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::vector<uint8_t> Buf(1337);
  for (size_t I = 0; I < Buf.size(); ++I)
    Buf[I] = uint8_t(hashAt(7, I));
  uint32_t Whole = crc32c(Buf.data(), Buf.size());
  for (size_t Cut : {size_t(0), size_t(1), size_t(8), size_t(513), Buf.size()}) {
    uint32_t Part = crc32c(Buf.data(), Cut);
    EXPECT_EQ(crc32c(Buf.data() + Cut, Buf.size() - Cut, Part), Whole);
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<uint8_t> Buf(256);
  for (size_t I = 0; I < Buf.size(); ++I)
    Buf[I] = uint8_t(I * 31);
  uint32_t Ref = crc32c(Buf.data(), Buf.size());
  for (size_t Bit : {size_t(0), size_t(77), size_t(2047)}) {
    Buf[Bit / 8] ^= uint8_t(1u << (Bit % 8));
    EXPECT_NE(crc32c(Buf.data(), Buf.size()), Ref);
    Buf[Bit / 8] ^= uint8_t(1u << (Bit % 8));
  }
}

//===----------------------------------------------------------------------===
// Failpoints.
//===----------------------------------------------------------------------===

TEST(Failpoint, HitIndexAndOneShot) {
  FailpointGuard G("t.site", FailAction::crash(), 1);
  FailAction A;
  EXPECT_FALSE(failpoints().check("t.site", A)); // hit 0: below index
  EXPECT_TRUE(failpoints().check("t.site", A));  // hit 1: triggers
  EXPECT_EQ(A.K, FailAction::Crash);
  EXPECT_FALSE(failpoints().check("t.site", A)); // spent (one-shot)
  EXPECT_FALSE(failpoints().check("other.site", A));
  EXPECT_EQ(failpoints().hits("t.site"), 3u);
}

TEST(Failpoint, GuardResetsRegistry) {
  { FailpointGuard G("leak.site", FailAction::crash()); }
  FailAction A;
  EXPECT_FALSE(failpoints().check("leak.site", A));
}

//===----------------------------------------------------------------------===
// WAL.
//===----------------------------------------------------------------------===

TEST(Wal, AppendScanRoundTrip) {
  TempDir D;
  std::string Path = D.path() + "/wal-0000000000000001.log";
  std::vector<EdgePair> B1{{1, 2}, {3, 4}}, B2{{5, 6}}, B3{};
  {
    WalLog L(Path, /*FsyncOnCommit=*/true);
    L.enqueue(WalKind::InsertBatch, 1, B1.data(), B1.size());
    L.enqueue(WalKind::DeleteBatch, 2, B2.data(), B2.size());
    L.sync(2); // one group commit covers both
    L.enqueue(WalKind::InsertBatch, 3, B3.data(), B3.size());
    L.sync(3);
    EXPECT_EQ(L.stats().Appends, 3u);
    EXPECT_EQ(L.stats().GroupCommits, 2u);
    EXPECT_EQ(L.durableSeq(), 3u);
  }
  std::vector<std::pair<uint64_t, std::vector<EdgePair>>> Got;
  std::vector<WalKind> Kinds;
  WalScanResult R = walScanSegment(Path, false, [&](const WalRecordView &V) {
    Got.emplace_back(V.Seq,
                     std::vector<EdgePair>(V.Edges, V.Edges + V.NumEdges));
    Kinds.push_back(V.Kind);
  });
  ASSERT_EQ(R.NumRecords, 3u);
  EXPECT_FALSE(R.Torn);
  EXPECT_EQ(R.MinSeq, 1u);
  EXPECT_EQ(R.MaxSeq, 3u);
  EXPECT_EQ(Got[0].second, B1);
  EXPECT_EQ(Got[1].second, B2);
  EXPECT_TRUE(Got[2].second.empty());
  EXPECT_EQ(Kinds[1], WalKind::DeleteBatch);
}

TEST(Wal, TornTailTruncatedOnOpen) {
  TempDir D;
  std::string Path = D.path() + "/wal-0000000000000001.log";
  std::vector<EdgePair> B{{9, 9}};
  {
    WalLog L(Path, true);
    L.enqueue(WalKind::InsertBatch, 1, B.data(), B.size());
    L.sync(1);
  }
  // A crash mid-append leaves trailing garbage.
  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(Fd, 0);
  const char Junk[] = "\x7f torn record tail";
  ASSERT_EQ(::write(Fd, Junk, sizeof(Junk)), ssize_t(sizeof(Junk)));
  ::close(Fd);

  WalScanResult R1 = walScanSegment(Path, /*TruncateTorn=*/true);
  EXPECT_EQ(R1.NumRecords, 1u);
  EXPECT_TRUE(R1.Torn);
  // After truncation the file is exactly the valid prefix again.
  WalScanResult R2 = walScanSegment(Path);
  EXPECT_EQ(R2.NumRecords, 1u);
  EXPECT_FALSE(R2.Torn);

  // And a WalLog reopened over it keeps appending where seq 1 left off.
  WalLog L(Path, true);
  EXPECT_EQ(L.durableSeq(), 1u);
  L.enqueue(WalKind::InsertBatch, 2, B.data(), B.size());
  L.sync(2);
  EXPECT_EQ(walScanSegment(Path).NumRecords, 2u);
}

TEST(Wal, ShortWritePoisonsAndRecoversPrefix) {
  TempDir D;
  std::string Path = D.path() + "/wal-0000000000000001.log";
  std::vector<EdgePair> B{{1, 2}, {3, 4}, {5, 6}};
  {
    WalLog L(Path, true);
    L.enqueue(WalKind::InsertBatch, 1, B.data(), B.size());
    L.sync(1);
    FailpointGuard G("wal.record.write", FailAction::shortWrite(11));
    L.enqueue(WalKind::InsertBatch, 2, B.data(), B.size());
    EXPECT_THROW(L.sync(2), SimulatedCrash);
    // Poisoned: nothing may be acknowledged past an unknown durable
    // prefix.
    EXPECT_THROW(L.enqueue(WalKind::InsertBatch, 3, B.data(), B.size()),
                 WalDeadError);
    EXPECT_THROW(L.sync(2), WalDeadError);
  }
  WalScanResult R = walScanSegment(Path, true);
  EXPECT_EQ(R.NumRecords, 1u);
  EXPECT_EQ(R.MaxSeq, 1u);
  EXPECT_TRUE(R.Torn);
}

TEST(Wal, BitFlipCaughtByChecksum) {
  TempDir D;
  std::string Path = D.path() + "/wal-0000000000000001.log";
  std::vector<EdgePair> B{{1, 2}, {3, 4}};
  {
    WalLog L(Path, true);
    L.enqueue(WalKind::InsertBatch, 1, B.data(), B.size());
    L.sync(1);
    // Flip one payload bit of the second record on its way to disk: the
    // write "succeeds" (media corruption), but the checksum must refuse
    // the record at scan time.
    FailpointGuard G("wal.record.write",
                     FailAction::bitFlip(8 * sizeof(detail::WalRecordHeader) +
                                         13));
    L.enqueue(WalKind::InsertBatch, 2, B.data(), B.size());
    L.sync(2);
  }
  WalScanResult R = walScanSegment(Path, true);
  EXPECT_EQ(R.NumRecords, 1u);
  EXPECT_TRUE(R.Torn);
}

//===----------------------------------------------------------------------===
// Checkpoints.
//===----------------------------------------------------------------------===

Graph buildTestGraph(size_t NumEdges, VertexId Universe, uint64_t Seed) {
  std::vector<EdgePair> E(NumEdges);
  for (size_t I = 0; I < NumEdges; ++I) {
    uint64_t H = hashAt(Seed, I);
    E[I] = {VertexId(H % Universe), VertexId((H >> 20) % Universe)};
  }
  return Graph::fromEdges(Universe, std::move(E));
}

TEST(Checkpoint, SnapshotRoundTripIsByteIdentical) {
  Graph G = buildTestGraph(20000, 5000, 11);
  std::vector<uint8_t> Stream;
  serializeSnapshot(G, Stream);
  ByteReader R(Stream.data(), Stream.size());
  Graph Back = deserializeSnapshot<CTS>(R, G.buildParams());
  EXPECT_TRUE(R.exhausted());
  EXPECT_TRUE(graphsIdentical(G, Back));
  EXPECT_EQ(G.numEdges(), Back.numEdges());
}

TEST(Checkpoint, FileRoundTripAndValidation) {
  TempDir D;
  Graph G = buildTestGraph(30000, 4000, 23);
  std::vector<std::vector<uint8_t>> Streams(1);
  serializeSnapshot(G, Streams[0]);
  writeCheckpointFile(D.path(), 42, 0, Streams, true);
  auto L = readCheckpointFile(D.path() + "/" + detail::ckptFileName(42));
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->Seq, 42u);
  ASSERT_EQ(L->ShardStreams.size(), 1u);
  EXPECT_EQ(L->ShardStreams[0], Streams[0]);
}

TEST(Checkpoint, CorruptionDetectedAndOlderUsed) {
  TempDir D;
  Graph G1 = buildTestGraph(5000, 2000, 3);
  Graph G2 = buildTestGraph(9000, 2000, 5);
  std::vector<std::vector<uint8_t>> S1(1), S2(1);
  serializeSnapshot(G1, S1[0]);
  serializeSnapshot(G2, S2[0]);
  writeCheckpointFile(D.path(), 1, 0, S1, true);
  writeCheckpointFile(D.path(), 2, 0, S2, true);
  std::string Newest = D.path() + "/" + detail::ckptFileName(2);
  flipByteAt(Newest, 100); // inside a data page: its CRC must catch it
  EXPECT_FALSE(readCheckpointFile(Newest).has_value());

  DurabilityOptions O;
  O.Dir = D.path();
  DurabilityEngine E(O);
  ASSERT_TRUE(E.recovered().Ckpt.has_value());
  EXPECT_EQ(E.recovered().Ckpt->Seq, 1u); // fell back past the corruption
}

//===----------------------------------------------------------------------===
// Durable versioned store: basics.
//===----------------------------------------------------------------------===

TEST(DurableVersioned, PersistAndReopenByteIdentical) {
  TempDir D;
  BatchList Batches = makeBatches(9, 300, 3000, 77);
  VersionedGraph Ref{Graph{}};
  {
    VersionedGraph St(optsFor(D.path()));
    for (auto &B : Batches) {
      if (B.first)
        St.insertEdgesBatch(B.second);
      else
        St.deleteEdgesBatch(B.second);
    }
    for (auto &B : Batches) {
      if (B.first)
        Ref.insertEdgesBatch(B.second);
      else
        Ref.deleteEdgesBatch(B.second);
    }
    EXPECT_TRUE(
        graphsIdentical(St.acquire().graph(), Ref.acquire().graph()));
  }
  VersionedGraph Re(optsFor(D.path()));
  EXPECT_EQ(Re.durability()->recovered().MaxSeq, Batches.size());
  EXPECT_TRUE(graphsIdentical(Re.acquire().graph(), Ref.acquire().graph()));

  // The reopened store keeps ingesting durably where the log left off.
  std::vector<EdgePair> More{{1, 7}, {2, 9}};
  Re.insertEdgesBatch(More);
  Ref.insertEdgesBatch(More);
  EXPECT_TRUE(graphsIdentical(Re.acquire().graph(), Ref.acquire().graph()));
}

TEST(DurableVersioned, CheckpointTrimsWalAndRecovers) {
  TempDir D;
  BatchList Batches = makeBatches(11, 250, 2500, 31);
  {
    VersionedGraph St(optsFor(D.path(), /*Every=*/4));
    for (auto &B : Batches) {
      if (B.first)
        St.insertEdgesBatch(B.second);
      else
        St.deleteEdgesBatch(B.second);
    }
    EXPECT_GE(St.durability()->lastCheckpointSeq(), 8u);
  }
  EXPECT_GE(countFilesWithPrefix(D.path(), "ckpt-"), 1u);
  // Segments fully covered by the newest checkpoint were trimmed; what
  // remains is the post-checkpoint suffix plus the fresh generation.
  EXPECT_LE(countFilesWithPrefix(D.path(), "wal-"), 3u);

  VersionedGraph Re(optsFor(D.path()));
  VersionedGraph Ref{Graph{}};
  for (auto &B : Batches) {
    if (B.first)
      Ref.insertEdgesBatch(B.second);
    else
      Ref.deleteEdgesBatch(B.second);
  }
  EXPECT_EQ(Re.durability()->recovered().MaxSeq, Batches.size());
  EXPECT_TRUE(graphsIdentical(Re.acquire().graph(), Ref.acquire().graph()));
}

TEST(DurableVersioned, RecoveryPrimesFlatForRefresh) {
  TempDir D;
  BatchList Batches = makeBatches(9, 60, 4000, 13);
  {
    VersionedGraph St(optsFor(D.path(), /*Every=*/6));
    for (auto &B : Batches) {
      if (B.first)
        St.insertEdgesBatch(B.second);
      else
        St.deleteEdgesBatch(B.second);
    }
  }
  // Recovery: checkpoint at 6, replay 7..9 recording digests, flat
  // primed from the checkpoint — so the first user acquireFlat() takes
  // the O(touched) refresh path, not a rebuild.
  VersionedGraph Re(optsFor(D.path()));
  FlatMaintenanceStats S0 = Re.flatStats();
  EXPECT_EQ(S0.Rebuilds, 1u); // the recovery priming itself
  EXPECT_EQ(S0.Refreshes, 0u);
  auto F = Re.acquireFlat();
  FlatMaintenanceStats S1 = Re.flatStats();
  EXPECT_EQ(S1.Rebuilds, 1u);
  EXPECT_EQ(S1.Refreshes, 1u);
  // And the refreshed flat agrees with the authoritative tree.
  auto V = Re.acquire();
  uint64_t DegTree = 0, DegFlat = 0;
  for (VertexId X = 0; X < V.graph().vertexUniverse(); ++X)
    DegTree += V.graph().degree(X);
  FlatGraphView FV(*F);
  for (VertexId X = 0; X < FV.numVertices(); ++X)
    DegFlat += FV.degree(X);
  EXPECT_EQ(DegTree, DegFlat);
}

//===----------------------------------------------------------------------===
// The randomized kill-point matrix (both stores).
//===----------------------------------------------------------------------===

struct FaultSchedule {
  const char *Site;
  FailAction Action;
  uint64_t Hit;
  /// BitFlip models silent media corruption: records at/after the flip
  /// may be lost even though they were acknowledged (single-copy WAL).
  /// Every other fault keeps the acked prefix fully recoverable.
  bool AckedGuaranteed;
};

std::vector<FaultSchedule> killPointMatrix(uint64_t Seed) {
  std::vector<FaultSchedule> S;
  size_t I = 0;
  auto Rnd = [&](uint64_t M) { return hashAt(Seed, I++) % M; };
  for (const char *Site :
       {"wal.enqueue.before", "wal.sync.before", "wal.record.write",
        "wal.fsync", "ckpt.page.write", "ckpt.manifest.write", "ckpt.fsync",
        "ckpt.rename.before", "ckpt.rename.after", "ckpt.dirsync",
        "wal.trim.before", "wal.trim.mid", "wal.trim.after"})
    S.push_back({Site, FailAction::crash(), Rnd(3), true});
  for (int K = 0; K < 4; ++K)
    S.push_back({"wal.record.write", FailAction::shortWrite(Rnd(64)),
                 Rnd(3), true});
  S.push_back({"ckpt.page.write", FailAction::shortWrite(100), 0, true});
  S.push_back({"ckpt.manifest.write", FailAction::shortWrite(9), 0, true});
  S.push_back({"wal.fsync", FailAction::failFsync(), Rnd(3), true});
  S.push_back({"ckpt.fsync", FailAction::failFsync(), 0, true});
  for (int K = 0; K < 3; ++K)
    S.push_back({"wal.record.write", FailAction::bitFlip(Rnd(2048)),
                 Rnd(3), false});
  return S;
}

TEST(DurableVersioned, KillPointMatrixRecoversByteIdentical) {
  BatchList Batches = makeBatches(12, 200, 2500, 101);
  for (const FaultSchedule &FS : killPointMatrix(0xD00D)) {
    SCOPED_TRACE(std::string(FS.Site) + " action=" +
                 std::to_string(int(FS.Action.K)) + " hit=" +
                 std::to_string(FS.Hit));
    TempDir D;
    size_t Acked = 0;
    {
      VersionedGraph St(optsFor(D.path(), /*Every=*/5));
      FailpointGuard G(FS.Site, FS.Action, FS.Hit);
      try {
        for (auto &B : Batches) {
          if (B.first)
            St.insertEdgesBatch(B.second);
          else
            St.deleteEdgesBatch(B.second);
          ++Acked;
        }
      } catch (const std::exception &) {
        // Simulated crash (or poisoned log): stop ingesting, drop the
        // store, recover from the directory below.
      }
    }
    failpoints().reset();

    VersionedGraph Re(optsFor(D.path()));
    uint64_t R = Re.durability()->recovered().MaxSeq;
    if (FS.AckedGuaranteed) {
      EXPECT_GE(R, Acked) << "acknowledged batch lost";
    }
    EXPECT_LE(R, Batches.size());

    VersionedGraph Ref{Graph{}};
    for (size_t B = 0; B < R; ++B) {
      if (Batches[B].first)
        Ref.insertEdgesBatch(Batches[B].second);
      else
        Ref.deleteEdgesBatch(Batches[B].second);
    }
    EXPECT_TRUE(
        graphsIdentical(Re.acquire().graph(), Ref.acquire().graph()))
        << "recovered store differs from the uncrashed reference at seq "
        << R;
  }
}

TEST(DurableSharded, KillPointMatrixRecoversByteIdentical) {
  const size_t Shards = 4;
  const VertexId Universe = 2500;
  BatchList Batches = makeBatches(12, 200, Universe, 202);
  for (const FaultSchedule &FS : killPointMatrix(0xBEEF)) {
    SCOPED_TRACE(std::string(FS.Site) + " action=" +
                 std::to_string(int(FS.Action.K)) + " hit=" +
                 std::to_string(FS.Hit));
    TempDir D;
    size_t Acked = 0;
    {
      ShardedGraphStore St(optsFor(D.path(), /*Every=*/5), Shards, Universe);
      FailpointGuard G(FS.Site, FS.Action, FS.Hit);
      try {
        for (auto &B : Batches) {
          if (B.first)
            St.insertBatch(B.second);
          else
            St.deleteBatch(B.second);
          ++Acked;
        }
      } catch (const std::exception &) {
      }
    }
    failpoints().reset();

    ShardedGraphStore Re(optsFor(D.path()), Shards, Universe);
    uint64_t R = Re.durability()->recovered().MaxSeq;
    if (FS.AckedGuaranteed) {
      EXPECT_GE(R, Acked) << "acknowledged batch lost";
    }
    EXPECT_LE(R, Batches.size());
    EXPECT_EQ(Re.batchSeq(), R);

    ShardedGraphStore Ref(Shards, Universe);
    for (size_t B = 0; B < R; ++B) {
      if (Batches[B].first)
        Ref.insertBatch(Batches[B].second);
      else
        Ref.deleteBatch(Batches[B].second);
    }
    EXPECT_TRUE(shardedIdentical(Re, Ref))
        << "recovered store differs from the uncrashed reference at seq "
        << R;
  }
}

// The window between rename(ckpt.tmp -> ckpt) and the directory fsync
// is the classic publish hazard: the file exists under its final name,
// but the directory entry itself is not yet durable. Because WAL trim
// runs strictly *after* the checkpoint publish, a crash in that window
// is safe in both outcomes — whether the rename survives (recover from
// the new checkpoint) or the entry is lost (recover from the older
// checkpoint + the untrimmed WAL suffix).
TEST(DurableVersioned, CrashBetweenRenameAndDirsync) {
  BatchList Batches = makeBatches(9, 200, 2500, 303);
  for (bool RenameSurvives : {true, false}) {
    SCOPED_TRACE(RenameSurvives ? "rename survived" : "dir entry lost");
    TempDir D;
    size_t Acked = 0;
    {
      VersionedGraph St(optsFor(D.path(), /*Every=*/4));
      // Crash on the *second* checkpoint's dirsync (seq 8), so the
      // entry-lost variant has an older generation to fall back to.
      FailpointGuard G("ckpt.dirsync", FailAction::crash(), 1);
      try {
        for (auto &B : Batches) {
          if (B.first)
            St.insertEdgesBatch(B.second);
          else
            St.deleteEdgesBatch(B.second);
          ++Acked;
        }
      } catch (const SimulatedCrash &) {
      }
    }
    failpoints().reset();
    EXPECT_EQ(Acked, 7u); // batch 8's checkpoint crashed after the ack
    if (!RenameSurvives) {
      ASSERT_EQ(
          ::unlink((D.path() + "/" + detail::ckptFileName(8)).c_str()), 0);
    }

    VersionedGraph Re(optsFor(D.path()));
    uint64_t R = Re.durability()->recovered().MaxSeq;
    EXPECT_GE(R, 8u) << "acknowledged batch lost"; // seq 8 was durable
    if (!RenameSurvives) {
      EXPECT_EQ(Re.durability()->recovered().Ckpt->Seq, 4u);
    }

    VersionedGraph Ref{Graph{}};
    for (size_t B = 0; B < R; ++B) {
      if (Batches[B].first)
        Ref.insertEdgesBatch(Batches[B].second);
      else
        Ref.deleteEdgesBatch(Batches[B].second);
    }
    EXPECT_TRUE(
        graphsIdentical(Re.acquire().graph(), Ref.acquire().graph()));
  }
}

//===----------------------------------------------------------------------===
// Durable sharded store: basics + concurrency.
//===----------------------------------------------------------------------===

TEST(DurableSharded, PersistReopenAndFlatPrime) {
  TempDir D;
  const size_t Shards = 8;
  const VertexId Universe = 4000;
  // Post-checkpoint batches are kept small so their digest union stays
  // under the refresh threshold (universe / FlatRefreshDenominator) —
  // this test asserts the refresh path, not the rebuild fallback.
  BatchList Batches = makeBatches(10, 80, Universe, 55);
  ShardedGraphStore Ref(Shards, Universe);
  {
    ShardedGraphStore St(optsFor(D.path(), /*Every=*/6), Shards, Universe);
    for (auto &B : Batches) {
      if (B.first) {
        St.insertBatch(B.second);
        Ref.insertBatch(B.second);
      } else {
        St.deleteBatch(B.second);
        Ref.deleteBatch(B.second);
      }
    }
    EXPECT_TRUE(shardedIdentical(St, Ref));
  }
  ShardedGraphStore Re(optsFor(D.path()), Shards, Universe);
  EXPECT_EQ(Re.batchSeq(), Batches.size());
  EXPECT_TRUE(shardedIdentical(Re, Ref));

  // Flat priming: checkpoint at 6 + replayed digests 7..10 → the first
  // acquireFlat() refreshes instead of rebuilding.
  FlatMaintenanceStats S0 = Re.flatStats();
  EXPECT_EQ(S0.Rebuilds, 1u);
  auto F = Re.acquireFlat();
  FlatMaintenanceStats S1 = Re.flatStats();
  EXPECT_EQ(S1.Rebuilds, 1u);
  EXPECT_EQ(S1.Refreshes, 1u);
  EXPECT_EQ(F->NumEdges, Ref.acquire().numEdges());
}

TEST(DurableSharded, ConcurrentIngestWithBackgroundCheckpoint) {
  TempDir D;
  const size_t Shards = 8;
  const VertexId Universe = 6000;
  const size_t Threads = 4, PerThread = 8, BatchSize = 250;
  std::vector<std::vector<uint8_t>> Before(Shards);
  {
    ShardedGraphStore St(optsFor(D.path()), Shards, Universe);
    std::atomic<bool> Done{false};
    std::thread Ckpt([&] {
      // Background checkpoints racing the ingest threads: each is a
      // consistent epoch cut; trimming never drops uncovered records.
      while (!Done.load(std::memory_order_acquire)) {
        St.checkpointNow();
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> Ws;
    for (size_t T = 0; T < Threads; ++T)
      Ws.emplace_back([&, T] {
        for (size_t B = 0; B < PerThread; ++B) {
          std::vector<EdgePair> E(BatchSize);
          for (size_t I = 0; I < BatchSize; ++I) {
            uint64_t H = hashAt(1000 + T * PerThread + B, I);
            E[I] = {VertexId(H % Universe), VertexId((H >> 20) % Universe)};
          }
          St.insertBatch(E);
        }
      });
    for (auto &W : Ws)
      W.join();
    Done.store(true, std::memory_order_release);
    Ckpt.join();
    ASSERT_EQ(St.batchSeq(), uint64_t(Threads * PerThread));

    // Capture the exact final state (canonical serialization) before
    // the "crash": whatever interleaving the threads produced, recovery
    // must reproduce it byte-for-byte.
    auto E = St.acquire();
    for (size_t S = 0; S < Shards; ++S)
      serializeSnapshot(E.shard(S), Before[S]);
  }
  ShardedGraphStore Re(optsFor(D.path()), Shards, Universe);
  EXPECT_EQ(Re.batchSeq(), uint64_t(Threads * PerThread));
  std::vector<std::vector<uint8_t>> After(Shards);
  auto E2 = Re.acquire();
  for (size_t S = 0; S < Shards; ++S)
    serializeSnapshot(E2.shard(S), After[S]);
  EXPECT_EQ(Before, After);
}

TEST(DurableSharded, AutoCheckpointFiresExactlyOnSchedule) {
  TempDir D;
  const VertexId Universe = 1000;
  const uint64_t Every = 3;
  ShardedGraphStore St(optsFor(D.path(), Every), 4, Universe);
  for (uint64_t B = 1; B <= 8; ++B) {
    std::vector<EdgePair> E(50);
    for (size_t I = 0; I < E.size(); ++I) {
      uint64_t H = hashAt(7000 + B, I);
      E[I] = {VertexId(H % Universe), VertexId((H >> 20) % Universe)};
    }
    St.insertBatch(E);
    // The trigger is exact, not best-effort: last checkpoint covers the
    // most recent multiple of Every, so the uncovered WAL suffix never
    // reaches Every batches.
    EXPECT_EQ(St.durability()->lastCheckpointSeq(), (B / Every) * Every)
        << "batch " << B;
  }
}

TEST(DurableSharded, AutoCheckpointNeverSkippedUnderContention) {
  // Regression: checkpointIfDue used to bail when try_lock failed, so a
  // writer crossing the threshold while a peer held the trigger lock
  // silently skipped a due checkpoint. The pending latch re-checks after
  // unlock, so at quiescence the uncovered suffix is always < Every.
  TempDir D;
  const VertexId Universe = 4000;
  const uint64_t Every = 2; // aggressive: most batches cross a threshold
  const size_t Threads = 4, PerThread = 8;
  ShardedGraphStore St(optsFor(D.path(), Every), 8, Universe);
  std::vector<std::thread> Ws;
  for (size_t T = 0; T < Threads; ++T)
    Ws.emplace_back([&, T] {
      for (size_t B = 0; B < PerThread; ++B) {
        std::vector<EdgePair> E(120);
        for (size_t I = 0; I < E.size(); ++I) {
          uint64_t H = hashAt(8000 + T * PerThread + B, I);
          E[I] = {VertexId(H % Universe), VertexId((H >> 20) % Universe)};
        }
        St.insertBatch(E);
      }
    });
  for (auto &W : Ws)
    W.join();
  ASSERT_EQ(St.batchSeq(), uint64_t(Threads * PerThread));
  EXPECT_LT(St.batchSeq() - St.durability()->lastCheckpointSeq(), Every);
}

} // namespace
