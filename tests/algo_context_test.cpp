//===- tests/algo_context_test.cpp - Algorithm workspace tests ------------===//
//
// The PR-2 steady-state contract: after a first (warm-up) run populates an
// AlgoContext, re-running an algorithm with the same context performs zero
// heap allocations in the Ligra/algorithm layer — asserted exactly via the
// pool-allocator event counters and the context's own miss counter. Two
// contexts must be usable from two reader threads concurrently (the
// streaming-analytics scenario); the ASan CI job runs this file too.
//
//===----------------------------------------------------------------------===//

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/cc.h"
#include "algorithms/pagerank.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "memory/algo_context.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

using namespace aspen;

namespace {

struct CounterSnapshot {
  uint64_t Counted;
  uint64_t Scratch;
  uint64_t CtxMiss;

  static CounterSnapshot take(const AlgoContext &Ctx) {
    return {countedAllocEvents(), scratchAllocEvents(), Ctx.missCount()};
  }
};

} // namespace

TEST(AlgoContext, AcquireReleaseReusesBlocks) {
  AlgoContext Ctx;
  size_t Cap1;
  void *P = Ctx.acquire(10000, Cap1);
  ASSERT_NE(P, nullptr);
  ASSERT_GE(Cap1, 10000u);
  Ctx.release(P, Cap1);
  ASSERT_EQ(Ctx.cachedBlocks(), 1);
  uint64_t Warm = Ctx.missCount();
  for (int I = 0; I < 100; ++I) {
    size_t Cap;
    void *Q = Ctx.acquire(8000, Cap);
    EXPECT_EQ(Q, P) << "cached block must be reused";
    Ctx.release(Q, Cap);
  }
  EXPECT_EQ(Ctx.missCount(), Warm);
}

TEST(AlgoContext, DistinctLiveBlocks) {
  AlgoContext Ctx;
  size_t CapA, CapB;
  void *A = Ctx.acquire(512, CapA);
  void *B = Ctx.acquire(512, CapB);
  EXPECT_NE(A, B);
  Ctx.release(A, CapA);
  Ctx.release(B, CapB);
}

TEST(AlgoContext, SecondRunIsAllocationFree) {
  const VertexId N = 1 << 10;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(10, 8, 42));
  FlatSnapshot FS(G);
  FlatGraphView FV(FS);
  AlgoContext Ctx;

  // Warm-up runs populate the workspace (and the per-worker scratch
  // caches used by the parallel primitives).
  auto Bfs1 = bfsDistances(FV, 0, Ctx);
  auto Pr1 = pageRank(FV, Ctx, 10);

  CounterSnapshot Before = CounterSnapshot::take(Ctx);
  auto Bfs2 = bfsDistances(FV, 0, Ctx);
  auto Pr2 = pageRank(FV, Ctx, 10);
  CounterSnapshot After = CounterSnapshot::take(Ctx);

  EXPECT_EQ(After.Counted - Before.Counted, 0u)
      << "steady-state runs must not allocate chunk payloads";
  EXPECT_EQ(After.Scratch - Before.Scratch, 0u)
      << "steady-state runs must not miss the scratch caches";
  EXPECT_EQ(After.CtxMiss - Before.CtxMiss, 0u)
      << "steady-state runs must be served entirely from the context";

  // And the reuse must not change results.
  EXPECT_EQ(Bfs1, Bfs2);
  EXPECT_EQ(Pr1, Pr2);
}

TEST(AlgoContext, SteadyStateAcrossEvolvingSnapshots) {
  // The paper's scenario: re-run analytics after each ingested batch. The
  // graph grows, but as long as the vertex universe is fixed the workspace
  // blocks keep fitting; only the counters of the first run may miss.
  const VertexId N = 1 << 9;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(9, 4, 7));
  AlgoContext Ctx;
  {
    TreeGraphView TV(G);
    bfsDistances(TV, 0, Ctx); // warm
  }
  for (int Round = 0; Round < 3; ++Round) {
    auto Batch = dedupEdges(symmetrize(uniformRandomEdges(N, 400, Round)));
    G = G.insertEdges(Batch);
    TreeGraphView TV(G);
    // The first run on a grown snapshot may upsize a block (a legitimate
    // miss); the run after it must be served entirely from the context.
    auto Got = bfsDistances(TV, 0, Ctx);
    uint64_t Miss0 = Ctx.missCount();
    EXPECT_EQ(Got, bfsDistances(TV, 0, Ctx));
    EXPECT_EQ(Ctx.missCount(), Miss0)
        << "round " << Round << " should reuse the adapted workspace";
    AlgoContext Fresh;
    EXPECT_EQ(Got, bfsDistances(TV, 0, Fresh));
  }
}

TEST(AlgoContext, TwoContextsOnTwoThreadsMatchSingleThreaded) {
  const VertexId N = 1 << 10;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(10, 6, 99));
  FlatSnapshot FS(G);
  FlatGraphView FV(FS);

  // Single-threaded references.
  auto RefBfs = bfsDistances(FV, 3);
  auto RefPr = pageRank(FV, 15);
  auto RefCc = connectedComponents(FV);

  const int Iters = 8;
  std::vector<uint32_t> T1Bfs;
  std::vector<double> T1Pr;
  std::vector<VertexId> T2Cc;
  std::vector<uint32_t> T2Bfs;
  std::thread Reader1([&] {
    AlgoContext Ctx;
    for (int I = 0; I < Iters; ++I) {
      T1Bfs = bfsDistances(FV, 3, Ctx);
      T1Pr = pageRank(FV, Ctx, 15);
    }
  });
  std::thread Reader2([&] {
    AlgoContext Ctx;
    for (int I = 0; I < Iters; ++I) {
      T2Cc = connectedComponents(FV, Ctx);
      T2Bfs = bfsDistances(FV, 3, Ctx);
    }
  });
  Reader1.join();
  Reader2.join();

  EXPECT_EQ(T1Bfs, RefBfs);
  EXPECT_EQ(T1Pr, RefPr);
  EXPECT_EQ(T2Cc, RefCc);
  EXPECT_EQ(T2Bfs, RefBfs);
}

TEST(AlgoContext, BcReusesWorkspace) {
  const VertexId N = 1 << 9;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(9, 6, 5));
  TreeGraphView TV(G);
  AlgoContext Ctx;
  auto First = bc(TV, 0, Ctx);
  uint64_t Miss0 = Ctx.missCount();
  auto Second = bc(TV, 0, Ctx);
  EXPECT_EQ(Ctx.missCount(), Miss0);
  ASSERT_EQ(First.size(), Second.size());
  // Path counts accumulate in nondeterministic order across parallel
  // runs, so compare with the same relative tolerance the reference
  // tests use.
  for (size_t I = 0; I < First.size(); ++I)
    ASSERT_NEAR(First[I], Second[I], 1e-6 * (1.0 + std::fabs(First[I])));
}
