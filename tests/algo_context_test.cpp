//===- tests/algo_context_test.cpp - Algorithm workspace tests ------------===//
//
// The PR-2 steady-state contract: after a first (warm-up) run populates an
// AlgoContext, re-running an algorithm with the same context performs zero
// heap allocations in the Ligra/algorithm layer — asserted exactly via the
// pool-allocator event counters and the context's own miss counter. Two
// contexts must be usable from two reader threads concurrently (the
// streaming-analytics scenario); the ASan CI job runs this file too.
//
//===----------------------------------------------------------------------===//

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/cc.h"
#include "algorithms/pagerank.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "memory/algo_context.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>

using namespace aspen;

namespace {

struct CounterSnapshot {
  uint64_t Counted;
  uint64_t Scratch;
  uint64_t CtxMiss;

  static CounterSnapshot take(const AlgoContext &Ctx) {
    return {countedAllocEvents(), scratchAllocEvents(), Ctx.missCount()};
  }
};

} // namespace

TEST(AlgoContext, AcquireReleaseReusesBlocks) {
  AlgoContext Ctx;
  size_t Cap1;
  void *P = Ctx.acquire(10000, Cap1);
  ASSERT_NE(P, nullptr);
  ASSERT_GE(Cap1, 10000u);
  Ctx.release(P, Cap1);
  ASSERT_EQ(Ctx.cachedBlocks(), 1);
  uint64_t Warm = Ctx.missCount();
  for (int I = 0; I < 100; ++I) {
    size_t Cap;
    void *Q = Ctx.acquire(8000, Cap);
    EXPECT_EQ(Q, P) << "cached block must be reused";
    Ctx.release(Q, Cap);
  }
  EXPECT_EQ(Ctx.missCount(), Warm);
}

TEST(AlgoContext, DistinctLiveBlocks) {
  AlgoContext Ctx;
  size_t CapA, CapB;
  void *A = Ctx.acquire(512, CapA);
  void *B = Ctx.acquire(512, CapB);
  EXPECT_NE(A, B);
  Ctx.release(A, CapA);
  Ctx.release(B, CapB);
}

TEST(AlgoContext, SecondRunIsAllocationFree) {
  const VertexId N = 1 << 10;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(10, 8, 42));
  FlatSnapshot FS(G);
  FlatGraphView FV(FS);
  AlgoContext Ctx;

  // Warm-up runs populate the workspace (and the per-worker scratch
  // caches used by the parallel primitives).
  auto Bfs1 = bfsDistances(FV, 0, Ctx);
  auto Pr1 = pageRank(FV, Ctx, 10);

  CounterSnapshot Before = CounterSnapshot::take(Ctx);
  auto Bfs2 = bfsDistances(FV, 0, Ctx);
  auto Pr2 = pageRank(FV, Ctx, 10);
  CounterSnapshot After = CounterSnapshot::take(Ctx);

  EXPECT_EQ(After.Counted - Before.Counted, 0u)
      << "steady-state runs must not allocate chunk payloads";
  EXPECT_EQ(After.Scratch - Before.Scratch, 0u)
      << "steady-state runs must not miss the scratch caches";
  EXPECT_EQ(After.CtxMiss - Before.CtxMiss, 0u)
      << "steady-state runs must be served entirely from the context";

  // And the reuse must not change results.
  EXPECT_EQ(Bfs1, Bfs2);
  EXPECT_EQ(Pr1, Pr2);
}

TEST(AlgoContext, SteadyStateAcrossEvolvingSnapshots) {
  // The paper's scenario: re-run analytics after each ingested batch. The
  // graph grows, but as long as the vertex universe is fixed the workspace
  // blocks keep fitting; only the counters of the first run may miss.
  const VertexId N = 1 << 9;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(9, 4, 7));
  AlgoContext Ctx;
  {
    TreeGraphView TV(G);
    bfsDistances(TV, 0, Ctx); // warm
  }
  for (int Round = 0; Round < 3; ++Round) {
    auto Batch = dedupEdges(symmetrize(uniformRandomEdges(N, 400, Round)));
    G = G.insertEdges(Batch);
    TreeGraphView TV(G);
    // The first run on a grown snapshot may upsize a block (a legitimate
    // miss); the run after it must be served entirely from the context.
    auto Got = bfsDistances(TV, 0, Ctx);
    uint64_t Miss0 = Ctx.missCount();
    EXPECT_EQ(Got, bfsDistances(TV, 0, Ctx));
    EXPECT_EQ(Ctx.missCount(), Miss0)
        << "round " << Round << " should reuse the adapted workspace";
    AlgoContext Fresh;
    EXPECT_EQ(Got, bfsDistances(TV, 0, Fresh));
  }
}

TEST(AlgoContext, TwoContextsOnTwoThreadsMatchSingleThreaded) {
  const VertexId N = 1 << 10;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(10, 6, 99));
  FlatSnapshot FS(G);
  FlatGraphView FV(FS);

  // Single-threaded references.
  auto RefBfs = bfsDistances(FV, 3);
  auto RefPr = pageRank(FV, 15);
  auto RefCc = connectedComponents(FV);

  const int Iters = 8;
  std::vector<uint32_t> T1Bfs;
  std::vector<double> T1Pr;
  std::vector<VertexId> T2Cc;
  std::vector<uint32_t> T2Bfs;
  std::thread Reader1([&] {
    AlgoContext Ctx;
    for (int I = 0; I < Iters; ++I) {
      T1Bfs = bfsDistances(FV, 3, Ctx);
      T1Pr = pageRank(FV, Ctx, 15);
    }
  });
  std::thread Reader2([&] {
    AlgoContext Ctx;
    for (int I = 0; I < Iters; ++I) {
      T2Cc = connectedComponents(FV, Ctx);
      T2Bfs = bfsDistances(FV, 3, Ctx);
    }
  });
  Reader1.join();
  Reader2.join();

  EXPECT_EQ(T1Bfs, RefBfs);
  EXPECT_EQ(T1Pr, RefPr);
  EXPECT_EQ(T2Cc, RefCc);
  EXPECT_EQ(T2Bfs, RefBfs);
}

//===----------------------------------------------------------------------===
// Retain limit: capped contexts fall back to transient heap for outlier
// requests and never pin more than the limit (the generalization of
// two_hop's outlier guard to every acquire path).
//===----------------------------------------------------------------------===

TEST(AlgoContext, RetainLimitServesOversizeFromTransientHeap) {
  AlgoContext Ctx(1 << 20); // 1MB limit
  uint64_t Scratch0 = scratchAllocEvents();
  size_t Cap;
  // An O(m)-sized request (8MB) must not touch the context cache or the
  // per-worker scratch caches.
  void *P = Ctx.acquire(8u << 20, Cap);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Cap, TransientCap);
  EXPECT_EQ(Ctx.transientCount(), 1u);
  EXPECT_EQ(Ctx.missCount(), 0u);
  EXPECT_EQ(scratchAllocEvents(), Scratch0);
  std::memset(P, 0xAB, 8u << 20); // must be writable end to end
  Ctx.release(P, Cap);
  // Nothing was retained anywhere.
  EXPECT_EQ(Ctx.cachedBlocks(), 0);
  EXPECT_EQ(Ctx.cachedBytes(), 0u);
  EXPECT_EQ(scratchAllocEvents(), Scratch0);
}

TEST(AlgoContext, RetainLimitBoundsCachedBytes) {
  AlgoContext Ctx;
  Ctx.setRetainLimit(64 << 10);
  // Many small acquires within the limit cycle through the cache...
  for (int I = 0; I < 10; ++I) {
    size_t Cap;
    void *P = Ctx.acquire(4096, Cap);
    ASSERT_NE(P, nullptr);
    EXPECT_NE(Cap, TransientCap);
    Ctx.release(P, Cap);
  }
  EXPECT_LE(Ctx.cachedBytes(), Ctx.retainLimit());
  // ...and releasing more than the limit decays the cache below it.
  size_t Caps[8];
  void *Ps[8];
  for (int I = 0; I < 8; ++I)
    Ps[I] = Ctx.acquire(16 << 10, Caps[I]);
  for (int I = 0; I < 8; ++I)
    Ctx.release(Ps[I], Caps[I]);
  EXPECT_LE(Ctx.cachedBytes(), Ctx.retainLimit());
  // Tightening the limit evicts immediately.
  Ctx.setRetainLimit(4096);
  EXPECT_LE(Ctx.cachedBytes(), size_t(4096));
}

TEST(AlgoContext, CappedContextRunsAlgorithmsCorrectly) {
  const VertexId N = 1 << 9;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(9, 6, 7));
  TreeGraphView TV(G);
  AlgoContext Free, Capped(1 << 10); // far below the arrays BFS needs
  auto Reference = bfsDistances(TV, 3, Free);
  auto UnderCap = bfsDistances(TV, 3, Capped);
  EXPECT_EQ(Reference, UnderCap);
  EXPECT_GT(Capped.transientCount(), 0u); // fell back, didn't break
  EXPECT_LE(Capped.cachedBytes(), Capped.retainLimit());
}

TEST(AlgoContext, BoundedCtxArrayOutlierGuard) {
  AlgoContext Ctx;
  uint64_t Scratch0 = scratchAllocEvents();
  int Cached0 = Ctx.cachedBlocks();
  {
    // Within the bound: a normal workspace borrow.
    BoundedCtxArray<VertexId> Small(Ctx, 1000, 1 << 20);
    EXPECT_FALSE(Small.transient());
    Small[999] = 42;
  }
  {
    // Outlier: transient heap, pinned nowhere.
    BoundedCtxArray<VertexId> Huge(Ctx, (4u << 20), 1 << 20);
    EXPECT_TRUE(Huge.transient());
    Huge[(4u << 20) - 1] = 7;
  }
  EXPECT_EQ(Ctx.cachedBlocks(), Cached0 + 1); // only the small block
  EXPECT_LE(scratchAllocEvents() - Scratch0,
            1u); // at most the small block's miss; the outlier never hit
                 // the scratch layer
}

TEST(AlgoContext, BcReusesWorkspace) {
  const VertexId N = 1 << 9;
  Graph G = Graph::fromEdges(N, rmatGraphEdges(9, 6, 5));
  TreeGraphView TV(G);
  AlgoContext Ctx;
  auto First = bc(TV, 0, Ctx);
  uint64_t Miss0 = Ctx.missCount();
  auto Second = bc(TV, 0, Ctx);
  EXPECT_EQ(Ctx.missCount(), Miss0);
  ASSERT_EQ(First.size(), Second.size());
  // Path counts accumulate in nondeterministic order across parallel
  // runs, so compare with the same relative tolerance the reference
  // tests use.
  for (size_t I = 0; I < First.size(); ++I)
    ASSERT_NEAR(First[I], Second[I], 1e-6 * (1.0 + std::fabs(First[I])));
}
