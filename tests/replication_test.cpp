//===- tests/replication_test.cpp - Self-healing durability suite ---------===//
//
// The incremental-checkpoint + snapshot-shipping + scrubber suite
// (DESIGN.md Section 9). Structure:
//
//   * Unit tests for the primitives: transport round-trips (in-process
//     socketpair and unix socket), frame CRC rejection, deterministic
//     backoff.
//   * Incremental checkpoints: an update touching 1 of S shards writes
//     ~1/S of the full-checkpoint bytes; chains recover across restarts
//     and resume their length budget; a missing middle generation falls
//     back to the older base plus a longer WAL replay with no
//     acknowledged-batch loss.
//   * Snapshot shipping: after catchUp() the follower directory holds
//     byte-identical files and recovers to a chunk-identical store;
//     torn transfers resume from the last chunk boundary; dropped
//     connections, in-transit bit flips, leader death mid-ship, and
//     follower death mid-write all heal through retry/backoff.
//   * Scrubbing: injected corruption in checkpoint pages and sealed WAL
//     segments is detected, quarantined (checkpoints) and repaired from
//     the replica; without a replica the store still recovers from the
//     previous generation with nothing acknowledged lost.
//   * A randomized chaos matrix over all of the above, seeded from
//     ASPEN_CHAOS_SEED (echoed, so CI failures reproduce exactly).
//
//===----------------------------------------------------------------------===//

#include "durable_test_util.h"

#include "store/checkpoint.h"
#include "store/durability.h"
#include "store/replication.h"
#include "store/sharded_graph.h"
#include "store/transport.h"
#include "store/wal.h"
#include "util/failpoint.h"
#include "util/hash.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace aspen;
using namespace aspen::dtest;

namespace {

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

/// Every replicable leader file exists in the follower directory with
/// identical bytes (the shipped-state half of the identity argument;
/// the recovered-store half is shardedIdentical()).
void expectDirsShipEqual(const std::string &Leader,
                         const std::string &Follower) {
  std::vector<repl::RemoteFile> Files = repl::listReplicable(Leader);
  EXPECT_FALSE(Files.empty());
  for (const repl::RemoteFile &F : Files) {
    std::vector<uint8_t> A = readFileBytes(Leader + "/" + F.Name);
    std::vector<uint8_t> B = readFileBytes(Follower + "/" + F.Name);
    EXPECT_EQ(A.size(), F.Bytes) << F.Name;
    EXPECT_TRUE(A == B) << "shipped bytes differ: " << F.Name;
  }
}

BackoffPolicy fastBackoff(uint64_t Seed = 1) {
  BackoffPolicy B;
  B.BaseMs = 1;
  B.MaxMs = 8;
  B.MaxAttempts = 8;
  B.Seed = Seed;
  return B;
}

void applyBatch(ShardedGraphStore &St, const BatchList::value_type &B) {
  if (B.first)
    St.insertBatch(B.second);
  else
    St.deleteBatch(B.second);
}

//===----------------------------------------------------------------------===
// Transports.
//===----------------------------------------------------------------------===

TEST(Transport, PipeRoundTrip) {
  auto [A, B] = makePipeTransportPair();
  const char Msg[] = "over the wire";
  A->send(Msg, sizeof(Msg));
  char Got[sizeof(Msg)] = {};
  recvExact(*B, Got, sizeof(Msg));
  EXPECT_STREQ(Got, Msg);
  // Half-close drains to 0 on the peer.
  A->shutdownWrite();
  uint8_t Byte;
  EXPECT_EQ(B->recv(&Byte, 1), 0u);
}

TEST(Transport, UnixSocketRoundTrip) {
  TempDir D;
  UnixSocketListener L(D.path() + "/s");
  std::thread Server([&] {
    auto T = L.accept();
    uint8_t Buf[64];
    size_t N = T->recv(Buf, sizeof(Buf));
    T->send(Buf, N); // echo
  });
  auto C = connectUnixSocket(D.path() + "/s");
  const char Msg[] = "ping";
  C->send(Msg, sizeof(Msg));
  char Got[sizeof(Msg)] = {};
  recvExact(*C, Got, sizeof(Msg));
  EXPECT_STREQ(Got, Msg);
  Server.join();
}

TEST(Transport, FrameCrcRejectsInTransitCorruption) {
  auto [A, B] = makePipeTransportPair();
  std::vector<uint8_t> Payload(256, 0x5A);
  // Flip a payload bit on the wire (past the 12-byte frame header): the
  // receiver's frame CRC must refuse it as a transport error, never
  // deliver the corrupt bytes.
  FailpointGuard G("repl.send",
                   FailAction::bitFlip(8 * (sizeof(repl::FrameHeader) + 40)));
  repl::sendFrame(*A, repl::Msg::Chunk, Payload.data(), Payload.size());
  EXPECT_THROW(repl::recvFrame(*B), TransportError);
}

TEST(Backoff, DeterministicBoundedGrowth) {
  BackoffPolicy P; // defaults: 10ms base, x2, 1s cap, 20% jitter
  uint64_t Prev = 0;
  for (size_t A = 0; A < 12; ++A) {
    uint64_t D1 = P.delayMs(A), D2 = P.delayMs(A);
    EXPECT_EQ(D1, D2) << "jitter must be deterministic on the seed";
    EXPECT_LE(D1, P.MaxMs);
    if (A && A < 6) {
      EXPECT_GT(D1, Prev) << "delays grow until the cap";
    }
    Prev = D1;
  }
  BackoffPolicy Q = P;
  Q.Seed = 42;
  EXPECT_NE(P.delayMs(3), Q.delayMs(3)); // different seed, different jitter
}

//===----------------------------------------------------------------------===
// Incremental checkpoints.
//===----------------------------------------------------------------------===

// A batch whose endpoints are all multiples of the shard count touches
// only shard 0 (shardOf folds the low bits).
std::vector<EdgePair> shardZeroBatch(size_t N, size_t Shards,
                                     VertexId Universe, uint64_t Seed) {
  std::vector<EdgePair> E(N);
  for (size_t I = 0; I < N; ++I) {
    uint64_t H = hashAt(Seed, I);
    E[I] = {VertexId((H % Universe) & ~VertexId(Shards - 1)),
            VertexId(((H >> 20) % Universe) & ~VertexId(Shards - 1))};
  }
  return E;
}

TEST(IncrementalCheckpoint, OneShardDeltaWritesFractionOfFullBytes) {
  TempDir D;
  const size_t Shards = 8;
  const VertexId Universe = 4096;
  ShardedGraphStore Ref(Shards, Universe);
  ShardedGraphStore St(optsFor(D.path()), Shards, Universe);
  BatchList Broad = makeBatches(6, 1000, Universe, 1717);
  for (auto &B : Broad) {
    applyBatch(St, B);
    applyBatch(Ref, B);
  }
  EXPECT_EQ(St.checkpointNow(), 6u); // full: no prior generation
  off_t FullBytes = fileSize(D.path() + "/" + detail::ckptFileName(6));
  ASSERT_GT(FullBytes, 0);
  {
    auto M = peekCheckpointMeta(D.path() + "/" + detail::ckptFileName(6));
    ASSERT_TRUE(M.has_value());
    EXPECT_EQ(M->BaseSeq, 0u);
  }

  std::vector<EdgePair> Delta = shardZeroBatch(100, Shards, Universe, 88);
  St.insertBatch(Delta);
  Ref.insertBatch(Delta);
  EXPECT_EQ(St.checkpointNow(), 7u);
  off_t IncrBytes = fileSize(D.path() + "/" + detail::ckptFileName(7));
  ASSERT_GT(IncrBytes, 0);
  {
    auto M = peekCheckpointMeta(D.path() + "/" + detail::ckptFileName(7));
    ASSERT_TRUE(M.has_value());
    EXPECT_EQ(M->BaseSeq, 6u) << "second checkpoint should chain";
  }
  // The acceptance bound: a 1-of-S-shards delta checkpoints in at most
  // ~2/S of the full checkpoint's bytes (one shard's stream plus
  // manifest overhead).
  EXPECT_LE(uint64_t(IncrBytes) * Shards, uint64_t(FullBytes) * 2)
      << "incremental " << IncrBytes << "B vs full " << FullBytes << "B";

  // And the chain recovers to the exact store.
  ShardedGraphStore Re(optsFor(D.path()), Shards, Universe);
  EXPECT_EQ(Re.batchSeq(), 7u);
  EXPECT_TRUE(shardedIdentical(Re, Ref));
}

TEST(IncrementalCheckpoint, ChainBudgetEnforcedAndResumedAcrossRestart) {
  TempDir D;
  const size_t Shards = 4;
  const VertexId Universe = 1024;
  DurabilityOptions O = optsFor(D.path(), /*Every=*/1);
  O.MaxIncrementalChain = 2;
  O.KeepCheckpoints = 16; // keep every generation so each base is
                          // inspectable after the fact
  BatchList Batches = makeBatches(7, 120, Universe, 555);
  auto baseOfNewest = [&](uint64_t Seq) {
    auto M = peekCheckpointMeta(D.path() + "/" + detail::ckptFileName(Seq));
    EXPECT_TRUE(M.has_value()) << "ckpt " << Seq;
    return M ? M->BaseSeq : uint64_t(-1);
  };
  {
    ShardedGraphStore St(O, Shards, Universe);
    for (size_t B = 0; B < 5; ++B)
      applyBatch(St, Batches[B]);
    // Every batch checkpoints: full(1), incr(2<-1), incr(3<-2), then the
    // ChainLen budget of 2 forces full(4), and the chain restarts.
    EXPECT_EQ(baseOfNewest(2), 1u);
    EXPECT_EQ(baseOfNewest(3), 2u);
    EXPECT_EQ(baseOfNewest(4), 0u);
    EXPECT_EQ(baseOfNewest(5), 4u);
  }
  {
    // Restart mid-chain: the budget resumes at 1 (5<-4), so one more
    // incremental is allowed before the next forced full.
    ShardedGraphStore St(O, Shards, Universe);
    applyBatch(St, Batches[5]);
    EXPECT_EQ(baseOfNewest(6), 5u) << "first post-recovery checkpoint "
                                      "chains onto the recovered head";
    applyBatch(St, Batches[6]);
    EXPECT_EQ(baseOfNewest(7), 0u) << "budget exhausted: forced full";
  }
  ShardedGraphStore Re(optsFor(D.path()), Shards, Universe);
  ShardedGraphStore Ref(Shards, Universe);
  for (auto &B : Batches)
    applyBatch(Ref, B);
  EXPECT_TRUE(shardedIdentical(Re, Ref));
}

TEST(IncrementalCheckpoint, MissingMiddleGenerationFallsBackWithoutLoss) {
  TempDir D;
  const size_t Shards = 8;
  const VertexId Universe = 4096;
  ShardedGraphStore Ref(Shards, Universe);
  BatchList Broad = makeBatches(3, 400, Universe, 4242);
  {
    ShardedGraphStore St(optsFor(D.path()), Shards, Universe);
    for (auto &B : Broad) {
      applyBatch(St, B);
      applyBatch(Ref, B);
    }
    EXPECT_EQ(St.checkpointNow(), 3u); // full
    std::vector<EdgePair> D1 = shardZeroBatch(60, Shards, Universe, 71);
    St.insertBatch(D1);
    Ref.insertBatch(D1);
    EXPECT_EQ(St.checkpointNow(), 4u); // incr, base 3
    std::vector<EdgePair> D2 = shardZeroBatch(60, Shards, Universe, 72);
    St.insertBatch(D2);
    Ref.insertBatch(D2);
    EXPECT_EQ(St.checkpointNow(), 5u); // incr, base 4
    // Two more acknowledged batches with no checkpoint: the WAL tail.
    for (auto &B : makeBatches(2, 80, Universe, 73)) {
      applyBatch(St, B);
      applyBatch(Ref, B);
    }
  }
  // Lose the middle link. Head 5's chain no longer resolves; recovery
  // must fall back to the full generation 3 — and because the trim
  // barrier follows the oldest *referenced* generation, the WAL above 3
  // is still on disk, so batches 4..7 replay and nothing acked is lost.
  ASSERT_EQ(::unlink((D.path() + "/" + detail::ckptFileName(4)).c_str()),
            0);
  ShardedGraphStore Re(optsFor(D.path()), Shards, Universe);
  EXPECT_EQ(Re.durability()->recovered().Ckpt->Seq, 3u);
  EXPECT_EQ(Re.batchSeq(), 7u);
  EXPECT_TRUE(shardedIdentical(Re, Ref));
}

//===----------------------------------------------------------------------===
// Snapshot shipping.
//===----------------------------------------------------------------------===

/// A quiesced leader directory with a mixed checkpoint chain and a live
/// WAL tail, plus the in-memory reference that applied the same batches.
struct LeaderFixture {
  TempDir LeaderDir, FollowerDir;
  static constexpr size_t Shards = 8;
  static constexpr VertexId Universe = 4096;
  std::unique_ptr<ShardedGraphStore> Leader;
  uint64_t NextSeed = 0xA11CE;
  size_t BatchNo = 0;

  LeaderFixture() {
    Leader = std::make_unique<ShardedGraphStore>(optsFor(LeaderDir.path()),
                                                 Shards, Universe);
    ingest(4);
    Leader->checkpointNow(); // full
    ingestShardZero(1);
    Leader->checkpointNow(); // incremental
    ingest(2);               // WAL tail past the newest checkpoint
  }

  void ingest(size_t N) {
    for (auto &B : makeBatches(N, 250, Universe, NextSeed + BatchNo)) {
      applyBatch(*Leader, B);
      ++BatchNo;
    }
  }

  void ingestShardZero(size_t N) {
    for (size_t I = 0; I < N; ++I) {
      Leader->insertBatch(
          shardZeroBatch(80, Shards, Universe, NextSeed + BatchNo));
      ++BatchNo;
    }
  }

  /// Open the follower directory and compare against the live leader.
  void expectFollowerIdentical() {
    ShardedGraphStore F(optsFor(FollowerDir.path()), Shards, Universe);
    EXPECT_EQ(F.batchSeq(), Leader->batchSeq());
    EXPECT_TRUE(shardedIdentical(F, *Leader));
  }
};

TEST(Replication, CatchUpShipsByteIdenticalState) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff());
  ReplicationStats S = R.catchUp();
  EXPECT_EQ(S.Attempts, 1u);
  EXPECT_GE(S.FilesFetched, 3u); // 2 checkpoints + at least one segment
  EXPECT_GT(S.BytesFetched, 0u);
  expectDirsShipEqual(L.LeaderDir.path(), L.FollowerDir.path());

  // Idempotent: a second pass fetches nothing.
  ReplicationStats S2 = R.catchUp();
  EXPECT_EQ(S2.FilesFetched, 0u);
  EXPECT_EQ(S2.BytesFetched, 0u);
  EXPECT_GE(S2.FilesSkipped, S.FilesFetched);

  L.expectFollowerIdentical();
}

TEST(Replication, CatchUpOverUnixSocket) {
  LeaderFixture L;
  UnixShipService Svc(L.LeaderDir.path(), L.FollowerDir.path() + "/.sock");
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff());
  R.catchUp();
  expectDirsShipEqual(L.LeaderDir.path(), L.FollowerDir.path());
  L.expectFollowerIdentical();
}

TEST(Replication, FollowerDeletesFilesTheLeaderRetired) {
  TempDir LeaderDir, FollowerDir;
  const size_t Shards = 8;
  const VertexId Universe = 4096;
  // Full checkpoints only, so retention actually retires generations
  // (an incremental chain keeps referencing its base).
  DurabilityOptions O = optsFor(LeaderDir.path());
  O.MaxIncrementalChain = 0;
  ShardedGraphStore Leader(O, Shards, Universe);
  BatchList Batches = makeBatches(7, 200, Universe, 31);
  for (size_t B = 0; B < 4; ++B)
    applyBatch(Leader, Batches[B]);
  Leader.checkpointNow();
  InProcessShipService Svc(LeaderDir.path());
  Replicator R(FollowerDir.path(), Svc.connector(), fastBackoff());
  R.catchUp();
  // The leader moves on: two more checkpoints push generation 4 out of
  // retention (KeepCheckpoints = 2) and trim the WAL behind the barrier.
  for (size_t B = 4; B < 7; ++B) {
    applyBatch(Leader, Batches[B]);
    Leader.checkpointNow();
  }
  ReplicationStats S = R.catchUp();
  EXPECT_GE(S.FilesDeleted, 1u) << "follower must retire what the leader "
                                   "trimmed";
  expectDirsShipEqual(LeaderDir.path(), FollowerDir.path());
  ShardedGraphStore F(optsFor(FollowerDir.path()), Shards, Universe);
  EXPECT_EQ(F.batchSeq(), Leader.batchSeq());
  EXPECT_TRUE(shardedIdentical(F, Leader));
}

TEST(Replication, TornTransferResumesFromChunkBoundary) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  // Small chunks so the big full checkpoint streams as many frames; the
  // torn send then lands mid-file with several chunks already on disk.
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff(),
               /*ChunkBytes=*/512);
  FailpointGuard G("repl.send", FailAction::shortWrite(100), /*Hit=*/20);
  ReplicationStats S = R.catchUp();
  EXPECT_GE(S.Reconnects, 1u);
  EXPECT_GE(S.Resumes, 1u) << "the retry must resume the partial .part, "
                              "not refetch from zero";
  failpoints().reset();
  expectDirsShipEqual(L.LeaderDir.path(), L.FollowerDir.path());
  L.expectFollowerIdentical();
}

TEST(Replication, DroppedConnectionRetriesWithBackoff) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff());
  FailpointGuard G("repl.recv", FailAction::softError(), /*Hit=*/3);
  ReplicationStats S = R.catchUp();
  EXPECT_GE(S.Reconnects, 1u);
  failpoints().reset();
  L.expectFollowerIdentical();
}

TEST(Replication, InTransitBitFlipNeverReachesDisk) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff(),
               /*ChunkBytes=*/512);
  // Corrupt one frame on the wire mid-stream: the frame CRC rejects it,
  // the connection is abandoned, and the retry refetches clean bytes.
  FailpointGuard G("repl.send", FailAction::bitFlip(12345), /*Hit=*/15);
  ReplicationStats S = R.catchUp();
  EXPECT_GE(S.Reconnects, 1u);
  failpoints().reset();
  expectDirsShipEqual(L.LeaderDir.path(), L.FollowerDir.path());
  L.expectFollowerIdentical();
}

TEST(Replication, LeaderCrashMidShipHealsOnReconnect) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff(),
               /*ChunkBytes=*/512);
  // The serving side dies between two chunks; its connection thread
  // unwinds, the client sees a dead transport and reconnects (to a
  // "restarted" leader: a fresh connection against the same directory).
  FailpointGuard G("repl.server.chunk", FailAction::crash(), /*Hit=*/10);
  ReplicationStats S = R.catchUp();
  EXPECT_GE(S.Reconnects, 1u);
  EXPECT_GE(S.Resumes, 1u);
  failpoints().reset();
  expectDirsShipEqual(L.LeaderDir.path(), L.FollowerDir.path());
  L.expectFollowerIdentical();
}

TEST(Replication, FollowerCrashMidWriteResumesAfterRestart) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  {
    Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff(),
                 /*ChunkBytes=*/512);
    // The follower process dies mid-write of fetched bytes. Unlike a
    // transport fault this is not retried in-process — it escapes, like
    // kill -9, leaving a .part file behind.
    FailpointGuard G("repl.chunk.write", FailAction::crash(), /*Hit=*/9);
    EXPECT_THROW(R.catchUp(), SimulatedCrash);
  }
  failpoints().reset();
  EXPECT_GE(countFilesWithPrefix(L.FollowerDir.path(), "ckpt-"), 1u);
  // "Restart": a fresh replicator over the same directory (with the
  // same chunk geometry, so the .part boundary math lines up) resumes
  // the partial transfer instead of starting over.
  Replicator R2(L.FollowerDir.path(), Svc.connector(), fastBackoff(),
                /*ChunkBytes=*/512);
  ReplicationStats S = R2.catchUp();
  EXPECT_GE(S.Resumes, 1u);
  expectDirsShipEqual(L.LeaderDir.path(), L.FollowerDir.path());
  L.expectFollowerIdentical();
}

//===----------------------------------------------------------------------===
// Scrubbing.
//===----------------------------------------------------------------------===

TEST(Scrub, DetectsQuarantinesAndRepairsCheckpointCorruption) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff());
  R.catchUp();

  DurabilityEngine E(optsFor(L.FollowerDir.path()));
  uint64_t Head = E.lastCheckpointSeq();
  ASSERT_GT(Head, 0u);
  std::string Victim = L.FollowerDir.path() + "/" + detail::ckptFileName(Head);
  flipByteAt(Victim, 100); // inside a data page
  ASSERT_FALSE(readCheckpointFile(Victim).has_value());

  Scrubber S(E, ScrubOptions{}, Svc.connector());
  ScrubStats St = S.scrubOnce();
  EXPECT_EQ(St.CorruptFound, 1u);
  EXPECT_EQ(St.Quarantined, 1u);
  EXPECT_EQ(St.Repaired, 1u);
  EXPECT_EQ(St.RepairFailed, 0u);
  EXPECT_GT(St.FilesVerified, 1u);
  // Repaired in place, quarantine cleaned up, every page valid again.
  EXPECT_TRUE(readCheckpointFile(Victim).has_value());
  EXPECT_EQ(countFilesWithPrefix(L.FollowerDir.path(), "ckpt-"),
            countFilesWithPrefix(L.LeaderDir.path(), "ckpt-"));
  EXPECT_EQ(readFileBytes(Victim),
            readFileBytes(L.LeaderDir.path() + "/" +
                          detail::ckptFileName(Head)));
  // A clean follow-up pass finds nothing.
  ScrubStats St2 = S.scrubOnce();
  EXPECT_EQ(St2.CorruptFound, 0u);
}

TEST(Scrub, RepairsSealedWalSegmentFromReplica) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff());
  R.catchUp();

  // Opening the engine seals every shipped generation (appends go to a
  // fresh one), so the shipped WAL tail is sealed from this engine's
  // point of view — exactly what the scrubber may repair.
  DurabilityEngine E(optsFor(L.FollowerDir.path()));
  std::vector<repl::RemoteFile> Files =
      repl::listReplicable(L.FollowerDir.path());
  std::string WalName;
  for (auto It = Files.rbegin(); It != Files.rend(); ++It)
    if (DurabilityEngine::walGenOfName(It->Name) && It->Bytes > 64 &&
        L.FollowerDir.path() + "/" + It->Name != E.activeSegmentPath()) {
      WalName = It->Name;
      break;
    }
  ASSERT_FALSE(WalName.empty());
  std::string Victim = L.FollowerDir.path() + "/" + WalName;
  flipByteAt(Victim, fileSize(Victim) - 8); // inside the last record
  ASSERT_FALSE(walSegmentClean(Victim, /*Sealed=*/true));

  Scrubber S(E, ScrubOptions{}, Svc.connector());
  ScrubStats St = S.scrubOnce();
  EXPECT_EQ(St.CorruptFound, 1u);
  EXPECT_EQ(St.Repaired, 1u);
  EXPECT_EQ(St.Quarantined, 0u) << "WAL repairs in place, never renames";
  EXPECT_TRUE(walSegmentClean(Victim, /*Sealed=*/true));
  EXPECT_EQ(readFileBytes(Victim),
            readFileBytes(L.LeaderDir.path() + "/" + WalName));
}

TEST(Scrub, QuarantineWithoutReplicaStillRecoversOlderGeneration) {
  TempDir D;
  const size_t Shards = 4;
  const VertexId Universe = 2048;
  ShardedGraphStore Ref(Shards, Universe);
  BatchList Batches = makeBatches(11, 200, Universe, 66);
  {
    ShardedGraphStore St(optsFor(D.path(), /*Every=*/4), Shards, Universe);
    for (auto &B : Batches) {
      applyBatch(St, B);
      applyBatch(Ref, B);
    }
    EXPECT_EQ(St.durability()->lastCheckpointSeq(), 8u);
  }
  uint64_t Quarantined, Repaired, RepairFailed;
  {
    DurabilityEngine E(optsFor(D.path()));
    flipByteAt(D.path() + "/" + detail::ckptFileName(8), 100);
    Scrubber S(E); // no repair connector
    ScrubStats St = S.scrubOnce();
    Quarantined = St.Quarantined;
    Repaired = St.Repaired;
    RepairFailed = St.RepairFailed;
    // The quarantine forces the next checkpoint full — no new chain may
    // build on the hole.
    EXPECT_FALSE(E.incrementalBaseFor().has_value());
  }
  EXPECT_EQ(Quarantined, 1u);
  EXPECT_EQ(Repaired, 0u);
  EXPECT_EQ(RepairFailed, 1u);
  EXPECT_EQ(countFilesWithPrefix(D.path(), "ckpt-0000000000000008.aspen"),
            1u); // only the .quarantine remains under that stem
  // Recovery ignores the quarantined head and falls back to generation
  // 4 + the (untrimmed-above-4) WAL: every acknowledged batch survives.
  ShardedGraphStore Re(optsFor(D.path()), Shards, Universe);
  EXPECT_EQ(Re.durability()->recovered().Ckpt->Seq, 4u);
  EXPECT_EQ(Re.batchSeq(), 11u);
  EXPECT_TRUE(shardedIdentical(Re, Ref));
}

TEST(Scrub, BackgroundThreadPacesAndStops) {
  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  Replicator R(L.FollowerDir.path(), Svc.connector(), fastBackoff());
  R.catchUp();
  DurabilityEngine E(optsFor(L.FollowerDir.path()));
  ScrubOptions O;
  O.PassIntervalMs = 1;
  Scrubber S(E, O, Svc.connector());
  S.start();
  S.start(); // idempotent
  while (S.stats().Passes < 2)
    std::this_thread::yield();
  S.stop();
  S.stop(); // idempotent
  ScrubStats St = S.stats();
  EXPECT_GE(St.Passes, 2u);
  EXPECT_GT(St.FilesVerified, 0u);
  EXPECT_GT(St.BytesVerified, 0u);
  EXPECT_EQ(St.CorruptFound, 0u);
}

//===----------------------------------------------------------------------===
// The randomized chaos matrix.
//===----------------------------------------------------------------------===

uint64_t chaosSeed() {
  if (const char *S = std::getenv("ASPEN_CHAOS_SEED"))
    if (*S)
      return std::strtoull(S, nullptr, 0);
  return 0xC0FFEE;
}

TEST(Chaos, RandomizedReplicationFaultMatrix) {
  const uint64_t Seed = chaosSeed();
  // Echoed so a CI failure reproduces exactly:
  //   ASPEN_CHAOS_SEED=<seed> ./replication_test --gtest_filter='Chaos.*'
  std::cout << "[ chaos  ] ASPEN_CHAOS_SEED=" << Seed << "\n";
  size_t I = 0;
  auto Rnd = [&](uint64_t M) { return hashAt(Seed, I++) % M; };

  LeaderFixture L;
  InProcessShipService Svc(L.LeaderDir.path());
  auto R = std::make_unique<Replicator>(L.FollowerDir.path(),
                                        Svc.connector(),
                                        fastBackoff(Seed), /*ChunkBytes=*/512);
  const size_t Rounds = 8;
  for (size_t Round = 0; Round < Rounds; ++Round) {
    SCOPED_TRACE("round " + std::to_string(Round));
    // The leader keeps living between catch-ups: ingest, sometimes a
    // checkpoint (full or incremental as the chain allows), which also
    // retires files the follower then has to drop.
    L.ingest(1 + Rnd(2));
    if (Rnd(2))
      L.Leader->checkpointNow();

    // One random fault armed per round, one-shot.
    switch (Rnd(6)) {
    case 0:
      failpoints().arm("repl.send", FailAction::shortWrite(Rnd(200)),
                       Rnd(12));
      break;
    case 1:
      failpoints().arm("repl.send", FailAction::bitFlip(Rnd(20000)),
                       Rnd(12));
      break;
    case 2:
      failpoints().arm("repl.recv", FailAction::softError(), Rnd(8));
      break;
    case 3:
      failpoints().arm("repl.server.chunk", FailAction::crash(), Rnd(10));
      break;
    case 4:
      failpoints().arm("repl.chunk.write", FailAction::crash(), Rnd(6));
      break;
    default:
      break; // a clean round
    }
    for (;;) {
      try {
        R->catchUp();
        break;
      } catch (const SimulatedCrash &) {
        // Follower death: "restart the process" — a fresh replicator
        // over the same directory.
        R = std::make_unique<Replicator>(L.FollowerDir.path(),
                                         Svc.connector(),
                                         fastBackoff(Seed + Round),
                                         /*ChunkBytes=*/512);
      } catch (const TransportError &) {
        // Retry budget exhausted under injected faults: clear them and
        // let the next attempt heal (the fleet equivalent of waiting
        // out an outage).
        failpoints().reset();
      }
    }
    failpoints().reset();
    expectDirsShipEqual(L.LeaderDir.path(), L.FollowerDir.path());
  }
  L.expectFollowerIdentical();
}

} // namespace
