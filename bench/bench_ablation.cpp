//===- bench/bench_ablation.cpp - Design-choice ablations -------------------===//
//
// Ablations for the design decisions DESIGN.md calls out, beyond the
// paper's own tables:
//
//  1. Chunk codec: difference-encoded vs raw chunks vs uncompressed trees
//     across build time, batch-update throughput, memory, and BFS.
//  2. Direction optimization: edgeMap with dense traversal disabled and
//     with different switching thresholds.
//  3. Flat snapshot: reuse across repeated queries (the paper's
//     observation that snapshots amortize across multiple algorithms).
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bfs.h"
#include "graph/graph.h"

using namespace aspen;

namespace {

template <class GraphT>
void codecRow(const char *Name, const BenchInput &In, int Rounds) {
  GraphT G;
  double Build = medianTime(Rounds, [&] {
    G = GraphT::fromEdges(In.N, In.Edges);
  });
  RMatGenerator Stream(20, 99);
  auto Batch = Stream.edges(0, 100000);
  double Insert = medianTime(Rounds, [&] {
    GraphT G2 = G.insertEdges(Batch);
    (void)G2;
  });
  FlatSnapshotT<typename GraphT::VertexEntry::ValT> FS(G);
  FlatGraphView FV(FS);
  double Bfs = medianTime(Rounds, [&] { bfs(FV, 0); });
  std::printf("%-14s %12s %12s %16s %12s\n", Name,
              fmtBytes(double(G.memoryBytes())).c_str(),
              fmtTime(Build).c_str(),
              fmtRate(double(Batch.size()) / Insert).c_str(),
              fmtTime(Bfs).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  BenchInput In = makeInput(C);
  printEnvironment();

  std::printf("\n== Ablation 1: edge-set representation on %s "
              "(n=%u, m=%zu) ==\n",
              In.Name.c_str(), In.N, In.Edges.size());
  std::printf("%-14s %12s %12s %16s %12s\n", "Representation", "Memory",
              "Build", "Insert 100K", "BFS");
  codecRow<Graph>("C-tree (DE)", In, C.Rounds);
  codecRow<GraphNoDE>("C-tree (raw)", In, C.Rounds);
  codecRow<GraphUncompressed>("Plain tree", In, C.Rounds);

  std::printf("\n== Ablation 2: direction optimization (BFS) ==\n");
  Graph G = Graph::fromEdges(In.N, In.Edges);
  FlatSnapshot FS(G);
  FlatGraphView FV(FS);
  std::printf("%-22s %12s\n", "Mode", "BFS");
  {
    EdgeMapOptions Opt;
    Opt.NoDense = true;
    double T = medianTime(C.Rounds, [&] { bfs(FV, 0, Opt); });
    std::printf("%-22s %12s\n", "sparse only", fmtTime(T).c_str());
  }
  for (uint64_t Den : {5ull, 20ull, 80ull}) {
    EdgeMapOptions Opt;
    Opt.ThresholdDenominator = Den;
    double T = medianTime(C.Rounds, [&] { bfs(FV, 0, Opt); });
    char Label[64];
    std::snprintf(Label, sizeof(Label), "dense if > m/%llu",
                  static_cast<unsigned long long>(Den));
    std::printf("%-22s %12s\n", Label, fmtTime(T).c_str());
  }

  std::printf("\n== Ablation 3: flat-snapshot reuse across queries ==\n");
  TreeGraphView TV(G);
  const int Q = 8;
  double NoFs = timeIt([&] {
    for (int I = 0; I < Q; ++I)
      bfs(TV, VertexId(hashAt(3, I) % In.N));
  });
  double FreshFs = timeIt([&] {
    for (int I = 0; I < Q; ++I) {
      FlatSnapshot F(G);
      FlatGraphView V(F);
      bfs(V, VertexId(hashAt(3, I) % In.N));
    }
  });
  double SharedFs = timeIt([&] {
    FlatSnapshot F(G);
    FlatGraphView V(F);
    for (int I = 0; I < Q; ++I)
      bfs(V, VertexId(hashAt(3, I) % In.N));
  });
  std::printf("%d BFS queries: tree view %s | fresh snapshot each %s | "
              "one shared snapshot %s\n",
              Q, fmtTime(NoFs).c_str(), fmtTime(FreshFs).c_str(),
              fmtTime(SharedFs).c_str());
  std::printf("(snapshot cost amortizes across queries, Section 7.2)\n");
  return 0;
}
