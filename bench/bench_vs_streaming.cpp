//===- bench/bench_vs_streaming.cpp - Tables 10 and 11 ---------------------===//
//
// Reproduces the streaming-system comparisons:
//  * Table 10 - batch edge insertions into an initially-empty graph:
//    Stinger-like versus Aspen, batch sizes 10 .. 2e6 (rMAT updates).
//  * Table 11 - BFS and BC running times on Stinger-like, LLAMA-like, and
//    Aspen. As in the paper, Aspen runs without direction optimization
//    for fairness (A), with its single-thread time (A(1)) reported for
//    the sequential-BC comparison, and with direction optimization (A+)
//    for reference.
//
// Expected shape (paper): Aspen's update rate is ~an order of magnitude
// higher than Stinger's even at small batches and the gap grows with
// batch size; Aspen's BFS is 2.8-10.2x faster than both systems.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include <algorithm>

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "baselines/llama_like.h"
#include "baselines/stinger_like.h"
#include "graph/graph.h"

using namespace aspen;

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  BenchInput In = makeInput(C);
  printEnvironment();

  //===------------------------------------------------------------------===
  // Table 10: batch updates into an empty graph.
  //===------------------------------------------------------------------===
  printHeader("Table 10: batch inserts into an empty graph (rMAT stream)");
  std::printf("%-10s %12s %14s %12s %14s\n", "Batch", "Stinger",
              "ST upd/s", "Aspen", "Asp upd/s");
  RMatGenerator Stream(C.LogN, C.Seed + 2000);
  Graph EmptyBase = Graph::fromEdges(In.N, {});
  for (uint64_t BS : {10ull, 100ull, 1000ull, 10000ull, 100000ull,
                      1000000ull, 2000000ull}) {
    auto Batch = Stream.edges(0, BS);
    // Time only the ingest (graph construction excluded), median of
    // C.Rounds trials onto a fresh empty graph each time.
    double StT = 0;
    {
      std::vector<double> Ts;
      for (int R = 0; R < C.Rounds; ++R) {
        StingerGraph ST(In.N);
        Ts.push_back(timeIt([&] { ST.batchInsert(Batch); }));
      }
      std::sort(Ts.begin(), Ts.end());
      StT = Ts[Ts.size() / 2];
    }
    double AspT = benchTime(C.Rounds, [&] {
      Graph G2 = EmptyBase.insertEdges(Batch);
      (void)G2;
    });
    std::printf("%-10zu %12s %14s %12s %14s\n", size_t(BS),
                fmtTime(StT).c_str(), fmtRate(double(BS) / StT).c_str(),
                fmtTime(AspT).c_str(), fmtRate(double(BS) / AspT).c_str());
  }

  //===------------------------------------------------------------------===
  // Table 11: algorithm performance vs Stinger and LLAMA.
  //===------------------------------------------------------------------===
  StingerGraph ST(In.N);
  ST.batchInsert(In.Edges);
  LlamaGraph LL(In.N);
  size_t Step = In.Edges.size() / 8 + 1;
  for (size_t I = 0; I < In.Edges.size(); I += Step)
    LL.ingestBatch(std::vector<EdgePair>(
        In.Edges.begin() + I,
        In.Edges.begin() + std::min(In.Edges.size(), I + Step)));
  Graph G = Graph::fromEdges(In.N, In.Edges);
  FlatSnapshot FS(G);
  FlatGraphView FV(FS);

  EdgeMapOptions NoDense;
  NoDense.NoDense = true;

  printHeader("Table 11: BFS / BC vs Stinger-like and LLAMA-like");
  std::printf("%-6s %12s %12s %12s %12s %12s %8s %8s\n", "App", "ST", "LL",
              "A", "A(1)", "A+", "ST/A", "LL/A");

  VertexId Src = 0;
  double StBfs = benchTime(C.Rounds, [&] { bfs(ST, Src, NoDense); });
  double LlBfs = benchTime(C.Rounds, [&] { bfs(LL, Src, NoDense); });
  double ABfs = benchTime(C.Rounds, [&] { bfs(FV, Src, NoDense); });
  double A1Bfs = benchTimeSequential([&] { bfs(FV, Src, NoDense); });
  double ADBfs = benchTime(C.Rounds, [&] { bfs(FV, Src); });
  std::printf("%-6s %12s %12s %12s %12s %12s %7.2fx %7.2fx\n", "BFS",
              fmtTime(StBfs).c_str(), fmtTime(LlBfs).c_str(),
              fmtTime(ABfs).c_str(), fmtTime(A1Bfs).c_str(),
              fmtTime(ADBfs).c_str(), StBfs / ABfs, LlBfs / ABfs);

  // Stinger's public BC is sequential (Section 7.5), so its row runs in
  // sequential mode and is compared against Aspen's one-thread time.
  double StBc = benchTimeSequential([&] { bc(ST, Src, NoDense); });
  double LlBc = benchTime(C.Rounds, [&] { bc(LL, Src, NoDense); });
  double ABc = benchTime(C.Rounds, [&] { bc(FV, Src, NoDense); });
  double A1Bc = benchTimeSequential([&] { bc(FV, Src, NoDense); });
  double ADBc = benchTime(C.Rounds, [&] { bc(FV, Src); });
  std::printf("%-6s %12s %12s %12s %12s %12s %7.2fx %7.2fx\n", "BC",
              fmtTime(StBc).c_str(), fmtTime(LlBc).c_str(),
              fmtTime(ABc).c_str(), fmtTime(A1Bc).c_str(),
              fmtTime(ADBc).c_str(), StBc / A1Bc, LlBc / ABc);
  std::printf("\n(ST BC row is sequential, compared against A(1), as in "
              "the paper)\n");
  return 0;
}
