//===- bench/bench_vs_static.cpp - Tables 12, 14 and 15 --------------------===//
//
// Reproduces the static-framework comparisons:
//  * Table 12 - BFS/BC/MIS on GAP-like (uncompressed CSR), Galois-like
//    (asynchronous worklist), Ligra+-like (compressed CSR), and Aspen.
//  * Tables 14/15 - all five algorithms, Ligra+-like vs Aspen, reporting
//    Aspen's slowdown factor.
//
// Expected shape (paper): Aspen is within ~1.2-1.7x of Ligra+ on global
// algorithms and ~1.0-2.9x on local ones; faster than the asynchronous
// Galois-style executor (3-30x there); competitive with GAP.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/local_cluster.h"
#include "algorithms/mis.h"
#include "algorithms/two_hop.h"
#include "baselines/csr.h"
#include "baselines/worklist.h"
#include "graph/graph.h"

using namespace aspen;

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  auto Inputs = makeInputs(C);
  printEnvironment();

  for (const BenchInput &In : Inputs) {
    CsrGraph GAP = CsrGraph::fromEdges(In.N, In.Edges);
    CompressedCsrGraph LP = CompressedCsrGraph::fromEdges(In.N, In.Edges);
    Graph G = Graph::fromEdges(In.N, In.Edges);
    FlatSnapshot FS(G);
    FlatGraphView FV(FS);
    TreeGraphView TV(G);
    VertexId Src = 0;

    std::printf("\n== Table 12: %s (n=%u, m=%zu) ==\n", In.Name.c_str(),
                In.N, In.Edges.size());
    std::printf("%-6s %12s %12s %12s %12s %8s %8s %8s\n", "App", "GAP",
                "Galois", "Ligra+", "Aspen", "GAP/A", "GAL/A", "L+/A");

    double GapBfs = benchTime(C.Rounds, [&] { bfs(GAP, Src); });
    double GalBfs = benchTime(C.Rounds, [&] { asyncBfs(GAP, Src); });
    double LpBfs = benchTime(C.Rounds, [&] { bfs(LP, Src); });
    double ABfs = benchTime(C.Rounds, [&] { bfs(FV, Src); });
    std::printf("%-6s %12s %12s %12s %12s %7.2fx %7.2fx %7.2fx\n", "BFS",
                fmtTime(GapBfs).c_str(), fmtTime(GalBfs).c_str(),
                fmtTime(LpBfs).c_str(), fmtTime(ABfs).c_str(),
                GapBfs / ABfs, GalBfs / ABfs, LpBfs / ABfs);

    double GapBc = benchTime(C.Rounds, [&] { bc(GAP, Src); });
    double LpBc = benchTime(C.Rounds, [&] { bc(LP, Src); });
    double ABc = benchTime(C.Rounds, [&] { bc(FV, Src); });
    std::printf("%-6s %12s %12s %12s %12s %7.2fx %8s %7.2fx\n", "BC",
                fmtTime(GapBc).c_str(), "-", fmtTime(LpBc).c_str(),
                fmtTime(ABc).c_str(), GapBc / ABc, "-", LpBc / ABc);

    double GalMis = benchTime(C.Rounds, [&] { speculativeMis(GAP); });
    double LpMis = benchTime(C.Rounds, [&] { mis(LP); });
    double AMis = benchTime(C.Rounds, [&] { mis(FV); });
    std::printf("%-6s %12s %12s %12s %12s %8s %7.2fx %7.2fx\n", "MIS", "-",
                fmtTime(GalMis).c_str(), fmtTime(LpMis).c_str(),
                fmtTime(AMis).c_str(), "-", GalMis / AMis, LpMis / AMis);

    // Tables 14/15: all five algorithms, Ligra+ vs Aspen.
    std::printf("\n== Tables 14/15: Ligra+ vs Aspen on %s ==\n",
                In.Name.c_str());
    std::printf("%-14s %12s %12s %9s\n", "Application", "L", "A", "A/L");
    auto Row = [&](const char *App, double L, double A) {
      std::printf("%-14s %12s %12s %8.2fx\n", App, fmtTime(L).c_str(),
                  fmtTime(A).c_str(), A / L);
    };
    Row("BFS", LpBfs, ABfs);
    Row("BC", LpBc, ABc);
    Row("MIS", LpMis, AMis);

    const size_t Q = 64;
    auto Source = [&](size_t I) {
      return VertexId(hashAt(C.Seed + 9, I) % In.N);
    };
    double LpHop = timeIt([&] {
      parallelFor(0, Q, [&](size_t I) { twoHop(LP, Source(I)); }, 1);
    }) / double(Q);
    double AHop = timeIt([&] {
      parallelFor(0, Q, [&](size_t I) { twoHop(TV, Source(I)); }, 1);
    }) / double(Q);
    Row("2-hop", LpHop, AHop);

    double LpLC = timeIt([&] {
      parallelFor(0, Q, [&](size_t I) { localCluster(LP, Source(I)); }, 1);
    }) / double(Q);
    double ALC = timeIt([&] {
      parallelFor(0, Q, [&](size_t I) { localCluster(TV, Source(I)); }, 1);
    }) / double(Q);
    Row("Local-Cluster", LpLC, ALC);
  }
  return 0;
}
