//===- bench/bench_micro.cpp - Micro-benchmarks (google-benchmark) --------===//
//
// Primitive-level costs underpinning the tables: C-tree build / find /
// union / multiInsert, PAM union, chunk codec throughput, and flat-
// snapshot construction. Complements the table-reproduction binaries.
//
//===----------------------------------------------------------------------===//

#include "ctree/ctree.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "pam/tree.h"

#include <benchmark/benchmark.h>

using namespace aspen;

namespace {

using CT = CTreeSet<uint32_t, DeltaByteCodec>;

std::vector<uint32_t> sortedRandom(size_t N, uint64_t Seed) {
  auto V = tabulate(N, [&](size_t I) {
    return uint32_t(hashAt(Seed, I) % (8 * N + 1));
  });
  parallelSort(V);
  V.erase(std::unique(V.begin(), V.end()), V.end());
  return V;
}

void BM_CTreeBuild(benchmark::State &State) {
  auto E = sortedRandom(size_t(State.range(0)), 1);
  for (auto _ : State) {
    CT T = CT::buildSorted(E.data(), E.size());
    benchmark::DoNotOptimize(T.size());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(E.size()));
}
BENCHMARK(BM_CTreeBuild)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_CTreeFind(benchmark::State &State) {
  auto E = sortedRandom(size_t(State.range(0)), 2);
  CT T = CT::buildSorted(E.data(), E.size());
  uint64_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(T.contains(uint32_t(hash64(I++) % (8 * E.size()))));
  }
  State.SetItemsProcessed(int64_t(State.iterations()));
}
BENCHMARK(BM_CTreeFind)->Arg(1 << 14)->Arg(1 << 20);

void BM_CTreeUnion(benchmark::State &State) {
  auto A = sortedRandom(size_t(State.range(0)), 3);
  auto B = sortedRandom(size_t(State.range(0)), 4);
  CT TA = CT::buildSorted(A.data(), A.size());
  CT TB = CT::buildSorted(B.data(), B.size());
  for (auto _ : State) {
    CT U = CT::setUnion(TA, TB);
    benchmark::DoNotOptimize(U.size());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(A.size() + B.size()));
}
BENCHMARK(BM_CTreeUnion)->Arg(1 << 12)->Arg(1 << 16);

void BM_CTreeMultiInsertSmallIntoLarge(benchmark::State &State) {
  auto A = sortedRandom(1 << 18, 5);
  CT TA = CT::buildSorted(A.data(), A.size());
  auto Batch = tabulate(size_t(State.range(0)), [&](size_t I) {
    return uint32_t(hashAt(99, I) % (1 << 22));
  });
  for (auto _ : State) {
    CT U = TA.multiInsert(Batch);
    benchmark::DoNotOptimize(U.size());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Batch.size()));
}
BENCHMARK(BM_CTreeMultiInsertSmallIntoLarge)->Arg(16)->Arg(1 << 10);

void BM_CTreeMap(benchmark::State &State) {
  auto E = sortedRandom(size_t(State.range(0)), 6);
  CT T = CT::buildSorted(E.data(), E.size());
  for (auto _ : State) {
    std::atomic<uint64_t> Sum{0};
    T.forEachPar([&](uint32_t V) {
      Sum.fetch_add(V, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(Sum.load());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(E.size()));
}
BENCHMARK(BM_CTreeMap)->Arg(1 << 18);

struct IntSetEntry {
  using KeyT = uint32_t;
  using ValT = Empty;
  using AugT = Empty;
  static bool less(uint32_t A, uint32_t B) { return A < B; }
  static AugT augOfEntry(const KeyT &, const ValT &) { return {}; }
  static AugT augIdentity() { return {}; }
  static AugT augCombine(AugT, AugT) { return {}; }
};

void BM_PamUnion(benchmark::State &State) {
  using S = Tree<IntSetEntry>;
  auto A = sortedRandom(size_t(State.range(0)), 7);
  auto B = sortedRandom(size_t(State.range(0)), 8);
  auto ToEntries = [](const std::vector<uint32_t> &V) {
    std::vector<std::pair<uint32_t, Empty>> Out;
    for (uint32_t K : V)
      Out.push_back({K, Empty{}});
    return Out;
  };
  auto EA = ToEntries(A), EB = ToEntries(B);
  for (auto _ : State) {
    S::Node *TA = S::buildSorted(EA.data(), EA.size());
    S::Node *TB = S::buildSorted(EB.data(), EB.size());
    S::Node *U = S::unionWith(TA, TB, [](Empty, Empty) { return Empty{}; });
    benchmark::DoNotOptimize(S::size(U));
    S::release(U);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(A.size() + B.size()));
}
BENCHMARK(BM_PamUnion)->Arg(1 << 14);

void BM_ChunkEncodeDecode(benchmark::State &State) {
  auto E = sortedRandom(4096, 9);
  for (auto _ : State) {
    auto *C = makeChunk<DeltaByteCodec>(E.data(), E.size());
    uint64_t Sum = 0;
    DeltaByteCodec::iterate<uint32_t>(C, [&](uint32_t V) {
      Sum += V;
      return true;
    });
    benchmark::DoNotOptimize(Sum);
    releaseChunk(C);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(E.size()));
}
BENCHMARK(BM_ChunkEncodeDecode);

void BM_FlatSnapshotBuild(benchmark::State &State) {
  auto Edges = rmatGraphEdges(14, 8, 10);
  Graph G = Graph::fromEdges(1 << 14, Edges);
  for (auto _ : State) {
    FlatSnapshot FS(G);
    benchmark::DoNotOptimize(FS.numEdges());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * (1 << 14));
}
BENCHMARK(BM_FlatSnapshotBuild);

void BM_GraphBatchInsert(benchmark::State &State) {
  auto Edges = rmatGraphEdges(14, 8, 11);
  Graph G = Graph::fromEdges(1 << 14, Edges);
  RMatGenerator Stream(14, 123);
  auto Batch = Stream.edges(0, uint64_t(State.range(0)));
  for (auto _ : State) {
    Graph G2 = G.insertEdges(Batch);
    benchmark::DoNotOptimize(G2.numEdges());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Batch.size()));
}
BENCHMARK(BM_GraphBatchInsert)->Arg(1 << 6)->Arg(1 << 12)->Arg(1 << 16);

} // namespace

BENCHMARK_MAIN();
