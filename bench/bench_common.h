//===- bench/bench_common.h - Shared benchmark driver support -------------===//
//
// Common scaffolding for the table-reproduction benchmarks: input-graph
// construction (synthetic rMAT stand-ins for the paper's datasets, see
// DESIGN.md Section 2), timing helpers, and table formatting.
//
// Every bench accepts:
//   -scale <logN>    log2 of the vertex count (default 16; -large adds 2)
//   -factor <f>      directed edges per vertex before symmetrization (8)
//   -rounds <r>      timing repetitions (median reported, default 3)
//   -seed <s>        generator seed (default 1)
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_BENCH_BENCH_COMMON_H
#define ASPEN_BENCH_BENCH_COMMON_H

#include "gen/generators.h"
#include "gen/graph_io.h"
#include "parallel/scheduler.h"
#include "util/command_line.h"
#include "util/timer.h"

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace aspen {

struct BenchConfig {
  int LogN = 16;
  uint64_t EdgeFactor = 8;
  int Rounds = 3;
  uint64_t Seed = 1;
  bool Large = false;
  std::string InputFile; ///< optional AdjacencyGraph file overriding rMAT
};

inline BenchConfig parseBenchConfig(int Argc, char **Argv,
                                    int DefaultLogN = 16) {
  CommandLine CL(Argc, Argv);
  BenchConfig C;
  C.Large = CL.has("large");
  C.LogN = int(CL.getInt("scale", DefaultLogN + (C.Large ? 2 : 0)));
  C.EdgeFactor = uint64_t(CL.getInt("factor", 8));
  C.Rounds = int(CL.getInt("rounds", 3));
  C.Seed = uint64_t(CL.getInt("seed", 1));
  C.InputFile = CL.getString("input");
  return C;
}

/// A named benchmark input (symmetrized, deduplicated directed edges).
struct BenchInput {
  std::string Name;
  VertexId N = 0;
  std::vector<EdgePair> Edges;

  double avgDegree() const {
    return N ? double(Edges.size()) / double(N) : 0.0;
  }
};

inline BenchInput makeInput(const BenchConfig &C) {
  BenchInput In;
  if (!C.InputFile.empty()) {
    EdgeList E;
    if (!readAdjacencyGraph(C.InputFile, E)) {
      std::fprintf(stderr, "error: cannot read %s\n", C.InputFile.c_str());
      std::exit(1);
    }
    In.Name = C.InputFile;
    In.N = E.NumVertices;
    In.Edges = dedupEdges(symmetrize(std::move(E.Edges)));
    return In;
  }
  In.Name = "rmat-" + std::to_string(C.LogN);
  In.N = VertexId(1) << C.LogN;
  In.Edges = rmatGraphEdges(C.LogN, C.EdgeFactor, C.Seed);
  return In;
}

/// Two standard inputs (the "small" and "larger" graphs of the tables).
inline std::vector<BenchInput> makeInputs(const BenchConfig &C) {
  std::vector<BenchInput> Out;
  if (!C.InputFile.empty()) {
    Out.push_back(makeInput(C));
    return Out;
  }
  BenchConfig Small = C;
  Out.push_back(makeInput(Small));
  BenchConfig Big = C;
  Big.LogN = C.LogN + 2;
  Big.Seed = C.Seed + 1;
  Out.push_back(makeInput(Big));
  return Out;
}

/// Median of Rounds timings of Fn (sequential mode honored by caller).
template <class F> double benchTime(int Rounds, F &&Fn) {
  return medianTime(Rounds, std::forward<F>(Fn));
}

/// Run Fn once in sequential mode and return the elapsed time.
template <class F> double benchTimeSequential(F &&Fn) {
  setSequentialMode(true);
  double T = timeIt(std::forward<F>(Fn));
  setSequentialMode(false);
  return T;
}

inline void printHeader(const char *Title) {
  std::printf("\n== %s ==\n", Title);
}

inline void printEnvironment() {
  std::printf("machine: %d workers\n", numWorkers());
}

inline std::string fmtTime(double Seconds) {
  char Buf[64];
  if (Seconds < 1e-3)
    std::snprintf(Buf, sizeof(Buf), "%.3gus", Seconds * 1e6);
  else if (Seconds < 1.0)
    std::snprintf(Buf, sizeof(Buf), "%.3gms", Seconds * 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3gs", Seconds);
  return Buf;
}

inline std::string fmtBytes(double Bytes) {
  char Buf[64];
  if (Bytes >= 1e9)
    std::snprintf(Buf, sizeof(Buf), "%.3f GB", Bytes / 1e9);
  else if (Bytes >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.2f MB", Bytes / 1e6);
  else
    std::snprintf(Buf, sizeof(Buf), "%.1f KB", Bytes / 1e3);
  return Buf;
}

inline std::string fmtRate(double PerSec) {
  char Buf[64];
  if (PerSec >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.3gM/s", PerSec / 1e6);
  else if (PerSec >= 1e3)
    std::snprintf(Buf, sizeof(Buf), "%.3gK/s", PerSec / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3g/s", PerSec);
  return Buf;
}

//===----------------------------------------------------------------------===
// Metric trail (-json / -compare), shared by the table benchmarks: every
// reported metric is recorded under a stable "scope/op/metric" key; -json
// writes them as flat JSON (committed as BENCH_<name>.json and uploaded by
// CI), -compare loads a previous file and annotates printed rows with the
// before/after ratio.
//===----------------------------------------------------------------------===

inline std::vector<std::pair<std::string, double>> &benchMetrics() {
  static std::vector<std::pair<std::string, double>> M;
  return M;
}

inline std::map<std::string, double> &benchBaseline() {
  static std::map<std::string, double> B;
  return B;
}

inline void recordMetric(const std::string &Key, double Value) {
  benchMetrics().emplace_back(Key, Value);
}

/// "  [1.23x]" when -compare has a baseline for \p Key, else "".
inline std::string compareSuffix(const std::string &Key, double Value) {
  auto It = benchBaseline().find(Key);
  if (It == benchBaseline().end() || It->second <= 0.0)
    return "";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "  [%.2fx]", Value / It->second);
  return Buf;
}

inline bool loadBenchBaseline(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  char Line[512];
  while (std::fgets(Line, sizeof(Line), F)) {
    char Key[256];
    double Value;
    if (std::sscanf(Line, " \"%255[^\"]\" : %lf", Key, &Value) == 2)
      benchBaseline()[Key] = Value;
  }
  std::fclose(F);
  return true;
}

/// Write every recorded metric to \p Path as flat JSON; \p StringMeta
/// entries (e.g. the decode tier) are emitted first as string values.
inline bool writeBenchJson(
    const std::string &Path,
    const std::vector<std::pair<std::string, std::string>> &StringMeta = {}) {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F, "{\n");
  auto &M = benchMetrics();
  for (const auto &S : StringMeta)
    std::fprintf(F, "  \"%s\": \"%s\"%s\n", S.first.c_str(),
                 S.second.c_str(),
                 (!M.empty() || &S != &StringMeta.back()) ? "," : "");
  for (size_t I = 0; I < M.size(); ++I)
    std::fprintf(F, "  \"%s\": %.6g%s\n", M[I].first.c_str(), M[I].second,
                 I + 1 < M.size() ? "," : "");
  std::fprintf(F, "}\n");
  std::fclose(F);
  return true;
}

/// Standard tail of a metric-trail benchmark: honor -compare (load before
/// printing is the caller's job via loadBenchBaseline) and -json.
inline void finishMetricTrail(
    const CommandLine &CL,
    const std::vector<std::pair<std::string, std::string>> &StringMeta = {}) {
  std::string JsonPath = CL.getString("json");
  if (!JsonPath.empty()) {
    if (writeBenchJson(JsonPath, StringMeta))
      std::printf("\nmetrics written to %s\n", JsonPath.c_str());
    else
      std::fprintf(stderr, "warning: cannot write -json file %s\n",
                   JsonPath.c_str());
  }
}

} // namespace aspen

#endif // ASPEN_BENCH_BENCH_COMMON_H
