//===- bench/bench_algorithms.cpp - Tables 3 and 4 -------------------------===//
//
// Reproduces Tables 3/4: single-thread time (1), parallel time (P), and
// self-relative speedup (SU) for the paper's five algorithms - BFS, BC,
// MIS (global, run over a flat snapshot as in Section 5.1) and 2-hop,
// Local-Cluster (local, run through the vertex tree; averaged over many
// queries, run both sequentially and concurrently).
//
// Expected shape (paper): 32-78x self-relative speedups on 72 cores for
// global algorithms; 35-49x for local queries; proportionally smaller on
// this machine's core count.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/local_cluster.h"
#include "algorithms/mis.h"
#include "algorithms/two_hop.h"
#include "graph/graph.h"

using namespace aspen;

namespace {

void printRow(const char *App, double T1, double TP) {
  std::printf("%-14s %12s %12s %8.1fx\n", App, fmtTime(T1).c_str(),
              fmtTime(TP).c_str(), T1 / TP);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv, 18);
  auto Inputs = makeInputs(C);
  printEnvironment();

  for (const BenchInput &In : Inputs) {
    Graph G = Graph::fromEdges(In.N, In.Edges);
    FlatSnapshot FS(G);
    FlatGraphView FV(FS);
    TreeGraphView TV(G);

    std::printf("\n== Tables 3/4: %s (n=%u, m=%zu) ==\n", In.Name.c_str(),
                In.N, In.Edges.size());
    std::printf("%-14s %12s %12s %9s\n", "Application", "(1)", "(P)",
                "(SU)");

    // Global algorithms on the flat snapshot.
    double Bfs1 = benchTimeSequential([&] { bfs(FV, 0); });
    double BfsP = benchTime(C.Rounds, [&] { bfs(FV, 0); });
    printRow("BFS", Bfs1, BfsP);

    double Bc1 = benchTimeSequential([&] { bc(FV, 0); });
    double BcP = benchTime(C.Rounds, [&] { bc(FV, 0); });
    printRow("BC", Bc1, BcP);

    double Mis1 = benchTimeSequential([&] { mis(FV); });
    double MisP = benchTime(C.Rounds, [&] { mis(FV); });
    printRow("MIS", Mis1, MisP);

    // Local algorithms: average over Q queries; sequential = queries one
    // after another on one thread; parallel = queries concurrently.
    const size_t Q = 24;
    auto Source = [&](size_t I) {
      return VertexId(hashAt(C.Seed + 7, I) % In.N);
    };

    double TwoHop1 = benchTimeSequential([&] {
      for (size_t I = 0; I < Q; ++I)
        twoHop(TV, Source(I));
    }) / double(Q);
    double TwoHopP = timeIt([&] {
      parallelFor(0, Q, [&](size_t I) { twoHop(TV, Source(I)); }, 1);
    }) / double(Q);
    printRow("2-hop", TwoHop1, TwoHopP);

    double LC1 = benchTimeSequential([&] {
      for (size_t I = 0; I < Q; ++I)
        localCluster(TV, Source(I));
    }) / double(Q);
    double LCP = timeIt([&] {
      parallelFor(0, Q, [&](size_t I) { localCluster(TV, Source(I)); }, 1);
    }) / double(Q);
    printRow("Local-Cluster", LC1, LCP);
  }
  return 0;
}
