//===- bench/bench_algorithms.cpp - Tables 3 and 4 -------------------------===//
//
// Reproduces Tables 3/4: single-thread time (1), parallel time (P), and
// self-relative speedup (SU) for the paper's five algorithms - BFS, BC,
// MIS (global, run over a flat snapshot as in Section 5.1) and 2-hop,
// Local-Cluster (local, run through the vertex tree; averaged over many
// queries, run both sequentially and concurrently).
//
// Expected shape (paper): 32-78x self-relative speedups on 72 cores for
// global algorithms; 35-49x for local queries; proportionally smaller on
// this machine's core count.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/local_cluster.h"
#include "algorithms/mis.h"
#include "algorithms/pagerank.h"
#include "algorithms/two_hop.h"
#include "graph/graph.h"
#include "memory/algo_context.h"

using namespace aspen;

namespace {

void printRow(const char *App, double T1, double TP) {
  std::printf("%-14s %12s %12s %8.1fx\n", App, fmtTime(T1).c_str(),
              fmtTime(TP).c_str(), T1 / TP);
}

/// Steady-state allocation accounting for the streaming-analytics
/// scenario: after a first (warm-up) run populates the AlgoContext
/// workspace, second and subsequent runs of an algorithm must perform
/// zero heap allocations in the Ligra/algorithm layer. Reported as the
/// per-run deltas of the pool-allocator event counters plus the context's
/// own miss counter over \p Rounds post-warm-up runs.
template <class F>
void reportSteadyStateAllocs(const char *App, AlgoContext &Ctx, int Rounds,
                             const F &Run) {
  Run(); // warm-up: populates the workspace
  uint64_t Counted0 = countedAllocEvents();
  uint64_t Scratch0 = scratchAllocEvents();
  uint64_t Miss0 = Ctx.missCount();
  for (int R = 0; R < Rounds; ++R)
    Run();
  std::printf("%-14s counted=%llu scratch=%llu ctx-miss=%llu over %d "
              "steady-state runs\n",
              App,
              static_cast<unsigned long long>(countedAllocEvents() -
                                              Counted0),
              static_cast<unsigned long long>(scratchAllocEvents() -
                                              Scratch0),
              static_cast<unsigned long long>(Ctx.missCount() - Miss0),
              Rounds);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv, 18);
  auto Inputs = makeInputs(C);
  printEnvironment();

  for (const BenchInput &In : Inputs) {
    Graph G = Graph::fromEdges(In.N, In.Edges);
    FlatSnapshot FS(G);
    FlatGraphView FV(FS);
    TreeGraphView TV(G);

    std::printf("\n== Tables 3/4: %s (n=%u, m=%zu) ==\n", In.Name.c_str(),
                In.N, In.Edges.size());
    std::printf("%-14s %12s %12s %9s\n", "Application", "(1)", "(P)",
                "(SU)");

    // Global algorithms on the flat snapshot.
    double Bfs1 = benchTimeSequential([&] { bfs(FV, 0); });
    double BfsP = benchTime(C.Rounds, [&] { bfs(FV, 0); });
    printRow("BFS", Bfs1, BfsP);

    double Bc1 = benchTimeSequential([&] { bc(FV, 0); });
    double BcP = benchTime(C.Rounds, [&] { bc(FV, 0); });
    printRow("BC", Bc1, BcP);

    double Mis1 = benchTimeSequential([&] { mis(FV); });
    double MisP = benchTime(C.Rounds, [&] { mis(FV); });
    printRow("MIS", Mis1, MisP);

    // Local algorithms: average over Q queries; sequential = queries one
    // after another on one thread; parallel = queries concurrently.
    const size_t Q = 24;
    auto Source = [&](size_t I) {
      return VertexId(hashAt(C.Seed + 7, I) % In.N);
    };

    double TwoHop1 = benchTimeSequential([&] {
      for (size_t I = 0; I < Q; ++I)
        twoHop(TV, Source(I));
    }) / double(Q);
    double TwoHopP = timeIt([&] {
      parallelFor(0, Q, [&](size_t I) { twoHop(TV, Source(I)); }, 1);
    }) / double(Q);
    printRow("2-hop", TwoHop1, TwoHopP);

    double LC1 = benchTimeSequential([&] {
      for (size_t I = 0; I < Q; ++I)
        localCluster(TV, Source(I));
    }) / double(Q);
    double LCP = timeIt([&] {
      parallelFor(0, Q, [&](size_t I) { localCluster(TV, Source(I)); }, 1);
    }) / double(Q);
    printRow("Local-Cluster", LC1, LCP);

    // Allocation-free steady state (the PR-2 workspace refactor): re-run
    // BFS / PageRank / BC with a shared AlgoContext, as a reader re-running
    // analytics after every ingested batch would.
    std::printf("\n-- steady-state allocations (shared AlgoContext) --\n");
    AlgoContext Ctx;
    reportSteadyStateAllocs("BFS", Ctx, C.Rounds,
                            [&] { bfs(FV, 0, Ctx); });
    reportSteadyStateAllocs("PageRank", Ctx, C.Rounds,
                            [&] { pageRank(FV, Ctx, 5); });
    reportSteadyStateAllocs("BC", Ctx, C.Rounds, [&] { bc(FV, 0, Ctx); });
  }
  return 0;
}
