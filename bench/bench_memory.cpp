//===- bench/bench_memory.cpp - Tables 1, 2 and 9 --------------------------===//
//
// Reproduces:
//  * Table 1 - statistics of the input graphs.
//  * Table 2 - memory usage of Aspen configurations: flat snapshot,
//    uncompressed trees, C-trees without difference encoding, C-trees with
//    difference encoding, and the savings factor.
//  * Table 9 - memory versus the other systems: Stinger-like, LLAMA-like,
//    Ligra+-like (compressed CSR), and Aspen (DE).
//
// Expected shape (paper): DE saves ~4.7-11.3x over uncompressed trees;
// Aspen is ~8-11x smaller than Stinger, ~2-3.5x smaller than LLAMA, and
// ~1.8-2.3x larger than Ligra+.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "baselines/csr.h"
#include "baselines/llama_like.h"
#include "baselines/stinger_like.h"
#include "graph/graph.h"

using namespace aspen;

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  auto Inputs = makeInputs(C);
  printEnvironment();

  printHeader("Table 1: input graph statistics");
  std::printf("%-12s %14s %14s %10s\n", "Graph", "Num. Vertices",
              "Num. Edges", "Avg. Deg.");
  for (const BenchInput &In : Inputs)
    std::printf("%-12s %14u %14zu %10.1f\n", In.Name.c_str(), In.N,
                In.Edges.size(), In.avgDegree());

  printHeader("Table 2: memory usage of Aspen configurations");
  std::printf("%-12s %12s %14s %14s %12s %9s\n", "Graph", "Flat Snap.",
              "Aspen Uncomp.", "Aspen (No DE)", "Aspen (DE)", "Savings");
  for (const BenchInput &In : Inputs) {
    Graph GD = Graph::fromEdges(In.N, In.Edges);
    GraphNoDE GN = GraphNoDE::fromEdges(In.N, In.Edges);
    GraphUncompressed GU = GraphUncompressed::fromEdges(In.N, In.Edges);
    FlatSnapshot FS(GD);
    double Flat = double(FS.memoryBytes());
    double Unc = double(GU.memoryBytes());
    double NoDE = double(GN.memoryBytes());
    double DE = double(GD.memoryBytes());
    std::printf("%-12s %12s %14s %14s %12s %8.2fx\n", In.Name.c_str(),
                fmtBytes(Flat).c_str(), fmtBytes(Unc).c_str(),
                fmtBytes(NoDE).c_str(), fmtBytes(DE).c_str(), Unc / DE);
  }

  printHeader("Table 9: memory vs other systems");
  std::printf("%-12s %12s %12s %12s %12s %8s %8s %8s\n", "Graph", "Stinger",
              "LLAMA", "Ligra+", "Aspen", "ST/Asp", "LL/Asp", "L+/Asp");
  for (const BenchInput &In : Inputs) {
    StingerGraph ST(In.N);
    ST.batchInsert(In.Edges);
    LlamaGraph LL(In.N);
    // Load LLAMA through several batches, as a streaming system would.
    size_t Step = In.Edges.size() / 8 + 1;
    for (size_t I = 0; I < In.Edges.size(); I += Step)
      LL.ingestBatch(std::vector<EdgePair>(
          In.Edges.begin() + I,
          In.Edges.begin() + std::min(In.Edges.size(), I + Step)));
    CompressedCsrGraph LP = CompressedCsrGraph::fromEdges(In.N, In.Edges);
    Graph A = Graph::fromEdges(In.N, In.Edges);
    double STB = double(ST.memoryBytes());
    double LLB = double(LL.memoryBytes());
    double LPB = double(LP.memoryBytes());
    double AB = double(A.memoryBytes());
    std::printf("%-12s %12s %12s %12s %12s %7.2fx %7.2fx %7.2fx\n",
                In.Name.c_str(), fmtBytes(STB).c_str(),
                fmtBytes(LLB).c_str(), fmtBytes(LPB).c_str(),
                fmtBytes(AB).c_str(), STB / AB, LLB / AB, LPB / AB);
  }

  printHeader("bytes per directed edge");
  for (const BenchInput &In : Inputs) {
    Graph A = Graph::fromEdges(In.N, In.Edges);
    std::printf("%-12s Aspen(DE): %.2f B/edge\n", In.Name.c_str(),
                double(A.memoryBytes()) / double(In.Edges.size()));
  }
  return 0;
}
