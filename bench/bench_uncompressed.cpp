//===- bench/bench_uncompressed.cpp - Table 13 ------------------------------===//
//
// Reproduces Table 13: BFS over the uncompressed purely-functional tree
// representation versus C-trees with difference encoding, reporting the
// speedup from the improved locality of chunking (the paper reports
// 2.5-2.8x).
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "graph/graph.h"

using namespace aspen;

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  auto Inputs = makeInputs(C);
  printEnvironment();

  printHeader("Table 13: uncompressed trees vs C-trees");
  std::printf("%-12s %14s %12s %8s %14s %12s %8s\n", "Graph",
              "Uncomp. BFS", "Aspen BFS", "(S)", "Uncomp. BC", "Aspen BC",
              "(S)");
  for (const BenchInput &In : Inputs) {
    GraphUncompressed GU = GraphUncompressed::fromEdges(In.N, In.Edges);
    Graph GD = Graph::fromEdges(In.N, In.Edges);
    FlatSnapshotT<UncompressedSet<VertexId>> FSU(GU);
    FlatSnapshot FSD(GD);
    FlatGraphView FU(FSU);
    FlatGraphView FD(FSD);
    double TU = benchTime(C.Rounds, [&] { bfs(FU, 0); });
    double TD = benchTime(C.Rounds, [&] { bfs(FD, 0); });
    double BU = benchTime(C.Rounds, [&] { bc(FU, 0); });
    double BD = benchTime(C.Rounds, [&] { bc(FD, 0); });
    std::printf("%-12s %14s %12s %7.2fx %14s %12s %7.2fx\n",
                In.Name.c_str(), fmtTime(TU).c_str(), fmtTime(TD).c_str(),
                TU / TD, fmtTime(BU).c_str(), fmtTime(BD).c_str(),
                BU / BD);
  }
  std::printf("\n(the paper's 2.5-2.8x locality gap requires graphs far "
              "larger than this machine's caches;\n see EXPERIMENTS.md "
              "for the scale discussion)\n");
  return 0;
}
