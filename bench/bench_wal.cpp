//===- bench/bench_wal.cpp - Durable-ingest and recovery benchmarks --------===//
//
// The cost of durability (DESIGN.md Section 7): how much of the in-memory
// batch-ingest throughput survives when every batch is WAL-logged and
// group-committed before the call returns, what the per-batch commit
// latency looks like (p50/p99), and how recovery time scales with the
// length of the WAL that must be replayed -- with and without an
// intervening checkpoint to truncate it.
//
// Reported rows:
//   wal/ingest/*            durable vs in-memory throughput and the ratio
//                           (acceptance floor: ratio >= 0.5)
//   wal/commit/*            group-commit latency percentiles
//   wal/recover/replay<K>/* reopen time after K uncheckpointed batches
//   wal/recover/ckpt/*      reopen time when a checkpoint truncated the log
//   wal/ckpt/*              full vs incremental checkpoint bytes and time
//                           (a 1-of-S-shards delta should write ~1/S)
//   wal/ship/*              cold follower catch-up over the in-process
//                           transport (bytes shipped per second)
//   wal/scrub/*             one full scrubber verification pass
//
//   -json <path>    write every metric as flat JSON (BENCH_wal.json)
//   -compare <path> annotate rows with before/after ratios vs a prior file
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "graph/versioned_graph.h"
#include "store/replication.h"
#include "store/sharded_graph.h"
#include "util/hash.h"

#include <algorithm>
#include <cstdlib>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace aspen;

namespace {

/// A fresh scratch directory for one benchmark scenario, removed (with its
/// contents) when the scenario ends.
class ScratchDir {
public:
  ScratchDir() {
    char Tmpl[] = "/tmp/aspen-bench-wal-XXXXXX";
    const char *D = mkdtemp(Tmpl);
    Path = D ? D : "/tmp/aspen-bench-wal-fallback";
    if (!D)
      ::mkdir(Path.c_str(), 0755);
  }
  ~ScratchDir() { removeAll(); }

  void removeAll() {
    DIR *D = ::opendir(Path.c_str());
    if (!D)
      return;
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        ::unlink((Path + "/" + Name).c_str());
    }
    ::closedir(D);
    ::rmdir(Path.c_str());
  }

  std::string Path;
};

void reportRate(const std::string &Key, double Value, const char *Unit) {
  recordMetric(Key, Value);
  std::printf("  %-40s %12s %s%s\n", Key.c_str(), fmtRate(Value).c_str(),
              Unit, compareSuffix(Key, Value).c_str());
}

void reportTime(const std::string &Key, double Seconds) {
  recordMetric(Key, Seconds);
  std::printf("  %-40s %12s%s\n", Key.c_str(), fmtTime(Seconds).c_str(),
              compareSuffix(Key, Seconds).c_str());
}

void reportRatio(const std::string &Key, double Value) {
  recordMetric(Key, Value);
  std::printf("  %-40s %11.2fx%s\n", Key.c_str(), Value,
              compareSuffix(Key, Value).c_str());
}

double fileBytes(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 ? double(St.st_size) : 0.0;
}

std::vector<std::vector<EdgePair>> makeBatches(RMatGenerator &G,
                                               size_t NumBatches,
                                               size_t BatchSize) {
  std::vector<std::vector<EdgePair>> Out;
  Out.reserve(NumBatches);
  for (size_t I = 0; I < NumBatches; ++I)
    Out.push_back(G.edges(I * BatchSize, BatchSize));
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv, /*DefaultLogN=*/17);
  CommandLine CL(Argc, Argv);
  std::string ComparePath = CL.getString("compare");
  if (!ComparePath.empty() && !loadBenchBaseline(ComparePath))
    std::fprintf(stderr, "warning: cannot read -compare file %s\n",
                 ComparePath.c_str());
  printEnvironment();

  const VertexId N = VertexId(1) << C.LogN;
  const size_t Shards = 8;
  RMatGenerator Stream(C.LogN, C.Seed + 2000);

  //===------------------------------------------------------------------===
  // Durable vs in-memory ingest throughput.
  //===------------------------------------------------------------------===

  const size_t TputBatches = 16, TputBatchSize = 100000;
  auto Batches = makeBatches(Stream, TputBatches, TputBatchSize);
  double TotalEdges = double(TputBatches) * double(TputBatchSize);

  std::printf("\n== durable ingest: %zu batches x %zu edges, %zu shards "
              "==\n",
              TputBatches, TputBatchSize, Shards);

  double MemT = benchTime(C.Rounds, [&] {
    ShardedGraphStore St(Shards, N, std::vector<EdgePair>{});
    for (auto &B : Batches)
      St.insertBatch(B);
  });
  double MemEps = TotalEdges / MemT;
  reportRate("wal/ingest/memory_eps", MemEps, "edges/s");

  double DurT = benchTime(C.Rounds, [&] {
    ScratchDir Dir;
    DurabilityOptions O;
    O.Dir = Dir.Path;
    ShardedGraphStore St(O, Shards, N);
    for (auto &B : Batches)
      St.insertBatch(B);
  });
  double DurEps = TotalEdges / DurT;
  reportRate("wal/ingest/durable_eps", DurEps, "edges/s");
  reportRatio("wal/ingest/durable_ratio", DurEps / MemEps);

  double CkptT = benchTime(C.Rounds, [&] {
    ScratchDir Dir;
    DurabilityOptions O;
    O.Dir = Dir.Path;
    O.CheckpointEveryBatches = 8;
    ShardedGraphStore St(O, Shards, N);
    for (auto &B : Batches)
      St.insertBatch(B);
  });
  reportRate("wal/ingest/durable_ckpt8_eps", TotalEdges / CkptT, "edges/s");

  //===------------------------------------------------------------------===
  // Group-commit latency percentiles (single writer, small batches).
  //===------------------------------------------------------------------===

  const size_t LatBatches = 400, LatBatchSize = 1000;
  std::printf("\n== group-commit latency: %zu batches x %zu edges ==\n",
              LatBatches, LatBatchSize);
  {
    ScratchDir Dir;
    DurabilityOptions O;
    O.Dir = Dir.Path;
    VersionedGraph VG(O);
    std::vector<double> Lat;
    Lat.reserve(LatBatches);
    for (size_t I = 0; I < LatBatches; ++I) {
      auto B = Stream.edges(4000000 + I * LatBatchSize, LatBatchSize);
      Lat.push_back(timeIt([&] { VG.insertEdgesBatch(std::move(B)); }));
    }
    std::sort(Lat.begin(), Lat.end());
    double P50 = Lat[Lat.size() / 2];
    double P99 = Lat[std::min(Lat.size() - 1, (Lat.size() * 99) / 100)];
    reportTime("wal/commit/p50_s", P50);
    reportTime("wal/commit/p99_s", P99);
    reportRate("wal/commit/p50_eps", double(LatBatchSize) / P50, "edges/s");
  }

  //===------------------------------------------------------------------===
  // Recovery time vs WAL length.
  //===------------------------------------------------------------------===

  const size_t RecBatchSize = 5000;
  std::printf("\n== recovery: reopen after K uncheckpointed batches of %zu "
              "edges ==\n",
              RecBatchSize);
  for (size_t K : {16u, 64u, 256u}) {
    ScratchDir Dir;
    DurabilityOptions O;
    O.Dir = Dir.Path;
    {
      VersionedGraph VG(O);
      for (size_t I = 0; I < K; ++I)
        VG.insertEdgesBatch(
            Stream.edges(8000000 + I * RecBatchSize, RecBatchSize));
    }
    double RecT = timeIt([&] {
      VersionedGraph Re(O);
      if (Re.durability()->recovered().MaxSeq != K)
        std::abort(); // lost batches: the numbers below would be fiction
    });
    std::string Prefix = "wal/recover/replay" + std::to_string(K);
    reportTime(Prefix + "/time_s", RecT);
    reportRate(Prefix + "/eps", double(K) * double(RecBatchSize) / RecT,
               "edges/s");
  }

  std::printf("\n== recovery: checkpoint at batch 192 of 256 truncates the "
              "replay ==\n");
  {
    ScratchDir Dir;
    DurabilityOptions O;
    O.Dir = Dir.Path;
    O.CheckpointEveryBatches = 192;
    {
      VersionedGraph VG(O);
      for (size_t I = 0; I < 256; ++I)
        VG.insertEdgesBatch(
            Stream.edges(16000000 + I * RecBatchSize, RecBatchSize));
    }
    double RecT = timeIt([&] {
      VersionedGraph Re(O);
      if (Re.durability()->recovered().MaxSeq != 256)
        std::abort();
    });
    reportTime("wal/recover/ckpt/time_s", RecT);
  }

  //===------------------------------------------------------------------===
  // Full vs incremental checkpoint cost.
  //===------------------------------------------------------------------===

  std::printf("\n== checkpoints: full vs 1-of-%zu-shards incremental ==\n",
              Shards);
  ScratchDir ShipDir; // stays populated: the ship + scrub sections reuse it
  {
    DurabilityOptions O;
    O.Dir = ShipDir.Path;
    ShardedGraphStore St(O, Shards, N);
    for (auto &B : Batches)
      St.insertBatch(B);
    double FullT = timeIt([&] { St.checkpointNow(); });
    uint64_t FullSeq = St.batchSeq();
    double FullBytes =
        fileBytes(ShipDir.Path + "/" + detail::ckptFileName(FullSeq));
    // One delta confined to shard 0: endpoints folded onto multiples of
    // the shard count, so exactly one root pointer moves.
    std::vector<EdgePair> Delta = Stream.edges(24000000, 20000);
    for (EdgePair &E : Delta) {
      E.first &= ~VertexId(Shards - 1);
      E.second &= ~VertexId(Shards - 1);
    }
    St.insertBatch(Delta);
    double IncrT = timeIt([&] { St.checkpointNow(); });
    double IncrBytes =
        fileBytes(ShipDir.Path + "/" + detail::ckptFileName(FullSeq + 1));
    reportTime("wal/ckpt/full_s", FullT);
    reportRate("wal/ckpt/full_bytes", FullBytes, "bytes");
    reportTime("wal/ckpt/incr_s", IncrT);
    reportRate("wal/ckpt/incr_bytes", IncrBytes, "bytes");
    reportRatio("wal/ckpt/incr_ratio", IncrBytes / FullBytes);
  }

  //===------------------------------------------------------------------===
  // Snapshot shipping: cold follower catch-up.
  //===------------------------------------------------------------------===

  std::printf("\n== snapshot shipping: cold follower catch-up ==\n");
  {
    ScratchDir FollowerDir;
    InProcessShipService Svc(ShipDir.Path);
    Replicator R(FollowerDir.Path, Svc.connector());
    double ShipT = timeIt([&] { R.catchUp(); });
    const ReplicationStats &S = R.stats();
    reportTime("wal/ship/time_s", ShipT);
    reportRate("wal/ship/bytes_per_s", double(S.BytesFetched) / ShipT,
               "B/s");
    reportRate("wal/ship/files", double(S.FilesFetched), "files");
  }

  //===------------------------------------------------------------------===
  // Scrubbing: one full verification pass.
  //===------------------------------------------------------------------===

  std::printf("\n== scrubber: one verification pass over the directory "
              "==\n");
  {
    DurabilityOptions O;
    O.Dir = ShipDir.Path;
    DurabilityEngine E(O);
    Scrubber Sc(E);
    ScrubStats SS;
    double ScrubT = timeIt([&] { SS = Sc.scrubOnce(); });
    if (SS.CorruptFound)
      std::abort(); // a clean directory must scrub clean
    reportTime("wal/scrub/time_s", ScrubT);
    reportRate("wal/scrub/bytes_per_s", double(SS.BytesVerified) / ScrubT,
               "B/s");
  }

  recordMetric("machine/workers", double(numWorkers()));
  finishMetricTrail(CL);
  return 0;
}
