//===- bench/bench_concurrent.cpp - Table 7 --------------------------------===//
//
// Reproduces Table 7: one writer thread applies single edge updates
// (each an undirected edge = two directed updates in one batch) while a
// query thread runs BFS from random sources on acquired snapshots.
// Reports update throughput (directed edges/sec), the average latency to
// make an edge visible, and the average BFS latency when running
// concurrently with updates (C) versus in isolation (I).
//
// The update stream follows Section 7.3: edges sampled from the input
// graph, 90% reinserted after an upfront deletion, 10% deleted during the
// stream, in a random permutation.
//
// Expected shape (paper): sub-millisecond update visibility; query latency
// within ~3% of isolated runs.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bfs.h"
#include "graph/versioned_graph.h"

#include <atomic>
#include <thread>

using namespace aspen;

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  CommandLine CL(Argc, Argv);
  size_t StreamLen =
      size_t(CL.getInt("updates", 4000)); // single-edge updates
  BenchInput In = makeInput(C);
  printEnvironment();

  // Sample StreamLen edges from the graph; delete the first 90% upfront
  // (they will be re-inserted), keep 10% in the graph (they will be
  // deleted during the stream).
  auto Perm = randomPermutation(In.Edges.size(), C.Seed + 5);
  size_t Sampled = std::min(StreamLen, In.Edges.size());
  std::vector<EdgePair> Inserts, Deletes;
  for (size_t I = 0; I < Sampled; ++I) {
    if (I < Sampled * 9 / 10)
      Inserts.push_back(In.Edges[Perm[I]]);
    else
      Deletes.push_back(In.Edges[Perm[I]]);
  }
  Graph Start = Graph::fromEdges(In.N, In.Edges).deleteEdges(Inserts);
  VersionedGraph VG(std::move(Start));

  // Build the mixed update stream (insert/delete ops in random order).
  struct Update {
    EdgePair E;
    bool Insert;
  };
  std::vector<Update> Stream;
  for (const EdgePair &E : Inserts)
    Stream.push_back({E, true});
  for (const EdgePair &E : Deletes)
    Stream.push_back({E, false});
  auto Shuffle = randomPermutation(Stream.size(), C.Seed + 6);
  std::vector<Update> Mixed(Stream.size());
  for (size_t I = 0; I < Stream.size(); ++I)
    Mixed[I] = Stream[Shuffle[I]];

  // Isolated BFS latency baseline.
  const int QueryRounds = 10;
  double Isolated;
  {
    auto V = VG.acquire();
    FlatSnapshot FS(V.graph());
    FlatGraphView FV(FS);
    Isolated = timeIt([&] {
      for (int I = 0; I < QueryRounds; ++I)
        bfs(FV, VertexId(hashAt(C.Seed, I) % In.N));
    }) / QueryRounds;
  }

  // Concurrent run: writer applies one undirected update at a time
  // (two directed edges per batch, as in the paper).
  std::atomic<bool> WriterDone{false};
  std::atomic<uint64_t> Updates{0};
  double WriterSeconds = 0;
  std::thread Writer([&] {
    Timer T;
    for (const Update &U : Mixed) {
      std::vector<EdgePair> Batch = {U.E, {U.E.second, U.E.first}};
      if (U.Insert)
        VG.insertEdgesBatch(Batch);
      else
        VG.deleteEdgesBatch(Batch);
      Updates.fetch_add(2, std::memory_order_relaxed);
    }
    WriterSeconds = T.elapsed();
    WriterDone.store(true);
  });

  double ConcurrentSum = 0;
  uint64_t ConcurrentQueries = 0;
  while (!WriterDone.load()) {
    auto V = VG.acquire();
    FlatSnapshot FS(V.graph());
    FlatGraphView FV(FS);
    ConcurrentSum += timeIt([&] {
      bfs(FV, VertexId(hashAt(C.Seed, ConcurrentQueries) % In.N));
    });
    ++ConcurrentQueries;
  }
  Writer.join();

  double UpdatesPerSec = double(Updates.load()) / WriterSeconds;
  double Latency = WriterSeconds / double(Mixed.size());
  double Concurrent = ConcurrentQueries
                          ? ConcurrentSum / double(ConcurrentQueries)
                          : 0.0;

  printHeader("Table 7: simultaneous updates and queries");
  std::printf("%-12s %16s %14s %14s %14s\n", "Graph", "Edges/sec",
              "Upd. latency", "BFS lat. (C)", "BFS lat. (I)");
  std::printf("%-12s %16s %14s %14s %14s\n", In.Name.c_str(),
              fmtRate(UpdatesPerSec).c_str(), fmtTime(Latency).c_str(),
              fmtTime(Concurrent).c_str(), fmtTime(Isolated).c_str());
  std::printf("\nconcurrent queries completed: %zu; query slowdown: %.1f%%\n",
              size_t(ConcurrentQueries),
              Isolated > 0 ? (Concurrent / Isolated - 1.0) * 100.0 : 0.0);
  return 0;
}
