//===- bench/bench_concurrent.cpp - Table 7 + sharded ingest --------------===//
//
// Section A reproduces Table 7: one writer thread applies single edge
// updates (each an undirected edge = two directed updates in one batch)
// while a query thread runs BFS from random sources on acquired
// snapshots. Reports update throughput (directed edges/sec), the average
// latency to make an edge visible, and the average BFS latency running
// concurrently with updates (C) versus in isolation (I).
//
// Section B measures the sharded store (store/sharded_graph.h): batch
// ingest throughput of the single-writer VersionedGraph baseline versus
// ShardedGraphStore at 1/2/4 shards (and 8 with -large) on rmat inputs,
// with -writers concurrent ingest threads, while a reader thread samples
// epoch-acquire + degree-probe latency percentiles and checks that every
// acquired epoch is a consistent cut (per-shard counts sum to the
// aggregate). Ingest work per shard runs in parallel, so the
// sharded/single ratio tracks the worker count; on a single hardware
// thread it isolates the pipeline's constant-factor wins (counting-sort
// grouping, span routing).
//
// Metric trail: -json <path> writes every reported metric as flat JSON
// (BENCH_concurrent.json is the committed trail; CI uploads it), and
// -compare <path> annotates rows against a previous file, following the
// bench_chunk_ops convention.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bfs.h"
#include "graph/versioned_graph.h"
#include "store/sharded_graph.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace aspen;

namespace {

//===----------------------------------------------------------------------===
// Section A: Table 7 (single-edge updates vs concurrent BFS).
//===----------------------------------------------------------------------===

void runTable7(const BenchConfig &C, const BenchInput &In,
               size_t StreamLen) {
  // Sample StreamLen edges from the graph; delete the first 90% upfront
  // (they will be re-inserted), keep 10% in the graph (they will be
  // deleted during the stream).
  auto Perm = randomPermutation(In.Edges.size(), C.Seed + 5);
  size_t Sampled = std::min(StreamLen, In.Edges.size());
  std::vector<EdgePair> Inserts, Deletes;
  for (size_t I = 0; I < Sampled; ++I) {
    if (I < Sampled * 9 / 10)
      Inserts.push_back(In.Edges[Perm[I]]);
    else
      Deletes.push_back(In.Edges[Perm[I]]);
  }
  Graph Start = Graph::fromEdges(In.N, In.Edges).deleteEdges(Inserts);
  VersionedGraph VG(std::move(Start));

  // Build the mixed update stream (insert/delete ops in random order).
  struct Update {
    EdgePair E;
    bool Insert;
  };
  std::vector<Update> Stream;
  for (const EdgePair &E : Inserts)
    Stream.push_back({E, true});
  for (const EdgePair &E : Deletes)
    Stream.push_back({E, false});
  auto Shuffle = randomPermutation(Stream.size(), C.Seed + 6);
  std::vector<Update> Mixed(Stream.size());
  for (size_t I = 0; I < Stream.size(); ++I)
    Mixed[I] = Stream[Shuffle[I]];

  // Isolated BFS latency baseline.
  const int QueryRounds = 10;
  double Isolated;
  {
    auto V = VG.acquire();
    FlatSnapshot FS(V.graph());
    FlatGraphView FV(FS);
    Isolated = timeIt([&] {
      for (int I = 0; I < QueryRounds; ++I)
        bfs(FV, VertexId(hashAt(C.Seed, I) % In.N));
    }) / QueryRounds;
  }

  // Concurrent run: writer applies one undirected update at a time
  // (two directed edges per batch, as in the paper).
  std::atomic<bool> WriterDone{false};
  std::atomic<uint64_t> Updates{0};
  double WriterSeconds = 0;
  std::thread Writer([&] {
    Timer T;
    for (const Update &U : Mixed) {
      std::vector<EdgePair> Batch = {U.E, {U.E.second, U.E.first}};
      if (U.Insert)
        VG.insertEdgesBatch(Batch);
      else
        VG.deleteEdgesBatch(Batch);
      Updates.fetch_add(2, std::memory_order_relaxed);
    }
    WriterSeconds = T.elapsed();
    WriterDone.store(true);
  });

  double ConcurrentSum = 0;
  uint64_t ConcurrentQueries = 0;
  while (!WriterDone.load()) {
    auto V = VG.acquire();
    FlatSnapshot FS(V.graph());
    FlatGraphView FV(FS);
    ConcurrentSum += timeIt([&] {
      bfs(FV, VertexId(hashAt(C.Seed, ConcurrentQueries) % In.N));
    });
    ++ConcurrentQueries;
  }
  Writer.join();

  double UpdatesPerSec = double(Updates.load()) / WriterSeconds;
  double Latency = WriterSeconds / double(Mixed.size());
  double Concurrent = ConcurrentQueries
                          ? ConcurrentSum / double(ConcurrentQueries)
                          : 0.0;

  printHeader("Table 7: simultaneous updates and queries");
  std::printf("%-12s %16s %14s %14s %14s\n", "Graph", "Edges/sec",
              "Upd. latency", "BFS lat. (C)", "BFS lat. (I)");
  std::printf("%-12s %16s %14s %14s %14s\n", In.Name.c_str(),
              fmtRate(UpdatesPerSec).c_str(), fmtTime(Latency).c_str(),
              fmtTime(Concurrent).c_str(), fmtTime(Isolated).c_str());
  std::printf("\nconcurrent queries completed: %zu; query slowdown: %.1f%%\n",
              size_t(ConcurrentQueries),
              Isolated > 0 ? (Concurrent / Isolated - 1.0) * 100.0 : 0.0);
  recordMetric("table7/updates/edges_s", UpdatesPerSec);
  recordMetric("table7/bfs/concurrent_s", Concurrent);
  recordMetric("table7/bfs/isolated_s", Isolated);
}

//===----------------------------------------------------------------------===
// Section B: sharded batch ingest vs the single-writer baseline.
//===----------------------------------------------------------------------===

/// Escape hatch so the reader's degree probes aren't optimized away.
volatile uint64_t GProbeSink = 0;

double percentile(std::vector<double> &Samples, double P) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  size_t I = size_t(P * double(Samples.size() - 1) + 0.5);
  return Samples[std::min(I, Samples.size() - 1)];
}

struct IngestResult {
  double Seconds = 0;
  double P50 = 0, P95 = 0, P99 = 0;
  uint64_t ReaderViolations = 0;
  uint64_t Queries = 0;
};

/// Drive \p Writers threads over the batch stream (round-robin slices)
/// against \p Ingest, with one concurrent latency-sampling reader.
template <class IngestFn, class SampleFn>
IngestResult driveIngest(const std::vector<std::vector<EdgePair>> &Batches,
                         int Writers, const IngestFn &Ingest,
                         const SampleFn &Sample) {
  std::atomic<bool> Done{false};
  std::vector<double> Lat;
  uint64_t Violations = 0;
  std::thread Reader([&] {
    uint64_t Q = 0;
    while (!Done.load(std::memory_order_relaxed)) {
      Timer T;
      if (!Sample(Q))
        ++Violations;
      Lat.push_back(T.elapsed());
      ++Q;
    }
  });

  Timer T;
  std::vector<std::thread> Ws;
  for (int W = 0; W < Writers; ++W)
    Ws.emplace_back([&, W] {
      for (size_t B = size_t(W); B < Batches.size(); B += size_t(Writers))
        Ingest(Batches[B]);
    });
  for (auto &Th : Ws)
    Th.join();
  IngestResult R;
  R.Seconds = T.elapsed();
  Done.store(true);
  Reader.join();
  R.Queries = Lat.size();
  R.P50 = percentile(Lat, 0.50);
  R.P95 = percentile(Lat, 0.95);
  R.P99 = percentile(Lat, 0.99);
  R.ReaderViolations = Violations;
  return R;
}

void runShardedIngest(const BenchConfig &C, const BenchInput &In,
                      size_t BatchSize, size_t NumBatches, int Writers) {
  printHeader("sharded store: batch ingest vs single-writer baseline");
  std::printf("%zu batches x %zu directed edges, %d writer thread(s), "
              "%d worker(s)\n",
              NumBatches, BatchSize, Writers, numWorkers());

  // A fresh rmat stream (disjoint seed) provides the update batches.
  RMatGenerator Gen(C.LogN, C.Seed + 9);
  std::vector<std::vector<EdgePair>> Batches;
  for (size_t B = 0; B < NumBatches; ++B)
    Batches.push_back(Gen.edges(uint64_t(B) * BatchSize, BatchSize));
  uint64_t TotalEdges = uint64_t(NumBatches) * BatchSize;

  std::printf("%-18s %14s %12s %12s %12s %10s\n", "Store", "Edges/sec",
              "reader p50", "p95", "p99", "queries");

  double SingleRate = 0;
  {
    VersionedGraph VG(Graph::fromEdges(In.N, In.Edges));
    // The single store has one writer by definition: extra writer
    // threads would race set(); keep the stream order instead.
    IngestResult R = driveIngest(
        Batches, 1,
        [&](const std::vector<EdgePair> &B) { VG.insertEdgesBatch(B); },
        [&](uint64_t Q) {
          auto V = VG.acquire();
          uint64_t DegSum = 0;
          for (int I = 0; I < 64; ++I)
            DegSum += V.graph().degree(
                VertexId(hashAt(C.Seed + Q, I) % In.N));
          GProbeSink += DegSum;
          return true;
        });
    SingleRate = double(TotalEdges) / R.Seconds;
    std::string Key = "ingest/single/edges_s";
    recordMetric(Key, SingleRate);
    recordMetric("ingest/single/reader_p50_s", R.P50);
    recordMetric("ingest/single/reader_p99_s", R.P99);
    std::printf("%-18s %14s %12s %12s %12s %10zu%s\n", "single",
                fmtRate(SingleRate).c_str(), fmtTime(R.P50).c_str(),
                fmtTime(R.P95).c_str(), fmtTime(R.P99).c_str(),
                size_t(R.Queries), compareSuffix(Key, SingleRate).c_str());
  }

  std::vector<size_t> ShardCounts = {1, 2, 4};
  if (C.Large)
    ShardCounts.push_back(8);
  for (size_t Shards : ShardCounts) {
    ShardedGraphStore Store(Shards, In.N, In.Edges);
    IngestResult R = driveIngest(
        Batches, Writers,
        [&](const std::vector<EdgePair> &B) { Store.insertBatch(B); },
        [&](uint64_t Q) {
          auto E = Store.acquire();
          auto V = E.view();
          uint64_t DegSum = 0;
          for (int I = 0; I < 64; ++I)
            DegSum += V.degree(VertexId(hashAt(C.Seed + Q, I) % In.N));
          GProbeSink += DegSum;
          // Consistency audit: the aggregate must equal the cut's sum.
          uint64_t ShardSum = 0;
          for (size_t S = 0; S < E.numShards(); ++S)
            ShardSum += E.shard(S).numEdges();
          return ShardSum == E.numEdges();
        });
    double Rate = double(TotalEdges) / R.Seconds;
    char Name[32];
    std::snprintf(Name, sizeof(Name), "sharded S=%zu", Shards);
    std::string Key =
        "ingest/sharded" + std::to_string(Shards) + "/edges_s";
    recordMetric(Key, Rate);
    recordMetric("ingest/sharded" + std::to_string(Shards) +
                     "/reader_p50_s",
                 R.P50);
    recordMetric("ingest/sharded" + std::to_string(Shards) +
                     "/reader_p99_s",
                 R.P99);
    std::printf("%-18s %14s %12s %12s %12s %10zu%s\n", Name,
                fmtRate(Rate).c_str(), fmtTime(R.P50).c_str(),
                fmtTime(R.P95).c_str(), fmtTime(R.P99).c_str(),
                size_t(R.Queries), compareSuffix(Key, Rate).c_str());
    if (R.ReaderViolations)
      std::printf("  !! %llu torn epochs observed\n",
                  (unsigned long long)R.ReaderViolations);
    if (Shards == 4 && SingleRate > 0) {
      recordMetric("ingest/sharded4_vs_single", Rate / SingleRate);
      std::printf("\n4-shard / single-writer ingest ratio: %.2fx\n",
                  Rate / SingleRate);
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  CommandLine CL(Argc, Argv);
  size_t StreamLen =
      size_t(CL.getInt("updates", 4000)); // single-edge updates
  size_t BatchSize = size_t(CL.getInt("batchsize", 100000));
  size_t NumBatches = size_t(CL.getInt("batches", 6));
  int Writers = int(CL.getInt("writers", 2));
  std::string ComparePath = CL.getString("compare");
  if (!ComparePath.empty() && !loadBenchBaseline(ComparePath))
    std::fprintf(stderr, "warning: cannot read -compare file %s\n",
                 ComparePath.c_str());

  BenchInput In = makeInput(C);
  printEnvironment();

  if (!CL.has("nosingle"))
    runTable7(C, In, StreamLen);
  if (!CL.has("nosharded"))
    runShardedIngest(C, In, BatchSize, NumBatches, Writers);

  finishMetricTrail(CL);
  return 0;
}
