//===- bench/bench_chunk_size.cpp - Table 5 + representation sweep --------===//
//
// Reproduces Table 5: memory usage and BFS/BC/MIS running times as a
// function of the expected chunk size b = 2^1 .. 2^12. Head selection is
// a per-tree construction parameter (CTreeSet::BuildParams), so each
// sweep point simply rebuilds the graph with a different HeadMask — no
// process-global state is mutated.
//
// Expected shape (paper): memory decreases steeply until b ~ 2^8 then
// flattens; running times improve with b up to ~2^8 and then degrade as
// chunks get too coarse for parallelism. The paper picks b = 2^8.
//
// On top of the sweep, this bench reports the degree-adaptive hybrid
// representation (graph/hybrid_set.h):
//  * the parameters autotuneHybridParams selects per degree class for
//    this input (inline capacity, chunked-class b, hot threshold), with
//    the vertex population of each class, and
//  * an end-to-end hybrid-vs-chunked comparison: memory and
//    triangleCount (the probe-heavy algorithm) on the same rMAT
//    power-law input at the autotuned parameters.
//
//   -json <path>    write every reported metric to <path> as flat JSON
//   -compare <path> load a previous -json file, print before/after ratios
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/mis.h"
#include "algorithms/triangle_count.h"
#include "graph/graph.h"

using namespace aspen;

namespace {

void reportMetric(const std::string &Key, double Value) {
  recordMetric(Key, Value);
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  BenchConfig C = parseBenchConfig(Argc, Argv);
  std::string ComparePath = CL.getString("compare");
  if (!ComparePath.empty() && !loadBenchBaseline(ComparePath))
    std::fprintf(stderr, "warning: cannot read -compare file %s\n",
                 ComparePath.c_str());
  BenchInput In = makeInput(C);
  printEnvironment();

  std::printf("\n== Table 5: chunk-size sweep on %s (n=%u, m=%zu) ==\n",
              In.Name.c_str(), In.N, In.Edges.size());
  std::printf("%-6s %12s %12s %12s %12s\n", "b", "Memory", "BFS (P)",
              "BC (P)", "MIS (P)");

  for (int LogB = 1; LogB <= 12; ++LogB) {
    uint64_t B = uint64_t(1) << LogB;
    Graph G = Graph::fromEdges(In.N, In.Edges, {B - 1});
    FlatSnapshot FS(G);
    FlatGraphView FV(FS);
    std::string Scope = "sweep/b" + std::to_string(LogB);
    double Mem = double(G.memoryBytes());
    double Bfs = benchTime(C.Rounds, [&] { bfs(FV, 0); });
    double Bc = benchTime(C.Rounds, [&] { bc(FV, 0); });
    double Mis = benchTime(C.Rounds, [&] { mis(FV); });
    reportMetric(Scope + "/memory_bytes", Mem);
    reportMetric(Scope + "/bfs_s", Bfs);
    reportMetric(Scope + "/bc_s", Bc);
    reportMetric(Scope + "/mis_s", Mis);
    std::printf("2^%-4d %12s %12s %12s %12s%s\n", LogB,
                fmtBytes(Mem).c_str(), fmtTime(Bfs).c_str(),
                fmtTime(Bc).c_str(), fmtTime(Mis).c_str(),
                compareSuffix(Scope + "/bfs_s", Bfs).c_str());
  }
  std::printf("\n(the paper selects b = 2^8 as the best tradeoff)\n");

  //===--------------------------------------------------------------------===
  // Hub-forming power-law input for the hybrid comparison: the hot class
  // only exists when some vertices accumulate thousands of *distinct*
  // neighbors, so the source side is skewed hard toward high ids
  // (a+b = 0.2) while the destination side stays near-uniform
  // (a+c = 0.5) — a symmetric-parameter rMAT collapses hub edges into
  // duplicates and never grows a 4096-degree adjacency. High-id hubs
  // also put the hot vertices on the scanned side of the ordered
  // triangle-count intersection (v > u), where the sidecar probe
  // replaces an O(deg) prefix scan.
  //===--------------------------------------------------------------------===

  int HubLogN = C.LogN > 2 ? C.LogN - 2 : C.LogN;
  VertexId HubN = VertexId(1) << HubLogN;
  RMatGenerator HubGen(HubLogN, C.Seed, /*A=*/0.05, /*B=*/0.15,
                       /*C=*/0.45);
  std::vector<EdgePair> HubEdges = dedupEdges(symmetrize(
      HubGen.edges(0, (C.EdgeFactor * 4) << HubLogN)));

  HybridParams HP = autotuneHybridParams(HubN, HubEdges);
  std::vector<uint32_t> Degrees(HubN, 0);
  for (const EdgePair &E : HubEdges)
    if (E.first < HubN)
      ++Degrees[E.first];
  uint64_t NInline = 0, NChunked = 0, NHot = 0;
  for (uint32_t D : Degrees) {
    if (D <= HP.InlineMax)
      ++NInline;
    else if (D < HP.HotMin)
      ++NChunked;
    else
      ++NHot;
  }
  printHeader("autotuned hybrid parameters (per degree class)");
  std::printf("  input: rmat-hub-%d (n=%u, m=%zu, skew 0.05/0.15/0.45)\n",
              HubLogN, HubN, HubEdges.size());
  std::printf("  %-8s %-24s %12s\n", "class", "parameter", "vertices");
  std::printf("  %-8s degree <= %-14u %12llu\n", "inline",
              unsigned(HP.InlineMax), (unsigned long long)NInline);
  std::printf("  %-8s b = 2^%-17u %12llu\n", "chunked",
              unsigned(HP.LogB), (unsigned long long)NChunked);
  std::printf("  %-8s degree >= %-14u %12llu\n", "hot", HP.HotMin,
              (unsigned long long)NHot);
  reportMetric("autotune/inline_max", double(HP.InlineMax));
  reportMetric("autotune/logb", double(HP.LogB));
  reportMetric("autotune/hot_min", double(HP.HotMin));
  reportMetric("autotune/class_inline_vertices", double(NInline));
  reportMetric("autotune/class_chunked_vertices", double(NChunked));
  reportMetric("autotune/class_hot_vertices", double(NHot));

  //===--------------------------------------------------------------------===
  // Hybrid vs pure-chunked end to end at the autotuned parameters: memory
  // and triangleCount (adjacency intersections turn into O(1) sidecar
  // probes on hot vertices).
  //===--------------------------------------------------------------------===

  printHeader("hybrid vs chunked (autotuned parameters)");
  Graph GC = Graph::fromEdges(HubN, HubEdges, {HP.headMask()});
  HybridGraph GH = HybridGraph::fromEdges(HubN, HubEdges, HP);
  FlatSnapshot FSC(GC);
  FlatGraphView FVC(FSC);
  HybridFlatSnapshot FSH(GH);
  FlatGraphView FVH(FSH);

  double MemC = double(GC.memoryBytes());
  double MemH = double(GH.memoryBytes());
  uint64_t TriC = 0, TriH = 0;
  double TC = benchTime(C.Rounds, [&] { TriC = triangleCount(FVC); });
  double TH = benchTime(C.Rounds, [&] { TriH = triangleCount(FVH); });
  if (TriC != TriH) {
    std::fprintf(stderr,
                 "FATAL: triangle counts disagree (chunked %llu, "
                 "hybrid %llu)\n",
                 (unsigned long long)TriC, (unsigned long long)TriH);
    return 1;
  }
  reportMetric("hybrid/memory/chunked_bytes", MemC);
  reportMetric("hybrid/memory/hybrid_bytes", MemH);
  reportMetric("hybrid/tri/chunked_s", TC);
  reportMetric("hybrid/tri/hybrid_s", TH);
  reportMetric("hybrid/tri/speedup", TC / TH);
  std::printf("  %-10s %12s %14s\n", "", "memory", "triangles");
  std::printf("  %-10s %12s %14s\n", "chunked", fmtBytes(MemC).c_str(),
              fmtTime(TC).c_str());
  std::printf("  %-10s %12s %14s%s\n", "hybrid", fmtBytes(MemH).c_str(),
              fmtTime(TH).c_str(),
              compareSuffix("hybrid/tri/hybrid_s", TH).c_str());
  std::printf("  triangleCount speedup: %.2fx (count %llu)\n", TC / TH,
              (unsigned long long)TriC);

  finishMetricTrail(CL);
  return 0;
}
