//===- bench/bench_chunk_size.cpp - Table 5 --------------------------------===//
//
// Reproduces Table 5: memory usage and BFS/BC/MIS running times as a
// function of the expected chunk size b = 2^1 .. 2^12. The graph is
// rebuilt under each chunk-size setting (head selection is global).
//
// Expected shape (paper): memory decreases steeply until b ~ 2^8 then
// flattens; running times improve with b up to ~2^8 and then degrade as
// chunks get too coarse for parallelism. The paper picks b = 2^8.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bc.h"
#include "algorithms/bfs.h"
#include "algorithms/mis.h"
#include "graph/graph.h"

using namespace aspen;

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  BenchInput In = makeInput(C);
  printEnvironment();

  std::printf("\n== Table 5: chunk-size sweep on %s (n=%u, m=%zu) ==\n",
              In.Name.c_str(), In.N, In.Edges.size());
  std::printf("%-6s %12s %12s %12s %12s\n", "b", "Memory", "BFS (P)",
              "BC (P)", "MIS (P)");

  for (int LogB = 1; LogB <= 12; ++LogB) {
    uint64_t B = uint64_t(1) << LogB;
    ChunkSizeGuard Guard(B);
    Graph G = Graph::fromEdges(In.N, In.Edges);
    FlatSnapshot FS(G);
    FlatGraphView FV(FS);
    double Mem = double(G.memoryBytes());
    double Bfs = benchTime(C.Rounds, [&] { bfs(FV, 0); });
    double Bc = benchTime(C.Rounds, [&] { bc(FV, 0); });
    double Mis = benchTime(C.Rounds, [&] { mis(FV); });
    std::printf("2^%-4d %12s %12s %12s %12s\n", LogB,
                fmtBytes(Mem).c_str(), fmtTime(Bfs).c_str(),
                fmtTime(Bc).c_str(), fmtTime(Mis).c_str());
  }
  std::printf("\n(the paper selects b = 2^8 as the best tradeoff)\n");
  return 0;
}
