//===- bench/bench_serving.cpp - Multi-tenant snapshot serving ------------===//
//
// The serving subsystem end to end (DESIGN.md Section 8): how much a
// contended same-shard writer stream gains from the coalescing +
// pipelining ingest front, what sustained query throughput looks like
// while a writer streams batches (latency percentiles, epoch lag,
// coalescing behavior), and that overload degrades to load shedding with
// bounded latency for admitted queries rather than collapse.
//
// Reported rows:
//   serve/coalesce/*        4-writer hot-shard ingest: front vs serialized
//                           one-batch-at-a-time (acceptance: >= 1.5x)
//   serve/qps/<store>/*     sustained queries/sec under concurrent ingest
//                           with p50/p99/p999 latency and epoch lag, on
//                           the default hybrid store and on chunked
//   serve/overload/*        shed fraction + admitted-query p99 when
//                           offered load far exceeds capacity
//
//   -json <path>    write every metric as flat JSON (BENCH_serving.json)
//   -compare <path> annotate rows with before/after ratios vs a prior file
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "serve/server.h"
#include "util/hash.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace aspen;

namespace {

void reportValue(const std::string &Key, double V, const char *Unit) {
  recordMetric(Key, V);
  std::printf("  %-44s %12.4g %s%s\n", Key.c_str(), V, Unit,
              compareSuffix(Key, V).c_str());
}

void reportTime(const std::string &Key, double Seconds) {
  recordMetric(Key, Seconds);
  std::printf("  %-44s %12s%s\n", Key.c_str(), fmtTime(Seconds).c_str(),
              compareSuffix(Key, Seconds).c_str());
}

double percentile(std::vector<double> &Samples, double P) {
  if (Samples.empty())
    return 0.0;
  std::sort(Samples.begin(), Samples.end());
  size_t I = size_t(P * double(Samples.size() - 1));
  return Samples[I];
}

/// Batches that all land on shard 0 of an S-shard store: the contended
/// writer stream the coalescing front targets.
std::vector<std::vector<EdgePair>> hotShardBatches(VertexId N, size_t Shards,
                                                   size_t NumBatches,
                                                   size_t BatchSize,
                                                   uint64_t Seed) {
  std::vector<std::vector<EdgePair>> Out(NumBatches);
  for (size_t B = 0; B < NumBatches; ++B) {
    Out[B].reserve(BatchSize);
    for (size_t I = 0; I < BatchSize; ++I) {
      uint64_t H = hash64(Seed + B * BatchSize + I);
      VertexId Src = VertexId((H % (N / Shards)) * Shards); // shard 0
      VertexId Dst = VertexId((H >> 24) % N);
      Out[B].push_back({Src, Dst});
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===
// Section A: writer coalescing + pipelining vs serialized ingest.
//===----------------------------------------------------------------------===

void benchCoalesce(const BenchConfig &C) {
  const VertexId N = VertexId(1) << C.LogN;
  const size_t Shards = 8, Writers = 4;
  const size_t PerWriter = 12, BatchSize = 20000;
  auto Batches =
      hotShardBatches(N, Shards, Writers * PerWriter, BatchSize, C.Seed);
  double TotalEdges = double(Batches.size()) * double(BatchSize);

  std::printf("\n== same-shard ingest: %zu writers x %zu batches x %zu "
              "edges ==\n",
              Writers, PerWriter, BatchSize);

  // Serialized baseline: one batch at a time through the shard locks,
  // group/sort included under the lock (pipelining off) — what a convoy
  // of direct store calls does.
  auto RunSerialized = [&] {
    ShardedGraphStore S(Shards, N);
    S.setPipelinedIngest(false);
    for (const auto &B : Batches)
      S.insertBatch(B);
  };

  // Coalesced installs: the same stream in groups of `Writers` merged
  // spans — exactly what the ingest front installs when the 4 writers'
  // batches queue up behind the shard locks. One tree-merge pass over
  // the hot shard per group instead of per batch.
  auto RunCoalesced = [&] {
    ShardedGraphStore S(Shards, N);
    for (size_t G = 0; G < Batches.size(); G += Writers) {
      std::vector<EdgeSpan> Spans;
      for (size_t I = G; I < std::min(G + Writers, Batches.size()); ++I)
        Spans.push_back({Batches[I].data(), Batches[I].size()});
      S.applySpans(Spans.data(), Spans.size(), /*Insert=*/true);
    }
  };

  // The live front: 4 concurrent writers submitting through
  // IngestFrontT. Group formation depends on writers actually queueing
  // behind each other, so on a single-core host this degenerates toward
  // the serialized shape (a client can't enqueue while the combiner has
  // the only CPU); on multicore it adds prepare/install overlap on top
  // of the coalescing above.
  uint64_t Installs = 0, MaxGroup = 0, Coalesced = 0;
  auto RunFront = [&] {
    ShardedGraphStore S(Shards, N);
    IngestFrontT<ShardedGraphStore> Front(S);
    std::vector<std::thread> Ts;
    for (size_t W = 0; W < Writers; ++W)
      Ts.emplace_back([&, W] {
        for (size_t B = 0; B < PerWriter; ++B)
          Front.insertBatch(Batches[W * PerWriter + B]);
      });
    for (auto &T : Ts)
      T.join();
    auto St = Front.stats();
    Installs = St.Installs;
    MaxGroup = St.MaxGroup;
    Coalesced = St.Coalesced;
  };

  double TSer = benchTime(C.Rounds, RunSerialized);
  double TCoal = benchTime(C.Rounds, RunCoalesced);
  double TFront = benchTime(C.Rounds, RunFront);

  reportValue("serve/coalesce/serialized_edges_per_s", TotalEdges / TSer,
              "edges/s");
  reportValue("serve/coalesce/coalesced_edges_per_s", TotalEdges / TCoal,
              "edges/s");
  reportValue("serve/coalesce/front_edges_per_s", TotalEdges / TFront,
              "edges/s");
  auto ReportX = [&](const char *Key, double V) {
    recordMetric(Key, V);
    std::printf("  %-44s %11.2fx%s\n", Key, V,
                compareSuffix(Key, V).c_str());
  };
  ReportX("serve/coalesce/speedup_vs_serialized", TSer / TCoal);
  ReportX("serve/coalesce/front_speedup_vs_serialized", TSer / TFront);
  reportValue("serve/coalesce/front_installs", double(Installs), "groups");
  reportValue("serve/coalesce/front_batches_coalesced", double(Coalesced),
              "batches");
  reportValue("serve/coalesce/front_max_group", double(MaxGroup),
              "batches");
}

//===----------------------------------------------------------------------===
// Section B: sustained query throughput under concurrent ingest.
//===----------------------------------------------------------------------===

template <class Store>
void benchServing(const char *StoreName, const BenchConfig &C) {
  const VertexId N = VertexId(1) << C.LogN;
  const size_t Shards = 8;
  Store S(Shards, N, rmatGraphEdges(C.LogN, C.EdgeFactor, C.Seed));

  typename SnapshotServerT<Store>::Options O;
  O.Workers = size_t(std::max(2, numWorkers() - 1));
  O.ReadQueueCap = 1 << 14;
  O.WriteQueueCap = 256;
  SnapshotServerT<Store> Server(S, O);

  const size_t Tenants = 4, QueriesPer = 20000;
  const size_t WriteBatch = 5000;
  const double RunSeconds = 2.0;

  std::printf("\n== sustained serving (%s): %zu workers, %zu tenants, "
              "writer streaming %zu-edge batches ==\n",
              StoreName, O.Workers, Tenants, WriteBatch);

  // Per-query latency samples: slot-addressed, no locking in the hot path.
  std::vector<double> Latency(Tenants * QueriesPer, -1.0);
  std::vector<std::atomic<uint64_t>> TenantDone(Tenants);
  for (auto &D : TenantDone)
    D.store(0);
  std::atomic<bool> StopWriter{false};
  std::atomic<uint64_t> WriterBatches{0};

  std::thread Writer([&] {
    RMatGenerator Stream(C.LogN, C.Seed + 77);
    uint64_t At = 0;
    while (!StopWriter.load(std::memory_order_acquire)) {
      while (!Server.submitInsert(Stream.edges(At, WriteBatch)))
        std::this_thread::yield();
      At += WriteBatch;
      WriterBatches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  Timer Wall;
  std::vector<std::thread> TenantTs;
  std::atomic<uint64_t> Submitted{0};
  for (size_t T = 0; T < Tenants; ++T)
    TenantTs.emplace_back([&, T] {
      // Closed-loop tenant: issue a neighborhood-analytics query (1-hop
      // walk from a source plus a strided degree sweep over the flat
      // rendering), wait for it to complete, repeat. Sustained QPS is
      // what the server actually completes per second at 4 concurrent
      // tenants; latency is submission-to-completion under the
      // weighted-fair scheduler while the writer streams.
      for (size_t I = 0;
           I < QueriesPer && Wall.elapsed() < RunSeconds; ++I) {
        size_t Slot = T * QueriesPer + I;
        VertexId Src = VertexId(hash64(Slot) % N);
        Timer QT;
        bool Ok = Server.submitQuery([&, T, Slot, Src, QT](auto &QC) {
          auto F = QC.flat();
          auto V = F->view();
          uint64_t Sum = V.degree(Src);
          V.mapNeighbors(Src, [&](VertexId U) { Sum += V.degree(U); });
          // Strided edge-list sweep: decodes real adjacency (where the
          // edge-set representation earns or loses its keep).
          for (VertexId U = Src % 64; U < N; U += 64)
            V.mapNeighbors(U, [&](VertexId X) { Sum += X; });
          (void)Sum;
          Latency[Slot] = QT.elapsed();
          TenantDone[T].fetch_add(1, std::memory_order_release);
        });
        if (!Ok) {
          std::this_thread::yield();
          --I;
          continue;
        }
        Submitted.fetch_add(1, std::memory_order_relaxed);
        while (TenantDone[T].load(std::memory_order_acquire) <= I)
          std::this_thread::yield();
      }
    });
  for (auto &T : TenantTs)
    T.join();
  // Stop the writer before draining: drain() waits for a moment with no
  // in-flight requests, which never comes while a writer streams.
  StopWriter.store(true, std::memory_order_release);
  Writer.join();
  Server.drain();
  double Elapsed = Wall.elapsed();
  auto St = Server.stats();
  Server.stop();

  std::vector<double> Lat;
  Lat.reserve(Latency.size());
  for (double L : Latency)
    if (L >= 0.0)
      Lat.push_back(L);

  std::string P = std::string("serve/qps/") + StoreName;
  reportValue(P + "/queries_per_s", double(St.QueriesDone) / Elapsed,
              "q/s");
  reportTime(P + "/latency_p50_s", percentile(Lat, 0.50));
  reportTime(P + "/latency_p99_s", percentile(Lat, 0.99));
  reportTime(P + "/latency_p999_s", percentile(Lat, 0.999));
  reportValue(P + "/writer_batches_per_s",
              double(WriterBatches.load()) / Elapsed, "batches/s");
  reportValue(P + "/epoch_lag_mean",
              St.QueriesDone
                  ? double(St.EpochLagSum) / double(St.QueriesDone)
                  : 0.0,
              "batches");
  reportValue(P + "/epoch_lag_max", double(St.EpochLagMax), "batches");
  reportValue(P + "/front_installs", double(St.Front.Installs), "groups");
  reportValue(P + "/front_coalesced", double(St.Front.Coalesced),
              "batches");
  reportValue(P + "/session_waits", double(St.SessionWaits), "waits");
}

//===----------------------------------------------------------------------===
// Section C: overload — shed, don't collapse.
//===----------------------------------------------------------------------===

void benchOverload(const BenchConfig &C) {
  const VertexId N = VertexId(1) << (C.LogN - 2);
  HybridShardedGraphStore S(
      4, N, rmatGraphEdges(C.LogN - 2, C.EdgeFactor, C.Seed));

  SnapshotServer::Options O;
  O.Workers = 2;
  O.ReadQueueCap = 64; // tiny on purpose: force admission control
  SnapshotServer Server(S, O);

  std::printf("\n== overload: %zu workers, %zu-deep read queue, offered "
              "load unbounded ==\n",
              O.Workers, O.ReadQueueCap);

  const size_t Offered = 20000;
  std::vector<double> Lat;
  Lat.reserve(Offered);
  std::mutex LatM;
  size_t Admitted = 0;
  for (size_t I = 0; I < Offered; ++I) {
    VertexId Src = VertexId(hash64(I) % N);
    Timer QT;
    bool Ok = Server.submitQuery([&, Src, QT](auto &QC) {
      auto F = QC.flat();
      auto V = F->view();
      uint64_t Sum = 0;
      V.mapNeighbors(Src, [&](VertexId U) { Sum += V.degree(U); });
      (void)Sum;
      double L = QT.elapsed();
      std::lock_guard<std::mutex> G(LatM);
      Lat.push_back(L);
    });
    if (Ok)
      ++Admitted;
  }
  Server.drain();
  auto St = Server.stats();
  Server.stop();

  double ShedFrac = double(Offered - Admitted) / double(Offered);
  reportValue("serve/overload/offered", double(Offered), "queries");
  reportValue("serve/overload/shed_fraction", ShedFrac, "");
  reportTime("serve/overload/admitted_p50_s", percentile(Lat, 0.50));
  reportTime("serve/overload/admitted_p99_s", percentile(Lat, 0.99));
  std::printf("  (admitted %zu, shed %zu — p99 above is bounded by the "
              "%zu-deep queue, not the offered load)\n",
              Admitted, Offered - Admitted, O.ReadQueueCap);
  (void)St;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv, /*DefaultLogN=*/16);
  CommandLine CL(Argc, Argv);
  std::string ComparePath = CL.getString("compare");
  if (!ComparePath.empty() && !loadBenchBaseline(ComparePath))
    std::fprintf(stderr, "warning: cannot read -compare file %s\n",
                 ComparePath.c_str());
  printEnvironment();

  benchCoalesce(C);
  benchServing<HybridShardedGraphStore>("hybrid", C);
  benchServing<ShardedGraphStore>("chunked", C);
  benchOverload(C);

  finishMetricTrail(CL, {{"bench", "serving"}});
  return 0;
}
