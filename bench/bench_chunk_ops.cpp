//===- bench/bench_chunk_ops.cpp - Chunk-operation microbenchmark ---------===//
//
// Measures the zero-materialization cursor rewrite of the chunk set
// operations (union / minus / intersect / split / contains) against naive
// decode-to-vector reference implementations equivalent to the seed code,
// reporting throughput and allocations per operation.
//
// Allocation accounting: a global operator new/delete override counts
// heap allocation *events* (this is what the std::vector temporaries of
// the naive path hit), countedAllocEvents() counts chunk payload
// allocations, and scratchAllocEvents() counts scratch-cache misses.
//
//   -count <n>   elements per chunk (default 128, the paper's b)
//   -pairs <n>   number of chunk pairs (default 1024)
//   -rounds <r>  timing repetitions (default 3)
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "ctree/chunk.h"
#include "encoding/byte_code.h"
#include "util/hash.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

static std::atomic<uint64_t> GHeapAllocs{0};

void *operator new(std::size_t N) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace aspen;

namespace {

using P32 = ChunkPayload<uint32_t>;

//===----------------------------------------------------------------------===
// Naive reference implementations (the seed's decode-to-vector shape).
//===----------------------------------------------------------------------===

template <class Codec> P32 *naiveUnion(const P32 *A, const P32 *B) {
  std::vector<uint32_t> EA, EB;
  decodeChunk<Codec>(A, EA);
  decodeChunk<Codec>(B, EB);
  std::vector<uint32_t> Out;
  Out.reserve(EA.size() + EB.size());
  std::set_union(EA.begin(), EA.end(), EB.begin(), EB.end(),
                 std::back_inserter(Out));
  return makeChunk<Codec>(Out.data(), Out.size());
}

template <class Codec>
P32 *naiveMinus(const P32 *A, const uint32_t *Sub, size_t NSub) {
  std::vector<uint32_t> EA;
  decodeChunk<Codec>(A, EA);
  std::vector<uint32_t> Out;
  Out.reserve(EA.size());
  std::set_difference(EA.begin(), EA.end(), Sub, Sub + NSub,
                      std::back_inserter(Out));
  return makeChunk<Codec>(Out.data(), Out.size());
}

template <class Codec> ChunkSplit naiveSplit(const P32 *C, uint32_t Key) {
  ChunkSplit S;
  if (!C)
    return S;
  std::vector<uint32_t> E;
  decodeChunk<Codec>(C, E);
  size_t Lo = size_t(std::lower_bound(E.begin(), E.end(), Key) - E.begin());
  size_t Hi = Lo;
  if (Hi < E.size() && E[Hi] == Key) {
    S.Found = true;
    ++Hi;
  }
  S.Left = makeChunk<Codec>(E.data(), Lo);
  S.Right = makeChunk<Codec>(E.data() + Hi, E.size() - Hi);
  return S;
}

//===----------------------------------------------------------------------===
// Harness.
//===----------------------------------------------------------------------===

struct AllocStats {
  uint64_t Heap;
  uint64_t Counted;
  uint64_t Scratch;
};

AllocStats snapshotAllocs() {
  return {GHeapAllocs.load(std::memory_order_relaxed),
          countedAllocEvents(), scratchAllocEvents()};
}

struct OpReport {
  double Seconds;
  AllocStats Delta;
  uint64_t Ops;
};

template <class F> OpReport measure(int Rounds, uint64_t Ops, const F &Fn) {
  // Warm-up pass populates scratch caches and vector allocator pools.
  Fn();
  AllocStats Before = snapshotAllocs();
  double Best = 1e30;
  for (int R = 0; R < Rounds; ++R) {
    double T = timeIt(Fn);
    if (T < Best)
      Best = T;
  }
  AllocStats After = snapshotAllocs();
  uint64_t TotalOps = Ops * uint64_t(Rounds);
  return {Best,
          {(After.Heap - Before.Heap) / uint64_t(Rounds),
           (After.Counted - Before.Counted) / uint64_t(Rounds),
           (After.Scratch - Before.Scratch) / uint64_t(Rounds)},
          TotalOps};
}

void printRow(const char *Op, const char *Impl, const OpReport &R,
              uint64_t OpsPerRound) {
  std::printf("  %-10s %-8s %10s   %7.2f allocs/op (heap %6.2f, "
              "payload %6.2f, scratch %g)\n",
              Op, Impl, fmtRate(double(OpsPerRound) / R.Seconds).c_str(),
              double(R.Delta.Heap + R.Delta.Counted + R.Delta.Scratch) /
                  double(OpsPerRound),
              double(R.Delta.Heap) / double(OpsPerRound),
              double(R.Delta.Counted) / double(OpsPerRound),
              double(R.Delta.Scratch) / double(OpsPerRound));
}

template <class Codec> void runCodec(size_t Count, size_t Pairs, int Rounds) {
  std::printf("\ncodec %s, %zu elements/chunk, %zu pairs:\n", Codec::Name,
              Count, Pairs);

  // Overlapping sorted-unique element sets per pair.
  std::vector<P32 *> As(Pairs), Bs(Pairs);
  std::vector<std::vector<uint32_t>> Spans(Pairs);
  for (size_t P = 0; P < Pairs; ++P) {
    auto Make = [&](uint64_t Seed) {
      std::vector<uint32_t> E(Count);
      for (size_t I = 0; I < Count; ++I)
        E[I] = uint32_t(hashAt(Seed, I) % (Count * 8));
      std::sort(E.begin(), E.end());
      E.erase(std::unique(E.begin(), E.end()), E.end());
      return E;
    };
    auto EA = Make(2 * P);
    auto EB = Make(2 * P + 1);
    As[P] = makeChunk<Codec>(EA.data(), EA.size());
    Bs[P] = makeChunk<Codec>(EB.data(), EB.size());
    Spans[P] = EB;
  }

  OpReport R;
  auto Run = [&](auto &&Fn) { return measure(Rounds, Pairs, Fn); };

  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(naiveUnion<Codec>(As[P], Bs[P]));
  });
  printRow("union", "naive", R, Pairs);
  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(unionChunks<Codec>(As[P], Bs[P]));
  });
  printRow("union", "cursor", R, Pairs);

  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(
          naiveMinus<Codec>(As[P], Spans[P].data(), Spans[P].size()));
  });
  printRow("minus", "naive", R, Pairs);
  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(
          chunkMinus<Codec>(As[P], Spans[P].data(), Spans[P].size()));
  });
  printRow("minus", "cursor", R, Pairs);

  auto SplitKey = [&](size_t P) {
    return As[P]->First + uint32_t(hashAt(7, P) % (As[P]->Last -
                                                   As[P]->First + 1));
  };
  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P) {
      ChunkSplit S = naiveSplit<Codec>(As[P], SplitKey(P));
      releaseChunk(static_cast<P32 *>(S.Left));
      releaseChunk(static_cast<P32 *>(S.Right));
    }
  });
  printRow("split", "naive", R, Pairs);
  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P) {
      ChunkSplit S = splitChunk<Codec>(As[P], SplitKey(P));
      releaseChunk(static_cast<P32 *>(S.Left));
      releaseChunk(static_cast<P32 *>(S.Right));
    }
  });
  printRow("split", "cursor", R, Pairs);

  // Contains: no allocation either way; throughput only.
  uint64_t Probes = Pairs * 64;
  std::atomic<uint64_t> Sink{0};
  R = measure(Rounds, Probes, [&] {
    uint64_t Hits = 0;
    for (size_t P = 0; P < Pairs; ++P)
      for (size_t I = 0; I < 64; ++I)
        Hits += chunkContains<Codec>(As[P], uint32_t(hashAt(9, P * 64 + I) %
                                                     (Count * 8)));
    Sink += Hits;
  });
  printRow("contains", "cursor", R, Probes);

  for (size_t P = 0; P < Pairs; ++P) {
    releaseChunk(As[P]);
    releaseChunk(Bs[P]);
  }
}

//===----------------------------------------------------------------------===
// Varint skip: scalar byte loop (the pre-word-at-a-time implementation)
// vs VarintCursor::skip's 8-byte-load + popcount continuation-bit count.
// Skips land mid-stream (seekLowerBound's raw-offset pattern), mixing
// 1..5-byte encodings.
//===----------------------------------------------------------------------===

const uint8_t *scalarSkip(const uint8_t *In, size_t N) {
  while (N > 0) {
    while (*In & 0x80)
      ++In;
    ++In;
    --N;
  }
  return In;
}

void runVarintSkip(size_t Count, size_t Streams, int Rounds) {
  std::printf("\nvarint skip, %zu varints/stream, %zu streams:\n", Count,
              Streams);
  // Per-stream encodings with hash-spread values (1..5 byte codes).
  std::vector<std::vector<uint8_t>> Bufs(Streams);
  for (size_t S = 0; S < Streams; ++S) {
    Bufs[S].resize(Count * 10);
    uint8_t *P = Bufs[S].data();
    for (size_t I = 0; I < Count; ++I)
      P = encodeVarint(hashAt(S, I) % (uint64_t(1) << 28), P);
    Bufs[S].resize(size_t(P - Bufs[S].data()));
  }
  // Each op: skip 7/8 of the stream, then decode one value (the seek
  // pattern: position, then read).
  size_t SkipN = Count - Count / 8;
  std::atomic<uint64_t> Sink{0};

  OpReport R = measure(Rounds, Streams, [&] {
    uint64_t Acc = 0;
    for (size_t S = 0; S < Streams; ++S) {
      const uint8_t *P = scalarSkip(Bufs[S].data(), SkipN);
      uint64_t V;
      decodeVarint(P, V);
      Acc += V;
    }
    Sink += Acc;
  });
  printRow("skip", "scalar", R, Streams);

  R = measure(Rounds, Streams, [&] {
    uint64_t Acc = 0;
    for (size_t S = 0; S < Streams; ++S) {
      VarintCursor Cu(Bufs[S].data(), Count);
      Cu.skip(SkipN);
      Acc += Cu.next();
    }
    Sink += Acc;
  });
  printRow("skip", "word", R, Streams);
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  size_t Count = size_t(CL.getInt("count", 128));
  size_t Pairs = size_t(CL.getInt("pairs", 1024));
  int Rounds = int(CL.getInt("rounds", 3));

  printHeader("chunk set-operation microbenchmark");
  printEnvironment();
  runCodec<DeltaByteCodec>(Count, Pairs, Rounds);
  runCodec<RawCodec>(Count, Pairs, Rounds);
  runCodec<DeltaByteCodec>(Count * 16, Pairs / 8 + 1, Rounds);
  runVarintSkip(Count * 16, Pairs, Rounds);
  return 0;
}
