//===- bench/bench_chunk_ops.cpp - Chunk-operation microbenchmark ---------===//
//
// Measures the chunk-layer hot paths:
//
//  * Set operations (union / minus / split / contains) against naive
//    decode-to-vector reference implementations equivalent to the seed
//    code, reporting throughput and allocations per operation.
//  * Sequential decode throughput: the scalar element-at-a-time Cursor
//    (one varint decode per next()) vs the block-decoded bulk iterate
//    (SSSE3 shuffle-table / SWAR tiers, encoding/varint_block.h), across
//    gap regimes from 1-byte codes (dense chunks) to 2-4 byte codes
//    (large-graph adjacency), over a streaming working set of many
//    chunks.
//  * Run-copy merges: byte-copy union/minus/intersect (the defaults) vs
//    the element-at-a-time streaming merges, across run-length patterns
//    from fully interleaved (run 1, the byte-copy worst case) to long
//    runs and disjoint ranges (where drains skip decode + re-encode
//    entirely).
//
// Allocation accounting: a global operator new/delete override counts
// heap allocation *events* (this is what the std::vector temporaries of
// the naive path hit), countedAllocEvents() counts chunk payload
// allocations, and scratchAllocEvents() counts scratch-cache misses.
//
//   -count <n>     elements per chunk (default 128, the paper's b)
//   -pairs <n>     number of chunk pairs (default 1024)
//   -rounds <r>    timing repetitions (default 3)
//   -json <path>   write every reported metric to <path> as flat JSON
//                  (one "metric": value per line) for cross-PR tracking
//   -compare <path> load a previous -json file and print before/after
//                  ratios next to each metric
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"
#include "ctree/chunk.h"
#include "ctree/ctree.h"
#include "encoding/byte_code.h"
#include "encoding/varint_block.h"
#include "graph/hybrid_set.h"
#include "util/hash.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <new>
#include <string>
#include <vector>

static std::atomic<uint64_t> GHeapAllocs{0};

void *operator new(std::size_t N) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace aspen;

namespace {

using P32 = ChunkPayload<uint32_t>;

// Metric collection (-json / -compare) lives in bench_common.h
// (recordMetric / compareSuffix / loadBenchBaseline / writeBenchJson),
// shared with bench_concurrent.

//===----------------------------------------------------------------------===
// Naive reference implementations (the seed's decode-to-vector shape).
//===----------------------------------------------------------------------===

template <class Codec> P32 *naiveUnion(const P32 *A, const P32 *B) {
  std::vector<uint32_t> EA, EB;
  decodeChunk<Codec>(A, EA);
  decodeChunk<Codec>(B, EB);
  std::vector<uint32_t> Out;
  Out.reserve(EA.size() + EB.size());
  std::set_union(EA.begin(), EA.end(), EB.begin(), EB.end(),
                 std::back_inserter(Out));
  return makeChunk<Codec>(Out.data(), Out.size());
}

template <class Codec>
P32 *naiveMinus(const P32 *A, const uint32_t *Sub, size_t NSub) {
  std::vector<uint32_t> EA;
  decodeChunk<Codec>(A, EA);
  std::vector<uint32_t> Out;
  Out.reserve(EA.size());
  std::set_difference(EA.begin(), EA.end(), Sub, Sub + NSub,
                      std::back_inserter(Out));
  return makeChunk<Codec>(Out.data(), Out.size());
}

template <class Codec> ChunkSplit naiveSplit(const P32 *C, uint32_t Key) {
  ChunkSplit S;
  if (!C)
    return S;
  std::vector<uint32_t> E;
  decodeChunk<Codec>(C, E);
  size_t Lo = size_t(std::lower_bound(E.begin(), E.end(), Key) - E.begin());
  size_t Hi = Lo;
  if (Hi < E.size() && E[Hi] == Key) {
    S.Found = true;
    ++Hi;
  }
  S.Left = makeChunk<Codec>(E.data(), Lo);
  S.Right = makeChunk<Codec>(E.data() + Hi, E.size() - Hi);
  return S;
}

//===----------------------------------------------------------------------===
// Harness.
//===----------------------------------------------------------------------===

struct AllocStats {
  uint64_t Heap;
  uint64_t Counted;
  uint64_t Scratch;
};

AllocStats snapshotAllocs() {
  return {GHeapAllocs.load(std::memory_order_relaxed),
          countedAllocEvents(), scratchAllocEvents()};
}

struct OpReport {
  double Seconds;
  AllocStats Delta;
  uint64_t Ops;
};

template <class F> OpReport measure(int Rounds, uint64_t Ops, const F &Fn) {
  // Warm-up pass populates scratch caches and vector allocator pools.
  Fn();
  AllocStats Before = snapshotAllocs();
  double Best = 1e30;
  for (int R = 0; R < Rounds; ++R) {
    double T = timeIt(Fn);
    if (T < Best)
      Best = T;
  }
  AllocStats After = snapshotAllocs();
  uint64_t TotalOps = Ops * uint64_t(Rounds);
  return {Best,
          {(After.Heap - Before.Heap) / uint64_t(Rounds),
           (After.Counted - Before.Counted) / uint64_t(Rounds),
           (After.Scratch - Before.Scratch) / uint64_t(Rounds)},
          TotalOps};
}

void printRow(const std::string &Scope, const char *Op, const char *Impl,
              const OpReport &R, uint64_t OpsPerRound) {
  double Rate = double(OpsPerRound) / R.Seconds;
  std::string Key = Scope + "/" + Op + "/" + Impl + "_ops_s";
  recordMetric(Key, Rate);
  recordMetric(Scope + "/" + Op + "/" + Impl + "_allocs_op",
               double(R.Delta.Heap + R.Delta.Counted + R.Delta.Scratch) /
                   double(OpsPerRound));
  std::printf("  %-10s %-9s %10s   %7.2f allocs/op (heap %6.2f, "
              "payload %6.2f, scratch %g)%s\n",
              Op, Impl, fmtRate(Rate).c_str(),
              double(R.Delta.Heap + R.Delta.Counted + R.Delta.Scratch) /
                  double(OpsPerRound),
              double(R.Delta.Heap) / double(OpsPerRound),
              double(R.Delta.Counted) / double(OpsPerRound),
              double(R.Delta.Scratch) / double(OpsPerRound),
              compareSuffix(Key, Rate).c_str());
}

void printRateRow(const std::string &Scope, const char *Op,
                  const char *Impl, double Rate, const char *Unit) {
  std::string Key = Scope + "/" + Op + "/" + std::string(Impl) + "_" + Unit;
  recordMetric(Key, Rate);
  std::printf("  %-10s %-9s %10s %s%s\n", Op, Impl, fmtRate(Rate).c_str(),
              Unit, compareSuffix(Key, Rate).c_str());
}

template <class Codec> void runCodec(size_t Count, size_t Pairs, int Rounds) {
  std::printf("\ncodec %s, %zu elements/chunk, %zu pairs:\n", Codec::Name,
              Count, Pairs);
  std::string Scope =
      std::string(Codec::Name) + std::to_string(Count);

  // Overlapping sorted-unique element sets per pair.
  std::vector<P32 *> As(Pairs), Bs(Pairs);
  std::vector<std::vector<uint32_t>> Spans(Pairs);
  for (size_t P = 0; P < Pairs; ++P) {
    auto Make = [&](uint64_t Seed) {
      std::vector<uint32_t> E(Count);
      for (size_t I = 0; I < Count; ++I)
        E[I] = uint32_t(hashAt(Seed, I) % (Count * 8));
      std::sort(E.begin(), E.end());
      E.erase(std::unique(E.begin(), E.end()), E.end());
      return E;
    };
    auto EA = Make(2 * P);
    auto EB = Make(2 * P + 1);
    As[P] = makeChunk<Codec>(EA.data(), EA.size());
    Bs[P] = makeChunk<Codec>(EB.data(), EB.size());
    Spans[P] = EB;
  }

  OpReport R;
  auto Run = [&](auto &&Fn) { return measure(Rounds, Pairs, Fn); };

  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(naiveUnion<Codec>(As[P], Bs[P]));
  });
  printRow(Scope, "union", "naive", R, Pairs);
  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(unionChunks<Codec>(As[P], Bs[P]));
  });
  printRow(Scope, "union", "runcopy", R, Pairs);

  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(
          naiveMinus<Codec>(As[P], Spans[P].data(), Spans[P].size()));
  });
  printRow(Scope, "minus", "naive", R, Pairs);
  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(
          chunkMinus<Codec>(As[P], Spans[P].data(), Spans[P].size()));
  });
  printRow(Scope, "minus", "runcopy", R, Pairs);

  auto SplitKey = [&](size_t P) {
    return As[P]->First + uint32_t(hashAt(7, P) % (As[P]->Last -
                                                   As[P]->First + 1));
  };
  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P) {
      ChunkSplit S = naiveSplit<Codec>(As[P], SplitKey(P));
      releaseChunk(static_cast<P32 *>(S.Left));
      releaseChunk(static_cast<P32 *>(S.Right));
    }
  });
  printRow(Scope, "split", "naive", R, Pairs);
  R = Run([&] {
    for (size_t P = 0; P < Pairs; ++P) {
      ChunkSplit S = splitChunk<Codec>(As[P], SplitKey(P));
      releaseChunk(static_cast<P32 *>(S.Left));
      releaseChunk(static_cast<P32 *>(S.Right));
    }
  });
  printRow(Scope, "split", "cursor", R, Pairs);

  // Contains: no allocation either way; throughput only.
  uint64_t Probes = Pairs * 64;
  std::atomic<uint64_t> Sink{0};
  R = measure(Rounds, Probes, [&] {
    uint64_t Hits = 0;
    for (size_t P = 0; P < Pairs; ++P)
      for (size_t I = 0; I < 64; ++I)
        Hits += chunkContains<Codec>(As[P], uint32_t(hashAt(9, P * 64 + I) %
                                                     (Count * 8)));
    Sink += Hits;
  });
  printRow(Scope, "contains", "cursor", R, Probes);

  for (size_t P = 0; P < Pairs; ++P) {
    releaseChunk(As[P]);
    releaseChunk(Bs[P]);
  }
}

//===----------------------------------------------------------------------===
// C-tree batch base cases (unionBC/diffBC): the whole merge must allocate
// only the output payloads and tree nodes — the head-routing updates
// buffer and the decoded batch live in borrowed scratch, so the heap
// column must stay at ~0 allocs/op and scratch at ~0 misses/op after
// warm-up.
//===----------------------------------------------------------------------===

template <class Codec>
void runCtreeBatchOps(size_t Count, size_t Pairs, int Rounds) {
  using CT = CTreeSet<uint32_t, Codec>;
  std::printf("\nctree batch ops (scratch-routed unionBC/diffBC), %zu "
              "elems/base, %zu batch, %zu pairs:\n",
              Count * 8, Count * 2, Pairs);
  std::string Scope = std::string("ctree-batch-") + Codec::Name;

  std::vector<CT> Bases(Pairs), Batches(Pairs), Dels(Pairs);
  for (size_t P = 0; P < Pairs; ++P) {
    auto Make = [&](uint64_t Seed, size_t N, uint64_t Range) {
      std::vector<uint32_t> E(N);
      for (size_t I = 0; I < N; ++I)
        E[I] = uint32_t(hashAt(Seed, I) % Range);
      return CT::fromUnsorted(std::move(E));
    };
    Bases[P] = Make(3 * P, Count * 8, Count * 64);
    // Batch concentrated in a window: few heads, big groups (the shape
    // the grouped routing targets).
    Batches[P] = Make(3 * P + 1, Count * 2, Count * 8);
    Dels[P] = CT::setIntersect(Bases[P], Make(3 * P + 2, Count * 4,
                                              Count * 64));
  }

  OpReport R = measure(Rounds, Pairs, [&] {
    for (size_t P = 0; P < Pairs; ++P) {
      CT Out = CT::setUnion(Bases[P], Batches[P]);
      (void)Out;
    }
  });
  printRow(Scope, "union", "grouped", R, Pairs);
  recordMetric(Scope + "/union/grouped_heap_allocs_op",
               double(R.Delta.Heap) / double(Pairs));

  R = measure(Rounds, Pairs, [&] {
    for (size_t P = 0; P < Pairs; ++P) {
      CT Out = CT::setDifference(Bases[P], Dels[P]);
      (void)Out;
    }
  });
  printRow(Scope, "minus", "grouped", R, Pairs);
  recordMetric(Scope + "/minus/grouped_heap_allocs_op",
               double(R.Delta.Heap) / double(Pairs));
}

//===----------------------------------------------------------------------===
// Sequential decode throughput: scalar Cursor vs block-decoded iterate,
// across gap regimes, over a streaming working set of many chunks (graph
// traversals stream every chunk once; nothing stays cache-hot).
//===----------------------------------------------------------------------===

void runDecode(size_t Count, size_t Chunks, int Rounds) {
  struct Regime {
    const char *Name;
    uint64_t GapScale; ///< avg gap ~ GapScale -> code width regime
  };
  const Regime Regimes[] = {
      {"gap8", 8},         // 1-byte codes (dense neighborhoods)
      {"gap300", 300},     // 1-2 byte mix (mid-size graphs)
      {"gap40k", 40000},   // 2-3 byte mix (large graphs)
  };
  std::printf("\nsequential decode, %zu elements/chunk, %zu chunks "
              "(tier %s):\n",
              Count, Chunks, blockDecodeTierName());
  for (const Regime &Rg : Regimes) {
    std::vector<P32 *> Cs;
    size_t TotalElems = 0;
    for (size_t C = 0; C < Chunks; ++C) {
      std::vector<uint32_t> E(Count);
      for (size_t I = 0; I < Count; ++I)
        E[I] = uint32_t(hashAt(C * 31 + 7, I) % (Count * Rg.GapScale));
      std::sort(E.begin(), E.end());
      E.erase(std::unique(E.begin(), E.end()), E.end());
      TotalElems += E.size();
      Cs.push_back(makeChunk<DeltaByteCodec>(E.data(), E.size()));
    }
    std::atomic<uint64_t> Sink{0};
    OpReport R = measure(Rounds, TotalElems, [&] {
      uint64_t Acc = 0;
      for (P32 *C : Cs)
        for (DeltaByteCodec::Cursor<uint32_t> Cu(C); !Cu.done();
             Cu.advance())
          Acc += Cu.value();
      Sink += Acc;
    });
    double ScalarRate = double(TotalElems) / R.Seconds;
    printRateRow("decode", Rg.Name, "scalar", ScalarRate, "elems_s");
    R = measure(Rounds, TotalElems, [&] {
      uint64_t Acc = 0;
      for (P32 *C : Cs)
        DeltaByteCodec::iterate<uint32_t>(C, [&](uint32_t V) {
          Acc += V;
          return true;
        });
      Sink += Acc;
    });
    double BlockRate = double(TotalElems) / R.Seconds;
    printRateRow("decode", Rg.Name, "block", BlockRate, "elems_s");
    std::printf("  %-10s ratio  %20.2fx block/scalar\n", Rg.Name,
                BlockRate / ScalarRate);
    recordMetric(std::string("decode/") + Rg.Name + "/ratio",
                 BlockRate / ScalarRate);
    for (P32 *C : Cs)
      releaseChunk(C);
  }
}

//===----------------------------------------------------------------------===
// Run-copy merges vs streaming merges across run-length patterns. Run
// length R: elements alternate between the two inputs in value-contiguous
// blocks of R, so the encoded runs the byte-copy merge can move grow with
// R ("disjoint" = one switch point; the byte-concat fast path).
//===----------------------------------------------------------------------===

void expectSame(const P32 *X, const P32 *Y, const char *What) {
  bool Same = (!X && !Y) ||
              (X && Y && X->Count == Y->Count && X->Bytes == Y->Bytes &&
               X->First == Y->First && X->Last == Y->Last &&
               std::memcmp(X->data(), Y->data(), X->Bytes) == 0);
  if (!Same) {
    std::fprintf(stderr, "FATAL: %s: run-copy and streaming merges "
                         "disagree\n",
                 What);
    std::exit(1);
  }
}

void runMergePatterns(size_t Count, size_t Pairs, int Rounds) {
  std::printf("\nrun-copy merges vs streaming, %zu elements/side, %zu "
              "pairs:\n",
              Count, Pairs);
  const size_t RunLens[] = {1, 16, 64};
  for (size_t RL : RunLens) {
    std::string Scope = "merge-run" + std::to_string(RL);
    std::vector<P32 *> As(Pairs), Bs(Pairs);
    for (size_t P = 0; P < Pairs; ++P) {
      std::vector<uint32_t> EA, EB;
      uint32_t V = uint32_t(P * 7);
      for (size_t I = 0; EA.size() < Count || EB.size() < Count; ++I) {
        bool ToA = (I / RL) % 2 == 0;
        V += 1 + uint32_t(hashAt(P, I) % 600); // mixed 1-2 byte gaps
        if (ToA && EA.size() < Count)
          EA.push_back(V);
        else if (!ToA && EB.size() < Count)
          EB.push_back(V);
      }
      As[P] = makeChunk<DeltaByteCodec>(EA.data(), EA.size());
      Bs[P] = makeChunk<DeltaByteCodec>(EB.data(), EB.size());
    }
    // Safety: byte-identical output on this pattern.
    {
      P32 *X = unionChunks<DeltaByteCodec>(As[0], Bs[0]);
      P32 *Y = unionChunksStreaming<DeltaByteCodec>(As[0], Bs[0]);
      expectSame(X, Y, Scope.c_str());
      releaseChunk(X);
      releaseChunk(Y);
    }
    OpReport R = measure(Rounds, Pairs, [&] {
      for (size_t P = 0; P < Pairs; ++P)
        releaseChunk(unionChunksStreaming<DeltaByteCodec>(As[P], Bs[P]));
    });
    printRow(Scope, "union", "streaming", R, Pairs);
    double StreamRate = double(Pairs) / R.Seconds;
    R = measure(Rounds, Pairs, [&] {
      for (size_t P = 0; P < Pairs; ++P)
        releaseChunk(unionChunks<DeltaByteCodec>(As[P], Bs[P]));
    });
    printRow(Scope, "union", "runcopy", R, Pairs);
    double CopyRate = double(Pairs) / R.Seconds;
    std::printf("  %-10s ratio  %20.2fx runcopy/streaming\n", "union",
                CopyRate / StreamRate);
    recordMetric(Scope + "/union/ratio", CopyRate / StreamRate);
    for (size_t P = 0; P < Pairs; ++P) {
      releaseChunk(As[P]);
      releaseChunk(Bs[P]);
    }
  }

  // Sparse subtrahend: every 32nd element removed - long kept stretches
  // byte-copy; and a disjoint union (single bridge gap, byte concat).
  {
    std::vector<P32 *> As(Pairs);
    std::vector<std::vector<uint32_t>> Subs(Pairs);
    for (size_t P = 0; P < Pairs; ++P) {
      std::vector<uint32_t> E(Count);
      uint32_t V = uint32_t(P);
      for (size_t I = 0; I < Count; ++I) {
        V += 1 + uint32_t(hashAt(P, I) % 600); // mixed 1-2 byte gaps
        E[I] = V;
      }
      As[P] = makeChunk<DeltaByteCodec>(E.data(), E.size());
      for (size_t I = 0; I < Count; I += 32)
        Subs[P].push_back(E[I]);
    }
    OpReport R = measure(Rounds, Pairs, [&] {
      for (size_t P = 0; P < Pairs; ++P)
        releaseChunk(chunkMinusStreaming<DeltaByteCodec>(
            As[P], Subs[P].data(), Subs[P].size()));
    });
    printRow("merge-sparse", "minus", "streaming", R, Pairs);
    double StreamRate = double(Pairs) / R.Seconds;
    R = measure(Rounds, Pairs, [&] {
      for (size_t P = 0; P < Pairs; ++P)
        releaseChunk(chunkMinus<DeltaByteCodec>(As[P], Subs[P].data(),
                                                Subs[P].size()));
    });
    printRow("merge-sparse", "minus", "runcopy", R, Pairs);
    double CopyRate = double(Pairs) / R.Seconds;
    std::printf("  %-10s ratio  %20.2fx runcopy/streaming\n", "minus",
                CopyRate / StreamRate);
    recordMetric("merge-sparse/minus/ratio", CopyRate / StreamRate);
    for (size_t P = 0; P < Pairs; ++P)
      releaseChunk(As[P]);
  }
}

//===----------------------------------------------------------------------===
// containsEdge probes per hybrid degree class (graph/hybrid_set.h):
// inline (in-node array scan), chunked (tree descent + chunk decode
// scan), hot (tree + hash sidecar, O(1)). The hot row is reported twice:
// through the sidecar probe and through the same set's underlying C-tree
// scan (findLE + chunkContains), which is what a hot-degree membership
// test costs without the sidecar.
//===----------------------------------------------------------------------===

void runHybridProbes(size_t Sets, int Rounds) {
  using HSet = HybridEdgeSetT<uint32_t, DeltaByteCodec>;
  struct ClassSpec {
    const char *Name;
    size_t Degree;
  };
  // Degrees relative to the default HybridParams thresholds
  // (InlineMax = 8, b = 128, HotMin = 4096).
  const ClassSpec Classes[] = {
      {"inline", 8}, {"chunked", 512}, {"hot", 8192}};
  HybridParams HP; // defaults: LogB 7, InlineMax 8, HotMin 4096
  std::printf("\nhybrid containsEdge probes, %zu sets/class, degrees "
              "8/512/8192 (b=128):\n",
              Sets);
  for (const ClassSpec &CS : Classes) {
    std::vector<HSet> Hs(Sets);
    std::vector<CTreeSet<uint32_t, DeltaByteCodec>> Cs(Sets);
    for (size_t S = 0; S < Sets; ++S) {
      std::vector<uint32_t> E(CS.Degree);
      for (size_t I = 0; I < CS.Degree; ++I)
        E[I] = uint32_t(hashAt(31 * S + 5, I) % (CS.Degree * 16));
      std::sort(E.begin(), E.end());
      E.erase(std::unique(E.begin(), E.end()), E.end());
      Hs[S] = HSet::buildSorted(E.data(), E.size(), HP);
      Cs[S] = CTreeSet<uint32_t, DeltaByteCodec>::buildSorted(
          E.data(), E.size(), {HP.headMask()});
    }
    uint64_t Probes = Sets * 256;
    std::atomic<uint64_t> Sink{0};
    std::string Scope = std::string("probe-") + CS.Name;
    OpReport R = measure(Rounds, Probes, [&] {
      uint64_t Hits = 0;
      for (size_t S = 0; S < Sets; ++S) {
        auto V = Hs[S].view();
        for (size_t I = 0; I < 256; ++I)
          Hits += V.contains(uint32_t(hashAt(13, S * 256 + I) %
                                      (CS.Degree * 16)));
      }
      Sink += Hits;
    });
    printRateRow(Scope, "contains", "hybrid",
                 double(Probes) / R.Seconds, "ops_s");
    double HybridRate = double(Probes) / R.Seconds;
    R = measure(Rounds, Probes, [&] {
      uint64_t Hits = 0;
      for (size_t S = 0; S < Sets; ++S) {
        auto V = Cs[S].view();
        for (size_t I = 0; I < 256; ++I)
          Hits += V.contains(uint32_t(hashAt(13, S * 256 + I) %
                                      (CS.Degree * 16)));
      }
      Sink += Hits;
    });
    printRateRow(Scope, "contains", "ctree-scan",
                 double(Probes) / R.Seconds, "ops_s");
    double ScanRate = double(Probes) / R.Seconds;
    std::printf("  %-10s ratio  %20.2fx hybrid/scan\n", CS.Name,
                HybridRate / ScanRate);
    recordMetric(Scope + "/contains/ratio", HybridRate / ScanRate);
  }
}

//===----------------------------------------------------------------------===
// Varint skip: scalar byte loop (the pre-word-at-a-time implementation)
// vs VarintCursor::skip's 8-byte-load + SWAR continuation-bit count; and
// raw block decode: scalar decodeVarint loop vs the dispatched
// decodeVarintBlock kernel.
//===----------------------------------------------------------------------===

const uint8_t *scalarSkip(const uint8_t *In, size_t N) {
  while (N > 0) {
    while (*In & 0x80)
      ++In;
    ++In;
    --N;
  }
  return In;
}

void runVarintKernels(size_t Count, size_t Streams, int Rounds) {
  std::printf("\nvarint kernels, %zu varints/stream, %zu streams (tier "
              "%s):\n",
              Count, Streams, blockDecodeTierName());
  // Per-stream encodings with hash-spread values (1..5 byte codes).
  std::vector<std::vector<uint8_t>> Bufs(Streams);
  for (size_t S = 0; S < Streams; ++S) {
    Bufs[S].resize(Count * 10);
    uint8_t *P = Bufs[S].data();
    for (size_t I = 0; I < Count; ++I)
      P = encodeVarint(hashAt(S, I) % (uint64_t(1) << 28), P);
    Bufs[S].resize(size_t(P - Bufs[S].data()));
  }
  // Each op: skip 7/8 of the stream, then decode one value (the seek
  // pattern: position, then read).
  size_t SkipN = Count - Count / 8;
  std::atomic<uint64_t> Sink{0};

  OpReport R = measure(Rounds, Streams, [&] {
    uint64_t Acc = 0;
    for (size_t S = 0; S < Streams; ++S) {
      const uint8_t *P = scalarSkip(Bufs[S].data(), SkipN);
      uint64_t V;
      decodeVarint(P, V);
      Acc += V;
    }
    Sink += Acc;
  });
  printRateRow("varint", "skip", "scalar",
               double(Streams) / R.Seconds, "ops_s");

  R = measure(Rounds, Streams, [&] {
    uint64_t Acc = 0;
    for (size_t S = 0; S < Streams; ++S) {
      VarintCursor Cu(Bufs[S].data(), Count);
      Cu.skip(SkipN);
      Acc += Cu.next();
    }
    Sink += Acc;
  });
  printRateRow("varint", "skip", "word",
               double(Streams) / R.Seconds, "ops_s");

  uint64_t TotalVals = Count * Streams;
  R = measure(Rounds, TotalVals, [&] {
    uint64_t Acc = 0;
    for (size_t S = 0; S < Streams; ++S) {
      const uint8_t *P = Bufs[S].data();
      for (size_t I = 0; I < Count; ++I) {
        uint64_t V;
        P = decodeVarint(P, V);
        Acc += V;
      }
    }
    Sink += Acc;
  });
  printRateRow("varint", "decode", "scalar",
               double(TotalVals) / R.Seconds, "vals_s");

  R = measure(Rounds, TotalVals, [&] {
    uint64_t Acc = 0;
    uint64_t Vals[64 + VarintBlockSlack];
    uint32_t EndOff[64 + VarintBlockSlack];
    for (size_t S = 0; S < Streams; ++S) {
      const uint8_t *P = Bufs[S].data();
      size_t Left = Count;
      while (Left) {
        size_t Want = Left < 64 ? Left : 64;
        size_t Got = decodeVarintBlock(P, Left, Want, Vals, EndOff, 0);
        for (size_t I = 0; I < Got; ++I)
          Acc += Vals[I];
        Left -= Got;
      }
    }
    Sink += Acc;
  });
  printRateRow("varint", "decode", "block",
               double(TotalVals) / R.Seconds, "vals_s");
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  size_t Count = size_t(CL.getInt("count", 128));
  size_t Pairs = size_t(CL.getInt("pairs", 1024));
  int Rounds = int(CL.getInt("rounds", 3));
  std::string ComparePath = CL.getString("compare");
  if (!ComparePath.empty() && !loadBenchBaseline(ComparePath))
    std::fprintf(stderr, "warning: cannot read -compare file %s\n",
                 ComparePath.c_str());

  printHeader("chunk set-operation microbenchmark");
  printEnvironment();
  std::printf("block-decode tier: %s\n", blockDecodeTierName());
  runCodec<DeltaByteCodec>(Count, Pairs, Rounds);
  runCodec<RawCodec>(Count, Pairs, Rounds);
  runCodec<DeltaByteCodec>(Count * 16, Pairs / 8 + 1, Rounds);
  runCtreeBatchOps<DeltaByteCodec>(Count, Pairs / 16 + 1, Rounds);
  runDecode(512, Pairs, Rounds);
  runMergePatterns(Count * 8, Pairs / 4 + 1, Rounds);
  runHybridProbes(Pairs / 16 + 1, Rounds);
  runVarintKernels(Count * 16, Pairs, Rounds);

  finishMetricTrail(CL, {{"_tier", blockDecodeTierName()}});
  return 0;
}
