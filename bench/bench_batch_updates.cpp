//===- bench/bench_batch_updates.cpp - Table 8 and Figure 5 ----------------===//
//
// Reproduces Table 8 / Figure 5: throughput (directed edges per second) of
// parallel batch insertions and deletions with batch sizes 10 .. 10^7
// (10^8+ behind -huge), where inserted edges are sampled from the rMAT
// generator. Each batch is inserted and then deleted; the median of
// `rounds` trials is reported, and timings include sorting the batch and
// combining duplicates, as in the paper.
//
// Expected shape (paper): throughput grows by ~4 orders of magnitude from
// batches of 10 to 10^9, approaching memory bandwidth; deletions run
// within ~10% of insertions (Figure 5).
//
// Beyond the Table 8 curves, the trail records the within-shard ingest
// scaling rows: a skewed batch (1M edges into ONE vertex, and the same
// batch into a one-shard store) is timed under the full worker pool and
// again in sequential mode. These batches defeat shard- and vertex-level
// parallelism by construction, so their par/seq speedup isolates the
// parallel unionBC/diffBC group routing, the work-weighted pam forks, and
// the parallel mergeShard group builds (DESIGN.md §5).
//
//   -json <path>    write every metric as flat JSON (BENCH_batch_updates.json)
//   -compare <path> annotate rows with before/after ratios vs a prior file
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "graph/graph.h"
#include "store/sharded_graph.h"
#include "util/hash.h"

using namespace aspen;

namespace {

void reportRow(const std::string &Key, double Value, const char *Unit) {
  recordMetric(Key, Value);
  std::printf("  %-40s %12s %s%s\n", Key.c_str(), fmtRate(Value).c_str(),
              Unit, compareSuffix(Key, Value).c_str());
}

/// 1M distinct-destination edges all sourced at one vertex: no vertex- or
/// shard-level parallelism exists in this batch by construction.
std::vector<EdgePair> hotVertexBatch(VertexId Hot, size_t K, VertexId N,
                                     uint64_t Seed) {
  std::vector<EdgePair> Out(K);
  for (size_t I = 0; I < K; ++I)
    Out[I] = {Hot, VertexId(hashAt(Seed, I) % N)};
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv, /*DefaultLogN=*/17);
  CommandLine CL(Argc, Argv);
  bool Huge = CL.has("huge");
  std::string ComparePath = CL.getString("compare");
  if (!ComparePath.empty() && !loadBenchBaseline(ComparePath))
    std::fprintf(stderr, "warning: cannot read -compare file %s\n",
                 ComparePath.c_str());
  BenchInput In = makeInput(C);
  printEnvironment();

  Graph Base = Graph::fromEdges(In.N, In.Edges);
  RMatGenerator Stream(C.LogN, C.Seed + 1000);

  std::printf(
      "\n== Table 8 / Figure 5: batch update throughput on %s ==\n",
      In.Name.c_str());
  std::printf("%-10s %16s %16s %14s %14s\n", "Batch", "Insert (edges/s)",
              "Delete (edges/s)", "Insert time", "Delete time");

  std::vector<uint64_t> Sizes = {10, 100, 1000, 10000, 100000, 1000000,
                                 10000000};
  if (Huge)
    Sizes.push_back(100000000);

  for (uint64_t BS : Sizes) {
    auto Batch = Stream.edges(0, BS);
    Graph WithBatch;
    double InsertT = benchTime(C.Rounds, [&] {
      WithBatch = Base.insertEdges(Batch);
    });
    double DeleteT = benchTime(C.Rounds, [&] {
      Graph After = WithBatch.deleteEdges(Batch);
      (void)After;
    });
    std::printf("%-10zu %16s %16s %14s %14s\n", size_t(BS),
                fmtRate(double(BS) / InsertT).c_str(),
                fmtRate(double(BS) / DeleteT).c_str(),
                fmtTime(InsertT).c_str(), fmtTime(DeleteT).c_str());
    recordMetric("table8/" + std::to_string(BS) + "/insert_eps",
                 double(BS) / InsertT);
    recordMetric("table8/" + std::to_string(BS) + "/delete_eps",
                 double(BS) / DeleteT);
  }

  std::printf("\nFigure 5 series (log-log): the two columns above are the "
              "insertion (I) and deletion (D) curves.\n");

  //===------------------------------------------------------------------===
  // Skewed-batch ingest: worker scaling where only within-shard
  // parallelism can help.
  //===------------------------------------------------------------------===

  const size_t HotK = 1000000;
  auto Hot = hotVertexBatch(/*Hot=*/7, HotK, In.N, C.Seed + 77);

  std::printf("\n== skewed ingest: %zu edges into one vertex on %s "
              "(%d workers vs sequential) ==\n",
              HotK, In.Name.c_str(), numWorkers());

  {
    Graph Out;
    double ParT = benchTime(C.Rounds, [&] { Out = Base.insertEdges(Hot); });
    setSequentialMode(true);
    double SeqT = benchTime(C.Rounds, [&] {
      Graph S = Base.insertEdges(Hot);
      (void)S;
    });
    setSequentialMode(false);
    reportRow("skewed/onevertex/insert_par_eps", double(HotK) / ParT,
              "edges/s");
    reportRow("skewed/onevertex/insert_seq_eps", double(HotK) / SeqT,
              "edges/s");
    reportRow("skewed/onevertex/insert_speedup", SeqT / ParT, "x");

    double DParT = benchTime(C.Rounds, [&] {
      Graph D = Out.deleteEdges(Hot);
      (void)D;
    });
    setSequentialMode(true);
    double DSeqT = benchTime(C.Rounds, [&] {
      Graph D = Out.deleteEdges(Hot);
      (void)D;
    });
    setSequentialMode(false);
    reportRow("skewed/onevertex/delete_par_eps", double(HotK) / DParT,
              "edges/s");
    reportRow("skewed/onevertex/delete_seq_eps", double(HotK) / DSeqT,
              "edges/s");
    reportRow("skewed/onevertex/delete_speedup", DSeqT / DParT, "x");
  }

  std::printf("\n== skewed ingest: %zu-edge batch into a ONE-shard store "
              "==\n",
              HotK);

  {
    // A one-shard store sends the whole batch through a single mergeShard
    // call: shard-level parallelism is zero, so any speedup comes from
    // the within-shard machinery. Each round inserts then deletes the
    // batch, so the store returns to its base state between rounds.
    auto Mixed = Stream.edges(5 * HotK, HotK);
    ShardedGraphStore St(1, In.N, In.Edges);
    double ParT = benchTime(C.Rounds, [&] {
      St.insertBatch(Mixed);
      St.deleteBatch(Mixed);
    });
    setSequentialMode(true);
    double SeqT = benchTime(C.Rounds, [&] {
      St.insertBatch(Mixed);
      St.deleteBatch(Mixed);
    });
    setSequentialMode(false);
    double Edges = 2.0 * double(HotK); // insert + delete per round
    reportRow("skewed/oneshard/update_par_eps", Edges / ParT, "edges/s");
    reportRow("skewed/oneshard/update_seq_eps", Edges / SeqT, "edges/s");
    reportRow("skewed/oneshard/update_speedup", SeqT / ParT, "x");
  }

  recordMetric("machine/workers", double(numWorkers()));
  finishMetricTrail(CL);
  return 0;
}
