//===- bench/bench_batch_updates.cpp - Table 8 and Figure 5 ----------------===//
//
// Reproduces Table 8 / Figure 5: throughput (directed edges per second) of
// parallel batch insertions and deletions with batch sizes 10 .. 10^7
// (10^8+ behind -huge), where inserted edges are sampled from the rMAT
// generator. Each batch is inserted and then deleted; the median of
// `rounds` trials is reported, and timings include sorting the batch and
// combining duplicates, as in the paper.
//
// Expected shape (paper): throughput grows by ~4 orders of magnitude from
// batches of 10 to 10^9, approaching memory bandwidth; deletions run
// within ~10% of insertions (Figure 5).
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "graph/graph.h"

using namespace aspen;

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  CommandLine CL(Argc, Argv);
  bool Huge = CL.has("huge");
  BenchInput In = makeInput(C);
  printEnvironment();

  Graph Base = Graph::fromEdges(In.N, In.Edges);
  RMatGenerator Stream(C.LogN, C.Seed + 1000);

  std::printf(
      "\n== Table 8 / Figure 5: batch update throughput on %s ==\n",
      In.Name.c_str());
  std::printf("%-10s %16s %16s %14s %14s\n", "Batch", "Insert (edges/s)",
              "Delete (edges/s)", "Insert time", "Delete time");

  std::vector<uint64_t> Sizes = {10, 100, 1000, 10000, 100000, 1000000,
                                 10000000};
  if (Huge)
    Sizes.push_back(100000000);

  for (uint64_t BS : Sizes) {
    auto Batch = Stream.edges(0, BS);
    Graph WithBatch;
    double InsertT = benchTime(C.Rounds, [&] {
      WithBatch = Base.insertEdges(Batch);
    });
    double DeleteT = benchTime(C.Rounds, [&] {
      Graph After = WithBatch.deleteEdges(Batch);
      (void)After;
    });
    std::printf("%-10zu %16s %16s %14s %14s\n", size_t(BS),
                fmtRate(double(BS) / InsertT).c_str(),
                fmtRate(double(BS) / DeleteT).c_str(),
                fmtTime(InsertT).c_str(), fmtTime(DeleteT).c_str());
  }

  std::printf("\nFigure 5 series (log-log): the two columns above are the "
              "insertion (I) and deletion (D) curves.\n");
  return 0;
}
