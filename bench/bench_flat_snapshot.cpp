//===- bench/bench_flat_snapshot.cpp - Table 6 ------------------------------===//
//
// Reproduces Table 6: BFS running time without a flat snapshot (vertex
// lookups through the vertex tree) and with one (including the time to
// build the snapshot), plus the snapshot-construction time itself.
//
// Expected shape (paper): 1.12-1.34x speedup including construction; the
// flat snapshot costs 15-24% of the BFS time.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bfs.h"
#include "graph/graph.h"

using namespace aspen;

int main(int Argc, char **Argv) {
  BenchConfig C = parseBenchConfig(Argc, Argv);
  // Sub-10ms BFS runs are noisy; more rounds stabilize the medians.
  if (C.Rounds < 5)
    C.Rounds = 5;
  auto Inputs = makeInputs(C);
  printEnvironment();

  printHeader("Table 6: BFS with and without flat snapshots");
  std::printf("%-12s %12s %12s %9s %12s\n", "Graph", "Without FS",
              "With FS", "Speedup", "FS Time");
  for (const BenchInput &In : Inputs) {
    Graph G = Graph::fromEdges(In.N, In.Edges);
    TreeGraphView TV(G);

    double Without = benchTime(C.Rounds, [&] { bfs(TV, 0); });
    double FsTime = benchTime(C.Rounds, [&] { FlatSnapshot FS(G); });
    double With = benchTime(C.Rounds, [&] {
      FlatSnapshot FS(G); // included in the with-FS time, as in the paper
      FlatGraphView FV(FS);
      bfs(FV, 0);
    });
    std::printf("%-12s %12s %12s %8.2fx %12s\n", In.Name.c_str(),
                fmtTime(Without).c_str(), fmtTime(With).c_str(),
                Without / With, fmtTime(FsTime).c_str());
  }
  return 0;
}
