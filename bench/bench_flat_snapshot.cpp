//===- bench/bench_flat_snapshot.cpp - Table 6 + incremental refresh ------===//
//
// Section A reproduces Table 6: BFS running time without a flat snapshot
// (vertex lookups through the vertex tree) and with one (including the
// time to build the snapshot), plus the snapshot-construction time
// itself. Expected shape (paper): 1.12-1.34x speedup including
// construction; the flat snapshot costs 15-24% of the BFS time.
//
// Section B measures what makes flat views economical under streaming
// (DESIGN.md Section 4): per batch size (0.01% / 0.1% / 1% of n touched
// sources), the cost of a full from-scratch flat rebuild versus
// acquireFlat()'s incremental refresh of the store-resident hot flat
// snapshot. The acceptance bar for the incremental path is >= 5x at <= 1%
// touched.
//
// Metric trail: -json <path> writes every reported metric as flat JSON
// (BENCH_flat_snapshot.json is the committed trail; CI uploads it) and
// -compare <path> annotates rows against a previous file, following the
// bench_chunk_ops convention.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "algorithms/bfs.h"
#include "graph/versioned_graph.h"

#include <algorithm>

using namespace aspen;

namespace {

//===----------------------------------------------------------------------===
// Section A: Table 6.
//===----------------------------------------------------------------------===

void runTable6(const BenchConfig &C, const std::vector<BenchInput> &Inputs) {
  printHeader("Table 6: BFS with and without flat snapshots");
  std::printf("%-12s %12s %12s %9s %12s\n", "Graph", "Without FS",
              "With FS", "Speedup", "FS Time");
  for (const BenchInput &In : Inputs) {
    Graph G = Graph::fromEdges(In.N, In.Edges);
    TreeGraphView TV(G);

    double Without = benchTime(C.Rounds, [&] { bfs(TV, 0); });
    double FsTime = benchTime(C.Rounds, [&] { FlatSnapshot FS(G); });
    double With = benchTime(C.Rounds, [&] {
      FlatSnapshot FS(G); // included in the with-FS time, as in the paper
      FlatGraphView FV(FS);
      bfs(FV, 0);
    });
    std::string Scope = "table6/" + In.Name;
    recordMetric(Scope + "/bfs_tree_s", Without);
    recordMetric(Scope + "/bfs_flat_incl_build_s", With);
    recordMetric(Scope + "/flat_build_s", FsTime);
    std::printf("%-12s %12s %12s %8.2fx %12s%s\n", In.Name.c_str(),
                fmtTime(Without).c_str(), fmtTime(With).c_str(),
                Without / With, fmtTime(FsTime).c_str(),
                compareSuffix(Scope + "/flat_build_s", FsTime).c_str());
  }
}

//===----------------------------------------------------------------------===
// Section B: rebuild vs incremental refresh per batch size.
//===----------------------------------------------------------------------===

/// A batch of ~K distinct-source undirected updates drawn from an rMAT
/// stream (realistic degree skew; symmetrized like every input).
std::vector<EdgePair> updateBatch(const BenchInput &In, size_t K,
                                  uint64_t Seq) {
  std::vector<EdgePair> Out;
  Out.reserve(2 * K);
  for (size_t I = 0; I < K; ++I) {
    // Deterministic picks from the input's own edges: updates hit
    // existing vertices with the graph's degree distribution.
    const EdgePair &E = In.Edges[size_t(hashAt(Seq, I) % In.Edges.size())];
    Out.push_back(E);
    Out.push_back({E.second, E.first});
  }
  return dedupEdges(std::move(Out));
}

void runRefresh(const BenchConfig &C, const std::vector<BenchInput> &Inputs) {
  printHeader("Incremental flat snapshots: full rebuild vs "
              "acquireFlat() refresh");
  std::printf("%-12s %10s %9s %12s %12s %9s %9s\n", "Graph", "Batch",
              "Touched", "Rebuild", "Refresh", "Speedup", "Shared");
  const double Fracs[] = {0.0001, 0.001, 0.01};
  const char *FracNames[] = {"0.01%", "0.1%", "1%"};
  for (const BenchInput &In : Inputs) {
    for (int F = 0; F < 3; ++F) {
      size_t K = std::max<size_t>(1, size_t(double(In.N) * Fracs[F] / 2));
      VersionedGraph VG(Graph::fromEdges(In.N, In.Edges));
      auto Warm = VG.acquireFlat(); // populate the hot cache
      double RebuildT = benchTime(C.Rounds, [&] {
        FlatSnapshot FS(VG.acquire().graph());
      });

      // Each round: one batch, then time the catch-up refresh.
      std::vector<double> Times;
      uint64_t TouchedSum = 0;
      size_t SharedPages = 0, TotalPages = 1;
      for (int R = 0; R < C.Rounds; ++R) {
        auto Prev = VG.acquireFlat();
        auto Batch = updateBatch(In, K, uint64_t(R) * 7919 + F);
        // The digest size this refresh replays: distinct sources of the
        // (sorted, deduplicated) batch.
        for (size_t I = 0; I < Batch.size(); ++I)
          TouchedSum += (I == 0 || Batch[I].first != Batch[I - 1].first);
        VG.insertEdgesBatch(std::move(Batch));
        Timer T;
        auto FS = VG.acquireFlat();
        Times.push_back(T.elapsed());
        SharedPages = FS->sharedPages();
        TotalPages = FS->numPages();
      }
      std::sort(Times.begin(), Times.end());
      double RefreshT = Times[Times.size() / 2];
      auto Stats = VG.flatStats();
      bool AllRefreshed = Stats.Rebuilds == 1; // only the warm-up build
      std::string Scope =
          "refresh/" + In.Name + "/b" + FracNames[F];
      recordMetric(Scope + "/rebuild_s", RebuildT);
      recordMetric(Scope + "/refresh_s", RefreshT);
      recordMetric(Scope + "/speedup", RebuildT / RefreshT);
      char Touched[32];
      std::snprintf(Touched, sizeof(Touched), "%llu",
                    static_cast<unsigned long long>(
                        TouchedSum / uint64_t(C.Rounds)));
      std::printf("%-12s %10s %9s %12s %12s %8.2fx %8.0f%%%s%s\n",
                  In.Name.c_str(), FracNames[F], Touched,
                  fmtTime(RebuildT).c_str(), fmtTime(RefreshT).c_str(),
                  RebuildT / RefreshT,
                  100.0 * double(SharedPages) / double(TotalPages),
                  AllRefreshed ? "" : "  [fell back to rebuild]",
                  compareSuffix(Scope + "/speedup", RebuildT / RefreshT)
                      .c_str());
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  BenchConfig C = parseBenchConfig(Argc, Argv);
  // Sub-10ms BFS runs are noisy; more rounds stabilize the medians.
  if (C.Rounds < 5)
    C.Rounds = 5;
  auto Inputs = makeInputs(C);
  printEnvironment();

  std::string ComparePath = CL.getString("compare");
  if (!ComparePath.empty() && !loadBenchBaseline(ComparePath))
    std::fprintf(stderr, "warning: cannot read -compare file %s\n",
                 ComparePath.c_str());

  runTable6(C, Inputs);
  runRefresh(C, Inputs);

  finishMetricTrail(CL);
  return 0;
}
