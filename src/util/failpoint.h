//===- util/failpoint.h - Fault injection for the durability layer --------===//
//
// A tiny failpoint registry that lets tests force the failure modes a
// real storage stack sees — torn (short) writes, fsync errors, bit flips
// on the way to disk, dropped replication connections, and process death
// at chosen points — without actually killing the process. All durable
// I/O in store/wal.h and store/checkpoint.h routes through the fp*()
// wrappers below, the replication transport (store/transport.h) checks
// its send/recv sites the same way, and the commit protocols mark their
// interesting transitions with named ASPEN_FAILPOINT sites
// ("wal.append.before", "ckpt.rename.after", "repl.chunk.send", ...).
//
// A test arms a site with an action and a hit index:
//
//   failpoints().arm("wal.record.write", FailAction::shortWrite(7), 2);
//   // the 3rd write at that site persists only 7 bytes, then "crashes"
//
// "Crashing" throws SimulatedCrash. The durability code is exception-
// safe in the narrow sense the tests need: whatever bytes were written
// before the throw stay in the files (exactly like a kill -9 after a
// partial write), in-flight group commits are poisoned so concurrent
// appenders also unwind, and the test then drops the store object and
// re-opens the directory to exercise recovery.
//
// When nothing is armed the hot-path cost is one relaxed atomic load of
// a global counter (zero branches taken), so the wrappers are left in
// release builds — the differential recovery suite runs against the
// exact binaries that ship.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_UTIL_FAILPOINT_H
#define ASPEN_UTIL_FAILPOINT_H

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <unordered_map>
#include <vector>

namespace aspen {

/// Thrown at an armed crash point: simulated process death. Tests catch
/// it, destroy the store, and re-open from the durable directory.
struct SimulatedCrash : std::runtime_error {
  explicit SimulatedCrash(const std::string &Site)
      : std::runtime_error("simulated crash at failpoint: " + Site) {}
};

/// What an armed failpoint does when its hit index comes up.
struct FailAction {
  enum Kind : uint8_t {
    Crash,      ///< throw SimulatedCrash before the operation
    ShortWrite, ///< persist only Arg bytes of the write, then crash
    FailFsync,  ///< fail the fsync with EIO (no crash; caller handles)
    BitFlip,    ///< flip bit Arg of the written bytes (persists corrupt)
    SoftError,  ///< recoverable failure (transport drop, EIO) — the
                ///< caller's retry path handles it, no process death
  };
  Kind K = Crash;
  uint64_t Arg = 0;

  static FailAction crash() { return {Crash, 0}; }
  static FailAction shortWrite(uint64_t Bytes) { return {ShortWrite, Bytes}; }
  static FailAction failFsync() { return {FailFsync, 0}; }
  static FailAction bitFlip(uint64_t Bit) { return {BitFlip, Bit}; }
  static FailAction softError() { return {SoftError, 0}; }
};

/// Global failpoint registry. Sites are arbitrary strings; arming is
/// cheap and test-scoped (see FailpointGuard). Thread-safe.
class FailpointRegistry {
  struct Armed {
    FailAction Action;
    uint64_t HitIndex;   ///< trigger on the (HitIndex+1)-th hit
    uint64_t Hits = 0;   ///< hits observed so far
    bool Spent = false;  ///< one-shot: triggered already
  };

public:
  /// Arm \p Site to trigger \p A on its (\p HitIndex + 1)-th hit.
  /// Re-arming a site replaces its previous action and resets its count.
  void arm(const std::string &Site, FailAction A, uint64_t HitIndex = 0) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Site);
    if (It == Map.end()) {
      Map.emplace(Site, Armed{A, HitIndex});
      NumArmed.fetch_add(1, std::memory_order_relaxed);
    } else {
      It->second = Armed{A, HitIndex};
    }
  }

  void disarm(const std::string &Site) {
    std::lock_guard<std::mutex> Lock(M);
    if (Map.erase(Site))
      NumArmed.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Disarm everything (test teardown).
  void reset() {
    std::lock_guard<std::mutex> Lock(M);
    Map.clear();
    NumArmed.store(0, std::memory_order_relaxed);
  }

  /// Number of hits a site has observed (armed sites only).
  uint64_t hits(const std::string &Site) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Site);
    return It == Map.end() ? 0 : It->second.Hits;
  }

  /// Called by instrumented code. Returns the action to apply at this
  /// hit, or false. One atomic load when nothing is armed anywhere.
  bool check(const char *Site, FailAction &Out) {
    if (NumArmed.load(std::memory_order_relaxed) == 0)
      return false;
    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(Site);
    if (It == Map.end())
      return false;
    Armed &A = It->second;
    uint64_t Hit = A.Hits++;
    if (A.Spent || Hit != A.HitIndex)
      return false;
    A.Spent = true; // one-shot: recovery re-runs the same sites cleanly
    Out = A.Action;
    return true;
  }

private:
  std::mutex M;
  std::unordered_map<std::string, Armed> Map;
  std::atomic<uint64_t> NumArmed{0};
};

inline FailpointRegistry &failpoints() {
  static FailpointRegistry R;
  return R;
}

/// RAII arm/disarm-all for tests: every guard resets the whole registry
/// on destruction, so a throwing test cannot leak armed sites.
struct FailpointGuard {
  FailpointGuard() = default;
  FailpointGuard(const std::string &Site, FailAction A,
                 uint64_t HitIndex = 0) {
    failpoints().arm(Site, A, HitIndex);
  }
  ~FailpointGuard() { failpoints().reset(); }
  FailpointGuard(const FailpointGuard &) = delete;
  FailpointGuard &operator=(const FailpointGuard &) = delete;
};

/// Pure crash site (no I/O attached): throws if armed with any action.
inline void failpointHit(const char *Site) {
  FailAction A;
  if (failpoints().check(Site, A))
    throw SimulatedCrash(Site);
}

#define ASPEN_FAILPOINT(SiteLiteral) ::aspen::failpointHit(SiteLiteral)

/// write(2) wrapper honoring ShortWrite / BitFlip / Crash at \p Site.
/// Loops over partial writes; throws std::runtime_error on real I/O
/// errors and SimulatedCrash on injected ones. A short-write injection
/// persists the prefix (torn tail on disk) before crashing; a bit flip
/// corrupts one bit of this call's bytes and then writes normally —
/// modeling media corruption the checksums must catch.
inline void fpWrite(int Fd, const void *Buf, size_t N, const char *Site) {
  const uint8_t *P = static_cast<const uint8_t *>(Buf);
  std::vector<uint8_t> Flipped; // only on BitFlip injection
  FailAction A;
  size_t Persist = N;
  bool CrashAfter = false;
  if (failpoints().check(Site, A)) {
    switch (A.K) {
    case FailAction::Crash:
      throw SimulatedCrash(Site);
    case FailAction::ShortWrite:
      Persist = A.Arg < N ? size_t(A.Arg) : N;
      CrashAfter = true;
      break;
    case FailAction::BitFlip:
      Flipped.assign(P, P + N);
      if (N)
        Flipped[size_t(A.Arg / 8) % N] ^= uint8_t(1u << (A.Arg % 8));
      P = Flipped.data();
      break;
    case FailAction::FailFsync:
      break; // not meaningful on a write site
    case FailAction::SoftError:
      throw std::runtime_error(std::string("injected I/O error at ") + Site);
    }
  }
  size_t Done = 0;
  while (Done < Persist) {
    ssize_t W = ::write(Fd, P + Done, Persist - Done);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      throw std::runtime_error(std::string("write failed: ") +
                               std::strerror(errno));
    }
    Done += size_t(W);
  }
  if (CrashAfter)
    throw SimulatedCrash(Site);
}

/// fsync(2) wrapper honoring FailFsync / Crash at \p Site. Returns false
/// on an (injected or real) fsync failure; the caller decides whether
/// that poisons the log or fails the checkpoint.
inline bool fpFsync(int Fd, const char *Site) {
  FailAction A;
  if (failpoints().check(Site, A)) {
    if (A.K == FailAction::Crash)
      throw SimulatedCrash(Site);
    if (A.K == FailAction::FailFsync || A.K == FailAction::SoftError)
      return false;
  }
  return ::fsync(Fd) == 0;
}

} // namespace aspen

#endif // ASPEN_UTIL_FAILPOINT_H
