//===- util/timer.h - Wall-clock timing -----------------------------------===//
//
// Simple monotonic wall-clock timer used by the benchmark harnesses.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_UTIL_TIMER_H
#define ASPEN_UTIL_TIMER_H

#include <chrono>

namespace aspen {

/// Monotonic stopwatch. Construction starts it.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Run \p F once and return the elapsed seconds.
template <class F> double timeIt(F &&Fn) {
  Timer T;
  Fn();
  return T.elapsed();
}

/// Run \p F \p Rounds times and return the median elapsed seconds.
/// The paper reports medians of three trials for the update benchmarks.
template <class F> double medianTime(int Rounds, F &&Fn) {
  double Best[64];
  if (Rounds > 64)
    Rounds = 64;
  for (int I = 0; I < Rounds; ++I)
    Best[I] = timeIt(Fn);
  // Insertion sort; Rounds is tiny.
  for (int I = 1; I < Rounds; ++I)
    for (int J = I; J > 0 && Best[J] < Best[J - 1]; --J)
      std::swap(Best[J], Best[J - 1]);
  return Best[Rounds / 2];
}

} // namespace aspen

#endif // ASPEN_UTIL_TIMER_H
