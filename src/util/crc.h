//===- util/crc.h - CRC32C (Castagnoli) checksums -------------------------===//
//
// The checksum behind every durable byte this library writes: WAL record
// headers+payloads, checkpoint pages and manifests (store/wal.h,
// store/checkpoint.h), and the checksummed binary edge-list format
// (gen/graph_io.h). CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78)
// is the iSCSI/ext4/LevelDB polynomial: strong burst-error detection and
// a hardware instruction on x86, though the portable slice-by-8 table
// walk below is fast enough for our commit-path record sizes (~1 GB/s)
// and keeps the build dependency-free.
//
// crc32c() is incremental: feed it the previous return value as \p Seed
// to extend a checksum across discontiguous spans (the WAL checksums a
// record header and its payload in two calls). Values are stored in
// *finalized* form (the conventional ~crc post-inversion), so equal
// stored values mean equal streams.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_UTIL_CRC_H
#define ASPEN_UTIL_CRC_H

#include <cstddef>
#include <cstdint>

namespace aspen {

namespace detail {

/// Slice-by-8 tables, built once on first use (thread-safe local static).
struct Crc32cTables {
  uint32_t T[8][256];

  Crc32cTables() {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int B = 0; B < 8; ++B)
        C = (C >> 1) ^ ((C & 1) ? 0x82F63B78u : 0);
      T[0][I] = C;
    }
    for (uint32_t I = 0; I < 256; ++I)
      for (int S = 1; S < 8; ++S)
        T[S][I] = (T[S - 1][I] >> 8) ^ T[0][T[S - 1][I] & 0xFF];
  }
};

inline const Crc32cTables &crc32cTables() {
  static const Crc32cTables Tables;
  return Tables;
}

} // namespace detail

/// CRC32C of \p N bytes at \p Data. Pass a previous (finalized) result as
/// \p Seed to extend the checksum across multiple spans; 0 starts fresh.
inline uint32_t crc32c(const void *Data, size_t N, uint32_t Seed = 0) {
  const auto &Tb = detail::crc32cTables();
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t C = ~Seed;
  // Head: align to 8 bytes.
  while (N && (reinterpret_cast<uintptr_t>(P) & 7)) {
    C = (C >> 8) ^ Tb.T[0][(C ^ *P++) & 0xFF];
    --N;
  }
  // Body: slice-by-8.
  while (N >= 8) {
    uint64_t W;
    __builtin_memcpy(&W, P, 8);
    W ^= C;
    C = Tb.T[7][W & 0xFF] ^ Tb.T[6][(W >> 8) & 0xFF] ^
        Tb.T[5][(W >> 16) & 0xFF] ^ Tb.T[4][(W >> 24) & 0xFF] ^
        Tb.T[3][(W >> 32) & 0xFF] ^ Tb.T[2][(W >> 40) & 0xFF] ^
        Tb.T[1][(W >> 48) & 0xFF] ^ Tb.T[0][(W >> 56) & 0xFF];
    P += 8;
    N -= 8;
  }
  // Tail.
  while (N--)
    C = (C >> 8) ^ Tb.T[0][(C ^ *P++) & 0xFF];
  return ~C;
}

} // namespace aspen

#endif // ASPEN_UTIL_CRC_H
