//===- util/types.h - Fundamental scalar types ----------------------------===//
//
// Part of the Aspen reproduction. Shared scalar typedefs used throughout
// the library: vertex identifiers, edge counts, and the empty payload type
// used by set-like tree instantiations.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_UTIL_TYPES_H
#define ASPEN_UTIL_TYPES_H

#include <cstddef>
#include <cstdint>
#include <utility>

namespace aspen {

/// Vertex identifier. 32 bits suffices for the graph scales this machine
/// holds; the tree and C-tree layers are templated and also accept 64-bit
/// keys.
using VertexId = uint32_t;

/// Edge counts can exceed 2^32.
using EdgeCount = uint64_t;

/// A directed edge update (source, destination).
using EdgePair = std::pair<VertexId, VertexId>;

/// Placeholder value type for set-like instantiations.
struct Empty {
  friend bool operator==(const Empty &, const Empty &) { return true; }
};

/// Sentinel vertex id meaning "none".
inline constexpr VertexId NoVertex = ~VertexId(0);

} // namespace aspen

#endif // ASPEN_UTIL_TYPES_H
