//===- util/command_line.cpp - Tiny argv parser ---------------------------===//

#include "util/command_line.h"

#include <cstdlib>

using namespace aspen;

CommandLine::CommandLine(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.size() > 1 && Arg[0] == '-' &&
        !(Arg.size() > 1 && (isdigit(Arg[1]) || Arg[1] == '.'))) {
      std::string Name = Arg.substr(1);
      // Accept GNU-style double dashes too.
      if (!Name.empty() && Name[0] == '-')
        Name = Name.substr(1);
      std::string Value;
      if (I + 1 < Argc && Argv[I + 1][0] != '-') {
        Value = Argv[I + 1];
        ++I;
      }
      Options.emplace_back(Name, Value);
      continue;
    }
    Positionals.push_back(Arg);
  }
}

bool CommandLine::has(const std::string &Name) const {
  for (const auto &KV : Options)
    if (KV.first == Name)
      return true;
  return false;
}

std::string CommandLine::getString(const std::string &Name,
                                   const std::string &Default) const {
  for (const auto &KV : Options)
    if (KV.first == Name)
      return KV.second;
  return Default;
}

int64_t CommandLine::getInt(const std::string &Name, int64_t Default) const {
  for (const auto &KV : Options)
    if (KV.first == Name && !KV.second.empty())
      return std::strtoll(KV.second.c_str(), nullptr, 10);
  return Default;
}

double CommandLine::getDouble(const std::string &Name, double Default) const {
  for (const auto &KV : Options)
    if (KV.first == Name && !KV.second.empty())
      return std::strtod(KV.second.c_str(), nullptr);
  return Default;
}

std::string CommandLine::positional(size_t I,
                                    const std::string &Default) const {
  return I < Positionals.size() ? Positionals[I] : Default;
}
