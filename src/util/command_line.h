//===- util/command_line.h - Tiny argv parser ------------------------------===//
//
// Minimal command-line option parser shared by the benchmark drivers and
// examples: `-flag`, `-key value`, positional arguments.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_UTIL_COMMAND_LINE_H
#define ASPEN_UTIL_COMMAND_LINE_H

#include <cstdint>
#include <string>
#include <vector>

namespace aspen {

/// Parses `argv` into flags (`-quiet`), key/value options (`-n 1000`), and
/// positional arguments.
class CommandLine {
public:
  CommandLine(int Argc, char **Argv);

  /// True if `-Name` appears (with or without a value).
  bool has(const std::string &Name) const;

  /// Value of `-Name Value`, or \p Default when absent.
  std::string getString(const std::string &Name,
                        const std::string &Default = "") const;
  int64_t getInt(const std::string &Name, int64_t Default) const;
  double getDouble(const std::string &Name, double Default) const;

  /// Positional argument \p I, or \p Default if missing.
  std::string positional(size_t I, const std::string &Default = "") const;

private:
  std::vector<std::pair<std::string, std::string>> Options;
  std::vector<std::string> Positionals;
};

} // namespace aspen

#endif // ASPEN_UTIL_COMMAND_LINE_H
