//===- util/hash.h - Mixing hash functions --------------------------------===//
//
// 64-bit finalizer-style mixing hashes. The C-tree head-selection rule and
// the deterministic pseudo-random generators are built on these. The paper
// assumes a uniformly random hash family evaluable in O(1) work (Section 2);
// a strong 64-bit mixer is the standard practical stand-in.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_UTIL_HASH_H
#define ASPEN_UTIL_HASH_H

#include <cstdint>

namespace aspen {

/// splitmix64 finalizer: a bijective 64-bit mixer with good avalanche.
inline uint64_t hash64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// A second, independent mixer (murmur3 finalizer) for places that need two
/// hash functions of the same key.
inline uint64_t hash64b(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

/// Deterministic pseudo-random stream: the I-th draw of a stream seeded by
/// \p Seed. Used for reproducible "random" priorities, sampling, and
/// generators without shared RNG state across parallel workers.
inline uint64_t hashAt(uint64_t Seed, uint64_t I) {
  return hash64(Seed ^ hash64b(I));
}

} // namespace aspen

#endif // ASPEN_UTIL_HASH_H
