//===- ligra/vertex_subset.h - Frontier representation --------------------===//
//
// Ligra's vertexSubset (Section 2): a subset of [0, n) kept in either
// sparse (id list) or dense (flag array) form, converted lazily by
// edgeMap's direction optimization.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_LIGRA_VERTEX_SUBSET_H
#define ASPEN_LIGRA_VERTEX_SUBSET_H

#include "parallel/primitives.h"
#include "util/types.h"

#include <cassert>
#include <vector>

namespace aspen {

/// A subset of the vertices [0, N).
class VertexSubset {
public:
  VertexSubset() = default;

  /// Empty subset over universe \p N.
  explicit VertexSubset(VertexId N) : N(N), IsDense(false) {}

  /// Singleton subset.
  VertexSubset(VertexId N, VertexId V) : N(N), IsDense(false) {
    Sparse.push_back(V);
  }

  /// Sparse subset from an id list (may be unsorted; no duplicates).
  VertexSubset(VertexId N, std::vector<VertexId> Ids)
      : N(N), IsDense(false), Sparse(std::move(Ids)) {}

  /// Dense subset from flags (Flags.size() == N).
  VertexSubset(VertexId N, std::vector<uint8_t> Flags)
      : N(N), IsDense(true), Dense(std::move(Flags)) {
    assert(Dense.size() == N);
    Count = reduceSum(Dense.size(),
                      [&](size_t I) { return size_t(Dense[I] ? 1 : 0); });
    HasCount = true;
  }

  VertexId universe() const { return N; }

  /// Number of member vertices.
  size_t size() const {
    if (IsDense) {
      assert(HasCount);
      return Count;
    }
    return Sparse.size();
  }

  bool empty() const { return size() == 0; }
  bool isDense() const { return IsDense; }

  /// Membership test (requires dense form for O(1); sparse form scans).
  bool contains(VertexId V) const {
    if (IsDense)
      return Dense[V] != 0;
    for (VertexId U : Sparse)
      if (U == V)
        return true;
    return false;
  }

  const std::vector<VertexId> &sparseIds() const {
    assert(!IsDense && "call toSparse() first");
    return Sparse;
  }

  const std::vector<uint8_t> &denseFlags() const {
    assert(IsDense && "call toDense() first");
    return Dense;
  }

  /// Convert to dense form in place.
  void toDense() {
    if (IsDense)
      return;
    std::vector<uint8_t> Flags(N, 0);
    parallelFor(0, Sparse.size(), [&](size_t I) { Flags[Sparse[I]] = 1; });
    Count = Sparse.size();
    HasCount = true;
    Dense = std::move(Flags);
    Sparse.clear();
    IsDense = true;
  }

  /// Convert to sparse form in place (ids come out in increasing order).
  void toSparse() {
    if (!IsDense)
      return;
    Sparse = filterIndex(
        N, [&](size_t I) { return VertexId(I); },
        [&](size_t I) { return Dense[I] != 0; });
    Dense.clear();
    IsDense = false;
  }

  /// Apply Fn(v) to each member, in parallel.
  template <class F> void forEach(const F &Fn) const {
    if (IsDense) {
      parallelFor(0, N, [&](size_t V) {
        if (Dense[V])
          Fn(VertexId(V));
      });
      return;
    }
    parallelFor(0, Sparse.size(), [&](size_t I) { Fn(Sparse[I]); });
  }

  /// Members as a sorted vector (for tests).
  std::vector<VertexId> toVector() const {
    VertexSubset Copy = *this;
    Copy.toSparse();
    std::vector<VertexId> Out = Copy.Sparse;
    parallelSort(Out);
    return Out;
  }

private:
  VertexId N = 0;
  bool IsDense = false;
  bool HasCount = false;
  size_t Count = 0;
  std::vector<VertexId> Sparse;
  std::vector<uint8_t> Dense;
};

} // namespace aspen

#endif // ASPEN_LIGRA_VERTEX_SUBSET_H
