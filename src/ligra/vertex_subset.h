//===- ligra/vertex_subset.h - Frontier representation --------------------===//
//
// Ligra's vertexSubset (Section 2): a subset of [0, n) kept in either
// sparse (id list) or dense (flag array) form, converted lazily by
// edgeMap's direction optimization.
//
// Storage is drawn from an AlgoContext workspace (or, with no context,
// from the per-worker scratch cache) instead of owned std::vectors, so a
// frontier's buffers are recycled across edgeMap rounds and algorithm
// runs: at steady state frontier churn performs no heap allocation.
// A subset must not outlive the context it was created against.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_LIGRA_VERTEX_SUBSET_H
#define ASPEN_LIGRA_VERTEX_SUBSET_H

#include "memory/algo_context.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <cassert>
#include <cstring>
#include <utility>
#include <vector>

namespace aspen {

/// A subset of the vertices [0, N).
class VertexSubset {
public:
  VertexSubset() = default;

  /// Empty subset over universe \p N.
  explicit VertexSubset(VertexId N, AlgoContext *Ctx = nullptr)
      : N(N), Ctx(Ctx), IsDense(false) {}

  /// Singleton subset.
  VertexSubset(VertexId N, VertexId V, AlgoContext *Ctx = nullptr)
      : N(N), Ctx(Ctx), IsDense(false) {
    reserveSparse(1);
    SparseP[0] = V;
    SparseN = 1;
  }

  /// Sparse subset from an id list (may be unsorted; no duplicates).
  VertexSubset(VertexId N, const std::vector<VertexId> &Ids,
               AlgoContext *Ctx = nullptr)
      : N(N), Ctx(Ctx), IsDense(false) {
    if (!Ids.empty()) {
      reserveSparse(Ids.size());
      std::memcpy(SparseP, Ids.data(), Ids.size() * sizeof(VertexId));
      SparseN = Ids.size();
    }
  }

  /// Dense subset from flags (Flags.size() == N).
  VertexSubset(VertexId N, const std::vector<uint8_t> &Flags,
               AlgoContext *Ctx = nullptr)
      : N(N), Ctx(Ctx), IsDense(true) {
    assert(Flags.size() == N);
    reserveDense();
    std::memcpy(DenseP, Flags.data(), N);
    Count = reduceSum(size_t(N),
                      [&](size_t I) { return size_t(DenseP[I] ? 1 : 0); });
    HasCount = true;
  }

  /// Adopt a sparse id buffer previously acquired from \p Ctx (null for
  /// the per-worker scratch cache); \p CapBytes is the acquired capacity.
  static VertexSubset adoptSparse(AlgoContext *Ctx, VertexId N,
                                  VertexId *Ids, size_t Size,
                                  size_t CapBytes) {
    VertexSubset S(N, Ctx);
    S.SparseP = Ids;
    S.SparseN = Size;
    S.SparseCap = CapBytes;
    return S;
  }

  /// Adopt a dense flag buffer (length >= N) with a precomputed member
  /// count.
  static VertexSubset adoptDense(AlgoContext *Ctx, VertexId N,
                                 uint8_t *Flags, size_t CapBytes,
                                 size_t Count) {
    VertexSubset S(N, Ctx);
    S.IsDense = true;
    S.DenseP = Flags;
    S.DenseCap = CapBytes;
    S.Count = Count;
    S.HasCount = true;
    return S;
  }

  VertexSubset(const VertexSubset &O)
      : N(O.N), Ctx(O.Ctx), IsDense(O.IsDense), HasCount(O.HasCount),
        Count(O.Count) {
    if (O.SparseP && O.SparseN) {
      reserveSparse(O.SparseN);
      std::memcpy(SparseP, O.SparseP, O.SparseN * sizeof(VertexId));
      SparseN = O.SparseN;
    }
    if (O.DenseP) {
      reserveDense();
      std::memcpy(DenseP, O.DenseP, N);
    }
  }

  VertexSubset(VertexSubset &&O) noexcept { swap(O); }

  VertexSubset &operator=(VertexSubset O) noexcept {
    swap(O);
    return *this;
  }

  ~VertexSubset() { releaseBuffers(); }

  void swap(VertexSubset &O) noexcept {
    std::swap(N, O.N);
    std::swap(Ctx, O.Ctx);
    std::swap(IsDense, O.IsDense);
    std::swap(HasCount, O.HasCount);
    std::swap(Count, O.Count);
    std::swap(SparseP, O.SparseP);
    std::swap(SparseN, O.SparseN);
    std::swap(SparseCap, O.SparseCap);
    std::swap(DenseP, O.DenseP);
    std::swap(DenseCap, O.DenseCap);
  }

  VertexId universe() const { return N; }
  AlgoContext *context() const { return Ctx; }

  /// Number of member vertices.
  size_t size() const {
    if (IsDense) {
      assert(HasCount);
      return Count;
    }
    return SparseN;
  }

  bool empty() const { return size() == 0; }
  bool isDense() const { return IsDense; }

  /// Membership test (requires dense form for O(1); sparse form scans).
  bool contains(VertexId V) const {
    if (IsDense)
      return DenseP[V] != 0;
    for (size_t I = 0; I < SparseN; ++I)
      if (SparseP[I] == V)
        return true;
    return false;
  }

  const VertexId *sparseIds() const {
    assert(!IsDense && "call toSparse() first");
    return SparseP;
  }

  const uint8_t *denseFlags() const {
    assert(IsDense && "call toDense() first");
    return DenseP;
  }

  /// Convert to dense form in place.
  void toDense() {
    if (IsDense)
      return;
    reserveDense();
    uint8_t *Flags = DenseP;
    std::memset(Flags, 0, N);
    const VertexId *Ids = SparseP;
    parallelFor(0, SparseN, [&](size_t I) { Flags[Ids[I]] = 1; });
    Count = SparseN;
    HasCount = true;
    releaseSparse();
    IsDense = true;
  }

  /// Convert to sparse form in place (ids come out in increasing order).
  void toSparse() {
    if (!IsDense)
      return;
    reserveSparse(Count);
    const uint8_t *Flags = DenseP;
    SparseN = filterIndexInto(
        size_t(N), [&](size_t I) { return VertexId(I); },
        [&](size_t I) { return Flags[I] != 0; }, SparseP);
    assert(SparseN == Count && "dense count disagrees with flags");
    releaseDense();
    IsDense = false;
  }

  /// Apply Fn(v) to each member, in parallel.
  template <class F> void forEach(const F &Fn) const {
    if (IsDense) {
      const uint8_t *Flags = DenseP;
      parallelFor(0, N, [&](size_t V) {
        if (Flags[V])
          Fn(VertexId(V));
      });
      return;
    }
    const VertexId *Ids = SparseP;
    parallelFor(0, SparseN, [&](size_t I) { Fn(Ids[I]); });
  }

  /// Members as a sorted vector (for tests). A sparse subset copies its id
  /// buffer straight out (no densify round-trip); a dense subset packs the
  /// flags, which already yields increasing order.
  std::vector<VertexId> toVector() const {
    if (!IsDense) {
      std::vector<VertexId> Out(SparseP, SparseP + SparseN);
      parallelSort(Out);
      return Out;
    }
    const uint8_t *Flags = DenseP;
    return filterIndex(
        size_t(N), [&](size_t I) { return VertexId(I); },
        [&](size_t I) { return Flags[I] != 0; });
  }

private:
  void reserveSparse(size_t MinElts) {
    size_t Need = MinElts * sizeof(VertexId);
    if (SparseP && SparseCap >= Need)
      return;
    releaseSparse();
    if (Need == 0)
      return;
    SparseP = static_cast<VertexId *>(ctxAcquire(Ctx, Need, SparseCap));
  }

  void reserveDense() {
    if (DenseP)
      return;
    DenseP = static_cast<uint8_t *>(ctxAcquire(Ctx, N, DenseCap));
  }

  void releaseSparse() {
    ctxRelease(Ctx, SparseP, SparseCap);
    SparseP = nullptr;
    SparseN = 0;
    SparseCap = 0;
  }

  void releaseDense() {
    ctxRelease(Ctx, DenseP, DenseCap);
    DenseP = nullptr;
    DenseCap = 0;
  }

  void releaseBuffers() {
    releaseSparse();
    releaseDense();
  }

  VertexId N = 0;
  AlgoContext *Ctx = nullptr;
  bool IsDense = false;
  bool HasCount = false;
  size_t Count = 0;
  VertexId *SparseP = nullptr;
  size_t SparseN = 0;
  size_t SparseCap = 0; ///< bytes
  uint8_t *DenseP = nullptr;
  size_t DenseCap = 0; ///< bytes
};

} // namespace aspen

#endif // ASPEN_LIGRA_VERTEX_SUBSET_H
