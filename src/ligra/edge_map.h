//===- ligra/edge_map.h - edgeMap with direction optimization -------------===//
//
// Ligra's edgeMap (Section 2) over any graph view (Aspen snapshots, flat
// snapshots, or the static CSR baselines): applies F to edges (u, v) with
// u in the input frontier and C(v) true, returning the new frontier.
//
// Direction optimization (Section 5.1 / Beamer et al.): when the frontier
// plus its out-degrees exceed m/20 the traversal switches to the dense
// form, scanning in-neighbors of unvisited vertices with early exit.
// Symmetric graphs are assumed (the paper symmetrizes all inputs), so
// out-neighbors serve as in-neighbors.
//
// The functor F provides:
//   bool update(u, v)        - non-atomic (dense traversal; one writer per v)
//   bool updateAtomic(u, v)  - atomic (sparse traversal; concurrent writers)
//   bool cond(v)             - whether v can still be updated
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_LIGRA_EDGE_MAP_H
#define ASPEN_LIGRA_EDGE_MAP_H

#include "ligra/vertex_subset.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <vector>

namespace aspen {

struct EdgeMapOptions {
  /// Disable the dense traversal (used for the Stinger/LLAMA comparisons,
  /// whose implementations do not direction-optimize).
  bool NoDense = false;
  /// Dense threshold denominator: go dense when |U| + sum deg > m / Den.
  uint64_t ThresholdDenominator = 20;
};

namespace detail {

template <class GView, class F>
VertexSubset edgeMapSparse(const GView &G, const std::vector<VertexId> &U,
                           const std::vector<uint64_t> &Offsets,
                           uint64_t Total, F &Fn) {
  std::vector<VertexId> Out(Total, NoVertex);
  parallelFor(0, U.size(), [&](size_t I) {
    VertexId Src = U[I];
    uint64_t Base = Offsets[I];
    G.mapNeighborsIndexed(Src, [&](size_t J, VertexId Dst) {
      if (Fn.cond(Dst) && Fn.updateAtomic(Src, Dst))
        Out[Base + J] = Dst;
    });
  }, 8);
  auto Next = filterIndex(
      Out.size(), [&](size_t I) { return Out[I]; },
      [&](size_t I) { return Out[I] != NoVertex; });
  return VertexSubset(G.numVertices(), std::move(Next));
}

template <class GView, class F>
VertexSubset edgeMapDense(const GView &G, const std::vector<uint8_t> &UFlags,
                          F &Fn) {
  VertexId N = G.numVertices();
  std::vector<uint8_t> NextFlags(N, 0);
  size_t Grain = std::max<size_t>(
      128, size_t(N) / (32 * size_t(numWorkers())));
  parallelFor(0, N, [&](size_t VI) {
    VertexId V = VertexId(VI);
    if (!Fn.cond(V))
      return;
    // Scan in-neighbors (== out-neighbors on symmetric graphs) until the
    // vertex no longer satisfies cond.
    G.iterNeighborsCond(V, [&](VertexId U) {
      if (UFlags[U] && Fn.update(U, V))
        NextFlags[V] = 1;
      return Fn.cond(V);
    });
  }, Grain);
  return VertexSubset(N, std::move(NextFlags));
}

} // namespace detail

/// Map F over edges out of \p U; returns the target frontier. \p U may be
/// converted between sparse and dense forms in place. The traversal mode
/// is re-selected every round from |U| plus its out-degree sum (so shrunken
/// dense frontiers fall back to the sparse traversal, as in Ligra).
template <class GView, class F>
VertexSubset edgeMap(const GView &G, VertexSubset &U, F Fn,
                     EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  if (U.empty())
    return VertexSubset(N);

  // Out-degree sum of the frontier.
  uint64_t DegreeSum;
  if (U.isDense()) {
    const auto &Flags = U.denseFlags();
    DegreeSum = reduceSum(size_t(N), [&](size_t V) {
      return Flags[V] ? G.degree(VertexId(V)) : uint64_t(0);
    });
  } else {
    const auto &Ids = U.sparseIds();
    DegreeSum = reduceSum(Ids.size(), [&](size_t I) {
      return G.degree(Ids[I]);
    });
  }

  uint64_t Threshold = G.numEdges() / Options.ThresholdDenominator;
  bool GoDense =
      !Options.NoDense && U.size() + DegreeSum > Threshold;

  if (GoDense) {
    U.toDense();
    return detail::edgeMapDense(G, U.denseFlags(), Fn);
  }
  U.toSparse();
  const auto &Ids = U.sparseIds();
  std::vector<uint64_t> Offsets(Ids.size());
  parallelFor(0, Ids.size(),
              [&](size_t I) { Offsets[I] = G.degree(Ids[I]); });
  uint64_t Total = scanExclusive(Offsets);
  return detail::edgeMapSparse(G, Ids, Offsets, Total, Fn);
}

/// Map Fn(u, v) over all edges out of frontier \p U (no output frontier).
template <class GView, class F>
void edgeMapNoOutput(const GView &G, const VertexSubset &U, const F &Fn) {
  U.forEach([&](VertexId Src) {
    G.mapNeighbors(Src, [&](VertexId Dst) { Fn(Src, Dst); });
  });
}

/// vertexMap: new subset of members of \p U satisfying Fn(v).
template <class F>
VertexSubset vertexFilter(const VertexSubset &U, const F &Fn) {
  VertexSubset Copy = U;
  Copy.toSparse();
  const auto &Ids = Copy.sparseIds();
  auto Kept = filterIndex(
      Ids.size(), [&](size_t I) { return Ids[I]; },
      [&](size_t I) { return Fn(Ids[I]); });
  return VertexSubset(U.universe(), std::move(Kept));
}

} // namespace aspen

#endif // ASPEN_LIGRA_EDGE_MAP_H
