//===- ligra/edge_map.h - edgeMap with direction optimization -------------===//
//
// Ligra's edgeMap (Section 2) over any graph view (Aspen snapshots, flat
// snapshots, or the static CSR baselines): applies F to edges (u, v) with
// u in the input frontier and C(v) true, returning the new frontier.
//
// Direction optimization (Section 5.1 / Beamer et al.): when the frontier
// plus its out-degrees exceed m/20 the traversal switches to the dense
// form, scanning in-neighbors of unvisited vertices with early exit.
// Symmetric graphs are assumed (the paper symmetrizes all inputs), so
// out-neighbors serve as in-neighbors.
//
// Neighbor scans in both directions run on the block-decoded iteration
// surface (iterNeighborsCond / mapNeighborsIndexed -> codec bulk
// iterate): compressed chunks decode up to 32 neighbors per refill
// through the SSSE3/SWAR tiers of encoding/varint_block.h, so the
// per-edge decode constant the traversal pays is a buffered array read.
// The dense form's early exit still only over-decodes within one block.
//
// All round-local arrays (the sparse Out targets, per-source offsets, the
// dense next-flags, and sparse<->dense conversion buffers) are drawn from
// the input frontier's AlgoContext workspace, so steady-state rounds
// perform no heap allocation.
//
// The functor F provides:
//   bool update(u, v)        - non-atomic (dense traversal; one writer per v)
//   bool updateAtomic(u, v)  - atomic (sparse traversal; concurrent writers)
//   bool cond(v)             - whether v can still be updated
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_LIGRA_EDGE_MAP_H
#define ASPEN_LIGRA_EDGE_MAP_H

#include "ligra/vertex_subset.h"
#include "memory/algo_context.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <cstring>
#include <type_traits>

namespace aspen {

//===----------------------------------------------------------------------===
// The graph-view concept. Everything the Ligra layer (and through it every
// algorithm) needs from a graph is the six members below; any type that
// provides them — TreeGraphView, FlatGraphView, the sharded store's
// composed ShardedGraphStoreT::View, the hot-flat ShardedFlatView over an
// acquireFlat() epoch, or the static baselines — runs unmodified through
// edgeMap. The trait makes a non-conforming view fail with one readable
// static_assert instead of a template-instantiation cascade.
//===----------------------------------------------------------------------===

namespace detail {

/// Probe functors with the exact shapes edgeMap passes to a view.
struct ViewProbeEdgeFn {
  void operator()(VertexId) const {}
};
struct ViewProbeIndexedFn {
  void operator()(size_t, VertexId) const {}
};
struct ViewProbeCondFn {
  bool operator()(VertexId) const { return true; }
};

template <class V, class = void> struct IsGraphView : std::false_type {};
template <class V>
struct IsGraphView<
    V, std::void_t<
           decltype(VertexId(std::declval<const V &>().numVertices())),
           decltype(uint64_t(std::declval<const V &>().numEdges())),
           decltype(uint64_t(std::declval<const V &>().degree(VertexId()))),
           decltype(std::declval<const V &>().mapNeighbors(
               VertexId(), std::declval<const ViewProbeEdgeFn &>())),
           decltype(std::declval<const V &>().mapNeighborsIndexed(
               VertexId(), std::declval<const ViewProbeIndexedFn &>())),
           decltype(bool(std::declval<const V &>().iterNeighborsCond(
               VertexId(), std::declval<const ViewProbeCondFn &>())))>>
    : std::true_type {};

template <class V, class = void>
struct HasNeighborCursor : std::false_type {};
template <class V>
struct HasNeighborCursor<
    V, std::void_t<
           typename V::NeighborCursor,
           decltype(std::declval<const V &>().neighborCursor(VertexId()))>>
    : std::true_type {};

template <class V, class = void>
struct HasContainsEdge : std::false_type {};
template <class V>
struct HasContainsEdge<
    V, std::void_t<decltype(bool(std::declval<const V &>().containsEdge(
                       VertexId(), VertexId()))),
                   decltype(bool(std::declval<const V &>().hasFastProbe(
                       VertexId())))>> : std::true_type {};

} // namespace detail

/// True when \p V satisfies the graph-view concept consumed by edgeMap
/// and the algorithms.
template <class V>
inline constexpr bool IsGraphViewV = detail::IsGraphView<V>::value;

/// True when \p V also exposes the streaming neighborCursor surface.
/// edgeMap itself never requires it, but every Aspen view (tree, flat,
/// sharded, sharded-flat) provides it uniformly so cursor-driven code is
/// view-agnostic; the flat differential tests assert this trait for all
/// four.
template <class V>
inline constexpr bool HasNeighborCursorV =
    detail::HasNeighborCursor<V>::value;

/// True when \p V exposes the edge-existence probe surface:
/// containsEdge(u, x) (membership of x in N(u)) and hasFastProbe(u)
/// (true when those probes are O(1), e.g. a hot hybrid vertex's hash
/// sidecar). Algorithms that intersect adjacency lists (triangleCount,
/// twoHop) switch from scanning N(v) to probing it when the probe is
/// fast and the candidate set is small.
template <class V>
inline constexpr bool HasContainsEdgeV = detail::HasContainsEdge<V>::value;

struct EdgeMapOptions {
  /// Disable the dense traversal (used for the Stinger/LLAMA comparisons,
  /// whose implementations do not direction-optimize).
  bool NoDense = false;
  /// Dense threshold denominator: go dense when |U| + sum deg > m / Den.
  uint64_t ThresholdDenominator = 20;
};

namespace detail {

template <class GView, class F>
VertexSubset edgeMapSparse(const GView &G, AlgoContext *Ctx,
                           const VertexId *U, size_t USize,
                           const uint64_t *Offsets, uint64_t Total, F &Fn) {
  CtxArray<VertexId> Out(Ctx, Total);
  VertexId *OutP = Out.data();
  parallelFor(0, Total, [&](size_t I) { OutP[I] = NoVertex; });
  parallelFor(0, USize, [&](size_t I) {
    VertexId Src = U[I];
    uint64_t Base = Offsets[I];
    G.mapNeighborsIndexed(Src, [&](size_t J, VertexId Dst) {
      if (Fn.cond(Dst) && Fn.updateAtomic(Src, Dst))
        OutP[Base + J] = Dst;
    });
  }, 8);
  size_t NextCap;
  auto *Next =
      static_cast<VertexId *>(ctxAcquire(Ctx, Total * sizeof(VertexId),
                                         NextCap));
  size_t NextSize = filterIndexInto(
      Total, [&](size_t I) { return OutP[I]; },
      [&](size_t I) { return OutP[I] != NoVertex; }, Next);
  return VertexSubset::adoptSparse(Ctx, G.numVertices(), Next, NextSize,
                                   NextCap);
}

template <class GView, class F>
VertexSubset edgeMapDense(const GView &G, AlgoContext *Ctx,
                          const uint8_t *UFlags, F &Fn) {
  VertexId N = G.numVertices();
  size_t NextCap;
  auto *NextFlags = static_cast<uint8_t *>(ctxAcquire(Ctx, N, NextCap));
  std::memset(NextFlags, 0, N);
  size_t Grain = std::max<size_t>(
      128, size_t(N) / (32 * size_t(numWorkers())));
  parallelFor(0, N, [&](size_t VI) {
    VertexId V = VertexId(VI);
    if (!Fn.cond(V))
      return;
    // Scan in-neighbors (== out-neighbors on symmetric graphs) until the
    // vertex no longer satisfies cond.
    G.iterNeighborsCond(V, [&](VertexId U) {
      if (UFlags[U] && Fn.update(U, V))
        NextFlags[V] = 1;
      return Fn.cond(V);
    });
  }, Grain);
  size_t Count = reduceSum(
      size_t(N), [&](size_t I) { return size_t(NextFlags[I] ? 1 : 0); });
  return VertexSubset::adoptDense(Ctx, N, NextFlags, NextCap, Count);
}

} // namespace detail

/// Map F over edges out of \p U; returns the target frontier, which shares
/// \p U's AlgoContext. \p U may be converted between sparse and dense
/// forms in place. The traversal mode is re-selected every round from |U|
/// plus its out-degree sum (so shrunken dense frontiers fall back to the
/// sparse traversal, as in Ligra).
template <class GView, class F>
VertexSubset edgeMap(const GView &G, VertexSubset &U, F Fn,
                     EdgeMapOptions Options = {}) {
  static_assert(IsGraphViewV<GView>,
                "edgeMap requires the graph-view concept: numVertices / "
                "numEdges / degree / mapNeighbors / mapNeighborsIndexed / "
                "iterNeighborsCond");
  VertexId N = G.numVertices();
  AlgoContext *Ctx = U.context();
  if (U.empty())
    return VertexSubset(N, Ctx);

  // Out-degree sum of the frontier.
  uint64_t DegreeSum;
  if (U.isDense()) {
    const uint8_t *Flags = U.denseFlags();
    DegreeSum = reduceSum(size_t(N), [&](size_t V) {
      return Flags[V] ? G.degree(VertexId(V)) : uint64_t(0);
    });
  } else {
    const VertexId *Ids = U.sparseIds();
    DegreeSum = reduceSum(U.size(), [&](size_t I) {
      return G.degree(Ids[I]);
    });
  }

  uint64_t Threshold = G.numEdges() / Options.ThresholdDenominator;
  bool GoDense =
      !Options.NoDense && U.size() + DegreeSum > Threshold;

  if (GoDense) {
    U.toDense();
    return detail::edgeMapDense(G, Ctx, U.denseFlags(), Fn);
  }
  U.toSparse();
  const VertexId *Ids = U.sparseIds();
  size_t USize = U.size();
  CtxArray<uint64_t> Offsets(Ctx, USize);
  uint64_t *OffsetsP = Offsets.data();
  parallelFor(0, USize,
              [&](size_t I) { OffsetsP[I] = G.degree(Ids[I]); });
  uint64_t Total = scanExclusive(OffsetsP, USize);
  return detail::edgeMapSparse(G, Ctx, Ids, USize, OffsetsP, Total, Fn);
}

/// Map Fn(u, v) over all edges out of frontier \p U (no output frontier).
template <class GView, class F>
void edgeMapNoOutput(const GView &G, const VertexSubset &U, const F &Fn) {
  static_assert(IsGraphViewV<GView>,
                "edgeMapNoOutput requires the graph-view concept");
  U.forEach([&](VertexId Src) {
    G.mapNeighbors(Src, [&](VertexId Dst) { Fn(Src, Dst); });
  });
}

/// vertexMap: new subset of members of \p U satisfying Fn(v); shares
/// \p U's AlgoContext. Sparse inputs filter their id buffer directly
/// (no copy or densify round-trip).
template <class F>
VertexSubset vertexFilter(const VertexSubset &U, const F &Fn) {
  AlgoContext *Ctx = U.context();
  size_t KeptCap;
  auto *Kept = static_cast<VertexId *>(
      ctxAcquire(Ctx, U.size() * sizeof(VertexId), KeptCap));
  size_t KeptSize;
  if (U.isDense()) {
    const uint8_t *Flags = U.denseFlags();
    KeptSize = filterIndexInto(
        size_t(U.universe()), [&](size_t I) { return VertexId(I); },
        [&](size_t I) { return Flags[I] != 0 && Fn(VertexId(I)); }, Kept);
  } else {
    const VertexId *Ids = U.sparseIds();
    KeptSize = filterIndexInto(
        U.size(), [&](size_t I) { return Ids[I]; },
        [&](size_t I) { return Fn(Ids[I]); }, Kept);
  }
  return VertexSubset::adoptSparse(Ctx, U.universe(), Kept, KeptSize,
                                   KeptCap);
}

} // namespace aspen

#endif // ASPEN_LIGRA_EDGE_MAP_H
