//===- pam/tree.h - Purely-functional weight-balanced trees ---------------===//
//
// Join-based, reference-counted, purely-functional weight-balanced search
// trees in the style of PAM [Sun, Ferizovic, Blelloch PPoPP'18] and "Just
// Join for Parallel Ordered Sets" [Blelloch, Ferizovic, Sun SPAA'16],
// which the paper uses as its underlying tree library (Section 6).
//
// Persistence model: every node carries an atomic reference count.
// Snapshots are O(1): retain the root. Mutating operations use
// path-copying, with the standard optimization that uniquely-referenced
// nodes (refcount 1) are reused in place.
//
// Ownership protocol (important!):
//  * Functions taking `Node *` consume one reference per input root and
//    return roots owned by the caller.
//  * Read-only functions take `const Node *` and leave counts unchanged.
//
// The Entry template parameter describes the key/value/augmentation:
//
//   struct Entry {
//     using KeyT = ...;   // totally ordered by less()
//     using ValT = ...;   // cheap to copy (refcount bump at most)
//     using AugT = ...;   // associative augmentation (use Empty for none)
//     static bool less(const KeyT &A, const KeyT &B);
//     static AugT augOfEntry(const KeyT &K, const ValT &V);
//     static AugT augIdentity();
//     static AugT augCombine(const AugT &A, const AugT &B);
//   };
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_PAM_TREE_H
#define ASPEN_PAM_TREE_H

#include "memory/pool_allocator.h"
#include "parallel/scheduler.h"
#include "util/types.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace aspen {

/// Tree node; allocated from a typed pool.
template <class Entry> struct PamNode {
  using KeyT = typename Entry::KeyT;
  using ValT = typename Entry::ValT;
  using AugT = typename Entry::AugT;

  PamNode *Left;
  PamNode *Right;
  std::atomic<uint32_t> Ref;
  uint32_t Size;
  [[no_unique_address]] AugT Aug;
  KeyT Key;
  [[no_unique_address]] ValT Val;
};

/// Static operations over PamNode<Entry>. See the ownership protocol in the
/// file header.
template <class Entry> struct Tree {
  using Node = PamNode<Entry>;
  using KeyT = typename Entry::KeyT;
  using ValT = typename Entry::ValT;
  using AugT = typename Entry::AugT;

  /// Below this subtree size, recursive operations run sequentially.
  static constexpr uint32_t SeqCutoff = 128;

  /// Augmentation-weighted work threshold for forking. SeqCutoff counts
  /// nodes, which under-forks trees whose per-node payloads are heavy: a
  /// vertex tree of 16 nodes carrying a million edges never reaches 128
  /// nodes, yet its merge does a million elements of chunk work. workOf()
  /// folds an integral augmentation (edge counts in the vertex tree, tail
  /// counts in the C-tree heads tree) into the fork decision so such
  /// subtrees still split across cores. The threshold is coarser than
  /// SeqCutoff because per-element chunk work is much cheaper than
  /// per-node tree work.
  static constexpr uint64_t WorkCutoff = 4096;

  /// Fork-decision work estimate: node count, plus the aggregated payload
  /// size when the augmentation measures one (integral AugT).
  static uint64_t workOf(const Node *T) {
    if constexpr (std::is_integral_v<AugT>)
      return T ? uint64_t(T->Size) + uint64_t(T->Aug) : 0;
    else
      return T ? uint64_t(T->Size) : 0;
  }

  //===--------------------------------------------------------------------===
  // Node lifecycle.
  //===--------------------------------------------------------------------===

  static uint32_t size(const Node *T) { return T ? T->Size : 0; }

  /// Weight for the balance criterion (size + 1).
  static uint64_t weight(const Node *T) { return uint64_t(size(T)) + 1; }

  static AugT aug(const Node *T) {
    return T ? T->Aug : Entry::augIdentity();
  }

  /// Recompute Size/Aug of \p T from its children and entry.
  static void update(Node *T) {
    T->Size = 1 + size(T->Left) + size(T->Right);
    AugT A = Entry::augCombine(aug(T->Left),
                               Entry::augOfEntry(T->Key, T->Val));
    T->Aug = Entry::augCombine(A, aug(T->Right));
  }

  /// Allocate a node owning \p L and \p R.
  static Node *make(const KeyT &K, ValT V, Node *L, Node *R) {
    void *Mem = NodePool<Node>::allocRaw();
    Node *T = new (Mem) Node{L, R, {}, 0, Entry::augIdentity(), K,
                             std::move(V)};
    T->Ref.store(1, std::memory_order_relaxed);
    update(T);
    return T;
  }

  static Node *singleton(const KeyT &K, ValT V) {
    return make(K, std::move(V), nullptr, nullptr);
  }

  static void retain(Node *T) {
    if (T)
      T->Ref.fetch_add(1, std::memory_order_relaxed);
  }

  /// Destroy the node shell only (children ownership must have been taken).
  static void freeShell(Node *T) {
    T->~Node();
    NodePool<Node>::freeRaw(T);
  }

  /// Drop one reference on \p T, freeing recursively (in parallel for large
  /// subtrees) when the count reaches zero.
  static void release(Node *T) {
    if (!T)
      return;
    if (T->Ref.fetch_sub(1, std::memory_order_acq_rel) != 1)
      return;
    Node *L = T->Left, *R = T->Right;
    uint32_t Sz = T->Size;
    freeShell(T);
    if (Sz >= SeqCutoff) {
      parallelDo([&] { release(L); }, [&] { release(R); });
    } else {
      release(L);
      release(R);
    }
  }

  /// Claim ownership of T's children and a writable shell for T itself.
  /// Consumes \p T. The returned Shell has refcount 1 and dangling child
  /// pointers; it must be re-linked via a subsequent make-like operation
  /// (update() is the caller's responsibility, usually via join).
  struct Exposed {
    Node *Left;
    Node *Right;
    Node *Shell;
  };

  static Exposed expose(Node *T) {
    assert(T && "expose of empty tree");
    if (T->Ref.load(std::memory_order_acquire) == 1) {
      // Sole owner: reuse the shell directly.
      return Exposed{T->Left, T->Right, T};
    }
    // Shared: claim fresh references on the children, copy the shell, and
    // drop our reference on T. If we race with the other owners releasing,
    // release() will drop the child references T held, which our claimed
    // references keep alive.
    retain(T->Left);
    retain(T->Right);
    Node *Shell = make(T->Key, T->Val, nullptr, nullptr);
    Exposed E{T->Left, T->Right, Shell};
    release(T);
    return E;
  }

  /// Link \p Shell over \p L and \p R without rebalancing (caller asserts
  /// the result is balanced).
  static Node *linkShell(Node *L, Node *Shell, Node *R) {
    Shell->Left = L;
    Shell->Right = R;
    update(Shell);
    return Shell;
  }

  //===--------------------------------------------------------------------===
  // Weight-balanced join (Just Join, Figure for WB trees).
  //===--------------------------------------------------------------------===

  /// Balance predicate: may weights \p A and \p B be siblings?
  /// alpha = 0.29 expressed as an exact rational test.
  static bool likeWeights(uint64_t A, uint64_t B) {
    uint64_t S = A + B;
    uint64_t M = A < B ? A : B;
    return 100 * M >= 29 * S;
  }

  static bool heavier(const Node *A, const Node *B) {
    return weight(A) > weight(B);
  }

  /// Left rotation of the tree rooted at shell \p T (fields already linked,
  /// T->Right non-null and writable ownership held).
  static Node *rotateLeft(Node *T) {
    Exposed R = expose(T->Right);
    T->Right = R.Left;
    update(T);
    return linkShell(T, R.Shell, R.Right);
  }

  static Node *rotateRight(Node *T) {
    Exposed L = expose(T->Left);
    T->Left = L.Right;
    update(T);
    return linkShell(L.Left, L.Shell, T);
  }

  static Node *joinRightHeavy(Node *L, Node *Shell, Node *R) {
    if (likeWeights(weight(L), weight(R)))
      return linkShell(L, Shell, R);
    Exposed E = expose(L);
    Node *Joined = joinRightHeavy(E.Right, Shell, R);
    // Tentatively link and rebalance.
    Node *T = linkShell(E.Left, E.Shell, Joined);
    if (likeWeights(weight(T->Left), weight(T->Right)))
      return T;
    // Right child too heavy: single or double left rotation depending on
    // the inner grandchild's weight (Just Join WB case analysis).
    Node *RC = T->Right;
    uint64_t WL = weight(T->Left);
    uint64_t WRL = weight(RC->Left), WRR = weight(RC->Right);
    if (likeWeights(WL, WRL) && likeWeights(WL + WRL, WRR))
      return rotateLeft(T);
    T->Right = rotateRight(T->Right);
    update(T);
    return rotateLeft(T);
  }

  static Node *joinLeftHeavy(Node *L, Node *Shell, Node *R) {
    if (likeWeights(weight(L), weight(R)))
      return linkShell(L, Shell, R);
    Exposed E = expose(R);
    Node *Joined = joinLeftHeavy(L, Shell, E.Left);
    Node *T = linkShell(Joined, E.Shell, E.Right);
    if (likeWeights(weight(T->Left), weight(T->Right)))
      return T;
    Node *LC = T->Left;
    uint64_t WR = weight(T->Right);
    uint64_t WLR = weight(LC->Right), WLL = weight(LC->Left);
    if (likeWeights(WR, WLR) && likeWeights(WR + WLR, WLL))
      return rotateRight(T);
    T->Left = rotateLeft(T->Left);
    update(T);
    return rotateRight(T);
  }

  /// Join trees \p L and \p R (all keys in L < Shell->Key < all keys in R)
  /// around the single-entry shell \p Shell. Consumes all three.
  static Node *join(Node *L, Node *Shell, Node *R) {
    if (heavier(L, R))
      return joinRightHeavy(L, Shell, R);
    if (heavier(R, L))
      return joinLeftHeavy(L, Shell, R);
    return linkShell(L, Shell, R);
  }

  /// Remove and return the rightmost entry of \p T as a shell.
  static std::pair<Node *, Node *> splitLast(Node *T) {
    Exposed E = expose(T);
    if (!E.Right)
      return {E.Left, E.Shell};
    auto [Rest, Last] = splitLast(E.Right);
    return {join(E.Left, E.Shell, Rest), Last};
  }

  /// Join without a middle entry.
  static Node *join2(Node *L, Node *R) {
    if (!L)
      return R;
    if (!R)
      return L;
    auto [Rest, Last] = splitLast(L);
    return join(Rest, Last, R);
  }

  //===--------------------------------------------------------------------===
  // Split / insert / remove / find.
  //===--------------------------------------------------------------------===

  struct SplitResult {
    Node *Left = nullptr;
    Node *Right = nullptr;
    bool Found = false;
    ValT Val{};
  };

  /// Split \p T by \p K into keys < K and keys > K; reports whether K was
  /// present (and its value). Consumes \p T.
  static SplitResult split(Node *T, const KeyT &K) {
    if (!T)
      return SplitResult{};
    Exposed E = expose(T);
    if (Entry::less(K, E.Shell->Key)) {
      SplitResult S = split(E.Left, K);
      S.Right = join(S.Right, E.Shell, E.Right);
      return S;
    }
    if (Entry::less(E.Shell->Key, K)) {
      SplitResult S = split(E.Right, K);
      S.Left = join(E.Left, E.Shell, S.Left);
      return S;
    }
    SplitResult S;
    S.Left = E.Left;
    S.Right = E.Right;
    S.Found = true;
    S.Val = std::move(E.Shell->Val);
    freeShell(E.Shell);
    return S;
  }

  /// Insert (K, V); \p Comb combines (old, new) when K is present.
  template <class Comb>
  static Node *insert(Node *T, const KeyT &K, ValT V, const Comb &Fn) {
    SplitResult S = split(T, K);
    ValT NewV = S.Found ? Fn(std::move(S.Val), std::move(V)) : std::move(V);
    return join(S.Left, singleton(K, std::move(NewV)), S.Right);
  }

  static Node *insert(Node *T, const KeyT &K, ValT V) {
    return insert(T, K, std::move(V),
                  [](ValT, ValT New) { return New; });
  }

  /// Remove K if present.
  static Node *remove(Node *T, const KeyT &K) {
    SplitResult S = split(T, K);
    return join2(S.Left, S.Right);
  }

  /// Find the node with key \p K (read-only; no ownership change).
  static const Node *findNode(const Node *T, const KeyT &K) {
    while (T) {
      if (Entry::less(K, T->Key))
        T = T->Left;
      else if (Entry::less(T->Key, K))
        T = T->Right;
      else
        return T;
    }
    return nullptr;
  }

  /// Largest entry with key <= K (the paper's Find semantics), or null.
  static const Node *findLE(const Node *T, const KeyT &K) {
    const Node *Cand = nullptr;
    while (T) {
      if (Entry::less(K, T->Key)) {
        T = T->Left;
      } else {
        Cand = T;
        T = T->Right;
      }
    }
    return Cand;
  }

  /// Smallest entry with key >= K, or null.
  static const Node *findGE(const Node *T, const KeyT &K) {
    const Node *Cand = nullptr;
    while (T) {
      if (Entry::less(T->Key, K)) {
        T = T->Right;
      } else {
        Cand = T;
        T = T->Left;
      }
    }
    return Cand;
  }

  static const Node *first(const Node *T) {
    if (!T)
      return nullptr;
    while (T->Left)
      T = T->Left;
    return T;
  }

  static const Node *last(const Node *T) {
    if (!T)
      return nullptr;
    while (T->Right)
      T = T->Right;
    return T;
  }

  /// Entry of in-order rank \p I (0-based); requires I < size(T).
  static const Node *select(const Node *T, uint32_t I) {
    while (true) {
      assert(T && I < T->Size && "select out of range");
      uint32_t LS = size(T->Left);
      if (I < LS) {
        T = T->Left;
      } else if (I == LS) {
        return T;
      } else {
        I -= LS + 1;
        T = T->Right;
      }
    }
  }

  /// Aggregate of the augmentation over all entries with Lo <= key <= Hi,
  /// in O(log n) work (the range-sum query of Section 2).
  static AugT augRange(const Node *T, const KeyT &Lo, const KeyT &Hi) {
    if (!T)
      return Entry::augIdentity();
    if (Entry::less(T->Key, Lo))
      return augRange(T->Right, Lo, Hi);
    if (Entry::less(Hi, T->Key))
      return augRange(T->Left, Lo, Hi);
    AugT A = Entry::augCombine(augFrom(T->Left, Lo),
                               Entry::augOfEntry(T->Key, T->Val));
    return Entry::augCombine(A, augTo(T->Right, Hi));
  }

  /// Aggregate over entries with key >= Lo.
  static AugT augFrom(const Node *T, const KeyT &Lo) {
    if (!T)
      return Entry::augIdentity();
    if (Entry::less(T->Key, Lo))
      return augFrom(T->Right, Lo);
    AugT A = Entry::augCombine(augFrom(T->Left, Lo),
                               Entry::augOfEntry(T->Key, T->Val));
    return Entry::augCombine(A, aug(T->Right));
  }

  /// Aggregate over entries with key <= Hi.
  static AugT augTo(const Node *T, const KeyT &Hi) {
    if (!T)
      return Entry::augIdentity();
    if (Entry::less(Hi, T->Key))
      return augTo(T->Left, Hi);
    AugT A = Entry::augCombine(aug(T->Left),
                               Entry::augOfEntry(T->Key, T->Val));
    return Entry::augCombine(A, augTo(T->Right, Hi));
  }

  /// Number of keys strictly less than \p K.
  static uint32_t rank(const Node *T, const KeyT &K) {
    uint32_t R = 0;
    while (T) {
      if (Entry::less(T->Key, K)) {
        R += size(T->Left) + 1;
        T = T->Right;
      } else {
        T = T->Left;
      }
    }
    return R;
  }

  //===--------------------------------------------------------------------===
  // Bulk operations.
  //===--------------------------------------------------------------------===

  /// Perfectly-balanced build from sorted, duplicate-free entries.
  /// O(n) work, O(log n) depth.
  static Node *buildSorted(const std::pair<KeyT, ValT> *Entries, size_t N) {
    if (N == 0)
      return nullptr;
    size_t Mid = N / 2;
    Node *L = nullptr, *R = nullptr;
    auto BuildL = [&] { L = buildSorted(Entries, Mid); };
    auto BuildR = [&] { R = buildSorted(Entries + Mid + 1, N - Mid - 1); };
    if (N >= SeqCutoff)
      parallelDo(BuildL, BuildR);
    else {
      BuildL();
      BuildR();
    }
    return linkShell(L, singleton(Entries[Mid].first, Entries[Mid].second),
                     R);
  }

  /// Union of \p A and \p B; on duplicate keys the value is
  /// `Fn(valueInA, valueInB)`. Consumes both.
  template <class Comb>
  static Node *unionWith(Node *A, Node *B, const Comb &Fn) {
    if (!A)
      return B;
    if (!B)
      return A;
    Exposed E = expose(B);
    SplitResult S = split(A, E.Shell->Key);
    if (S.Found)
      E.Shell->Val = Fn(std::move(S.Val), std::move(E.Shell->Val));
    Node *L = nullptr, *R = nullptr;
    bool Par = (size(S.Left) + size(E.Left) >= SeqCutoff ||
                workOf(S.Left) + workOf(E.Left) >= WorkCutoff) &&
               size(S.Right) + size(E.Right) >= 1;
    auto DoL = [&] { L = unionWith(S.Left, E.Left, Fn); };
    auto DoR = [&] { R = unionWith(S.Right, E.Right, Fn); };
    if (Par)
      parallelDo(DoL, DoR);
    else {
      DoL();
      DoR();
    }
    return join(L, E.Shell, R);
  }

  /// Intersection by key; values taken via `Fn(valueInA, valueInB)`.
  template <class Comb>
  static Node *intersectWith(Node *A, Node *B, const Comb &Fn) {
    if (!A) {
      release(B);
      return nullptr;
    }
    if (!B) {
      release(A);
      return nullptr;
    }
    Exposed E = expose(B);
    SplitResult S = split(A, E.Shell->Key);
    Node *L = nullptr, *R = nullptr;
    bool Par = size(S.Left) + size(E.Left) >= SeqCutoff ||
               workOf(S.Left) + workOf(E.Left) >= WorkCutoff;
    auto DoL = [&] { L = intersectWith(S.Left, E.Left, Fn); };
    auto DoR = [&] { R = intersectWith(S.Right, E.Right, Fn); };
    if (Par)
      parallelDo(DoL, DoR);
    else {
      DoL();
      DoR();
    }
    if (S.Found) {
      E.Shell->Val = Fn(std::move(S.Val), std::move(E.Shell->Val));
      return join(L, E.Shell, R);
    }
    freeShell(E.Shell);
    return join2(L, R);
  }

  /// Keys of \p A not present in \p B (A \ B). Consumes both.
  static Node *difference(Node *A, Node *B) {
    if (!A) {
      release(B);
      return nullptr;
    }
    if (!B)
      return A;
    Exposed E = expose(B);
    SplitResult S = split(A, E.Shell->Key);
    freeShell(E.Shell);
    Node *L = nullptr, *R = nullptr;
    bool Par = size(S.Left) + size(E.Left) >= SeqCutoff ||
               workOf(S.Left) + workOf(E.Left) >= WorkCutoff;
    auto DoL = [&] { L = difference(S.Left, E.Left); };
    auto DoR = [&] { R = difference(S.Right, E.Right); };
    if (Par)
      parallelDo(DoL, DoR);
    else {
      DoL();
      DoR();
    }
    return join2(L, R);
  }

  /// For each entry of \p B whose key exists in \p A, replace A's value by
  /// `Fn(valueInA, valueInB)`. Keys of B absent from A are ignored. This is
  /// the update-combine primitive used by batch edge deletions, where
  /// deletion sets for unknown vertices must not create vertices. Consumes
  /// both.
  template <class Comb>
  static Node *updateExisting(Node *A, Node *B, const Comb &Fn) {
    if (!A) {
      release(B);
      return nullptr;
    }
    if (!B)
      return A;
    Exposed E = expose(A);
    SplitResult S = split(B, E.Shell->Key);
    if (S.Found)
      E.Shell->Val = Fn(std::move(E.Shell->Val), std::move(S.Val));
    Node *L = nullptr, *R = nullptr;
    bool Par = size(E.Left) + size(S.Left) >= SeqCutoff ||
               workOf(E.Left) + workOf(S.Left) >= WorkCutoff;
    auto DoL = [&] { L = updateExisting(E.Left, S.Left, Fn); };
    auto DoR = [&] { R = updateExisting(E.Right, S.Right, Fn); };
    if (Par)
      parallelDo(DoL, DoR);
    else {
      DoL();
      DoR();
    }
    return join(L, E.Shell, R);
  }

  /// MultiInsert: union with a tree built over the sorted, duplicate-free
  /// batch (the paper builds a tree over the batch and calls Union).
  template <class Comb>
  static Node *multiInsert(Node *T, const std::pair<KeyT, ValT> *Entries,
                           size_t N, const Comb &Fn) {
    Node *B = buildSorted(Entries, N);
    return unionWith(T, B, Fn);
  }

  /// Keep only entries satisfying \p Pred(key, value). Consumes \p T.
  template <class Pred> static Node *filter(Node *T, const Pred &Fn) {
    if (!T)
      return nullptr;
    Exposed E = expose(T);
    Node *L = nullptr, *R = nullptr;
    bool Par = size(E.Left) >= SeqCutoff || workOf(E.Left) >= WorkCutoff;
    auto DoL = [&] { L = filter(E.Left, Fn); };
    auto DoR = [&] { R = filter(E.Right, Fn); };
    if (Par)
      parallelDo(DoL, DoR);
    else {
      DoL();
      DoR();
    }
    if (Fn(E.Shell->Key, E.Shell->Val))
      return join(L, E.Shell, R);
    freeShell(E.Shell);
    return join2(L, R);
  }

  //===--------------------------------------------------------------------===
  // Traversal.
  //===--------------------------------------------------------------------===

  /// Explicit-stack in-order cursor (done / node / advance): the streaming
  /// counterpart of forEachSeq, composable with chunk cursors so callers
  /// can merge tree contents against other streams without materializing
  /// either side. Trivially copyable; holds no references (the borrowed
  /// tree must stay alive).
  class Cursor {
  public:
    Cursor() = default;
    explicit Cursor(const Node *Root) { descend(Root); }
    /// Cursor positioned at the first entry with key >= LoKey.
    Cursor(const Node *Root, const KeyT &LoKey) {
      const Node *N = Root;
      while (N) {
        if (Entry::less(N->Key, LoKey)) {
          N = N->Right;
        } else {
          push(N);
          N = N->Left;
        }
      }
    }

    bool done() const { return Top == 0; }
    const Node *node() const {
      assert(Top > 0 && "node() on exhausted cursor");
      return Stack[Top - 1];
    }
    void advance() {
      assert(Top > 0 && "advance() on exhausted cursor");
      const Node *N = Stack[--Top];
      descend(N->Right);
    }

  private:
    // Weight balance with alpha = 0.29 bounds the depth by
    // log(n) / log(1/(1-alpha)) < 2.03 log2(n); Size is 32-bit, so 96
    // levels leave ample slack.
    static constexpr int MaxDepth = 96;

    void push(const Node *N) {
      assert(Top < MaxDepth && "tree deeper than the balance bound");
      Stack[Top++] = N;
    }
    void descend(const Node *N) {
      while (N) {
        push(N);
        N = N->Left;
      }
    }

    const Node *Stack[MaxDepth];
    int Top = 0;
  };

  /// Sequential in-order traversal applying Fn(key, value).
  template <class F> static void forEachSeq(const Node *T, const F &Fn) {
    if (!T)
      return;
    forEachSeq(T->Left, Fn);
    Fn(T->Key, T->Val);
    forEachSeq(T->Right, Fn);
  }

  /// Parallel unordered traversal applying Fn(key, value).
  template <class F> static void forEachPar(const Node *T, const F &Fn) {
    if (!T)
      return;
    if (T->Size < SeqCutoff) {
      forEachSeq(T, Fn);
      return;
    }
    parallelDo([&] { forEachPar(T->Left, Fn); },
               [&] {
                 Fn(T->Key, T->Val);
                 forEachPar(T->Right, Fn);
               });
  }

  /// Parallel traversal with the in-order index of each entry:
  /// Fn(index, key, value).
  template <class F>
  static void forEachIndexed(const Node *T, size_t Offset, const F &Fn) {
    if (!T)
      return;
    size_t LS = size(T->Left);
    if (T->Size < SeqCutoff) {
      forEachIndexedSeq(T, Offset, Fn);
      return;
    }
    parallelDo([&] { forEachIndexed(T->Left, Offset, Fn); },
               [&] {
                 Fn(Offset + LS, T->Key, T->Val);
                 forEachIndexed(T->Right, Offset + LS + 1, Fn);
               });
  }

  template <class F>
  static void forEachIndexedSeq(const Node *T, size_t Offset, const F &Fn) {
    if (!T)
      return;
    size_t LS = size(T->Left);
    forEachIndexedSeq(T->Left, Offset, Fn);
    Fn(Offset + LS, T->Key, T->Val);
    forEachIndexedSeq(T->Right, Offset + LS + 1, Fn);
  }

  /// Sequential in-order traversal with early exit: stops when Fn returns
  /// false. Returns false iff stopped early.
  template <class F> static bool iterCond(const Node *T, const F &Fn) {
    if (!T)
      return true;
    if (!iterCond(T->Left, Fn))
      return false;
    if (!Fn(T->Key, T->Val))
      return false;
    return iterCond(T->Right, Fn);
  }

  /// Collect all entries into a vector, in key order.
  static std::vector<std::pair<KeyT, ValT>> entries(const Node *T) {
    std::vector<std::pair<KeyT, ValT>> Out(size(T));
    forEachIndexed(T, 0, [&](size_t I, const KeyT &K, const ValT &V) {
      Out[I] = {K, V};
    });
    return Out;
  }

  //===--------------------------------------------------------------------===
  // Validation (test support).
  //===--------------------------------------------------------------------===

  /// Check structural invariants: BST order, size fields, weight balance,
  /// and positive refcounts. Returns true when all hold.
  static bool validate(const Node *T) {
    bool Ok = true;
    validateRec(T, nullptr, nullptr, Ok);
    return Ok;
  }

private:
  static void validateRec(const Node *T, const KeyT *Lo, const KeyT *Hi,
                          bool &Ok) {
    if (!T || !Ok)
      return;
    if (T->Ref.load(std::memory_order_relaxed) == 0)
      Ok = false;
    if (Lo && !Entry::less(*Lo, T->Key))
      Ok = false;
    if (Hi && !Entry::less(T->Key, *Hi))
      Ok = false;
    if (T->Size != 1 + size(T->Left) + size(T->Right))
      Ok = false;
    if (!likeWeights(weight(T->Left), weight(T->Right)))
      Ok = false;
    validateRec(T->Left, Lo, &T->Key, Ok);
    validateRec(T->Right, &T->Key, Hi, Ok);
  }
};

/// RAII handle over a tree root; copies retain, destruction releases.
template <class Entry> class TreeHandle {
public:
  using Ops = Tree<Entry>;
  using Node = typename Ops::Node;

  TreeHandle() = default;
  /// Adopts \p Root (takes over one reference).
  explicit TreeHandle(Node *Root) : Root(Root) {}

  TreeHandle(const TreeHandle &O) : Root(O.Root) { Ops::retain(Root); }
  TreeHandle(TreeHandle &&O) noexcept : Root(O.Root) { O.Root = nullptr; }
  TreeHandle &operator=(const TreeHandle &O) {
    if (this != &O) {
      Ops::retain(O.Root);
      Ops::release(Root);
      Root = O.Root;
    }
    return *this;
  }
  TreeHandle &operator=(TreeHandle &&O) noexcept {
    if (this != &O) {
      Ops::release(Root);
      Root = O.Root;
      O.Root = nullptr;
    }
    return *this;
  }
  ~TreeHandle() { Ops::release(Root); }

  /// Borrow the root without ownership transfer.
  Node *get() const { return Root; }

  /// Take ownership of the root out of the handle.
  Node *take() {
    Node *T = Root;
    Root = nullptr;
    return T;
  }

  /// Replace the owned root (adopting one reference on \p T).
  void adopt(Node *T) {
    Ops::release(Root);
    Root = T;
  }

  size_t size() const { return Ops::size(Root); }
  bool empty() const { return Root == nullptr; }

private:
  Node *Root = nullptr;
};

} // namespace aspen

#endif // ASPEN_PAM_TREE_H
