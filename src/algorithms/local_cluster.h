//===- algorithms/local_cluster.h - Nibble-style local clustering ----------===//
//
// The paper's Local-Cluster query (Section 7): a sequential implementation
// of the Nibble family of local graph clustering algorithms [71, 72], run
// with eps = 1e-6 and T = 10. We use the truncated lazy-random-walk
// formulation of Nibble: T steps of mass propagation with per-vertex
// truncation below eps * deg(v), followed by a sweep cut ordered by
// normalized mass. Entirely sequential per query, so thousands of queries
// can run concurrently on snapshots.
//
// The sweep-cut phase (ordering buffer, membership table, sweep prefix)
// draws from the AlgoContext workspace; the walk itself keeps sparse
// hash maps, whose size is the walk support, not O(n).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_LOCAL_CLUSTER_H
#define ASPEN_ALGORITHMS_LOCAL_CLUSTER_H

#include "memory/algo_context.h"
#include "util/hash.h"
#include "util/types.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace aspen {

struct LocalClusterResult {
  std::vector<VertexId> Cluster; ///< Best sweep prefix (contains the seed's
                                 ///< component sample); sorted by sweep order.
  double Conductance = 1.0;      ///< Conductance of the returned cut.
  size_t SupportSize = 0;        ///< Vertices touched by the walk.
};

namespace detail {

/// Minimal linear-probe membership set over workspace memory (the sweep
/// needs "is U already swept?" for a support-sized universe).
class SweepSet {
public:
  SweepSet(AlgoContext &Ctx, size_t Support)
      : TabSize(roundPow2(4 * Support + 4)), Table(Ctx, TabSize) {
    for (size_t I = 0; I < TabSize; ++I)
      Table[I] = NoVertex;
  }

  void insert(VertexId V) {
    size_t I = slot(V);
    while (Table[I] != NoVertex) {
      if (Table[I] == V)
        return;
      I = (I + 1) & (TabSize - 1);
    }
    Table[I] = V;
  }

  bool contains(VertexId V) const {
    size_t I = slot(V);
    while (Table[I] != NoVertex) {
      if (Table[I] == V)
        return true;
      I = (I + 1) & (TabSize - 1);
    }
    return false;
  }

private:
  static size_t roundPow2(size_t X) {
    size_t P = 8;
    while (P < X)
      P <<= 1;
    return P;
  }
  size_t slot(VertexId V) const {
    return size_t(hashAt(0x5eed, V)) & (TabSize - 1);
  }

  size_t TabSize;
  CtxArray<VertexId> Table;
};

} // namespace detail

/// Nibble-style local clustering from \p Seed using workspace \p Ctx.
template <class GView>
LocalClusterResult localCluster(const GView &G, VertexId Seed,
                                AlgoContext &Ctx, double Eps = 1e-6,
                                int T = 10) {
  std::unordered_map<VertexId, double> Mass;
  Mass[Seed] = 1.0;

  for (int Step = 0; Step < T; ++Step) {
    std::unordered_map<VertexId, double> Next;
    Next.reserve(Mass.size() * 2);
    for (const auto &[V, Q] : Mass) {
      uint64_t Deg = G.degree(V);
      if (Deg == 0 || Q < Eps * double(Deg)) {
        // Truncated: mass below the threshold is dropped (Nibble rule).
        continue;
      }
      // Lazy walk: keep half, spread half across neighbors.
      Next[V] += Q / 2.0;
      double Share = Q / (2.0 * double(Deg));
      G.iterNeighborsCond(V, [&](VertexId U) {
        Next[U] += Share;
        return true;
      });
    }
    if (Next.empty())
      break;
    Mass = std::move(Next);
  }

  LocalClusterResult Result;
  Result.SupportSize = Mass.size();
  if (Mass.empty()) {
    Result.Cluster.push_back(Seed);
    return Result;
  }

  // Sweep cut: order support by mass/degree, take the prefix minimizing
  // conductance = cut(S) / min(vol(S), 2m - vol(S)).
  CtxArray<std::pair<double, VertexId>> Order(Ctx, Mass.size());
  size_t OrderN = 0;
  for (const auto &[V, Q] : Mass) {
    uint64_t Deg = G.degree(V);
    Order[OrderN++] = {Deg ? Q / double(Deg) : 0.0, V};
  }
  std::sort(Order.begin(), Order.begin() + OrderN,
            [](const auto &A, const auto &B) { return A.first > B.first; });

  detail::SweepSet InSet(Ctx, OrderN);
  double TwoM = double(G.numEdges());
  double Vol = 0.0, Cut = 0.0;
  double BestCond = 1.0;
  size_t BestPrefix = 1;
  for (size_t I = 0; I < OrderN; ++I) {
    VertexId V = Order[I].second;
    uint64_t Deg = G.degree(V);
    Vol += double(Deg);
    // Edges to vertices already in the set flip from cut to internal.
    double Internal = 0.0;
    G.iterNeighborsCond(V, [&](VertexId U) {
      if (InSet.contains(U))
        Internal += 1.0;
      return true;
    });
    Cut += double(Deg) - 2.0 * Internal;
    InSet.insert(V);
    double Denom = std::min(Vol, TwoM - Vol);
    if (Denom > 0.0) {
      double Cond = Cut / Denom;
      if (Cond < BestCond) {
        BestCond = Cond;
        BestPrefix = I + 1;
      }
    }
  }
  Result.Cluster.reserve(BestPrefix);
  for (size_t I = 0; I < BestPrefix; ++I)
    Result.Cluster.push_back(Order[I].second);
  Result.Conductance = BestCond;
  return Result;
}

template <class GView>
LocalClusterResult localCluster(const GView &G, VertexId Seed,
                                double Eps = 1e-6, int T = 10) {
  AlgoContext Ctx;
  return localCluster(G, Seed, Ctx, Eps, T);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_LOCAL_CLUSTER_H
