//===- algorithms/local_cluster.h - Nibble-style local clustering ----------===//
//
// The paper's Local-Cluster query (Section 7): a sequential implementation
// of the Nibble family of local graph clustering algorithms [71, 72], run
// with eps = 1e-6 and T = 10. We use the truncated lazy-random-walk
// formulation of Nibble: T steps of mass propagation with per-vertex
// truncation below eps * deg(v), followed by a sweep cut ordered by
// normalized mass. Entirely sequential per query, so thousands of queries
// can run concurrently on snapshots.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_LOCAL_CLUSTER_H
#define ASPEN_ALGORITHMS_LOCAL_CLUSTER_H

#include "util/types.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace aspen {

struct LocalClusterResult {
  std::vector<VertexId> Cluster; ///< Best sweep prefix (contains the seed's
                                 ///< component sample); sorted by sweep order.
  double Conductance = 1.0;      ///< Conductance of the returned cut.
  size_t SupportSize = 0;        ///< Vertices touched by the walk.
};

/// Nibble-style local clustering from \p Seed.
template <class GView>
LocalClusterResult localCluster(const GView &G, VertexId Seed,
                                double Eps = 1e-6, int T = 10) {
  std::unordered_map<VertexId, double> Mass;
  Mass[Seed] = 1.0;

  for (int Step = 0; Step < T; ++Step) {
    std::unordered_map<VertexId, double> Next;
    Next.reserve(Mass.size() * 2);
    for (const auto &[V, Q] : Mass) {
      uint64_t Deg = G.degree(V);
      if (Deg == 0 || Q < Eps * double(Deg)) {
        // Truncated: mass below the threshold is dropped (Nibble rule).
        continue;
      }
      // Lazy walk: keep half, spread half across neighbors.
      Next[V] += Q / 2.0;
      double Share = Q / (2.0 * double(Deg));
      G.iterNeighborsCond(V, [&](VertexId U) {
        Next[U] += Share;
        return true;
      });
    }
    if (Next.empty())
      break;
    Mass = std::move(Next);
  }

  LocalClusterResult Result;
  Result.SupportSize = Mass.size();
  if (Mass.empty()) {
    Result.Cluster.push_back(Seed);
    return Result;
  }

  // Sweep cut: order support by mass/degree, take the prefix minimizing
  // conductance = cut(S) / min(vol(S), 2m - vol(S)).
  std::vector<std::pair<double, VertexId>> Order;
  Order.reserve(Mass.size());
  for (const auto &[V, Q] : Mass) {
    uint64_t Deg = G.degree(V);
    Order.push_back({Deg ? Q / double(Deg) : 0.0, V});
  }
  std::sort(Order.begin(), Order.end(), [](const auto &A, const auto &B) {
    return A.first > B.first;
  });

  std::unordered_set<VertexId> InSet;
  double TwoM = double(G.numEdges());
  double Vol = 0.0, Cut = 0.0;
  double BestCond = 1.0;
  size_t BestPrefix = 1;
  std::vector<VertexId> Sweep;
  for (size_t I = 0; I < Order.size(); ++I) {
    VertexId V = Order[I].second;
    Sweep.push_back(V);
    uint64_t Deg = G.degree(V);
    Vol += double(Deg);
    // Edges to vertices already in the set flip from cut to internal.
    double Internal = 0.0;
    G.iterNeighborsCond(V, [&](VertexId U) {
      if (InSet.count(U))
        Internal += 1.0;
      return true;
    });
    Cut += double(Deg) - 2.0 * Internal;
    InSet.insert(V);
    double Denom = std::min(Vol, TwoM - Vol);
    if (Denom > 0.0) {
      double Cond = Cut / Denom;
      if (Cond < BestCond) {
        BestCond = Cond;
        BestPrefix = I + 1;
      }
    }
  }
  Result.Cluster.assign(Sweep.begin(), Sweep.begin() + BestPrefix);
  Result.Conductance = BestCond;
  return Result;
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_LOCAL_CLUSTER_H
