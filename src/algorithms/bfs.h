//===- algorithms/bfs.h - Breadth-first search -----------------------------===//
//
// Ligra-style BFS (Section 7): frontier expansion via edgeMap with
// CAS-claimed parents, direction optimization by default. Works over any
// graph view (tree snapshot, flat snapshot, or CSR baseline).
//
// The parent array and every frontier draw from the AlgoContext
// workspace; the context-less overloads run against a transient local
// context (still allocation-free at steady state via the per-worker
// scratch caches).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_BFS_H
#define ASPEN_ALGORITHMS_BFS_H

#include "ligra/edge_map.h"
#include "memory/algo_context.h"

#include <atomic>
#include <new>
#include <vector>

namespace aspen {

namespace detail {

struct BfsF {
  std::atomic<VertexId> *Parents;

  bool updateAtomic(VertexId U, VertexId V) const {
    VertexId Expect = NoVertex;
    return Parents[V].compare_exchange_strong(Expect, U,
                                              std::memory_order_relaxed);
  }

  bool update(VertexId U, VertexId V) const {
    // Dense traversal: a single writer per destination.
    if (Parents[V].load(std::memory_order_relaxed) != NoVertex)
      return false;
    Parents[V].store(U, std::memory_order_relaxed);
    return true;
  }

  bool cond(VertexId V) const {
    return Parents[V].load(std::memory_order_relaxed) == NoVertex;
  }
};

/// Workspace parent array, initialized to NoVertex with Src as its own
/// parent; shared by bfs and bfsDistances.
class BfsParents {
public:
  BfsParents(AlgoContext &Ctx, VertexId N, VertexId Src) : Mem(Ctx, N) {
    std::atomic<VertexId> *P = Mem.data();
    parallelFor(0, N, [&](size_t I) {
      new (&P[I]) std::atomic<VertexId>(NoVertex);
    });
    P[Src].store(Src, std::memory_order_relaxed);
  }

  std::atomic<VertexId> *data() { return Mem.data(); }

private:
  CtxArray<std::atomic<VertexId>> Mem;
};

} // namespace detail

/// BFS from \p Src using workspace \p Ctx. Returns the parent array:
/// Parents[Src] == Src, NoVertex for unreachable vertices.
template <class GView>
std::vector<VertexId> bfs(const GView &G, VertexId Src, AlgoContext &Ctx,
                          EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  detail::BfsParents Parents(Ctx, N, Src);

  VertexSubset Frontier(N, Src, &Ctx);
  while (!Frontier.empty())
    Frontier = edgeMap(G, Frontier, detail::BfsF{Parents.data()}, Options);

  return tabulate(N, [&](size_t I) {
    return Parents.data()[I].load(std::memory_order_relaxed);
  });
}

template <class GView>
std::vector<VertexId> bfs(const GView &G, VertexId Src,
                          EdgeMapOptions Options = {}) {
  AlgoContext Ctx;
  return bfs(G, Src, Ctx, Options);
}

/// BFS distances (hop counts; NoVertex/unreachable mapped to ~0u).
template <class GView>
std::vector<uint32_t> bfsDistances(const GView &G, VertexId Src,
                                   AlgoContext &Ctx,
                                   EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  detail::BfsParents Parents(Ctx, N, Src);
  std::vector<uint32_t> Dist(N, ~0u);
  Dist[Src] = 0;

  VertexSubset Frontier(N, Src, &Ctx);
  uint32_t Level = 0;
  while (!Frontier.empty()) {
    ++Level;
    Frontier = edgeMap(G, Frontier, detail::BfsF{Parents.data()}, Options);
    Frontier.forEach([&](VertexId V) { Dist[V] = Level; });
  }
  return Dist;
}

template <class GView>
std::vector<uint32_t> bfsDistances(const GView &G, VertexId Src,
                                   EdgeMapOptions Options = {}) {
  AlgoContext Ctx;
  return bfsDistances(G, Src, Ctx, Options);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_BFS_H
