//===- algorithms/bfs.h - Breadth-first search -----------------------------===//
//
// Ligra-style BFS (Section 7): frontier expansion via edgeMap with
// CAS-claimed parents, direction optimization by default. Works over any
// graph view (tree snapshot, flat snapshot, or CSR baseline).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_BFS_H
#define ASPEN_ALGORITHMS_BFS_H

#include "ligra/edge_map.h"

#include <atomic>
#include <vector>

namespace aspen {

namespace detail {

struct BfsF {
  std::atomic<VertexId> *Parents;

  bool updateAtomic(VertexId U, VertexId V) const {
    VertexId Expect = NoVertex;
    return Parents[V].compare_exchange_strong(Expect, U,
                                              std::memory_order_relaxed);
  }

  bool update(VertexId U, VertexId V) const {
    // Dense traversal: a single writer per destination.
    if (Parents[V].load(std::memory_order_relaxed) != NoVertex)
      return false;
    Parents[V].store(U, std::memory_order_relaxed);
    return true;
  }

  bool cond(VertexId V) const {
    return Parents[V].load(std::memory_order_relaxed) == NoVertex;
  }
};

} // namespace detail

/// BFS from \p Src. Returns the parent array: Parents[Src] == Src,
/// NoVertex for unreachable vertices.
template <class GView>
std::vector<VertexId> bfs(const GView &G, VertexId Src,
                          EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  std::vector<std::atomic<VertexId>> Parents(N);
  parallelFor(0, N, [&](size_t I) {
    Parents[I].store(NoVertex, std::memory_order_relaxed);
  });
  Parents[Src].store(Src, std::memory_order_relaxed);

  VertexSubset Frontier(N, Src);
  while (!Frontier.empty())
    Frontier = edgeMap(G, Frontier, detail::BfsF{Parents.data()}, Options);

  return tabulate(N, [&](size_t I) {
    return Parents[I].load(std::memory_order_relaxed);
  });
}

/// BFS distances (hop counts; NoVertex/unreachable mapped to ~0u).
template <class GView>
std::vector<uint32_t> bfsDistances(const GView &G, VertexId Src,
                                   EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  std::vector<std::atomic<VertexId>> Parents(N);
  parallelFor(0, N, [&](size_t I) {
    Parents[I].store(NoVertex, std::memory_order_relaxed);
  });
  Parents[Src].store(Src, std::memory_order_relaxed);
  std::vector<uint32_t> Dist(N, ~0u);
  Dist[Src] = 0;

  VertexSubset Frontier(N, Src);
  uint32_t Level = 0;
  while (!Frontier.empty()) {
    ++Level;
    Frontier = edgeMap(G, Frontier, detail::BfsF{Parents.data()}, Options);
    Frontier.forEach([&](VertexId V) { Dist[V] = Level; });
  }
  return Dist;
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_BFS_H
