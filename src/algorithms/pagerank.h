//===- algorithms/pagerank.h - PageRank power iteration ---------------------===//
//
// Pull-based PageRank (extension algorithm): p'[v] = (1-d)/n +
// d * sum_{u in N(v)} p[u]/deg(u) over symmetric graphs, iterated a fixed
// number of rounds or until the L1 delta drops below a tolerance.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_PAGERANK_H
#define ASPEN_ALGORITHMS_PAGERANK_H

#include "parallel/primitives.h"
#include "util/types.h"

#include <cmath>
#include <vector>

namespace aspen {

/// PageRank scores (sum ~1 up to dangling mass).
template <class GView>
std::vector<double> pageRank(const GView &G, int MaxIters = 20,
                             double Damping = 0.85, double Tol = 1e-9) {
  VertexId N = G.numVertices();
  if (N == 0)
    return {};
  std::vector<double> P(N, 1.0 / double(N)), Next(N, 0.0);
  // Precompute degree reciprocal contributions per round.
  std::vector<double> Contrib(N, 0.0);
  for (int Iter = 0; Iter < MaxIters; ++Iter) {
    parallelFor(0, N, [&](size_t V) {
      uint64_t D = G.degree(VertexId(V));
      Contrib[V] = D ? P[V] / double(D) : 0.0;
    });
    parallelFor(0, N, [&](size_t V) {
      double Acc = 0.0;
      G.iterNeighborsCond(VertexId(V), [&](VertexId U) {
        Acc += Contrib[U];
        return true;
      });
      Next[V] = (1.0 - Damping) / double(N) + Damping * Acc;
    }, 32);
    double Delta = reduceSum(size_t(N), [&](size_t V) {
      return std::fabs(Next[V] - P[V]);
    });
    std::swap(P, Next);
    if (Delta < Tol)
      break;
  }
  return P;
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_PAGERANK_H
