//===- algorithms/pagerank.h - PageRank power iteration ---------------------===//
//
// Pull-based PageRank (extension algorithm): p'[v] = (1-d)/n +
// d * sum_{u in N(v)} p[u]/deg(u) over symmetric graphs, iterated a fixed
// number of rounds or until the L1 delta drops below a tolerance.
//
// The score, next-score, and contribution arrays draw from the
// AlgoContext workspace, so steady-state re-runs on evolving snapshots
// allocate nothing but the returned result vector.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_PAGERANK_H
#define ASPEN_ALGORITHMS_PAGERANK_H

#include "memory/algo_context.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <cmath>
#include <utility>
#include <vector>

namespace aspen {

/// PageRank scores (sum ~1 up to dangling mass) using workspace \p Ctx.
template <class GView>
std::vector<double> pageRank(const GView &G, AlgoContext &Ctx,
                             int MaxIters = 20, double Damping = 0.85,
                             double Tol = 1e-9) {
  VertexId N = G.numVertices();
  if (N == 0)
    return {};
  CtxArray<double> PA(Ctx, N), NextA(Ctx, N), Contrib(Ctx, N);
  double *P = PA.data(), *Next = NextA.data();
  parallelFor(0, N, [&](size_t V) {
    P[V] = 1.0 / double(N);
    Next[V] = 0.0;
  });
  for (int Iter = 0; Iter < MaxIters; ++Iter) {
    // Precompute degree reciprocal contributions per round.
    parallelFor(0, N, [&](size_t V) {
      uint64_t D = G.degree(VertexId(V));
      Contrib[V] = D ? P[V] / double(D) : 0.0;
    });
    parallelFor(0, N, [&](size_t V) {
      double Acc = 0.0;
      G.iterNeighborsCond(VertexId(V), [&](VertexId U) {
        Acc += Contrib[U];
        return true;
      });
      Next[V] = (1.0 - Damping) / double(N) + Damping * Acc;
    }, 32);
    double Delta = reduceSum(size_t(N), [&](size_t V) {
      return std::fabs(Next[V] - P[V]);
    });
    std::swap(P, Next);
    if (Delta < Tol)
      break;
  }
  return tabulate(size_t(N), [&](size_t V) { return P[V]; });
}

template <class GView>
std::vector<double> pageRank(const GView &G, int MaxIters = 20,
                             double Damping = 0.85, double Tol = 1e-9) {
  AlgoContext Ctx;
  return pageRank(G, Ctx, MaxIters, Damping, Tol);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_PAGERANK_H
