//===- algorithms/kcore.h - k-core decomposition ----------------------------===//
//
// Coreness by parallel peeling (a bucketing-lite version of the Julienne
// k-core the paper cites [24]): repeatedly peel all vertices whose induced
// degree is <= k, raising k when no vertex qualifies. Extension algorithm
// exercising frontier-driven decrements.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_KCORE_H
#define ASPEN_ALGORITHMS_KCORE_H

#include "ligra/vertex_subset.h"
#include "parallel/primitives.h"

#include <atomic>
#include <vector>

namespace aspen {

/// Coreness of every vertex (max k such that v is in the k-core).
template <class GView> std::vector<uint32_t> kCore(const GView &G) {
  VertexId N = G.numVertices();
  std::vector<std::atomic<int64_t>> Degree(N);
  parallelFor(0, N, [&](size_t V) {
    Degree[V].store(int64_t(G.degree(VertexId(V))),
                    std::memory_order_relaxed);
  });
  std::vector<uint32_t> Core(N, 0);
  std::vector<uint8_t> Alive(N, 1);

  size_t Remaining = N;
  uint32_t K = 0;
  while (Remaining > 0) {
    // Collect the peel set at the current k.
    auto Peel = filterIndex(
        size_t(N), [&](size_t V) { return VertexId(V); },
        [&](size_t V) {
          return Alive[V] &&
                 Degree[V].load(std::memory_order_relaxed) <= int64_t(K);
        });
    if (Peel.empty()) {
      ++K;
      continue;
    }
    // Peel rounds at fixed k until no vertex qualifies.
    while (!Peel.empty()) {
      parallelFor(0, Peel.size(), [&](size_t I) {
        VertexId V = Peel[I];
        Alive[V] = 0;
        Core[V] = K;
      });
      Remaining -= Peel.size();
      parallelFor(0, Peel.size(), [&](size_t I) {
        G.iterNeighborsCond(Peel[I], [&](VertexId U) {
          if (Alive[U])
            Degree[U].fetch_sub(1, std::memory_order_relaxed);
          return true;
        });
      }, 16);
      Peel = filterIndex(
          size_t(N), [&](size_t V) { return VertexId(V); },
          [&](size_t V) {
            return Alive[V] &&
                   Degree[V].load(std::memory_order_relaxed) <= int64_t(K);
          });
    }
  }
  return Core;
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_KCORE_H
