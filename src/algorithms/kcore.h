//===- algorithms/kcore.h - k-core decomposition ----------------------------===//
//
// Coreness by parallel peeling (a bucketing-lite version of the Julienne
// k-core the paper cites [24]): repeatedly peel all vertices whose induced
// degree is <= k, raising k when no vertex qualifies. Extension algorithm
// exercising frontier-driven decrements.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_KCORE_H
#define ASPEN_ALGORITHMS_KCORE_H

#include "ligra/vertex_subset.h"
#include "memory/algo_context.h"
#include "parallel/primitives.h"

#include <atomic>
#include <new>
#include <vector>

namespace aspen {

/// Coreness of every vertex (max k such that v is in the k-core), using
/// workspace \p Ctx.
template <class GView>
std::vector<uint32_t> kCore(const GView &G, AlgoContext &Ctx) {
  VertexId N = G.numVertices();
  CtxArray<std::atomic<int64_t>> Degree(Ctx, N);
  CtxArray<uint8_t> Alive(Ctx, N);
  parallelFor(0, N, [&](size_t V) {
    new (&Degree[V]) std::atomic<int64_t>(int64_t(G.degree(VertexId(V))));
    Alive[V] = 1;
  });
  std::vector<uint32_t> Core(N, 0);

  // Peel sets pack into a reused workspace buffer.
  CtxArray<VertexId> Peel(Ctx, N);
  auto CollectPeel = [&](uint32_t K) {
    return filterIndexInto(
        size_t(N), [&](size_t V) { return VertexId(V); },
        [&](size_t V) {
          return Alive[V] &&
                 Degree[V].load(std::memory_order_relaxed) <= int64_t(K);
        },
        Peel.data());
  };

  size_t Remaining = N;
  uint32_t K = 0;
  while (Remaining > 0) {
    // Collect the peel set at the current k.
    size_t PeelSize = CollectPeel(K);
    if (PeelSize == 0) {
      ++K;
      continue;
    }
    // Peel rounds at fixed k until no vertex qualifies.
    while (PeelSize > 0) {
      parallelFor(0, PeelSize, [&](size_t I) {
        VertexId V = Peel[I];
        Alive[V] = 0;
        Core[V] = K;
      });
      Remaining -= PeelSize;
      parallelFor(0, PeelSize, [&](size_t I) {
        G.iterNeighborsCond(Peel[I], [&](VertexId U) {
          if (Alive[U])
            Degree[U].fetch_sub(1, std::memory_order_relaxed);
          return true;
        });
      }, 16);
      PeelSize = CollectPeel(K);
    }
  }
  return Core;
}

template <class GView> std::vector<uint32_t> kCore(const GView &G) {
  AlgoContext Ctx;
  return kCore(G, Ctx);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_KCORE_H
