//===- algorithms/bc.h - Single-source betweenness centrality --------------===//
//
// Brandes-style single-source betweenness contributions (the paper's BC,
// Section 7): a forward sparse/dense BFS accumulating shortest-path counts
// per level, then a level-synchronous backward dependency accumulation.
// Matches the algorithm of [25] in structure: forward phase uses edgeMap;
// the backward phase processes levels in reverse with one writer per
// vertex.
//
// As in Ligra's BC, the "visited" flag consulted by cond() is settled only
// between rounds, so every same-level contribution is accumulated before a
// vertex stops accepting updates.
//
// Instead of retaining one VertexSubset per level, the forward phase packs
// every settled frontier into a single workspace queue with per-level
// offsets (at most N entries / N+1 offsets), so the whole traversal record
// lives in two AlgoContext blocks and is reused across runs.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_BC_H
#define ASPEN_ALGORITHMS_BC_H

#include "ligra/edge_map.h"
#include "memory/algo_context.h"

#include <atomic>
#include <cstring>
#include <new>
#include <vector>

namespace aspen {

namespace detail {

struct BCForwardF {
  std::atomic<double> *NumPaths;
  const uint8_t *Visited;

  bool addPaths(VertexId U, VertexId V, bool Atomic) const {
    double Contribution = NumPaths[U].load(std::memory_order_relaxed);
    double Old;
    if (Atomic) {
      // C++17 has no atomic<double>::fetch_add; CAS-loop instead.
      Old = NumPaths[V].load(std::memory_order_relaxed);
      while (!NumPaths[V].compare_exchange_weak(Old, Old + Contribution,
                                                std::memory_order_relaxed))
        ;
    } else {
      // Dense traversal: a single writer per destination vertex.
      Old = NumPaths[V].load(std::memory_order_relaxed);
      NumPaths[V].store(Old + Contribution, std::memory_order_relaxed);
    }
    return Old == 0.0; // first touch adds V to the next frontier once
  }

  bool updateAtomic(VertexId U, VertexId V) const {
    return addPaths(U, V, /*Atomic=*/true);
  }
  bool update(VertexId U, VertexId V) const {
    return addPaths(U, V, /*Atomic=*/false);
  }
  bool cond(VertexId V) const { return !Visited[V]; }
};

} // namespace detail

/// Betweenness contributions of shortest paths from \p Src (Brandes
/// dependencies) using workspace \p Ctx; Scores[Src] == 0.
template <class GView>
std::vector<double> bc(const GView &G, VertexId Src, AlgoContext &Ctx,
                       EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  CtxArray<std::atomic<double>> NumPaths(Ctx, N);
  CtxArray<uint8_t> Visited(Ctx, N);
  CtxArray<uint32_t> Level(Ctx, N);
  parallelFor(0, N, [&](size_t I) {
    new (&NumPaths[I]) std::atomic<double>(0.0);
    Visited[I] = 0;
    Level[I] = ~0u;
  });
  NumPaths[Src].store(1.0, std::memory_order_relaxed);
  Visited[Src] = 1;
  Level[Src] = 0;

  // Forward phase: pack the frontier of every level into Queue; level L
  // occupies Queue[Offsets[L], Offsets[L+1]).
  CtxArray<VertexId> Queue(Ctx, N);
  CtxArray<uint64_t> Offsets(Ctx, size_t(N) + 1);
  Queue[0] = Src;
  Offsets[0] = 0;
  Offsets[1] = 1;
  uint32_t NumLevels = 1;

  VertexSubset Frontier(N, Src, &Ctx);
  uint32_t D = 0;
  while (true) {
    ++D;
    detail::BCForwardF F{NumPaths.data(), Visited.data()};
    VertexSubset Next = edgeMap(G, Frontier, F, Options);
    if (Next.empty())
      break;
    // Settle the round: mark the new frontier visited.
    Next.forEach([&](VertexId V) {
      Visited[V] = 1;
      Level[V] = D;
    });
    Next.toSparse();
    std::memcpy(Queue.data() + Offsets[NumLevels], Next.sparseIds(),
                Next.size() * sizeof(VertexId));
    Offsets[NumLevels + 1] = Offsets[NumLevels] + Next.size();
    ++NumLevels;
    Frontier = std::move(Next);
  }

  // Backward phase: dependency accumulation, one level at a time, one
  // writer per vertex.
  CtxArray<double> Dep(Ctx, N);
  parallelFor(0, N, [&](size_t I) { Dep[I] = 0.0; });
  for (uint32_t L = NumLevels; L-- > 1;) {
    const VertexId *Prev = Queue.data() + Offsets[L - 1];
    size_t PrevSize = size_t(Offsets[L] - Offsets[L - 1]);
    parallelFor(0, PrevSize, [&](size_t I) {
      VertexId V = Prev[I];
      double PathsV = NumPaths[V].load(std::memory_order_relaxed);
      double Acc = 0.0;
      G.iterNeighborsCond(V, [&](VertexId W) {
        if (Level[W] == L) {
          double PathsW = NumPaths[W].load(std::memory_order_relaxed);
          Acc += PathsV / PathsW * (1.0 + Dep[W]);
        }
        return true;
      });
      Dep[V] += Acc;
    });
  }
  Dep[Src] = 0.0;
  return tabulate(size_t(N), [&](size_t I) { return Dep[I]; });
}

template <class GView>
std::vector<double> bc(const GView &G, VertexId Src,
                       EdgeMapOptions Options = {}) {
  AlgoContext Ctx;
  return bc(G, Src, Ctx, Options);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_BC_H
