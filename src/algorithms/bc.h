//===- algorithms/bc.h - Single-source betweenness centrality --------------===//
//
// Brandes-style single-source betweenness contributions (the paper's BC,
// Section 7): a forward sparse/dense BFS accumulating shortest-path counts
// per level, then a level-synchronous backward dependency accumulation.
// Matches the algorithm of [25] in structure: forward phase uses edgeMap;
// the backward phase processes levels in reverse with one writer per
// vertex.
//
// As in Ligra's BC, the "visited" flag consulted by cond() is settled only
// between rounds, so every same-level contribution is accumulated before a
// vertex stops accepting updates.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_BC_H
#define ASPEN_ALGORITHMS_BC_H

#include "ligra/edge_map.h"

#include <atomic>
#include <vector>

namespace aspen {

namespace detail {

struct BCForwardF {
  std::atomic<double> *NumPaths;
  const uint8_t *Visited;

  bool addPaths(VertexId U, VertexId V, bool Atomic) const {
    double Contribution = NumPaths[U].load(std::memory_order_relaxed);
    double Old;
    if (Atomic) {
      // C++17 has no atomic<double>::fetch_add; CAS-loop instead.
      Old = NumPaths[V].load(std::memory_order_relaxed);
      while (!NumPaths[V].compare_exchange_weak(Old, Old + Contribution,
                                                std::memory_order_relaxed))
        ;
    } else {
      // Dense traversal: a single writer per destination vertex.
      Old = NumPaths[V].load(std::memory_order_relaxed);
      NumPaths[V].store(Old + Contribution, std::memory_order_relaxed);
    }
    return Old == 0.0; // first touch adds V to the next frontier once
  }

  bool updateAtomic(VertexId U, VertexId V) const {
    return addPaths(U, V, /*Atomic=*/true);
  }
  bool update(VertexId U, VertexId V) const {
    return addPaths(U, V, /*Atomic=*/false);
  }
  bool cond(VertexId V) const { return !Visited[V]; }
};

} // namespace detail

/// Betweenness contributions of shortest paths from \p Src (Brandes
/// dependencies); Scores[Src] == 0.
template <class GView>
std::vector<double> bc(const GView &G, VertexId Src,
                       EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  std::vector<std::atomic<double>> NumPaths(N);
  std::vector<uint8_t> Visited(N, 0);
  std::vector<uint32_t> Level(N, ~0u);
  parallelFor(0, N, [&](size_t I) {
    NumPaths[I].store(0.0, std::memory_order_relaxed);
  });
  NumPaths[Src].store(1.0, std::memory_order_relaxed);
  Visited[Src] = 1;
  Level[Src] = 0;

  // Forward phase: record the frontier of every level.
  std::vector<VertexSubset> Levels;
  Levels.emplace_back(N, Src);
  uint32_t D = 0;
  while (true) {
    ++D;
    detail::BCForwardF F{NumPaths.data(), Visited.data()};
    VertexSubset Next = edgeMap(G, Levels.back(), F, Options);
    if (Next.empty())
      break;
    // Settle the round: mark the new frontier visited.
    Next.forEach([&](VertexId V) {
      Visited[V] = 1;
      Level[V] = D;
    });
    Levels.push_back(std::move(Next));
  }

  // Backward phase: dependency accumulation, one level at a time, one
  // writer per vertex.
  std::vector<double> Dep(N, 0.0);
  for (size_t L = Levels.size(); L-- > 1;) {
    VertexSubset &Prev = Levels[L - 1];
    Prev.forEach([&](VertexId V) {
      double PathsV = NumPaths[V].load(std::memory_order_relaxed);
      double Acc = 0.0;
      G.iterNeighborsCond(V, [&](VertexId W) {
        if (Level[W] == uint32_t(L)) {
          double PathsW = NumPaths[W].load(std::memory_order_relaxed);
          Acc += PathsV / PathsW * (1.0 + Dep[W]);
        }
        return true;
      });
      Dep[V] += Acc;
    });
  }
  Dep[Src] = 0.0;
  return Dep;
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_BC_H
