//===- algorithms/triangle_count.h - Triangle counting ---------------------===//
//
// Ordered triangle counting on symmetric graphs: each triangle
// u < v < w is counted once at its smallest vertex by intersecting the
// higher-id neighborhoods of u and v. An extension algorithm showcasing
// ordered edge-set iteration (the C-tree's sorted order makes the merge
// intersection natural).
//
// Per-vertex adjacency staging happens inside parallel workers, so it
// borrows from the per-worker scratch caches (context-less CtxArray) rather than a
// single AlgoContext, which is owned by the calling thread; the
// AlgoContext overload exists for signature uniformity across the
// algorithm suite.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_TRIANGLE_COUNT_H
#define ASPEN_ALGORITHMS_TRIANGLE_COUNT_H

#include "ligra/edge_map.h"
#include "memory/algo_context.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <functional>

namespace aspen {

/// Scan-vs-probe crossover: probing N(V) for one candidate costs about
/// as much as decoding this many scanned neighbors, so the merge
/// intersection switches to hash probes only when
/// |candidates| * TriangleProbeCost < deg(V).
inline constexpr uint64_t TriangleProbeCost = 8;

/// Count triangles in a symmetric graph view.
///
/// Views exposing the edge-probe surface (HasContainsEdgeV) take an
/// O(1)-membership fast path on hot vertices: when V keeps a hash
/// sidecar and the candidate suffix of Au is small relative to deg(V),
/// each candidate is probed against N(V) instead of merge-scanning the
/// (possibly huge) neighborhood of V.
template <class GView> uint64_t triangleCount(const GView &G) {
  VertexId N = G.numVertices();
  return reduce(
      size_t(N),
      [&](size_t UI) -> uint64_t {
        VertexId U = VertexId(UI);
        // Higher-id neighbors of U, in order, staged in worker scratch.
        CtxArray<VertexId> Au(G.degree(U));
        size_t AuN = 0;
        G.iterNeighborsCond(U, [&](VertexId X) {
          if (X > U)
            Au[AuN++] = X;
          return true;
        });
        uint64_t Local = 0;
        for (size_t VI = 0; VI < AuN; ++VI) {
          VertexId V = Au[VI];
          size_t Pos = VI + 1;
          if (Pos == AuN)
            break; // empty candidate suffix: nothing left to intersect
          if constexpr (HasContainsEdgeV<GView>) {
            uint64_t Cand = uint64_t(AuN - Pos);
            if (G.hasFastProbe(V) &&
                Cand * TriangleProbeCost < G.degree(V)) {
              for (; Pos < AuN; ++Pos)
                if (G.containsEdge(V, Au[Pos]))
                  ++Local;
              continue;
            }
          }
          // Merge-intersect Au (suffix > V) with N(V) (> V).
          G.iterNeighborsCond(V, [&](VertexId Wv) {
            if (Wv <= V)
              return true;
            while (Pos < AuN && Au[Pos] < Wv)
              ++Pos;
            if (Pos == AuN)
              return false;
            if (Au[Pos] == Wv) {
              ++Local;
              ++Pos;
            }
            return true;
          });
        }
        return Local;
      },
      uint64_t(0), std::plus<uint64_t>());
}

/// Signature-uniform overload (the workspace is unused; staging is
/// worker-local by construction).
template <class GView>
uint64_t triangleCount(const GView &G, AlgoContext &) {
  return triangleCount(G);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_TRIANGLE_COUNT_H
