//===- algorithms/triangle_count.h - Triangle counting ---------------------===//
//
// Ordered triangle counting on symmetric graphs: each triangle
// u < v < w is counted once at its smallest vertex by intersecting the
// higher-id neighborhoods of u and v. An extension algorithm showcasing
// ordered edge-set iteration (the C-tree's sorted order makes the merge
// intersection natural).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_TRIANGLE_COUNT_H
#define ASPEN_ALGORITHMS_TRIANGLE_COUNT_H

#include "parallel/primitives.h"
#include "util/types.h"

#include <vector>

namespace aspen {

/// Count triangles in a symmetric graph view.
template <class GView> uint64_t triangleCount(const GView &G) {
  VertexId N = G.numVertices();
  return reduce(
      size_t(N),
      [&](size_t UI) -> uint64_t {
        VertexId U = VertexId(UI);
        // Higher-id neighbors of U, in order.
        std::vector<VertexId> Au;
        G.iterNeighborsCond(U, [&](VertexId X) {
          if (X > U)
            Au.push_back(X);
          return true;
        });
        uint64_t Local = 0;
        for (VertexId V : Au) {
          // Merge-intersect Au (suffix > V) with N(V) (> V).
          size_t I = 0;
          while (I < Au.size() && Au[I] <= V)
            ++I;
          size_t Pos = I;
          G.iterNeighborsCond(V, [&](VertexId Wv) {
            if (Wv <= V)
              return true;
            while (Pos < Au.size() && Au[Pos] < Wv)
              ++Pos;
            if (Pos == Au.size())
              return false;
            if (Au[Pos] == Wv) {
              ++Local;
              ++Pos;
            }
            return true;
          });
        }
        return Local;
      },
      uint64_t(0), std::plus<uint64_t>());
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_TRIANGLE_COUNT_H
