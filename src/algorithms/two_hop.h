//===- algorithms/two_hop.h - 2-hop neighborhood ---------------------------===//
//
// The paper's local 2-hop query (Section 7): the set of vertices within
// two hops of a source. Local queries avoid O(n) scratch so that many can
// run concurrently: candidates are gathered and deduplicated by sorting.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_TWO_HOP_H
#define ASPEN_ALGORITHMS_TWO_HOP_H

#include "parallel/primitives.h"
#include "util/types.h"

#include <algorithm>
#include <vector>

namespace aspen {

/// Vertices at distance <= 2 from \p Src (including Src), sorted.
template <class GView>
std::vector<VertexId> twoHop(const GView &G, VertexId Src) {
  std::vector<VertexId> Hop1;
  Hop1.reserve(G.degree(Src));
  G.mapNeighbors(Src, [&](VertexId U) { Hop1.push_back(U); });

  std::vector<VertexId> Out;
  Out.push_back(Src);
  Out.insert(Out.end(), Hop1.begin(), Hop1.end());
  for (VertexId U : Hop1)
    G.mapNeighbors(U, [&](VertexId W) { Out.push_back(W); });

  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

/// |twoHop(G, Src)| without materializing (same cost; test convenience).
template <class GView> size_t twoHopCount(const GView &G, VertexId Src) {
  return twoHop(G, Src).size();
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_TWO_HOP_H
