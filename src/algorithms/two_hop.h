//===- algorithms/two_hop.h - 2-hop neighborhood ---------------------------===//
//
// The paper's local 2-hop query (Section 7): the set of vertices within
// two hops of a source. Local queries avoid O(n) scratch so that many can
// run concurrently: candidates are gathered into a workspace buffer sized
// by the 2-hop degree sum and deduplicated by sorting.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_TWO_HOP_H
#define ASPEN_ALGORITHMS_TWO_HOP_H

#include "ligra/edge_map.h"
#include "memory/algo_context.h"
#include "util/types.h"

#include <algorithm>
#include <vector>

namespace aspen {

/// Workspace blocks are retained for reuse, so a hub query whose
/// neighborhood approaches m must not pin an m-sized block in the context
/// (or the per-worker caches) for the process lifetime. BoundedCtxArray
/// (memory/algo_context.h) enforces that: sizes above this bound live on
/// transient heap for the duration of the query only.
inline constexpr size_t TwoHopWorkspaceBound =
    (size_t(1) << 20) * sizeof(VertexId);

/// Vertices at distance <= 2 from \p Src (including Src), sorted; the
/// hop-1 and candidate buffers draw from workspace \p Ctx (transient heap
/// for hub-sized outliers).
template <class GView>
std::vector<VertexId> twoHop(const GView &G, VertexId Src,
                             AlgoContext &Ctx) {
  uint64_t Deg = G.degree(Src);
  BoundedCtxArray<VertexId> Hop1(Ctx, size_t(Deg), TwoHopWorkspaceBound);
  size_t Hop1N = 0;
  uint64_t Total = 1 + Deg;
  G.mapNeighbors(Src, [&](VertexId U) { Hop1[Hop1N++] = U; });
  for (size_t I = 0; I < Hop1N; ++I)
    Total += G.degree(Hop1[I]);

  BoundedCtxArray<VertexId> Cand(Ctx, size_t(Total), TwoHopWorkspaceBound);
  size_t CandN = 0;
  Cand[CandN++] = Src;
  for (size_t I = 0; I < Hop1N; ++I)
    Cand[CandN++] = Hop1[I];
  for (size_t I = 0; I < Hop1N; ++I)
    G.mapNeighbors(Hop1[I], [&](VertexId W) { Cand[CandN++] = W; });

  std::sort(Cand.data(), Cand.data() + CandN);
  VertexId *End = std::unique(Cand.data(), Cand.data() + CandN);
  return std::vector<VertexId>(Cand.data(), End);
}

template <class GView>
std::vector<VertexId> twoHop(const GView &G, VertexId Src) {
  AlgoContext Ctx;
  return twoHop(G, Src, Ctx);
}

/// |twoHop(G, Src)| without materializing (same cost; test convenience).
template <class GView> size_t twoHopCount(const GView &G, VertexId Src) {
  return twoHop(G, Src).size();
}

/// Is \p Target within two hops of \p Src (Src itself counts)? A local
/// point query: direct adjacency first, then one middle hop. On views
/// with the edge-probe surface (HasContainsEdgeV), hot middle vertices
/// answer the second hop with an O(1) sidecar probe instead of scanning
/// their (large, that is what made them hot) neighborhoods; other views
/// fall back to the conditional scan.
template <class GView>
bool isWithinTwoHops(const GView &G, VertexId Src, VertexId Target) {
  if (Src == Target)
    return true;
  if constexpr (HasContainsEdgeV<GView>) {
    if (G.hasFastProbe(Src) && G.containsEdge(Src, Target))
      return true;
  }
  bool Found = false;
  G.iterNeighborsCond(Src, [&](VertexId Mid) {
    if (Mid == Target) {
      Found = true;
      return false;
    }
    if constexpr (HasContainsEdgeV<GView>) {
      if (G.hasFastProbe(Mid)) {
        if (G.containsEdge(Mid, Target)) {
          Found = true;
          return false;
        }
        return true;
      }
    }
    G.iterNeighborsCond(Mid, [&](VertexId W) {
      if (W == Target) {
        Found = true;
        return false;
      }
      return true;
    });
    return !Found;
  });
  return Found;
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_TWO_HOP_H
