//===- algorithms/sssp.h - Single-source shortest paths --------------------===//
//
// Frontier-based Bellman-Ford over the weighted-graph extension: each
// round relaxes the out-edges of vertices whose distance improved
// (Ligra's SSSP formulation). Terminates after at most n rounds; negative
// edges are supported, negative cycles reported.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_SSSP_H
#define ASPEN_ALGORITHMS_SSSP_H

#include "memory/algo_context.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <atomic>
#include <limits>
#include <new>
#include <vector>

namespace aspen {

template <class W> struct SsspResult {
  std::vector<W> Dist;          ///< distance or infinity()
  bool NegativeCycle = false;   ///< a negative cycle is reachable

  static W infinity() { return std::numeric_limits<W>::max(); }
};

/// Shortest-path distances from \p Src over a weighted view providing
/// `iterNeighborsW(v, Fn(u, w))` and `vertexUniverse()`, using workspace
/// \p Ctx. The distance targets, improved flags, and frontier buffer are
/// all drawn from the workspace and hoisted out of the round loop.
template <class WGraph, class W = double>
SsspResult<W> sssp(const WGraph &G, VertexId Src, AlgoContext &Ctx) {
  VertexId N = G.vertexUniverse();
  SsspResult<W> R;
  R.Dist.assign(N, SsspResult<W>::infinity());
  if (Src >= N)
    return R;

  // Atomic min-relaxation targets.
  CtxArray<std::atomic<W>> Dist(Ctx, N);
  CtxArray<std::atomic<uint8_t>> Improved(Ctx, N);
  parallelFor(0, N, [&](size_t I) {
    new (&Dist[I]) std::atomic<W>(SsspResult<W>::infinity());
    new (&Improved[I]) std::atomic<uint8_t>(0);
  });
  Dist[Src].store(W(), std::memory_order_relaxed);

  CtxArray<VertexId> Frontier(Ctx, N);
  Frontier[0] = Src;
  size_t FrontierSize = 1;
  size_t Round = 0;
  while (FrontierSize > 0) {
    if (Round++ > size_t(N)) {
      R.NegativeCycle = true;
      break;
    }
    // Relax all out-edges of the frontier; collect improved vertices.
    parallelFor(0, N, [&](size_t I) {
      Improved[I].store(0, std::memory_order_relaxed);
    });
    parallelFor(0, FrontierSize, [&](size_t I) {
      VertexId V = Frontier[I];
      W DV = Dist[V].load(std::memory_order_relaxed);
      if (DV == SsspResult<W>::infinity())
        return;
      G.iterNeighborsW(V, [&](VertexId U, W Weight) {
        W Cand = DV + Weight;
        W Old = Dist[U].load(std::memory_order_relaxed);
        while (Cand < Old) {
          if (Dist[U].compare_exchange_weak(Old, Cand,
                                            std::memory_order_relaxed)) {
            Improved[U].store(1, std::memory_order_relaxed);
            break;
          }
        }
        return true;
      });
    }, 8);
    // The relax pass is complete, so the frontier buffer can be repacked
    // in place from the improved flags.
    FrontierSize = filterIndexInto(
        size_t(N), [&](size_t I) { return VertexId(I); },
        [&](size_t I) {
          return Improved[I].load(std::memory_order_relaxed) != 0;
        },
        Frontier.data());
  }

  parallelFor(0, N, [&](size_t I) {
    R.Dist[I] = Dist[I].load(std::memory_order_relaxed);
  });
  return R;
}

template <class WGraph, class W = double>
SsspResult<W> sssp(const WGraph &G, VertexId Src) {
  AlgoContext Ctx;
  return sssp<WGraph, W>(G, Src, Ctx);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_SSSP_H
