//===- algorithms/sssp.h - Single-source shortest paths --------------------===//
//
// Frontier-based Bellman-Ford over the weighted-graph extension: each
// round relaxes the out-edges of vertices whose distance improved
// (Ligra's SSSP formulation). Terminates after at most n rounds; negative
// edges are supported, negative cycles reported.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_SSSP_H
#define ASPEN_ALGORITHMS_SSSP_H

#include "parallel/primitives.h"
#include "util/types.h"

#include <atomic>
#include <limits>
#include <vector>

namespace aspen {

template <class W> struct SsspResult {
  std::vector<W> Dist;          ///< distance or infinity()
  bool NegativeCycle = false;   ///< a negative cycle is reachable

  static W infinity() { return std::numeric_limits<W>::max(); }
};

/// Shortest-path distances from \p Src over a weighted view providing
/// `iterNeighborsW(v, Fn(u, w))` and `vertexUniverse()`.
template <class WGraph, class W = double>
SsspResult<W> sssp(const WGraph &G, VertexId Src) {
  VertexId N = G.vertexUniverse();
  SsspResult<W> R;
  R.Dist.assign(N, SsspResult<W>::infinity());
  if (Src >= N)
    return R;

  // Atomic min-relaxation targets.
  std::vector<std::atomic<W>> Dist(N);
  parallelFor(0, N, [&](size_t I) {
    Dist[I].store(SsspResult<W>::infinity(), std::memory_order_relaxed);
  });
  Dist[Src].store(W(), std::memory_order_relaxed);

  std::vector<VertexId> Frontier = {Src};
  size_t Round = 0;
  while (!Frontier.empty()) {
    if (Round++ > size_t(N)) {
      R.NegativeCycle = true;
      break;
    }
    // Relax all out-edges of the frontier; collect improved vertices.
    std::vector<std::atomic<uint8_t>> Improved(N);
    parallelFor(0, N, [&](size_t I) {
      Improved[I].store(0, std::memory_order_relaxed);
    });
    parallelFor(0, Frontier.size(), [&](size_t I) {
      VertexId V = Frontier[I];
      W DV = Dist[V].load(std::memory_order_relaxed);
      if (DV == SsspResult<W>::infinity())
        return;
      G.iterNeighborsW(V, [&](VertexId U, W Weight) {
        W Cand = DV + Weight;
        W Old = Dist[U].load(std::memory_order_relaxed);
        while (Cand < Old) {
          if (Dist[U].compare_exchange_weak(Old, Cand,
                                            std::memory_order_relaxed)) {
            Improved[U].store(1, std::memory_order_relaxed);
            break;
          }
        }
        return true;
      });
    }, 8);
    Frontier = filterIndex(
        size_t(N), [&](size_t I) { return VertexId(I); },
        [&](size_t I) {
          return Improved[I].load(std::memory_order_relaxed) != 0;
        });
  }

  parallelFor(0, N, [&](size_t I) {
    R.Dist[I] = Dist[I].load(std::memory_order_relaxed);
  });
  return R;
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_SSSP_H
