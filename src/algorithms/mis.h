//===- algorithms/mis.h - Maximal independent set --------------------------===//
//
// Parallel MIS with random priorities (Luby-style, as in the paper's MIS
// of Section 7): in each round every undecided vertex whose hash priority
// beats all undecided neighbors joins the set; its neighbors leave. The
// decision and removal phases are separated so each round is race-free.
// Expected O(log n) rounds.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_MIS_H
#define ASPEN_ALGORITHMS_MIS_H

#include "ligra/vertex_subset.h"
#include "memory/algo_context.h"
#include "parallel/primitives.h"
#include "util/hash.h"

#include <vector>

namespace aspen {

enum class MisState : uint8_t { Undecided, In, Out };

/// Compute a maximal independent set using workspace \p Ctx; returns
/// per-vertex membership flags.
template <class GView>
std::vector<uint8_t> mis(const GView &G, AlgoContext &Ctx,
                         uint64_t Seed = 0x9e3779b9) {
  VertexId N = G.numVertices();
  CtxArray<MisState> State(Ctx, N);
  parallelFor(0, N, [&](size_t I) { State[I] = MisState::Undecided; });
  auto Priority = [&](VertexId V) { return hashAt(Seed, V); };

  // Active list of still-undecided vertices; double-buffered because the
  // shrink pass cannot pack in place while other blocks still read it.
  CtxArray<VertexId> ActiveA(Ctx, N), ActiveB(Ctx, N);
  CtxArray<uint8_t> Winner(Ctx, N);
  VertexId *Active = ActiveA.data(), *NextActive = ActiveB.data();
  parallelFor(0, N, [&](size_t I) { Active[I] = VertexId(I); });
  size_t ActiveSize = N;

  while (ActiveSize > 0) {
    // Phase 1: decide winners (read-only on State).
    parallelFor(0, ActiveSize, [&](size_t I) {
      VertexId V = Active[I];
      uint64_t PV = Priority(V);
      bool IsMax = true;
      G.iterNeighborsCond(V, [&](VertexId U) {
        if (State[U] != MisState::Out && U != V) {
          uint64_t PU = Priority(U);
          if (PU > PV || (PU == PV && U > V)) {
            IsMax = false;
            return false;
          }
        }
        return true;
      });
      Winner[I] = IsMax ? 1 : 0;
    }, 16);
    // Phase 2: commit winners.
    parallelFor(0, ActiveSize, [&](size_t I) {
      if (Winner[I])
        State[Active[I]] = MisState::In;
    });
    // Phase 3: remove neighbors of winners.
    parallelFor(0, ActiveSize, [&](size_t I) {
      if (!Winner[I])
        return;
      G.iterNeighborsCond(Active[I], [&](VertexId U) {
        if (State[U] == MisState::Undecided)
          State[U] = MisState::Out; // idempotent benign race
        return true;
      });
    }, 16);
    // Phase 4: shrink the active set into the other buffer.
    ActiveSize = filterIndexInto(
        ActiveSize, [&](size_t I) { return Active[I]; },
        [&](size_t I) { return State[Active[I]] == MisState::Undecided; },
        NextActive);
    std::swap(Active, NextActive);
  }

  return tabulate(size_t(N), [&](size_t I) {
    return uint8_t(State[I] == MisState::In ? 1 : 0);
  });
}

template <class GView>
std::vector<uint8_t> mis(const GView &G, uint64_t Seed = 0x9e3779b9) {
  AlgoContext Ctx;
  return mis(G, Ctx, Seed);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_MIS_H
