//===- algorithms/cc.h - Connected components ------------------------------===//
//
// Label-propagation connected components over edgeMap (an extension
// algorithm beyond the paper's five; exercises the same interface).
// Every vertex starts with its own id; minima propagate until fixpoint.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_CC_H
#define ASPEN_ALGORITHMS_CC_H

#include "ligra/edge_map.h"
#include "memory/algo_context.h"

#include <atomic>
#include <new>
#include <vector>

namespace aspen {

namespace detail {

struct CCF {
  std::atomic<VertexId> *Labels;

  bool updateAtomic(VertexId U, VertexId V) const {
    VertexId Mine = Labels[U].load(std::memory_order_relaxed);
    VertexId Theirs = Labels[V].load(std::memory_order_relaxed);
    bool Changed = false;
    while (Mine < Theirs) {
      if (Labels[V].compare_exchange_weak(Theirs, Mine,
                                          std::memory_order_relaxed))
        Changed = true;
      // On failure Theirs reloads; loop re-checks.
    }
    return Changed;
  }

  bool update(VertexId U, VertexId V) const { return updateAtomic(U, V); }

  bool cond(VertexId) const { return true; }
};

} // namespace detail

/// Connected-component labels (min vertex id per component) using
/// workspace \p Ctx.
template <class GView>
std::vector<VertexId> connectedComponents(const GView &G, AlgoContext &Ctx,
                                          EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  CtxArray<std::atomic<VertexId>> Labels(Ctx, N);
  parallelFor(0, N, [&](size_t I) {
    new (&Labels[I]) std::atomic<VertexId>(VertexId(I));
  });

  // Initial frontier: every vertex, built straight into a workspace id
  // buffer.
  size_t AllCap;
  auto *All = static_cast<VertexId *>(
      Ctx.acquire(size_t(N) * sizeof(VertexId), AllCap));
  parallelFor(0, N, [&](size_t I) { All[I] = VertexId(I); });
  VertexSubset Frontier =
      VertexSubset::adoptSparse(&Ctx, N, All, size_t(N), AllCap);

  while (!Frontier.empty())
    Frontier = edgeMap(G, Frontier, detail::CCF{Labels.data()}, Options);

  return tabulate(size_t(N), [&](size_t I) {
    return Labels[I].load(std::memory_order_relaxed);
  });
}

template <class GView>
std::vector<VertexId> connectedComponents(const GView &G,
                                          EdgeMapOptions Options = {}) {
  AlgoContext Ctx;
  return connectedComponents(G, Ctx, Options);
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_CC_H
