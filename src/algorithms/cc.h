//===- algorithms/cc.h - Connected components ------------------------------===//
//
// Label-propagation connected components over edgeMap (an extension
// algorithm beyond the paper's five; exercises the same interface).
// Every vertex starts with its own id; minima propagate until fixpoint.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ALGORITHMS_CC_H
#define ASPEN_ALGORITHMS_CC_H

#include "ligra/edge_map.h"

#include <atomic>
#include <vector>

namespace aspen {

namespace detail {

struct CCF {
  std::atomic<VertexId> *Labels;

  bool updateAtomic(VertexId U, VertexId V) const {
    VertexId Mine = Labels[U].load(std::memory_order_relaxed);
    VertexId Theirs = Labels[V].load(std::memory_order_relaxed);
    bool Changed = false;
    while (Mine < Theirs) {
      if (Labels[V].compare_exchange_weak(Theirs, Mine,
                                          std::memory_order_relaxed))
        Changed = true;
      // On failure Theirs reloads; loop re-checks.
    }
    return Changed;
  }

  bool update(VertexId U, VertexId V) const { return updateAtomic(U, V); }

  bool cond(VertexId) const { return true; }
};

} // namespace detail

/// Connected-component labels (min vertex id per component).
template <class GView>
std::vector<VertexId> connectedComponents(const GView &G,
                                          EdgeMapOptions Options = {}) {
  VertexId N = G.numVertices();
  std::vector<std::atomic<VertexId>> Labels(N);
  parallelFor(0, N, [&](size_t I) {
    Labels[I].store(VertexId(I), std::memory_order_relaxed);
  });

  VertexSubset Frontier(
      N, tabulate(size_t(N), [](size_t I) { return VertexId(I); }));
  while (!Frontier.empty())
    Frontier = edgeMap(G, Frontier, detail::CCF{Labels.data()}, Options);

  return tabulate(size_t(N), [&](size_t I) {
    return Labels[I].load(std::memory_order_relaxed);
  });
}

} // namespace aspen

#endif // ASPEN_ALGORITHMS_CC_H
