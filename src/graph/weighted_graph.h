//===- graph/weighted_graph.h - Weighted streaming graphs -----------------===//
//
// Weighted edges are the paper's stated future work ("we plan to add this
// functionality using a similar compression scheme for weights as used in
// Ligra+", Section 6). This extension implements the interface the paper
// sketches - the same snapshot/batch-update model with per-edge weights -
// using purely-functional map trees for the weighted edge sets (weight
// chunk compression is left as the paper leaves it).
//
// Updates of existing edges' weights go through the batch-insert combine
// function, exactly as the paper describes for value updates ("updates
// (e.g., to the weight) of existing edges can be done within this
// interface", Section 5).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GRAPH_WEIGHTED_GRAPH_H
#define ASPEN_GRAPH_WEIGHTED_GRAPH_H

#include "pam/tree.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <optional>
#include <tuple>
#include <vector>

namespace aspen {

/// A weighted directed edge update.
template <class W> struct WeightedEdge {
  VertexId Src;
  VertexId Dst;
  W Weight;

  friend bool operator==(const WeightedEdge &A, const WeightedEdge &B) {
    return A.Src == B.Src && A.Dst == B.Dst && A.Weight == B.Weight;
  }
  friend bool operator<(const WeightedEdge &A, const WeightedEdge &B) {
    return std::tie(A.Src, A.Dst, A.Weight) <
           std::tie(B.Src, B.Dst, B.Weight);
  }
};

/// Purely-functional map from neighbor id to weight; the weighted
/// analogue of the edge set. Augmented with the total weight, so
/// aggregates over edge weights are O(1) (the use case Section 5 calls
/// out for augmented edge trees).
template <class W> class WeightedEdgeSet {
public:
  struct MapEntry {
    using KeyT = VertexId;
    using ValT = W;
    using AugT = W;
    static bool less(VertexId A, VertexId B) { return A < B; }
    static AugT augOfEntry(const KeyT &, const ValT &V) { return V; }
    static AugT augIdentity() { return W(); }
    static AugT augCombine(AugT A, AugT B) { return A + B; }
  };

  using T = Tree<MapEntry>;
  using Node = typename T::Node;

  /// No tunable construction parameters (plain map tree); present for
  /// interface parity with the unweighted edge-set representations.
  struct BuildParams {};

  WeightedEdgeSet() = default;
  explicit WeightedEdgeSet(Node *Root) : Root(Root) {}

  WeightedEdgeSet(const WeightedEdgeSet &O) : Root(O.Root) {
    T::retain(Root);
  }
  WeightedEdgeSet(WeightedEdgeSet &&O) noexcept : Root(O.Root) {
    O.Root = nullptr;
  }
  WeightedEdgeSet &operator=(const WeightedEdgeSet &O) {
    if (this != &O) {
      T::retain(O.Root);
      T::release(Root);
      Root = O.Root;
    }
    return *this;
  }
  WeightedEdgeSet &operator=(WeightedEdgeSet &&O) noexcept {
    if (this != &O) {
      T::release(Root);
      Root = O.Root;
      O.Root = nullptr;
    }
    return *this;
  }
  ~WeightedEdgeSet() { T::release(Root); }

  bool empty() const { return !Root; }
  size_t size() const { return T::size(Root); }

  /// Sum of all edge weights, O(1) via augmentation.
  W totalWeight() const { return T::aug(Root); }

  /// Build from sorted, duplicate-free (neighbor, weight) pairs.
  static WeightedEdgeSet buildSorted(const std::pair<VertexId, W> *E,
                                     size_t N, BuildParams = {}) {
    return WeightedEdgeSet(T::buildSorted(E, N));
  }

  /// Membership: O(log n) tree search.
  bool contains(VertexId V) const {
    return T::findNode(Root, V) != nullptr;
  }

  std::optional<W> weightOf(VertexId V) const {
    const Node *N = T::findNode(Root, V);
    if (!N)
      return std::nullopt;
    return N->Val;
  }

  /// Union with weight combination `Fn(old, new)`. Consumes both.
  template <class Comb>
  static WeightedEdgeSet merge(WeightedEdgeSet A, WeightedEdgeSet B,
                               const Comb &Fn) {
    return WeightedEdgeSet(T::unionWith(A.take(), B.take(), Fn));
  }

  /// Remove the neighbors present in \p B (weights in B ignored).
  static WeightedEdgeSet minus(WeightedEdgeSet A, WeightedEdgeSet B) {
    return WeightedEdgeSet(T::difference(A.take(), B.take()));
  }

  /// Streaming in-order cursor over (neighbor, weight) entries; the
  /// weighted analogue of the unweighted edge-set cursors, so the graph
  /// layer can iterate any edge-set representation uniformly.
  class Cursor {
  public:
    Cursor() = default;
    explicit Cursor(const WeightedEdgeSet &S) : TC(S.Root) {}

    bool done() const { return TC.done(); }
    VertexId neighbor() const { return TC.node()->Key; }
    const W &weight() const { return TC.node()->Val; }
    void advance() { TC.advance(); }

  private:
    friend class WeightedEdgeSet;
    explicit Cursor(const Node *Root) : TC(Root) {}
    typename T::Cursor TC;
  };

  /// This set must outlive the cursor.
  Cursor cursor() const { return Cursor(*this); }

  template <class F> void forEachSeq(const F &Fn) const {
    T::forEachSeq(Root, Fn);
  }

  template <class F> bool iterCond(const F &Fn) const {
    return T::iterCond(Root, Fn);
  }

  std::vector<std::pair<VertexId, W>> toVector() const {
    return T::entries(Root);
  }

  size_t memoryBytes() const { return size() * sizeof(Node); }

private:
  Node *take() {
    Node *R = Root;
    Root = nullptr;
    return R;
  }

  Node *Root = nullptr;
};

/// An immutable weighted graph snapshot: vertex tree of weighted edge
/// maps, with the same functional batch-update model as GraphSnapshotT.
template <class W> class WeightedGraphT {
public:
  using EdgeSet = WeightedEdgeSet<W>;

  struct VertexEntry {
    using KeyT = VertexId;
    using ValT = EdgeSet;
    using AugT = uint64_t;
    static bool less(VertexId A, VertexId B) { return A < B; }
    static AugT augOfEntry(const KeyT &, const ValT &V) { return V.size(); }
    static AugT augIdentity() { return 0; }
    static AugT augCombine(AugT A, AugT B) { return A + B; }
  };

  using VT = Tree<VertexEntry>;
  using Node = typename VT::Node;

  WeightedGraphT() = default;
  explicit WeightedGraphT(Node *Root) : Root(Root) {}

  WeightedGraphT(const WeightedGraphT &O) : Root(O.Root) {
    VT::retain(Root);
  }
  WeightedGraphT(WeightedGraphT &&O) noexcept : Root(O.Root) {
    O.Root = nullptr;
  }
  WeightedGraphT &operator=(const WeightedGraphT &O) {
    if (this != &O) {
      VT::retain(O.Root);
      VT::release(Root);
      Root = O.Root;
    }
    return *this;
  }
  WeightedGraphT &operator=(WeightedGraphT &&O) noexcept {
    if (this != &O) {
      VT::release(Root);
      Root = O.Root;
      O.Root = nullptr;
    }
    return *this;
  }
  ~WeightedGraphT() { VT::release(Root); }

  /// Build over vertices [0, N); duplicate (src, dst) keep the last
  /// weight in sorted order.
  static WeightedGraphT fromEdges(VertexId N,
                                  std::vector<WeightedEdge<W>> Edges) {
    auto Pairs = groupBySource(std::move(Edges));
    std::vector<std::pair<VertexId, EdgeSet>> All(N);
    parallelFor(0, N, [&](size_t V) {
      All[V] = {VertexId(V), EdgeSet()};
    });
    for (auto &P : Pairs) {
      assert(P.first < N && "edge endpoint out of range");
      All[P.first].second = std::move(P.second);
    }
    return WeightedGraphT(VT::buildSorted(All.data(), All.size()));
  }

  size_t numVertices() const { return VT::size(Root); }
  uint64_t numEdges() const { return VT::aug(Root); }

  VertexId vertexUniverse() const {
    const Node *L = VT::last(Root);
    return L ? L->Key + 1 : 0;
  }

  uint64_t degree(VertexId V) const {
    const Node *N = VT::findNode(Root, V);
    return N ? N->Val.size() : 0;
  }

  std::optional<W> edgeWeight(VertexId U, VertexId V) const {
    const Node *N = VT::findNode(Root, U);
    if (!N)
      return std::nullopt;
    return N->Val.weightOf(V);
  }

  /// Edge-existence probe (the probe surface of the unweighted views).
  bool containsEdge(VertexId U, VertexId V) const {
    const Node *N = VT::findNode(Root, U);
    return N && N->Val.contains(V);
  }

  bool hasFastProbe(VertexId) const { return false; }

  /// Iterate (neighbor, weight) pairs of \p V with early exit.
  template <class F> bool iterNeighborsW(VertexId V, const F &Fn) const {
    const Node *N = VT::findNode(Root, V);
    if (!N)
      return true;
    return N->Val.iterCond(Fn);
  }

  /// Streaming cursor over \p V's (neighbor, weight) entries; empty
  /// cursor when the vertex is absent. The graph must outlive it.
  typename EdgeSet::Cursor neighborCursor(VertexId V) const {
    const Node *N = VT::findNode(Root, V);
    return N ? N->Val.cursor() : typename EdgeSet::Cursor();
  }

  /// Insert weighted edges; \p Fn(old, new) combines weights of existing
  /// edges (default: take the new weight, i.e. weight update).
  template <class Comb>
  WeightedGraphT insertEdges(std::vector<WeightedEdge<W>> Edges,
                             const Comb &Fn) const {
    if (Edges.empty())
      return *this;
    auto Pairs = groupBySource(std::move(Edges));
    Node *Mine = Root;
    VT::retain(Mine);
    Node *NewRoot = VT::multiInsert(
        Mine, Pairs.data(), Pairs.size(),
        [&](EdgeSet Old, EdgeSet New) {
          return EdgeSet::merge(std::move(Old), std::move(New), Fn);
        });
    return WeightedGraphT(NewRoot);
  }

  WeightedGraphT insertEdges(std::vector<WeightedEdge<W>> Edges) const {
    return insertEdges(std::move(Edges), [](W, W New) { return New; });
  }

  /// Delete the given (src, dst) pairs.
  WeightedGraphT deleteEdges(std::vector<EdgePair> Edges) const {
    if (Edges.empty())
      return *this;
    auto Weighted = tabulate(Edges.size(), [&](size_t I) {
      return WeightedEdge<W>{Edges[I].first, Edges[I].second, W()};
    });
    auto Pairs = groupBySource(std::move(Weighted));
    Node *Batch = VT::buildSorted(Pairs.data(), Pairs.size());
    Node *Mine = Root;
    VT::retain(Mine);
    Node *NewRoot = VT::updateExisting(
        Mine, Batch, [](EdgeSet Old, EdgeSet Del) {
          return EdgeSet::minus(std::move(Old), std::move(Del));
        });
    return WeightedGraphT(NewRoot);
  }

  /// Parallel traversal over (vertex, edge set) entries, mirroring the
  /// unweighted snapshot's surface.
  template <class F> void forEachVertex(const F &Fn) const {
    VT::forEachPar(Root, Fn);
  }

  size_t memoryBytes() const { return memoryRec(Root); }

private:
  static std::vector<std::pair<VertexId, EdgeSet>>
  groupBySource(std::vector<WeightedEdge<W>> Edges) {
    parallelSort(Edges, [](const WeightedEdge<W> &A,
                           const WeightedEdge<W> &B) {
      return std::tie(A.Src, A.Dst) < std::tie(B.Src, B.Dst);
    });
    // Last weight wins among duplicates of the same (src, dst).
    auto E = filterIndex(
        Edges.size(), [&](size_t I) { return Edges[I]; },
        [&](size_t I) {
          return I + 1 == Edges.size() || Edges[I].Src != Edges[I + 1].Src ||
                 Edges[I].Dst != Edges[I + 1].Dst;
        });
    auto Starts = filterIndex(
        E.size(), [&](size_t I) { return I; },
        [&](size_t I) { return I == 0 || E[I].Src != E[I - 1].Src; });
    auto Dst = tabulate(E.size(), [&](size_t I) {
      return std::pair<VertexId, W>{E[I].Dst, E[I].Weight};
    });
    std::vector<std::pair<VertexId, EdgeSet>> Pairs(Starts.size());
    parallelFor(0, Starts.size(), [&](size_t G) {
      size_t Lo = Starts[G];
      size_t Hi = (G + 1 < Starts.size()) ? Starts[G + 1] : E.size();
      Pairs[G] = {E[Lo].Src,
                  EdgeSet::buildSorted(Dst.data() + Lo, Hi - Lo)};
    });
    return Pairs;
  }

  static size_t memoryRec(const Node *N) {
    if (!N)
      return 0;
    size_t Self = sizeof(Node) + N->Val.memoryBytes();
    if (N->Size < VT::SeqCutoff)
      return Self + memoryRec(N->Left) + memoryRec(N->Right);
    size_t L = 0, R = 0;
    parallelDo([&] { L = memoryRec(N->Left); },
               [&] { R = memoryRec(N->Right); });
    return Self + L + R;
  }

  Node *Root = nullptr;
};

using WeightedGraph = WeightedGraphT<double>;

} // namespace aspen

#endif // ASPEN_GRAPH_WEIGHTED_GRAPH_H
