//===- graph/graph.h - Aspen graph snapshots -------------------------------===//
//
// The tree-of-trees graph representation of Section 5: a purely-functional
// vertex-tree mapping vertex ids to edge sets (C-trees by default), with
// the vertex tree augmented by edge counts so numEdges() is O(1). A
// GraphSnapshotT value is an immutable snapshot; "updates" return new
// snapshots sharing structure with the old one.
//
// Batch updates follow Section 5: sort the batch, build an edge set per
// distinct source, and MultiInsert into the vertex tree combining with
// edge-set Union (insertions) or Difference (deletions). O(k log n) work,
// polylog depth.
//
// Flat snapshots (Section 5.1) are arrays of per-vertex edge sets built in
// one O(n)-work traversal; they give edgeMap O(1) vertex access like CSR.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GRAPH_GRAPH_H
#define ASPEN_GRAPH_GRAPH_H

#include "ctree/ctree.h"
#include "graph/uncompressed_set.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <optional>
#include <vector>

namespace aspen {

/// Borrowed-scratch builder for grouped (vertex, edge set) batches — the
/// shared lifetime protocol of the span batch paths and the sharded
/// store's shard merges. Entries are placement-new'd into raw scratch
/// and destroyed (sets released, block returned to the worker cache) on
/// destruction; merge the finished batch with
/// GraphSnapshotT::insertGrouped / deleteGrouped. Keys must be strictly
/// increasing across the filled range.
template <class EdgeSet> class GroupedBatchT {
public:
  using PairT = std::pair<VertexId, EdgeSet>;

  explicit GroupedBatchT(size_t Groups)
      : Mem(static_cast<PairT *>(
            ctxAcquire(nullptr, Groups * sizeof(PairT), Cap))) {}
  GroupedBatchT(const GroupedBatchT &) = delete;
  GroupedBatchT &operator=(const GroupedBatchT &) = delete;
  ~GroupedBatchT() {
    for (size_t I = 0; I < N; ++I)
      Mem[I].~PairT();
    ctxRelease(nullptr, Mem, Cap);
  }

  /// Sequential append.
  void emplaceBack(VertexId V, EdgeSet S) {
    new (&Mem[N]) PairT(V, std::move(S));
    ++N;
  }

  /// Indexed construction for parallel fills: call setSize(Groups)
  /// first, then construct every slot in [0, Groups) exactly once
  /// before the next use (destruction included).
  void emplaceAt(size_t I, VertexId V, EdgeSet S) {
    new (&Mem[I]) PairT(V, std::move(S));
  }
  void setSize(size_t Size) { N = Size; }

  const PairT *data() const { return Mem; }
  size_t size() const { return N; }

private:
  PairT *Mem;
  size_t Cap;
  size_t N = 0;
};

/// An immutable graph snapshot over edge sets of type \p EdgeSet
/// (CTreeSet<VertexId, Codec> or UncompressedSet<VertexId>).
template <class EdgeSet> class GraphSnapshotT {
public:
  /// Vertex-tree entry: vertex id -> edge set, augmented with edge counts.
  struct VertexEntry {
    using KeyT = VertexId;
    using ValT = EdgeSet;
    using AugT = uint64_t;
    static bool less(VertexId A, VertexId B) { return A < B; }
    static AugT augOfEntry(const KeyT &, const ValT &V) { return V.size(); }
    static AugT augIdentity() { return 0; }
    static AugT augCombine(AugT A, AugT B) { return A + B; }
  };

  using VT = Tree<VertexEntry>;
  using Node = typename VT::Node;

  GraphSnapshotT() = default;
  /// Adopts \p Root.
  explicit GraphSnapshotT(Node *Root) : Root(Root) {}

  GraphSnapshotT(const GraphSnapshotT &O) : Root(O.Root) {
    VT::retain(Root);
  }
  GraphSnapshotT(GraphSnapshotT &&O) noexcept : Root(O.Root) {
    O.Root = nullptr;
  }
  GraphSnapshotT &operator=(const GraphSnapshotT &O) {
    if (this != &O) {
      VT::retain(O.Root);
      VT::release(Root);
      Root = O.Root;
    }
    return *this;
  }
  GraphSnapshotT &operator=(GraphSnapshotT &&O) noexcept {
    if (this != &O) {
      VT::release(Root);
      Root = O.Root;
      O.Root = nullptr;
    }
    return *this;
  }
  ~GraphSnapshotT() { VT::release(Root); }

  //===--------------------------------------------------------------------===
  // Construction.
  //===--------------------------------------------------------------------===

  /// BuildGraph (Section 10.4): a graph over vertices [0, N) containing
  /// the given directed edges. Vertices with no edges are materialized
  /// with empty edge sets.
  static GraphSnapshotT fromEdges(VertexId N, std::vector<EdgePair> Edges) {
    parallelSort(Edges);
    auto E = filterIndex(
        Edges.size(), [&](size_t I) { return Edges[I]; },
        [&](size_t I) { return I == 0 || Edges[I] != Edges[I - 1]; });
    // Destination array, contiguous per source.
    auto Dst = tabulate(E.size(), [&](size_t I) { return E[I].second; });
    // Group boundaries by source.
    auto Starts = filterIndex(
        E.size(), [&](size_t I) { return I; },
        [&](size_t I) {
          return I == 0 || E[I].first != E[I - 1].first;
        });
    std::vector<std::pair<VertexId, EdgeSet>> Pairs(N);
    parallelFor(0, N, [&](size_t V) {
      Pairs[V] = {VertexId(V), EdgeSet()};
    });
    parallelFor(0, Starts.size(), [&](size_t G) {
      size_t Lo = Starts[G];
      size_t Hi = (G + 1 < Starts.size()) ? Starts[G + 1] : E.size();
      VertexId Src = E[Lo].first;
      assert(Src < N && "edge endpoint out of vertex range");
      Pairs[Src].second = EdgeSet::buildSorted(Dst.data() + Lo, Hi - Lo);
    });
    return GraphSnapshotT(VT::buildSorted(Pairs.data(), Pairs.size()));
  }

  //===--------------------------------------------------------------------===
  // Basic queries (Section 5, "Basic Graph Operations").
  //===--------------------------------------------------------------------===

  /// Number of vertices, O(1).
  size_t numVertices() const { return VT::size(Root); }

  /// Number of directed edges via the augmented vertex tree, O(1).
  uint64_t numEdges() const { return VT::aug(Root); }

  /// Upper bound for dense vertex-indexed arrays (max id + 1).
  VertexId vertexUniverse() const {
    const Node *L = VT::last(Root);
    return L ? L->Key + 1 : 0;
  }

  bool hasVertex(VertexId V) const {
    return VT::findNode(Root, V) != nullptr;
  }

  /// Copy of the edge set of \p V (empty if V is absent). O(log n).
  EdgeSet findVertex(VertexId V) const {
    const Node *N = VT::findNode(Root, V);
    return N ? N->Val : EdgeSet();
  }

  /// Borrowed (non-owning, no refcount traffic) view of \p V's edge set;
  /// valid while this snapshot is alive. The uniform entry point for
  /// cursor-based neighbor iteration: its sequential traversals stream
  /// chunk contents through the codec's block-decoded bulk iterate
  /// (encoding/varint_block.h), so edge scans decode many neighbors per
  /// step instead of one varint at a time.
  typename EdgeSet::View edgesView(VertexId V) const {
    const Node *N = VT::findNode(Root, V);
    return N ? N->Val.view() : typename EdgeSet::View{};
  }

  /// Streaming cursor over \p V's neighbors (empty for absent vertices);
  /// this snapshot must outlive it. Mirrors the graph views' cursor
  /// surface so snapshot holders need not build a view for one vertex.
  typename EdgeSet::View::Cursor neighborCursor(VertexId V) const {
    return edgesView(V).cursor();
  }

  /// Degree of \p V; O(log n) lookup then O(1).
  uint64_t degree(VertexId V) const {
    const Node *N = VT::findNode(Root, V);
    return N ? N->Val.size() : 0;
  }

  Node *root() const { return Root; }

  /// Parallel traversal over (vertex, edge set) entries.
  template <class F> void forEachVertex(const F &Fn) const {
    VT::forEachPar(Root, Fn);
  }

  //===--------------------------------------------------------------------===
  // Functional batch updates (Section 5, "Batch Updates").
  //===--------------------------------------------------------------------===

  /// New snapshot with \p Edges inserted (duplicates combined). Sources
  /// not yet present are created.
  GraphSnapshotT insertEdges(std::vector<EdgePair> Edges) const {
    if (Edges.empty())
      return *this;
    auto Pairs = groupBySource(std::move(Edges));
    return insertGrouped(Pairs.data(), Pairs.size());
  }

  /// New snapshot with \p Edges removed. Vertices are kept even when their
  /// edge sets become empty (the paper makes singleton removal optional;
  /// see removeIsolatedVertices()). Unknown sources are ignored.
  GraphSnapshotT deleteEdges(std::vector<EdgePair> Edges) const {
    if (Edges.empty())
      return *this;
    auto Pairs = groupBySource(std::move(Edges));
    return deleteGrouped(Pairs.data(), Pairs.size());
  }

  //===--------------------------------------------------------------------===
  // Batch routing helpers. The sharded store's shard merges group their
  // sub-batches themselves (counting sort over shard-local ids) and
  // merge through insertGrouped/deleteGrouped; the versioned single
  // store routes its writer batches through the span paths, which group
  // through borrowed scratch so steady-state ingest allocates only the
  // functional-tree structure itself.
  //===--------------------------------------------------------------------===

  /// MultiInsert of a pre-grouped batch: \p Pairs sorted by vertex id with
  /// one entry per distinct source. Duplicate-source behavior matches
  /// insertEdges (sets are unioned).
  GraphSnapshotT insertGrouped(const std::pair<VertexId, EdgeSet> *Pairs,
                               size_t N) const {
    if (N == 0)
      return *this;
    Node *Mine = Root;
    VT::retain(Mine);
    Node *NewRoot = VT::multiInsert(
        Mine, Pairs, N, [](EdgeSet Old, EdgeSet New) {
          return EdgeSet::setUnion(std::move(Old), std::move(New));
        });
    return GraphSnapshotT(NewRoot);
  }

  /// Grouped counterpart of deleteEdges: subtract each set from its
  /// source's edge set; unknown sources are ignored.
  GraphSnapshotT deleteGrouped(const std::pair<VertexId, EdgeSet> *Pairs,
                               size_t N) const {
    if (N == 0)
      return *this;
    Node *Batch = VT::buildSorted(Pairs, N);
    Node *Mine = Root;
    VT::retain(Mine);
    Node *NewRoot = VT::updateExisting(
        Mine, Batch, [](EdgeSet Old, EdgeSet Del) {
          return EdgeSet::setDifference(std::move(Old), std::move(Del));
        });
    return GraphSnapshotT(NewRoot);
  }

  /// insertEdges over a caller-owned mutable span: sorts \p Edges in
  /// place and groups through borrowed scratch (no input-sized heap
  /// allocation; the new tree structure is the only durable allocation).
  GraphSnapshotT insertEdgesSpan(EdgePair *Edges, size_t K) const {
    return combineSpan(Edges, K, /*Insert=*/true);
  }

  /// deleteEdges over a caller-owned mutable span (sorted in place).
  GraphSnapshotT deleteEdgesSpan(EdgePair *Edges, size_t K) const {
    return combineSpan(Edges, K, /*Insert=*/false);
  }

  /// New snapshot containing the additional vertices (with empty edge
  /// sets); existing vertices keep their edges.
  GraphSnapshotT insertVertices(std::vector<VertexId> Vs) const {
    parallelSort(Vs);
    Vs.erase(std::unique(Vs.begin(), Vs.end()), Vs.end());
    auto Pairs = tabulate(Vs.size(), [&](size_t I) {
      return std::pair<VertexId, EdgeSet>{Vs[I], EdgeSet()};
    });
    Node *Mine = Root;
    VT::retain(Mine);
    Node *NewRoot =
        VT::multiInsert(Mine, Pairs.data(), Pairs.size(),
                        [](EdgeSet Old, EdgeSet) { return Old; });
    return GraphSnapshotT(NewRoot);
  }

  /// New snapshot without the given vertices (and their out-edges). Edges
  /// *to* deleted vertices stored at other vertices are not removed; for
  /// symmetric graphs delete the incident edges first.
  GraphSnapshotT deleteVertices(std::vector<VertexId> Vs) const {
    parallelSort(Vs);
    Vs.erase(std::unique(Vs.begin(), Vs.end()), Vs.end());
    auto Pairs = tabulate(Vs.size(), [&](size_t I) {
      return std::pair<VertexId, EdgeSet>{Vs[I], EdgeSet()};
    });
    Node *Batch = VT::buildSorted(Pairs.data(), Pairs.size());
    Node *Mine = Root;
    VT::retain(Mine);
    return GraphSnapshotT(VT::difference(Mine, Batch));
  }

  /// Drop all degree-0 vertices.
  GraphSnapshotT removeIsolatedVertices() const {
    Node *Mine = Root;
    VT::retain(Mine);
    return GraphSnapshotT(VT::filter(
        Mine, [](VertexId, const EdgeSet &S) { return !S.empty(); }));
  }

  //===--------------------------------------------------------------------===
  // Introspection.
  //===--------------------------------------------------------------------===

  /// Exact heap footprint: vertex-tree nodes plus all edge-set memory.
  size_t memoryBytes() const { return memoryRec(Root); }

  /// Structural audit of the vertex tree and every edge set.
  bool checkInvariants() const {
    if (!VT::validate(Root))
      return false;
    std::atomic<bool> Ok{true};
    VT::forEachPar(Root, [&](VertexId, const EdgeSet &S) {
      if (!S.checkInvariants())
        Ok.store(false, std::memory_order_relaxed);
    });
    return Ok.load();
  }

private:
  /// Shared core of the span batch paths: in-place sort + dedup, grouping
  /// and per-source set building in borrowed scratch, then the grouped
  /// merge. Pairs storage is raw scratch; entries are placement-new'd and
  /// destroyed explicitly.
  GraphSnapshotT combineSpan(EdgePair *Edges, size_t K, bool Insert) const {
    if (K == 0)
      return *this;
    parallelSort(Edges, K);
    K = size_t(std::unique(Edges, Edges + K) - Edges);
    std::optional<GroupedBatchT<EdgeSet>> Pairs;
    {
      // Grouping scratch scoped to return to the worker caches before
      // the merge: the merge's chunk-op scratch must not contend with
      // input-sized blocks held for the whole call.
      CtxArray<uint32_t> Starts(K);
      uint32_t *StartsP = Starts.data();
      size_t Groups = filterIndexInto(
          K, [&](size_t I) { return uint32_t(I); },
          [&](size_t I) {
            return I == 0 || Edges[I].first != Edges[I - 1].first;
          },
          StartsP);
      CtxArray<VertexId> Dst(K);
      VertexId *DstP = Dst.data();
      parallelFor(0, K, [&](size_t I) { DstP[I] = Edges[I].second; });
      Pairs.emplace(Groups);
      Pairs->setSize(Groups);
      parallelFor(0, Groups, [&](size_t G) {
        size_t Lo = StartsP[G];
        size_t Hi = (G + 1 < Groups) ? StartsP[G + 1] : K;
        Pairs->emplaceAt(G, Edges[Lo].first,
                         EdgeSet::buildSorted(DstP + Lo, Hi - Lo));
      });
    }
    return Insert ? insertGrouped(Pairs->data(), Pairs->size())
                  : deleteGrouped(Pairs->data(), Pairs->size());
  }

  /// Sort + dedup a batch and build one edge set per distinct source.
  static std::vector<std::pair<VertexId, EdgeSet>>
  groupBySource(std::vector<EdgePair> Edges) {
    parallelSort(Edges);
    auto E = filterIndex(
        Edges.size(), [&](size_t I) { return Edges[I]; },
        [&](size_t I) { return I == 0 || Edges[I] != Edges[I - 1]; });
    auto Dst = tabulate(E.size(), [&](size_t I) { return E[I].second; });
    auto Starts = filterIndex(
        E.size(), [&](size_t I) { return I; },
        [&](size_t I) {
          return I == 0 || E[I].first != E[I - 1].first;
        });
    std::vector<std::pair<VertexId, EdgeSet>> Pairs(Starts.size());
    parallelFor(0, Starts.size(), [&](size_t G) {
      size_t Lo = Starts[G];
      size_t Hi = (G + 1 < Starts.size()) ? Starts[G + 1] : E.size();
      Pairs[G] = {E[Lo].first,
                  EdgeSet::buildSorted(Dst.data() + Lo, Hi - Lo)};
    });
    return Pairs;
  }

  static size_t memoryRec(const Node *N) {
    if (!N)
      return 0;
    size_t Self = sizeof(Node) + N->Val.memoryBytes();
    if (N->Size < VT::SeqCutoff)
      return Self + memoryRec(N->Left) + memoryRec(N->Right);
    size_t L = 0, R = 0;
    parallelDo([&] { L = memoryRec(N->Left); },
               [&] { R = memoryRec(N->Right); });
    return Self + L + R;
  }

  Node *Root = nullptr;
};

/// Flat snapshot (Section 5.1): a dense array of per-vertex edge-set
/// views plus degrees, giving O(1) vertex access like CSR. Slots are
/// non-owning (trivially destructible); the retained source snapshot
/// keeps every edge tree alive, so construction and destruction incur no
/// per-vertex reference-count traffic. Built in O(n) work, O(log n)
/// depth.
template <class EdgeSet> class FlatSnapshotT {
public:
  using SetView = typename EdgeSet::View;

  FlatSnapshotT() = default;

  explicit FlatSnapshotT(GraphSnapshotT<EdgeSet> G)
      : Owner(std::move(G)), NumEdgesV(Owner.numEdges()) {
    VertexId N = Owner.vertexUniverse();
    Slots.resize(N);
    Degrees.resize(N);
    using VT = typename GraphSnapshotT<EdgeSet>::VT;
    VT::forEachPar(Owner.root(), [&](VertexId V, const EdgeSet &S) {
      Slots[V] = S.view();
      Degrees[V] = uint32_t(S.size());
    });
  }

  VertexId numVertices() const { return VertexId(Slots.size()); }
  uint64_t numEdges() const { return NumEdgesV; }
  uint64_t degree(VertexId V) const { return Degrees[V]; }
  SetView edges(VertexId V) const { return Slots[V]; }

  /// Bytes used by the flat array itself (Table 2, "Flat Snap.").
  size_t memoryBytes() const {
    return Slots.size() * (sizeof(SetView) + sizeof(uint32_t));
  }

private:
  GraphSnapshotT<EdgeSet> Owner;
  std::vector<SetView> Slots;
  std::vector<uint32_t> Degrees;
  uint64_t NumEdgesV = 0;
};

//===----------------------------------------------------------------------===
// Graph views: the uniform neighbor-access interface consumed by edgeMap
// and the algorithms (degree / indexed map / early-exit iteration). Both
// Aspen views and the static baselines implement this shape.
//===----------------------------------------------------------------------===

/// View that resolves vertices through the vertex tree on each access
/// (O(log n) per vertex) - the default for local algorithms.
template <class EdgeSet> class TreeGraphView {
public:
  using NeighborCursor = typename EdgeSet::View::Cursor;

  explicit TreeGraphView(const GraphSnapshotT<EdgeSet> &G)
      : G(&G), Universe(G.vertexUniverse()) {}

  VertexId numVertices() const { return Universe; }
  uint64_t numEdges() const { return G->numEdges(); }
  uint64_t degree(VertexId V) const { return G->degree(V); }

  /// Streaming cursor over \p V's neighbors (graph must stay alive).
  NeighborCursor neighborCursor(VertexId V) const {
    return G->edgesView(V).cursor();
  }

  template <class F>
  void mapNeighborsIndexed(VertexId V, const F &Fn) const {
    G->edgesView(V).forEachIndexed(Fn);
  }

  template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
    G->edgesView(V).forEachSeq(Fn);
  }

  template <class F> bool iterNeighborsCond(VertexId V, const F &Fn) const {
    return G->edgesView(V).iterCond(Fn);
  }

private:
  const GraphSnapshotT<EdgeSet> *G;
  VertexId Universe;
};

/// View over a flat snapshot: O(1) vertex access, as in CSR.
template <class EdgeSet> class FlatGraphView {
public:
  using NeighborCursor = typename EdgeSet::View::Cursor;

  explicit FlatGraphView(const FlatSnapshotT<EdgeSet> &FS) : FS(&FS) {}

  VertexId numVertices() const { return FS->numVertices(); }
  uint64_t numEdges() const { return FS->numEdges(); }
  uint64_t degree(VertexId V) const { return FS->degree(V); }

  /// Streaming cursor over \p V's neighbors (snapshot must stay alive).
  NeighborCursor neighborCursor(VertexId V) const {
    return FS->edges(V).cursor();
  }

  template <class F>
  void mapNeighborsIndexed(VertexId V, const F &Fn) const {
    FS->edges(V).forEachIndexed(Fn);
  }

  template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
    FS->edges(V).forEachSeq(Fn);
  }

  template <class F> bool iterNeighborsCond(VertexId V, const F &Fn) const {
    return FS->edges(V).iterCond(Fn);
  }

private:
  const FlatSnapshotT<EdgeSet> *FS;
};

/// Default Aspen configuration: C-trees with difference encoding.
using Graph = GraphSnapshotT<CTreeSet<VertexId, DeltaByteCodec>>;
/// C-trees without difference encoding ("Aspen (No DE)").
using GraphNoDE = GraphSnapshotT<CTreeSet<VertexId, RawCodec>>;
/// Plain purely-functional trees ("Aspen Uncomp.").
using GraphUncompressed = GraphSnapshotT<UncompressedSet<VertexId>>;

using FlatSnapshot = FlatSnapshotT<CTreeSet<VertexId, DeltaByteCodec>>;

} // namespace aspen

#endif // ASPEN_GRAPH_GRAPH_H
