//===- graph/graph.h - Aspen graph snapshots -------------------------------===//
//
// The tree-of-trees graph representation of Section 5: a purely-functional
// vertex-tree mapping vertex ids to edge sets (C-trees by default), with
// the vertex tree augmented by edge counts so numEdges() is O(1). A
// GraphSnapshotT value is an immutable snapshot; "updates" return new
// snapshots sharing structure with the old one.
//
// Batch updates follow Section 5: sort the batch, build an edge set per
// distinct source, and MultiInsert into the vertex tree combining with
// edge-set Union (insertions) or Difference (deletions). O(k log n) work,
// polylog depth.
//
// Flat snapshots (Section 5.1) give edgeMap O(1) vertex access like CSR.
// They are stored as refcounted fixed-size pages of (edge-set view,
// degree) slots: a full build is one write-once O(n)-work traversal, and
// FlatSnapshotT::refresh derives the flat view of a successor snapshot in
// O(touched + touched pages) work, sharing every untouched page with the
// predecessor (copy-on-write). The versioned stores keep a hot-epoch flat
// snapshot continuously maintained this way (acquireFlat()).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GRAPH_GRAPH_H
#define ASPEN_GRAPH_GRAPH_H

#include "ctree/ctree.h"
#include "graph/hybrid_set.h"
#include "graph/uncompressed_set.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <optional>
#include <type_traits>
#include <vector>

namespace aspen {

/// Borrowed-scratch builder for grouped (vertex, edge set) batches — the
/// shared lifetime protocol of the span batch paths and the sharded
/// store's shard merges. Entries are placement-new'd into raw scratch
/// and destroyed (sets released, block returned to the worker cache) on
/// destruction; merge the finished batch with
/// GraphSnapshotT::insertGrouped / deleteGrouped. Keys must be strictly
/// increasing across the filled range.
template <class EdgeSet> class GroupedBatchT {
public:
  using PairT = std::pair<VertexId, EdgeSet>;

  explicit GroupedBatchT(size_t Groups)
      : Mem(static_cast<PairT *>(
            ctxAcquire(nullptr, Groups * sizeof(PairT), Cap))) {}
  GroupedBatchT(const GroupedBatchT &) = delete;
  GroupedBatchT &operator=(const GroupedBatchT &) = delete;
  ~GroupedBatchT() {
    for (size_t I = 0; I < N; ++I)
      Mem[I].~PairT();
    ctxRelease(nullptr, Mem, Cap);
  }

  /// Sequential append.
  void emplaceBack(VertexId V, EdgeSet S) {
    new (&Mem[N]) PairT(V, std::move(S));
    ++N;
  }

  /// Indexed construction for parallel fills: call setSize(Groups)
  /// first, then construct every slot in [0, Groups) exactly once
  /// before the next use (destruction included).
  void emplaceAt(size_t I, VertexId V, EdgeSet S) {
    new (&Mem[I]) PairT(V, std::move(S));
  }
  void setSize(size_t Size) { N = Size; }

  const PairT *data() const { return Mem; }
  size_t size() const { return N; }

private:
  PairT *Mem;
  size_t Cap;
  size_t N = 0;
};

/// An immutable graph snapshot over edge sets of type \p EdgeSet
/// (CTreeSet<VertexId, Codec> or UncompressedSet<VertexId>).
template <class EdgeSet> class GraphSnapshotT {
public:
  /// Vertex-tree entry: vertex id -> edge set, augmented with edge counts.
  struct VertexEntry {
    using KeyT = VertexId;
    using ValT = EdgeSet;
    using AugT = uint64_t;
    static bool less(VertexId A, VertexId B) { return A < B; }
    static AugT augOfEntry(const KeyT &, const ValT &V) { return V.size(); }
    static AugT augIdentity() { return 0; }
    static AugT augCombine(AugT A, AugT B) { return A + B; }
  };

  using VT = Tree<VertexEntry>;
  using Node = typename VT::Node;

  /// Edge-set construction parameters of this snapshot's lineage. Every
  /// edge set built on behalf of this snapshot (initial build, batch
  /// spans, grouped merges) uses the same params, which functional
  /// updates inherit — sets that the set algebra combines are therefore
  /// always structurally compatible (e.g. same C-tree chunk mask).
  using BuildParams = typename EdgeSet::BuildParams;

  GraphSnapshotT() = default;
  /// Empty snapshot whose future updates build edge sets under \p P.
  explicit GraphSnapshotT(BuildParams P) : Params(P) {}
  /// Adopts \p Root.
  explicit GraphSnapshotT(Node *Root, BuildParams P = {})
      : Root(Root), Params(P) {}

  GraphSnapshotT(const GraphSnapshotT &O) : Root(O.Root), Params(O.Params) {
    VT::retain(Root);
  }
  GraphSnapshotT(GraphSnapshotT &&O) noexcept
      : Root(O.Root), Params(O.Params) {
    O.Root = nullptr;
  }
  GraphSnapshotT &operator=(const GraphSnapshotT &O) {
    if (this != &O) {
      VT::retain(O.Root);
      VT::release(Root);
      Root = O.Root;
      Params = O.Params;
    }
    return *this;
  }
  GraphSnapshotT &operator=(GraphSnapshotT &&O) noexcept {
    if (this != &O) {
      VT::release(Root);
      Root = O.Root;
      Params = O.Params;
      O.Root = nullptr;
    }
    return *this;
  }
  ~GraphSnapshotT() { VT::release(Root); }

  BuildParams buildParams() const { return Params; }

  //===--------------------------------------------------------------------===
  // Construction.
  //===--------------------------------------------------------------------===

  /// BuildGraph (Section 10.4): a graph over vertices [0, N) containing
  /// the given directed edges. Vertices with no edges are materialized
  /// with empty edge sets.
  static GraphSnapshotT fromEdges(VertexId N, std::vector<EdgePair> Edges,
                                  BuildParams P = {}) {
    parallelSort(Edges);
    auto E = filterIndex(
        Edges.size(), [&](size_t I) { return Edges[I]; },
        [&](size_t I) { return I == 0 || Edges[I] != Edges[I - 1]; });
    // Destination array, contiguous per source.
    auto Dst = tabulate(E.size(), [&](size_t I) { return E[I].second; });
    // Group boundaries by source.
    auto Starts = filterIndex(
        E.size(), [&](size_t I) { return I; },
        [&](size_t I) {
          return I == 0 || E[I].first != E[I - 1].first;
        });
    std::vector<std::pair<VertexId, EdgeSet>> Pairs(N);
    parallelFor(0, N, [&](size_t V) {
      Pairs[V] = {VertexId(V), EdgeSet()};
    });
    parallelFor(0, Starts.size(), [&](size_t G) {
      size_t Lo = Starts[G];
      size_t Hi = (G + 1 < Starts.size()) ? Starts[G + 1] : E.size();
      VertexId Src = E[Lo].first;
      assert(Src < N && "edge endpoint out of vertex range");
      Pairs[Src].second = EdgeSet::buildSorted(Dst.data() + Lo, Hi - Lo, P);
    });
    return GraphSnapshotT(VT::buildSorted(Pairs.data(), Pairs.size()), P);
  }

  //===--------------------------------------------------------------------===
  // Basic queries (Section 5, "Basic Graph Operations").
  //===--------------------------------------------------------------------===

  /// Number of vertices, O(1).
  size_t numVertices() const { return VT::size(Root); }

  /// Number of directed edges via the augmented vertex tree, O(1).
  uint64_t numEdges() const { return VT::aug(Root); }

  /// Upper bound for dense vertex-indexed arrays (max id + 1).
  VertexId vertexUniverse() const {
    const Node *L = VT::last(Root);
    return L ? L->Key + 1 : 0;
  }

  bool hasVertex(VertexId V) const {
    return VT::findNode(Root, V) != nullptr;
  }

  /// Copy of the edge set of \p V (empty if V is absent). O(log n).
  EdgeSet findVertex(VertexId V) const {
    const Node *N = VT::findNode(Root, V);
    return N ? N->Val : EdgeSet();
  }

  /// Borrowed (non-owning, no refcount traffic) view of \p V's edge set;
  /// valid while this snapshot is alive. The uniform entry point for
  /// cursor-based neighbor iteration: its sequential traversals stream
  /// chunk contents through the codec's block-decoded bulk iterate
  /// (encoding/varint_block.h), so edge scans decode many neighbors per
  /// step instead of one varint at a time.
  typename EdgeSet::View edgesView(VertexId V) const {
    const Node *N = VT::findNode(Root, V);
    return N ? N->Val.view() : typename EdgeSet::View{};
  }

  /// Streaming cursor over \p V's neighbors (empty for absent vertices);
  /// this snapshot must outlive it. Mirrors the graph views' cursor
  /// surface so snapshot holders need not build a view for one vertex.
  typename EdgeSet::View::Cursor neighborCursor(VertexId V) const {
    return edgesView(V).cursor();
  }

  /// Degree of \p V; O(log n) lookup then O(1).
  uint64_t degree(VertexId V) const {
    const Node *N = VT::findNode(Root, V);
    return N ? N->Val.size() : 0;
  }

  /// Edge-existence probe: O(1) on hot hybrid vertices (hash sidecar),
  /// a chunk/tree membership test otherwise.
  bool containsEdge(VertexId U, VertexId X) const {
    return edgesView(U).contains(X);
  }

  /// True when containsEdge(\p U, ...) probes are O(1).
  bool hasFastProbe(VertexId U) const {
    return edgesView(U).hasFastProbe();
  }

  Node *root() const { return Root; }

  /// Parallel traversal over (vertex, edge set) entries.
  template <class F> void forEachVertex(const F &Fn) const {
    VT::forEachPar(Root, Fn);
  }

  //===--------------------------------------------------------------------===
  // Functional batch updates (Section 5, "Batch Updates").
  //===--------------------------------------------------------------------===

  /// New snapshot with \p Edges inserted (duplicates combined). Sources
  /// not yet present are created. The owned vector doubles as the span
  /// path's mutable workspace, so grouping runs through combineSpan's
  /// borrowed scratch and makes no input-sized heap allocations.
  GraphSnapshotT insertEdges(std::vector<EdgePair> Edges) const {
    return combineSpan(Edges.data(), Edges.size(), /*Insert=*/true,
                       nullptr);
  }

  /// New snapshot with \p Edges removed. Vertices are kept even when their
  /// edge sets become empty (the paper makes singleton removal optional;
  /// see removeIsolatedVertices()). Unknown sources are ignored.
  GraphSnapshotT deleteEdges(std::vector<EdgePair> Edges) const {
    return combineSpan(Edges.data(), Edges.size(), /*Insert=*/false,
                       nullptr);
  }

  //===--------------------------------------------------------------------===
  // Batch routing helpers. The sharded store's shard merges group their
  // sub-batches themselves (counting sort over shard-local ids) and
  // merge through insertGrouped/deleteGrouped; the versioned single
  // store routes its writer batches through the span paths, which group
  // through borrowed scratch so steady-state ingest allocates only the
  // functional-tree structure itself.
  //===--------------------------------------------------------------------===

  /// MultiInsert of a pre-grouped batch: \p Pairs sorted by vertex id with
  /// one entry per distinct source. Duplicate-source behavior matches
  /// insertEdges (sets are unioned).
  GraphSnapshotT insertGrouped(const std::pair<VertexId, EdgeSet> *Pairs,
                               size_t N) const {
    if (N == 0)
      return *this;
    Node *Mine = Root;
    VT::retain(Mine);
    Node *NewRoot = VT::multiInsert(
        Mine, Pairs, N, [](EdgeSet Old, EdgeSet New) {
          return EdgeSet::setUnion(std::move(Old), std::move(New));
        });
    return GraphSnapshotT(NewRoot, Params);
  }

  /// Grouped counterpart of deleteEdges: subtract each set from its
  /// source's edge set; unknown sources are ignored.
  GraphSnapshotT deleteGrouped(const std::pair<VertexId, EdgeSet> *Pairs,
                               size_t N) const {
    if (N == 0)
      return *this;
    Node *Batch = VT::buildSorted(Pairs, N);
    Node *Mine = Root;
    VT::retain(Mine);
    Node *NewRoot = VT::updateExisting(
        Mine, Batch, [](EdgeSet Old, EdgeSet Del) {
          return EdgeSet::setDifference(std::move(Old), std::move(Del));
        });
    return GraphSnapshotT(NewRoot, Params);
  }

  /// insertEdges over a caller-owned mutable span: sorts \p Edges in
  /// place and groups through borrowed scratch (no input-sized heap
  /// allocation; the new tree structure is the only durable allocation).
  /// When \p TouchedOut is non-null it receives the batch's distinct
  /// source ids in ascending order - the per-epoch touched-vertex digest
  /// the versioned stores feed to FlatSnapshotT::refresh. The digest is
  /// free to produce: the span path already groups the batch by source.
  GraphSnapshotT
  insertEdgesSpan(EdgePair *Edges, size_t K,
                  std::vector<VertexId> *TouchedOut = nullptr) const {
    return combineSpan(Edges, K, /*Insert=*/true, TouchedOut);
  }

  /// deleteEdges over a caller-owned mutable span (sorted in place);
  /// \p TouchedOut as in insertEdgesSpan.
  GraphSnapshotT
  deleteEdgesSpan(EdgePair *Edges, size_t K,
                  std::vector<VertexId> *TouchedOut = nullptr) const {
    return combineSpan(Edges, K, /*Insert=*/false, TouchedOut);
  }

  /// New snapshot containing the additional vertices (with empty edge
  /// sets); existing vertices keep their edges.
  GraphSnapshotT insertVertices(std::vector<VertexId> Vs) const {
    parallelSort(Vs);
    Vs.erase(std::unique(Vs.begin(), Vs.end()), Vs.end());
    auto Pairs = tabulate(Vs.size(), [&](size_t I) {
      return std::pair<VertexId, EdgeSet>{Vs[I], EdgeSet()};
    });
    Node *Mine = Root;
    VT::retain(Mine);
    Node *NewRoot =
        VT::multiInsert(Mine, Pairs.data(), Pairs.size(),
                        [](EdgeSet Old, EdgeSet) { return Old; });
    return GraphSnapshotT(NewRoot, Params);
  }

  /// New snapshot without the given vertices (and their out-edges). Edges
  /// *to* deleted vertices stored at other vertices are not removed; for
  /// symmetric graphs delete the incident edges first.
  GraphSnapshotT deleteVertices(std::vector<VertexId> Vs) const {
    parallelSort(Vs);
    Vs.erase(std::unique(Vs.begin(), Vs.end()), Vs.end());
    auto Pairs = tabulate(Vs.size(), [&](size_t I) {
      return std::pair<VertexId, EdgeSet>{Vs[I], EdgeSet()};
    });
    Node *Batch = VT::buildSorted(Pairs.data(), Pairs.size());
    Node *Mine = Root;
    VT::retain(Mine);
    return GraphSnapshotT(VT::difference(Mine, Batch), Params);
  }

  /// Drop all degree-0 vertices.
  GraphSnapshotT removeIsolatedVertices() const {
    Node *Mine = Root;
    VT::retain(Mine);
    return GraphSnapshotT(VT::filter(
        Mine, [](VertexId, const EdgeSet &S) { return !S.empty(); }),
                          Params);
  }

  //===--------------------------------------------------------------------===
  // Introspection.
  //===--------------------------------------------------------------------===

  /// Exact heap footprint: vertex-tree nodes plus all edge-set memory.
  size_t memoryBytes() const { return memoryRec(Root); }

  /// Structural audit of the vertex tree and every edge set.
  bool checkInvariants() const {
    if (!VT::validate(Root))
      return false;
    std::atomic<bool> Ok{true};
    VT::forEachPar(Root, [&](VertexId, const EdgeSet &S) {
      if (!S.checkInvariants(Params))
        Ok.store(false, std::memory_order_relaxed);
    });
    return Ok.load();
  }

private:
  /// Shared core of the span batch paths: in-place sort + dedup, grouping
  /// and per-source set building in borrowed scratch, then the grouped
  /// merge. Pairs storage is raw scratch; entries are placement-new'd and
  /// destroyed explicitly.
  GraphSnapshotT combineSpan(EdgePair *Edges, size_t K, bool Insert,
                             std::vector<VertexId> *TouchedOut) const {
    if (K == 0)
      return *this;
    parallelSort(Edges, K);
    K = size_t(std::unique(Edges, Edges + K) - Edges);
    std::optional<GroupedBatchT<EdgeSet>> Pairs;
    {
      // Grouping scratch scoped to return to the worker caches before
      // the merge: the merge's chunk-op scratch must not contend with
      // input-sized blocks held for the whole call.
      CtxArray<uint32_t> Starts(K);
      uint32_t *StartsP = Starts.data();
      size_t Groups = filterIndexInto(
          K, [&](size_t I) { return uint32_t(I); },
          [&](size_t I) {
            return I == 0 || Edges[I].first != Edges[I - 1].first;
          },
          StartsP);
      CtxArray<VertexId> Dst(K);
      VertexId *DstP = Dst.data();
      parallelFor(0, K, [&](size_t I) { DstP[I] = Edges[I].second; });
      Pairs.emplace(Groups);
      Pairs->setSize(Groups);
      parallelFor(0, Groups, [&](size_t G) {
        size_t Lo = StartsP[G];
        size_t Hi = (G + 1 < Groups) ? StartsP[G + 1] : K;
        Pairs->emplaceAt(G, Edges[Lo].first,
                         EdgeSet::buildSorted(DstP + Lo, Hi - Lo, Params));
      });
      if (TouchedOut) {
        TouchedOut->resize(Groups);
        VertexId *T = TouchedOut->data();
        parallelFor(0, Groups, [&](size_t G) {
          T[G] = Pairs->data()[G].first;
        });
      }
    }
    return Insert ? insertGrouped(Pairs->data(), Pairs->size())
                  : deleteGrouped(Pairs->data(), Pairs->size());
  }

  static size_t memoryRec(const Node *N) {
    if (!N)
      return 0;
    size_t Self = sizeof(Node) + N->Val.memoryBytes();
    if (N->Size < VT::SeqCutoff)
      return Self + memoryRec(N->Left) + memoryRec(N->Right);
    size_t L = 0, R = 0;
    parallelDo([&] { L = memoryRec(N->Left); },
               [&] { R = memoryRec(N->Right); });
    return Self + L + R;
  }

  Node *Root = nullptr;
  BuildParams Params{};
};

/// Flat snapshot (Section 5.1): a dense array of per-vertex edge-set
/// views plus degrees, giving O(1) vertex access like CSR. Slots are
/// non-owning (trivially destructible); the retained source snapshot
/// keeps every edge tree alive, so construction and destruction incur no
/// per-vertex reference-count traffic.
///
/// Storage is paged copy-on-write: slots live in refcounted fixed-size
/// pages (PageSlots views + degrees each), and the page table is the only
/// per-snapshot dense array. A full build is a single write-once in-order
/// traversal of the vertex tree - every slot (materialized vertex or
/// hole) is written exactly once into uninitialized page storage, with no
/// prior O(n) zero-initialization. refresh() derives the flat view of a
/// *successor* snapshot from a predecessor's flat view in O(touched +
/// touched-pages) work: untouched pages are shared by refcount (their
/// views stay valid because a functional update only replaces the edge
/// sets of touched vertices - every other vertex keeps the identical,
/// refcounted (root, prefix) pair in the new snapshot), touched pages are
/// cloned and slot-repaired, and universe growth is filled from the tree.
/// This is what turns flat snapshots from a per-epoch batch job into the
/// continuously maintained read index behind the stores' acquireFlat().
///
/// \p SlotShift maps vertex keys to slots (slot = key >> SlotShift): 0
/// for whole-graph snapshots, log2(shards) for a sharded store's
/// per-shard flats, whose keys all share their low bits.
template <class EdgeSet> class FlatSnapshotT {
public:
  using SetView = typename EdgeSet::View;
  static_assert(std::is_trivially_copyable<SetView>::value &&
                    std::is_trivially_destructible<SetView>::value,
                "flat-snapshot slots must be trivially copyable views");

  /// Slots per page. Small enough that a batch touching a spread of
  /// vertices still shares most pages; large enough that the page table
  /// and per-page refcount stay negligible (see DESIGN.md Section 4).
  static constexpr size_t PageSlots = 1024;

  FlatSnapshotT() = default;

  explicit FlatSnapshotT(GraphSnapshotT<EdgeSet> G, unsigned SlotShift = 0)
      : Owner(std::move(G)), Shift(SlotShift), NumEdgesV(Owner.numEdges()) {
    NumSlots = slotCount(Owner.vertexUniverse());
    Pages.resize(pageCount(NumSlots));
    parallelFor(0, Pages.size(), [&](size_t P) { Pages[P] = newPage(); });
    fillFromTree(Owner.root(), 0, NumSlots, /*ClipLo=*/0);
  }

  FlatSnapshotT(const FlatSnapshotT &O)
      : Owner(O.Owner), Pages(O.Pages), NumSlots(O.NumSlots),
        Shift(O.Shift), NumEdgesV(O.NumEdgesV) {
    for (Page *P : Pages)
      retainPage(P);
  }
  FlatSnapshotT(FlatSnapshotT &&O) noexcept
      : Owner(std::move(O.Owner)), Pages(std::move(O.Pages)),
        NumSlots(O.NumSlots), Shift(O.Shift), NumEdgesV(O.NumEdgesV) {
    O.Pages.clear();
    O.NumSlots = 0;
    O.NumEdgesV = 0;
  }
  FlatSnapshotT &operator=(const FlatSnapshotT &O) {
    if (this != &O) {
      FlatSnapshotT Tmp(O);
      *this = std::move(Tmp);
    }
    return *this;
  }
  FlatSnapshotT &operator=(FlatSnapshotT &&O) noexcept {
    if (this != &O) {
      releasePages();
      Owner = std::move(O.Owner);
      Pages = std::move(O.Pages);
      NumSlots = O.NumSlots;
      Shift = O.Shift;
      NumEdgesV = O.NumEdgesV;
      O.Pages.clear();
      O.NumSlots = 0;
      O.NumEdgesV = 0;
    }
    return *this;
  }
  ~FlatSnapshotT() { releasePages(); }

  /// Flat view of \p Next derived from \p Prev's flat view.
  /// Preconditions: \p Next is a (possibly multi-batch) functional
  /// successor of Prev's snapshot, and \p TouchedKeys lists - sorted
  /// ascending, duplicate-free - every vertex whose edge set differs
  /// between the two (the union of the intervening epochs' digests).
  /// Untouched pages are shared with \p Prev; pages containing touched
  /// slots are cloned and repaired by O(log n) lookups; slots the
  /// universe grew into are filled from the tree (so a touched list that
  /// omits brand-new vertices beyond Prev's universe is still correct).
  static FlatSnapshotT refresh(const FlatSnapshotT &Prev,
                               GraphSnapshotT<EdgeSet> Next,
                               const VertexId *TouchedKeys,
                               size_t NumTouched) {
    FlatSnapshotT FS;
    FS.Owner = std::move(Next);
    FS.Shift = Prev.Shift;
    FS.NumEdgesV = FS.Owner.numEdges();
    FS.NumSlots = FS.slotCount(FS.Owner.vertexUniverse());

    const VertexId OldSlots = Prev.NumSlots;
    const size_t OldPages = Prev.Pages.size();
    const size_t NewPages = pageCount(FS.NumSlots);
    // Start fully shared; work pages are overwritten below.
    FS.Pages.resize(NewPages);
    size_t Shared = std::min(NewPages, OldPages);
    for (size_t P = 0; P < Shared; ++P) {
      FS.Pages[P] = Prev.Pages[P];
      retainPage(Prev.Pages[P]);
    }
    for (size_t P = Shared; P < NewPages; ++P)
      FS.Pages[P] = nullptr;

    // Work set: pages holding touched slots below the repair limit, plus
    // every page the universe grew into (including a partial old last
    // page). Touched keys are sorted, so page runs come out grouped.
    const VertexId RepairLimit = std::min(OldSlots, FS.NumSlots);
    struct WorkPage {
      size_t Page;
      size_t TBegin, TEnd; ///< touched-key range to repair (may be empty)
    };
    std::vector<WorkPage> Work;
    for (size_t I = 0; I < NumTouched;) {
      VertexId Slot = FS.slotOf(TouchedKeys[I]);
      assert((I == 0 || TouchedKeys[I - 1] < TouchedKeys[I]) &&
             "touched digest must be sorted and duplicate-free");
      if (Slot >= RepairLimit)
        break; // growth region (or dropped tail): handled by the tree fill
      size_t P = size_t(Slot) / PageSlots;
      size_t J = I + 1;
      while (J < NumTouched) {
        VertexId S2 = FS.slotOf(TouchedKeys[J]);
        if (S2 >= RepairLimit || size_t(S2) / PageSlots != P)
          break;
        ++J;
      }
      Work.push_back({P, I, J});
      I = J;
    }
    size_t NumTouchedPages = Work.size();
    if (FS.NumSlots > OldSlots) {
      size_t GrowFirst = size_t(OldSlots) / PageSlots;
      size_t Skip = 0; // touched pages already in the work list
      while (Skip < NumTouchedPages &&
             Work[NumTouchedPages - 1 - Skip].Page >= GrowFirst)
        ++Skip;
      for (size_t P = GrowFirst; P < NewPages; ++P) {
        bool Listed = false;
        for (size_t K = 0; K < Skip; ++K)
          Listed |= Work[NumTouchedPages - 1 - K].Page == P;
        if (!Listed)
          Work.push_back({P, 0, 0});
      }
    }

    // Clone (or allocate) every work page. Cloning copies only the
    // predecessor's valid slots; growth slots are written below.
    parallelFor(0, Work.size(), [&](size_t W) {
      size_t P = Work[W].Page;
      Page *NP = newPage();
      if (P < OldPages) {
        size_t Valid = std::min(PageSlots,
                                size_t(OldSlots) - P * PageSlots);
        std::memcpy(NP->Views, Prev.Pages[P]->Views,
                    Valid * sizeof(SetView));
        std::memcpy(NP->Degrees, Prev.Pages[P]->Degrees,
                    Valid * sizeof(uint32_t));
      }
      if (FS.Pages[P])
        releasePage(FS.Pages[P]);
      FS.Pages[P] = NP;
    });

    // Universe growth: write-once fill from the tree (covers new vertices
    // and holes alike; O(growth + log n) via clipping).
    if (FS.NumSlots > OldSlots)
      FS.fillFromTree(FS.Owner.root(), 0, FS.NumSlots, /*ClipLo=*/OldSlots);

    // Slot repair: point every touched slot at its edge set in the new
    // snapshot (deleted-to-empty and untouched-by-updateExisting sources
    // resolve through findNode just the same).
    using VT = typename GraphSnapshotT<EdgeSet>::VT;
    const typename VT::Node *Root = FS.Owner.root();
    parallelFor(0, NumTouchedPages, [&](size_t W) {
      Page *P = FS.Pages[Work[W].Page];
      for (size_t I = Work[W].TBegin; I < Work[W].TEnd; ++I) {
        VertexId Key = TouchedKeys[I];
        size_t At = size_t(FS.slotOf(Key)) % PageSlots;
        const typename VT::Node *N = VT::findNode(Root, Key);
        P->Views[At] = N ? N->Val.view() : SetView{};
        P->Degrees[At] = N ? uint32_t(N->Val.size()) : 0;
      }
    });
    return FS;
  }

  /// Slot count (== vertex universe when SlotShift is 0).
  VertexId numVertices() const { return NumSlots; }
  uint64_t numEdges() const { return NumEdgesV; }
  /// O(1). \p Slot is a vertex id >> SlotShift; must be < numVertices().
  uint64_t degree(VertexId Slot) const {
    return Pages[size_t(Slot) / PageSlots]->Degrees[size_t(Slot) % PageSlots];
  }
  SetView edges(VertexId Slot) const {
    return Pages[size_t(Slot) / PageSlots]->Views[size_t(Slot) % PageSlots];
  }

  /// The snapshot this flat view resolves (also what keeps it alive).
  const GraphSnapshotT<EdgeSet> &graph() const { return Owner; }
  unsigned slotShift() const { return Shift; }

  /// Bytes used by the flat structure itself (Table 2, "Flat Snap."):
  /// full page footprint - slot arrays plus per-page refcount header and
  /// padding - and the page table. Shared pages are counted in full here;
  /// sharedPages() reports how many are co-owned with other snapshots.
  size_t memoryBytes() const {
    return Pages.size() * sizeof(Page) +
           Pages.capacity() * sizeof(Page *);
  }

  /// Pages co-owned with other flat snapshots (CoW sharing diagnostic).
  size_t sharedPages() const {
    size_t N = 0;
    for (Page *P : Pages)
      N += P->Refs.load(std::memory_order_relaxed) > 1 ? 1 : 0;
    return N;
  }
  size_t numPages() const { return Pages.size(); }

private:
  /// A refcounted page of slots. Slot arrays are raw storage filled
  /// write-once by the builders; SetView is trivially copyable, so page
  /// clones are two memcpys and destruction is a single free.
  struct Page {
    std::atomic<uint32_t> Refs;
    SetView Views[PageSlots];
    uint32_t Degrees[PageSlots];
  };

  static Page *newPage() {
    Page *P = static_cast<Page *>(::operator new(sizeof(Page)));
    new (&P->Refs) std::atomic<uint32_t>(1);
    return P; // slot arrays deliberately uninitialized (write-once fill)
  }
  static void retainPage(Page *P) {
    P->Refs.fetch_add(1, std::memory_order_relaxed);
  }
  static void releasePage(Page *P) {
    if (P->Refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      P->Refs.~atomic();
      ::operator delete(P);
    }
  }
  void releasePages() {
    for (Page *P : Pages)
      if (P)
        releasePage(P);
    Pages.clear();
  }

  VertexId slotOf(VertexId Key) const { return Key >> Shift; }
  VertexId slotCount(VertexId Universe) const {
    return Universe ? ((Universe - 1) >> Shift) + 1 : 0;
  }
  static size_t pageCount(VertexId Slots) {
    return (size_t(Slots) + PageSlots - 1) / PageSlots;
  }

  void writeSlot(VertexId Slot, const EdgeSet &S) {
    Page *P = Pages[size_t(Slot) / PageSlots];
    size_t At = size_t(Slot) % PageSlots;
    P->Views[At] = S.view();
    P->Degrees[At] = uint32_t(S.size());
  }

  /// Default-fill (empty view, degree 0) slots [Lo, Hi) - the holes of
  /// the vertex universe. Each slot is written exactly once, here or in
  /// writeSlot, never both.
  void fillDefault(VertexId Lo, VertexId Hi) {
    while (Lo < Hi) {
      Page *P = Pages[size_t(Lo) / PageSlots];
      size_t At = size_t(Lo) % PageSlots;
      size_t N = std::min(size_t(Hi - Lo), PageSlots - At);
      std::fill(P->Views + At, P->Views + At + N, SetView{});
      std::memset(P->Degrees + At, 0, N * sizeof(uint32_t));
      Lo += VertexId(N);
    }
  }

  /// Write-once in-order fill of slots [Lo, Hi) from the vertex tree
  /// rooted at \p N, restricted to slots >= ClipLo (subtrees entirely
  /// below the clip are skipped, so a growth fill costs O(growth +
  /// log n) rather than a full traversal). Materialized vertices get
  /// their view/degree; key gaps get the default slot.
  void fillFromTree(const typename GraphSnapshotT<EdgeSet>::VT::Node *N,
                    VertexId Lo, VertexId Hi, VertexId ClipLo) {
    using VT = typename GraphSnapshotT<EdgeSet>::VT;
    if (Hi <= ClipLo || Lo >= Hi)
      return;
    if (!N) {
      fillDefault(std::max(Lo, ClipLo), Hi);
      return;
    }
    VertexId S = slotOf(N->Key);
    auto DoLeft = [&] { fillFromTree(N->Left, Lo, S, ClipLo); };
    auto DoRight = [&] {
      if (S >= ClipLo)
        writeSlot(S, N->Val);
      fillFromTree(N->Right, S + 1, Hi, ClipLo);
    };
    if (N->Size >= VT::SeqCutoff)
      parallelDo(DoLeft, DoRight);
    else {
      DoLeft();
      DoRight();
    }
  }

  GraphSnapshotT<EdgeSet> Owner;
  std::vector<Page *> Pages;
  VertexId NumSlots = 0;
  unsigned Shift = 0;
  uint64_t NumEdgesV = 0;
};

//===----------------------------------------------------------------------===
// Graph views: the uniform neighbor-access interface consumed by edgeMap
// and the algorithms (degree / indexed map / early-exit iteration). Both
// Aspen views and the static baselines implement this shape.
//===----------------------------------------------------------------------===

/// View that resolves vertices through the vertex tree on each access
/// (O(log n) per vertex) - the default for local algorithms.
template <class EdgeSet> class TreeGraphView {
public:
  using NeighborCursor = typename EdgeSet::View::Cursor;

  explicit TreeGraphView(const GraphSnapshotT<EdgeSet> &G)
      : G(&G), Universe(G.vertexUniverse()) {}

  VertexId numVertices() const { return Universe; }
  uint64_t numEdges() const { return G->numEdges(); }
  uint64_t degree(VertexId V) const { return G->degree(V); }

  /// Streaming cursor over \p V's neighbors (graph must stay alive).
  NeighborCursor neighborCursor(VertexId V) const {
    return G->edgesView(V).cursor();
  }

  template <class F>
  void mapNeighborsIndexed(VertexId V, const F &Fn) const {
    G->edgesView(V).forEachIndexed(Fn);
  }

  template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
    G->edgesView(V).forEachSeq(Fn);
  }

  template <class F> bool iterNeighborsCond(VertexId V, const F &Fn) const {
    return G->edgesView(V).iterCond(Fn);
  }

  /// Edge-existence probe (O(1) on hot hybrid vertices).
  bool containsEdge(VertexId U, VertexId X) const {
    return G->containsEdge(U, X);
  }

  bool hasFastProbe(VertexId U) const { return G->hasFastProbe(U); }

private:
  const GraphSnapshotT<EdgeSet> *G;
  VertexId Universe;
};

/// View over a flat snapshot: O(1) vertex access, as in CSR.
template <class EdgeSet> class FlatGraphView {
public:
  using NeighborCursor = typename EdgeSet::View::Cursor;

  explicit FlatGraphView(const FlatSnapshotT<EdgeSet> &FS) : FS(&FS) {}

  VertexId numVertices() const { return FS->numVertices(); }
  uint64_t numEdges() const { return FS->numEdges(); }
  uint64_t degree(VertexId V) const { return FS->degree(V); }

  /// Streaming cursor over \p V's neighbors (snapshot must stay alive).
  NeighborCursor neighborCursor(VertexId V) const {
    return FS->edges(V).cursor();
  }

  template <class F>
  void mapNeighborsIndexed(VertexId V, const F &Fn) const {
    FS->edges(V).forEachIndexed(Fn);
  }

  template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
    FS->edges(V).forEachSeq(Fn);
  }

  template <class F> bool iterNeighborsCond(VertexId V, const F &Fn) const {
    return FS->edges(V).iterCond(Fn);
  }

  /// Edge-existence probe (O(1) on hot hybrid vertices).
  bool containsEdge(VertexId U, VertexId X) const {
    return FS->edges(U).contains(X);
  }

  bool hasFastProbe(VertexId U) const {
    return FS->edges(U).hasFastProbe();
  }

private:
  const FlatSnapshotT<EdgeSet> *FS;
};

/// Default Aspen configuration: C-trees with difference encoding.
using Graph = GraphSnapshotT<CTreeSet<VertexId, DeltaByteCodec>>;
/// C-trees without difference encoding ("Aspen (No DE)").
using GraphNoDE = GraphSnapshotT<CTreeSet<VertexId, RawCodec>>;
/// Plain purely-functional trees ("Aspen Uncomp.").
using GraphUncompressed = GraphSnapshotT<UncompressedSet<VertexId>>;
/// Degree-adaptive hybrid representation (graph/hybrid_set.h): inline
/// small adjacencies, per-graph chunk size, hash sidecars on hot
/// vertices.
using HybridGraph = GraphSnapshotT<HybridEdgeSet>;

using FlatSnapshot = FlatSnapshotT<CTreeSet<VertexId, DeltaByteCodec>>;
using HybridFlatSnapshot = FlatSnapshotT<HybridEdgeSet>;

} // namespace aspen

#endif // ASPEN_GRAPH_GRAPH_H
