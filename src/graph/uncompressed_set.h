//===- graph/uncompressed_set.h - Plain purely-functional integer sets ----===//
//
// The "Aspen Uncomp." configuration of Table 2: edge sets represented as
// ordinary purely-functional trees with one element per 32-byte node. The
// interface mirrors CTreeSet so GraphSnapshotT can be instantiated with
// either representation.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GRAPH_UNCOMPRESSED_SET_H
#define ASPEN_GRAPH_UNCOMPRESSED_SET_H

#include "pam/tree.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <vector>

namespace aspen {

/// Ordered integer set over a plain purely-functional tree (no chunking).
template <class K> class UncompressedSet {
public:
  struct SetEntry {
    using KeyT = K;
    using ValT = Empty;
    using AugT = Empty;
    static bool less(const K &A, const K &B) { return A < B; }
    static AugT augOfEntry(const KeyT &, const ValT &) { return {}; }
    static AugT augIdentity() { return {}; }
    static AugT augCombine(AugT, AugT) { return {}; }
  };

  using T = Tree<SetEntry>;
  using Node = typename T::Node;

  /// No tunable construction parameters; present so the graph layer can
  /// thread one BuildParams type through any edge-set representation.
  struct BuildParams {};

  UncompressedSet() = default;
  explicit UncompressedSet(Node *Root) : Root(Root) {}

  UncompressedSet(const UncompressedSet &O) : Root(O.Root) {
    T::retain(Root);
  }
  UncompressedSet(UncompressedSet &&O) noexcept : Root(O.Root) {
    O.Root = nullptr;
  }
  UncompressedSet &operator=(const UncompressedSet &O) {
    if (this != &O) {
      T::retain(O.Root);
      T::release(Root);
      Root = O.Root;
    }
    return *this;
  }
  UncompressedSet &operator=(UncompressedSet &&O) noexcept {
    if (this != &O) {
      T::release(Root);
      Root = O.Root;
      O.Root = nullptr;
    }
    return *this;
  }
  ~UncompressedSet() { T::release(Root); }

  bool empty() const { return !Root; }
  size_t size() const { return T::size(Root); }
  Node *root() const { return Root; }

  static UncompressedSet buildSorted(const K *E, size_t N,
                                     BuildParams = {}) {
    auto Pairs = tabulate(N, [&](size_t I) {
      return std::pair<K, Empty>{E[I], Empty{}};
    });
    return UncompressedSet(T::buildSorted(Pairs.data(), N));
  }

  static UncompressedSet fromUnsorted(std::vector<K> E, BuildParams = {}) {
    parallelSort(E);
    E.erase(std::unique(E.begin(), E.end()), E.end());
    return buildSorted(E.data(), E.size());
  }

  bool contains(K X) const { return T::findNode(Root, X) != nullptr; }

  static UncompressedSet setUnion(UncompressedSet A, UncompressedSet B) {
    return UncompressedSet(
        T::unionWith(A.take(), B.take(), [](Empty, Empty) {
          return Empty{};
        }));
  }

  static UncompressedSet setDifference(UncompressedSet A,
                                       UncompressedSet B) {
    return UncompressedSet(T::difference(A.take(), B.take()));
  }

  static UncompressedSet setIntersect(UncompressedSet A, UncompressedSet B) {
    return UncompressedSet(
        T::intersectWith(A.take(), B.take(), [](Empty, Empty) {
          return Empty{};
        }));
  }

  UncompressedSet multiInsert(std::vector<K> Batch,
                              BuildParams = {}) const {
    return setUnion(*this, fromUnsorted(std::move(Batch)));
  }

  UncompressedSet multiDelete(std::vector<K> Batch,
                              BuildParams = {}) const {
    return setDifference(*this, fromUnsorted(std::move(Batch)));
  }

  /// Non-owning view (mirrors CTreeSet::View; see flat snapshots).
  struct View {
    const Node *Root = nullptr;

    size_t size() const { return T::size(Root); }
    bool empty() const { return !Root; }

    /// Membership: O(log n) tree search.
    bool contains(K X) const { return T::findNode(Root, X) != nullptr; }

    /// No O(1) membership index on a plain tree view.
    bool hasFastProbe() const { return false; }

    /// Streaming in-order cursor (mirrors CTreeSet::View::Cursor so the
    /// graph layer compiles against either edge-set representation).
    class Cursor {
    public:
      Cursor() = default;
      explicit Cursor(const View &V) : TC(V.Root) {}

      bool done() const { return TC.done(); }
      K value() const { return TC.node()->Key; }
      void advance() { TC.advance(); }

    private:
      typename T::Cursor TC;
    };

    Cursor cursor() const { return Cursor(*this); }

    template <class F> void forEachSeq(const F &Fn) const {
      for (Cursor C(*this); !C.done(); C.advance())
        Fn(C.value());
    }

    template <class F> void forEachPar(const F &Fn) const {
      T::forEachPar(Root, [&](const K &Key, Empty) { Fn(Key); });
    }

    template <class F> void forEachIndexed(const F &Fn) const {
      T::forEachIndexed(Root, 0, [&](size_t I, const K &Key, Empty) {
        Fn(I, Key);
      });
    }

    template <class F> bool iterCond(const F &Fn) const {
      for (Cursor C(*this); !C.done(); C.advance())
        if (!Fn(C.value()))
          return false;
      return true;
    }

    std::vector<K> toVector() const {
      std::vector<K> Out;
      Out.reserve(size());
      forEachSeq([&](K V) { Out.push_back(V); });
      return Out;
    }
  };

  View view() const { return View{Root}; }

  /// Streaming cursor over all elements (this set must outlive it).
  typename View::Cursor cursor() const { return view().cursor(); }

  template <class F> void forEachSeq(const F &Fn) const {
    view().forEachSeq(Fn);
  }

  template <class F> void forEachPar(const F &Fn) const {
    view().forEachPar(Fn);
  }

  template <class F> void forEachIndexed(const F &Fn) const {
    view().forEachIndexed(Fn);
  }

  template <class F> bool iterCond(const F &Fn) const {
    return view().iterCond(Fn);
  }

  std::vector<K> toVector() const { return view().toVector(); }

  size_t memoryBytes() const { return size() * sizeof(Node); }

  bool checkInvariants(BuildParams = {}) const {
    if (!T::validate(Root))
      return false;
    bool Ok = true, Any = false;
    K Prev{};
    forEachSeq([&](K V) {
      if (Any && V <= Prev)
        Ok = false;
      Prev = V;
      Any = true;
    });
    return Ok;
  }

private:
  Node *take() {
    Node *R = Root;
    Root = nullptr;
    return R;
  }

  Node *Root = nullptr;
};

} // namespace aspen

#endif // ASPEN_GRAPH_UNCOMPRESSED_SET_H
