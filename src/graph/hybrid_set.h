//===- graph/hybrid_set.h - Degree-adaptive hybrid edge sets --------------===//
//
// A degree-adaptive edge-set representation: each vertex's adjacency is
// stored in the class its degree earns, migrating between classes inside
// the functional update path (the set algebra knows every post-merge
// degree):
//
//  * inline  (degree <= InlineMax): the sorted neighbor array lives
//    directly in the vertex-tree node value — no C-tree, no chunk header,
//    no pointer chase. The long tail of a power-law graph lands here.
//  * chunked (InlineMax < degree < HotMin): the delta-compressed C-tree,
//    with the chunk size a per-set parameter (HybridParams::LogB) instead
//    of the former process-global knob.
//  * hot     (degree >= HotMin): the C-tree plus an immutable open-
//    addressing hash sidecar (ctree/chunk.h) giving O(1) containsEdge
//    probes where a chunk membership test pays an O(b) decode scan.
//    Sidecars are refcount-shared across versions exactly like chunks:
//    updates that leave a hot vertex untouched share the old sidecar,
//    updates that change its adjacency rebuild it functionally.
//
// The interface mirrors CTreeSet, so GraphSnapshotT, FlatSnapshotT, both
// stores, and every algorithm behind the graph-view concept run on hybrid
// sets unmodified. The View is self-contained (inline elements are copied
// into it by value), keeping it trivially copyable for flat snapshots and
// valid across the page-sharing refresh path, where a vertex's tree node
// may be replaced while its page is shared.
//
// Class thresholds come from HybridParams, either defaulted or chosen per
// graph by autotuneHybridParams from degree statistics (DESIGN.md §6).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GRAPH_HYBRID_SET_H
#define ASPEN_GRAPH_HYBRID_SET_H

#include "ctree/ctree.h"
#include "util/types.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace aspen {

/// Capacity of the inline class: neighbors stored directly in the vertex
/// tree node. 8 x 4-byte ids keeps the node value within one cache line.
inline constexpr size_t HybridInlineCap = 8;

/// Per-set (per-graph) representation parameters. Packed and trivially
/// copyable: every hybrid set carries its params, so the set algebra can
/// reclassify results without out-of-band state.
struct HybridParams {
  uint8_t LogB = 7;       ///< chunked-class chunk size b = 1 << LogB
  uint8_t InlineMax = 8;  ///< degree <= InlineMax: inline class
  uint16_t Reserved = 0;
  uint32_t HotMin = 4096; ///< degree >= HotMin: hash sidecar class

  uint64_t headMask() const { return (uint64_t(1) << LogB) - 1; }

  friend bool operator==(const HybridParams &A, const HybridParams &B) {
    return A.LogB == B.LogB && A.InlineMax == B.InlineMax &&
           A.HotMin == B.HotMin;
  }
  friend bool operator!=(const HybridParams &A, const HybridParams &B) {
    return !(A == B);
  }
};

/// Choose hybrid parameters from degree statistics:
///  * InlineMax is the inline capacity — every vertex that fits, inlines.
///  * b targets one chunk per average chunked-class vertex (one pointer
///    chase per scan), clamped to [32, 512]: below 32 the per-chunk header
///    overhead dominates, above 512 the O(b) re-encode on every touched
///    chunk penalizes batch updates.
///  * HotMin = 32 * b: a chunk-scan probe costs O(b), so the sidecar's
///    O(1) probe and 2-slots-per-edge memory pay off once the adjacency
///    spans tens of chunks (default b = 128 gives the familiar 4096).
inline HybridParams autotuneHybridParams(const uint32_t *Degrees,
                                         size_t N) {
  HybridParams P;
  P.InlineMax = uint8_t(HybridInlineCap);
  uint64_t ChunkedEdges = 0, ChunkedVertices = 0;
  for (size_t I = 0; I < N; ++I) {
    if (Degrees[I] > P.InlineMax) {
      ChunkedEdges += Degrees[I];
      ++ChunkedVertices;
    }
  }
  uint64_t Avg = ChunkedVertices ? ChunkedEdges / ChunkedVertices : 0;
  uint8_t LogB = 5; // b = 32 floor
  while ((uint64_t(1) << LogB) < Avg && LogB < 9)
    ++LogB;
  P.LogB = LogB;
  P.HotMin = uint32_t(std::min<uint64_t>(32 * (uint64_t(1) << LogB),
                                         uint64_t(NoVertex) - 1));
  return P;
}

/// Convenience overload: degree statistics from a directed edge list.
inline HybridParams autotuneHybridParams(VertexId NumVertices,
                                         const std::vector<EdgePair> &Edges) {
  std::vector<uint32_t> Degrees(NumVertices, 0);
  for (const EdgePair &E : Edges)
    if (E.first < NumVertices)
      ++Degrees[E.first];
  return autotuneHybridParams(Degrees.data(), Degrees.size());
}

/// Degree class of a hybrid set (diagnostics, benches, tests).
enum class HybridClass { Inline, Chunked, Hot };

template <class K, class Codec = DeltaByteCodec> class HybridEdgeSetT {
public:
  using CSet = CTreeSet<K, Codec>;
  using CT = typename CSet::T;
  using Node = typename CSet::Node;
  using Payload = ChunkPayload<K>;
  using BuildParams = HybridParams;

  static constexpr size_t InlineCap = HybridInlineCap;

  //===--------------------------------------------------------------------===
  // Value semantics. The representation is a tagged union managed
  // manually: tree-rep pointers carry refcounts (tree nodes, prefix
  // chunk, sidecar), inline elements are plain values in the object.
  //===--------------------------------------------------------------------===

  HybridEdgeSetT() = default;

  HybridEdgeSetT(const HybridEdgeSetT &O) : R(O.R), Tag(O.Tag), P(O.P) {
    if (isTree()) {
      CT::retain(R.Tr.Root);
      retainChunk(R.Tr.Prefix);
      retainSidecar(R.Tr.Side);
    }
  }
  HybridEdgeSetT(HybridEdgeSetT &&O) noexcept
      : R(O.R), Tag(O.Tag), P(O.P) {
    O.Tag = 0;
  }
  HybridEdgeSetT &operator=(const HybridEdgeSetT &O) {
    if (this != &O) {
      HybridEdgeSetT Tmp(O); // retain first: safe under self-aliasing reps
      *this = std::move(Tmp);
    }
    return *this;
  }
  HybridEdgeSetT &operator=(HybridEdgeSetT &&O) noexcept {
    if (this != &O) {
      clear();
      R = O.R;
      Tag = O.Tag;
      P = O.P;
      O.Tag = 0;
    }
    return *this;
  }
  ~HybridEdgeSetT() { clear(); }

  void clear() {
    if (isTree()) {
      CT::release(R.Tr.Root);
      releaseChunk(R.Tr.Prefix);
      releaseSidecar(R.Tr.Side);
    }
    Tag = 0;
  }

  bool empty() const { return !isTree() && Tag == 0; }

  size_t size() const {
    return isTree() ? chunkCount(R.Tr.Prefix) + CT::aug(R.Tr.Root)
                    : size_t(Tag);
  }

  HybridParams params() const { return P; }

  HybridClass degreeClass() const {
    if (!isTree())
      return HybridClass::Inline;
    return R.Tr.Side ? HybridClass::Hot : HybridClass::Chunked;
  }

  /// The sidecar, or nullptr (tests assert refcount sharing across
  /// versions).
  const EdgeSidecar<K> *sidecar() const {
    return isTree() ? R.Tr.Side : nullptr;
  }

  //===--------------------------------------------------------------------===
  // Construction.
  //===--------------------------------------------------------------------===

  /// Build from sorted, duplicate-free elements into the class \p N earns.
  static HybridEdgeSetT buildSorted(const K *E, size_t N,
                                    BuildParams P = {}) {
    HybridEdgeSetT Out;
    Out.P = P;
    if (N <= P.InlineMax && N <= InlineCap) {
      std::copy(E, E + N, Out.R.Inline);
      Out.Tag = uint8_t(N);
      return Out;
    }
    CSet S = CSet::buildSorted(E, N, {P.headMask()});
    EdgeSidecar<K> *Side = N >= P.HotMin ? makeSidecar(E, N) : nullptr;
    Out.adoptTree(S, Side);
    return Out;
  }

  static HybridEdgeSetT fromUnsorted(std::vector<K> E, BuildParams P = {}) {
    parallelSort(E);
    E.erase(std::unique(E.begin(), E.end()), E.end());
    return buildSorted(E.data(), E.size(), P);
  }

  //===--------------------------------------------------------------------===
  // Borrowed view. Self-contained: tree-rep pointers are borrowed (the
  // owning snapshot keeps them alive), inline elements are copied in by
  // value — so a view stored in a flat-snapshot page stays valid even
  // when the vertex's tree node is replaced while the page is shared.
  //===--------------------------------------------------------------------===

  struct View {
    const Node *Root = nullptr;
    const Payload *Prefix = nullptr;
    const EdgeSidecar<K> *Side = nullptr;
    K InlineE[InlineCap] = {};
    uint8_t InlineN = 0;
    uint8_t IsTree = 0;

    typename CSet::View tview() const {
      return typename CSet::View{Root, Prefix};
    }

    size_t size() const {
      return IsTree ? tview().size() : size_t(InlineN);
    }
    bool empty() const { return size() == 0; }

    /// Membership: O(1) on the inline array or through the sidecar,
    /// O(b + log n) chunk scan otherwise.
    bool contains(K X) const {
      if (!IsTree) {
        for (uint8_t I = 0; I < InlineN; ++I)
          if (InlineE[I] == X)
            return true;
        return false;
      }
      if (Side)
        return sidecarContains(Side, X);
      return tview().contains(X);
    }

    /// True when membership probes are O(1) (hot-vertex sidecar).
    bool hasFastProbe() const { return Side != nullptr; }

    /// Streaming in-order cursor. Self-contained like the view (inline
    /// elements copied), so it may outlive the temporary view it was
    /// made from — only the owning snapshot must stay alive.
    class Cursor {
    public:
      Cursor() = default;
      explicit Cursor(const View &V) {
        if (V.IsTree) {
          Tree = true;
          TC = typename CSet::View::Cursor(V.tview());
        } else {
          N = V.InlineN;
          std::copy(V.InlineE, V.InlineE + N, Buf);
        }
      }

      bool done() const { return Tree ? TC.done() : I == N; }
      K value() const {
        assert(!done() && "value() on exhausted cursor");
        return Tree ? TC.value() : Buf[I];
      }
      void advance() {
        assert(!done() && "advance() on exhausted cursor");
        if (Tree)
          TC.advance();
        else
          ++I;
      }

    private:
      typename CSet::View::Cursor TC;
      K Buf[InlineCap] = {};
      uint8_t I = 0, N = 0;
      bool Tree = false;
    };

    Cursor cursor() const { return Cursor(*this); }

    template <class F> void forEachSeq(const F &Fn) const {
      if (IsTree)
        tview().forEachSeq(Fn);
      else
        for (uint8_t I = 0; I < InlineN; ++I)
          Fn(InlineE[I]);
    }

    template <class F> void forEachPar(const F &Fn) const {
      if (IsTree)
        tview().forEachPar(Fn);
      else
        for (uint8_t I = 0; I < InlineN; ++I)
          Fn(InlineE[I]);
    }

    template <class F> void forEachIndexed(const F &Fn) const {
      if (IsTree)
        tview().forEachIndexed(Fn);
      else
        for (uint8_t I = 0; I < InlineN; ++I)
          Fn(size_t(I), InlineE[I]);
    }

    template <class F> bool iterCond(const F &Fn) const {
      if (IsTree)
        return tview().iterCond(Fn);
      for (uint8_t I = 0; I < InlineN; ++I)
        if (!Fn(InlineE[I]))
          return false;
      return true;
    }

    std::vector<K> toVector() const {
      std::vector<K> Out;
      Out.reserve(size());
      forEachSeq([&](K V) { Out.push_back(V); });
      return Out;
    }
  };

  View view() const {
    View V;
    if (isTree()) {
      V.IsTree = 1;
      V.Root = R.Tr.Root;
      V.Prefix = R.Tr.Prefix;
      V.Side = R.Tr.Side;
    } else {
      V.InlineN = Tag;
      std::copy(R.Inline, R.Inline + Tag, V.InlineE);
    }
    return V;
  }

  typename View::Cursor cursor() const { return view().cursor(); }

  //===--------------------------------------------------------------------===
  // Queries and traversal (delegate to the view).
  //===--------------------------------------------------------------------===

  bool contains(K X) const { return view().contains(X); }
  bool hasFastProbe() const { return isTree() && R.Tr.Side; }

  template <class F> void forEachSeq(const F &Fn) const {
    view().forEachSeq(Fn);
  }
  template <class F> void forEachPar(const F &Fn) const {
    view().forEachPar(Fn);
  }
  template <class F> void forEachIndexed(const F &Fn) const {
    view().forEachIndexed(Fn);
  }
  template <class F> bool iterCond(const F &Fn) const {
    return view().iterCond(Fn);
  }
  std::vector<K> toVector() const { return view().toVector(); }

  /// Heap footprint beyond the in-node value: zero for the inline class
  /// (that is the point), chunks + tree nodes + sidecar otherwise.
  size_t memoryBytes() const {
    if (!isTree())
      return 0;
    return borrowCSet().memoryBytes() + sidecarBytes(R.Tr.Side);
  }

  //===--------------------------------------------------------------------===
  // Set algebra with class migration. Merges run in whichever
  // representation is cheapest (tiny sorted-array merges for inline
  // operands, C-tree algebra otherwise); the result is reclassified by
  // its post-merge degree, which is how vertices migrate between classes
  // inside the ordinary functional update path.
  //===--------------------------------------------------------------------===

  static HybridEdgeSetT setUnion(HybridEdgeSetT A, HybridEdgeSetT B) {
    HybridParams PU = mergedParams(A, B);
    if (!A.isTree() && !B.isTree()) {
      K Buf[2 * InlineCap];
      size_t N = std::set_union(A.R.Inline, A.R.Inline + A.Tag, B.R.Inline,
                                B.R.Inline + B.Tag, Buf) -
                 Buf;
      return buildSorted(Buf, N, PU);
    }
    CSet S = CSet::setUnion(A.takeCSet(PU), B.takeCSet(PU));
    return fromCSet(std::move(S), PU);
  }

  static HybridEdgeSetT setDifference(HybridEdgeSetT A, HybridEdgeSetT B) {
    HybridParams PU = mergedParams(A, B);
    if (!A.isTree()) {
      // Keep A's elements not in B; membership on B is sidecar-
      // accelerated when B is hot. Result can only stay inline.
      HybridEdgeSetT Out;
      Out.P = PU;
      View VB = B.view();
      for (uint8_t I = 0; I < A.Tag; ++I)
        if (!VB.contains(A.R.Inline[I]))
          Out.R.Inline[Out.Tag++] = A.R.Inline[I];
      return Out;
    }
    CSet S = CSet::setDifference(A.takeCSet(PU), B.takeCSet(PU));
    return fromCSet(std::move(S), PU);
  }

  static HybridEdgeSetT setIntersect(HybridEdgeSetT A, HybridEdgeSetT B) {
    HybridParams PU = mergedParams(A, B);
    if (!A.isTree() || !B.isTree()) {
      // Probe the smaller (inline) side against the larger: O(k) probes,
      // O(1) each when the large side is hot.
      const HybridEdgeSetT &Small = !A.isTree() ? A : B;
      const HybridEdgeSetT &Large = !A.isTree() ? B : A;
      HybridEdgeSetT Out;
      Out.P = PU;
      View VL = Large.view();
      for (uint8_t I = 0; I < Small.Tag; ++I)
        if (VL.contains(Small.R.Inline[I]))
          Out.R.Inline[Out.Tag++] = Small.R.Inline[I];
      return Out;
    }
    CSet S = CSet::setIntersect(A.takeCSet(PU), B.takeCSet(PU));
    return fromCSet(std::move(S), PU);
  }

  /// MultiInsert/MultiDelete with the set's own params (mirrors CTreeSet;
  /// the explicit-params overloads serve empty sets and tests).
  HybridEdgeSetT multiInsert(std::vector<K> Batch) const {
    return multiInsert(std::move(Batch), P);
  }
  HybridEdgeSetT multiInsert(std::vector<K> Batch, BuildParams BP) const {
    return setUnion(*this, fromUnsorted(std::move(Batch), BP));
  }
  HybridEdgeSetT multiDelete(std::vector<K> Batch) const {
    return multiDelete(std::move(Batch), P);
  }
  HybridEdgeSetT multiDelete(std::vector<K> Batch, BuildParams BP) const {
    return setDifference(*this, fromUnsorted(std::move(Batch), BP));
  }

  HybridEdgeSetT insert(K X) const { return multiInsert({X}); }
  HybridEdgeSetT remove(K X) const { return multiDelete({X}); }

  //===--------------------------------------------------------------------===
  // Validation (test support). The BuildParams argument is accepted for
  // interface parity; a hybrid set audits against its stored params.
  //===--------------------------------------------------------------------===

  bool checkInvariants(BuildParams = {}) const {
    if (!isTree()) {
      if (Tag > InlineCap || Tag > P.InlineMax)
        return false;
      for (uint8_t I = 1; I < Tag; ++I)
        if (R.Inline[I - 1] >= R.Inline[I])
          return false;
      return true;
    }
    size_t N = size();
    if (N <= P.InlineMax)
      return false; // should have migrated to the inline class
    if (!borrowCSet().checkInvariants({P.headMask()}))
      return false;
    const EdgeSidecar<K> *Side = R.Tr.Side;
    if (N >= P.HotMin && !Side) {
      // Only legitimate when the reserved sentinel key is an element
      // (buildSidecar refuses it and callers fall back to chunk scans).
      if (!borrowCSet().contains(EdgeSidecar<K>::EmptySlot))
        return false;
    }
    if (Side) {
      if (N < P.HotMin || Side->Count != N)
        return false;
      bool Ok = true;
      forEachSeq([&](K V) { Ok = Ok && sidecarContains(Side, V); });
      if (!Ok)
        return false;
    }
    return true;
  }

private:
  static constexpr uint8_t TreeTag = 0xFF;

  union Rep {
    K Inline[InlineCap];
    struct TreeRep {
      Node *Root;
      Payload *Prefix;
      EdgeSidecar<K> *Side;
    } Tr;
    Rep() : Tr{nullptr, nullptr, nullptr} {}
  };

  bool isTree() const { return Tag == TreeTag; }

  /// Params for a merge result: a tree operand's structure pins the chunk
  /// mask, so its params win; otherwise any non-empty operand's params.
  static HybridParams mergedParams(const HybridEdgeSetT &A,
                                   const HybridEdgeSetT &B) {
    if (A.isTree())
      return A.P;
    if (B.isTree())
      return B.P;
    return A.empty() ? B.P : A.P;
  }

  /// Borrow the chunked part as an owned CSet copy (refcount bump only).
  CSet borrowCSet() const {
    assert(isTree());
    CT::retain(R.Tr.Root);
    retainChunk(R.Tr.Prefix);
    return CSet(R.Tr.Root, R.Tr.Prefix);
  }

  /// Consume this set into a CSet under \p PU: tree reps hand over their
  /// root/prefix, inline reps build a (tiny) C-tree with PU's mask.
  CSet takeCSet(HybridParams PU) {
    if (isTree()) {
      CSet S(R.Tr.Root, R.Tr.Prefix);
      releaseSidecar(R.Tr.Side);
      Tag = 0;
      return S;
    }
    CSet S = CSet::buildSorted(R.Inline, Tag, {PU.headMask()});
    Tag = 0;
    return S;
  }

  /// Adopt \p S (consumed) as this set's tree rep with \p Side adopted.
  void adoptTree(CSet &S, EdgeSidecar<K> *Side) {
    // Steal the root/prefix by retaining, then letting S release.
    CT::retain(S.root());
    retainChunk(S.prefix());
    R.Tr = {S.root(), S.prefix(), Side};
    Tag = TreeTag;
  }

  /// Reclassify a merge result by its post-merge degree: decode small
  /// results into the inline class, rebuild the sidecar for hot ones.
  static HybridEdgeSetT fromCSet(CSet S, HybridParams P) {
    size_t N = S.size();
    HybridEdgeSetT Out;
    Out.P = P;
    if (N <= P.InlineMax && N <= InlineCap) {
      size_t I = 0;
      S.forEachSeq([&](K V) { Out.R.Inline[I++] = V; });
      Out.Tag = uint8_t(N);
      return Out;
    }
    EdgeSidecar<K> *Side = nullptr;
    if (N >= P.HotMin)
      Side = buildSidecar<K>(N, [&](auto Sink) { S.forEachSeq(Sink); });
    Out.adoptTree(S, Side);
    return Out;
  }

  Rep R;
  uint8_t Tag = 0; ///< inline element count, or TreeTag for tree reps
  HybridParams P;
};

using HybridEdgeSet = HybridEdgeSetT<VertexId, DeltaByteCodec>;

} // namespace aspen

#endif // ASPEN_GRAPH_HYBRID_SET_H
