//===- graph/versioned_graph.h - acquire/set/release version maintenance --===//
//
// The Aspen version-maintenance interface (Section 6): a single writer
// installs new snapshots with set(); any number of concurrent readers
// acquire() and release() versions. Readers are never blocked by the
// writer and always see a consistent snapshot, giving strict
// serializability of queries with respect to update batches.
//
// Deviation from the paper (documented in DESIGN.md): the paper uses the
// lock-free algorithm of Ben-David et al. [8]; we protect the version-list
// manipulation with a short critical section (tens of nanoseconds against
// millisecond-scale queries). Garbage collection is by reference count:
// a version is reclaimed once it is no longer current and its last reader
// releases it.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GRAPH_VERSIONED_GRAPH_H
#define ASPEN_GRAPH_VERSIONED_GRAPH_H

#include "graph/graph.h"

#include <atomic>
#include <cassert>
#include <mutex>

namespace aspen {

template <class EdgeSet> class VersionedGraphT {
  struct VersionNode {
    GraphSnapshotT<EdgeSet> G;
    std::atomic<int64_t> Refs;
    uint64_t Stamp;

    VersionNode(GraphSnapshotT<EdgeSet> G, int64_t InitialRefs,
                uint64_t Stamp)
        : G(std::move(G)), Refs(InitialRefs), Stamp(Stamp) {}
  };

public:
  /// RAII handle to an acquired version; releasing is automatic.
  class Version {
  public:
    Version() = default;
    Version(const Version &) = delete;
    Version &operator=(const Version &) = delete;
    Version(Version &&O) noexcept : VG(O.VG), N(O.N) {
      O.VG = nullptr;
      O.N = nullptr;
    }
    Version &operator=(Version &&O) noexcept {
      if (this != &O) {
        reset();
        VG = O.VG;
        N = O.N;
        O.VG = nullptr;
        O.N = nullptr;
      }
      return *this;
    }
    ~Version() { reset(); }

    /// The immutable snapshot this version refers to.
    const GraphSnapshotT<EdgeSet> &graph() const {
      assert(N && "empty version handle");
      return N->G;
    }

    /// Monotone timestamp of the version (batch sequence number).
    uint64_t timestamp() const { return N ? N->Stamp : 0; }

    bool valid() const { return N != nullptr; }

    /// Explicit early release.
    void reset() {
      if (VG && N)
        VG->releaseNode(N);
      VG = nullptr;
      N = nullptr;
    }

  private:
    friend class VersionedGraphT;
    Version(VersionedGraphT *VG, VersionNode *N) : VG(VG), N(N) {}
    VersionedGraphT *VG = nullptr;
    VersionNode *N = nullptr;
  };

  explicit VersionedGraphT(GraphSnapshotT<EdgeSet> Initial) {
    Current = new VersionNode(std::move(Initial), /*InitialRefs=*/1, 0);
  }

  VersionedGraphT(const VersionedGraphT &) = delete;
  VersionedGraphT &operator=(const VersionedGraphT &) = delete;

  ~VersionedGraphT() {
    // All readers must have released their versions by now.
    std::lock_guard<std::mutex> Lock(M);
    int64_t Left = Current->Refs.fetch_sub(1, std::memory_order_acq_rel);
    assert(Left == 1 && "destroying VersionedGraph with live readers");
    (void)Left;
    delete Current;
  }

  /// Acquire the latest version. Never blocked by the writer for more than
  /// the duration of a pointer swap.
  Version acquire() {
    std::lock_guard<std::mutex> Lock(M);
    Current->Refs.fetch_add(1, std::memory_order_relaxed);
    return Version(this, Current);
  }

  /// Install a new snapshot as the current version (single writer). Atomic
  /// with respect to acquire(); the previous version survives until its
  /// last reader releases it.
  void set(GraphSnapshotT<EdgeSet> G) {
    VersionNode *Old;
    {
      std::lock_guard<std::mutex> Lock(M);
      auto *N = new VersionNode(std::move(G), /*InitialRefs=*/1,
                                Stamp.fetch_add(1) + 1);
      Old = Current;
      Current = N;
    }
    releaseNode(Old); // drop the current-slot reference
  }

  /// Writer convenience: functionally insert a batch and publish.
  void insertEdgesBatch(std::vector<EdgePair> Edges) {
    GraphSnapshotT<EdgeSet> Next;
    {
      std::lock_guard<std::mutex> Lock(M);
      Next = Current->G; // snapshot for the writer
    }
    set(Next.insertEdges(std::move(Edges)));
  }

  /// Writer convenience: functionally delete a batch and publish.
  void deleteEdgesBatch(std::vector<EdgePair> Edges) {
    GraphSnapshotT<EdgeSet> Next;
    {
      std::lock_guard<std::mutex> Lock(M);
      Next = Current->G;
    }
    set(Next.deleteEdges(std::move(Edges)));
  }

  /// Number of versions not yet reclaimed (diagnostic).
  int64_t currentTimestamp() const {
    return int64_t(Stamp.load(std::memory_order_relaxed));
  }

private:
  friend class Version;

  void releaseNode(VersionNode *N) {
    if (N->Refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last reference: N is no longer current (the current-slot reference
      // would still be outstanding), so nobody can acquire it again.
      delete N;
    }
  }

  mutable std::mutex M;
  VersionNode *Current = nullptr;
  std::atomic<uint64_t> Stamp{0};
};

using VersionedGraph = VersionedGraphT<CTreeSet<VertexId, DeltaByteCodec>>;

} // namespace aspen

#endif // ASPEN_GRAPH_VERSIONED_GRAPH_H
