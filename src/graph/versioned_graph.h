//===- graph/versioned_graph.h - acquire/set/release version maintenance --===//
//
// The Aspen version-maintenance interface (Section 6): a single writer
// installs new snapshots with set(); any number of concurrent readers
// acquire() and release() versions. Readers are never blocked by the
// writer and always see a consistent snapshot, giving strict
// serializability of queries with respect to update batches.
//
// The version-list mechanics (refcounted chain, pointer-swap install,
// exact reclamation) live in the reusable store/version_list.h core;
// this wrapper binds it to a single GraphSnapshotT and adds the writer
// conveniences. The sharded store (store/sharded_graph.h) reuses the same
// core with a cross-shard epoch as the versioned value. The deviation
// from the paper's lock-free version list (Ben-David et al. [8]) is
// documented in DESIGN.md Section 1.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GRAPH_VERSIONED_GRAPH_H
#define ASPEN_GRAPH_VERSIONED_GRAPH_H

#include "graph/graph.h"
#include "store/version_list.h"

#include <cassert>
#include <mutex>

namespace aspen {

template <class EdgeSet> class VersionedGraphT {
  using List = VersionListT<GraphSnapshotT<EdgeSet>>;

public:
  /// RAII handle to an acquired version; releasing is automatic.
  class Version {
  public:
    Version() = default;
    Version(Version &&) noexcept = default;
    Version &operator=(Version &&) noexcept = default;

    /// The immutable snapshot this version refers to.
    const GraphSnapshotT<EdgeSet> &graph() const { return H.value(); }

    /// Monotone timestamp of the version (batch sequence number).
    uint64_t timestamp() const { return H.stamp(); }

    bool valid() const { return H.valid(); }

    /// Explicit early release.
    void reset() { H.reset(); }

  private:
    friend class VersionedGraphT;
    explicit Version(typename List::Handle H) : H(std::move(H)) {}
    typename List::Handle H;
  };

  explicit VersionedGraphT(GraphSnapshotT<EdgeSet> Initial)
      : Versions(std::move(Initial)) {}

  VersionedGraphT(const VersionedGraphT &) = delete;
  VersionedGraphT &operator=(const VersionedGraphT &) = delete;

  /// Acquire the latest version. Never blocked by the writer for more than
  /// the duration of a pointer swap.
  Version acquire() { return Version(Versions.acquire()); }

  /// Install a new snapshot as the current version (single writer). Atomic
  /// with respect to acquire(); the previous version survives until its
  /// last reader releases it.
  void set(GraphSnapshotT<EdgeSet> G) { Versions.set(std::move(G)); }

  /// Writer convenience: functionally insert a batch and publish. The
  /// owned batch routes through the span path (in-place sort, grouping
  /// in borrowed scratch — no input-sized heap allocation at steady
  /// state).
  void insertEdgesBatch(std::vector<EdgePair> Edges) {
    GraphSnapshotT<EdgeSet> Next = currentCopy();
    set(Next.insertEdgesSpan(Edges.data(), Edges.size()));
  }

  /// Writer convenience: functionally delete a batch and publish.
  void deleteEdgesBatch(std::vector<EdgePair> Edges) {
    GraphSnapshotT<EdgeSet> Next = currentCopy();
    set(Next.deleteEdgesSpan(Edges.data(), Edges.size()));
  }

  /// Sequence number of the latest installed version (diagnostic).
  int64_t currentTimestamp() const {
    return int64_t(Versions.currentStamp());
  }

private:
  /// Snapshot (refcount copy) of the current version for the writer.
  GraphSnapshotT<EdgeSet> currentCopy() {
    auto H = Versions.acquire();
    return H.value();
  }

  List Versions;
};

using VersionedGraph = VersionedGraphT<CTreeSet<VertexId, DeltaByteCodec>>;

} // namespace aspen

#endif // ASPEN_GRAPH_VERSIONED_GRAPH_H
