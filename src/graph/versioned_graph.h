//===- graph/versioned_graph.h - acquire/set/release version maintenance --===//
//
// The Aspen version-maintenance interface (Section 6): a single writer
// installs new snapshots with set(); any number of concurrent readers
// acquire() and release() versions. Readers are never blocked by the
// writer and always see a consistent snapshot, giving strict
// serializability of queries with respect to update batches.
//
// The version-list mechanics (refcounted chain, pointer-swap install,
// exact reclamation) live in the reusable store/version_list.h core;
// this wrapper binds it to a single GraphSnapshotT and adds the writer
// conveniences. The sharded store (store/sharded_graph.h) reuses the same
// core with a cross-shard epoch as the versioned value. The deviation
// from the paper's lock-free version list (Ben-David et al. [8]) is
// documented in DESIGN.md Section 1.
//
// Hot-epoch flat snapshots: the batch conveniences record each epoch's
// touched-vertex digest in a DeltaLogT, and acquireFlat() maintains one
// cached FlatSnapshotT of the latest version, caught up epoch-to-epoch
// with FlatSnapshotT::refresh (O(touched) page repair) and rebuilt in
// full only when the replay span is uncovered or too large. Protocol and
// threshold rationale in DESIGN.md Section 4.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GRAPH_VERSIONED_GRAPH_H
#define ASPEN_GRAPH_VERSIONED_GRAPH_H

#include "graph/graph.h"
#include "store/durability.h"
#include "store/version_list.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <mutex>

namespace aspen {

/// Rebuild-vs-refresh counters of a store's hot flat snapshot (tests and
/// benches assert which maintenance path served an acquireFlat()).
struct FlatMaintenanceStats {
  uint64_t Rebuilds = 0;  ///< full O(n) flat builds
  uint64_t Refreshes = 0; ///< O(touched) incremental refreshes
  uint64_t Hits = 0;      ///< served the cached flat unchanged
};

/// Shared tuning constants of the hot-flat maintenance path (both
/// stores): refresh when the replayed digests touch at most
/// universe / FlatRefreshDenominator distinct vertices, covering at most
/// FlatReplayMaxEpochs epochs; anything else rebuilds. See DESIGN.md
/// Section 4 for the crossover analysis.
inline constexpr uint64_t FlatRefreshDenominator = 8;
inline constexpr size_t FlatReplayMaxEpochs = 64;

template <class EdgeSet> class VersionedGraphT {
  using List = VersionListT<GraphSnapshotT<EdgeSet>>;

public:
  using Flat = FlatSnapshotT<EdgeSet>;

  /// RAII handle to an acquired version; releasing is automatic.
  class Version {
  public:
    Version() = default;
    Version(Version &&) noexcept = default;
    Version &operator=(Version &&) noexcept = default;

    /// The immutable snapshot this version refers to.
    const GraphSnapshotT<EdgeSet> &graph() const { return H.value(); }

    /// Monotone timestamp of the version (batch sequence number).
    uint64_t timestamp() const { return H.stamp(); }

    bool valid() const { return H.valid(); }

    /// Explicit early release.
    void reset() { H.reset(); }

  private:
    friend class VersionedGraphT;
    explicit Version(typename List::Handle H) : H(std::move(H)) {}
    typename List::Handle H;
  };

  explicit VersionedGraphT(GraphSnapshotT<EdgeSet> Initial)
      : Versions(std::move(Initial)), Digests(FlatReplayMaxEpochs) {}

  /// Durable open (opt-in; DESIGN.md Section 7): recover the newest
  /// valid checkpoint from \p O.Dir, replay the WAL suffix through the
  /// same batch paths that produced the original epochs, and log every
  /// subsequent batch before acknowledging it. A fresh directory yields
  /// an empty durable store under \p P. The single-writer contract of
  /// this store extends to the durable form: batch sequence numbers are
  /// derived from the install stamp.
  explicit VersionedGraphT(const DurabilityOptions &O,
                           typename EdgeSet::BuildParams P = {})
      : Versions(GraphSnapshotT<EdgeSet>(P)), Digests(FlatReplayMaxEpochs),
        Durable(std::make_unique<DurabilityEngine>(O)) {
    const RecoveredState &R = Durable->recovered();
    if (R.Ckpt) {
      if (R.Ckpt->ShardStreams.size() != 1)
        throw CorruptCheckpoint("versioned store expects one shard stream");
      ByteReader Rd(R.Ckpt->ShardStreams[0].data(),
                    R.Ckpt->ShardStreams[0].size());
      Versions.set(deserializeSnapshot<EdgeSet>(Rd, P));
      if (Durable->options().PrimeFlatOnRecover) {
        // Build the hot flat from the checkpoint *before* replay: the
        // replayed batches record digests, so the first user
        // acquireFlat() catches up O(touched) instead of rebuilding.
        auto H = Versions.acquire();
        auto Primed = std::make_shared<StampedFlat>();
        Primed->F = Flat(H.value());
        Primed->Stamp = H.stamp();
        CachedFlat = std::move(Primed); // ctor: no concurrent readers yet
        ++Stats.Rebuilds;
      }
    }
    for (const WalReplayRecord &RR : R.Replay) {
      std::vector<EdgePair> Edges = RR.Edges; // span paths sort in place
      GraphSnapshotT<EdgeSet> Next = currentCopy();
      std::vector<VertexId> Touched;
      auto G = RR.Kind == WalKind::InsertBatch
                   ? Next.insertEdgesSpan(Edges.data(), Edges.size(),
                                          &Touched)
                   : Next.deleteEdgesSpan(Edges.data(), Edges.size(),
                                          &Touched);
      installWithDigest(std::move(G), std::move(Touched));
    }
    DurableSeqBase = R.MaxSeq - Versions.currentStamp();
    Durable->dropRecoveredPayload();
  }

  VersionedGraphT(const VersionedGraphT &) = delete;
  VersionedGraphT &operator=(const VersionedGraphT &) = delete;

  /// Acquire the latest version. Never blocked by the writer for more than
  /// the duration of a pointer swap.
  Version acquire() { return Version(Versions.acquire()); }

  /// Install a new snapshot as the current version (single writer). Atomic
  /// with respect to acquire(); the previous version survives until its
  /// last reader releases it. Installing through set() records no
  /// touched digest, so the next acquireFlat() after a raw set() falls
  /// back to a full rebuild (the batch conveniences keep the incremental
  /// path alive).
  void set(GraphSnapshotT<EdgeSet> G) { Versions.set(std::move(G)); }

  /// Writer convenience: functionally insert a batch and publish. The
  /// owned batch routes through the span path (in-place sort, grouping
  /// in borrowed scratch — no input-sized heap allocation at steady
  /// state), which also yields the epoch's touched-vertex digest. On a
  /// durable store the batch is WAL-logged before the in-place span
  /// sort and group-committed before return: when this call returns,
  /// the batch survives a crash.
  void insertEdgesBatch(std::vector<EdgePair> Edges) {
    applyOwnedBatch(std::move(Edges), /*Insert=*/true);
  }

  /// Writer convenience: functionally delete a batch and publish.
  void deleteEdgesBatch(std::vector<EdgePair> Edges) {
    applyOwnedBatch(std::move(Edges), /*Insert=*/false);
  }

  /// Sequence number of the latest installed version (diagnostic).
  int64_t currentTimestamp() const {
    return int64_t(Versions.currentStamp());
  }

  /// Flat view of the latest version, O(1) vertex access. The store
  /// keeps one hot flat snapshot: when the cached flat already matches
  /// the latest stamp it is returned as-is; when the intervening epochs'
  /// digests are on record and small, the cached flat is refreshed in
  /// O(touched) page-repair work; otherwise a full parallel rebuild
  /// runs. The returned snapshot is immutable and keeps its source
  /// version alive; hold the shared_ptr for as long as the view is used.
  /// Callers serialize on an internal mutex only for the catch-up work;
  /// a reader of an unchanged epoch takes a lock-free fast path (one
  /// atomic stamp load + one atomic shared_ptr load).
  std::shared_ptr<const Flat> acquireFlat() {
    // Lock-free fast path: the stamp is read FIRST; if the cached entry
    // then matches it, that flat rendered the version current at the
    // instant of the stamp read (the cache never regresses, and a newer
    // entry carries a larger stamp, failing the compare) — exactly the
    // freshness the mutex path promises. The flat and its stamp live in
    // one StampedFlat node behind a single atomic pointer, so the pair
    // is read consistently without the mutex.
    {
      uint64_t S = Versions.currentStamp();
      std::shared_ptr<const StampedFlat> Hot = std::atomic_load_explicit(
          &CachedFlat, std::memory_order_acquire);
      if (Hot && Hot->Stamp == S) {
        FlatHitsV.fetch_add(1, std::memory_order_relaxed);
        const Flat *FP = &Hot->F;
        return {std::move(Hot), FP};
      }
    }

    std::lock_guard<std::mutex> Lock(FlatM);
    // Acquired under FlatM: every cache entry was built from a version
    // acquired while holding this lock, so S >= Cached->Stamp always and
    // the cache can never regress to an older version.
    auto H = Versions.acquire();
    uint64_t S = H.stamp();
    std::shared_ptr<const StampedFlat> Cached =
        std::atomic_load_explicit(&CachedFlat, std::memory_order_acquire);
    if (Cached && Cached->Stamp == S) {
      ++Stats.Hits;
      const Flat *FP = &Cached->F;
      return {std::move(Cached), FP};
    }
    std::shared_ptr<StampedFlat> New;
    if (Cached) {
      std::vector<VertexId> Touched;
      bool Covered = Digests.replay(
          Cached->Stamp, S, [&](const std::vector<VertexId> &D) {
            Touched.insert(Touched.end(), D.begin(), D.end());
          });
      if (Covered) {
        parallelSort(Touched);
        Touched.erase(std::unique(Touched.begin(), Touched.end()),
                      Touched.end());
        VertexId U = H.value().vertexUniverse();
        if (uint64_t(Touched.size()) * FlatRefreshDenominator <=
            uint64_t(U)) {
          New = std::make_shared<StampedFlat>();
          New->F = Flat::refresh(Cached->F, H.value(), Touched.data(),
                                 Touched.size());
          ++Stats.Refreshes;
        }
      }
    }
    if (!New) {
      New = std::make_shared<StampedFlat>();
      New->F = Flat(H.value());
      ++Stats.Rebuilds;
    }
    New->Stamp = S;
    std::shared_ptr<const StampedFlat> Pub = std::move(New);
    // Atomic publish pairs with the fast path's lock-free load.
    std::atomic_store_explicit(&CachedFlat, Pub,
                               std::memory_order_release);
    const Flat *FP = &Pub->F;
    return {std::move(Pub), FP};
  }

  /// Rebuild/refresh/hit counters of acquireFlat() (diagnostics, tests).
  /// Hits counts both mutex-path and lock-free fast-path hits.
  FlatMaintenanceStats flatStats() const {
    std::lock_guard<std::mutex> Lock(FlatM);
    FlatMaintenanceStats R = Stats;
    R.Hits += FlatHitsV.load(std::memory_order_relaxed);
    return R;
  }

  /// Durability engine of a durable store (nullptr on a memory-only
  /// store). Diagnostics only — the store drives it internally.
  const DurabilityEngine *durability() const { return Durable.get(); }

  /// Mutable engine access for the self-healing layer (scrubber,
  /// replication drivers).
  DurabilityEngine *durability() { return Durable.get(); }

  /// Serialize the latest version as a durable checkpoint, rotate the
  /// WAL, and drop the log prefix it covers. Durable stores only.
  /// Returns the checkpointed batch sequence number.
  uint64_t checkpointNow() {
    assert(Durable && "checkpointNow on a memory-only store");
    auto H = Versions.acquire();
    std::vector<std::vector<uint8_t>> Streams(1);
    serializeSnapshot(H.value(), Streams[0]);
    uint64_t Seq = H.stamp() + DurableSeqBase;
    Durable->checkpoint(Seq, /*LogShards=*/0, Streams);
    return Seq;
  }

private:
  /// Snapshot (refcount copy) of the current version for the writer.
  GraphSnapshotT<EdgeSet> currentCopy() {
    auto H = Versions.acquire();
    return H.value();
  }

  /// The shared batch pipeline: WAL append (durable stores; before the
  /// span path's in-place sort consumes the buffer), functional merge,
  /// install, group-commit ack, and the auto-checkpoint trigger.
  void applyOwnedBatch(std::vector<EdgePair> Edges, bool Insert) {
    DurabilityEngine::Ticket Tk;
    if (Durable)
      Tk = Durable->append(Insert ? WalKind::InsertBatch
                                  : WalKind::DeleteBatch,
                           Versions.currentStamp() + 1 + DurableSeqBase,
                           Edges.data(), Edges.size());
    GraphSnapshotT<EdgeSet> Next = currentCopy();
    std::vector<VertexId> Touched;
    auto G = Insert
                 ? Next.insertEdgesSpan(Edges.data(), Edges.size(), &Touched)
                 : Next.deleteEdgesSpan(Edges.data(), Edges.size(), &Touched);
    installWithDigest(std::move(G), std::move(Touched));
    if (Durable) {
      Durable->sync(Tk); // acknowledged == durable
      uint64_t Every = Durable->options().CheckpointEveryBatches;
      if (Every && Versions.currentStamp() + DurableSeqBase >=
                       Durable->lastCheckpointSeq() + Every)
        checkpointNow();
    }
  }

  /// Publish \p G and record its touched digest. A digest above the
  /// refresh threshold is not worth retaining — any replay span
  /// containing it is guaranteed to exceed the same threshold and
  /// rebuild — so the log is cleared instead (skipping the pointless
  /// replay+sort on the reader side).
  void installWithDigest(GraphSnapshotT<EdgeSet> G,
                         std::vector<VertexId> Touched) {
    uint64_t Cap = uint64_t(G.vertexUniverse()) / FlatRefreshDenominator;
    uint64_t S = Versions.set(std::move(G));
    if (uint64_t(Touched.size()) <= Cap)
      Digests.record(S, std::move(Touched));
    else
      Digests.clear();
  }

  List Versions;
  DeltaLogT<std::vector<VertexId>> Digests;

  // Durability (nullptr on a memory-only store). WAL batch sequence =
  // install stamp + DurableSeqBase: version-list stamps restart at zero
  // per process, the base re-anchors them to the recovered log position.
  std::unique_ptr<DurabilityEngine> Durable;
  uint64_t DurableSeqBase = 0;

  /// The hot-flat cache entry: the flat and the stamp it renders travel
  /// in one node behind a single atomic shared_ptr, so the lock-free
  /// fast path reads a consistent (flat, stamp) pair. acquireFlat()
  /// hands out aliasing shared_ptrs to F that keep the node alive.
  struct StampedFlat {
    Flat F;
    uint64_t Stamp = 0;
  };

  mutable std::mutex FlatM;
  std::shared_ptr<const StampedFlat> CachedFlat;
  FlatMaintenanceStats Stats;
  mutable std::atomic<uint64_t> FlatHitsV{0};
};

using VersionedGraph = VersionedGraphT<CTreeSet<VertexId, DeltaByteCodec>>;
/// Degree-adaptive hybrid edge sets (graph/hybrid_set.h).
using VersionedHybridGraph = VersionedGraphT<HybridEdgeSet>;

} // namespace aspen

#endif // ASPEN_GRAPH_VERSIONED_GRAPH_H
