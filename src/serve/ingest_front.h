//===- serve/ingest_front.h - Coalescing, pipelining writer front ---------===//
//
// The per-store ingest front-queue (DESIGN.md Section 8). Concurrent
// writer threads submit batches here instead of calling the store
// directly; the front turns a contended same-shard writer stream — which
// would serialize end-to-end on the shard writer locks — into:
//
//   1. COALESCING: while one group holds the shard locks, every batch
//      that queues up behind it is drained as one merged span (a maximal
//      same-kind FIFO prefix, capped at MaxCoalesce). The store installs
//      the merged span as a single epoch advancing BatchSeq by the group
//      size; set semantics make the result byte-identical to
//      one-at-a-time ingest, and each batch keeps its own sequence
//      number and WAL record.
//   2. PIPELINING: the drained group's prepare phase (split + group/sort
//      + edge-set builds — the CPU-heavy part) runs with no locks held,
//      overlapping the predecessor group's merge/install. One group
//      prepares at a time (bounding scratch footprint); commits retire
//      in strict FIFO ticket order, so acknowledgement order equals
//      submission order.
//
// The combining thread is one of the submitters (flat combining): a
// submitter whose request is still queued and who finds no active
// preparer drains the next group and drives it to completion — possibly
// helping requests ahead of its own — then rechecks. Batches are
// acknowledged (submit returns the batch's own sequence number) only
// after their group's install is published and, on a durable store,
// group-committed.
//
// FIFO commit ordering means the front serializes installs even when
// consecutive groups touch disjoint shards; the front is the right tool
// for hot-shard writer streams, while uncorrelated writers can still
// call the store directly and merge concurrently.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_SERVE_INGEST_FRONT_H
#define ASPEN_SERVE_INGEST_FRONT_H

#include "store/sharded_graph.h"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <vector>

namespace aspen {

/// Coalescing + pipelining writer front over a sharded store.
template <class Store> class IngestFrontT {
public:
  struct Stats {
    uint64_t Submitted = 0; ///< batches accepted
    uint64_t Installs = 0;  ///< store installs (groups)
    uint64_t Coalesced = 0; ///< batches that shared an install with others
    uint64_t MaxGroup = 0;  ///< largest group drained
  };

  explicit IngestFrontT(Store &S, size_t MaxCoalesce = 32)
      : S(S), MaxCoalesce(MaxCoalesce ? MaxCoalesce : 1) {}

  IngestFrontT(const IngestFrontT &) = delete;
  IngestFrontT &operator=(const IngestFrontT &) = delete;

  /// Submit an insert batch; blocks until the batch's install is
  /// published (and durable, on a durable store). Returns the batch's
  /// own sequence number. The edges must stay alive for the call.
  uint64_t insertBatch(const EdgePair *Edges, size_t K) {
    return submit(EdgeSpan{Edges, K}, /*Insert=*/true);
  }
  uint64_t insertBatch(const std::vector<EdgePair> &Edges) {
    return insertBatch(Edges.data(), Edges.size());
  }

  /// Submit a delete batch (same contract as insertBatch).
  uint64_t deleteBatch(const EdgePair *Edges, size_t K) {
    return submit(EdgeSpan{Edges, K}, /*Insert=*/false);
  }
  uint64_t deleteBatch(const std::vector<EdgePair> &Edges) {
    return deleteBatch(Edges.data(), Edges.size());
  }

  Stats stats() const {
    std::lock_guard<std::mutex> L(M);
    return St;
  }

  Store &store() { return S; }

private:
  struct Request {
    EdgeSpan Span;
    bool Insert;
    uint64_t Seq = 0;
    std::exception_ptr Err;
    bool Done = false;
  };

  uint64_t submit(EdgeSpan Span, bool Insert) {
    Request R{Span, Insert, 0, nullptr, false};
    std::unique_lock<std::mutex> L(M);
    Pending.push_back(&R);
    ++St.Submitted;
    for (;;) {
      if (R.Done) {
        if (R.Err)
          std::rethrow_exception(R.Err);
        return R.Seq;
      }
      if (!PrepActive && !Pending.empty()) {
        runGroup(L); // drains + prepares + commits one group
        continue;    // our request may have been in it (or moved up)
      }
      CV.wait(L);
    }
  }

  /// Drain one maximal same-kind FIFO prefix and drive it through
  /// prepare (single active preparer) and commit (FIFO ticket order).
  /// Called with \p L held; returns with \p L held.
  void runGroup(std::unique_lock<std::mutex> &L) {
    PrepActive = true;
    bool Insert = Pending.front()->Insert;
    std::vector<Request *> Group;
    while (!Pending.empty() && Pending.front()->Insert == Insert &&
           Group.size() < MaxCoalesce) {
      Group.push_back(Pending.front());
      Pending.pop_front();
    }
    uint64_t Ticket = NextTicket++;
    ++St.Installs;
    if (Group.size() > 1)
      St.Coalesced += Group.size();
    St.MaxGroup = std::max(St.MaxGroup, uint64_t(Group.size()));
    L.unlock();

    std::vector<EdgeSpan> Spans(Group.size());
    for (size_t I = 0; I < Group.size(); ++I)
      Spans[I] = Group[I]->Span;

    // Prepare with no locks held: overlaps the predecessor group's
    // commit, which is the pipelining half of the front.
    std::exception_ptr Err;
    std::optional<typename Store::PreparedIngest> P;
    bool Pipelined = S.pipelinedIngest();
    if (Pipelined) {
      try {
        P.emplace(S.prepareSpans(Spans.data(), Spans.size(), Insert));
      } catch (...) {
        Err = std::current_exception();
      }
    }

    // Single-preparer stage ends: hand the prepare slot to the next
    // group before we block on our commit turn.
    {
      std::lock_guard<std::mutex> G(M);
      PrepActive = false;
    }
    CV.notify_all();

    // Commit in strict ticket order (ack order == submission order). A
    // failed prepare still takes and advances its turn, else successors
    // would wait forever.
    {
      std::unique_lock<std::mutex> TL(TurnM);
      TurnCV.wait(TL, [&] { return CommitTurn == Ticket; });
    }
    uint64_t LastSeq = 0;
    if (!Err) {
      try {
        LastSeq = Pipelined
                      ? S.commitPrepared(std::move(*P))
                      : S.applySpans(Spans.data(), Spans.size(), Insert);
      } catch (...) {
        Err = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> TL(TurnM);
      ++CommitTurn;
    }
    TurnCV.notify_all();

    L.lock();
    // Acknowledge under M: batch I of the group owns sequence number
    // LastSeq - (N-1-I). Requests may be freed by their submitters the
    // moment they observe Done, so nothing touches them after this loop.
    for (size_t I = 0; I < Group.size(); ++I) {
      Group[I]->Err = Err;
      Group[I]->Seq = Err ? 0 : LastSeq - (Group.size() - 1 - I);
      Group[I]->Done = true;
    }
    CV.notify_all();
  }

  Store &S;
  size_t MaxCoalesce;

  mutable std::mutex M; ///< queue, preparer flag, stats, acknowledgements
  std::condition_variable CV;
  std::deque<Request *> Pending;
  bool PrepActive = false;
  uint64_t NextTicket = 0;
  Stats St;

  std::mutex TurnM; ///< FIFO commit tickets
  std::condition_variable TurnCV;
  uint64_t CommitTurn = 0;
};

} // namespace aspen

#endif // ASPEN_SERVE_INGEST_FRONT_H
