//===- serve/session.h - Pooled per-session AlgoContexts ------------------===//
//
// Multi-tenant sessions share a fixed pool of AlgoContext workspaces
// (DESIGN.md Section 8). A query leases a context for its lifetime and
// returns it on destruction; because contexts cache their workspace
// blocks between runs, steady-state queries across many sessions are
// allocation-free — the pool's warm contexts stand in for per-session
// workspaces without O(sessions) memory.
//
// An optional per-context retain limit (AlgoContext::setRetainLimit)
// bounds what one leased context may pin between queries, so a single
// hub-sized query cannot grow every pool slot to the high-water mark.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_SERVE_SESSION_H
#define ASPEN_SERVE_SESSION_H

#include "memory/algo_context.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace aspen {

/// Fixed-capacity pool of reusable AlgoContexts with RAII leases.
class SessionPool {
public:
  /// \p Capacity contexts, each optionally retain-limited to
  /// \p RetainBytes (0 = unlimited).
  explicit SessionPool(size_t Capacity, size_t RetainBytes = 0) {
    All.reserve(Capacity);
    Free.reserve(Capacity);
    for (size_t I = 0; I < Capacity; ++I) {
      All.push_back(std::make_unique<AlgoContext>());
      if (RetainBytes)
        All.back()->setRetainLimit(RetainBytes);
      Free.push_back(All.back().get());
    }
  }

  SessionPool(const SessionPool &) = delete;
  SessionPool &operator=(const SessionPool &) = delete;

  /// RAII context lease; returns the context to the pool on destruction.
  class Lease {
  public:
    Lease() = default;
    Lease(Lease &&O) noexcept : P(O.P), C(O.C) {
      O.P = nullptr;
      O.C = nullptr;
    }
    Lease &operator=(Lease &&O) noexcept {
      if (this != &O) {
        release();
        P = O.P;
        C = O.C;
        O.P = nullptr;
        O.C = nullptr;
      }
      return *this;
    }
    ~Lease() { release(); }

    explicit operator bool() const { return C != nullptr; }
    AlgoContext &ctx() { return *C; }
    AlgoContext *operator->() { return C; }

    /// Explicit early return to the pool.
    void release() {
      if (P)
        P->giveBack(C);
      P = nullptr;
      C = nullptr;
    }

  private:
    friend class SessionPool;
    Lease(SessionPool *P, AlgoContext *C) : P(P), C(C) {}
    SessionPool *P = nullptr;
    AlgoContext *C = nullptr;
  };

  /// Lease a context, blocking until one is free. With pool capacity >=
  /// the worker count (the server's sizing), this never blocks.
  Lease lease() {
    std::unique_lock<std::mutex> L(M);
    if (Free.empty())
      ++Waits;
    CV.wait(L, [&] { return !Free.empty(); });
    AlgoContext *C = Free.back();
    Free.pop_back();
    return Lease(this, C);
  }

  /// Non-blocking lease; an empty Lease (operator bool false) means the
  /// pool is exhausted.
  Lease tryLease() {
    std::lock_guard<std::mutex> L(M);
    if (Free.empty())
      return Lease();
    AlgoContext *C = Free.back();
    Free.pop_back();
    return Lease(this, C);
  }

  size_t capacity() const { return All.size(); }
  size_t available() const {
    std::lock_guard<std::mutex> L(M);
    return Free.size();
  }
  /// Number of lease() calls that had to block.
  uint64_t waitCount() const {
    std::lock_guard<std::mutex> L(M);
    return Waits;
  }

private:
  friend class Lease;
  void giveBack(AlgoContext *C) {
    {
      std::lock_guard<std::mutex> L(M);
      Free.push_back(C);
    }
    CV.notify_one();
  }

  mutable std::mutex M;
  std::condition_variable CV;
  std::vector<std::unique_ptr<AlgoContext>> All;
  std::vector<AlgoContext *> Free; ///< LIFO: the warmest context first
  uint64_t Waits = 0;
};

} // namespace aspen

#endif // ASPEN_SERVE_SESSION_H
