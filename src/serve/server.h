//===- serve/server.h - Multi-tenant snapshot server ----------------------===//
//
// The end-to-end serving assembly (DESIGN.md Section 8): a worker pool
// over a sharded store that serves pinned-snapshot queries concurrently
// with coalesced, pipelined ingest.
//
//   requests -> AdmissionQueueT (bounded, weighted-fair, load-shedding)
//     reads  -> SessionPool lease -> QueryContext (lazy snapshot pin)
//     writes -> IngestFrontT (coalescing + pipelining into the store)
//
// Every query runs on a leased AlgoContext (allocation-free at steady
// state) and pins at most one tree epoch (acquire) and one flat epoch
// (acquireFlat) for its own lifetime — epoch-consistent reads while the
// writer streams. Epoch lag — how many batches landed between a query's
// admission and its execution — is tracked per query; bounded queues
// keep it bounded under overload (shed, don't stall). When MaxReaderLag
// is set, the writer path additionally throttles itself: a batch briefly
// waits (bounded by ThrottleMaxWaitMs, so a busy pool can never deadlock
// on itself) while the oldest still-queued read has already fallen
// further behind than that — trading a little ingest latency for a hard
// ceiling on how stale an admitted query can get.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_SERVE_SERVER_H
#define ASPEN_SERVE_SERVER_H

#include "serve/admission.h"
#include "serve/ingest_front.h"
#include "serve/session.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <set>
#include <thread>

namespace aspen {

/// Multi-tenant snapshot server over a sharded store.
template <class Store> class SnapshotServerT {
public:
  struct Options {
    size_t Workers = 4;           ///< worker threads (= pooled contexts)
    size_t ReadQueueCap = 1024;   ///< queued queries before shedding
    size_t WriteQueueCap = 64;    ///< queued batches before shedding
    unsigned ReadsPerWrite = 8;   ///< fairness ratio under saturation
    size_t MaxCoalesce = 32;      ///< ingest-front group bound
    size_t CtxRetainBytes = 0;    ///< per-context retain limit (0 = off)

    /// Throttle a write while the oldest still-queued read already lags
    /// the store by more than this many batches (0 = no throttling).
    uint64_t MaxReaderLag = 0;
    /// Upper bound on one batch's throttle wait. Keeps the writer
    /// live when the read backlog is not draining (e.g. every worker
    /// is the one holding the write) — throttling is back-pressure,
    /// never a lock.
    unsigned ThrottleMaxWaitMs = 5;
  };

  /// Per-query execution context: the leased workspace plus lazily
  /// pinned snapshots. Pins live exactly as long as the query runs.
  class QueryContext {
  public:
    AlgoContext &ctx() { return Ctx; }

    /// Tree-epoch pin (first call acquires; later calls reuse).
    const typename Store::Ref &snapshot() {
      if (!Pinned.valid())
        Pinned = S.acquire();
      return Pinned;
    }

    /// Flat-epoch pin (first call acquires; later calls reuse). Cache
    /// hits take the store's lock-free fast path.
    const std::shared_ptr<const typename Store::FlatEpoch> &flat() {
      if (!FlatPin)
        FlatPin = S.acquireFlat();
      return FlatPin;
    }

  private:
    friend class SnapshotServerT;
    QueryContext(Store &S, AlgoContext &Ctx) : S(S), Ctx(Ctx) {}
    Store &S;
    AlgoContext &Ctx;
    typename Store::Ref Pinned;
    std::shared_ptr<const typename Store::FlatEpoch> FlatPin;
  };

  using Query = std::function<void(QueryContext &)>;

  struct Stats {
    uint64_t QueriesDone = 0;
    uint64_t WritesDone = 0;
    uint64_t QueryErrors = 0;
    uint64_t WriteErrors = 0;
    uint64_t EpochLagSum = 0; ///< batches landed while queries queued
    uint64_t EpochLagMax = 0;
    uint64_t WriteThrottleWaits = 0; ///< writes delayed by MaxReaderLag
    AdmissionStats Admission;                  ///< shed/admit counts
    typename IngestFrontT<Store>::Stats Front; ///< coalescing stats
    uint64_t SessionWaits = 0;
  };

  SnapshotServerT(Store &S, Options O = {})
      : S(S), O(O), Front(S, O.MaxCoalesce),
        Pool(O.Workers ? O.Workers : 1, O.CtxRetainBytes),
        Queue({O.ReadQueueCap, O.WriteQueueCap, O.ReadsPerWrite}) {
    Threads.reserve(this->O.Workers ? this->O.Workers : 1);
    for (size_t I = 0, N = this->O.Workers ? this->O.Workers : 1; I < N;
         ++I)
      Threads.emplace_back([this] { workerLoop(); });
  }

  SnapshotServerT(const SnapshotServerT &) = delete;
  SnapshotServerT &operator=(const SnapshotServerT &) = delete;
  ~SnapshotServerT() { stop(); }

  /// Admit a query; false = shed (read queue full). The query runs on a
  /// worker with a leased context and may pin snapshots via its
  /// QueryContext.
  bool submitQuery(Query Q) {
    Item It;
    It.Q = std::move(Q);
    It.SubmitSeq = S.batchSeq();
    return push(RequestClass::Read, std::move(It));
  }

  /// Admit an insert batch; false = shed (write queue full). The batch
  /// routes through the coalescing ingest front.
  bool submitInsert(std::vector<EdgePair> Edges) {
    Item It;
    It.Edges = std::move(Edges);
    It.Insert = true;
    return push(RequestClass::Write, std::move(It));
  }

  /// Admit a delete batch; false = shed.
  bool submitDelete(std::vector<EdgePair> Edges) {
    Item It;
    It.Edges = std::move(Edges);
    It.Insert = false;
    return push(RequestClass::Write, std::move(It));
  }

  /// Block until every admitted request has completed.
  void drain() {
    std::unique_lock<std::mutex> L(DrainM);
    DrainCV.wait(L, [&] { return InFlight == 0; });
  }

  /// Stop admitting, drain admitted work, join the workers. Idempotent.
  void stop() {
    Queue.stop();
    for (std::thread &T : Threads)
      if (T.joinable())
        T.join();
    Threads.clear();
  }

  Stats stats() const {
    Stats R;
    R.QueriesDone = QueriesDone.load(std::memory_order_relaxed);
    R.WritesDone = WritesDone.load(std::memory_order_relaxed);
    R.QueryErrors = QueryErrors.load(std::memory_order_relaxed);
    R.WriteErrors = WriteErrors.load(std::memory_order_relaxed);
    R.EpochLagSum = EpochLagSum.load(std::memory_order_relaxed);
    R.EpochLagMax = EpochLagMax.load(std::memory_order_relaxed);
    R.WriteThrottleWaits =
        WriteThrottleWaits.load(std::memory_order_relaxed);
    R.Admission = Queue.stats();
    R.Front = Front.stats();
    R.SessionWaits = Pool.waitCount();
    return R;
  }

  Store &store() { return S; }
  IngestFrontT<Store> &front() { return Front; }

private:
  struct Item {
    Query Q;                     // reads
    std::vector<EdgePair> Edges; // writes (owned until installed)
    bool Insert = false;
    uint64_t SubmitSeq = 0;
  };

  bool push(RequestClass C, Item It) {
    uint64_t Seq = It.SubmitSeq;
    {
      std::lock_guard<std::mutex> L(DrainM);
      ++InFlight; // optimistic: rolled back on shed
      if (C == RequestClass::Read)
        QueuedReads.insert(Seq);
    }
    if (Queue.tryPush(C, std::move(It)))
      return true;
    {
      std::lock_guard<std::mutex> L(DrainM);
      --InFlight;
      if (C == RequestClass::Read)
        QueuedReads.erase(QueuedReads.find(Seq));
    }
    DrainCV.notify_all();
    ThrottleCV.notify_all();
    return false;
  }

  void finishOne() {
    {
      std::lock_guard<std::mutex> L(DrainM);
      --InFlight;
    }
    DrainCV.notify_all();
  }

  void workerLoop() {
    while (auto Popped = Queue.pop()) {
      Item &It = Popped->second;
      if (Popped->first == RequestClass::Read) {
        // This read is now executing (it pins a fresh epoch), so it no
        // longer counts toward the queued-reader lag the writer path
        // throttles on.
        {
          std::lock_guard<std::mutex> L(DrainM);
          QueuedReads.erase(QueuedReads.find(It.SubmitSeq));
        }
        ThrottleCV.notify_all();
        try {
          SessionPool::Lease Lease = Pool.lease();
          QueryContext QC(S, Lease.ctx());
          It.Q(QC);
        } catch (...) {
          QueryErrors.fetch_add(1, std::memory_order_relaxed);
        }
        uint64_t Lag = S.batchSeq() - It.SubmitSeq;
        EpochLagSum.fetch_add(Lag, std::memory_order_relaxed);
        uint64_t Prev = EpochLagMax.load(std::memory_order_relaxed);
        while (Lag > Prev && !EpochLagMax.compare_exchange_weak(
                                 Prev, Lag, std::memory_order_relaxed))
          ;
        QueriesDone.fetch_add(1, std::memory_order_relaxed);
      } else {
        if (O.MaxReaderLag) {
          std::unique_lock<std::mutex> L(DrainM);
          auto LagTooBig = [&] {
            return !QueuedReads.empty() &&
                   S.batchSeq() - *QueuedReads.begin() > O.MaxReaderLag;
          };
          if (LagTooBig()) {
            WriteThrottleWaits.fetch_add(1, std::memory_order_relaxed);
            ThrottleCV.wait_for(
                L, std::chrono::milliseconds(O.ThrottleMaxWaitMs),
                [&] { return !LagTooBig(); });
          }
        }
        try {
          if (It.Insert)
            Front.insertBatch(It.Edges);
          else
            Front.deleteBatch(It.Edges);
        } catch (...) {
          WriteErrors.fetch_add(1, std::memory_order_relaxed);
        }
        WritesDone.fetch_add(1, std::memory_order_relaxed);
      }
      finishOne();
    }
  }

  Store &S;
  Options O;
  IngestFrontT<Store> Front;
  SessionPool Pool;
  AdmissionQueueT<Item> Queue;
  std::vector<std::thread> Threads;

  std::atomic<uint64_t> QueriesDone{0}, WritesDone{0};
  std::atomic<uint64_t> QueryErrors{0}, WriteErrors{0};
  std::atomic<uint64_t> EpochLagSum{0}, EpochLagMax{0};
  std::atomic<uint64_t> WriteThrottleWaits{0};

  std::mutex DrainM; ///< admitted-but-unfinished accounting + QueuedReads
  std::condition_variable DrainCV;
  uint64_t InFlight = 0;
  /// SubmitSeqs of admitted-but-not-yet-executing reads; the writer
  /// throttle watches the oldest (begin()).
  std::multiset<uint64_t> QueuedReads;
  std::condition_variable ThrottleCV;
};

/// Default serving configuration: degree-adaptive hybrid shards (the
/// serving benchmark's default store).
using SnapshotServer = SnapshotServerT<HybridShardedGraphStore>;

} // namespace aspen

#endif // ASPEN_SERVE_SERVER_H
