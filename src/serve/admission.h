//===- serve/admission.h - Bounded two-class admission queue --------------===//
//
// Admission control + backpressure for the snapshot server (DESIGN.md
// Section 8). Requests are classed as reads (queries) or writes (ingest
// batches) and admitted into bounded FIFO queues; a full queue REJECTS
// the request (tryPush returns false) instead of blocking the client, so
// overload degrades to load shedding with bounded queueing delay for
// admitted requests rather than unbounded latency collapse.
//
// The consumer side is weighted-fair: when both classes are waiting,
// workers serve ReadsPerWrite reads per write, so a query flood cannot
// starve ingest (epoch lag stays bounded) and a writer burst cannot
// starve queries. When one class is empty, the other is served
// unconditionally (work conserving — credits only throttle against
// actual waiting work).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_SERVE_ADMISSION_H
#define ASPEN_SERVE_ADMISSION_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace aspen {

enum class RequestClass : uint8_t { Read, Write };

/// Admit/shed counters of an AdmissionQueueT (request-type independent).
struct AdmissionStats {
  uint64_t AdmittedReads = 0;
  uint64_t AdmittedWrites = 0;
  uint64_t ShedReads = 0;
  uint64_t ShedWrites = 0;
};

/// Bounded two-class MPMC admission queue with weighted-fair pops.
template <class Req> class AdmissionQueueT {
public:
  struct Options {
    size_t ReadCap = 1024;      ///< max queued reads before shedding
    size_t WriteCap = 64;       ///< max queued writes before shedding
    unsigned ReadsPerWrite = 8; ///< fairness ratio when both classes wait
  };

  using Stats = AdmissionStats;

  explicit AdmissionQueueT(Options O = {}) : O(O) {
    if (!this->O.ReadsPerWrite)
      this->O.ReadsPerWrite = 1;
    Credit = this->O.ReadsPerWrite;
  }

  AdmissionQueueT(const AdmissionQueueT &) = delete;
  AdmissionQueueT &operator=(const AdmissionQueueT &) = delete;

  /// Admit or shed: false when the class's queue is at capacity (or the
  /// queue is stopped). Never blocks.
  bool tryPush(RequestClass C, Req R) {
    {
      std::lock_guard<std::mutex> L(M);
      std::deque<Req> &Q = C == RequestClass::Read ? Reads : Writes;
      size_t Cap = C == RequestClass::Read ? O.ReadCap : O.WriteCap;
      if (Stopped || Q.size() >= Cap) {
        ++(C == RequestClass::Read ? St.ShedReads : St.ShedWrites);
        return false;
      }
      Q.push_back(std::move(R));
      ++(C == RequestClass::Read ? St.AdmittedReads : St.AdmittedWrites);
    }
    CV.notify_one();
    return true;
  }

  /// Blocking weighted-fair pop. Returns nullopt only when the queue is
  /// stopped AND drained — admitted requests are always served.
  std::optional<std::pair<RequestClass, Req>> pop() {
    std::unique_lock<std::mutex> L(M);
    CV.wait(L,
            [&] { return Stopped || !Reads.empty() || !Writes.empty(); });
    if (Reads.empty() && Writes.empty())
      return std::nullopt; // stopped and drained

    bool TakeWrite;
    if (Writes.empty())
      TakeWrite = false;
    else if (Reads.empty())
      TakeWrite = true;
    else
      TakeWrite = Credit == 0; // both waiting: spend read credit first
    if (TakeWrite) {
      Credit = O.ReadsPerWrite;
      Req R = std::move(Writes.front());
      Writes.pop_front();
      return std::make_pair(RequestClass::Write, std::move(R));
    }
    if (!Writes.empty() && Credit)
      --Credit; // only charge credit while a write actually waits
    Req R = std::move(Reads.front());
    Reads.pop_front();
    return std::make_pair(RequestClass::Read, std::move(R));
  }

  /// Stop admitting; wake all poppers. Already-admitted requests still
  /// drain through pop().
  void stop() {
    {
      std::lock_guard<std::mutex> L(M);
      Stopped = true;
    }
    CV.notify_all();
  }

  bool stopped() const {
    std::lock_guard<std::mutex> L(M);
    return Stopped;
  }

  size_t depth(RequestClass C) const {
    std::lock_guard<std::mutex> L(M);
    return (C == RequestClass::Read ? Reads : Writes).size();
  }

  Stats stats() const {
    std::lock_guard<std::mutex> L(M);
    return St;
  }

private:
  Options O;
  mutable std::mutex M;
  std::condition_variable CV;
  std::deque<Req> Reads, Writes;
  unsigned Credit = 0;
  bool Stopped = false;
  Stats St;
};

} // namespace aspen

#endif // ASPEN_SERVE_ADMISSION_H
