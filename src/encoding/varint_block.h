//===- encoding/varint_block.h - Block varint decoding --------------------===//
//
// Block decoding for the byte codes of encoding/byte_code.h: instead of
// decoding one varint per call through a data-dependent byte loop, the
// decoders here fill a small buffer with up to BlockVarintCursor::BlockElts
// decoded values (and their end byte offsets) per step, so the per-value
// cost on the chunk-merge / seek / edge-map hot path is a buffered load.
//
// Three decode tiers, fastest available selected at runtime:
//
//  * SSSE3 shuffle-table decode (x86): a 16-byte load's continuation-bit
//    movemask indexes a precomputed table of PSHUFB controls that expands
//    up to eight 1-2 byte codes (the overwhelmingly common case for
//    difference-encoded neighbor ids) into 16-bit lanes decoded with two
//    masks and an or. Longer codes at the window front fall back to the
//    scalar decoder for that one value.
//  * SWAR word-at-a-time (portable): an 8-byte load's inverted
//    continuation bits locate every code terminating inside the word via
//    count-trailing-zeros; each code's 7-bit groups are compacted with
//    three shift-mask-or steps. Handles codes up to 8 bytes per word,
//    falling back to the scalar decoder for 9-10 byte codes.
//  * Scalar (decodeVarint): used for block tails where the remaining
//    varint count no longer guarantees that a wide load stays in bounds.
//
// In-bounds guarantee (same argument as VarintCursor::skip): every one of
// the R varints remaining in a stream occupies at least one byte, so a
// W-byte load at the next undecoded position stays inside the encoded
// region whenever R >= W. The wide paths only run under that condition.
//
// The SSSE3 tier is compiled behind ASPEN_ENABLE_SSSE3 (CMake option
// ASPEN_SIMD_SSSE3, default ON on x86) using a function-level target
// attribute, so the baseline build needs no -mssse3; the SWAR tier is
// always available and is what non-x86 and -DASPEN_SIMD_SSSE3=OFF builds
// run. Dispatch happens once via __builtin_cpu_supports.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ENCODING_VARINT_BLOCK_H
#define ASPEN_ENCODING_VARINT_BLOCK_H

#include "encoding/byte_code.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

#if defined(ASPEN_ENABLE_SSSE3) && defined(__x86_64__) &&                      \
    (defined(__GNUC__) || defined(__clang__))
#define ASPEN_SSSE3_COMPILED 1
#include <x86intrin.h>
#else
#define ASPEN_SSSE3_COMPILED 0
#endif

namespace aspen {

namespace detail {

/// Compact the 7-bit payload groups of up to eight little-endian code
/// bytes (continuation bits already cleared by the mask) into one value:
/// b0 | b1 << 7 | ... | b7 << 49, via three halving shift-mask-or steps.
inline uint64_t compact7x8(uint64_t X) {
  X &= 0x7f7f7f7f7f7f7f7full;
  X = (X & 0x007f007f007f007full) | ((X & 0x7f007f007f007f00ull) >> 1);
  X = (X & 0x00003fff00003fffull) | ((X & 0x3fff00003fff0000ull) >> 2);
  X = (X & 0x000000000fffffffull) | ((X & 0x0fffffff00000000ull) >> 4);
  return X;
}

} // namespace detail

/// Decode-overshoot headroom: a wide-path step may deliver up to this
/// many values beyond the requested count (it decodes every code
/// terminating in its load window rather than splitting the window).
/// Output buffers passed to the block decoders need Want +
/// VarintBlockSlack slots.
inline constexpr size_t VarintBlockSlack = 8;

/// Decode at least \p Want varints starting at \p In into \p Vals (up to
/// Want + VarintBlockSlack when a wide step overshoots; never more than
/// \p Avail, the number of varints the stream holds at \p In). EndOff[i]
/// = BaseOff + encoded bytes consumed through value i. Avail is what
/// licenses the wide loads (R remaining varints occupy >= R bytes).
/// Advances \p In past the decoded values and returns the decoded count.
/// Portable SWAR tier.
///
/// \tparam ValT uint64_t for arbitrary varints, or uint32_t when the
/// caller guarantees every decoded value fits 32 bits (difference-encoded
/// chunks of 32-bit keys) - the narrow type halves buffer and store
/// traffic on the dominant graph path.
template <class ValT>
inline size_t decodeVarintBlockSWAR(const uint8_t *&In, size_t Avail,
                                    size_t Want, ValT *Vals,
                                    uint32_t *EndOff, uint32_t BaseOff) {
  assert(Want <= Avail && "block decode past the stream's varint count");
  const uint8_t *P = In;
  size_t N = 0;
  while (N < Want && Avail - N >= 8) {
    uint64_t Word;
    std::memcpy(&Word, P, 8);
    uint64_t Term = ~Word & 0x8080808080808080ull;
    if (!Term) {
      // The code at P spans more than 8 bytes (a 9-10 byte 64-bit code):
      // scalar-decode just that value.
      uint64_t V;
      const uint8_t *Next = decodeVarint(P, V);
      BaseOff += uint32_t(Next - P);
      P = Next;
      Vals[N] = static_cast<ValT>(V);
      EndOff[N] = BaseOff;
      ++N;
      continue;
    }
    // Decode every code terminating in this word (<= 8, so the overshoot
    // past Want stays within VarintBlockSlack).
    unsigned Consumed = 0;
    do {
      unsigned EndByte = unsigned(__builtin_ctzll(Term)) >> 3;
      unsigned Len = EndByte + 1 - Consumed;
      uint64_t Code = Word >> (Consumed * 8);
      if (Len < 8)
        Code &= (uint64_t(1) << (Len * 8)) - 1;
      Vals[N] = static_cast<ValT>(detail::compact7x8(Code));
      Consumed = EndByte + 1;
      EndOff[N] = BaseOff + Consumed;
      ++N;
      Term &= Term - 1;
    } while (Term);
    // Bytes after the last terminator belong to a code continuing past
    // this word; reload from its start next iteration.
    P += Consumed;
    BaseOff += Consumed;
  }
  // Tail: too few varints left to license an 8-byte load.
  while (N < Want) {
    uint64_t V;
    const uint8_t *Next = decodeVarint(P, V);
    BaseOff += uint32_t(Next - P);
    P = Next;
    Vals[N] = static_cast<ValT>(V);
    EndOff[N] = BaseOff;
    ++N;
  }
  In = P;
  return N;
}

#if ASPEN_SSSE3_COMPILED

namespace detail {

/// Per-movemask shuffle recipe for decoding the codes that terminate
/// inside an 8-byte window. Indexed by the low 8 continuation bits of a
/// 16-byte load's movemask; an 8-bit index keeps the whole table at 16 KB
/// - L1-resident, unlike a 12-bit variant whose 256 KB thrashes on the
/// random masks of real delta streams. Each entry carries the better of
/// two expansions for its mask:
///  * Wide16 - up to eight 1-2 byte codes into eight 16-bit lanes (the
///    common shape for small graphs / dense chunks), or
///  * Wide32 - up to four 1-4 byte codes into four 32-bit lanes (large
///    graphs, whose gaps run 2-4 bytes).
/// "Better" = more input bytes consumed per step (ties favor Wide16,
/// which yields more values for cheaper math).
struct alignas(64) VarintShuffleEntry {
  uint8_t Shuf[16];  ///< PSHUFB control: lane j = bytes of code j (0x80 pad)
  uint16_t Pre[8];   ///< Prefix length sums: window end offset of code j
  uint8_t Count;     ///< Codes decoded by this recipe (0: front code > 4B)
  uint8_t Consumed;  ///< Input bytes consumed by the Count codes
  uint8_t Wide32;    ///< 1: four 32-bit lanes; 0: eight 16-bit lanes
  uint8_t Pad[29];
};
static_assert(sizeof(VarintShuffleEntry) == 64, "table entry packing");

/// The 256-entry recipe table, built once on first use (16 KB).
inline const VarintShuffleEntry *varintShuffleTable() {
  static const VarintShuffleEntry *Table = [] {
    auto *T = new VarintShuffleEntry[256];
    for (unsigned M = 0; M < 256; ++M) {
      // Greedy parse of codes up to MaxLen bytes terminating in the
      // window; returns (count, consumed) and fills ends[].
      auto Parse = [&](unsigned MaxLen, unsigned MaxCodes,
                       unsigned *Ends) -> std::pair<unsigned, unsigned> {
        unsigned Pos = 0, K = 0;
        while (K < MaxCodes) {
          unsigned Len = 1;
          while (Pos + Len - 1 < 8 && (M >> (Pos + Len - 1) & 1))
            ++Len;
          if (Pos + Len - 1 >= 8 || Len > MaxLen)
            break; // code crosses the window or exceeds this lane width
          Pos += Len;
          Ends[K++] = Pos;
        }
        return {K, Pos};
      };
      unsigned Ends16[8], Ends32[4];
      auto [C16, B16] = Parse(2, 8, Ends16);
      auto [C32, B32] = Parse(4, 4, Ends32);
      VarintShuffleEntry &E = T[M];
      std::memset(E.Shuf, 0x80, sizeof(E.Shuf));
      std::memset(E.Pre, 0, sizeof(E.Pre));
      std::memset(E.Pad, 0, sizeof(E.Pad));
      E.Wide32 = B32 > B16 ? 1 : 0;
      unsigned Count = E.Wide32 ? C32 : C16;
      unsigned Consumed = E.Wide32 ? B32 : B16;
      const unsigned *Ends = E.Wide32 ? Ends32 : Ends16;
      unsigned LaneBytes = E.Wide32 ? 4 : 2;
      unsigned Lanes = E.Wide32 ? 4 : 8;
      unsigned Pos = 0;
      for (unsigned K = 0; K < Count; ++K) {
        for (unsigned B = Pos; B < Ends[K]; ++B)
          E.Shuf[LaneBytes * K + (B - Pos)] = uint8_t(B);
        E.Pre[K] = uint16_t(Ends[K]);
        Pos = Ends[K];
      }
      E.Count = uint8_t(Count);
      E.Consumed = uint8_t(Consumed);
      // Lanes past Count are stored then overwritten; keep their offsets
      // at the consumed total so garbage stays bounded.
      for (unsigned J = Count; J < Lanes; ++J)
        E.Pre[J] = uint16_t(Consumed);
    }
    return T;
  }();
  return Table;
}

} // namespace detail

namespace detail {

/// Store eight decoded 16-bit lanes as eight ValT values at \p VOut.
template <class ValT>
__attribute__((target("ssse3"))) inline void
storeLanes16(uint8_t *VOut, __m128i V16, __m128i Z) {
  __m128i V32L = _mm_unpacklo_epi16(V16, Z);
  __m128i V32H = _mm_unpackhi_epi16(V16, Z);
  if constexpr (sizeof(ValT) == 8) {
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut),
                     _mm_unpacklo_epi32(V32L, Z));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut + 16),
                     _mm_unpackhi_epi32(V32L, Z));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut + 32),
                     _mm_unpacklo_epi32(V32H, Z));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut + 48),
                     _mm_unpackhi_epi32(V32H, Z));
  } else {
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut), V32L);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut + 16), V32H);
  }
}

/// Store four decoded 32-bit lanes as four ValT values at \p VOut.
template <class ValT>
__attribute__((target("ssse3"))) inline void
storeLanes32(uint8_t *VOut, __m128i V32, __m128i Z) {
  if constexpr (sizeof(ValT) == 8) {
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut),
                     _mm_unpacklo_epi32(V32, Z));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut + 16),
                     _mm_unpackhi_epi32(V32, Z));
  } else {
    _mm_storeu_si128(reinterpret_cast<__m128i *>(VOut), V32);
  }
}

} // namespace detail

/// SSSE3 tier of decodeVarintBlock; same contract (including the ValT
/// narrowing rule) as the SWAR tier.
template <class ValT>
__attribute__((target("ssse3"))) inline size_t
decodeVarintBlockSSSE3(const uint8_t *&In, size_t Avail, size_t Want,
                       ValT *Vals, uint32_t *EndOff, uint32_t BaseOff) {
  assert(Want <= Avail && "block decode past the stream's varint count");
  const detail::VarintShuffleEntry *Table = detail::varintShuffleTable();
  const __m128i Lo7 = _mm_set1_epi16(0x007f);
  const __m128i Hi7 = _mm_set1_epi16(0x3f80);
  const uint8_t *P = In;
  size_t N = 0;
  const __m128i Z = _mm_setzero_si128();
  const __m128i Ramp = _mm_setr_epi32(1, 2, 3, 4);
  const __m128i Four = _mm_set1_epi32(4);
  const __m128i M7_1 = _mm_set1_epi32(0x00003f80);
  const __m128i M7_2 = _mm_set1_epi32(0x001fc000);
  const __m128i M7_3 = _mm_set1_epi32(0x0fe00000);
  // Each step writes its lanes unconditionally and keeps Count of them,
  // so N can overshoot Want by up to 7 (within VarintBlockSlack). The
  // guard licenses 24 bytes at P: 16 for the current window plus the
  // speculative load of the next one at P + 8 (a full window consumes
  // exactly 8 bytes, so the next input is usually ready before this
  // window's table recipe resolves - the load would otherwise sit on the
  // loop-carried P chain).
  if (N < Want && Avail - N >= 24) {
    __m128i Input = _mm_loadu_si128(reinterpret_cast<const __m128i *>(P));
    do {
      __m128i Next8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i *>(P + 8));
      unsigned M = unsigned(_mm_movemask_epi8(Input)) & 0xffu;
      __m128i Base32 = _mm_set1_epi32(int(BaseOff));
      uint8_t *VOut = reinterpret_cast<uint8_t *>(Vals + N);
      unsigned Consumed;
      if (M == 0) {
        // Fast path - eight 1-byte codes (the dominant shape of
        // difference-encoded neighbor ids): the bytes are the values.
        detail::storeLanes16<ValT>(VOut, _mm_unpacklo_epi8(Input, Z), Z);
        __m128i OffL = _mm_add_epi32(Base32, Ramp);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(EndOff + N), OffL);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(EndOff + N + 4),
                         _mm_add_epi32(OffL, Four));
        N += 8;
        BaseOff += 8;
        P += 8;
        Input = Next8;
        continue;
      }
      const detail::VarintShuffleEntry &E = Table[M];
      if (E.Count == 0) {
        // A 5+ byte code heads the window: scalar-decode that one value.
        uint64_t V;
        const uint8_t *Next = decodeVarint(P, V);
        BaseOff += uint32_t(Next - P);
        P = Next;
        Vals[N] = static_cast<ValT>(V);
        EndOff[N] = BaseOff;
        ++N;
        Input = _mm_loadu_si128(reinterpret_cast<const __m128i *>(P));
        continue;
      }
      __m128i Shuf =
          _mm_load_si128(reinterpret_cast<const __m128i *>(E.Shuf));
      __m128i X = _mm_shuffle_epi8(Input, Shuf);
      __m128i Pre = _mm_load_si128(reinterpret_cast<const __m128i *>(E.Pre));
      if (!E.Wide32) {
      // Lane = hi << 8 | lo; value = (lo & 0x7f) | ((hi & 0x7f) << 7).
      __m128i V16 = _mm_or_si128(_mm_and_si128(X, Lo7),
                                 _mm_and_si128(_mm_srli_epi16(X, 1), Hi7));
      detail::storeLanes16<ValT>(VOut, V16, Z);
      _mm_storeu_si128(
          reinterpret_cast<__m128i *>(EndOff + N),
          _mm_add_epi32(_mm_unpacklo_epi16(Pre, Z), Base32));
      _mm_storeu_si128(
          reinterpret_cast<__m128i *>(EndOff + N + 4),
          _mm_add_epi32(_mm_unpackhi_epi16(Pre, Z), Base32));
    } else {
      // Four 32-bit lanes of 1-4 code bytes each: gather the four 7-bit
      // groups with shift-and-mask.
      __m128i V32 = _mm_and_si128(X, _mm_set1_epi32(0x7f));
      V32 = _mm_or_si128(V32, _mm_and_si128(_mm_srli_epi32(X, 1), M7_1));
      V32 = _mm_or_si128(V32, _mm_and_si128(_mm_srli_epi32(X, 2), M7_2));
      V32 = _mm_or_si128(V32, _mm_and_si128(_mm_srli_epi32(X, 3), M7_3));
      detail::storeLanes32<ValT>(VOut, V32, Z);
      _mm_storeu_si128(
          reinterpret_cast<__m128i *>(EndOff + N),
          _mm_add_epi32(_mm_unpacklo_epi16(Pre, Z), Base32));
      }
      N += E.Count;
      Consumed = E.Consumed;
      BaseOff += Consumed;
      P += Consumed;
      // Reuse the speculative load when the window consumed fully (the
      // common case); the reload branch is rarely taken and predicted.
      Input = Consumed == 8
                  ? Next8
                  : _mm_loadu_si128(reinterpret_cast<const __m128i *>(P));
    } while (N < Want && Avail - N >= 24);
  }
  In = P;
  if (N >= Want)
    return N;
  return N + decodeVarintBlockSWAR(In, Avail - N, Want - N, Vals + N,
                                   EndOff + N, BaseOff);
}

#endif // ASPEN_SSSE3_COMPILED

/// True when the dispatched decodeVarintBlock runs the SSSE3 tier.
inline bool blockDecodeUsesSSSE3() {
#if ASPEN_SSSE3_COMPILED
  static const bool Use = __builtin_cpu_supports("ssse3");
  return Use;
#else
  return false;
#endif
}

/// Name of the active decode tier ("ssse3" or "swar"), for bench output.
inline const char *blockDecodeTierName() {
  return blockDecodeUsesSSSE3() ? "ssse3" : "swar";
}

/// Decode at least \p Want varints (see decodeVarintBlockSWAR for the
/// full contract, including the ValT narrowing rule), through the
/// fastest tier this build + CPU supports.
template <class ValT>
inline size_t decodeVarintBlock(const uint8_t *&In, size_t Avail,
                                size_t Want, ValT *Vals,
                                uint32_t *EndOff, uint32_t BaseOff) {
#if ASPEN_SSSE3_COMPILED
  if (blockDecodeUsesSSSE3())
    return decodeVarintBlockSSSE3(In, Avail, Want, Vals, EndOff, BaseOff);
#endif
  return decodeVarintBlockSWAR(In, Avail, Want, Vals, EndOff, BaseOff);
}

/// Bounded forward reader over a region containing exactly \p Count
/// varints, decoding up to BlockElts values per refill through
/// decodeVarintBlock. The drop-in block-decoded upgrade of VarintCursor's
/// next/peek: the buffered head makes peek-then-next cost one decode, and
/// per-value end offsets keep byte-offset tracking (chunk slicing,
/// run-copy merges) exact.
class BlockVarintCursor {
public:
  static constexpr uint32_t BlockElts = 32;

  BlockVarintCursor() = default;
  BlockVarintCursor(const uint8_t *In, size_t Count)
      : In(In), Undecoded(Count) {}

  bool done() const { return Pos == Len && Undecoded == 0; }
  size_t remaining() const { return size_t(Len - Pos) + Undecoded; }

  /// Decode the next varint and advance past it.
  uint64_t next() {
    assert(!done() && "next() past the end");
    if (Pos == Len)
      refill();
    return Vals[Pos++];
  }

  /// Next varint without advancing (buffered; no re-decode on next()).
  uint64_t peek() {
    assert(!done() && "peek() past the end");
    if (Pos == Len)
      refill();
    return Vals[Pos];
  }

  /// Total encoded bytes of the varints next() has returned so far.
  size_t consumedBytes() const {
    return Pos == 0 ? Base : EndOff[Pos - 1];
  }

private:
  __attribute__((noinline)) void refill() {
    assert(Undecoded > 0 && "refill() with nothing left to decode");
    if (Len)
      Base = EndOff[Len - 1];
    size_t Want = Undecoded < BlockElts ? Undecoded : size_t(BlockElts);
    size_t Got = decodeVarintBlock(In, Undecoded, Want, Vals, EndOff, Base);
    Undecoded -= Got;
    Len = uint32_t(Got);
    Pos = 0;
  }

  uint64_t Vals[BlockElts + VarintBlockSlack];
  uint32_t EndOff[BlockElts + VarintBlockSlack];
  const uint8_t *In = nullptr;
  size_t Undecoded = 0;
  uint32_t Pos = 0;
  uint32_t Len = 0;
  uint32_t Base = 0;
};

} // namespace aspen

#endif // ASPEN_ENCODING_VARINT_BLOCK_H
