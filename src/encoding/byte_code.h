//===- encoding/byte_code.h - Variable-length byte codes ------------------===//
//
// Variable-length byte codes (7 data bits per byte, continue bit in the
// MSB) used to difference-encode sorted integer chunks, following the
// byte codes of Ligra+ cited in Section 3.2. Byte codes decode fast while
// capturing most of the compression available from shorter codes.
//
// Besides the raw encode/decode primitives, this file provides the
// streaming layer the chunk operations are built on:
//
//  * VarintCursor - a bounded forward reader (decode-next / peek / skip-N)
//    over a region holding a known number of varints. peek() reports the
//    decoded width so a following advancePeeked() consumes the value
//    without re-decoding it; the plain next() stays a bare decode with no
//    cache check on its hot path.
//  * VarintWriter - a bounded single-pass appender that asserts it never
//    overruns the destination computed by a sizing pass.
//
// Both are trivially copyable so merge loops can keep them in registers.
// The block-decoding layer on top (BlockVarintCursor, whose buffered head
// makes peek-then-next a single decode structurally, and the SSSE3/SWAR
// kernels) lives in encoding/varint_block.h.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ENCODING_BYTE_CODE_H
#define ASPEN_ENCODING_BYTE_CODE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace aspen {

/// Number of bytes encodeVarint would emit for \p V.
inline size_t varintSize(uint64_t V) {
  size_t N = 1;
  while (V >= 0x80) {
    V >>= 7;
    ++N;
  }
  return N;
}

/// Encode \p V at \p Out; returns the byte past the encoding.
inline uint8_t *encodeVarint(uint64_t V, uint8_t *Out) {
  while (V >= 0x80) {
    *Out++ = static_cast<uint8_t>(V) | 0x80;
    V >>= 7;
  }
  *Out++ = static_cast<uint8_t>(V);
  return Out;
}

/// Decode a varint at \p In into \p V; returns the byte past the encoding.
inline const uint8_t *decodeVarint(const uint8_t *In, uint64_t &V) {
  uint64_t Result = 0;
  int Shift = 0;
  uint8_t Byte;
  do {
    Byte = *In++;
    Result |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    Shift += 7;
  } while (Byte & 0x80);
  V = Result;
  return In;
}

/// Bounded forward reader over a region containing exactly \p Count
/// varints. Decoding never materializes more than one value at a time.
class VarintCursor {
public:
  VarintCursor() = default;
  VarintCursor(const uint8_t *In, size_t Count) : In(In), Left(Count) {}

  bool done() const { return Left == 0; }
  size_t remaining() const { return Left; }

  /// Byte position of the next undecoded varint.
  const uint8_t *pos() const { return In; }

  /// Decode the next varint and advance past it.
  uint64_t next() {
    assert(Left > 0 && "next() past the end");
    uint64_t V;
    In = decodeVarint(In, V);
    --Left;
    return V;
  }

  /// Decode the next varint without advancing. \p WidthOut receives the
  /// encoded width, so the caller can consume the peeked value with
  /// advancePeeked() instead of paying next()'s second decode.
  uint64_t peek(unsigned &WidthOut) const {
    assert(Left > 0 && "peek() past the end");
    uint64_t V;
    const uint8_t *End = decodeVarint(In, V);
    WidthOut = static_cast<unsigned>(End - In);
    return V;
  }

  /// Decode the next varint without advancing.
  uint64_t peek() const {
    unsigned Width;
    return peek(Width);
  }

  /// Advance past a varint whose width a prior peek() reported. The
  /// peek-then-advance pair costs exactly one decode.
  void advancePeeked(unsigned Width) {
    assert(Left > 0 && "advancePeeked() past the end");
    assert([&] {
      uint64_t V;
      return decodeVarint(In, V) == In + Width;
    }() && "width does not match the pending varint");
    In += Width;
    --Left;
  }

  /// Skip \p N varints without decoding their values. Word-at-a-time:
  /// every varint ends at a byte with a clear continue bit, so the number
  /// of varints ending inside an 8-byte word is 8 minus the popcount of
  /// its MSBs. The N varints still to be skipped occupy at least N bytes,
  /// so the 8-byte loads stay in bounds while N >= 8; a word containing
  /// the Nth terminator (or more) finishes byte-at-a-time so the cursor
  /// lands exactly past the Nth terminator.
  void skip(size_t N) {
    assert(N <= Left && "skip() past the end");
    Left -= N;
    while (N >= 8) {
      uint64_t Word;
      std::memcpy(&Word, In, 8);
      size_t Ends = countTerminators(Word);
      if (Ends >= N)
        break;
      In += 8;
      N -= Ends;
    }
    while (N > 0) {
      while (*In & 0x80)
        ++In;
      ++In;
      --N;
    }
  }

private:
  /// Number of varints ending inside \p Word: bytes whose MSB (the
  /// continue bit) is clear. Isolate the inverted continue bits and
  /// byte-sum them with a SWAR multiply — the popcount of a per-byte
  /// 0/1 mask — so the baseline ISA needs no POPCNT support.
  static size_t countTerminators(uint64_t Word) {
    uint64_t T = (~Word & 0x8080808080808080ull) >> 7;
    return size_t((T * 0x0101010101010101ull) >> 56);
  }

  const uint8_t *In = nullptr;
  size_t Left = 0;
};

/// Bounded single-pass appender. The destination capacity comes from a
/// prior sizing (dry-run) pass; debug builds assert the bound holds.
class VarintWriter {
public:
  VarintWriter() = default;
  VarintWriter(uint8_t *Out, size_t Cap) : Cur(Out), Begin(Out), Cap(Cap) {}

  void append(uint64_t V) {
    Cur = encodeVarint(V, Cur);
    assert(bytesWritten() <= Cap && "writer overran its sizing pass");
  }

  size_t bytesWritten() const { return static_cast<size_t>(Cur - Begin); }
  uint8_t *pos() const { return Cur; }

private:
  uint8_t *Cur = nullptr;
  uint8_t *Begin = nullptr;
  size_t Cap = 0;
};

} // namespace aspen

#endif // ASPEN_ENCODING_BYTE_CODE_H
