//===- encoding/byte_code.h - Variable-length byte codes ------------------===//
//
// Variable-length byte codes (7 data bits per byte, continue bit in the
// MSB) used to difference-encode sorted integer chunks, following the
// byte codes of Ligra+ cited in Section 3.2. Byte codes decode fast while
// capturing most of the compression available from shorter codes.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_ENCODING_BYTE_CODE_H
#define ASPEN_ENCODING_BYTE_CODE_H

#include <cstddef>
#include <cstdint>

namespace aspen {

/// Number of bytes encodeVarint would emit for \p V.
inline size_t varintSize(uint64_t V) {
  size_t N = 1;
  while (V >= 0x80) {
    V >>= 7;
    ++N;
  }
  return N;
}

/// Encode \p V at \p Out; returns the byte past the encoding.
inline uint8_t *encodeVarint(uint64_t V, uint8_t *Out) {
  while (V >= 0x80) {
    *Out++ = static_cast<uint8_t>(V) | 0x80;
    V >>= 7;
  }
  *Out++ = static_cast<uint8_t>(V);
  return Out;
}

/// Decode a varint at \p In into \p V; returns the byte past the encoding.
inline const uint8_t *decodeVarint(const uint8_t *In, uint64_t &V) {
  uint64_t Result = 0;
  int Shift = 0;
  uint8_t Byte;
  do {
    Byte = *In++;
    Result |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    Shift += 7;
  } while (Byte & 0x80);
  V = Result;
  return In;
}

} // namespace aspen

#endif // ASPEN_ENCODING_BYTE_CODE_H
