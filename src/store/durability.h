//===- store/durability.h - WAL + checkpoint orchestration ----------------===//
//
// Ties the redo log (store/wal.h) and the epoch checkpoints
// (store/checkpoint.h) into one durable directory that the stores open
// behind an opt-in DurabilityOptions (DESIGN.md Section 7):
//
//   <dir>/wal-<gen>.log        append-only WAL segments, generation-named
//   <dir>/ckpt-<seq>.aspen     immutable checkpoint files
//   <dir>/*.tmp                in-flight checkpoint writes (removed on open)
//
// Invariants the engine maintains:
//
//   * Exactly one *active* WAL segment accepts appends; every earlier
//     generation is sealed and immutable. Open always starts a fresh
//     generation, so a torn tail can only ever sit at the end of one
//     (now sealed, truncated-on-scan) segment.
//   * checkpoint(S) first makes ckpt-<S> durable (tmp + fsync + rename),
//     then flushes and seals the active segment, opens generation+1, and
//     only then unlinks sealed segments whose records are all covered
//     (maxSeq <= S). A crash anywhere in that sequence leaves either the
//     old checkpoint + full WAL, or the new checkpoint + a superset of
//     the WAL suffix it needs — both recover to the same store.
//   * Sealing flushes the old segment's pending group before the swap,
//     so across segments the record sequence has no holes: recovery can
//     insist on contiguous sequence numbers and treat any gap as the end
//     of the usable log.
//
// Recovery (performed in the constructor) = newest checkpoint file that
// validates end-to-end, plus the contiguous run of WAL records with
// sequence numbers above it, in order. The stores replay those records
// through the same insertEdgesSpan/deleteEdgesSpan batch paths that
// produced the original epochs — by chunk-boundary determinism (DESIGN.md
// Section 2) the result is byte-identical to the uncrashed store.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_DURABILITY_H
#define ASPEN_STORE_DURABILITY_H

#include "store/checkpoint.h"
#include "store/wal.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <dirent.h>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

namespace aspen {

/// Opt-in durability configuration for the stores. A default-constructed
/// store stays memory-only; passing DurabilityOptions at construction
/// opens (and if needed recovers) the directory and makes every
/// acknowledged batch crash-safe.
struct DurabilityOptions {
  std::string Dir; ///< directory holding WAL segments + checkpoints

  /// fsync on every group commit (the durability guarantee). Turning
  /// this off keeps the record/checkpoint formats and recovery logic but
  /// trades acknowledged-batch durability for speed — useful for tests
  /// and for workloads content with OS-crash-only durability.
  bool FsyncOnCommit = true;

  /// Take a checkpoint automatically every N acknowledged batches
  /// (0 = only when the caller asks via checkpointNow()).
  uint64_t CheckpointEveryBatches = 0;

  /// After recovering from a checkpoint, build the hot flat cache from
  /// the checkpoint state before replaying the WAL, so the first
  /// acquireFlat() after recovery takes the O(touched) refresh path
  /// instead of a full rebuild (the replayed batches record digests).
  bool PrimeFlatOnRecover = true;

  /// Checkpoint files retained as fallbacks beyond the newest.
  size_t KeepCheckpoints = 2;
};

/// One WAL record recovered for replay (payload owned).
struct WalReplayRecord {
  WalKind Kind;
  uint64_t Seq;
  std::vector<EdgePair> Edges;
};

/// Everything recovery found in the directory.
struct RecoveredState {
  std::optional<LoadedCheckpoint> Ckpt; ///< newest fully-valid checkpoint
  std::vector<WalReplayRecord> Replay;  ///< contiguous suffix above Ckpt
  uint64_t MaxSeq = 0; ///< highest recovered batch sequence number
  bool SeqGap = false; ///< log ended at a sequence hole (diagnostic)
};

/// The per-store durability orchestrator: owns the directory, the active
/// WAL segment, segment rotation/trimming, and checkpoint retention.
/// Thread-safe; the stores call append() under their install ordering
/// and sync() free-threaded.
class DurabilityEngine {
  struct SealedSegment {
    uint64_t Gen;
    std::string Path;
    uint64_t MaxSeq; ///< highest valid record sequence, 0 when empty
  };

public:
  explicit DurabilityEngine(DurabilityOptions O) : Opts(std::move(O)) {
    if (::mkdir(Opts.Dir.c_str(), 0755) != 0 && errno != EEXIST)
      throw std::runtime_error("cannot create durability dir " + Opts.Dir);

    // Inventory the directory: checkpoint seqs, WAL generations, and
    // leftover temp files from a checkpoint interrupted mid-write.
    std::vector<uint64_t> WalGens;
    {
      DIR *D = ::opendir(Opts.Dir.c_str());
      if (!D)
        throw std::runtime_error("cannot open durability dir " + Opts.Dir);
      while (struct dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (Name.size() > 4 && Name.rfind(".tmp") == Name.size() - 4) {
          (void)::unlink((Opts.Dir + "/" + Name).c_str());
          continue;
        }
        if (auto S = detail::ckptSeqOfName(Name))
          CkptSeqs.push_back(*S);
        else if (auto G = walGenOfName(Name))
          WalGens.push_back(*G);
      }
      ::closedir(D);
    }
    std::sort(CkptSeqs.begin(), CkptSeqs.end());
    std::sort(WalGens.begin(), WalGens.end());

    // Newest checkpoint that validates end-to-end wins; invalid ones
    // (torn writes that still got renamed somehow, bit rot) fall back.
    for (size_t I = CkptSeqs.size(); I-- > 0;) {
      if (auto L = readCheckpointFile(Opts.Dir + "/" +
                                      detail::ckptFileName(CkptSeqs[I]))) {
        Rec.Ckpt = std::move(*L);
        break;
      }
    }
    uint64_t CkptSeq = Rec.Ckpt ? Rec.Ckpt->Seq : 0;
    LastCkptSeqV.store(CkptSeq, std::memory_order_relaxed);
    Rec.MaxSeq = CkptSeq;

    // Scan WAL generations in order, truncating torn tails, collecting
    // the contiguous record run above the checkpoint. A hole ends the
    // usable log: nothing past it can have been acknowledged (sealing
    // flushes, so acknowledged prefixes are hole-free by construction).
    uint64_t Expected = CkptSeq;
    for (uint64_t Gen : WalGens) {
      std::string Path = segmentPath(Gen);
      WalScanResult R =
          walScanSegment(Path, /*TruncateTorn=*/true,
                         [&](const WalRecordView &V) {
                           if (Rec.SeqGap || V.Seq <= Expected)
                             return;
                           if (V.Seq != Expected + 1) {
                             Rec.SeqGap = true;
                             return;
                           }
                           WalReplayRecord RR;
                           RR.Kind = V.Kind;
                           RR.Seq = V.Seq;
                           RR.Edges.assign(V.Edges, V.Edges + V.NumEdges);
                           Rec.Replay.push_back(std::move(RR));
                           Expected = V.Seq;
                         });
      Sealed.push_back(SealedSegment{Gen, Path, R.MaxSeq});
    }
    Rec.MaxSeq = Expected;

    // Appends always go to a fresh generation: sealed segments stay
    // immutable, and a recovered-from torn tail can never be appended
    // past.
    ActiveGen = (WalGens.empty() ? 0 : WalGens.back()) + 1;
    Active = std::make_shared<WalLog>(segmentPath(ActiveGen),
                                      Opts.FsyncOnCommit, Rec.MaxSeq + 1);
  }

  DurabilityEngine(const DurabilityEngine &) = delete;
  DurabilityEngine &operator=(const DurabilityEngine &) = delete;

  const DurabilityOptions &options() const { return Opts; }

  /// What recovery found (the store consumes this once, at open).
  const RecoveredState &recovered() const { return Rec; }

  /// Free the recovered replay payloads after the store has applied them.
  void dropRecoveredPayload() {
    Rec.Replay.clear();
    Rec.Replay.shrink_to_fit();
    if (Rec.Ckpt) {
      Rec.Ckpt->ShardStreams.clear();
      Rec.Ckpt->ShardStreams.shrink_to_fit();
    }
  }

  /// A pending group commit: sync() against the exact segment the record
  /// went to (rotation may swap the active segment in between).
  struct Ticket {
    std::shared_ptr<WalLog> Log;
    uint64_t Seq = 0;
  };

  /// Append one batch record. Must be called in increasing-Seq order
  /// (the store's install ordering provides this). Does not block on
  /// I/O; the batch is acknowledged only after sync() returns.
  Ticket append(WalKind K, uint64_t Seq, const EdgePair *Edges, size_t N) {
    std::lock_guard<std::mutex> Lock(WalM);
    Active->enqueue(K, Seq, Edges, N);
    return Ticket{Active, Seq};
  }

  /// Block until the ticket's record is durable (group commit: the first
  /// syncing thread flushes everyone's pending records).
  void sync(const Ticket &T) {
    if (T.Log)
      T.Log->sync(T.Seq);
  }

  /// Make ckpt-<Seq> durable from the serialized shard streams, then
  /// rotate the WAL and drop segments + old checkpoints it obsoletes.
  /// Serialized against concurrent checkpoint() calls; concurrent
  /// append()/sync() proceed (they only contend on the rotation swap).
  void checkpoint(uint64_t Seq, uint32_t LogShards,
                  const std::vector<std::vector<uint8_t>> &ShardStreams) {
    std::lock_guard<std::mutex> CkLock(CkptM);
    if (Seq <= LastCkptSeqV.load(std::memory_order_relaxed))
      return; // a concurrent caller already covered this epoch
    writeCheckpointFile(Opts.Dir, Seq, LogShards, ShardStreams,
                        Opts.FsyncOnCommit);
    LastCkptSeqV.store(Seq, std::memory_order_relaxed);
    CkptSeqs.push_back(Seq);

    // Seal the active segment: flush its whole pending group (so the
    // sealed file is hole-free) and open the next generation.
    std::vector<SealedSegment> Trim;
    {
      std::lock_guard<std::mutex> Lock(WalM);
      uint64_t Mx = Active->seqRange().second;
      Active->sync(Mx);
      Sealed.push_back(SealedSegment{ActiveGen, Active->path(), Mx});
      ++ActiveGen;
      Active = std::make_shared<WalLog>(segmentPath(ActiveGen),
                                        Opts.FsyncOnCommit, Seq + 1);
      // Segments fully covered by the checkpoint are garbage. (A sealed
      // segment with records above Seq — a batch that committed while
      // the checkpoint was being written — stays until the next one.)
      auto Mid = std::stable_partition(
          Sealed.begin(), Sealed.end(),
          [&](const SealedSegment &S) { return S.MaxSeq > Seq; });
      Trim.assign(Mid, Sealed.end());
      Sealed.erase(Mid, Sealed.end());
    }
    ASPEN_FAILPOINT("wal.trim.before");
    for (const SealedSegment &S : Trim) {
      (void)::unlink(S.Path.c_str());
      ASPEN_FAILPOINT("wal.trim.mid");
    }
    ASPEN_FAILPOINT("wal.trim.after");

    // Checkpoint retention: newest + KeepCheckpoints-1 fallbacks.
    while (CkptSeqs.size() > std::max<size_t>(1, Opts.KeepCheckpoints)) {
      (void)::unlink(
          (Opts.Dir + "/" + detail::ckptFileName(CkptSeqs.front())).c_str());
      CkptSeqs.erase(CkptSeqs.begin());
    }
  }

  /// Sequence of the newest durable checkpoint (0 when none).
  uint64_t lastCheckpointSeq() const {
    return LastCkptSeqV.load(std::memory_order_relaxed);
  }

  /// Highest sequence known durable in the active segment.
  uint64_t durableSeq() const {
    std::lock_guard<std::mutex> Lock(WalM);
    return Active->durableSeq();
  }

  /// Commit statistics of the active segment (bench/test diagnostics).
  WalStats walStats() const {
    std::lock_guard<std::mutex> Lock(WalM);
    return Active->stats();
  }

private:
  std::string segmentPath(uint64_t Gen) const {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "wal-%016llx.log",
                  static_cast<unsigned long long>(Gen));
    return Opts.Dir + "/" + Buf;
  }

  /// Generation encoded in a WAL segment file name, or nullopt.
  static std::optional<uint64_t> walGenOfName(const std::string &Name) {
    unsigned long long Gen;
    if (Name.size() == 24 &&
        std::sscanf(Name.c_str(), "wal-%16llx.log", &Gen) == 1)
      return uint64_t(Gen);
    return std::nullopt;
  }

  DurabilityOptions Opts;
  RecoveredState Rec;
  std::vector<uint64_t> CkptSeqs; ///< on-disk checkpoints, ascending

  mutable std::mutex WalM; ///< guards Active/ActiveGen/Sealed
  std::shared_ptr<WalLog> Active;
  uint64_t ActiveGen = 1;
  std::vector<SealedSegment> Sealed;

  std::mutex CkptM; ///< serializes checkpoint()
  std::atomic<uint64_t> LastCkptSeqV{0};
};

} // namespace aspen

#endif // ASPEN_STORE_DURABILITY_H
