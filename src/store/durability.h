//===- store/durability.h - WAL + checkpoint orchestration ----------------===//
//
// Ties the redo log (store/wal.h) and the epoch checkpoints
// (store/checkpoint.h) into one durable directory that the stores open
// behind an opt-in DurabilityOptions (DESIGN.md Section 7):
//
//   <dir>/wal-<gen>.log        append-only WAL segments, generation-named
//   <dir>/ckpt-<seq>.aspen     immutable checkpoint files
//   <dir>/*.tmp, *.part        in-flight checkpoint writes / replication
//                              transfers (removed on open)
//   <dir>/*.quarantine         corrupt files set aside by the scrubber
//                              (ignored by recovery)
//
// Invariants the engine maintains:
//
//   * Exactly one *active* WAL segment accepts appends; every earlier
//     generation is sealed and immutable. Open always starts a fresh
//     generation, so a torn tail can only ever sit at the end of one
//     (now sealed, truncated-on-scan) segment.
//   * checkpoint(S) first makes ckpt-<S> durable (tmp + fsync + rename),
//     then flushes and seals the active segment, opens generation+1, and
//     only then unlinks sealed segments whose records all fall at or
//     below the *trim barrier* — the oldest checkpoint generation any
//     retained chain still references. Falling back past the newest
//     head therefore never loses acknowledged batches: the WAL suffix
//     above every retained head is still on disk. A crash anywhere in
//     that sequence leaves either the old checkpoint + full WAL, or the
//     new checkpoint + a superset of the WAL suffix it needs — both
//     recover to the same store.
//   * An incremental checkpoint (DESIGN.md Section 9) chains onto the
//     engine's current newest generation via BaseSeq. The chain length
//     is bounded by MaxIncrementalChain; a quarantined or otherwise
//     lost generation forces the next checkpoint to be full, so a
//     broken chain can never grow.
//   * Sealing flushes the old segment's pending group before the swap,
//     so across segments the record sequence has no holes: recovery can
//     insist on contiguous sequence numbers and treat any gap as the end
//     of the usable log.
//
// Recovery (performed in the constructor) = newest checkpoint head whose
// base chain fully resolves (resolveCheckpointChain — every link
// validates end-to-end), plus the contiguous run of WAL records with
// sequence numbers above it, in order. The stores replay those records
// through the same insertEdgesSpan/deleteEdgesSpan batch paths that
// produced the original epochs — by chunk-boundary determinism (DESIGN.md
// Section 2) the result is byte-identical to the uncrashed store.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_DURABILITY_H
#define ASPEN_STORE_DURABILITY_H

#include "store/checkpoint.h"
#include "store/wal.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <dirent.h>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

namespace aspen {

/// Opt-in durability configuration for the stores. A default-constructed
/// store stays memory-only; passing DurabilityOptions at construction
/// opens (and if needed recovers) the directory and makes every
/// acknowledged batch crash-safe.
struct DurabilityOptions {
  std::string Dir; ///< directory holding WAL segments + checkpoints

  /// fsync on every group commit (the durability guarantee). Turning
  /// this off keeps the record/checkpoint formats and recovery logic but
  /// trades acknowledged-batch durability for speed — useful for tests
  /// and for workloads content with OS-crash-only durability.
  bool FsyncOnCommit = true;

  /// Take a checkpoint automatically every N acknowledged batches
  /// (0 = only when the caller asks via checkpointNow()).
  uint64_t CheckpointEveryBatches = 0;

  /// After recovering from a checkpoint, build the hot flat cache from
  /// the checkpoint state before replaying the WAL, so the first
  /// acquireFlat() after recovery takes the O(touched) refresh path
  /// instead of a full rebuild (the replayed batches record digests).
  bool PrimeFlatOnRecover = true;

  /// Checkpoint files retained as fallbacks beyond the newest.
  size_t KeepCheckpoints = 2;

  /// Incremental checkpoints chained onto a full one before the next
  /// is forced full (0 disables incremental chaining entirely). Longer
  /// chains write fewer bytes per checkpoint but retain more files and
  /// WAL (the trim barrier follows the oldest referenced generation).
  size_t MaxIncrementalChain = 8;
};

/// One WAL record recovered for replay (payload owned).
struct WalReplayRecord {
  WalKind Kind;
  uint64_t Seq;
  std::vector<EdgePair> Edges;
};

/// Everything recovery found in the directory.
struct RecoveredState {
  std::optional<LoadedCheckpoint> Ckpt; ///< newest fully-valid checkpoint
  std::vector<WalReplayRecord> Replay;  ///< contiguous suffix above Ckpt
  uint64_t MaxSeq = 0; ///< highest recovered batch sequence number
  bool SeqGap = false; ///< log ended at a sequence hole (diagnostic)
};

/// The per-store durability orchestrator: owns the directory, the active
/// WAL segment, segment rotation/trimming, and checkpoint retention.
/// Thread-safe; the stores call append() under their install ordering
/// and sync() free-threaded.
class DurabilityEngine {
  struct SealedSegment {
    uint64_t Gen;
    std::string Path;
    uint64_t MaxSeq; ///< highest valid record sequence, 0 when empty
  };

public:
  explicit DurabilityEngine(DurabilityOptions O) : Opts(std::move(O)) {
    if (::mkdir(Opts.Dir.c_str(), 0755) != 0 && errno != EEXIST)
      throw std::runtime_error("cannot create durability dir " + Opts.Dir);

    // Inventory the directory: checkpoint seqs, WAL generations, and
    // leftovers from interrupted work — .tmp (mid-write checkpoints)
    // and .part (mid-transfer replication fetches) are removed;
    // .quarantine files (scrubber-confirmed corruption) are ignored.
    std::vector<uint64_t> WalGens;
    {
      DIR *D = ::opendir(Opts.Dir.c_str());
      if (!D)
        throw std::runtime_error("cannot open durability dir " + Opts.Dir);
      while (struct dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if ((Name.size() > 4 && Name.rfind(".tmp") == Name.size() - 4) ||
            (Name.size() > 5 && Name.rfind(".part") == Name.size() - 5)) {
          (void)::unlink((Opts.Dir + "/" + Name).c_str());
          continue;
        }
        if (auto S = detail::ckptSeqOfName(Name)) {
          // Record the chain link for retention; a file whose manifest
          // no longer validates keeps a 0 base — it can never resolve
          // as a head, and any chain through it fails full validation.
          auto M = peekCheckpointMeta(Opts.Dir + "/" + Name);
          CkptBaseOf[*S] = M ? M->BaseSeq : 0;
        } else if (auto G = walGenOfName(Name)) {
          WalGens.push_back(*G);
        }
      }
      ::closedir(D);
    }
    std::sort(WalGens.begin(), WalGens.end());

    // Newest checkpoint head whose base chain fully resolves wins;
    // invalid heads and broken chains (torn writes that still got
    // renamed somehow, bit rot, quarantined links) fall back.
    for (auto It = CkptBaseOf.rbegin(); It != CkptBaseOf.rend(); ++It) {
      if (auto L = resolveCheckpointChain(Opts.Dir, It->first)) {
        Rec.Ckpt = std::move(*L);
        break;
      }
    }
    uint64_t CkptSeq = Rec.Ckpt ? Rec.Ckpt->Seq : 0;
    LastCkptSeqV.store(CkptSeq, std::memory_order_relaxed);
    Rec.MaxSeq = CkptSeq;
    // Resume the incremental chain-length budget where the head left it
    // (so a restart cannot extend a chain past MaxIncrementalChain).
    for (uint64_t S = CkptSeq; S != 0;) {
      auto It = CkptBaseOf.find(S);
      if (It == CkptBaseOf.end() || It->second == 0)
        break;
      ++ChainLen;
      S = It->second;
    }

    // Scan WAL generations in order, truncating torn tails, collecting
    // the contiguous record run above the checkpoint. A hole ends the
    // usable log: nothing past it can have been acknowledged (sealing
    // flushes, so acknowledged prefixes are hole-free by construction).
    uint64_t Expected = CkptSeq;
    for (uint64_t Gen : WalGens) {
      std::string Path = segmentPath(Gen);
      WalScanResult R =
          walScanSegment(Path, /*TruncateTorn=*/true,
                         [&](const WalRecordView &V) {
                           if (Rec.SeqGap || V.Seq <= Expected)
                             return;
                           if (V.Seq != Expected + 1) {
                             Rec.SeqGap = true;
                             return;
                           }
                           WalReplayRecord RR;
                           RR.Kind = V.Kind;
                           RR.Seq = V.Seq;
                           RR.Edges.assign(V.Edges, V.Edges + V.NumEdges);
                           Rec.Replay.push_back(std::move(RR));
                           Expected = V.Seq;
                         });
      Sealed.push_back(SealedSegment{Gen, Path, R.MaxSeq});
    }
    Rec.MaxSeq = Expected;

    // Appends always go to a fresh generation: sealed segments stay
    // immutable, and a recovered-from torn tail can never be appended
    // past.
    ActiveGen = (WalGens.empty() ? 0 : WalGens.back()) + 1;
    Active = std::make_shared<WalLog>(segmentPath(ActiveGen),
                                      Opts.FsyncOnCommit, Rec.MaxSeq + 1);
  }

  DurabilityEngine(const DurabilityEngine &) = delete;
  DurabilityEngine &operator=(const DurabilityEngine &) = delete;

  const DurabilityOptions &options() const { return Opts; }

  /// What recovery found (the store consumes this once, at open).
  const RecoveredState &recovered() const { return Rec; }

  /// Free the recovered replay payloads after the store has applied them.
  void dropRecoveredPayload() {
    Rec.Replay.clear();
    Rec.Replay.shrink_to_fit();
    if (Rec.Ckpt) {
      Rec.Ckpt->ShardStreams.clear();
      Rec.Ckpt->ShardStreams.shrink_to_fit();
    }
  }

  /// A pending group commit: sync() against the exact segment the record
  /// went to (rotation may swap the active segment in between).
  struct Ticket {
    std::shared_ptr<WalLog> Log;
    uint64_t Seq = 0;
  };

  /// Append one batch record. Must be called in increasing-Seq order
  /// (the store's install ordering provides this). Does not block on
  /// I/O; the batch is acknowledged only after sync() returns.
  Ticket append(WalKind K, uint64_t Seq, const EdgePair *Edges, size_t N) {
    std::lock_guard<std::mutex> Lock(WalM);
    Active->enqueue(K, Seq, Edges, N);
    return Ticket{Active, Seq};
  }

  /// Block until the ticket's record is durable (group commit: the first
  /// syncing thread flushes everyone's pending records).
  void sync(const Ticket &T) {
    if (T.Log)
      T.Log->sync(T.Seq);
  }

  /// Make ckpt-<Seq> durable from the serialized shard streams, then
  /// rotate the WAL and drop segments + checkpoint generations no
  /// retained chain references. Serialized against concurrent
  /// checkpoint() calls; concurrent append()/sync() proceed (they only
  /// contend on the rotation swap).
  ///
  /// An incremental caller passes the base generation it serialized
  /// against (from incrementalBaseFor()) plus the per-shard present
  /// mask. Returns true when the checkpoint was written; false when a
  /// concurrent caller already covered this epoch, or when the base went
  /// stale (quarantined / forced-full in the meantime) — the store then
  /// retries with a full checkpoint.
  bool checkpoint(uint64_t Seq, uint32_t LogShards,
                  const std::vector<std::vector<uint8_t>> &ShardStreams,
                  uint64_t BaseSeq = 0,
                  const std::vector<uint8_t> *Present = nullptr) {
    std::lock_guard<std::mutex> CkLock(CkptM);
    if (Seq <= LastCkptSeqV.load(std::memory_order_relaxed))
      return false; // a concurrent caller already covered this epoch
    if (BaseSeq != 0 &&
        (ForceFullNext || !Opts.MaxIncrementalChain ||
         ChainLen >= Opts.MaxIncrementalChain ||
         BaseSeq != LastCkptSeqV.load(std::memory_order_relaxed) ||
         CkptBaseOf.find(BaseSeq) == CkptBaseOf.end()))
      return false; // stale base: caller falls back to a full checkpoint
    writeCheckpointFile(Opts.Dir, Seq, LogShards, ShardStreams,
                        Opts.FsyncOnCommit, BaseSeq, Present);
    LastCkptSeqV.store(Seq, std::memory_order_relaxed);
    CkptBaseOf[Seq] = BaseSeq;
    if (BaseSeq != 0) {
      ++ChainLen;
    } else {
      ChainLen = 0;
      ForceFullNext = false;
    }

    // Retention: keep the chain closures of the newest KeepCheckpoints
    // heads; everything else is garbage. The trim barrier is the oldest
    // generation any retained chain references — WAL records above it
    // stay on disk so falling back to ANY retained head (or chain link)
    // still replays to the acknowledged frontier.
    std::set<uint64_t> Referenced;
    {
      size_t Keep = std::max<size_t>(1, Opts.KeepCheckpoints);
      auto It = CkptBaseOf.rbegin();
      for (size_t H = 0; H < Keep && It != CkptBaseOf.rend(); ++H, ++It)
        for (uint64_t S = It->first; S != 0 && Referenced.insert(S).second;) {
          auto B = CkptBaseOf.find(S);
          S = B == CkptBaseOf.end() ? 0 : B->second;
        }
    }
    for (auto It = CkptBaseOf.begin(); It != CkptBaseOf.end();) {
      if (Referenced.count(It->first)) {
        ++It;
        continue;
      }
      (void)::unlink(
          (Opts.Dir + "/" + detail::ckptFileName(It->first)).c_str());
      It = CkptBaseOf.erase(It);
    }
    uint64_t Barrier = Referenced.empty() ? Seq : *Referenced.begin();

    // Seal the active segment: flush its whole pending group (so the
    // sealed file is hole-free) and open the next generation.
    std::vector<SealedSegment> Trim;
    {
      std::lock_guard<std::mutex> Lock(WalM);
      uint64_t Mx = Active->seqRange().second;
      Active->sync(Mx);
      Sealed.push_back(SealedSegment{ActiveGen, Active->path(), Mx});
      ++ActiveGen;
      Active = std::make_shared<WalLog>(segmentPath(ActiveGen),
                                        Opts.FsyncOnCommit, Seq + 1);
      // Segments fully below the trim barrier are garbage. (A sealed
      // segment with records above it — a batch that committed while
      // the checkpoint was being written, or the replay suffix of an
      // older retained chain — stays until retention lets it go.)
      auto Mid = std::stable_partition(
          Sealed.begin(), Sealed.end(),
          [&](const SealedSegment &S) { return S.MaxSeq > Barrier; });
      Trim.assign(Mid, Sealed.end());
      Sealed.erase(Mid, Sealed.end());
    }
    ASPEN_FAILPOINT("wal.trim.before");
    for (const SealedSegment &S : Trim) {
      (void)::unlink(S.Path.c_str());
      ASPEN_FAILPOINT("wal.trim.mid");
    }
    ASPEN_FAILPOINT("wal.trim.after");
    return true;
  }

  /// Base generation an incremental checkpoint may chain onto right
  /// now, or nullopt when the next checkpoint must be full (no prior
  /// checkpoint, chain budget spent, incremental disabled, or a
  /// scrubber quarantine invalidated the newest generation).
  std::optional<uint64_t> incrementalBaseFor() const {
    std::lock_guard<std::mutex> CkLock(CkptM);
    uint64_t Last = LastCkptSeqV.load(std::memory_order_relaxed);
    if (Last == 0 || ForceFullNext || Opts.MaxIncrementalChain == 0 ||
        ChainLen >= Opts.MaxIncrementalChain ||
        CkptBaseOf.find(Last) == CkptBaseOf.end())
      return std::nullopt;
    return Last;
  }

  /// Scrubber hook: move a corrupt checkpoint generation aside
  /// (recovery, retention and replication ignore *.quarantine) and
  /// force the next checkpoint full so no new incremental chains onto
  /// the hole. Returns false when the file was already gone.
  bool quarantineCheckpoint(uint64_t Seq) {
    std::lock_guard<std::mutex> CkLock(CkptM);
    std::string P = Opts.Dir + "/" + detail::ckptFileName(Seq);
    bool Renamed = ::rename(P.c_str(), (P + ".quarantine").c_str()) == 0;
    CkptBaseOf.erase(Seq);
    ForceFullNext = true;
    return Renamed;
  }

  /// Scrubber hook after a verified re-fetch from the replica restored
  /// ckpt-<Seq>: put the generation back into retention bookkeeping.
  /// (The next checkpoint stays forced-full — cheap insurance after
  /// any confirmed corruption.)
  void noteCheckpointRepaired(uint64_t Seq, uint64_t BaseSeq) {
    std::lock_guard<std::mutex> CkLock(CkptM);
    CkptBaseOf[Seq] = BaseSeq;
  }

  /// Sequence of the newest durable checkpoint (0 when none).
  uint64_t lastCheckpointSeq() const {
    return LastCkptSeqV.load(std::memory_order_relaxed);
  }

  /// Path of the segment currently accepting appends (the scrubber
  /// treats it leniently: an in-flight tail is not corruption).
  std::string activeSegmentPath() const {
    std::lock_guard<std::mutex> Lock(WalM);
    return Active->path();
  }

  /// Highest sequence known durable in the active segment.
  uint64_t durableSeq() const {
    std::lock_guard<std::mutex> Lock(WalM);
    return Active->durableSeq();
  }

  /// Commit statistics of the active segment (bench/test diagnostics).
  WalStats walStats() const {
    std::lock_guard<std::mutex> Lock(WalM);
    return Active->stats();
  }

private:
  std::string segmentPath(uint64_t Gen) const {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "wal-%016llx.log",
                  static_cast<unsigned long long>(Gen));
    return Opts.Dir + "/" + Buf;
  }

public:
  /// Generation encoded in a WAL segment file name, or nullopt. (The
  /// replication layer and the scrubber parse directory listings too.)
  static std::optional<uint64_t> walGenOfName(const std::string &Name) {
    unsigned long long Gen;
    if (Name.size() == 24 &&
        std::sscanf(Name.c_str(), "wal-%16llx.log", &Gen) == 1)
      return uint64_t(Gen);
    return std::nullopt;
  }

private:
  DurabilityOptions Opts;
  RecoveredState Rec;
  /// On-disk checkpoint generations -> their base (0 = full). The key
  /// set doubles as the retention inventory.
  std::map<uint64_t, uint64_t> CkptBaseOf;
  size_t ChainLen = 0;       ///< incremental links since the last full
  bool ForceFullNext = false; ///< latched by quarantineCheckpoint()

  mutable std::mutex WalM; ///< guards Active/ActiveGen/Sealed
  std::shared_ptr<WalLog> Active;
  uint64_t ActiveGen = 1;
  std::vector<SealedSegment> Sealed;

  mutable std::mutex CkptM; ///< serializes checkpoint() + chain state
  std::atomic<uint64_t> LastCkptSeqV{0};
};

} // namespace aspen

#endif // ASPEN_STORE_DURABILITY_H
