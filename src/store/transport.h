//===- store/transport.h - Byte-stream transports for replication ---------===//
//
// The replication layer (store/replication.h) moves checkpoint and WAL
// bytes between stores over a minimal byte-stream abstraction: ordered,
// reliable, connection-oriented, no message framing (the protocol layer
// frames + checksums on top). Two implementations ship:
//
//   * makePipeTransportPair() — an in-process socketpair(2), for tests,
//     benchmarks, and same-process leader/follower topologies.
//   * UnixSocketListener / connectUnixSocket() — a filesystem-named
//     AF_UNIX stream socket, for separate-process topologies.
//
// Both are one FdTransport underneath. Failure is a thrown
// TransportError (peer gone, injected fault) — the replication driver's
// retry/backoff loop owns the recovery policy, transports stay dumb.
//
// Fault injection: send and recv route through the failpoint registry
// (sites "repl.send" / "repl.recv"). SoftError models a dropped
// connection, ShortWrite a torn transfer (prefix delivered, then the
// connection dies), BitFlip in-transit corruption (delivered, wrong —
// the frame CRC on the receiving side must catch it), and Crash
// simulated process death mid-ship on whichever side hits the site.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_TRANSPORT_H
#define ASPEN_STORE_TRANSPORT_H

#include "util/failpoint.h"

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>
#include <vector>

namespace aspen {

/// Connection-level failure (peer closed, I/O error, injected fault).
/// Retryable by design: the replication driver reconnects and resumes.
struct TransportError : std::runtime_error {
  explicit TransportError(const std::string &What)
      : std::runtime_error("transport error: " + What) {}
};

/// An ordered, reliable byte stream between two replication endpoints.
class ByteTransport {
public:
  virtual ~ByteTransport() = default;

  /// Write exactly \p N bytes or throw TransportError.
  virtual void send(const void *P, size_t N) = 0;

  /// Read up to \p N bytes; 0 = orderly close by the peer. Throws
  /// TransportError on I/O failure.
  virtual size_t recv(void *P, size_t N) = 0;

  /// Half-close the write side (the peer's recv() drains then sees 0).
  virtual void shutdownWrite() = 0;
};

/// Read exactly \p N bytes or throw (EOF mid-object is a torn transfer).
inline void recvExact(ByteTransport &T, void *P, size_t N) {
  uint8_t *Out = static_cast<uint8_t *>(P);
  size_t Done = 0;
  while (Done < N) {
    size_t R = T.recv(Out + Done, N - Done);
    if (R == 0)
      throw TransportError("connection closed mid-message");
    Done += R;
  }
}

/// File-descriptor transport over a connected stream socket (both the
/// in-process socketpair and the unix-socket flavors).
class FdTransport : public ByteTransport {
public:
  explicit FdTransport(int Fd) : Fd(Fd) {}
  FdTransport(const FdTransport &) = delete;
  FdTransport &operator=(const FdTransport &) = delete;
  ~FdTransport() override {
    if (Fd >= 0)
      ::close(Fd);
  }

  void send(const void *P, size_t N) override {
    const uint8_t *Src = static_cast<const uint8_t *>(P);
    std::vector<uint8_t> Flipped; // only on BitFlip injection
    size_t Persist = N;
    bool DropAfter = false;
    FailAction A;
    if (failpoints().check("repl.send", A)) {
      switch (A.K) {
      case FailAction::Crash:
        throw SimulatedCrash("repl.send");
      case FailAction::SoftError:
        throw TransportError("injected connection drop (send)");
      case FailAction::ShortWrite: // torn transfer: prefix, then drop
        Persist = A.Arg < N ? size_t(A.Arg) : N;
        DropAfter = true;
        break;
      case FailAction::BitFlip: // in-transit corruption; CRC must catch
        Flipped.assign(Src, Src + N);
        if (N)
          Flipped[size_t(A.Arg / 8) % N] ^= uint8_t(1u << (A.Arg % 8));
        Src = Flipped.data();
        break;
      case FailAction::FailFsync:
        break; // not meaningful on a transport
      }
    }
    size_t Done = 0;
    while (Done < Persist) {
      ssize_t W = ::send(Fd, Src + Done, Persist - Done, MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        throw TransportError(std::string("send failed: ") +
                             std::strerror(errno));
      }
      Done += size_t(W);
    }
    if (DropAfter)
      throw TransportError("injected torn transfer (send)");
  }

  size_t recv(void *P, size_t N) override {
    FailAction A;
    if (failpoints().check("repl.recv", A)) {
      if (A.K == FailAction::Crash)
        throw SimulatedCrash("repl.recv");
      throw TransportError("injected connection drop (recv)");
    }
    for (;;) {
      ssize_t R = ::recv(Fd, P, N, 0);
      if (R >= 0)
        return size_t(R);
      if (errno == EINTR)
        continue;
      throw TransportError(std::string("recv failed: ") +
                           std::strerror(errno));
    }
  }

  void shutdownWrite() override { ::shutdown(Fd, SHUT_WR); }

private:
  int Fd;
};

/// An in-process connected pair: bytes sent on one end arrive on the
/// other. {client, server} by convention (the pair is symmetric).
inline std::pair<std::unique_ptr<ByteTransport>,
                 std::unique_ptr<ByteTransport>>
makePipeTransportPair() {
  int Fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0)
    throw TransportError(std::string("socketpair failed: ") +
                         std::strerror(errno));
  return {std::make_unique<FdTransport>(Fds[0]),
          std::make_unique<FdTransport>(Fds[1])};
}

/// Listening unix-domain stream socket. accept() blocks; closing the
/// listener (destructor or stop()) unblocks it with a TransportError.
class UnixSocketListener {
public:
  explicit UnixSocketListener(std::string Path) : Path(std::move(Path)) {
    if (this->Path.size() >= sizeof(sockaddr_un{}.sun_path))
      throw TransportError("unix socket path too long: " + this->Path);
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      throw TransportError(std::string("socket failed: ") +
                           std::strerror(errno));
    (void)::unlink(this->Path.c_str()); // stale socket from a dead peer
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, this->Path.c_str(),
                 sizeof(Addr.sun_path) - 1);
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
        ::listen(Fd, 8) != 0) {
      int E = errno;
      ::close(Fd);
      Fd = -1;
      throw TransportError(std::string("bind/listen failed: ") +
                           std::strerror(E));
    }
  }

  UnixSocketListener(const UnixSocketListener &) = delete;
  UnixSocketListener &operator=(const UnixSocketListener &) = delete;
  ~UnixSocketListener() { stop(); }

  std::unique_ptr<ByteTransport> accept() {
    int C = ::accept(Fd, nullptr, nullptr);
    if (C < 0)
      throw TransportError(std::string("accept failed: ") +
                           std::strerror(errno));
    return std::make_unique<FdTransport>(C);
  }

  /// Close the listening socket (unblocks accept()) and remove the
  /// filesystem name. Idempotent.
  void stop() {
    if (Fd >= 0) {
      ::shutdown(Fd, SHUT_RDWR);
      ::close(Fd);
      Fd = -1;
      (void)::unlink(Path.c_str());
    }
  }

  const std::string &path() const { return Path; }

private:
  std::string Path;
  int Fd = -1;
};

inline std::unique_ptr<ByteTransport>
connectUnixSocket(const std::string &Path) {
  if (Path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw TransportError("unix socket path too long: " + Path);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    throw TransportError(std::string("socket failed: ") +
                         std::strerror(errno));
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    int E = errno;
    ::close(Fd);
    throw TransportError(std::string("connect failed: ") +
                         std::strerror(E));
  }
  return std::make_unique<FdTransport>(Fd);
}

} // namespace aspen

#endif // ASPEN_STORE_TRANSPORT_H
