//===- store/replication.h - Snapshot shipping + background scrubbing -----===//
//
// Self-healing durability on top of the durable directory (DESIGN.md
// Section 9). Three pieces:
//
//   * ShipServer — serves a leader's durability directory over a
//     ByteTransport (store/transport.h): a listing of checkpoint and WAL
//     files, and range reads of any of them. Stateless per connection;
//     the client drives.
//   * Replicator — pulls a follower directory into sync with the
//     leader: fetches checkpoint generations and the WAL tail, verifies
//     every transfer with CRC32C, resumes torn transfers from the last
//     chunk boundary, and retries dropped connections with bounded
//     exponential backoff + deterministic jitter. After catchUp() the
//     follower directory recovers (DurabilityEngine) to a byte-identical
//     store.
//   * Scrubber — re-verifies checkpoint page CRCs and WAL record CRCs
//     at a configurable pace, quarantines corrupt checkpoint generations
//     (recovery ignores *.quarantine; the next checkpoint is forced
//     full), and repairs by re-fetching the file from a replica when a
//     connector is configured.
//
// Wire protocol (all little-endian, over any ByteTransport):
//
//   frame   := header payload
//   header  := u8 type, u8 pad[3], u32 payloadBytes, u32 payloadCrc
//
// The payload CRC32C is checked on every received frame, so in-transit
// corruption surfaces as a (retryable) TransportError, never as bad
// bytes on disk. File fetches additionally carry a whole-range CRC in
// the FileEnd frame — the client verifies it against everything it wrote
// (including any resumed prefix re-read from its own .part file) before
// renaming the fetch into place.
//
// Crash/fault matrix hooks: "repl.server.chunk" (leader dies mid-ship),
// "repl.send"/"repl.recv" (transport-level drops, torn sends, bit
// flips — see store/transport.h), and "repl.chunk.write" (follower
// dies / tears mid-write of fetched bytes).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_REPLICATION_H
#define ASPEN_STORE_REPLICATION_H

#include "store/durability.h"
#include "store/transport.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace aspen {

//===----------------------------------------------------------------------===
// Frame layer.
//===----------------------------------------------------------------------===

namespace repl {

enum class Msg : uint8_t {
  ListReq = 1,  ///< -> server: list replicable files
  ListResp = 2, ///< <- server: u32 count, {u16 nameLen, name, u64 size}*
  FetchReq = 3, ///< -> server: u64 offset, u32 chunkBytes, u16 nameLen, name
  Chunk = 4,    ///< <- server: u64 offset, bytes
  FileEnd = 5,  ///< <- server: u64 endOffset, u32 rangeCrc (from offset)
  Err = 6,      ///< <- server: utf-8 message (file vanished, bad request)
};

/// Frames above this are a protocol violation, not a big file (files
/// stream as many bounded Chunk frames).
inline constexpr uint32_t MaxFrameBytes = 64u << 20;

struct FrameHeader {
  uint8_t Type;
  uint8_t Pad[3] = {0, 0, 0};
  uint32_t PayloadBytes;
  uint32_t PayloadCrc;
};
static_assert(sizeof(FrameHeader) == 12, "packed frame header");

inline void sendFrame(ByteTransport &T, Msg Type, const void *Payload,
                      size_t N) {
  if (N > MaxFrameBytes)
    throw TransportError("frame too large");
  FrameHeader H;
  H.Type = uint8_t(Type);
  H.PayloadBytes = uint32_t(N);
  H.PayloadCrc = crc32c(Payload, N);
  // One send per frame keeps the ShortWrite/BitFlip failpoints on
  // "repl.send" tearing/corrupting header+payload as a unit, like a
  // real torn packet run.
  std::vector<uint8_t> Buf(sizeof(H) + N);
  std::memcpy(Buf.data(), &H, sizeof(H));
  if (N)
    std::memcpy(Buf.data() + sizeof(H), Payload, N);
  T.send(Buf.data(), Buf.size());
}

struct Frame {
  Msg Type;
  std::vector<uint8_t> Payload;
};

/// Receive one frame; nullopt on orderly close at a frame boundary.
/// A CRC mismatch or torn frame is a TransportError (retry, reconnect).
inline std::optional<Frame> recvFrame(ByteTransport &T) {
  FrameHeader H;
  uint8_t *P = reinterpret_cast<uint8_t *>(&H);
  size_t First = T.recv(P, sizeof(H));
  if (First == 0)
    return std::nullopt; // clean close between frames
  size_t Done = First;
  while (Done < sizeof(H)) {
    size_t R = T.recv(P + Done, sizeof(H) - Done);
    if (R == 0)
      throw TransportError("connection closed mid-header");
    Done += R;
  }
  if (H.PayloadBytes > MaxFrameBytes)
    throw TransportError("oversized frame");
  Frame F;
  F.Type = Msg(H.Type);
  F.Payload.resize(H.PayloadBytes);
  recvExact(T, F.Payload.data(), F.Payload.size());
  if (crc32c(F.Payload.data(), F.Payload.size()) != H.PayloadCrc)
    throw TransportError("frame checksum mismatch");
  return F;
}

/// A replicable file as the server lists it.
struct RemoteFile {
  std::string Name;
  uint64_t Bytes;
};

/// Names the replication protocol will serve or write: exactly the
/// checkpoint and WAL segment patterns (no path separators possible —
/// both parsers demand fixed shapes), so a hostile or corrupt listing
/// cannot escape the durability directory.
inline bool isReplicableName(const std::string &Name) {
  return detail::ckptSeqOfName(Name).has_value() ||
         DurabilityEngine::walGenOfName(Name).has_value();
}

inline std::vector<RemoteFile> listReplicable(const std::string &Dir) {
  std::vector<RemoteFile> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (!isReplicableName(Name))
      continue;
    struct stat St;
    if (::stat((Dir + "/" + Name).c_str(), &St) == 0)
      Out.push_back(RemoteFile{Name, uint64_t(St.st_size)});
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end(),
            [](const RemoteFile &A, const RemoteFile &B) {
              return A.Name < B.Name;
            });
  return Out;
}

} // namespace repl

//===----------------------------------------------------------------------===
// Server side: serve one connection against a durability directory.
//===----------------------------------------------------------------------===

/// Serves LIST and ranged FETCH against \p Dir until the peer closes.
/// Per-connection and stateless; run one per accepted transport. Throws
/// TransportError when the connection dies and SimulatedCrash when a
/// "repl.server.chunk" failpoint kills the leader mid-ship — the hosting
/// service treats both as "this connection is over".
class ShipServer {
public:
  explicit ShipServer(std::string Dir) : Dir(std::move(Dir)) {}

  void serve(ByteTransport &T) {
    while (auto F = repl::recvFrame(T)) {
      switch (F->Type) {
      case repl::Msg::ListReq:
        handleList(T);
        break;
      case repl::Msg::FetchReq:
        handleFetch(T, F->Payload);
        break;
      default:
        sendErr(T, "unexpected message type");
        return;
      }
    }
  }

private:
  void handleList(ByteTransport &T) {
    std::vector<repl::RemoteFile> Files = repl::listReplicable(Dir);
    std::vector<uint8_t> Payload;
    ByteWriter W(Payload);
    W.put<uint32_t>(uint32_t(Files.size()));
    for (const repl::RemoteFile &F : Files) {
      W.put<uint16_t>(uint16_t(F.Name.size()));
      W.bytes(F.Name.data(), F.Name.size());
      W.put<uint64_t>(F.Bytes);
    }
    repl::sendFrame(T, repl::Msg::ListResp, Payload.data(), Payload.size());
  }

  void handleFetch(ByteTransport &T, const std::vector<uint8_t> &Req) {
    uint64_t Offset;
    uint32_t ChunkBytes;
    std::string Name;
    try {
      ByteReader R(Req.data(), Req.size());
      Offset = R.get<uint64_t>();
      ChunkBytes = R.get<uint32_t>();
      uint16_t Len = R.get<uint16_t>();
      const uint8_t *P = R.bytes(Len);
      Name.assign(reinterpret_cast<const char *>(P), Len);
      if (!R.exhausted())
        throw CorruptCheckpoint("trailing fetch bytes");
    } catch (const CorruptCheckpoint &) {
      sendErr(T, "malformed fetch request");
      return;
    }
    if (!repl::isReplicableName(Name) || ChunkBytes == 0 ||
        ChunkBytes > repl::MaxFrameBytes / 2) {
      sendErr(T, "bad fetch: " + Name);
      return;
    }
    int Fd = ::open((Dir + "/" + Name).c_str(), O_RDONLY);
    if (Fd < 0) {
      // Trimmed/retired between LIST and FETCH — the client re-lists.
      sendErr(T, "no such file: " + Name);
      return;
    }
    struct FdCloser {
      int Fd;
      ~FdCloser() { ::close(Fd); }
    } Closer{Fd};
    struct stat St;
    if (::fstat(Fd, &St) != 0) {
      sendErr(T, "stat failed: " + Name);
      return;
    }
    // Snapshot the size once: checkpoint files are immutable and sealed
    // WAL segments are immutable; the active segment may grow under us,
    // but serving a fixed prefix is still a consistent (resumable) read.
    uint64_t Size = uint64_t(St.st_size);
    uint64_t Off = Offset > Size ? Size : Offset;
    uint32_t RangeCrc = 0;
    std::vector<uint8_t> Buf;
    std::vector<uint8_t> ChunkPayload;
    while (Off < Size) {
      ASPEN_FAILPOINT("repl.server.chunk"); // leader dies mid-ship
      size_t N = size_t(std::min<uint64_t>(ChunkBytes, Size - Off));
      Buf.resize(N);
      ssize_t Got = ::pread(Fd, Buf.data(), N, off_t(Off));
      if (Got != ssize_t(N)) {
        sendErr(T, "read failed: " + Name);
        return;
      }
      RangeCrc = crc32c(Buf.data(), N, RangeCrc);
      ChunkPayload.clear();
      ByteWriter W(ChunkPayload);
      W.put<uint64_t>(Off);
      W.bytes(Buf.data(), N);
      repl::sendFrame(T, repl::Msg::Chunk, ChunkPayload.data(),
                      ChunkPayload.size());
      Off += N;
    }
    std::vector<uint8_t> End;
    ByteWriter W(End);
    W.put<uint64_t>(Size);
    W.put<uint32_t>(RangeCrc);
    repl::sendFrame(T, repl::Msg::FileEnd, End.data(), End.size());
  }

  void sendErr(ByteTransport &T, const std::string &What) {
    repl::sendFrame(T, repl::Msg::Err, What.data(), What.size());
  }

  std::string Dir;
};

/// Hosts a ShipServer in-process: every connect() hands back the client
/// end of a fresh socketpair with a server thread draining the other
/// end. Connection threads are joined at destruction.
class InProcessShipService {
public:
  explicit InProcessShipService(std::string Dir) : Dir(std::move(Dir)) {}
  InProcessShipService(const InProcessShipService &) = delete;
  InProcessShipService &operator=(const InProcessShipService &) = delete;
  ~InProcessShipService() {
    for (std::thread &Th : Threads)
      Th.join();
  }

  std::unique_ptr<ByteTransport> connect() {
    auto [Client, Server] = makePipeTransportPair();
    std::shared_ptr<ByteTransport> S(std::move(Server));
    std::string D = Dir;
    std::lock_guard<std::mutex> Lock(M);
    Threads.emplace_back([S, D] {
      try {
        ShipServer(D).serve(*S);
      } catch (const std::exception &) {
        // Connection died (peer gone, injected leader crash): the
        // client's retry/backoff path owns recovery.
      }
    });
    return std::move(Client);
  }

  /// The connector the Replicator/Scrubber take.
  std::function<std::unique_ptr<ByteTransport>()> connector() {
    return [this] { return connect(); };
  }

private:
  std::string Dir;
  std::mutex M;
  std::vector<std::thread> Threads;
};

/// Hosts a ShipServer behind a unix-domain socket for separate-process
/// followers. One accept thread; one handler thread per connection.
class UnixShipService {
public:
  UnixShipService(std::string Dir, const std::string &SocketPath)
      : Dir(std::move(Dir)), Listener(SocketPath) {
    Acceptor = std::thread([this] {
      for (;;) {
        std::unique_ptr<ByteTransport> T;
        try {
          T = Listener.accept();
        } catch (const TransportError &) {
          return; // listener stopped
        }
        std::shared_ptr<ByteTransport> S(std::move(T));
        std::string D = this->Dir;
        std::lock_guard<std::mutex> Lock(M);
        Handlers.emplace_back([S, D] {
          try {
            ShipServer(D).serve(*S);
          } catch (const std::exception &) {
          }
        });
      }
    });
  }

  UnixShipService(const UnixShipService &) = delete;
  UnixShipService &operator=(const UnixShipService &) = delete;

  ~UnixShipService() {
    Listener.stop();
    Acceptor.join();
    for (std::thread &Th : Handlers)
      Th.join();
  }

  std::function<std::unique_ptr<ByteTransport>()> connector() {
    std::string P = Listener.path();
    return [P] { return connectUnixSocket(P); };
  }

private:
  std::string Dir;
  UnixSocketListener Listener;
  std::thread Acceptor;
  std::mutex M;
  std::vector<std::thread> Handlers;
};

//===----------------------------------------------------------------------===
// Client side: backoff, catch-up, repair fetches.
//===----------------------------------------------------------------------===

/// Bounded exponential backoff with deterministic jitter. Deterministic
/// on Seed so fault-matrix tests replay exactly; Jitter de-synchronizes
/// a fleet of followers hammering a recovering leader.
struct BackoffPolicy {
  uint64_t BaseMs = 10;
  double Multiplier = 2.0;
  uint64_t MaxMs = 1000;
  double Jitter = 0.2; ///< +/- fraction of the computed delay
  size_t MaxAttempts = 8;
  uint64_t Seed = 0x9E3779B97F4A7C15ULL;

  /// Delay before retry number \p Attempt (0-based; attempt 0 is the
  /// first *retry*, after the initial failure).
  uint64_t delayMs(size_t Attempt) const {
    double D = double(BaseMs);
    for (size_t I = 0; I < Attempt; ++I)
      D = std::min(D * Multiplier, double(MaxMs));
    // splitmix64 over (Seed, Attempt) — deterministic jitter.
    uint64_t X = Seed + (uint64_t(Attempt) + 1) * 0x9E3779B97F4A7C15ULL;
    X ^= X >> 30, X *= 0xBF58476D1CE4E5B9ULL;
    X ^= X >> 27, X *= 0x94D049BB133111EBULL;
    X ^= X >> 31;
    double U = double(X >> 11) * (1.0 / double(uint64_t(1) << 53));
    double J = 1.0 + Jitter * (2.0 * U - 1.0);
    double Out = std::min(D * J, double(MaxMs));
    return Out < 0 ? 0 : uint64_t(Out);
  }
};

struct ReplicationStats {
  uint64_t Attempts = 0;     ///< catch-up passes started (1 = no retry)
  uint64_t Reconnects = 0;   ///< retries after a transport failure
  uint64_t FilesFetched = 0; ///< files pulled (fully or by resume)
  uint64_t FilesSkipped = 0; ///< already present with matching size
  uint64_t FilesDeleted = 0; ///< local files retired to match the leader
  uint64_t BytesFetched = 0; ///< payload bytes received in Chunk frames
  uint64_t Resumes = 0;      ///< fetches resumed from a partial .part
  uint64_t BackoffMsTotal = 0;
};

/// Pulls a follower durability directory into sync with a leader served
/// by ShipServer. Not thread-safe; one replicator per follower dir.
class Replicator {
public:
  using ConnectFn = std::function<std::unique_ptr<ByteTransport>()>;

  Replicator(std::string FollowerDir, ConnectFn Connect,
             BackoffPolicy Backoff = {}, size_t ChunkBytes = 256 * 1024)
      : Dir(std::move(FollowerDir)), Connect(std::move(Connect)),
        Backoff(Backoff), ChunkBytes(ChunkBytes ? ChunkBytes : 1) {
    if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST)
      throw std::runtime_error("cannot create follower dir " + Dir);
  }

  /// One full catch-up: list the leader, retire local files it no longer
  /// has, fetch everything missing or larger, verify, rename into place.
  /// Transport failures (drops, torn transfers, leader mid-ship death)
  /// retry with backoff up to MaxAttempts, resuming partial fetches from
  /// the last chunk boundary; the final failure rethrows. SimulatedCrash
  /// (an injected *follower* death) always escapes immediately — the
  /// crash tests re-open and re-run catchUp() like a restarted process.
  ReplicationStats catchUp() {
    Stats = ReplicationStats{};
    for (size_t Attempt = 0;; ++Attempt) {
      ++Stats.Attempts;
      try {
        catchUpOnce();
        return Stats;
      } catch (const TransportError &) {
        if (Attempt + 1 >= Backoff.MaxAttempts)
          throw;
        uint64_t Ms = Backoff.delayMs(Attempt);
        Stats.BackoffMsTotal += Ms;
        ++Stats.Reconnects;
        if (Ms)
          std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
      }
    }
  }

  const ReplicationStats &stats() const { return Stats; }

  /// Fetch one named file to \p DestPath (via .part + rename), verifying
  /// the transfer CRC and then \p Validate over the complete file. Used
  /// by the scrubber's repair path. Returns false when the leader does
  /// not have the file or validation fails; transport errors retry with
  /// the same backoff as catchUp().
  bool fetchFileTo(const std::string &Name, const std::string &DestPath,
                   const std::function<bool(const std::string &)> &Validate) {
    for (size_t Attempt = 0;; ++Attempt) {
      try {
        auto T = Connect();
        uint64_t Size = 0;
        {
          bool Found = false;
          for (const repl::RemoteFile &F : fetchListing(*T))
            if (F.Name == Name) {
              Found = true;
              Size = F.Bytes;
              break;
            }
          if (!Found)
            return false;
        }
        std::string Part = DestPath + ".part";
        fetchInto(*T, Name, Size, Part);
        if (Validate && !Validate(Part)) {
          (void)::unlink(Part.c_str());
          return false;
        }
        if (::rename(Part.c_str(), DestPath.c_str()) != 0)
          throw std::runtime_error("rename failed: " + DestPath);
        syncDir();
        return true;
      } catch (const TransportError &) {
        if (Attempt + 1 >= Backoff.MaxAttempts)
          throw;
        uint64_t Ms = Backoff.delayMs(Attempt);
        Stats.BackoffMsTotal += Ms;
        ++Stats.Reconnects;
        if (Ms)
          std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
      }
    }
  }

private:
  std::vector<repl::RemoteFile> fetchListing(ByteTransport &T) {
    repl::sendFrame(T, repl::Msg::ListReq, nullptr, 0);
    auto F = repl::recvFrame(T);
    if (!F || F->Type != repl::Msg::ListResp)
      throw TransportError("bad listing response");
    std::vector<repl::RemoteFile> Out;
    try {
      ByteReader R(F->Payload.data(), F->Payload.size());
      uint32_t N = R.get<uint32_t>();
      if (N > (1u << 20))
        throw CorruptCheckpoint("absurd listing");
      Out.reserve(N);
      for (uint32_t I = 0; I < N; ++I) {
        uint16_t Len = R.get<uint16_t>();
        const uint8_t *P = R.bytes(Len);
        std::string Name(reinterpret_cast<const char *>(P), Len);
        uint64_t Bytes = R.get<uint64_t>();
        if (!repl::isReplicableName(Name))
          throw CorruptCheckpoint("unreplicable name in listing");
        Out.push_back(repl::RemoteFile{std::move(Name), Bytes});
      }
      if (!R.exhausted())
        throw CorruptCheckpoint("trailing listing bytes");
    } catch (const CorruptCheckpoint &) {
      throw TransportError("malformed listing");
    }
    return Out;
  }

  void catchUpOnce() {
    auto T = Connect();
    std::vector<repl::RemoteFile> Remote = fetchListing(*T);
    std::map<std::string, uint64_t> RemoteSize;
    for (const repl::RemoteFile &F : Remote)
      RemoteSize[F.Name] = F.Bytes;

    // Retire local files the leader no longer has (trimmed WAL, retired
    // checkpoint generations) and .part leftovers whose base vanished.
    {
      DIR *D = ::opendir(Dir.c_str());
      if (!D)
        throw std::runtime_error("cannot open follower dir " + Dir);
      std::vector<std::string> Drop;
      while (struct dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (repl::isReplicableName(Name)) {
          if (!RemoteSize.count(Name))
            Drop.push_back(Name);
        } else if (Name.size() > 5 &&
                   Name.rfind(".part") == Name.size() - 5 &&
                   !RemoteSize.count(Name.substr(0, Name.size() - 5))) {
          Drop.push_back(Name);
        }
      }
      ::closedir(D);
      for (const std::string &Name : Drop) {
        (void)::unlink((Dir + "/" + Name).c_str());
        ++Stats.FilesDeleted;
      }
    }

    // Fetch everything missing or short. Checkpoints and sealed WAL
    // segments are immutable, and the active segment is append-only, so
    // "same size" ⇒ "same bytes" and a local prefix is always a valid
    // resume base.
    for (const repl::RemoteFile &F : Remote) {
      std::string Final = Dir + "/" + F.Name;
      struct stat St;
      if (::stat(Final.c_str(), &St) == 0 && uint64_t(St.st_size) == F.Bytes) {
        ++Stats.FilesSkipped;
        continue;
      }
      fetchInto(*T, F.Name, F.Bytes, Final + ".part");
      if (::rename((Final + ".part").c_str(), Final.c_str()) != 0)
        throw std::runtime_error("rename failed: " + Final);
    }
    syncDir();
  }

  /// Fetch \p Name (whose remote size is \p Size) into \p Part, resuming
  /// any existing partial at its last whole-chunk boundary. On return the
  /// file is complete, CRC-verified end-to-end, and fsynced.
  void fetchInto(ByteTransport &T, const std::string &Name, uint64_t Size,
                 const std::string &Part) {
    // Resume point: whole chunks only, so the server-side range CRC
    // composes with a CRC of our own verified prefix.
    uint64_t Resume = 0;
    {
      struct stat St;
      if (::stat(Part.c_str(), &St) == 0 && St.st_size > 0) {
        Resume = (uint64_t(St.st_size) / ChunkBytes) * ChunkBytes;
        if (Resume > Size)
          Resume = 0; // leader restarted with a shorter file: start over
        if (Resume)
          ++Stats.Resumes;
      }
    }
    int Fd = ::open(Part.c_str(), O_WRONLY | O_CREAT, 0644);
    if (Fd < 0)
      throw std::runtime_error("cannot create " + Part);
    struct FdCloser {
      int Fd;
      ~FdCloser() { ::close(Fd); }
    } Closer{Fd};
    if (::ftruncate(Fd, off_t(Resume)) != 0)
      throw std::runtime_error("truncate failed: " + Part);

    std::vector<uint8_t> Req;
    {
      ByteWriter W(Req);
      W.put<uint64_t>(Resume);
      W.put<uint32_t>(uint32_t(ChunkBytes));
      W.put<uint16_t>(uint16_t(Name.size()));
      W.bytes(Name.data(), Name.size());
    }
    repl::sendFrame(T, repl::Msg::FetchReq, Req.data(), Req.size());

    uint64_t Off = Resume;
    uint32_t RangeCrc = 0; // over bytes received from Resume onward
    if (::lseek(Fd, off_t(Resume), SEEK_SET) < 0)
      throw std::runtime_error("seek failed: " + Part);
    for (;;) {
      auto F = repl::recvFrame(T);
      if (!F)
        throw TransportError("connection closed mid-fetch: " + Name);
      if (F->Type == repl::Msg::Err)
        throw TransportError("server error: " +
                             std::string(F->Payload.begin(),
                                         F->Payload.end()));
      if (F->Type == repl::Msg::FileEnd) {
        uint64_t End;
        uint32_t Crc;
        try {
          ByteReader R(F->Payload.data(), F->Payload.size());
          End = R.get<uint64_t>();
          Crc = R.get<uint32_t>();
        } catch (const CorruptCheckpoint &) {
          throw TransportError("malformed FileEnd");
        }
        if (End != Off || End != Size)
          throw TransportError("short fetch: " + Name);
        if (Crc != RangeCrc)
          throw TransportError("range checksum mismatch: " + Name);
        break;
      }
      if (F->Type != repl::Msg::Chunk)
        throw TransportError("unexpected frame mid-fetch");
      uint64_t ChunkOff;
      try {
        ByteReader R(F->Payload.data(), F->Payload.size());
        ChunkOff = R.get<uint64_t>();
      } catch (const CorruptCheckpoint &) {
        throw TransportError("malformed chunk");
      }
      if (ChunkOff != Off)
        throw TransportError("chunk offset mismatch");
      const uint8_t *Data = F->Payload.data() + sizeof(uint64_t);
      size_t N = F->Payload.size() - sizeof(uint64_t);
      RangeCrc = crc32c(Data, N, RangeCrc);
      fpWrite(Fd, Data, N, "repl.chunk.write");
      Off += N;
      Stats.BytesFetched += N;
    }
    if (!fpFsync(Fd, "repl.part.fsync"))
      throw std::runtime_error("fsync failed: " + Part);
    ++Stats.FilesFetched;
  }

  void syncDir() {
    int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      (void)::fsync(DirFd);
      ::close(DirFd);
    }
  }

  std::string Dir;
  ConnectFn Connect;
  BackoffPolicy Backoff;
  size_t ChunkBytes;
  ReplicationStats Stats;
};

//===----------------------------------------------------------------------===
// Background scrubber.
//===----------------------------------------------------------------------===

struct ScrubOptions {
  /// Sleep between full passes of the background thread.
  uint64_t PassIntervalMs = 1000;
  /// Sleep between individual files within a pass (paces the read I/O
  /// so scrubbing a large directory does not monopolize the disk).
  uint64_t FileIntervalMs = 0;
};

struct ScrubStats {
  uint64_t Passes = 0;
  uint64_t FilesVerified = 0;
  uint64_t BytesVerified = 0;
  uint64_t CorruptFound = 0;
  uint64_t Quarantined = 0;   ///< checkpoint generations set aside
  uint64_t Repaired = 0;      ///< files restored from the replica
  uint64_t RepairFailed = 0;  ///< corruption left standing (no replica,
                              ///< replica lacks the file, or re-fetch
                              ///< did not validate)
};

/// Re-verifies every checkpoint and WAL file in an engine's directory
/// against its checksums, at a configurable pace. A corrupt checkpoint
/// generation is quarantined through the engine (so recovery and the
/// incremental chain stop trusting it) and, when a repair connector is
/// configured, restored by a verified re-fetch from the replica. A
/// corrupt *sealed* WAL segment is repaired in place the same way (never
/// quarantined: renaming log records away could widen the damage); the
/// active segment is only ever reported, since its tail is in flight.
class Scrubber {
public:
  using ConnectFn = Replicator::ConnectFn;

  Scrubber(DurabilityEngine &Engine, ScrubOptions O = {},
           ConnectFn Repair = nullptr)
      : Engine(Engine), Opts(O), Repair(std::move(Repair)) {}
  ~Scrubber() { stop(); }
  Scrubber(const Scrubber &) = delete;
  Scrubber &operator=(const Scrubber &) = delete;

  /// One synchronous pass over the directory. Safe to call concurrently
  /// with the engine's appends/checkpoints (files that vanish mid-pass
  /// were legitimately retired and are skipped, not flagged).
  ScrubStats scrubOnce() {
    const std::string &Dir = Engine.options().Dir;
    std::string Active = Engine.activeSegmentPath();
    // Sampled *before* scanning: records acknowledged after this point
    // may legitimately still be mid-flight in the active tail.
    uint64_t DurableFloor = Engine.durableSeq();

    std::vector<std::string> Names;
    {
      DIR *D = ::opendir(Dir.c_str());
      if (D) {
        while (struct dirent *E = ::readdir(D))
          if (repl::isReplicableName(E->d_name))
            Names.push_back(E->d_name);
        ::closedir(D);
      }
    }
    std::sort(Names.begin(), Names.end());

    ScrubStats Delta;
    for (const std::string &Name : Names) {
      std::string Path = Dir + "/" + Name;
      struct stat St;
      if (::stat(Path.c_str(), &St) != 0)
        continue; // retired between listing and scrub — not corruption
      if (auto Seq = detail::ckptSeqOfName(Name))
        scrubCheckpoint(Dir, Name, *Seq, uint64_t(St.st_size), Delta);
      else
        scrubWal(Dir, Name, Path == Active, DurableFloor,
                 uint64_t(St.st_size), Delta);
      if (Opts.FileIntervalMs)
        pausableSleep(Opts.FileIntervalMs);
      if (StopFlag.load(std::memory_order_relaxed))
        break;
    }
    ++Delta.Passes;
    accumulate(Delta);
    return Delta;
  }

  /// Start the background thread (idempotent).
  void start() {
    std::lock_guard<std::mutex> Lock(LifeM);
    if (Thread.joinable())
      return;
    StopFlag.store(false, std::memory_order_relaxed);
    Thread = std::thread([this] {
      while (!StopFlag.load(std::memory_order_relaxed)) {
        scrubOnce();
        pausableSleep(Opts.PassIntervalMs);
      }
    });
  }

  /// Stop and join the background thread (idempotent).
  void stop() {
    std::lock_guard<std::mutex> Lock(LifeM);
    {
      std::lock_guard<std::mutex> SLock(SleepM);
      StopFlag.store(true, std::memory_order_relaxed);
    }
    SleepCV.notify_all();
    if (Thread.joinable())
      Thread.join();
  }

  /// Lifetime totals across every pass (thread-safe snapshot).
  ScrubStats stats() const {
    std::lock_guard<std::mutex> Lock(StatsM);
    return Totals;
  }

private:
  void scrubCheckpoint(const std::string &Dir, const std::string &Name,
                       uint64_t Seq, uint64_t Bytes, ScrubStats &Delta) {
    ++Delta.FilesVerified;
    Delta.BytesVerified += Bytes;
    if (readCheckpointFile(Dir + "/" + Name))
      return; // every page CRC holds
    ++Delta.CorruptFound;
    if (Engine.quarantineCheckpoint(Seq))
      ++Delta.Quarantined;
    if (!Repair) {
      ++Delta.RepairFailed;
      return;
    }
    std::string Final = Dir + "/" + Name;
    Replicator R(Dir, Repair);
    bool Ok = false;
    try {
      Ok = R.fetchFileTo(Name, Final, [&](const std::string &P) {
        auto L = readCheckpointFile(P);
        return L && L->Seq == Seq;
      });
    } catch (const TransportError &) {
      Ok = false;
    }
    if (!Ok) {
      ++Delta.RepairFailed;
      return;
    }
    (void)::unlink((Final + ".quarantine").c_str());
    auto M = peekCheckpointMeta(Final);
    Engine.noteCheckpointRepaired(Seq, M ? M->BaseSeq : 0);
    ++Delta.Repaired;
  }

  void scrubWal(const std::string &Dir, const std::string &Name,
                bool IsActive, uint64_t DurableFloor, uint64_t Bytes,
                ScrubStats &Delta) {
    ++Delta.FilesVerified;
    Delta.BytesVerified += Bytes;
    std::string Path = Dir + "/" + Name;
    if (walSegmentClean(Path, /*Sealed=*/!IsActive, DurableFloor))
      return;
    ++Delta.CorruptFound;
    // The active segment's tail is in flight — never rewrite it under
    // the appender; detection alone is the verdict.
    if (IsActive || !Repair) {
      ++Delta.RepairFailed;
      return;
    }
    Replicator R(Dir, Repair);
    bool Ok = false;
    try {
      // In-place repair: fetch beside the corrupt segment, validate the
      // complete replacement, then rename over it. On any failure the
      // corrupt original stays put — a partially-valid log prefix beats
      // a missing generation at recovery.
      Ok = R.fetchFileTo(Name, Path, [&](const std::string &P) {
        return walSegmentClean(P, /*Sealed=*/true);
      });
    } catch (const TransportError &) {
      Ok = false;
    }
    if (Ok)
      ++Delta.Repaired;
    else
      ++Delta.RepairFailed;
  }

  void accumulate(const ScrubStats &D) {
    std::lock_guard<std::mutex> Lock(StatsM);
    Totals.Passes += D.Passes;
    Totals.FilesVerified += D.FilesVerified;
    Totals.BytesVerified += D.BytesVerified;
    Totals.CorruptFound += D.CorruptFound;
    Totals.Quarantined += D.Quarantined;
    Totals.Repaired += D.Repaired;
    Totals.RepairFailed += D.RepairFailed;
  }

  void pausableSleep(uint64_t Ms) {
    std::unique_lock<std::mutex> Lock(SleepM);
    SleepCV.wait_for(Lock, std::chrono::milliseconds(Ms), [this] {
      return StopFlag.load(std::memory_order_relaxed);
    });
  }

  DurabilityEngine &Engine;
  ScrubOptions Opts;
  ConnectFn Repair;

  std::mutex LifeM;
  std::thread Thread;
  std::atomic<bool> StopFlag{false};
  std::mutex SleepM;
  std::condition_variable SleepCV;

  mutable std::mutex StatsM;
  ScrubStats Totals;
};

} // namespace aspen

#endif // ASPEN_STORE_REPLICATION_H
