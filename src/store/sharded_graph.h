//===- store/sharded_graph.h - Sharded versioned graph store --------------===//
//
// A hash-partitioned, versioned graph store: vertices are partitioned
// across S shards (S a power of two), each shard an independent
// purely-functional GraphSnapshotT, and the published state is an *epoch*
// — an immutable vector of per-shard snapshots installed through the same
// refcounted version-list core the single-store VersionedGraphT uses.
// Readers acquire() an epoch and are guaranteed a cross-shard-consistent
// cut: every epoch is the previous epoch plus exactly one complete batch,
// so per-shard edge counts always sum to a batch boundary and no reader
// ever observes a torn batch.
//
// Ingest is a pipeline (DESIGN.md Sections 3 and 8):
//   1. Prepare (no locks): the incoming spans are concatenated into one
//      merged span, partitioned by shard with filterIndexInto into
//      borrowed scratch (zero steady-state heap allocation, per the
//      AlgoContext contract), and each shard's sub-span is grouped with
//      a counting sort over *local* vertex ids (the hash partition
//      compresses a shard's id space by S, so the counter array stays
//      cache-resident — this is what makes grouping cheaper than the
//      single store's comparison sort). Because the grouping depends
//      only on the batch, not on the base epoch, this whole phase runs
//      before any writer lock is taken: batch N+1's group/sort overlaps
//      batch N's merge/install instead of serializing behind it.
//   2. Merge: the touched shards' writer locks are taken in ascending
//      order, then per-shard functional merges multiInsert the prepared
//      groups in parallel — one writer per shard.
//   3. Install: under the commit lock, a new epoch is formed from the
//      latest published epoch with the touched shards replaced, and
//      published atomically via the version list. Writers whose batches
//      touch disjoint shards merge concurrently and serialize only for
//      the O(S) pointer-copy install.
//
// A prepared group may carry SEVERAL submitted batches (EdgeSpans) at
// once: serve/ingest_front.h coalesces same-kind batches queued behind a
// busy shard into one merged span, which this store installs as a single
// epoch advancing BatchSeq by the number of coalesced batches (each
// batch keeps its own WAL record). Set semantics make the result
// byte-identical to one-at-a-time ingest (DESIGN.md Section 8).
//
// Readers compose the per-shard snapshots behind ShardedGraphView, which
// implements the same graph-view concept (numVertices / numEdges / degree
// / neighborCursor / mapNeighbors* / iterNeighborsCond) that edgeMap and
// all the algorithms are templated over, so analytics run unmodified —
// and bit-identically — on a sharded acquire.
//
// acquireFlat() additionally maintains a hot flat rendering of the
// current epoch — per-shard paged-CoW FlatSnapshotTs indexed by
// shard-local id, composed behind ShardedFlatView for O(1) vertex access
// — refreshed batch-to-batch from the merge pipeline's touched-vertex
// digests instead of rebuilt (DESIGN.md Section 4).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_SHARDED_GRAPH_H
#define ASPEN_STORE_SHARDED_GRAPH_H

#include "graph/graph.h"
#include "graph/versioned_graph.h" // FlatMaintenanceStats + flat tuning
#include "store/durability.h"
#include "store/version_list.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace aspen {

/// A borrowed, immutable view of one submitted batch's edges. Spans
/// alias caller memory: the edges must stay alive until the apply (or
/// commit) call that consumes the span returns.
struct EdgeSpan {
  const EdgePair *Data = nullptr;
  size_t Size = 0;
};

/// Hash-partitioned versioned graph store over \p EdgeSet shards.
template <class EdgeSet> class ShardedGraphStoreT {
public:
  using Snapshot = GraphSnapshotT<EdgeSet>;

  /// An immutable cross-shard cut: the per-shard snapshots as of one
  /// batch boundary, plus the aggregates readers ask for on every
  /// acquire. Epochs are the versioned value of the store.
  struct Epoch {
    std::vector<Snapshot> Shards;
    uint64_t BatchSeq = 0;  ///< number of complete batches applied
    uint64_t NumEdges = 0;  ///< sum of per-shard directed edge counts
    VertexId Universe = 0;  ///< max materialized vertex id + 1
  };

  class View;
  class FlatView;

  /// RAII reader handle to an acquired epoch (releasing is automatic).
  class Ref {
  public:
    Ref() = default;
    Ref(Ref &&) noexcept = default;
    Ref &operator=(Ref &&) noexcept = default;

    const Epoch &epoch() const { return H.value(); }
    uint64_t batchSeq() const { return H.value().BatchSeq; }
    uint64_t numEdges() const { return H.value().NumEdges; }
    size_t numShards() const { return H.value().Shards.size(); }
    const Snapshot &shard(size_t S) const { return H.value().Shards[S]; }

    /// Graph-view over the whole epoch; this handle must outlive it.
    View view() const { return View(H.value()); }

    bool valid() const { return H.valid(); }
    void reset() { H.reset(); }

  private:
    friend class ShardedGraphStoreT;
    explicit Ref(typename VersionListT<Epoch>::Handle H)
        : H(std::move(H)) {}
    typename VersionListT<Epoch>::Handle H;
  };

  /// Construct an empty store with \p NumShards shards (rounded up to a
  /// power of two) over the vertex universe [0, N): every vertex is
  /// materialized with an empty edge set in its owning shard, matching
  /// GraphSnapshotT::fromEdges.
  explicit ShardedGraphStoreT(size_t NumShards, VertexId N = 0)
      : ShardedGraphStoreT(NumShards, N, std::vector<EdgePair>{}) {}

  /// BuildGraph counterpart: a sharded store over vertices [0, N)
  /// containing \p Edges, partitioned by shardOf(). All shards build
  /// and update their edge sets under the same \p P (per-store, not
  /// process-global).
  ShardedGraphStoreT(size_t NumShards, VertexId N,
                     std::vector<EdgePair> Edges,
                     typename EdgeSet::BuildParams P = {})
      : LogShards(log2Ceil(NumShards)),
        Mask(VertexId((size_t(1) << LogShards) - 1)), Params(P),
        ShardLocks(new std::mutex[size_t(1) << LogShards]),
        Versions(initialEpoch(LogShards, N, std::move(Edges), P)) {}

  /// Durable open (opt-in; DESIGN.md Section 7): recover the newest
  /// valid checkpoint from \p O.Dir, replay the WAL suffix through the
  /// normal batch pipeline, and WAL-log + group-commit every subsequent
  /// batch before acknowledging it. A checkpoint's shard count is
  /// authoritative — \p NumShards only shapes a fresh directory (the
  /// hash partition must match the one the checkpointed shards were
  /// built under).
  ShardedGraphStoreT(const DurabilityOptions &O, size_t NumShards,
                     VertexId N, typename EdgeSet::BuildParams P = {})
      : ShardedGraphStoreT(std::make_unique<DurabilityEngine>(O), NumShards,
                           N, P) {}

  ShardedGraphStoreT(const ShardedGraphStoreT &) = delete;
  ShardedGraphStoreT &operator=(const ShardedGraphStoreT &) = delete;

  size_t numShards() const { return size_t(1) << LogShards; }

  typename EdgeSet::BuildParams buildParams() const { return Params; }

  /// Owning shard of a vertex. The partition hash folds the id's low
  /// bits: scattered real-world ids and generator ids both spread evenly,
  /// and the complementary high bits form the shard-local dense id the
  /// ingest grouping counts on.
  size_t shardOf(VertexId V) const { return size_t(V & Mask); }

  /// Shard-local dense id of \p V (its position in the shard's slice of
  /// the id space).
  VertexId localId(VertexId V) const { return V >> LogShards; }

  /// Acquire the current epoch. Never blocked by writers for more than a
  /// pointer swap; the returned cut is always a whole-batch boundary.
  Ref acquire() { return Ref(Versions.acquire()); }

  /// Number of complete batches applied so far (one atomic load; the
  /// mirror is published under the commit lock).
  uint64_t batchSeq() const {
    return PublishedSeqV.load(std::memory_order_acquire);
  }

  /// Atomically apply an insert batch (see class comment for the
  /// pipeline); returns the new epoch's batch sequence number. Many
  /// threads may call concurrently; batches touching disjoint shards
  /// merge in parallel, and same-shard writers overlap their group/sort
  /// phase with the predecessor's merge/install.
  uint64_t insertBatch(const EdgePair *Edges, size_t K) {
    EdgeSpan S{Edges, K};
    return applySpans(&S, 1, /*Insert=*/true);
  }
  uint64_t insertBatch(const std::vector<EdgePair> &Edges) {
    return insertBatch(Edges.data(), Edges.size());
  }

  /// Atomically apply a delete batch.
  uint64_t deleteBatch(const EdgePair *Edges, size_t K) {
    EdgeSpan S{Edges, K};
    return applySpans(&S, 1, /*Insert=*/false);
  }
  uint64_t deleteBatch(const std::vector<EdgePair> &Edges) {
    return deleteBatch(Edges.data(), Edges.size());
  }

  //===--------------------------------------------------------------------===
  // Coalesced / pipelined ingest (DESIGN.md Section 8). EdgeSpans borrow
  // their edges from the caller, which must keep them alive until the
  // apply/commit call returns.
  //===--------------------------------------------------------------------===

  /// Atomically apply \p N same-kind batches as ONE merged span and ONE
  /// installed epoch: BatchSeq advances by N (every submitted batch keeps
  /// its own sequence number and, on a durable store, its own WAL
  /// record), and the final state is byte-identical to applying the
  /// batches one at a time. Returns the LAST batch's sequence number.
  uint64_t applySpans(const EdgeSpan *Spans, size_t N, bool Insert) {
    if (N == 0)
      return batchSeq();
    if (PipelinedV.load(std::memory_order_relaxed))
      return commitPrepared(prepareSpans(Spans, N, Insert));
    return applySerialized(Spans, N, Insert);
  }

  /// A batch group that finished its lock-free prepare phase (split by
  /// shard + counting-sort grouping + per-group edge-set builds) and is
  /// ready to merge/install. Produced by prepareSpans(), consumed by
  /// commitPrepared(). Move-only; its grouped sets live in borrowed
  /// worker-cache scratch, which migrates safely across threads on
  /// release — though keeping prepare and commit on one thread (as the
  /// ingest front does) preserves cache locality.
  class PreparedIngest {
  public:
    PreparedIngest() = default;
    PreparedIngest(PreparedIngest &&) = default;
    PreparedIngest &operator=(PreparedIngest &&) = default;

  private:
    friend class ShardedGraphStoreT;
    std::vector<std::optional<GroupedBatchT<EdgeSet>>> Groups; // per shard
    std::vector<std::vector<VertexId>> Touched;                // per shard
    std::vector<EdgeSpan> Spans; ///< original batches, for the WAL
    bool Insert = false;
  };

  /// Prepare phase: coalesce \p N same-kind spans into one merged span,
  /// split it by owning shard, and group every shard's sub-span. Takes
  /// no locks — callers run it concurrently with a predecessor's
  /// merge/install (the pipelining half of DESIGN.md Section 8).
  PreparedIngest prepareSpans(const EdgeSpan *Spans, size_t N, bool Insert) {
    size_t S = numShards();
    PreparedIngest P;
    P.Insert = Insert;
    P.Spans.assign(Spans, Spans + N);
    // Sized at construction (optional<GroupedBatchT> is not movable, so
    // the vector must never reallocate; moving the vector itself is a
    // buffer steal and stays legal).
    P.Groups = std::vector<std::optional<GroupedBatchT<EdgeSet>>>(S);
    P.Touched.resize(S);
    size_t K = 0;
    for (size_t I = 0; I < N; ++I)
      K += Spans[I].Size;
    if (K == 0)
      return P;

    // The coalesced span: a single batch aliases its caller's buffer; a
    // group concatenates into scratch (this IS the "merged span").
    std::optional<CtxArray<EdgePair>> AllStore;
    const EdgePair *AllP = Spans[0].Data;
    if (N > 1) {
      AllStore.emplace(K);
      EdgePair *Dst = AllStore->data();
      size_t At = 0;
      for (size_t I = 0; I < N; ++I) {
        if (Spans[I].Size)
          std::copy(Spans[I].Data, Spans[I].Data + Spans[I].Size, Dst + At);
        At += Spans[I].Size;
      }
      AllP = Dst;
    }

    // Split by owning shard, then group each shard's sub-span (parallel
    // across shards; the per-group set builds fan out further inside).
    CtxArray<EdgePair> Parts(K);
    EdgePair *PartsP = Parts.data();
    CtxArray<size_t> ShardLo(S + 1);
    size_t *ShardLoP = ShardLo.data();
    splitByShard(AllP, K, PartsP, ShardLoP);
    parallelFor(0, S, [&](size_t Sh) {
      size_t Lo = ShardLoP[Sh], Hi = ShardLoP[Sh + 1];
      if (Hi > Lo)
        groupShard(Sh, PartsP + Lo, Hi - Lo, P.Groups[Sh], &P.Touched[Sh]);
    }, 1);
    return P;
  }

  /// Merge/install phase: lock the touched shards in ascending order,
  /// tree-merge the prepared groups in parallel, and publish one epoch
  /// advancing BatchSeq by the number of coalesced batches. Returns the
  /// last batch's sequence number.
  uint64_t commitPrepared(PreparedIngest P) {
    size_t S = numShards();
    CtxArray<uint8_t> TouchedSh(S);
    uint8_t *TouchedShP = TouchedSh.data();
    for (size_t Sh = 0; Sh < S; ++Sh)
      TouchedShP[Sh] =
          P.Groups[Sh].has_value() && P.Groups[Sh]->size() > 0;
    for (size_t Sh = 0; Sh < S; ++Sh)
      if (TouchedShP[Sh])
        ShardLocks[Sh].lock();
    return mergeInstall(P.Groups, P.Touched, TouchedShP, P.Spans.data(),
                        P.Spans.size(), P.Insert);
  }

  /// Toggle the pipelined prepare phase (default on). When off, the
  /// group/sort work runs under the shard locks — the pre-pipelining
  /// ingest path, kept as the serving benchmark's A/B baseline.
  void setPipelinedIngest(bool On) {
    PipelinedV.store(On, std::memory_order_relaxed);
  }
  bool pipelinedIngest() const {
    return PipelinedV.load(std::memory_order_relaxed);
  }

  //===--------------------------------------------------------------------===
  // Composed reader view.
  //===--------------------------------------------------------------------===

  /// Graph-view concept over an acquired epoch: vertex resolution costs
  /// one shard pick (a mask) plus an O(log n/S) lookup in the owning
  /// shard's vertex tree. The epoch (its Ref) must outlive the view.
  class View {
  public:
    using NeighborCursor = typename EdgeSet::View::Cursor;

    explicit View(const Epoch &E)
        : E(&E), Mask(VertexId(E.Shards.size() - 1)) {}

    VertexId numVertices() const { return E->Universe; }
    uint64_t numEdges() const { return E->NumEdges; }
    uint64_t degree(VertexId V) const { return owner(V).degree(V); }

    /// Streaming cursor over \p V's neighbors (epoch must stay alive).
    NeighborCursor neighborCursor(VertexId V) const {
      return owner(V).edgesView(V).cursor();
    }

    template <class F>
    void mapNeighborsIndexed(VertexId V, const F &Fn) const {
      owner(V).edgesView(V).forEachIndexed(Fn);
    }

    template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
      owner(V).edgesView(V).forEachSeq(Fn);
    }

    template <class F>
    bool iterNeighborsCond(VertexId V, const F &Fn) const {
      return owner(V).edgesView(V).iterCond(Fn);
    }

    /// Edge-existence probe (O(1) on hot hybrid vertices).
    bool containsEdge(VertexId U, VertexId X) const {
      return owner(U).containsEdge(U, X);
    }

    bool hasFastProbe(VertexId U) const {
      return owner(U).hasFastProbe(U);
    }

    /// Parallel traversal over (vertex, edge set) entries of every shard
    /// (unordered across shards, like the single store's parallel form).
    template <class F> void forEachVertex(const F &Fn) const {
      for (const Snapshot &S : E->Shards)
        S.forEachVertex(Fn);
    }

    size_t numShards() const { return E->Shards.size(); }
    const Snapshot &shard(size_t S) const { return E->Shards[S]; }

  private:
    const Snapshot &owner(VertexId V) const {
      return E->Shards[size_t(V & Mask)];
    }

    const Epoch *E;
    VertexId Mask;
  };

  //===--------------------------------------------------------------------===
  // Hot-epoch flat snapshots (DESIGN.md Section 4): per-shard paged-CoW
  // flat arrays indexed by shard-local id, maintained epoch-to-epoch from
  // the ingest pipeline's touched digests and composed behind a graph
  // view, so analytics get O(1) vertex access on the latest epoch
  // without an O(n) rebuild per batch.
  //===--------------------------------------------------------------------===

  using Flat = FlatSnapshotT<EdgeSet>;

  /// An immutable flat rendering of one epoch: per-shard flat snapshots
  /// (slot = local id = v >> log2(S)) plus the epoch aggregates.
  struct FlatEpoch {
    std::vector<Flat> Flats;
    uint64_t BatchSeq = 0;
    uint64_t NumEdges = 0;
    VertexId Universe = 0;
    size_t LogShards = 0;

    /// Graph-view over this flat epoch; the FlatEpoch (its shared_ptr)
    /// must outlive the view.
    FlatView view() const { return FlatView(*this); }
  };

  /// Graph-view concept over a FlatEpoch: vertex resolution is a mask,
  /// a shift, and two array reads — O(1) like FlatGraphView, composed
  /// across shards. Satisfies IsGraphViewV, so every algorithm runs
  /// unmodified (and bit-identically; see the flat differential tests).
  class FlatView {
  public:
    using SetView = typename EdgeSet::View;
    using NeighborCursor = typename SetView::Cursor;

    explicit FlatView(const FlatEpoch &FE)
        : FE(&FE), Mask(VertexId(FE.Flats.size() - 1)),
          Log(unsigned(FE.LogShards)) {}

    VertexId numVertices() const { return FE->Universe; }
    uint64_t numEdges() const { return FE->NumEdges; }
    uint64_t degree(VertexId V) const {
      const Flat &F = FE->Flats[size_t(V & Mask)];
      VertexId L = V >> Log;
      return L < F.numVertices() ? F.degree(L) : 0;
    }

    /// Streaming cursor over \p V's neighbors (epoch must stay alive).
    NeighborCursor neighborCursor(VertexId V) const {
      return slotView(V).cursor();
    }

    template <class F>
    void mapNeighborsIndexed(VertexId V, const F &Fn) const {
      slotView(V).forEachIndexed(Fn);
    }

    template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
      slotView(V).forEachSeq(Fn);
    }

    template <class F>
    bool iterNeighborsCond(VertexId V, const F &Fn) const {
      return slotView(V).iterCond(Fn);
    }

    /// Edge-existence probe (O(1) on hot hybrid vertices).
    bool containsEdge(VertexId U, VertexId X) const {
      return slotView(U).contains(X);
    }

    bool hasFastProbe(VertexId U) const {
      return slotView(U).hasFastProbe();
    }

  private:
    /// The vertex universe is epoch-global; shards whose own id space
    /// ends earlier resolve out-of-range vertices to the empty view.
    SetView slotView(VertexId V) const {
      const Flat &F = FE->Flats[size_t(V & Mask)];
      VertexId L = V >> Log;
      return L < F.numVertices() ? F.edges(L) : SetView{};
    }

    const FlatEpoch *FE;
    VertexId Mask;
    unsigned Log;
  };

  /// Flat rendering of the current epoch, maintained as a hot cache: an
  /// unchanged epoch is returned as-is; an epoch a few recorded batches
  /// ahead of the cache is caught up by refreshing only the touched
  /// shards' touched pages (untouched shards share their predecessor's
  /// flat wholesale, by root-pointer identity); anything else — cold
  /// cache, replay gap, or a touched set above universe /
  /// FlatRefreshDenominator — is a full parallel rebuild. Callers
  /// serialize on an internal mutex for the catch-up work; writers are
  /// never blocked by it. Hold the shared_ptr while using the view.
  std::shared_ptr<const FlatEpoch> acquireFlat() {
    size_t S = numShards();
    // Lock-free fast path: one atomic seq load + one atomic shared_ptr
    // load, no mutex. The seq is read FIRST; if the cached flat then
    // matches it, that flat rendered the epoch current at the instant
    // of the seq read (the cache never regresses, and a concurrently
    // installed newer flat carries a larger seq, failing the compare) —
    // exactly the freshness the mutex path promises. Under a session
    // fan-out with a quiet writer, every reader hits here without
    // serializing on FlatM.
    {
      uint64_t Seq = batchSeq();
      std::shared_ptr<const FlatEpoch> Hot =
          std::atomic_load_explicit(&CachedFlat, std::memory_order_acquire);
      if (Hot && Hot->BatchSeq == Seq) {
        FlatHitsV.fetch_add(1, std::memory_order_relaxed);
        return Hot;
      }
    }

    std::lock_guard<std::mutex> Lock(FlatM);
    // Acquired under FlatM: every cache entry was built from an epoch
    // acquired while holding this lock, so Seq >= CachedFlat->BatchSeq
    // always and the cache can never regress to an older epoch.
    Ref E = acquire();
    uint64_t Seq = E.batchSeq();
    std::shared_ptr<const FlatEpoch> Cached =
        std::atomic_load_explicit(&CachedFlat, std::memory_order_acquire);
    if (Cached && Cached->BatchSeq == Seq) {
      ++Stats.Hits;
      return Cached;
    }

    std::shared_ptr<FlatEpoch> New;
    if (Cached) {
      // Union the replay span's digests per shard.
      std::vector<std::vector<VertexId>> Touched(S);
      bool Covered = Digests.replay(
          Cached->BatchSeq, Seq, [&](const ShardDigest &D) {
            for (const auto &P : D)
              Touched[P.first].insert(Touched[P.first].end(),
                                      P.second.begin(), P.second.end());
          });
      // Threshold on the *distinct* touched union (hot vertices hit by
      // several replayed batches count once), as in the single store.
      uint64_t Total = 0;
      if (Covered) {
        parallelFor(0, S, [&](size_t Sh) {
          auto &T = Touched[Sh];
          parallelSort(T);
          T.erase(std::unique(T.begin(), T.end()), T.end());
        }, 1);
        for (const auto &T : Touched)
          Total += T.size();
      }
      if (Covered &&
          Total * FlatRefreshDenominator <= uint64_t(E.epoch().Universe)) {
        New = std::make_shared<FlatEpoch>();
        New->Flats.resize(S);
        const FlatEpoch &Prev = *Cached;
        parallelFor(0, S, [&](size_t Sh) {
          const Snapshot &Cur = E.shard(Sh);
          // Root identity means the shard is bit-identical to the one
          // the cached flat renders: share its pages wholesale.
          if (Cur.root() == Prev.Flats[Sh].graph().root()) {
            New->Flats[Sh] = Prev.Flats[Sh];
            return;
          }
          const auto &T = Touched[Sh];
          New->Flats[Sh] =
              Flat::refresh(Prev.Flats[Sh], Cur, T.data(), T.size());
        }, 1);
        ++Stats.Refreshes;
      }
    }
    if (!New) {
      New = std::make_shared<FlatEpoch>();
      New->Flats.resize(S);
      parallelFor(0, S, [&](size_t Sh) {
        New->Flats[Sh] = Flat(E.shard(Sh), unsigned(LogShards));
      }, 1);
      ++Stats.Rebuilds;
    }
    New->BatchSeq = Seq;
    New->NumEdges = E.numEdges();
    New->Universe = E.epoch().Universe;
    New->LogShards = LogShards;
    // Atomic publish pairs with the fast path's lock-free load.
    std::atomic_store_explicit(
        &CachedFlat, std::shared_ptr<const FlatEpoch>(New),
        std::memory_order_release);
    return New;
  }

  /// Rebuild/refresh/hit counters of acquireFlat() (diagnostics, tests).
  /// Hits counts both mutex-path and lock-free fast-path hits.
  FlatMaintenanceStats flatStats() const {
    std::lock_guard<std::mutex> Lock(FlatM);
    FlatMaintenanceStats R = Stats;
    R.Hits += FlatHitsV.load(std::memory_order_relaxed);
    return R;
  }

  /// Durability engine of a durable store (nullptr on a memory-only
  /// store). Diagnostics only — the store drives it internally.
  const DurabilityEngine *durability() const { return Durable.get(); }

  /// Mutable engine access for the self-healing layer: the scrubber and
  /// the replication drivers (store/replication.h) attach here.
  DurabilityEngine *durability() { return Durable.get(); }

  /// Serialize the current epoch as a durable checkpoint, rotate the
  /// WAL, and drop the log prefix it covers. Durable stores only; safe
  /// under concurrent ingest — the checkpoint is one acquired epoch's
  /// consistent cut, and only WAL records it covers are trimmed.
  ///
  /// Incremental (DESIGN.md Section 9): shard snapshots are immutable
  /// functional trees, so "changed since the last checkpoint" is one
  /// root-pointer comparison against the pinned last-checkpoint epoch.
  /// When the engine offers a base generation, only changed shards are
  /// serialized and written; the manifest chains back to the base.
  uint64_t checkpointNow() {
    assert(Durable && "checkpointNow on a memory-only store");
    std::lock_guard<std::mutex> G(CkptStateM);
    Ref E = acquire();
    size_t S = numShards();
    std::vector<std::vector<uint8_t>> Streams(S);
    std::optional<uint64_t> Base = Durable->incrementalBaseFor();
    bool Wrote = false;
    if (Base && CkptEpoch.valid() && CkptEpochSeq == *Base) {
      std::vector<uint8_t> Present(S, 0);
      for (size_t Sh = 0; Sh < S; ++Sh)
        Present[Sh] = E.shard(Sh).root() != CkptEpoch.shard(Sh).root();
      parallelFor(0, S, [&](size_t Sh) {
        if (Present[Sh])
          serializeSnapshot(E.shard(Sh), Streams[Sh]);
      }, 1);
      Wrote = Durable->checkpoint(E.batchSeq(), uint32_t(LogShards),
                                  Streams, *Base, &Present);
      if (!Wrote) {
        // The base went stale under us (e.g. the scrubber quarantined
        // it); flush the missing shards and retry as a full checkpoint.
        parallelFor(0, S, [&](size_t Sh) {
          if (!Present[Sh])
            serializeSnapshot(E.shard(Sh), Streams[Sh]);
        }, 1);
        Wrote = Durable->checkpoint(E.batchSeq(), uint32_t(LogShards),
                                    Streams);
      }
    } else {
      parallelFor(0, S, [&](size_t Sh) {
        serializeSnapshot(E.shard(Sh), Streams[Sh]);
      }, 1);
      Wrote = Durable->checkpoint(E.batchSeq(), uint32_t(LogShards),
                                  Streams);
    }
    if (Wrote) {
      // Pin this epoch until the next checkpoint: the pin keeps the
      // shard roots alive, so pointer identity against them stays
      // sound (structural sharing bounds the pinned delta).
      CkptEpochSeq = E.batchSeq();
      CkptEpoch = std::move(E);
      return CkptEpochSeq;
    }
    return E.batchSeq();
  }

private:
  /// Durable-open worker: shard geometry comes from the recovered
  /// checkpoint when one exists (the partition hash must match the one
  /// the checkpointed shards were built under).
  ShardedGraphStoreT(std::unique_ptr<DurabilityEngine> Eng, size_t NumShards,
                     VertexId N, typename EdgeSet::BuildParams P)
      : LogShards(Eng->recovered().Ckpt
                      ? size_t(Eng->recovered().Ckpt->LogShards)
                      : log2Ceil(NumShards)),
        Mask(VertexId((size_t(1) << LogShards) - 1)), Params(P),
        ShardLocks(new std::mutex[size_t(1) << LogShards]),
        Versions(initialEpoch(LogShards, N, {}, P)),
        Durable(std::move(Eng)) {
    const RecoveredState &R = Durable->recovered();
    size_t S = numShards();
    if (R.Ckpt) {
      if (R.Ckpt->ShardStreams.size() != S)
        throw CorruptCheckpoint("sharded checkpoint shard-count mismatch");
      Epoch E;
      E.Shards.resize(S);
      std::vector<std::exception_ptr> Errs(S);
      parallelFor(0, S, [&](size_t Sh) {
        try {
          ByteReader Rd(R.Ckpt->ShardStreams[Sh].data(),
                        R.Ckpt->ShardStreams[Sh].size());
          E.Shards[Sh] = deserializeSnapshot<EdgeSet>(Rd, Params);
        } catch (...) {
          Errs[Sh] = std::current_exception();
        }
      }, 1);
      for (std::exception_ptr &Ep : Errs)
        if (Ep)
          std::rethrow_exception(Ep);
      E.BatchSeq = R.Ckpt->Seq;
      finalizeAggregates(E, N);
      Versions.set(std::move(E));
      PublishedSeqV.store(R.Ckpt->Seq, std::memory_order_release);
      // Pin the checkpoint epoch before replay: the first post-recovery
      // checkpoint can then be incremental against the recovered base
      // (untouched shards share these exact roots across replay).
      CkptEpoch = acquire();
      CkptEpochSeq = R.Ckpt->Seq;
      if (Durable->options().PrimeFlatOnRecover)
        primeFlatFromCurrent();
    }
    // Replay the WAL suffix through the normal pipeline (Recovering
    // gates the WAL re-append); the digests it records keep the primed
    // flat cache refreshable.
    Recovering = true;
    for (const WalReplayRecord &RR : R.Replay) {
      uint64_t Seq = applyBatch(RR.Edges.data(), RR.Edges.size(),
                                RR.Kind == WalKind::InsertBatch);
      (void)Seq;
      assert(Seq == RR.Seq && "replay must reproduce the batch sequence");
    }
    Recovering = false;
    Durable->dropRecoveredPayload();
  }

  /// Recovery priming: build the hot flat cache from the current
  /// (checkpoint) epoch so the first post-recovery acquireFlat() takes
  /// the O(touched) refresh path over the replayed batches' digests.
  void primeFlatFromCurrent() {
    size_t S = numShards();
    std::lock_guard<std::mutex> Lock(FlatM);
    Ref E = acquire();
    auto New = std::make_shared<FlatEpoch>();
    New->Flats.resize(S);
    parallelFor(0, S, [&](size_t Sh) {
      New->Flats[Sh] = Flat(E.shard(Sh), unsigned(LogShards));
    }, 1);
    New->BatchSeq = E.batchSeq();
    New->NumEdges = E.numEdges();
    New->Universe = E.epoch().Universe;
    New->LogShards = LogShards;
    std::atomic_store_explicit(
        &CachedFlat, std::shared_ptr<const FlatEpoch>(std::move(New)),
        std::memory_order_release);
    ++Stats.Rebuilds;
  }

  /// Per-epoch touched digest: (shard, ascending touched vertex ids) for
  /// every shard the batch touched.
  using ShardDigest = std::vector<std::pair<uint32_t, std::vector<VertexId>>>;

  static size_t log2Ceil(size_t S) {
    size_t L = 0;
    while ((size_t(1) << L) < S)
      ++L;
    return L;
  }

  static Epoch initialEpoch(size_t LogShards, VertexId N,
                            std::vector<EdgePair> Edges,
                            typename EdgeSet::BuildParams P) {
    size_t S = size_t(1) << LogShards;
    VertexId Mask = VertexId(S - 1);
    Epoch E;
    E.Shards.resize(S);
    parallelFor(0, S, [&](size_t Sh) {
      // Every owned vertex in [0, N) materialized with an empty edge set
      // (mirroring GraphSnapshotT::fromEdges), then this shard's edges.
      std::vector<VertexId> Owned;
      for (VertexId V = VertexId(Sh); V < N; V += VertexId(S))
        Owned.push_back(V);
      std::vector<EdgePair> Mine;
      for (const EdgePair &P : Edges)
        if (size_t(P.first & Mask) == Sh) {
          assert(P.first < N && "edge endpoint out of vertex range");
          Mine.push_back(P);
        }
      E.Shards[Sh] = Snapshot(P).insertVertices(std::move(Owned))
                         .insertEdges(std::move(Mine));
    }, 1);
    finalizeAggregates(E, N);
    return E;
  }

  static void finalizeAggregates(Epoch &E, VertexId FloorUniverse) {
    uint64_t Edges = 0;
    VertexId U = FloorUniverse;
    for (const Snapshot &S : E.Shards) {
      Edges += S.numEdges();
      U = std::max(U, S.vertexUniverse());
    }
    E.NumEdges = Edges;
    E.Universe = U;
  }

  /// Partition \p K edges by owning shard into \p PartsP (stable within
  /// a shard), with \p ShardLoP[S + 1] the per-shard slice bounds.
  void splitByShard(const EdgePair *Edges, size_t K, EdgePair *PartsP,
                    size_t *ShardLoP) const {
    size_t S = numShards();
    size_t At = 0;
    for (size_t Sh = 0; Sh < S; ++Sh) {
      ShardLoP[Sh] = At;
      At += filterIndexInto(
          K, [&](size_t I) { return Edges[I]; },
          [&](size_t I) { return size_t(Edges[I].first & Mask) == Sh; },
          PartsP + At);
    }
    ShardLoP[S] = At;
    assert(At == K && "shard split must cover the batch");
  }

  /// Group shard \p Sh's sub-span by source with a counting sort over
  /// local ids, building one (global id, sorted edge set) pair per
  /// distinct source into \p Pairs. \p Sub is mutable scratch. Depends
  /// only on the batch, never on the base epoch — this is the phase the
  /// pipeline runs before any lock.
  ///
  /// The grouping scratch (counters, scatter buffer) is scoped to return
  /// to the per-worker cache before the tree merge runs: the merge's own
  /// chunk-op scratch must not contend with input-sized blocks checked
  /// out for the whole call (measurably slows the unions otherwise).
  void groupShard(size_t Sh, EdgePair *Sub, size_t K,
                  std::optional<GroupedBatchT<EdgeSet>> &Pairs,
                  std::vector<VertexId> *TouchedOut) const {
    // Dense local-id range of the batch (not of the shard): counters
    // cover only ids the batch names.
    VertexId MaxLocal = 0;
    for (size_t I = 0; I < K; ++I)
      MaxLocal = std::max(MaxLocal, localId(Sub[I].first));
    size_t M = size_t(MaxLocal) + 1;

    // Counting sort by local source id: Starts[l] = first slot of
    // group l after the exclusive scan; Pos[] advances in the scatter.
    CtxArray<uint32_t> Starts(M + 1);
    uint32_t *StartsP = Starts.data();
    std::memset(StartsP, 0, (M + 1) * sizeof(uint32_t));
    for (size_t I = 0; I < K; ++I)
      ++StartsP[localId(Sub[I].first) + 1];
    for (size_t L = 0; L < M; ++L)
      StartsP[L + 1] += StartsP[L];
    CtxArray<uint32_t> Pos(M);
    uint32_t *PosP = Pos.data();
    std::memcpy(PosP, StartsP, M * sizeof(uint32_t));
    CtxArray<VertexId> Dst(K);
    VertexId *DstP = Dst.data();
    for (size_t I = 0; I < K; ++I)
      DstP[PosP[localId(Sub[I].first)]++] = Sub[I].second;

    // One grouped pair per nonempty local id, in increasing id order
    // (local order implies global order within a shard: global id =
    // local << LogShards | shard). The per-group sort + set builds are
    // independent, so they fill the grouped batch in parallel by
    // index; a skewed batch into one shard then still fans out across
    // cores instead of serializing behind this loop.
    CtxArray<uint32_t> GroupIds(M);
    uint32_t *GroupIdsP = GroupIds.data();
    size_t Groups = filterIndexInto(
        M, [](size_t L) { return uint32_t(L); },
        [&](size_t L) { return StartsP[L + 1] > StartsP[L]; }, GroupIdsP);
    Pairs.emplace(Groups);
    Pairs->setSize(Groups);
    VertexId ShardBits = VertexId(Sh);
    parallelFor(0, Groups, [&](size_t G) {
      uint32_t L = GroupIdsP[G];
      uint32_t Lo = StartsP[L], Hi = StartsP[L + 1];
      size_t Len = Hi - Lo;
      if (Len >= 8192)
        parallelSort(DstP + Lo, Len);
      else
        std::sort(DstP + Lo, DstP + Hi);
      Len = size_t(std::unique(DstP + Lo, DstP + Hi) - (DstP + Lo));
      VertexId Global = (VertexId(L) << LogShards) | ShardBits;
      Pairs->emplaceAt(G, Global,
                       EdgeSet::buildSorted(DstP + Lo, Len, Params));
    });
    // The grouped keys double as the epoch's touched-vertex digest for
    // this shard (ascending local order implies ascending global order
    // within a shard).
    if (TouchedOut) {
      TouchedOut->resize(Groups);
      VertexId *TP = TouchedOut->data();
      parallelFor(0, Groups, [&](size_t G) {
        TP[G] = Pairs->data()[G].first;
      });
    }
  }

  /// One-batch-at-a-time ingest with the group/sort phase under the
  /// shard locks — the pre-pipelining path, retained for recovery
  /// replay (batch-per-epoch reproduction) and as the serving
  /// benchmark's serialized A/B baseline.
  uint64_t applyBatch(const EdgePair *Edges, size_t K, bool Insert) {
    size_t S = numShards();
    // Split: partition the batch by owning shard into scratch.
    CtxArray<EdgePair> Parts(K);
    EdgePair *PartsP = Parts.data();
    CtxArray<size_t> ShardLo(S + 1);
    size_t *ShardLoP = ShardLo.data();
    splitByShard(Edges, K, PartsP, ShardLoP);

    // Lock touched shards in ascending order, then group + merge under
    // the locks (one writer per shard; disjoint-shard batches overlap).
    CtxArray<uint8_t> TouchedSh(S);
    uint8_t *TouchedShP = TouchedSh.data();
    for (size_t Sh = 0; Sh < S; ++Sh)
      TouchedShP[Sh] = ShardLoP[Sh + 1] > ShardLoP[Sh];
    for (size_t Sh = 0; Sh < S; ++Sh)
      if (TouchedShP[Sh])
        ShardLocks[Sh].lock();
    std::vector<std::optional<GroupedBatchT<EdgeSet>>> Groups(S);
    std::vector<std::vector<VertexId>> Touched(S);
    parallelFor(0, S, [&](size_t Sh) {
      size_t Lo = ShardLoP[Sh], Hi = ShardLoP[Sh + 1];
      if (Hi > Lo)
        groupShard(Sh, PartsP + Lo, Hi - Lo, Groups[Sh], &Touched[Sh]);
    }, 1);
    EdgeSpan Span{Edges, K};
    return mergeInstall(Groups, Touched, TouchedShP, &Span, 1, Insert);
  }

  uint64_t applySerialized(const EdgeSpan *Spans, size_t N, bool Insert) {
    uint64_t Seq = batchSeq();
    for (size_t I = 0; I < N; ++I)
      Seq = applyBatch(Spans[I].Data, Spans[I].Size, Insert);
    return Seq;
  }

  /// Shared merge + install tail. Preconditions: the shards flagged in
  /// \p TouchedShP are locked (ascending), \p Groups/\p Touched hold
  /// their prepared groups and digests, and \p Spans are the \p NumSpans
  /// original batches the groups coalesce (WAL payloads, one record
  /// each). Publishes ONE epoch advancing BatchSeq by \p NumSpans and
  /// returns the last batch's sequence number.
  uint64_t
  mergeInstall(std::vector<std::optional<GroupedBatchT<EdgeSet>>> &Groups,
               std::vector<std::vector<VertexId>> &Touched,
               const uint8_t *TouchedShP, const EdgeSpan *Spans,
               size_t NumSpans, bool Insert) {
    size_t S = numShards();
    // --- Merge: per-shard functional merges of the prepared groups, in
    // parallel (one writer per shard; concurrent batches on disjoint
    // shards overlap fully). ---
    using PerShard = typename std::aligned_storage<sizeof(Snapshot),
                                                   alignof(Snapshot)>::type;
    CtxArray<PerShard> MergedMem(S);
    Snapshot *Merged = reinterpret_cast<Snapshot *>(MergedMem.data());
    // The base epoch: acquired after the shard locks, so every touched
    // shard's value is its latest *committed* state (a predecessor holds
    // the shard lock until its install completes). Held until all locks
    // are dropped: releasing it earlier could make this writer reclaim a
    // superseded epoch while holding locks others wait on.
    Ref Base = acquire();
    parallelFor(0, S, [&](size_t Sh) {
      new (&Merged[Sh]) Snapshot(
          TouchedShP[Sh]
              ? (Insert ? Base.shard(Sh).insertGrouped(Groups[Sh]->data(),
                                                       Groups[Sh]->size())
                        : Base.shard(Sh).deleteGrouped(Groups[Sh]->data(),
                                                       Groups[Sh]->size()))
              : Snapshot());
    }, 1);

    // --- Install: publish a new epoch formed from the latest committed
    // epoch with the touched shards replaced. Only the O(S) vector copy
    // and pointer swap happen under the commit lock; the superseded
    // epoch's reclamation (freeing the replaced shards' tree delta) is
    // deferred until every lock is released, so concurrent
    // disjoint-shard writers never serialize behind it. ---
    uint64_t Seq;
    Ref Latest;
    DurabilityEngine::Ticket Tk;
    try {
      std::lock_guard<std::mutex> Lock(CommitM);
      Latest = acquire();
      Epoch Next;
      Next.Shards = Latest.epoch().Shards;
      for (size_t Sh = 0; Sh < S; ++Sh)
        if (TouchedShP[Sh])
          Next.Shards[Sh] = std::move(Merged[Sh]);
      uint64_t Prev = Latest.epoch().BatchSeq;
      Next.BatchSeq = Prev + NumSpans;
      finalizeAggregates(Next, Latest.epoch().Universe);
      Seq = Next.BatchSeq;
      // WAL appends under the commit lock: file order = install order,
      // one record per coalesced batch carrying its original (unsorted,
      // unsplit) edges, so replay — which runs batch-per-epoch —
      // reproduces every acknowledged sequence number exactly. The
      // group commit itself happens after the locks are released.
      if (Durable && !Recovering)
        for (size_t I = 0; I < NumSpans; ++I)
          Tk = Durable->append(Insert ? WalKind::InsertBatch
                                      : WalKind::DeleteBatch,
                               Prev + I + 1, Spans[I].Data, Spans[I].Size);
      uint64_t DigestCap =
          uint64_t(Next.Universe) / FlatRefreshDenominator;
      Versions.set(std::move(Next));
      // Sparse per-shard digest (touched shards only). The digest log
      // is keyed by contiguous BatchSeq stamps, so a coalesced install
      // records EMPTY digests at the intermediate sequence numbers
      // (never published as epochs — no reader replays a span ending
      // on one) and the union digest at the final one: any replay span
      // crossing the group sees exactly its touched set. A digest above
      // the refresh threshold guarantees any span containing it
      // rebuilds; clearing skips the pointless replay on readers.
      ShardDigest Digest;
      uint64_t Total = 0;
      for (size_t Sh = 0; Sh < S; ++Sh)
        if (!Touched[Sh].empty()) {
          Total += Touched[Sh].size();
          Digest.emplace_back(uint32_t(Sh), std::move(Touched[Sh]));
        }
      if (Total <= DigestCap) {
        for (size_t I = 1; I < NumSpans; ++I)
          Digests.record(Prev + I, ShardDigest{});
        Digests.record(Seq, std::move(Digest));
      } else {
        Digests.clear();
      }
      PublishedSeqV.store(Seq, std::memory_order_release);
    } catch (...) {
      // A poisoned WAL (or an injected crash) must not strand the shard
      // locks or leak the merged snapshots: unwind cleanly, without
      // installing, and let the caller see the failure.
      for (size_t Sh = 0; Sh < S; ++Sh)
        Merged[Sh].~Snapshot();
      for (size_t Sh = S; Sh-- > 0;)
        if (TouchedShP[Sh])
          ShardLocks[Sh].unlock();
      throw;
    }
    for (size_t Sh = 0; Sh < S; ++Sh)
      Merged[Sh].~Snapshot();
    for (size_t Sh = S; Sh-- > 0;)
      if (TouchedShP[Sh])
        ShardLocks[Sh].unlock();
    // Superseded-epoch reclamation outside every lock.
    Base.reset();
    Latest.reset();
    if (Tk.Log) {
      Durable->sync(Tk); // acknowledged == durable (all coalesced seqs)
      checkpointIfDue(Seq);
    }
    return Seq;
  }

  /// Auto-checkpoint trigger (CheckpointEveryBatches): at most one
  /// ingest thread checkpoints at a time. A thread that finds the
  /// trigger held does NOT skip the due checkpoint — it latches
  /// CkptPending, and the holder drains the flag before quiescing (a
  /// plain try_lock-and-skip could starve the trigger forever under
  /// steady ingest: every acknowledger finds some peer holding the
  /// mutex and no one checkpoints). Invariant at quiescence:
  /// batchSeq() - lastCheckpointSeq() < CheckpointEveryBatches.
  void checkpointIfDue(uint64_t Seq) {
    uint64_t Every = Durable->options().CheckpointEveryBatches;
    if (!Every || Seq < Durable->lastCheckpointSeq() + Every)
      return;
    CkptPending.store(true, std::memory_order_release);
    while (CkptTriggerM.try_lock()) {
      {
        std::lock_guard<std::mutex> G(CkptTriggerM, std::adopt_lock);
        while (CkptPending.exchange(false, std::memory_order_acq_rel))
          if (batchSeq() >= Durable->lastCheckpointSeq() + Every)
            checkpointNow();
      }
      // A peer may have latched the flag after our drain but lost its
      // try_lock to us: re-check now that the mutex is free, else its
      // due checkpoint would wait for the next acknowledged batch.
      if (!CkptPending.load(std::memory_order_acquire))
        return;
    }
    // try_lock failed: the holder is inside the drain loop (or its own
    // post-unlock re-check) and will observe our flag.
  }

  size_t LogShards;
  VertexId Mask;
  typename EdgeSet::BuildParams Params{};
  std::unique_ptr<std::mutex[]> ShardLocks;
  std::mutex CommitM;
  VersionListT<Epoch> Versions;
  // Lock-free mirror of the published epoch's BatchSeq (stored under
  // CommitM, read by batchSeq() and the acquireFlat fast path).
  std::atomic<uint64_t> PublishedSeqV{0};
  // Pipelined prepare phase on/off (serving benchmark A/B knob).
  std::atomic<bool> PipelinedV{true};

  // Incremental-checkpoint state (guarded by CkptStateM): the epoch of
  // the last written checkpoint, pinned so shard-root pointer identity
  // against it stays sound until the next checkpoint replaces the pin.
  std::mutex CkptStateM;
  Ref CkptEpoch;
  uint64_t CkptEpochSeq = 0;

  // Durability (nullptr on a memory-only store); Recovering gates the
  // WAL re-append while the constructor replays the recovered log.
  std::unique_ptr<DurabilityEngine> Durable;
  bool Recovering = false;
  std::mutex CkptTriggerM;
  std::atomic<bool> CkptPending{false};

  // Hot-flat maintenance state (DESIGN.md Section 4). The digest log is
  // keyed by BatchSeq (contiguous under the commit lock); the cached
  // flat serializes its refreshers on FlatM without ever blocking
  // writers, and current-epoch hits bypass FlatM entirely via the
  // atomic shared_ptr fast path.
  DeltaLogT<ShardDigest> Digests{FlatReplayMaxEpochs};
  mutable std::mutex FlatM;
  std::shared_ptr<const FlatEpoch> CachedFlat;
  FlatMaintenanceStats Stats;
  mutable std::atomic<uint64_t> FlatHitsV{0};
};

/// Default Aspen configuration: C-tree shards with difference encoding.
using ShardedGraphStore =
    ShardedGraphStoreT<CTreeSet<VertexId, DeltaByteCodec>>;
/// Degree-adaptive hybrid shards (graph/hybrid_set.h).
using HybridShardedGraphStore = ShardedGraphStoreT<HybridEdgeSet>;
using ShardedGraphView = ShardedGraphStore::View;
/// O(1)-vertex-access view over a hot flat epoch (acquireFlat()).
using ShardedFlatView = ShardedGraphStore::FlatView;

} // namespace aspen

#endif // ASPEN_STORE_SHARDED_GRAPH_H
