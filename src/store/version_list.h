//===- store/version_list.h - Refcounted version-list core ----------------===//
//
// The reusable core of the version-maintenance layer (Section 6, documented
// in DESIGN.md): a single-slot chain of immutable values where one writer
// installs new versions with set() while any number of readers acquire()
// and release() them. Readers are never blocked for more than the duration
// of a pointer swap and always see a complete, immutable value.
//
// The payload T is opaque: graph/versioned_graph.h instantiates it with a
// single GraphSnapshotT, and store/sharded_graph.h with a cross-shard
// Epoch (a vector of per-shard snapshots). Reclamation is by reference
// count: a version is destroyed once it is no longer current and its last
// reader releases it, so structural sharing between consecutive versions
// (purely-functional trees) collapses to exactly the nodes unique to dead
// versions.
//
// Deviation from the paper: the paper uses the lock-free version-list
// algorithm of Ben-David et al. [8]; we protect the list manipulation with
// a short critical section (tens of nanoseconds against millisecond-scale
// queries). See DESIGN.md Section 1.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_VERSION_LIST_H
#define ASPEN_STORE_VERSION_LIST_H

#include <atomic>
#include <cassert>
#include <mutex>
#include <utility>

namespace aspen {

/// Refcounted chain of immutable versions of a value of type \p T.
template <class T> class VersionListT {
  struct VersionNode {
    T Value;
    std::atomic<int64_t> Refs;
    uint64_t Stamp;

    VersionNode(T Value, int64_t InitialRefs, uint64_t Stamp)
        : Value(std::move(Value)), Refs(InitialRefs), Stamp(Stamp) {}
  };

public:
  /// RAII handle to an acquired version; releasing is automatic.
  class Handle {
  public:
    Handle() = default;
    Handle(const Handle &) = delete;
    Handle &operator=(const Handle &) = delete;
    Handle(Handle &&O) noexcept : VL(O.VL), N(O.N) {
      O.VL = nullptr;
      O.N = nullptr;
    }
    Handle &operator=(Handle &&O) noexcept {
      if (this != &O) {
        reset();
        VL = O.VL;
        N = O.N;
        O.VL = nullptr;
        O.N = nullptr;
      }
      return *this;
    }
    ~Handle() { reset(); }

    /// The immutable value this version refers to.
    const T &value() const {
      assert(N && "empty version handle");
      return N->Value;
    }

    /// Monotone timestamp of the version (install sequence number).
    uint64_t stamp() const { return N ? N->Stamp : 0; }

    bool valid() const { return N != nullptr; }

    /// Explicit early release.
    void reset() {
      if (VL && N)
        VL->releaseNode(N);
      VL = nullptr;
      N = nullptr;
    }

  private:
    friend class VersionListT;
    Handle(VersionListT *VL, VersionNode *N) : VL(VL), N(N) {}
    VersionListT *VL = nullptr;
    VersionNode *N = nullptr;
  };

  explicit VersionListT(T Initial) {
    Current = new VersionNode(std::move(Initial), /*InitialRefs=*/1, 0);
  }

  VersionListT(const VersionListT &) = delete;
  VersionListT &operator=(const VersionListT &) = delete;

  ~VersionListT() {
    // All readers must have released their versions by now.
    std::lock_guard<std::mutex> Lock(M);
    int64_t Left = Current->Refs.fetch_sub(1, std::memory_order_acq_rel);
    assert(Left == 1 && "destroying version list with live readers");
    (void)Left;
    delete Current;
  }

  /// Acquire the latest version. Never blocked by the writer for more than
  /// the duration of a pointer swap.
  Handle acquire() {
    std::lock_guard<std::mutex> Lock(M);
    Current->Refs.fetch_add(1, std::memory_order_relaxed);
    return Handle(this, Current);
  }

  /// Install a new value as the current version. Atomic with respect to
  /// acquire(); the previous version survives until its last reader
  /// releases it. Returns the new version's stamp.
  uint64_t set(T Value) {
    VersionNode *Old;
    uint64_t S;
    {
      std::lock_guard<std::mutex> Lock(M);
      S = Stamp.fetch_add(1) + 1;
      auto *N = new VersionNode(std::move(Value), /*InitialRefs=*/1, S);
      Old = Current;
      Current = N;
    }
    releaseNode(Old); // drop the current-slot reference
    return S;
  }

  /// Stamp of the most recently installed version.
  uint64_t currentStamp() const {
    return Stamp.load(std::memory_order_relaxed);
  }

private:
  friend class Handle;

  void releaseNode(VersionNode *N) {
    if (N->Refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last reference: N is no longer current (the current-slot reference
      // would still be outstanding), so nobody can acquire it again.
      delete N;
    }
  }

  mutable std::mutex M;
  VersionNode *Current = nullptr;
  std::atomic<uint64_t> Stamp{0};
};

} // namespace aspen

#endif // ASPEN_STORE_VERSION_LIST_H
