//===- store/version_list.h - Refcounted version-list core ----------------===//
//
// The reusable core of the version-maintenance layer (Section 6, documented
// in DESIGN.md): a single-slot chain of immutable values where one writer
// installs new versions with set() while any number of readers acquire()
// and release() them. Readers are never blocked for more than the duration
// of a pointer swap and always see a complete, immutable value.
//
// The payload T is opaque: graph/versioned_graph.h instantiates it with a
// single GraphSnapshotT, and store/sharded_graph.h with a cross-shard
// Epoch (a vector of per-shard snapshots). Reclamation is by reference
// count: a version is destroyed once it is no longer current and its last
// reader releases it, so structural sharing between consecutive versions
// (purely-functional trees) collapses to exactly the nodes unique to dead
// versions.
//
// Deviation from the paper: the paper uses the lock-free version-list
// algorithm of Ben-David et al. [8]; we protect the list manipulation with
// a short critical section (tens of nanoseconds against millisecond-scale
// queries). See DESIGN.md Section 1.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_VERSION_LIST_H
#define ASPEN_STORE_VERSION_LIST_H

#include <atomic>
#include <cassert>
#include <deque>
#include <mutex>
#include <utility>

namespace aspen {

/// Refcounted chain of immutable versions of a value of type \p T.
template <class T> class VersionListT {
  struct VersionNode {
    T Value;
    std::atomic<int64_t> Refs;
    uint64_t Stamp;

    VersionNode(T Value, int64_t InitialRefs, uint64_t Stamp)
        : Value(std::move(Value)), Refs(InitialRefs), Stamp(Stamp) {}
  };

public:
  /// RAII handle to an acquired version; releasing is automatic.
  class Handle {
  public:
    Handle() = default;
    Handle(const Handle &) = delete;
    Handle &operator=(const Handle &) = delete;
    Handle(Handle &&O) noexcept : VL(O.VL), N(O.N) {
      O.VL = nullptr;
      O.N = nullptr;
    }
    Handle &operator=(Handle &&O) noexcept {
      if (this != &O) {
        reset();
        VL = O.VL;
        N = O.N;
        O.VL = nullptr;
        O.N = nullptr;
      }
      return *this;
    }
    ~Handle() { reset(); }

    /// The immutable value this version refers to.
    const T &value() const {
      assert(N && "empty version handle");
      return N->Value;
    }

    /// Monotone timestamp of the version (install sequence number).
    uint64_t stamp() const { return N ? N->Stamp : 0; }

    bool valid() const { return N != nullptr; }

    /// Explicit early release.
    void reset() {
      if (VL && N)
        VL->releaseNode(N);
      VL = nullptr;
      N = nullptr;
    }

  private:
    friend class VersionListT;
    Handle(VersionListT *VL, VersionNode *N) : VL(VL), N(N) {}
    VersionListT *VL = nullptr;
    VersionNode *N = nullptr;
  };

  explicit VersionListT(T Initial) {
    Current = new VersionNode(std::move(Initial), /*InitialRefs=*/1, 0);
  }

  VersionListT(const VersionListT &) = delete;
  VersionListT &operator=(const VersionListT &) = delete;

  ~VersionListT() {
    // All readers must have released their versions by now.
    std::lock_guard<std::mutex> Lock(M);
    int64_t Left = Current->Refs.fetch_sub(1, std::memory_order_acq_rel);
    assert(Left == 1 && "destroying version list with live readers");
    (void)Left;
    delete Current;
  }

  /// Acquire the latest version. Never blocked by the writer for more than
  /// the duration of a pointer swap.
  Handle acquire() {
    std::lock_guard<std::mutex> Lock(M);
    Current->Refs.fetch_add(1, std::memory_order_relaxed);
    return Handle(this, Current);
  }

  /// Install a new value as the current version. Atomic with respect to
  /// acquire(); the previous version survives until its last reader
  /// releases it. Returns the new version's stamp.
  uint64_t set(T Value) {
    VersionNode *Old;
    uint64_t S;
    {
      std::lock_guard<std::mutex> Lock(M);
      S = Stamp.fetch_add(1) + 1;
      auto *N = new VersionNode(std::move(Value), /*InitialRefs=*/1, S);
      Old = Current;
      Current = N;
    }
    releaseNode(Old); // drop the current-slot reference
    return S;
  }

  /// Stamp of the most recently installed version.
  uint64_t currentStamp() const {
    return Stamp.load(std::memory_order_relaxed);
  }

private:
  friend class Handle;

  void releaseNode(VersionNode *N) {
    if (N->Refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last reference: N is no longer current (the current-slot reference
      // would still be outstanding), so nobody can acquire it again.
      delete N;
    }
  }

  mutable std::mutex M;
  VersionNode *Current = nullptr;
  std::atomic<uint64_t> Stamp{0};
};

/// Bounded log of per-install deltas keyed by version stamp - the second
/// reusable piece of the version-maintenance core. A store records, for
/// each installed version, a small summary of what changed relative to
/// its predecessor (the graph stores record the touched-vertex digest);
/// an incremental consumer pinned at stamp F catches up to stamp T by
/// replaying the deltas for (F, T] instead of reprocessing the whole
/// value.
///
/// The log only answers for *contiguous* spans: recording a stamp that
/// does not directly follow the previous recorded stamp (an install whose
/// delta was not captured, e.g. a raw set()) clears the log, so a
/// successful replay() is always a complete, gap-free reconstruction and
/// anything else falls back to the consumer's full rebuild. Bounded to
/// \p MaxEntries recent installs; older consumers rebuild too.
///
/// record() is called by writers (serialized by the store's install
/// protocol); replay() by readers. Both take the internal mutex, so the
/// log is safe against concurrent readers and a concurrent writer.
template <class DeltaT> class DeltaLogT {
  struct Entry {
    uint64_t Stamp;
    DeltaT Delta;
  };

public:
  explicit DeltaLogT(size_t MaxEntries = 64) : MaxEntries(MaxEntries) {}

  /// Record the delta of the install that produced \p Stamp. Clears the
  /// log first when \p Stamp is not the successor of the last recorded
  /// stamp (some install went unrecorded; spans across it must rebuild).
  void record(uint64_t Stamp, DeltaT Delta) {
    std::lock_guard<std::mutex> Lock(M);
    if (!Entries.empty() && Entries.back().Stamp + 1 != Stamp)
      Entries.clear();
    Entries.push_back(Entry{Stamp, std::move(Delta)});
    while (Entries.size() > MaxEntries)
      Entries.pop_front();
  }

  /// Drop every recorded delta (e.g. after an install whose delta was
  /// deliberately not captured); subsequent replays across this point
  /// report non-coverage.
  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Entries.clear();
  }

  /// Invoke \p Fn on the delta of every stamp in (\p From, \p To], oldest
  /// first. Returns false without invoking \p Fn at all when the log does
  /// not cover the whole span (gap, trimmed history, or From > To).
  template <class F> bool replay(uint64_t From, uint64_t To, F &&Fn) const {
    std::lock_guard<std::mutex> Lock(M);
    if (From >= To)
      return From == To;
    if (Entries.empty() || Entries.front().Stamp > From + 1 ||
        Entries.back().Stamp < To)
      return false;
    size_t I = size_t(From + 1 - Entries.front().Stamp);
    for (uint64_t S = From + 1; S <= To; ++S, ++I)
      Fn(Entries[I].Delta);
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Entries.size();
  }

private:
  mutable std::mutex M;
  std::deque<Entry> Entries;
  size_t MaxEntries;
};

} // namespace aspen

#endif // ASPEN_STORE_VERSION_LIST_H
