//===- store/checkpoint.h - LSM-style epoch checkpoints -------------------===//
//
// Durable snapshots of one epoch (DESIGN.md Section 7). The C-tree
// already stores adjacency data as immutable delta-compressed chunk
// payloads, so a checkpoint is close to free in CPU terms: the sealed
// chunks are written to disk *verbatim* — header (Count/Bytes/First/
// Last) plus the encoded byte run — with no re-encoding, and recovery
// rebuilds each vertex's C-tree by adopting the byte runs straight back
// into payloads (sliceChunk) and buildSorted-ing the heads tree. The
// live functional tree plays the LSM memtable; sealed checkpoint files
// play the SSTables; the WAL (store/wal.h) covers the suffix between
// them.
//
// File layout (ckpt-<seq>.aspen):
//
//   [data pages]      the concatenated per-shard serialization streams,
//                     cut into CheckpointPageBytes-sized immutable pages
//   [manifest]        seq, base seq, shard presence + byte table, page
//                     table w/ per-page CRC32C
//   [footer]          manifest length + CRC + magic (fixed size, at EOF)
//
// A reader validates footer magic -> manifest CRC -> every page CRC
// before deserializing anything, so torn checkpoint writes and bit flips
// surface as "this file is invalid" rather than undefined behavior; the
// recovery driver then falls back to the next-newest checkpoint. Writes
// go to a .tmp name and are renamed into place after fsync — a
// checkpoint is either fully present under its final name or not
// present at all.
//
// Incremental checkpoints (DESIGN.md Section 9): the manifest's BaseSeq
// field chains a checkpoint back to an earlier generation. A shard whose
// presence flag is clear has no pages in this file — its stream lives in
// the base (or the base's base, transitively). Because shard roots are
// immutable refcounted trees, the writer decides presence with one
// pointer comparison per shard, and a 1-of-S-shards update checkpoints
// in ~1/S the bytes. resolveCheckpointChain() walks the chain and
// materializes the full per-shard stream set; any missing or invalid
// link invalidates the head, and recovery falls back to an older head
// whose chain still resolves (plus a longer WAL replay).
//
// Edge sets that are not chunk-storage C-trees (UncompressedSet, the
// hybrid classes) serialize through a representation-independent element
// fallback and rebuild via EdgeSet::buildSorted under the store's
// BuildParams.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_CHECKPOINT_H
#define ASPEN_STORE_CHECKPOINT_H

#include "graph/graph.h"
#include "util/crc.h"
#include "util/failpoint.h"

#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <optional>
#include <stdexcept>
#include <string>
#include <sys/stat.h>
#include <type_traits>
#include <unistd.h>
#include <utility>
#include <vector>

namespace aspen {

inline constexpr uint64_t CkptManifestMagic = 0x324D4B43'4E505341ULL; // ASPNCKM2
inline constexpr uint64_t CkptFooterMagic = 0x31464B43'4E505341ULL;   // ASPNCKF1

/// Page granularity of the data section: each page carries its own
/// CRC32C in the manifest, so corruption is localized and detected
/// before any byte is interpreted.
inline constexpr size_t CheckpointPageBytes = 256 * 1024;

/// Thrown by the deserializers on structurally invalid input. The
/// recovery driver treats the file as unusable and falls back.
struct CorruptCheckpoint : std::runtime_error {
  explicit CorruptCheckpoint(const char *What)
      : std::runtime_error(std::string("corrupt checkpoint: ") + What) {}
};

//===----------------------------------------------------------------------===
// Bounds-checked stream primitives.
//===----------------------------------------------------------------------===

class ByteWriter {
public:
  explicit ByteWriter(std::vector<uint8_t> &Out) : Out(Out) {}
  template <class T> void put(const T &V) {
    static_assert(std::is_trivially_copyable<T>::value, "raw put");
    size_t At = Out.size();
    Out.resize(At + sizeof(T));
    std::memcpy(Out.data() + At, &V, sizeof(T));
  }
  void bytes(const void *P, size_t N) {
    size_t At = Out.size();
    Out.resize(At + N);
    std::memcpy(Out.data() + At, P, N);
  }

private:
  std::vector<uint8_t> &Out;
};

class ByteReader {
public:
  ByteReader(const uint8_t *P, size_t N) : P(P), End(P + N) {}
  template <class T> T get() {
    static_assert(std::is_trivially_copyable<T>::value, "raw get");
    if (size_t(End - P) < sizeof(T))
      throw CorruptCheckpoint("stream underflow");
    T V;
    std::memcpy(&V, P, sizeof(T));
    P += sizeof(T);
    return V;
  }
  const uint8_t *bytes(size_t N) {
    if (size_t(End - P) < N)
      throw CorruptCheckpoint("stream underflow");
    const uint8_t *R = P;
    P += N;
    return R;
  }
  bool exhausted() const { return P == End; }

private:
  const uint8_t *P;
  const uint8_t *End;
};

//===----------------------------------------------------------------------===
// Edge-set serialization: chunk-verbatim for C-tree storage, element
// fallback otherwise.
//===----------------------------------------------------------------------===

/// Detects the C-tree storage surface (heads tree + prefix chunk of
/// ChunkPayloads). Matches CTreeSet; the hybrid and uncompressed sets
/// fall back to element serialization.
template <class ES, class = void> struct HasChunkStorage : std::false_type {};
template <class ES>
struct HasChunkStorage<
    ES, std::void_t<decltype(std::declval<const ES &>().prefix()),
                    decltype(std::declval<const ES &>().root()),
                    typename ES::Payload>> : std::true_type {};
template <class ES>
inline constexpr bool HasChunkStorageV = HasChunkStorage<ES>::value;

namespace detail {

inline constexpr uint8_t SetFormatChunks = 1;
inline constexpr uint8_t SetFormatElements = 2;
/// Sanity cap against absurd counts in corrupt-but-CRC-colliding input.
inline constexpr uint64_t CkptMaxCount = uint64_t(1) << 40;

template <class K> void putChunk(ByteWriter &W, const ChunkPayload<K> *C) {
  W.put<uint32_t>(C->Count);
  W.put<uint32_t>(C->Bytes);
  W.put<K>(C->First);
  W.put<K>(C->Last);
  W.bytes(C->data(), C->Bytes);
}

template <class K> ChunkPayload<K> *getChunk(ByteReader &R) {
  uint32_t Count = R.get<uint32_t>();
  uint32_t Bytes = R.get<uint32_t>();
  K First = R.get<K>();
  K Last = R.get<K>();
  if (Count == 0 || First > Last)
    throw CorruptCheckpoint("bad chunk header");
  const uint8_t *Src = R.bytes(Bytes);
  return sliceChunk<K>(First, Last, Count, Src, Bytes);
}

} // namespace detail

/// Append the serialized form of \p S to \p Out: the verbatim sealed
/// chunks of a C-tree set, or the element list otherwise.
template <class EdgeSet>
void serializeEdgeSet(const EdgeSet &S, ByteWriter &W) {
  if constexpr (HasChunkStorageV<EdgeSet>) {
    using K = typename std::decay_t<decltype(S.prefix()->First)>;
    const auto *Pre = S.prefix();
    W.put<uint8_t>(Pre != nullptr);
    if (Pre)
      detail::putChunk<K>(W, Pre);
    // Heads in order; count them first (the tree knows only elements).
    uint32_t Heads = 0;
    EdgeSet::T::forEachSeq(S.root(),
                           [&](const K &, const ChunkRef<K> &) { ++Heads; });
    W.put<uint32_t>(Heads);
    EdgeSet::T::forEachSeq(S.root(), [&](const K &Head,
                                         const ChunkRef<K> &Tail) {
      W.put<K>(Head);
      W.put<uint8_t>(Tail.get() != nullptr);
      if (Tail.get())
        detail::putChunk<K>(W, Tail.get());
    });
  } else {
    uint64_t N = 0;
    S.view().forEachSeq([&](auto) { ++N; });
    W.put<uint64_t>(N);
    S.view().forEachSeq([&](auto V) { W.put(V); });
  }
}

/// Inverse of serializeEdgeSet. \p P is the store's BuildParams lineage
/// (chunk-storage sets adopt payload bytes verbatim and never re-derive
/// heads, so only the fallback consults it).
template <class EdgeSet>
EdgeSet deserializeEdgeSet(ByteReader &R, typename EdgeSet::BuildParams P) {
  if constexpr (HasChunkStorageV<EdgeSet>) {
    using Node = typename EdgeSet::Node;
    using K = typename std::decay_t<decltype(
        std::declval<EdgeSet>().prefix()->First)>;
    (void)P; // structure is stored, not re-derived
    typename EdgeSet::Payload *Pre = nullptr;
    ChunkRef<K> PreGuard;
    if (R.get<uint8_t>()) {
      Pre = detail::getChunk<K>(R);
      PreGuard = ChunkRef<K>(Pre); // exception safety until adoption
    }
    uint32_t Heads = R.get<uint32_t>();
    if (uint64_t(Heads) > detail::CkptMaxCount)
      throw CorruptCheckpoint("absurd head count");
    std::vector<std::pair<K, ChunkRef<K>>> Pairs;
    Pairs.reserve(Heads);
    for (uint32_t I = 0; I < Heads; ++I) {
      K Head = R.get<K>();
      if (I > 0 && Head <= Pairs.back().first)
        throw CorruptCheckpoint("heads not strictly increasing");
      ChunkRef<K> Tail;
      if (R.get<uint8_t>())
        Tail = ChunkRef<K>(detail::getChunk<K>(R));
      if (Tail.get() && Tail.get()->First <= Head)
        throw CorruptCheckpoint("tail not above head");
      Pairs.emplace_back(Head, std::move(Tail));
    }
    Node *Root = EdgeSet::T::buildSorted(Pairs.data(), Pairs.size());
    return EdgeSet(Root, PreGuard.take());
  } else {
    uint64_t N = R.get<uint64_t>();
    if (N > detail::CkptMaxCount)
      throw CorruptCheckpoint("absurd element count");
    using K = VertexId;
    std::vector<K> E(static_cast<size_t>(N));
    for (uint64_t I = 0; I < N; ++I)
      E[size_t(I)] = R.get<K>();
    for (uint64_t I = 1; I < N; ++I)
      if (E[size_t(I)] <= E[size_t(I - 1)])
        throw CorruptCheckpoint("elements not strictly increasing");
    return EdgeSet::buildSorted(E.data(), E.size(), P);
  }
}

//===----------------------------------------------------------------------===
// Snapshot (one shard) serialization: the in-order vertex entries.
//===----------------------------------------------------------------------===

template <class EdgeSet>
void serializeSnapshot(const GraphSnapshotT<EdgeSet> &G,
                       std::vector<uint8_t> &Out) {
  using VT = typename GraphSnapshotT<EdgeSet>::VT;
  ByteWriter W(Out);
  W.put<uint8_t>(HasChunkStorageV<EdgeSet> ? detail::SetFormatChunks
                                           : detail::SetFormatElements);
  W.put<uint64_t>(uint64_t(G.numVertices()));
  VT::forEachSeq(G.root(), [&](const VertexId &V, const EdgeSet &S) {
    W.put<VertexId>(V);
    serializeEdgeSet(S, W);
  });
}

template <class EdgeSet>
GraphSnapshotT<EdgeSet>
deserializeSnapshot(ByteReader &R, typename EdgeSet::BuildParams P) {
  using VT = typename GraphSnapshotT<EdgeSet>::VT;
  uint8_t Format = R.get<uint8_t>();
  if (Format != (HasChunkStorageV<EdgeSet> ? detail::SetFormatChunks
                                           : detail::SetFormatElements))
    throw CorruptCheckpoint("edge-set format mismatch");
  uint64_t N = R.get<uint64_t>();
  if (N > detail::CkptMaxCount)
    throw CorruptCheckpoint("absurd vertex count");
  std::vector<std::pair<VertexId, EdgeSet>> Pairs;
  Pairs.reserve(size_t(N));
  for (uint64_t I = 0; I < N; ++I) {
    VertexId V = R.get<VertexId>();
    if (I > 0 && V <= Pairs.back().first)
      throw CorruptCheckpoint("vertices not strictly increasing");
    Pairs.emplace_back(V, deserializeEdgeSet<EdgeSet>(R, P));
  }
  typename VT::Node *Root = VT::buildSorted(Pairs.data(), Pairs.size());
  return GraphSnapshotT<EdgeSet>(Root, P);
}

//===----------------------------------------------------------------------===
// Checkpoint files: pages + checksummed manifest + footer, written to a
// temp name and renamed into place.
//===----------------------------------------------------------------------===

namespace detail {

struct CkptPageEntry {
  uint64_t Offset; ///< into the file (data section starts at 0)
  uint64_t Bytes;
  uint32_t Crc;
  uint32_t Pad = 0;
};

struct CkptFooter {
  uint64_t ManifestBytes;
  uint32_t ManifestCrc;
  uint32_t Pad = 0;
  uint64_t Magic;
};
static_assert(sizeof(CkptFooter) == 24, "packed footer");

inline std::string ckptFileName(uint64_t Seq) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "ckpt-%016llx.aspen",
                static_cast<unsigned long long>(Seq));
  return Buf;
}

/// Seq encoded in a checkpoint file name, or nullopt.
inline std::optional<uint64_t> ckptSeqOfName(const std::string &Name) {
  unsigned long long Seq;
  if (Name.size() == 27 &&
      std::sscanf(Name.c_str(), "ckpt-%16llx.aspen", &Seq) == 1)
    return uint64_t(Seq);
  return std::nullopt;
}

} // namespace detail

/// A validated, loaded checkpoint: the per-shard serialization streams
/// ready for deserializeSnapshot. For an incremental file (BaseSeq != 0)
/// straight off readCheckpointFile, only shards with ShardPresent[S]
/// carry a stream; resolveCheckpointChain() fills the rest from the base
/// chain and returns a fully-present result.
struct LoadedCheckpoint {
  uint64_t Seq = 0;
  uint64_t BaseSeq = 0; ///< chain link (0 = full checkpoint)
  uint32_t LogShards = 0;
  std::vector<uint8_t> ShardPresent; ///< 1 = stream stored in this file
  std::vector<std::vector<uint8_t>> ShardStreams;
};

/// Write `Dir/ckpt-<seq>.aspen` from the given shard streams. All I/O is
/// failpoint-instrumented ("ckpt.page.write", "ckpt.manifest.write",
/// "ckpt.fsync", "ckpt.rename.before/after", "ckpt.dirsync"). Returns
/// the final path. Throws on I/O failure (the temp file is left behind;
/// recovery ignores .tmp files and open() cleanup removes them).
///
/// An incremental checkpoint passes the covering generation as \p
/// BaseSeq and a per-shard \p Present mask; only shards with
/// (*Present)[S] != 0 have their stream written (the others' entries in
/// \p ShardStreams are ignored and should be empty).
inline std::string
writeCheckpointFile(const std::string &Dir, uint64_t Seq, uint32_t LogShards,
                    const std::vector<std::vector<uint8_t>> &ShardStreams,
                    bool Fsync, uint64_t BaseSeq = 0,
                    const std::vector<uint8_t> *Present = nullptr) {
  using namespace detail;
  if (BaseSeq != 0 &&
      (BaseSeq >= Seq || !Present || Present->size() != ShardStreams.size()))
    throw std::logic_error("bad incremental checkpoint arguments");
  auto shardPresent = [&](size_t S) {
    return BaseSeq == 0 || (*Present)[S] != 0;
  };
  std::string Final = Dir + "/" + ckptFileName(Seq);
  std::string Tmp = Final + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    throw std::runtime_error("cannot create checkpoint temp " + Tmp);
  struct FdCloser {
    int Fd;
    ~FdCloser() { ::close(Fd); }
  } Closer{Fd};

  // Data section: the concatenated present-shard streams, cut into
  // pages. Absent (base-covered) shards contribute nothing.
  std::vector<CkptPageEntry> Pages;
  uint64_t Off = 0;
  for (size_t S = 0; S < ShardStreams.size(); ++S) {
    if (!shardPresent(S))
      continue;
    const auto &Stream = ShardStreams[S];
    size_t At = 0;
    while (At < Stream.size()) {
      size_t N = std::min(CheckpointPageBytes, Stream.size() - At);
      CkptPageEntry E;
      E.Offset = Off;
      E.Bytes = N;
      E.Crc = crc32c(Stream.data() + At, N);
      fpWrite(Fd, Stream.data() + At, N, "ckpt.page.write");
      Pages.push_back(E);
      At += N;
      Off += N;
    }
    if (Stream.empty()) {
      // Keep one (empty) page per empty present shard so the shard
      // table and page table stay trivially consistent.
      Pages.push_back(CkptPageEntry{Off, 0, crc32c(nullptr, 0)});
    }
  }

  // Manifest.
  std::vector<uint8_t> Manifest;
  {
    ByteWriter W(Manifest);
    W.put<uint64_t>(CkptManifestMagic);
    W.put<uint64_t>(Seq);
    W.put<uint64_t>(BaseSeq);
    W.put<uint32_t>(uint32_t(ShardStreams.size()));
    W.put<uint32_t>(LogShards);
    W.put<uint32_t>(uint32_t(Pages.size()));
    for (const CkptPageEntry &E : Pages)
      W.put(E);
    for (size_t S = 0; S < ShardStreams.size(); ++S)
      W.put<uint8_t>(shardPresent(S) ? 1 : 0);
    for (size_t S = 0; S < ShardStreams.size(); ++S)
      W.put<uint64_t>(shardPresent(S) ? ShardStreams[S].size() : 0);
  }
  fpWrite(Fd, Manifest.data(), Manifest.size(), "ckpt.manifest.write");
  CkptFooter F;
  F.ManifestBytes = Manifest.size();
  F.ManifestCrc = crc32c(Manifest.data(), Manifest.size());
  F.Pad = 0;
  F.Magic = CkptFooterMagic;
  fpWrite(Fd, &F, sizeof(F), "ckpt.manifest.write");
  if (Fsync && !fpFsync(Fd, "ckpt.fsync"))
    throw std::runtime_error("checkpoint fsync failed");

  ASPEN_FAILPOINT("ckpt.rename.before");
  if (::rename(Tmp.c_str(), Final.c_str()) != 0)
    throw std::runtime_error("checkpoint rename failed");
  ASPEN_FAILPOINT("ckpt.rename.after");
  if (Fsync) {
    int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      (void)fpFsync(DirFd, "ckpt.dirsync");
      ::close(DirFd);
    }
  }
  return Final;
}

/// Read and fully validate a checkpoint file: footer magic, manifest
/// CRC, shape, and every page CRC. Returns nullopt on any mismatch (a
/// torn write or corruption — the caller falls back to older files).
inline std::optional<LoadedCheckpoint>
readCheckpointFile(const std::string &Path) {
  using namespace detail;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return std::nullopt;
  std::vector<uint8_t> Buf;
  {
    struct stat St;
    if (::fstat(Fd, &St) != 0 || St.st_size < off_t(sizeof(CkptFooter))) {
      ::close(Fd);
      return std::nullopt;
    }
    Buf.resize(size_t(St.st_size));
    size_t Done = 0;
    while (Done < Buf.size()) {
      ssize_t N = ::read(Fd, Buf.data() + Done, Buf.size() - Done);
      if (N <= 0)
        break;
      Done += size_t(N);
    }
    ::close(Fd);
    if (Done != Buf.size())
      return std::nullopt;
  }

  CkptFooter F;
  std::memcpy(&F, Buf.data() + Buf.size() - sizeof(F), sizeof(F));
  if (F.Magic != CkptFooterMagic ||
      F.ManifestBytes > Buf.size() - sizeof(F))
    return std::nullopt;
  size_t ManifestOff = Buf.size() - sizeof(F) - size_t(F.ManifestBytes);
  if (crc32c(Buf.data() + ManifestOff, size_t(F.ManifestBytes)) !=
      F.ManifestCrc)
    return std::nullopt;

  LoadedCheckpoint Out;
  std::vector<CkptPageEntry> Pages;
  std::vector<uint64_t> ShardBytes;
  try {
    ByteReader R(Buf.data() + ManifestOff, size_t(F.ManifestBytes));
    if (R.get<uint64_t>() != CkptManifestMagic)
      return std::nullopt;
    Out.Seq = R.get<uint64_t>();
    Out.BaseSeq = R.get<uint64_t>();
    uint32_t NumShards = R.get<uint32_t>();
    Out.LogShards = R.get<uint32_t>();
    uint32_t NumPages = R.get<uint32_t>();
    if (NumShards > (1u << 20) || NumPages > (1u << 28))
      return std::nullopt;
    if (Out.BaseSeq != 0 && Out.BaseSeq >= Out.Seq)
      return std::nullopt; // chain must point strictly backwards
    Pages.resize(NumPages);
    for (uint32_t I = 0; I < NumPages; ++I)
      Pages[I] = R.get<CkptPageEntry>();
    Out.ShardPresent.resize(NumShards);
    for (uint32_t I = 0; I < NumShards; ++I)
      Out.ShardPresent[I] = R.get<uint8_t>();
    ShardBytes.resize(NumShards);
    for (uint32_t I = 0; I < NumShards; ++I)
      ShardBytes[I] = R.get<uint64_t>();
    if (!R.exhausted())
      return std::nullopt;
    for (uint32_t I = 0; I < NumShards; ++I) {
      if (!Out.ShardPresent[I] && ShardBytes[I] != 0)
        return std::nullopt; // absent shards store no bytes
      if (Out.BaseSeq == 0 && !Out.ShardPresent[I])
        return std::nullopt; // a full checkpoint covers every shard
    }
  } catch (const CorruptCheckpoint &) {
    return std::nullopt;
  }

  // Page table must tile the data section exactly, and every page CRC
  // must hold.
  uint64_t Off = 0;
  for (const CkptPageEntry &E : Pages) {
    if (E.Offset != Off || E.Offset + E.Bytes > ManifestOff)
      return std::nullopt;
    if (crc32c(Buf.data() + E.Offset, size_t(E.Bytes)) != E.Crc)
      return std::nullopt;
    Off += E.Bytes;
  }
  uint64_t TotalShardBytes = 0;
  for (uint64_t B : ShardBytes)
    TotalShardBytes += B;
  if (Off != TotalShardBytes || Off > ManifestOff)
    return std::nullopt;

  // Split the (validated) data section back into per-shard streams
  // (absent shards keep an empty stream; the presence flags say so).
  Out.ShardStreams.resize(ShardBytes.size());
  uint64_t At = 0;
  for (size_t S = 0; S < ShardBytes.size(); ++S) {
    Out.ShardStreams[S].assign(Buf.data() + At,
                               Buf.data() + At + ShardBytes[S]);
    At += ShardBytes[S];
  }
  return Out;
}

/// Cheap checkpoint identity probe: validates the footer and manifest
/// CRC (not the data pages) and returns the chain fields. Used for
/// directory inventory, retention bookkeeping, and the replication
/// listing — anywhere the page payloads are not needed.
struct CheckpointMeta {
  uint64_t Seq = 0;
  uint64_t BaseSeq = 0;
  uint32_t NumShards = 0;
  uint32_t LogShards = 0;
};

inline std::optional<CheckpointMeta>
peekCheckpointMeta(const std::string &Path) {
  using namespace detail;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return std::nullopt;
  struct FdCloser {
    int Fd;
    ~FdCloser() { ::close(Fd); }
  } Closer{Fd};
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < off_t(sizeof(CkptFooter)))
    return std::nullopt;
  CkptFooter F;
  if (::pread(Fd, &F, sizeof(F), St.st_size - off_t(sizeof(F))) !=
      ssize_t(sizeof(F)))
    return std::nullopt;
  if (F.Magic != CkptFooterMagic ||
      F.ManifestBytes > uint64_t(St.st_size) - sizeof(F))
    return std::nullopt;
  std::vector<uint8_t> Manifest(size_t(F.ManifestBytes));
  off_t MOff = St.st_size - off_t(sizeof(F)) - off_t(F.ManifestBytes);
  if (::pread(Fd, Manifest.data(), Manifest.size(), MOff) !=
      ssize_t(Manifest.size()))
    return std::nullopt;
  if (crc32c(Manifest.data(), Manifest.size()) != F.ManifestCrc)
    return std::nullopt;
  try {
    ByteReader R(Manifest.data(), Manifest.size());
    if (R.get<uint64_t>() != CkptManifestMagic)
      return std::nullopt;
    CheckpointMeta M;
    M.Seq = R.get<uint64_t>();
    M.BaseSeq = R.get<uint64_t>();
    M.NumShards = R.get<uint32_t>();
    M.LogShards = R.get<uint32_t>();
    return M;
  } catch (const CorruptCheckpoint &) {
    return std::nullopt;
  }
}

/// Load ckpt-<HeadSeq> and materialize its full shard-stream set by
/// walking the BaseSeq chain, newest link first. Every link must exist
/// in \p Dir and validate end-to-end; nullopt on any missing/invalid
/// link or inconsistent chain geometry — the caller falls back to an
/// older head (whose WAL suffix the trim barrier kept replayable).
inline std::optional<LoadedCheckpoint>
resolveCheckpointChain(const std::string &Dir, uint64_t HeadSeq) {
  auto Head = readCheckpointFile(Dir + "/" + detail::ckptFileName(HeadSeq));
  if (!Head || Head->Seq != HeadSeq)
    return std::nullopt;
  LoadedCheckpoint Out = std::move(*Head);
  uint64_t Base = Out.BaseSeq;
  size_t Missing = 0;
  for (uint8_t P : Out.ShardPresent)
    Missing += !P;
  while (Missing > 0) {
    if (Base == 0)
      return std::nullopt; // chain ended with shards still uncovered
    auto Link = readCheckpointFile(Dir + "/" + detail::ckptFileName(Base));
    if (!Link || Link->Seq != Base || Link->LogShards != Out.LogShards ||
        Link->ShardStreams.size() != Out.ShardStreams.size())
      return std::nullopt;
    for (size_t S = 0; S < Out.ShardStreams.size(); ++S) {
      if (Out.ShardPresent[S] || !Link->ShardPresent[S])
        continue;
      Out.ShardStreams[S] = std::move(Link->ShardStreams[S]);
      Out.ShardPresent[S] = 1;
      --Missing;
    }
    Base = Link->BaseSeq; // readCheckpointFile enforces Base < Seq,
                          // so the walk strictly descends (no cycles)
  }
  return Out;
}

} // namespace aspen

#endif // ASPEN_STORE_CHECKPOINT_H
