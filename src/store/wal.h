//===- store/wal.h - Checksummed group-commit write-ahead log -------------===//
//
// The redo log of the durability subsystem (DESIGN.md Section 7): every
// acknowledged update batch is appended as one checksummed record before
// the caller's insert/delete returns. Records carry the store's batch
// sequence number, so recovery (store/durability.h) can replay exactly
// the suffix a checkpoint does not cover, in install order, through the
// same insertEdgesSpan/deleteEdgesSpan paths that produced the original
// epochs.
//
// On-disk layout of one segment file:
//
//   [SegmentHeader: magic u64, first-seq hint u64]
//   [Record]* where Record =
//     u32 Crc        crc32c over the remaining header fields + payload
//     u32 PayloadBytes
//     u64 Seq        monotonic batch sequence number (store-assigned)
//     u8  Kind       1 = insert batch, 2 = delete batch
//     u8  Pad[7]
//     u8  Payload[PayloadBytes]   (EdgePair array; Bytes % 8 == 0)
//
// Group commit: writers enqueue serialized records under the log mutex
// (cheap memcpy, called under the store's install ordering so the file
// order equals the install order) and then sync(Seq). The first syncing
// thread becomes the flush leader: it drains the whole pending buffer
// with one write(2) + one fsync(2) and wakes every waiter whose record
// the group covered. Concurrent appenders therefore share fsyncs instead
// of paying one each — the classic group-commit latency/throughput trade.
//
// Torn tails: a crash can leave a partially written record at the end of
// a segment. open() scans the segment and truncates at the first record
// that is short, fails its CRC, or breaks sequence monotonicity —
// everything before that point was fully acknowledged-durable or is a
// complete unacknowledged record (safe to keep: replay is idempotent at
// the batch level because recovery rebuilds state from the checkpoint
// forward). All I/O goes through the util/failpoint.h wrappers so the
// crash-recovery suite can tear writes and fail fsyncs at will.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_STORE_WAL_H
#define ASPEN_STORE_WAL_H

#include "util/crc.h"
#include "util/failpoint.h"
#include "util/types.h"

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <stdexcept>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

namespace aspen {

inline constexpr uint64_t WalMagic = 0x314C4157'4E505341ULL; // "ASPNWAL1"

enum class WalKind : uint8_t { InsertBatch = 1, DeleteBatch = 2 };

/// One decoded record handed to scan callbacks. \p Edges points into the
/// scan buffer; copy before the callback returns if you keep it.
struct WalRecordView {
  WalKind Kind;
  uint64_t Seq;
  const EdgePair *Edges;
  size_t NumEdges;
};

/// Thrown when the log was poisoned by an earlier I/O failure (a failed
/// group commit leaves the durable prefix unknown; the store must not
/// acknowledge anything after it).
struct WalDeadError : std::runtime_error {
  WalDeadError() : std::runtime_error("WAL poisoned by earlier I/O failure") {}
};

namespace detail {

struct WalSegmentHeader {
  uint64_t Magic;
  uint64_t FirstSeqHint;
};

struct WalRecordHeader {
  uint32_t Crc;
  uint32_t PayloadBytes;
  uint64_t Seq;
  uint8_t Kind;
  uint8_t Pad[7];
};
static_assert(sizeof(WalSegmentHeader) == 16, "packed segment header");
static_assert(sizeof(WalRecordHeader) == 24, "packed record header");
static_assert(sizeof(EdgePair) == 8 && alignof(EdgePair) == 4,
              "WAL payloads are raw EdgePair arrays");

/// CRC of a record: the header fields after Crc, then the payload.
inline uint32_t walRecordCrc(const WalRecordHeader &H, const void *Payload) {
  uint32_t C = crc32c(reinterpret_cast<const uint8_t *>(&H) + 4,
                      sizeof(WalRecordHeader) - 4);
  return crc32c(Payload, H.PayloadBytes, C);
}

} // namespace detail

/// Summary of one segment file produced by walScanSegment.
struct WalScanResult {
  bool HeaderValid = false; ///< segment header present and well-formed
  uint64_t MinSeq = 0;      ///< 0 when the segment holds no valid record
  uint64_t MaxSeq = 0;
  size_t NumRecords = 0;
  size_t ValidBytes = 0; ///< prefix length covered by valid records
  bool Torn = false;     ///< trailing bytes past the valid prefix
};

/// Scan \p Path, invoking \p Fn(WalRecordView) for every valid record in
/// file order, stopping at the first short/corrupt/non-monotonic record.
/// With \p TruncateTorn the file is truncated to the valid prefix (the
/// open-for-append protocol); recovery scans read-only. A missing or
/// headerless file yields an empty result.
template <class F>
WalScanResult walScanSegment(const std::string &Path, bool TruncateTorn,
                             F &&Fn) {
  using namespace detail;
  WalScanResult R;
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return R;
  std::vector<uint8_t> Buf;
  {
    struct stat St;
    if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
      ::close(Fd);
      return R;
    }
    Buf.resize(size_t(St.st_size));
    size_t Done = 0;
    while (Done < Buf.size()) {
      ssize_t N = ::read(Fd, Buf.data() + Done, Buf.size() - Done);
      if (N <= 0)
        break;
      Done += size_t(N);
    }
    Buf.resize(Done);
  }
  ::close(Fd);

  WalSegmentHeader SH;
  if (Buf.size() < sizeof(SH)) {
    R.Torn = !Buf.empty();
    if (TruncateTorn && R.Torn)
      (void)::truncate(Path.c_str(), 0);
    return R;
  }
  std::memcpy(&SH, Buf.data(), sizeof(SH));
  if (SH.Magic != WalMagic) {
    R.Torn = true;
    if (TruncateTorn)
      (void)::truncate(Path.c_str(), 0);
    return R;
  }
  R.HeaderValid = true;
  size_t Off = sizeof(SH);
  uint64_t PrevSeq = 0;
  while (Off + sizeof(WalRecordHeader) <= Buf.size()) {
    WalRecordHeader H;
    std::memcpy(&H, Buf.data() + Off, sizeof(H));
    size_t PayloadOff = Off + sizeof(H);
    if (H.PayloadBytes % sizeof(EdgePair) != 0 ||
        PayloadOff + H.PayloadBytes > Buf.size())
      break; // short / absurd payload: torn tail
    if (walRecordCrc(H, Buf.data() + PayloadOff) != H.Crc)
      break; // checksum mismatch: torn or bit-flipped
    if (H.Kind != uint8_t(WalKind::InsertBatch) &&
        H.Kind != uint8_t(WalKind::DeleteBatch))
      break;
    if (R.NumRecords > 0 && H.Seq <= PrevSeq)
      break; // sequence must be strictly monotone within a segment
    WalRecordView V;
    V.Kind = WalKind(H.Kind);
    V.Seq = H.Seq;
    V.Edges = reinterpret_cast<const EdgePair *>(Buf.data() + PayloadOff);
    V.NumEdges = H.PayloadBytes / sizeof(EdgePair);
    Fn(V);
    if (R.NumRecords == 0)
      R.MinSeq = H.Seq;
    R.MaxSeq = H.Seq;
    PrevSeq = H.Seq;
    ++R.NumRecords;
    Off = PayloadOff + H.PayloadBytes;
  }
  R.ValidBytes = Off;
  R.Torn = Off < Buf.size();
  if (TruncateTorn && R.Torn)
    (void)::truncate(Path.c_str(), off_t(Off));
  return R;
}

/// Scan summary without consuming the records.
inline WalScanResult walScanSegment(const std::string &Path,
                                    bool TruncateTorn = false) {
  return walScanSegment(Path, TruncateTorn, [](const WalRecordView &) {});
}

/// Read-only integrity verdict on a segment, for the scrubber
/// (store/replication.h): a sealed segment is clean iff its header
/// validates and every byte is covered by valid records (sealing flushes
/// the whole group and open() truncates torn tails, so trailing garbage
/// on a sealed file can only be bit rot). The active segment may carry
/// an in-flight tail; it is clean as long as the valid record prefix
/// reaches \p MinDurableSeq (the durable watermark sampled before the
/// scan — anything less means a checksummed, acknowledged record no
/// longer verifies).
inline bool walSegmentClean(const std::string &Path, bool Sealed,
                            uint64_t MinDurableSeq = 0) {
  WalScanResult R = walScanSegment(Path, /*TruncateTorn=*/false);
  if (!R.HeaderValid)
    return false;
  if (Sealed)
    return !R.Torn;
  return R.MaxSeq >= MinDurableSeq;
}

/// Commit statistics (bench_wal and the recovery tests read these).
struct WalStats {
  uint64_t Appends = 0;      ///< records enqueued
  uint64_t GroupCommits = 0; ///< write+fsync flushes
  uint64_t BytesWritten = 0; ///< record bytes (excl. segment header)
};

/// One open, append-only WAL segment with group commit. A store owns one
/// (behind DurabilityEngine) and rotates to a fresh segment after each
/// checkpoint. enqueue() must be called in increasing-Seq order — the
/// stores call it under their install ordering (single writer, or the
/// sharded commit lock) — while sync() is free-threaded.
class WalLog {
public:
  /// Open \p Path for append. An existing segment is scanned and its
  /// torn tail truncated; a missing/empty one gets a fresh header.
  WalLog(std::string Path, bool FsyncOnCommit, uint64_t FirstSeqHint = 1)
      : Path(std::move(Path)), FsyncOnCommit(FsyncOnCommit) {
    WalScanResult R = walScanSegment(this->Path, /*TruncateTorn=*/true);
    Fd = ::open(this->Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (Fd < 0)
      throw std::runtime_error("cannot open WAL segment " + this->Path);
    if (!R.HeaderValid) {
      detail::WalSegmentHeader SH{WalMagic, FirstSeqHint};
      fpWrite(Fd, &SH, sizeof(SH), "wal.header.write");
      if (FsyncOnCommit && !fpFsync(Fd, "wal.fsync"))
        throw std::runtime_error("WAL header fsync failed");
    }
    DurableSeqV = R.MaxSeq; // everything surviving the scan is on disk
    MaxSeqV = R.MaxSeq;
    MinSeqV = R.MinSeq;
    NumRecordsV = R.NumRecords;
  }

  WalLog(const WalLog &) = delete;
  WalLog &operator=(const WalLog &) = delete;
  ~WalLog() {
    if (Fd >= 0)
      ::close(Fd);
  }

  const std::string &path() const { return Path; }

  /// Serialize one batch record into the pending group. \p Seq must
  /// exceed every previously enqueued sequence number (store install
  /// order). Does not block on I/O; pair with sync(Seq).
  void enqueue(WalKind Kind, uint64_t Seq, const EdgePair *Edges, size_t N) {
    ASPEN_FAILPOINT("wal.enqueue.before");
    detail::WalRecordHeader H;
    std::memset(&H, 0, sizeof(H));
    H.PayloadBytes = uint32_t(N * sizeof(EdgePair));
    H.Seq = Seq;
    H.Kind = uint8_t(Kind);
    H.Crc = detail::walRecordCrc(H, Edges);
    std::lock_guard<std::mutex> Lock(M);
    if (Dead)
      throw WalDeadError();
    size_t At = Pending.size();
    Pending.resize(At + sizeof(H) + H.PayloadBytes);
    std::memcpy(Pending.data() + At, &H, sizeof(H));
    if (H.PayloadBytes)
      std::memcpy(Pending.data() + At + sizeof(H), Edges, H.PayloadBytes);
    MaxSeqV = Seq;
    if (NumRecordsV == 0 && MinSeqV == 0)
      MinSeqV = Seq;
    ++NumRecordsV;
    ++Stats.Appends;
  }

  /// Block until every record with sequence <= \p Seq is durable. The
  /// first arriving thread flushes the whole pending group (one write +
  /// one fsync); the rest wait on the group's completion.
  void sync(uint64_t Seq) {
    ASPEN_FAILPOINT("wal.sync.before");
    std::unique_lock<std::mutex> Lock(M);
    for (;;) {
      if (Dead)
        throw WalDeadError();
      if (DurableSeqV >= Seq)
        return;
      if (!Flushing) {
        Flushing = true;
        std::vector<uint8_t> Buf;
        Buf.swap(Pending);
        uint64_t GroupMax = MaxSeqV;
        Lock.unlock();
        std::exception_ptr Err;
        bool FsyncOk = true;
        try {
          if (!Buf.empty())
            fpWrite(Fd, Buf.data(), Buf.size(), "wal.record.write");
          if (FsyncOnCommit)
            FsyncOk = fpFsync(Fd, "wal.fsync");
        } catch (...) {
          Err = std::current_exception();
        }
        Lock.lock();
        Flushing = false;
        if (Err || !FsyncOk) {
          // The durable prefix is now unknown: poison the log so no
          // later batch can be acknowledged past the failure.
          Dead = true;
          CV.notify_all();
          if (Err)
            std::rethrow_exception(Err);
          throw WalDeadError();
        }
        Stats.BytesWritten += Buf.size();
        ++Stats.GroupCommits;
        DurableSeqV = GroupMax;
        CV.notify_all();
        continue; // re-check: our Seq is covered now
      }
      CV.wait(Lock);
    }
  }

  /// Highest sequence number known durable.
  uint64_t durableSeq() const {
    std::lock_guard<std::mutex> Lock(M);
    return DurableSeqV;
  }

  /// Range of sequence numbers this segment holds ([0,0] when empty).
  std::pair<uint64_t, uint64_t> seqRange() const {
    std::lock_guard<std::mutex> Lock(M);
    return {MinSeqV, MaxSeqV};
  }

  bool empty() const {
    std::lock_guard<std::mutex> Lock(M);
    return NumRecordsV == 0;
  }

  WalStats stats() const {
    std::lock_guard<std::mutex> Lock(M);
    return Stats;
  }

private:
  std::string Path;
  bool FsyncOnCommit;
  int Fd = -1;

  mutable std::mutex M;
  std::condition_variable CV;
  std::vector<uint8_t> Pending; ///< serialized records awaiting flush
  bool Flushing = false;
  bool Dead = false;
  uint64_t DurableSeqV = 0;
  uint64_t MinSeqV = 0;
  uint64_t MaxSeqV = 0;
  size_t NumRecordsV = 0;
  WalStats Stats;
};

} // namespace aspen

#endif // ASPEN_STORE_WAL_H
