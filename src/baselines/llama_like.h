//===- baselines/llama_like.h - LLAMA-style multiversioned CSR ------------===//
//
// A scaled-down reproduction of the LLAMA design the paper compares
// against (Section 7.6): batches create snapshots; each snapshot carries
// an O(n) vertex indirection table and an O(k) edge fragment pool; a
// vertex's adjacency list is the chain of its fragments across snapshots.
// Iterating neighbors therefore follows fragment links through multiple
// snapshots - the locality/depth cost the paper attributes to LLAMA.
//
// Deletions are handled with per-snapshot tombstone fragments that reads
// filter out (a simplification of LLAMA's deletion vectors; documented in
// DESIGN.md).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_BASELINES_LLAMA_LIKE_H
#define ASPEN_BASELINES_LLAMA_LIKE_H

#include "parallel/primitives.h"
#include "util/types.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace aspen {

/// Multiversioned CSR with chained per-snapshot fragments.
class LlamaGraph {
  struct Fragment {
    uint64_t Off;       ///< offset into the owning snapshot's edge pool
    uint32_t Len;       ///< number of targets in this fragment
    uint32_t SnapId;    ///< owning snapshot
    int32_t Prev;       ///< previous fragment index or -1
    uint64_t TotalLen;  ///< cumulative degree across the chain
    uint64_t TotalDel;  ///< cumulative tombstones across the chain
    uint32_t DelLen;    ///< tombstones stored right after the targets
  };

  /// Per-vertex record in a snapshot's vertex table. LLAMA's vertex
  /// records carry the adjacency-list locator plus a cached degree
  /// (16 bytes per vertex per snapshot).
  struct VertexRec {
    int32_t Frag = -1;  ///< newest fragment index or -1
    uint32_t Deg = 0;   ///< cached live degree
    int64_t AdjStart = 0;
  };

  struct Snapshot {
    std::vector<VertexRec> VertexTable; ///< O(n) per snapshot, as in LLAMA
    std::vector<int64_t> Edges; ///< fragment pool; LLAMA's 8-byte entries
  };

public:
  explicit LlamaGraph(VertexId N) : N(N) {
    // Snapshot 0: empty graph.
    Snapshot S;
    S.VertexTable.assign(N, VertexRec{});
    Snapshots.push_back(std::move(S));
  }

  VertexId numVertices() const { return N; }

  uint64_t numEdges() const {
    const Snapshot &S = Snapshots.back();
    return reduceSum(size_t(N), [&](size_t V) {
      return uint64_t(S.VertexTable[V].Deg);
    });
  }

  uint64_t degree(VertexId V) const {
    return Snapshots.back().VertexTable[V].Deg;
  }

  size_t numSnapshots() const { return Snapshots.size(); }

  /// Ingest a batch of insertions (and optionally deletions) as one new
  /// snapshot.
  void ingestBatch(std::vector<EdgePair> Insertions,
                   std::vector<EdgePair> Deletions = {}) {
    parallelSort(Insertions);
    Insertions.erase(std::unique(Insertions.begin(), Insertions.end()),
                     Insertions.end());
    parallelSort(Deletions);
    Deletions.erase(std::unique(Deletions.begin(), Deletions.end()),
                    Deletions.end());

    Snapshot Next;
    Next.VertexTable = Snapshots.back().VertexTable; // O(n) copy, as LLAMA
    uint32_t SnapId = uint32_t(Snapshots.size());

    size_t II = 0, DI = 0;
    while (II < Insertions.size() || DI < Deletions.size()) {
      VertexId Src;
      if (II < Insertions.size() &&
          (DI >= Deletions.size() ||
           Insertions[II].first <= Deletions[DI].first))
        Src = Insertions[II].first;
      else
        Src = Deletions[DI].first;

      uint64_t Off = Next.Edges.size();
      uint32_t Len = 0, DelLen = 0;
      while (II < Insertions.size() && Insertions[II].first == Src) {
        Next.Edges.push_back(int64_t(Insertions[II].second));
        ++Len;
        ++II;
      }
      while (DI < Deletions.size() && Deletions[DI].first == Src) {
        Next.Edges.push_back(int64_t(Deletions[DI].second));
        ++DelLen;
        ++DI;
      }
      int32_t Prev = Next.VertexTable[Src].Frag;
      Fragment F{Off,  Len,    SnapId,
                 Prev, 0,      0,
                 DelLen};
      F.TotalLen = Len + (Prev >= 0 ? Fragments[Prev].TotalLen : 0);
      F.TotalDel = DelLen + (Prev >= 0 ? Fragments[Prev].TotalDel : 0);
      VertexRec &R = Next.VertexTable[Src];
      R.Frag = int32_t(Fragments.size());
      R.Deg = uint32_t(F.TotalLen - F.TotalDel);
      R.AdjStart = int64_t(Off);
      Fragments.push_back(F);
    }
    Snapshots.push_back(std::move(Next));
  }

  //===--------------------------------------------------------------------===
  // Graph-view interface over the latest snapshot. Neighbor iteration
  // walks the fragment chain (newest to oldest), filtering tombstones.
  //===--------------------------------------------------------------------===

  template <class F> bool iterNeighborsCond(VertexId V, const F &Fn) const {
    // Walk newest to oldest; a tombstone masks edges only in fragments
    // older than itself, so re-inserted edges survive.
    std::vector<VertexId> Tombs;
    for (int32_t FI = Snapshots.back().VertexTable[V].Frag; FI >= 0;
         FI = Fragments[FI].Prev) {
      const Fragment &Frag = Fragments[FI];
      const int64_t *Base =
          Snapshots[Frag.SnapId].Edges.data() + Frag.Off;
      for (uint32_t I = 0; I < Frag.Len; ++I) {
        VertexId U = VertexId(Base[I]);
        if (!Tombs.empty() &&
            std::find(Tombs.begin(), Tombs.end(), U) != Tombs.end())
          continue;
        if (!Fn(U))
          return false;
      }
      if (Frag.DelLen) {
        const int64_t *DelBase = Base + Frag.Len;
        for (uint32_t I = 0; I < Frag.DelLen; ++I)
          Tombs.push_back(VertexId(DelBase[I]));
      }
    }
    return true;
  }

  template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
    iterNeighborsCond(V, [&](VertexId U) {
      Fn(U);
      return true;
    });
  }

  template <class F>
  void mapNeighborsIndexed(VertexId V, const F &Fn) const {
    size_t I = 0;
    iterNeighborsCond(V, [&](VertexId U) {
      Fn(I++, U);
      return true;
    });
  }

  /// Footprint: vertex tables of every live snapshot + fragment pools +
  /// fragment metadata (the per-snapshot O(n) tables are why LLAMA's
  /// memory grows with snapshot count, Table 9).
  size_t memoryBytes() const {
    size_t Total = Fragments.size() * sizeof(Fragment);
    for (const Snapshot &S : Snapshots)
      Total += S.VertexTable.size() * sizeof(VertexRec) +
               S.Edges.size() * sizeof(int64_t);
    return Total;
  }

private:
  VertexId N;
  std::vector<Snapshot> Snapshots;
  std::vector<Fragment> Fragments;
};

} // namespace aspen

#endif // ASPEN_BASELINES_LLAMA_LIKE_H
