//===- baselines/stinger_like.h - Stinger-style mutable streaming graph ---===//
//
// A faithful scaled-down reproduction of the Stinger design the paper
// compares against (Section 7.5): a single mutable copy of the graph with
// each vertex's edges chunked into fixed-size blocks chained as a linked
// list. Updates scan the list (O(deg) work) under per-vertex fine-grained
// locks; queries and updates cannot run concurrently with consistency
// (the paper's motivation for snapshots).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_BASELINES_STINGER_LIKE_H
#define ASPEN_BASELINES_STINGER_LIKE_H

#include "parallel/primitives.h"
#include "util/types.h"

#include <atomic>
#include <cassert>
#include <vector>

namespace aspen {

/// Mutable blocked-adjacency-list graph in the style of Stinger.
///
/// Stinger's edge record is four 64-bit fields (neighbor, weight, first
/// and recent timestamps) and its edge blocks carry edge-type/vertex/
/// occupancy/timestamp metadata; we reproduce that layout, which is what
/// makes Stinger's bytes-per-edge an order of magnitude higher than
/// Aspen's (Table 9).
class StingerGraph {
public:
  /// Stinger's default edge-block capacity.
  static constexpr uint32_t BlockCapacity = 14;

  struct EdgeRecord {
    int64_t Neighbor;
    int64_t Weight;
    int64_t TimeFirst;
    int64_t TimeRecent;
  };

  struct EdgeBlock {
    uint32_t Count = 0;
    int32_t EdgeType = 0;
    int64_t VertexId_ = 0;
    int64_t SmallStamp = 0;
    int64_t LargeStamp = 0;
    EdgeBlock *Next = nullptr;
    EdgeRecord Edges[BlockCapacity];
  };

  explicit StingerGraph(VertexId N)
      : Heads(N, nullptr), Degrees(N), Locks(N) {
    for (VertexId V = 0; V < N; ++V)
      Degrees[V].store(0, std::memory_order_relaxed);
  }

  StingerGraph(const StingerGraph &) = delete;
  StingerGraph &operator=(const StingerGraph &) = delete;

  ~StingerGraph() {
    for (EdgeBlock *B : Heads)
      while (B) {
        EdgeBlock *Next = B->Next;
        delete B;
        B = Next;
      }
  }

  VertexId numVertices() const { return VertexId(Heads.size()); }

  uint64_t numEdges() const {
    return reduceSum(Heads.size(), [&](size_t V) {
      return uint64_t(Degrees[V].load(std::memory_order_relaxed));
    });
  }

  uint64_t degree(VertexId V) const {
    return Degrees[V].load(std::memory_order_relaxed);
  }

  /// Insert directed edge (U, V); duplicate-free (re-insertion refreshes
  /// the recent timestamp, as in Stinger). Returns true if added.
  bool insertEdge(VertexId U, VertexId V, int64_t Weight = 1,
                  int64_t Time = 0) {
    LockGuard G(Locks[U]);
    EdgeBlock *Spare = nullptr;
    for (EdgeBlock *B = Heads[U]; B; B = B->Next) {
      for (uint32_t I = 0; I < B->Count; ++I)
        if (B->Edges[I].Neighbor == int64_t(V)) {
          B->Edges[I].TimeRecent = Time;
          return false; // already present
        }
      if (B->Count < BlockCapacity && !Spare)
        Spare = B;
    }
    if (!Spare) {
      Spare = new EdgeBlock();
      Spare->VertexId_ = int64_t(U);
      Spare->Next = Heads[U];
      Heads[U] = Spare;
    }
    Spare->Edges[Spare->Count++] =
        EdgeRecord{int64_t(V), Weight, Time, Time};
    Degrees[U].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Delete directed edge (U, V). Returns true if removed.
  bool deleteEdge(VertexId U, VertexId V) {
    LockGuard G(Locks[U]);
    for (EdgeBlock *B = Heads[U]; B; B = B->Next)
      for (uint32_t I = 0; I < B->Count; ++I)
        if (B->Edges[I].Neighbor == int64_t(V)) {
          B->Edges[I] = B->Edges[--B->Count];
          Degrees[U].fetch_sub(1, std::memory_order_relaxed);
          return true;
        }
    return false;
  }

  /// Parallel batch insert under fine-grained locks (high-degree vertices
  /// contend, as the paper observes).
  void batchInsert(const std::vector<EdgePair> &Edges) {
    parallelFor(0, Edges.size(), [&](size_t I) {
      insertEdge(Edges[I].first, Edges[I].second);
    }, 64);
  }

  void batchDelete(const std::vector<EdgePair> &Edges) {
    parallelFor(0, Edges.size(), [&](size_t I) {
      deleteEdge(Edges[I].first, Edges[I].second);
    }, 64);
  }

  //===--------------------------------------------------------------------===
  // Graph-view interface (neighbor scans walk the block list; traversal of
  // one vertex's neighbors is sequential, as in Stinger).
  //===--------------------------------------------------------------------===

  template <class F>
  void mapNeighborsIndexed(VertexId V, const F &Fn) const {
    size_t I = 0;
    for (EdgeBlock *B = Heads[V]; B; B = B->Next)
      for (uint32_t J = 0; J < B->Count; ++J)
        Fn(I++, VertexId(B->Edges[J].Neighbor));
  }

  template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
    for (EdgeBlock *B = Heads[V]; B; B = B->Next)
      for (uint32_t J = 0; J < B->Count; ++J)
        Fn(VertexId(B->Edges[J].Neighbor));
  }

  template <class F> bool iterNeighborsCond(VertexId V, const F &Fn) const {
    for (EdgeBlock *B = Heads[V]; B; B = B->Next)
      for (uint32_t J = 0; J < B->Count; ++J)
        if (!Fn(VertexId(B->Edges[J].Neighbor)))
          return false;
    return true;
  }

  /// In-memory footprint: per-vertex records (Stinger's logical vertex
  /// array stores type/weight/degrees/pointer, ~32 B/vertex) plus all edge
  /// blocks. Wide 32-byte edge records plus partially-filled chained
  /// blocks are what make Stinger's bytes/edge high (Table 9).
  size_t memoryBytes() const {
    uint64_t Blocks = reduceSum(Heads.size(), [&](size_t V) {
      uint64_t C = 0;
      for (EdgeBlock *B = Heads[V]; B; B = B->Next)
        ++C;
      return C;
    });
    const size_t VertexRecordBytes = 32;
    return Heads.size() * VertexRecordBytes + Blocks * sizeof(EdgeBlock);
  }

private:
  struct SpinLock {
    std::atomic_flag Flag = ATOMIC_FLAG_INIT;
  };

  struct LockGuard {
    explicit LockGuard(SpinLock &L) : L(L) {
      while (L.Flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    ~LockGuard() { L.Flag.clear(std::memory_order_release); }
    SpinLock &L;
  };

  std::vector<EdgeBlock *> Heads;
  std::vector<std::atomic<uint32_t>> Degrees;
  mutable std::vector<SpinLock> Locks;
};

} // namespace aspen

#endif // ASPEN_BASELINES_STINGER_LIKE_H
