//===- baselines/worklist.h - Galois-style asynchronous executor ----------===//
//
// The Galois comparison rows of Table 12 use an asynchronous worklist
// execution model rather than Ligra-style frontier synchronization. This
// file provides a scaled-down equivalent: a chunked MPMC worklist with
// relaxation-style operators.
//
//  * asyncBfs - label-correcting BFS: distances relax via CAS-min and
//    improved vertices are re-pushed (no direction optimization, as the
//    paper notes for Galois's BFS).
//  * speculativeMis - priority-ordered MIS with per-vertex locks and
//    abort/retry, modeling Galois's speculative conflict detection.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_BASELINES_WORKLIST_H
#define ASPEN_BASELINES_WORKLIST_H

#include "parallel/primitives.h"
#include "util/hash.h"
#include "util/types.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace aspen {

namespace detail {

/// Chunked multi-producer/multi-consumer worklist with a pending-work
/// counter for race-free termination: a popped chunk stays "pending" until
/// the consumer calls done(), so pushes performed while processing are
/// always visible before the count can reach zero.
class ChunkedWorklist {
public:
  static constexpr size_t ChunkSize = 512;

  void push(std::vector<VertexId> &Local, VertexId V) {
    Local.push_back(V);
    if (Local.size() >= ChunkSize)
      flush(Local);
  }

  void flush(std::vector<VertexId> &Local) {
    if (Local.empty())
      return;
    Pending.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> Lock(M);
    Chunks.push_back(std::move(Local));
    Local = {};
    Local.reserve(ChunkSize);
  }

  bool pop(std::vector<VertexId> &Out) {
    std::lock_guard<std::mutex> Lock(M);
    if (Chunks.empty())
      return false;
    // FIFO order approximates level order for label-correcting BFS,
    // which keeps the number of re-relaxations low.
    Out = std::move(Chunks.front());
    Chunks.pop_front();
    return true;
  }

  /// Consumer finished processing a popped chunk.
  void done() { Pending.fetch_sub(1, std::memory_order_acq_rel); }

  /// True once no chunk is queued or being processed.
  bool finished() const {
    return Pending.load(std::memory_order_acquire) == 0;
  }

private:
  mutable std::mutex M;
  std::deque<std::vector<VertexId>> Chunks;
  std::atomic<int64_t> Pending{0};
};

} // namespace detail

/// Asynchronous label-correcting BFS; returns hop distances (~0u if
/// unreachable).
template <class GView>
std::vector<uint32_t> asyncBfs(const GView &G, VertexId Src) {
  VertexId N = G.numVertices();
  std::vector<std::atomic<uint32_t>> Dist(N);
  parallelFor(0, N, [&](size_t I) {
    Dist[I].store(~0u, std::memory_order_relaxed);
  });
  Dist[Src].store(0, std::memory_order_relaxed);

  detail::ChunkedWorklist WL;
  std::vector<VertexId> Seed = {Src};
  WL.flush(Seed);

  int P = numWorkers();
  auto Worker = [&] {
    std::vector<VertexId> Local;
    Local.reserve(detail::ChunkedWorklist::ChunkSize);
    std::vector<VertexId> Chunk;
    int IdleSpins = 0;
    while (true) {
      if (!WL.pop(Chunk)) {
        if (WL.finished())
          break;
        if (++IdleSpins > 64)
          std::this_thread::yield();
        continue;
      }
      IdleSpins = 0;
      for (VertexId V : Chunk) {
        uint32_t DV = Dist[V].load(std::memory_order_relaxed);
        G.iterNeighborsCond(V, [&](VertexId U) {
          uint32_t Old = Dist[U].load(std::memory_order_relaxed);
          while (DV + 1 < Old) {
            if (Dist[U].compare_exchange_weak(Old, DV + 1,
                                              std::memory_order_relaxed)) {
              WL.push(Local, U);
              break;
            }
          }
          return true;
        });
      }
      WL.flush(Local);
      WL.done();
    }
  };
  std::vector<std::thread> Threads;
  for (int I = 1; I < P; ++I)
    Threads.emplace_back(Worker);
  Worker();
  for (auto &T : Threads)
    T.join();

  return tabulate(size_t(N), [&](size_t I) {
    return Dist[I].load(std::memory_order_relaxed);
  });
}

/// Speculative MIS with per-vertex locks and abort/retry (Galois-style
/// ordered execution). Returns membership flags.
template <class GView>
std::vector<uint8_t> speculativeMis(const GView &G,
                                    uint64_t Seed = 0x51ed0a1b) {
  VertexId N = G.numVertices();
  // 0 = undecided, 1 = in, 2 = out.
  std::vector<std::atomic<uint8_t>> State(N);
  std::vector<std::atomic<uint8_t>> Locks(N);
  parallelFor(0, N, [&](size_t I) {
    State[I].store(0, std::memory_order_relaxed);
    Locks[I].store(0, std::memory_order_relaxed);
  });

  auto TryLock = [&](VertexId V) {
    uint8_t Expect = 0;
    return Locks[V].compare_exchange_strong(Expect, 1,
                                            std::memory_order_acquire);
  };
  auto Unlock = [&](VertexId V) {
    Locks[V].store(0, std::memory_order_release);
  };

  auto Priority = [&](VertexId V) { return hashAt(Seed, V); };

  std::vector<VertexId> Work =
      tabulate(size_t(N), [](size_t I) { return VertexId(I); });
  while (!Work.empty()) {
    std::vector<std::atomic<uint8_t>> Retry(Work.size());
    parallelFor(0, Work.size(), [&](size_t I) {
      Retry[I].store(0, std::memory_order_relaxed);
    });
    parallelFor(0, Work.size(), [&](size_t I) {
      VertexId V = Work[I];
      if (State[V].load(std::memory_order_relaxed) != 0)
        return;
      // Speculative section: lock v, inspect the neighborhood; abort on
      // conflict (locked neighbor) or on a higher-priority undecided
      // neighbor.
      if (!TryLock(V)) {
        Retry[I].store(1, std::memory_order_relaxed);
        return;
      }
      bool Abort = false, Win = true;
      G.iterNeighborsCond(V, [&](VertexId U) {
        uint8_t SU = State[U].load(std::memory_order_relaxed);
        if (SU == 1) {
          // Adjacent winner: V is out; no retry needed.
          uint8_t Expect = 0;
          State[V].compare_exchange_strong(Expect, 2,
                                           std::memory_order_relaxed);
          Win = false;
          return false;
        }
        if (SU == 0) {
          if (Locks[U].load(std::memory_order_relaxed)) {
            Abort = true;
            return false;
          }
          uint64_t PU = Priority(U), PV = Priority(V);
          if (PU > PV || (PU == PV && U > V)) {
            Win = false;
            return false;
          }
        }
        return true;
      });
      if (Abort) {
        Retry[I].store(1, std::memory_order_relaxed);
      } else if (Win) {
        State[V].store(1, std::memory_order_relaxed);
        G.iterNeighborsCond(V, [&](VertexId U) {
          uint8_t Expect = 0;
          State[U].compare_exchange_strong(Expect, 2,
                                           std::memory_order_relaxed);
          return true;
        });
      } else {
        // Lost to a neighbor this round; retry next round unless decided.
        Retry[I].store(1, std::memory_order_relaxed);
      }
      Unlock(V);
    }, 16);
    Work = filterIndex(
        Work.size(), [&](size_t I) { return Work[I]; },
        [&](size_t I) {
          return Retry[I].load(std::memory_order_relaxed) &&
                 State[Work[I]].load(std::memory_order_relaxed) == 0;
        });
  }

  return tabulate(size_t(N), [&](size_t I) {
    return uint8_t(State[I].load(std::memory_order_relaxed) == 1 ? 1 : 0);
  });
}

} // namespace aspen

#endif // ASPEN_BASELINES_WORKLIST_H
