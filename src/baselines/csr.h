//===- baselines/csr.h - Static CSR baselines ------------------------------===//
//
// The static-framework comparands of Section 7.7:
//  * CsrGraph           - flat uncompressed CSR, the representation GAP
//                         (and Ligra) use.
//  * CompressedCsrGraph - byte-coded CSR in the style of Ligra+: each
//                         vertex's neighbor list is difference-encoded
//                         with variable-length byte codes.
//
// Both expose the same graph-view interface as the Aspen views, so every
// algorithm template runs on them unchanged (Tables 12, 14, 15).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_BASELINES_CSR_H
#define ASPEN_BASELINES_CSR_H

#include "encoding/byte_code.h"
#include "parallel/primitives.h"
#include "util/types.h"

#include <vector>

namespace aspen {

/// Flat uncompressed CSR ("GAP-like" / Ligra).
class CsrGraph {
public:
  CsrGraph() = default;

  /// Build from directed edges (sorted + deduplicated internally).
  static CsrGraph fromEdges(VertexId N, std::vector<EdgePair> Edges) {
    parallelSort(Edges);
    auto E = filterIndex(
        Edges.size(), [&](size_t I) { return Edges[I]; },
        [&](size_t I) { return I == 0 || Edges[I] != Edges[I - 1]; });
    CsrGraph G;
    G.N = N;
    G.Offsets.assign(N + 1, 0);
    for (const EdgePair &P : E)
      ++G.Offsets[P.first + 1];
    for (VertexId V = 0; V < N; ++V)
      G.Offsets[V + 1] += G.Offsets[V];
    G.Targets = tabulate(E.size(), [&](size_t I) { return E[I].second; });
    return G;
  }

  VertexId numVertices() const { return N; }
  uint64_t numEdges() const { return Targets.size(); }
  uint64_t degree(VertexId V) const {
    return Offsets[V + 1] - Offsets[V];
  }

  template <class F>
  void mapNeighborsIndexed(VertexId V, const F &Fn) const {
    uint64_t Lo = Offsets[V], Hi = Offsets[V + 1];
    parallelFor(Lo, Hi, [&](size_t I) { Fn(I - Lo, Targets[I]); }, 2048);
  }

  template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
    for (uint64_t I = Offsets[V], E = Offsets[V + 1]; I < E; ++I)
      Fn(Targets[I]);
  }

  template <class F> bool iterNeighborsCond(VertexId V, const F &Fn) const {
    for (uint64_t I = Offsets[V], E = Offsets[V + 1]; I < E; ++I)
      if (!Fn(Targets[I]))
        return false;
    return true;
  }

  size_t memoryBytes() const {
    return Offsets.size() * sizeof(uint64_t) +
           Targets.size() * sizeof(VertexId);
  }

private:
  VertexId N = 0;
  std::vector<uint64_t> Offsets;
  std::vector<VertexId> Targets;
};

/// Byte-compressed CSR ("Ligra+-like"): per-vertex difference encoding.
class CompressedCsrGraph {
public:
  CompressedCsrGraph() = default;

  static CompressedCsrGraph fromEdges(VertexId N,
                                      std::vector<EdgePair> Edges) {
    parallelSort(Edges);
    auto E = filterIndex(
        Edges.size(), [&](size_t I) { return Edges[I]; },
        [&](size_t I) { return I == 0 || Edges[I] != Edges[I - 1]; });
    CompressedCsrGraph G;
    G.N = N;
    G.M = E.size();
    G.Degrees.assign(N, 0);
    for (const EdgePair &P : E)
      ++G.Degrees[P.first];
    // Per-vertex encoded sizes.
    std::vector<uint64_t> Sizes(N + 1, 0);
    std::vector<uint64_t> Starts(N + 1, 0);
    {
      uint64_t Pos = 0;
      for (VertexId V = 0; V < N; ++V) {
        Starts[V] = Pos;
        Pos += G.Degrees[V];
      }
      Starts[N] = Pos;
    }
    parallelFor(0, N, [&](size_t V) {
      uint64_t Lo = Starts[V], Hi = Starts[V + 1];
      uint64_t Bytes = 0;
      VertexId Prev = 0;
      for (uint64_t I = Lo; I < Hi; ++I) {
        VertexId T = E[I].second;
        Bytes += varintSize(I == Lo ? uint64_t(T) : uint64_t(T - Prev));
        Prev = T;
      }
      Sizes[V] = Bytes;
    });
    G.ByteOffsets.assign(N + 1, 0);
    for (VertexId V = 0; V < N; ++V)
      G.ByteOffsets[V + 1] = G.ByteOffsets[V] + Sizes[V];
    G.Bytes.resize(G.ByteOffsets[N]);
    parallelFor(0, N, [&](size_t V) {
      uint64_t Lo = Starts[V], Hi = Starts[V + 1];
      uint8_t *Out = G.Bytes.data() + G.ByteOffsets[V];
      VertexId Prev = 0;
      for (uint64_t I = Lo; I < Hi; ++I) {
        VertexId T = E[I].second;
        Out = encodeVarint(I == Lo ? uint64_t(T) : uint64_t(T - Prev), Out);
        Prev = T;
      }
    });
    return G;
  }

  VertexId numVertices() const { return N; }
  uint64_t numEdges() const { return M; }
  uint64_t degree(VertexId V) const { return Degrees[V]; }

  template <class F>
  void mapNeighborsIndexed(VertexId V, const F &Fn) const {
    // Sequential decode (Ligra+ uses a parallel block code; our C-trees get
    // their parallelism from chunking instead - see DESIGN.md).
    const uint8_t *In = Bytes.data() + ByteOffsets[V];
    uint64_t Cur = 0;
    for (uint32_t I = 0, D = Degrees[V]; I < D; ++I) {
      uint64_t Delta;
      In = decodeVarint(In, Delta);
      Cur = (I == 0) ? Delta : Cur + Delta;
      Fn(size_t(I), VertexId(Cur));
    }
  }

  template <class F> void mapNeighbors(VertexId V, const F &Fn) const {
    mapNeighborsIndexed(V, [&](size_t, VertexId U) { Fn(U); });
  }

  template <class F> bool iterNeighborsCond(VertexId V, const F &Fn) const {
    const uint8_t *In = Bytes.data() + ByteOffsets[V];
    uint64_t Cur = 0;
    for (uint32_t I = 0, D = Degrees[V]; I < D; ++I) {
      uint64_t Delta;
      In = decodeVarint(In, Delta);
      Cur = (I == 0) ? Delta : Cur + Delta;
      if (!Fn(VertexId(Cur)))
        return false;
    }
    return true;
  }

  size_t memoryBytes() const {
    return ByteOffsets.size() * sizeof(uint64_t) +
           Degrees.size() * sizeof(uint32_t) + Bytes.size();
  }

private:
  VertexId N = 0;
  uint64_t M = 0;
  std::vector<uint64_t> ByteOffsets;
  std::vector<uint32_t> Degrees;
  std::vector<uint8_t> Bytes;
};

} // namespace aspen

#endif // ASPEN_BASELINES_CSR_H
