//===- memory/pool_allocator.cpp - Concurrent pool allocation -------------===//

#include "memory/pool_allocator.h"

#include <cassert>
#include <cstdlib>

using namespace aspen;

static size_t roundUp(size_t X, size_t A) { return (X + A - 1) / A * A; }

FixedPool::FixedPool(size_t Bytes)
    : EltBytes(roundUp(Bytes < sizeof(void *) ? sizeof(void *) : Bytes,
                       alignof(void *))),
      Locals(static_cast<size_t>(maxContexts())) {
  // Slabs of roughly 256KB amortize the global lock.
  SlabElts = (256 * 1024) / EltBytes;
  if (SlabElts < 64)
    SlabElts = 64;
}

FixedPool::~FixedPool() {
  for (char *A : Arenas)
    std::free(A);
}

void FixedPool::refill(Local &L) {
  std::lock_guard<std::mutex> Lock(GlobalM);
  if (!GlobalSegments.empty()) {
    Segment S = GlobalSegments.back();
    GlobalSegments.pop_back();
    L.Head = S.Head;
    L.Count = S.Count;
    return;
  }
  char *Arena = static_cast<char *>(std::malloc(EltBytes * SlabElts));
  assert(Arena && "pool arena allocation failed");
  Arenas.push_back(Arena);
  // Thread the free list through the slab.
  for (size_t I = 0; I + 1 < SlabElts; ++I)
    *reinterpret_cast<void **>(Arena + I * EltBytes) =
        Arena + (I + 1) * EltBytes;
  *reinterpret_cast<void **>(Arena + (SlabElts - 1) * EltBytes) = nullptr;
  L.Head = Arena;
  L.Count = SlabElts;
}

void FixedPool::spill(Local &L) {
  // Detach SlabElts blocks from the local list and publish them.
  void *Head = L.Head;
  void *Cur = Head;
  for (size_t I = 1; I < SlabElts; ++I)
    Cur = *reinterpret_cast<void **>(Cur);
  L.Head = *reinterpret_cast<void **>(Cur);
  *reinterpret_cast<void **>(Cur) = nullptr;
  L.Count -= SlabElts;
  std::lock_guard<std::mutex> Lock(GlobalM);
  GlobalSegments.push_back(Segment{Head, SlabElts});
}

void *FixedPool::alloc() {
  Local &L = Locals[static_cast<size_t>(workerId())];
  if (!L.Head)
    refill(L);
  void *P = L.Head;
  L.Head = *reinterpret_cast<void **>(P);
  --L.Count;
  ++L.Net;
  return P;
}

void FixedPool::free(void *P) {
  Local &L = Locals[static_cast<size_t>(workerId())];
  *reinterpret_cast<void **>(P) = L.Head;
  L.Head = P;
  ++L.Count;
  --L.Net;
  if (L.Count >= 2 * SlabElts)
    spill(L);
}

int64_t FixedPool::liveCount() const {
  int64_t Total = 0;
  for (const Local &L : Locals)
    Total += L.Net;
  return Total;
}

namespace {

struct PoolRegistry {
  std::mutex M;
  std::vector<FixedPool *> Pools;
};

PoolRegistry &registry() {
  static PoolRegistry R;
  return R;
}

struct alignas(64) ByteCounter {
  int64_t Bytes = 0;
  uint64_t Events = 0;
};

std::vector<ByteCounter> &byteCounters() {
  static std::vector<ByteCounter> C(static_cast<size_t>(maxContexts()));
  return C;
}

/// Per-context cache of scratch blocks, all power-of-two sized.
struct alignas(64) ScratchLocal {
  aspen::detail::BlockCache<8> Cache;
  uint64_t Misses = 0;

  ~ScratchLocal() {
    size_t Cap;
    while (void *P = Cache.pop(Cap))
      std::free(P);
  }
};

std::vector<ScratchLocal> &scratchLocals() {
  static std::vector<ScratchLocal> C(static_cast<size_t>(maxContexts()));
  return C;
}

size_t scratchRound(size_t Bytes) {
  size_t Cap = 4096;
  while (Cap < Bytes)
    Cap <<= 1;
  return Cap;
}

} // namespace

void aspen::detail::registerPool(FixedPool *P) {
  PoolRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  R.Pools.push_back(P);
}

int64_t aspen::totalPoolLiveBytes() {
  PoolRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  int64_t Total = 0;
  for (FixedPool *P : R.Pools)
    Total += P->liveCount() * static_cast<int64_t>(P->eltBytes());
  return Total;
}

void *aspen::countedAlloc(size_t Bytes) {
  ByteCounter &C = byteCounters()[static_cast<size_t>(workerId())];
  C.Bytes += static_cast<int64_t>(Bytes);
  ++C.Events;
  return std::malloc(Bytes);
}

void aspen::countedFree(void *P, size_t Bytes) {
  byteCounters()[static_cast<size_t>(workerId())].Bytes -=
      static_cast<int64_t>(Bytes);
  std::free(P);
}

int64_t aspen::liveCountedBytes() {
  int64_t Total = 0;
  for (const ByteCounter &C : byteCounters())
    Total += C.Bytes;
  return Total;
}

uint64_t aspen::countedAllocEvents() {
  uint64_t Total = 0;
  for (const ByteCounter &C : byteCounters())
    Total += C.Events;
  return Total;
}

void *aspen::scratchAcquire(size_t MinBytes, size_t &CapOut) {
  ScratchLocal &L = scratchLocals()[static_cast<size_t>(workerId())];
  if (void *P = L.Cache.tryAcquire(MinBytes, CapOut))
    return P;
  ++L.Misses;
  CapOut = scratchRound(MinBytes);
  void *P = std::malloc(CapOut);
  assert(P && "scratch allocation failed");
  return P;
}

void aspen::scratchRelease(void *P, size_t Cap) {
  if (!P)
    return;
  ScratchLocal &L = scratchLocals()[static_cast<size_t>(workerId())];
  size_t LoserCap;
  if (void *Loser = L.Cache.insert(P, Cap, LoserCap))
    std::free(Loser);
}

uint64_t aspen::scratchAllocEvents() {
  uint64_t Total = 0;
  for (const ScratchLocal &L : scratchLocals())
    Total += L.Misses;
  return Total;
}
